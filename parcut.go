// Package parcut computes global minimum cuts of weighted undirected
// graphs with the near-linear-work, poly-logarithmic-depth parallel
// algorithm of Geissmann and Gianinazzi, "Parallel Minimum Cuts in
// Near-linear Work and Low Depth" (SPAA 2018): O(m log⁴ n) work and
// O(log³ n) depth, Monte Carlo with high probability.
//
// The package also exposes the paper's two reusable building blocks:
//
//   - ConstrainedMinCut: the smallest cut crossing at most two edges of a
//     given spanning tree (the paper's §4 subproblem), deterministic.
//   - PathAggregator: the parallel batched Minimum Path structure of §3
//     (AddPath/MinPath on vertex-weighted rooted trees).
//
// Quick start:
//
//	g := parcut.NewGraph(4)
//	g.AddEdge(0, 1, 3)
//	g.AddEdge(1, 2, 1)
//	g.AddEdge(2, 3, 4)
//	g.AddEdge(3, 0, 2)
//	res, err := parcut.MinCut(g, parcut.Options{Seed: 1, WantPartition: true})
//	// res.Value == 3, res.InCut partitions the cycle at its two
//	// lightest edges.
package parcut

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
	"repro/internal/wd"
)

// Executor is a reusable bounded-width parallel execution context: a set
// of long-lived worker goroutines that every parallel primitive of a solve
// runs on. Create one per logically independent solver (for example, one
// per service worker) to make the process's total parallelism explicit —
// concurrent solves on separate executors use width₁+width₂ CPUs, never
// more — and reuse it across solves to avoid per-call worker start-up.
// A nil *Executor is valid and means the shared process-wide default
// executor (width GOMAXPROCS).
type Executor struct {
	pool *par.Pool
}

// NewExecutor returns an executor of the given width (number of CPU lanes;
// <= 0 means all cores). Close it when done to release the workers.
func NewExecutor(width int) *Executor {
	return &Executor{pool: par.NewPool(width)}
}

// Width reports the executor's parallelism.
func (e *Executor) Width() int { return e.unwrap().Width() }

// Close releases the executor's workers. Solves still in flight on the
// executor complete correctly (they degrade to sequential execution).
// Close is idempotent; closing the nil (default) executor is a no-op.
func (e *Executor) Close() {
	if e != nil {
		e.pool.Close()
	}
}

// unwrap resolves the nil-means-default convention.
func (e *Executor) unwrap() *par.Pool {
	if e == nil {
		return nil
	}
	return e.pool
}

// PoolStats is a point-in-time snapshot of an executor's scheduling and
// scratch-arena counters. All counters are cumulative since the executor
// was created.
type PoolStats struct {
	// Steals counts branches taken from another lane's deque by idle
	// lanes; LocalPushes/SharedPushes/OverflowPushes classify where forked
	// branches were enqueued (the forking lane's own deque, another
	// lane's, or the shared overflow queue). InlineRuns counts forks that
	// ran inline in the forking goroutine — always 0 on an open executor
	// of width > 1.
	Steals, LocalPushes, SharedPushes, OverflowPushes, InlineRuns int64
	// ArenaHits and ArenaMisses count recycled vs freshly allocated
	// scratch borrows in the executor's solve arena.
	ArenaHits, ArenaMisses int64
}

// Stats snapshots the executor's counters (the shared default executor's
// for a nil receiver).
func (e *Executor) Stats() PoolStats {
	st := e.unwrap().Stats()
	return PoolStats{
		Steals:         st.Steals,
		LocalPushes:    st.LocalPushes,
		SharedPushes:   st.SharedPushes,
		OverflowPushes: st.OverflowPushes,
		InlineRuns:     st.InlineRuns,
		ArenaHits:      st.ArenaHits,
		ArenaMisses:    st.ArenaMisses,
	}
}

// Tuning holds the per-primitive sequential cutoffs of the parallel
// primitives (loops, scans, reductions, merges, sorts): below its cutoff
// a primitive runs sequentially in the caller. Zero fields mean the
// built-in baseline; cutoffs never change results, only constant factors.
type Tuning = par.Tuning

// Calibrate measures this machine's parallel-vs-sequential crossover per
// primitive (once per process; subsequent calls return the cached result)
// and returns the resulting cutoffs. Install them with SetDefaultTuning,
// or per executor with Executor.SetTuning.
func Calibrate() Tuning { return par.CalibrateOnce() }

// SetDefaultTuning installs process-wide cutoff defaults, applied to
// every executor without a per-executor override.
func SetDefaultTuning(t Tuning) { par.SetDefaultTuning(t) }

// SetTuning overrides the cutoffs for this executor only (for a nil
// receiver, the shared default executor).
func (e *Executor) SetTuning(t Tuning) { e.unwrap().SetTuning(t) }

// executionPool resolves the executor a call with these options runs on,
// and whether the call owns it (and must close it when done).
func (o Options) executionPool() (pool *par.Pool, owned bool) {
	if o.Executor != nil {
		return o.Executor.pool, false
	}
	if o.Parallelism > 0 {
		p := par.NewPool(o.Parallelism)
		if o.Tuning != nil {
			p.SetTuning(*o.Tuning)
		}
		return p, true
	}
	return nil, false
}

// Graph is a weighted undirected multigraph on vertices 0..n-1. Parallel
// edges are allowed; weights must be positive integers; the total weight
// must stay below 2^40 (enforced by AddEdge) so that the internal
// difference arithmetic is exact.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{g: graph.New(n)}
}

// AddEdge adds the undirected edge {u, v} with weight w.
func (G *Graph) AddEdge(u, v int, w int64) error {
	return G.g.AddEdge(u, v, w)
}

// N returns the number of vertices.
func (G *Graph) N() int { return G.g.N() }

// M returns the number of edges.
func (G *Graph) M() int { return G.g.M() }

// TotalWeight returns the sum of all edge weights.
func (G *Graph) TotalWeight() int64 { return G.g.TotalWeight() }

// CutValue evaluates the total weight crossing the given partition
// (inCut[v] marks one side).
func (G *Graph) CutValue(inCut []bool) int64 { return G.g.CutValue(inCut) }

// CutEdge is one edge crossing a cut.
type CutEdge struct {
	U, V int
	W    int64
}

// CutEdges lists the edges crossing the given partition, in input order —
// the paper notes the algorithm "can be easily adapted to also output the
// edges that define the cut" (§4.3); combined with the partition from
// MinCut this realizes that.
func (G *Graph) CutEdges(inCut []bool) []CutEdge {
	var out []CutEdge
	for _, e := range G.g.Edges() {
		if inCut[e.U] != inCut[e.V] {
			out = append(out, CutEdge{U: int(e.U), V: int(e.V), W: e.W})
		}
	}
	return out
}

// Write serializes the graph in the package's DIMACS-like text format.
func (G *Graph) Write(w io.Writer) error { return graph.Write(w, G.g) }

// Canonical returns a copy of the graph in canonical edge order: each
// edge stored with U <= V and the edge list sorted by (U, V, W). Two
// graphs that differ only in edge input order or endpoint order have
// identical Canonical forms — and therefore identical Write output — so
// hashing the canonical serialization content-addresses the graph itself
// rather than one particular encoding of it.
func (G *Graph) Canonical() *Graph {
	return &Graph{g: G.g.Canonical()}
}

// ReadGraph parses a graph written by Write.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Options configure MinCut and ConstrainedMinCut.
type Options struct {
	// Engine selects the solver backend by name: "geissmann" (the paper's
	// parallel solver — the default when empty), "andersonblelloch" (the
	// same tree packing searched with the Anderson–Blelloch compact
	// 2-respecting scan; bit-identical values, less work per tree),
	// "stoerwagner" (exact, deterministic O(n³) baseline), "kargerstein"
	// (randomized recursive contraction), or "auto" (pick by graph size:
	// small or dense graphs go to the sequential exact baseline, larger
	// ones to the Anderson–Blelloch scan). Engines() lists the registered
	// names. Options an engine cannot use are ignored: Boost runs once on
	// non-boostable engines, Seed is irrelevant to exact ones.
	Engine string
	// Seed fixes all randomness; two runs with the same seed and input
	// return identical results. The zero seed is a valid fixed seed.
	Seed int64
	// WantPartition additionally reconstructs a partition achieving the
	// returned value.
	WantPartition bool
	// CollectStats fills Result.Work / Result.Depth with Work-Depth model
	// accounting.
	CollectStats bool
	// Boost repeats the Monte Carlo pipeline with independent seeds and
	// keeps the smallest cut found, driving the (already small) failure
	// probability down exponentially. 0 and 1 both mean a single run.
	Boost int
	// ParallelPhases selects the paper's fully concurrent bough-phase
	// schedule (§4.3): lower critical-path depth at O(m log n) memory.
	// The default runs phases back to back in O(m) memory.
	ParallelPhases bool
	// Parallelism bounds the number of CPU lanes the solve uses: the call
	// runs on a dedicated executor of that width, created for the call.
	// 0 means all cores (the shared process-wide executor). The result is
	// identical at every parallelism — width is purely a resource knob.
	Parallelism int
	// Executor, when non-nil, runs the solve on a caller-owned reusable
	// executor (see NewExecutor) instead; it takes precedence over
	// Parallelism. Long-lived callers issuing many solves should prefer
	// an Executor so workers persist across calls.
	Executor *Executor
	// Tuning, when non-nil, overrides the per-primitive sequential
	// cutoffs for the call's dedicated executor. It applies only when the
	// call creates its own executor (Parallelism > 0): a caller-owned
	// Executor keeps whatever SetTuning configured on it, and the shared
	// default executor follows SetDefaultTuning. Cutoffs never change the
	// Result, only speed.
	Tuning *Tuning
	// Progress, when non-nil, receives live progress updates (current
	// phase, packing rounds, trees scanned, boost runs completed) while
	// the solve runs. Attach a fresh Progress per solve; attaching one
	// never changes the Result at any parallelism.
	Progress *Progress
	// Trace, when active, receives a span tree attributing the solve's
	// wall clock: one "run" span per boost run, each with "packing" and
	// "scan" phase children down to per-tree and per-bough-phase spans.
	// The zero value disables tracing at no cost. Like Progress it is
	// write-only: attaching a span never changes the Result. The field's
	// type lives in an internal package, so it is settable only from
	// within this module — the mincutd service uses it; external callers
	// leave it zero.
	Trace trace.SpanRef
}

// ProgressSnapshot is a point-in-time view of a running solve. Totals are
// the planned amounts known so far; they grow as the solve learns more
// (each packing attempt plans more rounds, each boost run adds trees), so
// done/total fractions can dip when a phase re-plans.
type ProgressSnapshot struct {
	// Phase is "none", "packing", "scan", or (for the contraction-based
	// baseline engines) "contract".
	Phase string `json:"phase"`
	// RunsDone / RunsTotal count boost runs (1/1 for unboosted solves).
	RunsDone  int64 `json:"runs_done"`
	RunsTotal int64 `json:"runs_total"`
	// PackRoundsDone / PackRoundsTotal count greedy tree-packing rounds.
	PackRoundsDone  int64 `json:"pack_rounds_done"`
	PackRoundsTotal int64 `json:"pack_rounds_total"`
	// TreesScanned / TreesTotal count spanning-tree scans.
	TreesScanned int64 `json:"trees_scanned"`
	TreesTotal   int64 `json:"trees_total"`
	// BoughPhasesDone and BoughsProcessed count bough-phase work inside
	// the tree scans.
	BoughPhasesDone int64 `json:"bough_phases_done"`
	BoughsProcessed int64 `json:"boughs_processed"`
}

// Fraction estimates overall completion in [0, 1]. It is a display
// heuristic, not an accounting guarantee: boost runs advance it in equal
// shares, and within the runs seen so far the packing rounds are
// weighted as half the work and the tree scans as the other half. Zero
// until the solve starts (RunsTotal unset). It is not strictly monotone:
// when the packing phase rejects an estimate and re-packs, the planned
// round total grows and the fraction dips accordingly.
func (ps ProgressSnapshot) Fraction() float64 {
	if ps.RunsTotal <= 0 {
		return 0
	}
	frac := func(done, total int64) float64 {
		if total <= 0 {
			return 0
		}
		f := float64(done) / float64(total)
		if f > 1 {
			f = 1
		}
		return f
	}
	// The phase counters accumulate across runs, so their blended
	// fraction approaches 1 as runs complete; counting it as the current
	// run's share keeps boosted solves honest (run 44k of 1M reads ~4%,
	// not 100%).
	cur := 0.5*frac(ps.PackRoundsDone, ps.PackRoundsTotal) + 0.5*frac(ps.TreesScanned, ps.TreesTotal)
	if ps.PackRoundsTotal == 0 {
		// Engines without a packing phase (the contraction baselines)
		// report all progress on the coarse-step counters.
		cur = frac(ps.TreesScanned, ps.TreesTotal)
	}
	f := (float64(ps.RunsDone) + cur) / float64(ps.RunsTotal)
	if f > 1 {
		f = 1
	}
	return f
}

// Progress is a concurrency-safe live progress sink for one solve: cheap
// atomic counters the solver advances at its cooperative-cancellation
// seams. Read it with Snapshot at any time, from any goroutine, while the
// solve runs. One Progress instruments one solve at a time.
type Progress struct {
	sink    progress.Sink
	onEvent func(ProgressSnapshot)
}

// NewProgress returns a fresh sink. onEvent, if non-nil, is called after
// phase transitions and coarse milestones (boost-run, tree-scan, and
// bough-phase completions). It runs on a solver goroutine at a
// cancellation seam: it must be cheap (or hand off to its own goroutine),
// and if it blocks, the solve parks at that seam until it returns.
func NewProgress(onEvent func(ProgressSnapshot)) *Progress {
	p := &Progress{onEvent: onEvent}
	if onEvent != nil {
		p.sink.Notify = func() { onEvent(p.Snapshot()) }
	}
	return p
}

// Snapshot returns the current counters. Valid on a nil *Progress (all
// zero).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{Phase: progress.PhaseNone.String()}
	}
	s := p.sink.Snapshot()
	return ProgressSnapshot{
		Phase:           s.Phase.String(),
		RunsDone:        s.RunsDone,
		RunsTotal:       s.RunsTotal,
		PackRoundsDone:  s.PackRoundsDone,
		PackRoundsTotal: s.PackRoundsTotal,
		TreesScanned:    s.TreesDone,
		TreesTotal:      s.TreesTotal,
		BoughPhasesDone: s.BoughPhasesDone,
		BoughsProcessed: s.BoughsProcessed,
	}
}

// sinkOrNil resolves the optional Progress to the internal sink.
func (p *Progress) sinkOrNil() *progress.Sink {
	if p == nil {
		return nil
	}
	return &p.sink
}

// Result of a minimum cut computation.
type Result struct {
	// Value is the cut weight. Every returned value is the exact weight
	// of some cut of the graph; with high probability it is the minimum.
	Value int64
	// InCut marks one side of the cut (nil unless WantPartition).
	InCut []bool
	// TreesScanned is the number of spanning trees searched.
	TreesScanned int
	// Work and Depth are Work-Depth model costs (zero unless CollectStats).
	Work, Depth int64
}

// MinCut computes a global minimum cut (Theorem 10). A disconnected graph
// yields Value 0. Graphs need at least two vertices.
func MinCut(G *Graph, opt Options) (Result, error) {
	return MinCutContext(context.Background(), G, opt)
}

// BoostSeed returns the seed that boost run number run (0-based) of a
// solve with Options.Seed == seed uses: run 0 keeps the seed itself and
// later runs add fixed multiples of an odd constant. It is exposed so
// callers can decompose a Boost=k solve into independent smaller solves
// that are bit-for-bit identical to the sequential Boost loop — run i of
// MinCut(Options{Seed: s, Boost: k}) equals run 0 of
// MinCut(Options{Seed: BoostSeed(s, i), Boost: 1}).
//
// The derivation is additive, so chunking composes:
// BoostSeed(BoostSeed(s, a), b) == BoostSeed(s, a+b); a solve of runs
// [a, a+c) is exactly Options{Seed: BoostSeed(s, a), Boost: c}.
func BoostSeed(seed int64, run int) int64 {
	return seed + int64(run)*0x9e3779b9
}

// MinCutContext is MinCut with cooperative cancellation. The context is
// checked between boost runs, between spanning-tree scans, and between
// bough phases inside each scan, so canceling it (or letting its deadline
// expire) stops the computation promptly instead of running to completion.
// The returned error wraps ctx.Err(), so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) identify cancellation.
func MinCutContext(ctx context.Context, G *Graph, opt Options) (Result, error) {
	if G == nil || G.g == nil {
		return Result{}, errNilGraph()
	}
	eng, err := engine.Resolve(opt.Engine, G.g.N(), G.g.M())
	if err != nil {
		return Result{}, fmt.Errorf("parcut: %w", err)
	}
	caps := eng.Caps()
	var m *wd.Meter
	if opt.CollectStats {
		m = new(wd.Meter)
	}
	pool, owned := opt.executionPool()
	if owned {
		defer pool.Close()
	}
	runs := opt.Boost
	if runs < 1 {
		runs = 1
	}
	if !caps.BoostDecomposable {
		// Extra seeded runs cannot change this engine's answer; one run is
		// the whole solve.
		runs = 1
	}
	sink := opt.Progress.sinkOrNil()
	sink.SetRuns(int64(runs))
	var out Result
	for run := 0; run < runs; run++ {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("parcut: canceled: %w", err)
		}
		runSp := opt.Trace.Child("run").AttrInt("run", int64(run)).Attr("engine", eng.Name())
		r, err := eng.Solve(ctx, G.g, engine.Options{
			Seed:           BoostSeed(opt.Seed, run),
			WantPartition:  opt.WantPartition,
			ParallelPhases: opt.ParallelPhases,
			Pool:           pool,
			Meter:          m,
			Progress:       sink,
			Trace:          runSp,
		})
		runSp.End()
		if err != nil {
			return Result{}, err
		}
		sink.RunDone()
		if run == 0 || r.Value < out.Value {
			out = Result{Value: r.Value, InCut: r.InCut, TreesScanned: out.TreesScanned + r.TreesScanned}
		} else {
			out.TreesScanned += r.TreesScanned
		}
	}
	if m != nil {
		out.Work, out.Depth = m.Work(), m.Depth()
	}
	return out, nil
}

// Engines lists the registered engine names in registration order; any of
// them (or "auto") is a valid Options.Engine.
func Engines() []string { return engine.Names() }

// ConstrainedMinCut finds the smallest cut that crosses at most two edges
// of the given rooted spanning tree (parent[v] is v's parent; the root has
// parent -1). This is the paper's Lemma 13 primitive; it is deterministic.
func ConstrainedMinCut(G *Graph, parent []int32, opt Options) (Result, error) {
	if G == nil || G.g == nil {
		return Result{}, errNilGraph()
	}
	var m *wd.Meter
	if opt.CollectStats {
		m = new(wd.Meter)
	}
	pool, owned := opt.executionPool()
	if owned {
		defer pool.Close()
	}
	r, err := core.ConstrainedMinCut(G.g, parent, opt.WantPartition, pool, m)
	if err != nil {
		return Result{}, err
	}
	out := Result{Value: r.Value, InCut: r.InCut, TreesScanned: 1}
	if m != nil {
		out.Work, out.Depth = m.Work(), m.Depth()
	}
	return out, nil
}

// RandomGraph generates a connected random multigraph with n vertices, m
// edges and weights uniform in [1, maxW] (deterministic in seed) — a
// convenience for examples and experiments.
func RandomGraph(n, m int, maxW, seed int64) *Graph {
	return &Graph{g: gen.RandomConnected(n, m, maxW, seed)}
}

// errNilGraph guards the exported entry points.
func errNilGraph() error { return fmt.Errorf("parcut: nil graph") }
