package parcut

import (
	"testing"

	"repro/internal/graph/gen"
)

// TestParallelPhasesOptionAgrees: the two §4.3 execution schedules are
// re-orderings of the same deterministic computation, so the public API
// must return identical values for identical seeds.
func TestParallelPhasesOptionAgrees(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		inner := gen.RandomConnected(60, 240, 14, seed)
		g := &Graph{g: inner}
		a, err := MinCut(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MinCut(g, Options{Seed: seed, ParallelPhases: true, WantPartition: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Value != b.Value {
			t.Fatalf("seed %d: sequential %d vs parallel-phases %d", seed, a.Value, b.Value)
		}
		if got := g.CutValue(b.InCut); got != b.Value {
			t.Fatalf("seed %d: witness %d claimed %d", seed, got, b.Value)
		}
	}
}
