// Clustering: divisive minimum-cut clustering of a similarity graph.
//
// Minimum cuts underlie classic graph clustering (the paper's motivation
// cites hypertext clustering [4] and gene-expression analysis [13, 29]):
// repeatedly split the component with the weakest internal connectivity
// until every cluster is internally well connected relative to its size.
// This example builds a similarity graph over synthetic 2-D points drawn
// from three well separated blobs and recovers the blobs with recursive
// minimum cuts.
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	parcut "repro"
)

type point struct{ x, y float64 }

func main() {
	rng := rand.New(rand.NewSource(42))
	// Three blobs of 14, 11, and 9 points.
	centers := []point{{0, 0}, {12, 2}, {5, 14}}
	sizes := []int{14, 11, 9}
	var pts []point
	var truth []int
	for c, size := range sizes {
		for i := 0; i < size; i++ {
			pts = append(pts, point{
				x: centers[c].x + rng.NormFloat64(),
				y: centers[c].y + rng.NormFloat64(),
			})
			truth = append(truth, c)
		}
	}
	// Similarity: integer weights decaying with distance; far pairs get
	// no edge at all.
	sim := func(a, b point) int64 {
		d := math.Hypot(a.x-b.x, a.y-b.y)
		if d >= 8 {
			return 0
		}
		return int64(math.Ceil(100 * math.Exp(-d*d/8)))
	}

	clusters := divisiveCluster(pts, sim)
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	fmt.Printf("found %d clusters over %d points\n", len(clusters), len(pts))
	for i, c := range clusters {
		counts := map[int]int{}
		for _, p := range c {
			counts[truth[p]]++
		}
		fmt.Printf("cluster %d: %d points, blob histogram %v\n", i, len(c), counts)
	}
}

// divisiveCluster splits components while the normalized cut weight is
// small: a component whose minimum cut is below threshold·|component|
// is split into both sides, recursively.
func divisiveCluster(pts []point, sim func(a, b point) int64) [][]int {
	var out [][]int
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	const threshold = 20
	var recurse func(member []int)
	recurse = func(member []int) {
		if len(member) < 3 {
			out = append(out, member)
			return
		}
		g := parcut.NewGraph(len(member))
		edges := 0
		for i := 0; i < len(member); i++ {
			for j := i + 1; j < len(member); j++ {
				if w := sim(pts[member[i]], pts[member[j]]); w > 0 {
					if err := g.AddEdge(i, j, w); err != nil {
						log.Fatalf("similarity edge: %v", err)
					}
					edges++
				}
			}
		}
		if edges == 0 {
			out = append(out, member)
			return
		}
		res, err := parcut.MinCut(g, parcut.Options{Seed: int64(len(member)), WantPartition: true})
		if err != nil {
			log.Fatalf("cluster cut: %v", err)
		}
		if res.Value >= int64(threshold*len(member)) {
			// Internally well connected: keep as one cluster.
			out = append(out, member)
			return
		}
		var left, right []int
		for i, in := range res.InCut {
			if in {
				left = append(left, member[i])
			} else {
				right = append(right, member[i])
			}
		}
		recurse(left)
		recurse(right)
	}
	recurse(all)
	return out
}
