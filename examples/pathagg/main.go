// Pathagg: the parallel Minimum Path structure as a standalone tool.
//
// The paper's §3 data structure is useful beyond minimum cuts: any
// workload that maintains per-node tallies along root paths of a
// hierarchy and asks for path minima fits. This example models a spend
// tracker over an organization tree: every team's remaining budget sits
// at a vertex; a purchase by a team debits every unit on its reporting
// chain; a query asks for the tightest remaining budget along the chain
// (the approver that would block the purchase first). Batches of mixed
// debits and checks run through one PathAggregator.
//
// Run with:
//
//	go run ./examples/pathagg
package main

import (
	"fmt"
	"log"

	parcut "repro"
)

func main() {
	// Org tree:               0 (company, budget 1000)
	//                        /                \
	//              1 (platform, 400)      2 (product, 500)
	//               /         \               /        \
	//        3 (infra,150) 4 (tools,120) 5 (web,200) 6 (mobile,180)
	//             |
	//        7 (storage, 60)
	parent := []int32{-1, 0, 0, 1, 1, 2, 2, 3}
	budgets := []int64{1000, 400, 500, 150, 120, 200, 180, 60}
	names := []string{"company", "platform", "product", "infra", "tools", "web", "mobile", "storage"}

	agg, err := parcut.NewPathAggregator(parent, budgets)
	if err != nil {
		log.Fatal(err)
	}

	// A day of activity: purchases debit a chain; checks find the
	// tightest approver on a chain. One batch, order-sensitive.
	batch := []parcut.PathOp{
		parcut.MinPath(7),      // storage's tightest budget before spending
		parcut.AddPath(7, -40), // storage buys disks: charges 7,3,1,0
		parcut.MinPath(7),      // tightest after the purchase
		parcut.AddPath(5, -150),
		parcut.MinPath(5),
		parcut.AddPath(4, -100),
		parcut.MinPath(4), // tools nearly exhausted?
	}
	res, err := agg.Run(batch)
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{
		"tightest on storage chain (before)",
		"",
		"tightest on storage chain (after disks)",
		"",
		"tightest on web chain (after launch)",
		"",
		"tightest on tools chain (after licenses)",
	}
	for i, op := range batch {
		if op.Query {
			fmt.Printf("%-42s = %d\n", labels[i], res[i])
		}
	}

	// The batch committed: inspect a few post-state budgets.
	fmt.Println("\nremaining budgets:")
	for v, name := range names {
		fmt.Printf("  %-9s %5d\n", name, agg.Weight(int32(v)))
	}
}
