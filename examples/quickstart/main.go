// Quickstart: build a small weighted graph, compute its minimum cut, and
// print the value and the partition.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	parcut "repro"
)

func main() {
	// The running example of the paper's Figure 1: six vertices, two
	// triangles joined by two unit edges; the minimum cut has value 2.
	g := parcut.NewGraph(6)
	edges := []struct {
		u, v int
		w    int64
	}{
		{0, 1, 3}, {0, 2, 3}, {1, 2, 2}, // left triangle
		{3, 4, 1}, {3, 5, 2}, {4, 5, 1}, // right triangle
		{2, 3, 1}, {1, 4, 1}, // the two crossing edges
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			log.Fatalf("add edge: %v", err)
		}
	}

	res, err := parcut.MinCut(g, parcut.Options{
		Seed:          1,
		WantPartition: true,
		CollectStats:  true,
	})
	if err != nil {
		log.Fatalf("min cut: %v", err)
	}

	fmt.Printf("minimum cut value: %d\n", res.Value)
	fmt.Printf("one side of the cut:")
	for v, in := range res.InCut {
		if in {
			fmt.Printf(" %d", v)
		}
	}
	fmt.Println()
	fmt.Printf("trees scanned: %d, model work: %d, model depth: %d\n",
		res.TreesScanned, res.Work, res.Depth)

	// Sanity: re-evaluate the partition against the graph.
	fmt.Printf("partition re-evaluated: %d\n", g.CutValue(res.InCut))
}
