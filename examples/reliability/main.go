// Reliability: find the weakest point of a backbone network.
//
// Minimum cuts drive all-terminal network reliability analysis (the
// paper's motivating application [15]): if every link fails independently,
// the network's most likely global failure mode is concentrated on its
// minimum cuts. This example models a small continental backbone whose
// link capacities play the role of weights, finds the weakest cut, and
// then evaluates which single link upgrade raises the network's
// connectivity the most.
//
// Run with:
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"log"

	parcut "repro"
)

// link is a backbone edge with a capacity (in 10-Gbit/s units).
type link struct {
	a, b     string
	capacity int64
}

func main() {
	sites := []string{
		"SEA", "SFO", "LAX", "DEN", "DFW", "ORD", "ATL", "IAD", "NYC", "BOS",
	}
	idx := map[string]int{}
	for i, s := range sites {
		idx[s] = i
	}
	backbone := []link{
		{"SEA", "SFO", 8}, {"SEA", "DEN", 4}, {"SFO", "LAX", 10},
		{"SFO", "DEN", 6}, {"LAX", "DFW", 8}, {"DEN", "DFW", 6},
		{"DEN", "ORD", 8}, {"DFW", "ATL", 8}, {"ORD", "ATL", 6},
		{"ORD", "NYC", 10}, {"ATL", "IAD", 8}, {"IAD", "NYC", 12},
		{"NYC", "BOS", 10}, {"IAD", "BOS", 4}, {"DFW", "ORD", 4},
	}

	build := func(upgrade int) *parcut.Graph {
		g := parcut.NewGraph(len(sites))
		for i, l := range backbone {
			c := l.capacity
			if i == upgrade {
				c += 4 // the candidate upgrade adds 40 Gbit/s
			}
			if err := g.AddEdge(idx[l.a], idx[l.b], c); err != nil {
				log.Fatalf("backbone edge: %v", err)
			}
		}
		return g
	}

	base := build(-1)
	res, err := parcut.MinCut(base, parcut.Options{Seed: 7, WantPartition: true})
	if err != nil {
		log.Fatalf("min cut: %v", err)
	}
	fmt.Printf("weakest cut capacity: %d0 Gbit/s\n", res.Value)
	fmt.Printf("isolated side:")
	for v, in := range res.InCut {
		if in {
			fmt.Printf(" %s", sites[v])
		}
	}
	fmt.Println()

	// Which single upgrade helps most? Upgrading a link not on any
	// minimum cut cannot help, so the answer localizes the bottleneck.
	bestGain, bestLink := int64(0), -1
	for i := range backbone {
		r, err := parcut.MinCut(build(i), parcut.Options{Seed: 7})
		if err != nil {
			log.Fatalf("upgrade %d: %v", i, err)
		}
		if gain := r.Value - res.Value; gain > bestGain {
			bestGain, bestLink = gain, i
		}
	}
	if bestLink < 0 {
		fmt.Println("no single upgrade improves the weakest cut (several disjoint minimum cuts)")
		return
	}
	l := backbone[bestLink]
	fmt.Printf("best single upgrade: %s—%s (+40 Gbit/s) raises the weakest cut by %d0 Gbit/s\n",
		l.a, l.b, bestGain)
}
