// Doublefailure: worst-case two-link failure analysis on a routing tree.
//
// The paper's §4 primitive — the smallest cut crossing at most two edges
// of a fixed spanning tree — answers an operations question directly:
// traffic in many networks follows a spanning tree (STP L2 domains, MPLS
// primary trees), and when up to two tree links fail simultaneously, the
// network splits along a cut that crosses exactly those tree links. The
// residual capacity of that cut (the non-tree links that survive) is what
// reroute has to work with. ConstrainedMinCut finds the *worst* such
// double failure: the pair of tree links whose induced partition has the
// least total capacity crossing it.
//
// Run with:
//
//	go run ./examples/doublefailure
package main

import (
	"fmt"
	"log"

	parcut "repro"
)

func main() {
	sites := []string{"core1", "core2", "agg1", "agg2", "agg3", "tor1", "tor2", "tor3", "tor4"}
	idx := map[string]int{}
	for i, s := range sites {
		idx[s] = i
	}
	type link struct {
		a, b string
		cap  int64
		tree bool // on the active routing tree?
	}
	links := []link{
		{"core1", "core2", 40, true},
		{"core1", "agg1", 20, true},
		{"core1", "agg2", 20, true},
		{"core2", "agg3", 20, true},
		{"agg1", "tor1", 10, true},
		{"agg1", "tor2", 10, true},
		{"agg2", "tor3", 10, true},
		{"agg3", "tor4", 10, true},
		// Redundant (non-tree) links that survive tree failures:
		{"core2", "agg1", 20, false},
		{"agg2", "tor2", 5, false},
		{"agg2", "agg3", 10, false},
		{"tor3", "tor4", 5, false},
		{"tor1", "tor3", 5, false},
	}

	g := parcut.NewGraph(len(sites))
	for _, l := range links {
		if err := g.AddEdge(idx[l.a], idx[l.b], l.cap); err != nil {
			log.Fatal(err)
		}
	}
	// The routing tree as a parent array rooted at core1.
	parent := make([]int32, len(sites))
	for i := range parent {
		parent[i] = -1
	}
	for _, l := range links {
		if !l.tree {
			continue
		}
		// Orient away from core1 (a is always the parent in this table).
		parent[idx[l.b]] = int32(idx[l.a])
	}

	res, err := parcut.ConstrainedMinCut(g, parent, parcut.Options{WantPartition: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst ≤2-tree-link failure partitions the network with only %d0 Gbit/s crossing\n", res.Value)
	fmt.Printf("isolated side:")
	for v, in := range res.InCut {
		if in {
			fmt.Printf(" %s", sites[v])
		}
	}
	fmt.Println()
	fmt.Println("links crossing that partition (what reroute can still use):")
	for _, e := range g.CutEdges(res.InCut) {
		onTree := parent[e.U] == int32(e.V) || parent[e.V] == int32(e.U)
		kind := "backup"
		if onTree {
			kind = "TREE LINK (fails)"
		}
		fmt.Printf("  %-6s—%-6s %3d0 Gbit/s  %s\n", sites[e.U], sites[e.V], e.W, kind)
	}
}
