package parcut

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestProgressSnapshotAfterSolve: a completed solve leaves the sink's
// counters consistent with the result — runs complete, trees scanned
// matching Result.TreesScanned, packing rounds and bough phases recorded,
// fraction saturated at 1.
func TestProgressSnapshotAfterSolve(t *testing.T) {
	g := RandomGraph(80, 300, 20, 3)
	var events int
	var mu sync.Mutex
	p := NewProgress(func(ProgressSnapshot) {
		mu.Lock()
		events++
		mu.Unlock()
	})
	res, err := MinCut(g, Options{Seed: 1, Boost: 2, Progress: p})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.RunsDone != 2 || s.RunsTotal != 2 {
		t.Fatalf("runs = %d/%d, want 2/2", s.RunsDone, s.RunsTotal)
	}
	if s.TreesScanned != int64(res.TreesScanned) || s.TreesTotal != s.TreesScanned {
		t.Fatalf("trees = %d/%d, Result.TreesScanned = %d", s.TreesScanned, s.TreesTotal, res.TreesScanned)
	}
	if s.PackRoundsDone == 0 || s.PackRoundsDone > s.PackRoundsTotal {
		t.Fatalf("pack rounds = %d/%d, want 0 < done <= total", s.PackRoundsDone, s.PackRoundsTotal)
	}
	if s.BoughPhasesDone == 0 || s.BoughsProcessed == 0 {
		t.Fatalf("bough phases = %d, boughs = %d, want both > 0", s.BoughPhasesDone, s.BoughsProcessed)
	}
	if f := s.Fraction(); f != 1 {
		t.Fatalf("Fraction = %v after completion, want 1", f)
	}
	mu.Lock()
	defer mu.Unlock()
	if events == 0 {
		t.Fatal("progress hook never fired")
	}
}

// parkAt runs a solve with a Progress hook that blocks the first time
// cond matches, cancels the context while the solver is parked at that
// seam, releases it, and returns the solve's error and the final
// snapshot. The solver must unwind with a cancellation error without
// doing the remaining phases' work.
func parkAt(t *testing.T, g *Graph, opt Options, cond func(ProgressSnapshot) bool) (error, ProgressSnapshot) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	p := NewProgress(func(ps ProgressSnapshot) {
		if cond(ps) {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
	})
	opt.Progress = p
	done := make(chan error, 1)
	go func() {
		_, err := MinCutContext(ctx, g, opt)
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(60 * time.Second):
		t.Fatal("solver never reached the park point")
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		return err, p.Snapshot()
	case <-time.After(60 * time.Second):
		t.Fatal("solver did not unwind after cancellation at a phase seam")
		return nil, ProgressSnapshot{}
	}
}

// TestCancelParkedInPackingUnwinds pins the solve at the moment it enters
// the packing phase; after cancellation it must unwind from inside
// packing (the new per-round context checks) without packing a single
// round.
func TestCancelParkedInPackingUnwinds(t *testing.T) {
	g := RandomGraph(300, 1200, 50, 7)
	err, s := parkAt(t, g, Options{Seed: 1, Parallelism: 1},
		func(ps ProgressSnapshot) bool { return ps.Phase == "packing" })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.PackRoundsDone != 0 {
		t.Fatalf("PackRoundsDone = %d after cancel at packing entry, want 0", s.PackRoundsDone)
	}
	if s.TreesScanned != 0 {
		t.Fatalf("TreesScanned = %d, want 0 (scan phase never ran)", s.TreesScanned)
	}
}

// TestCancelParkedAtScanEntryUnwinds pins the solve at the scan phase
// boundary (packing complete, no tree scanned yet); cancellation must
// skip every tree scan.
func TestCancelParkedAtScanEntryUnwinds(t *testing.T) {
	g := RandomGraph(300, 1200, 50, 7)
	err, s := parkAt(t, g, Options{Seed: 1, Parallelism: 1},
		func(ps ProgressSnapshot) bool { return ps.Phase == "scan" })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.TreesScanned != 0 {
		t.Fatalf("TreesScanned = %d after cancel at scan entry, want 0", s.TreesScanned)
	}
	if s.TreesTotal == 0 {
		t.Fatal("TreesTotal = 0: packing did not publish its trees before the scan boundary")
	}
}

// TestCancelParkedAtBoughPhaseUnwinds pins the solve inside a tree scan,
// right after its first bough phase completes (the decomp/respect seam);
// cancellation must unwind within one phase instead of finishing the
// scan's remaining phases and trees.
func TestCancelParkedAtBoughPhaseUnwinds(t *testing.T) {
	g := RandomGraph(300, 1200, 50, 7)
	err, s := parkAt(t, g, Options{Seed: 1, Parallelism: 1},
		func(ps ProgressSnapshot) bool { return ps.BoughPhasesDone >= 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One phase was done when we parked; the documented cancellation
	// latency is a single phase, so at most one more may slip in on the
	// current tree before the seam check fires.
	if s.BoughPhasesDone > 2 {
		t.Fatalf("BoughPhasesDone = %d, want <= 2 (prompt unwind)", s.BoughPhasesDone)
	}
	if s.TreesScanned >= s.TreesTotal {
		t.Fatalf("all %d trees scanned despite mid-scan cancellation", s.TreesScanned)
	}
}
