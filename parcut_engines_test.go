package parcut

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestEnginesList: the public surface reports the built-in engines.
func TestEnginesList(t *testing.T) {
	want := []string{"geissmann", "stoerwagner", "kargerstein", "andersonblelloch"}
	if got := Engines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
}

// TestEngineOptionThreadsThrough: Options.Engine routes the solve to the
// named backend, and every backend agrees on the value. A boosted solve
// on a non-decomposable engine collapses to one run.
func TestEngineOptionThreadsThrough(t *testing.T) {
	g := RandomGraph(60, 240, 20, 11)
	ref, err := MinCut(g, Options{Seed: 1, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"andersonblelloch", "stoerwagner", "kargerstein", "auto"} {
		res, err := MinCut(g, Options{Seed: 1, WantPartition: true, Engine: name, Boost: 3})
		if err != nil {
			t.Fatalf("engine %q: %v", name, err)
		}
		if res.Value != ref.Value {
			t.Fatalf("engine %q: value %d, default engine found %d", name, res.Value, ref.Value)
		}
		if v := g.CutValue(res.InCut); v != res.Value {
			t.Fatalf("engine %q: partition re-evaluates to %d, want %d", name, v, res.Value)
		}
	}
	if _, err := MinCut(g, Options{Engine: "edmondskarp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestBoostCollapsesOnExactEngine: progress accounting proves the boost
// loop ran once — repeating a deterministic exact solve is wasted work, so
// the capability gate must collapse Boost to a single run.
func TestBoostCollapsesOnExactEngine(t *testing.T) {
	g := RandomGraph(40, 160, 20, 13)
	p := NewProgress(nil)
	if _, err := MinCut(g, Options{Seed: 1, Boost: 4, Engine: "stoerwagner", Progress: p}); err != nil {
		t.Fatal(err)
	}
	if s := p.Snapshot(); s.RunsTotal != 1 || s.RunsDone != 1 {
		t.Fatalf("runs = %d/%d with boost 4 on an exact engine, want 1/1", s.RunsDone, s.RunsTotal)
	}
}

// TestCancelParkedInContractStoerWagner parks the promoted Stoer–Wagner
// engine mid-phase (the same blocking-Notify harness the paper solver's
// seam tests use), cancels, and requires a prompt unwind with the
// contraction left visibly unfinished.
func TestCancelParkedInContractStoerWagner(t *testing.T) {
	g := RandomGraph(300, 1200, 50, 7)
	err, s := parkAt(t, g, Options{Seed: 1, Parallelism: 1, Engine: "stoerwagner"},
		func(ps ProgressSnapshot) bool { return ps.Phase == "contract" && ps.TreesScanned >= 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Phase != "contract" {
		t.Fatalf("final phase = %q, want contract", s.Phase)
	}
	// Parked after the first contraction phase; the per-phase ctx check
	// must stop the loop long before its n-1 phases finish.
	if s.TreesScanned >= s.TreesTotal {
		t.Fatalf("contraction ran to completion (%d/%d) despite cancellation", s.TreesScanned, s.TreesTotal)
	}
}

// TestCancelParkedInScanAndersonBlelloch parks the Anderson–Blelloch
// engine at its new phase seam — a completed heavy-path sweep inside a
// tree scan (reported through the bough-phase counters) — cancels, and
// requires a prompt unwind: the seam check between heavy paths must stop
// the remaining paths and trees.
func TestCancelParkedInScanAndersonBlelloch(t *testing.T) {
	g := RandomGraph(200, 800, 50, 7)
	err, s := parkAt(t, g, Options{Seed: 1, Parallelism: 1, Engine: "andersonblelloch"},
		func(ps ProgressSnapshot) bool { return ps.Phase == "scan" && ps.BoughPhasesDone >= 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Phase != "scan" {
		t.Fatalf("final phase = %q, want scan", s.Phase)
	}
	// Parked after one heavy path; at most the in-flight path may finish
	// before the per-path ctx check fires.
	if s.BoughPhasesDone > 2 {
		t.Fatalf("BoughPhasesDone = %d, want <= 2 (prompt unwind)", s.BoughPhasesDone)
	}
	if s.TreesScanned >= s.TreesTotal {
		t.Fatalf("all %d trees scanned despite mid-scan cancellation", s.TreesTotal)
	}
}

// TestCancelParkedInContractKargerStein parks the Karger–Stein engine
// after its first finished trial; cancellation must stop the remaining
// trials.
func TestCancelParkedInContractKargerStein(t *testing.T) {
	g := RandomGraph(100, 400, 50, 7)
	err, s := parkAt(t, g, Options{Seed: 1, Parallelism: 1, Engine: "kargerstein"},
		func(ps ProgressSnapshot) bool { return ps.Phase == "contract" && ps.TreesScanned >= 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.TreesScanned >= s.TreesTotal {
		t.Fatalf("all %d trials ran despite cancellation", s.TreesTotal)
	}
}
