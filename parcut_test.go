package parcut

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph/gen"
)

func TestPublicMinCutQuickstart(t *testing.T) {
	g := NewGraph(4)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 3}, {1, 2, 1}, {2, 3, 4}, {3, 0, 2}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	res, err := MinCut(g, Options{Seed: 1, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 { // cycle: two lightest edges are 1 and 2
		t.Fatalf("quickstart cut = %d, want 3", res.Value)
	}
	if got := g.CutValue(res.InCut); got != 3 {
		t.Fatalf("partition value %d", got)
	}
}

func TestPublicMinCutMatchesBaseline(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		inner := gen.RandomConnected(30, 120, 10, seed)
		g := &Graph{g: inner}
		want, _, err := baseline.StoerWagner(inner)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinCut(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("seed %d: %d want %d", seed, res.Value, want)
		}
	}
}

func TestPublicStats(t *testing.T) {
	g := RandomGraph(50, 200, 8, 3)
	res, err := MinCut(g, Options{Seed: 2, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work == 0 || res.Depth == 0 || res.TreesScanned == 0 {
		t.Fatalf("stats empty: %+v", res)
	}
	res2, err := MinCut(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Work != 0 || res2.Depth != 0 {
		t.Fatal("stats reported without CollectStats")
	}
}

func TestPublicNilAndTiny(t *testing.T) {
	if _, err := MinCut(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := MinCut(NewGraph(1), Options{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ConstrainedMinCut(nil, nil, Options{}); err == nil {
		t.Fatal("nil graph accepted by ConstrainedMinCut")
	}
}

func TestPublicGraphIO(t *testing.T) {
	g := RandomGraph(20, 60, 9, 7)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.TotalWeight() != g.TotalWeight() {
		t.Fatal("round trip mismatch")
	}
	a, err := MinCut(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCut(g2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatal("round-tripped graph has different cut")
	}
}

func TestPublicConstrainedMinCut(t *testing.T) {
	g := NewGraph(5)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 1}, {1, 2, 9}, {2, 3, 1}, {3, 4, 9}, {0, 4, 9}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	parent := []int32{-1, 0, 1, 2, 3}
	res, err := ConstrainedMinCut(g, parent, Options{WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("constrained = %d want 2", res.Value)
	}
}

func TestPathAggregatorBatchAndCommit(t *testing.T) {
	// Path tree 0-1-2-3-4.
	parent := []int32{-1, 0, 1, 2, 3}
	w := []int64{10, 20, 5, 30, 40}
	p, err := NewPathAggregator(parent, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run([]PathOp{
		MinPath(4),       // min(40,30,5,20,10) = 5
		AddPath(2, +100), // weights: 110,120,105,30,40
		MinPath(4),       // min(40,30,105,120,110) = 30
		MinPath(1),       // min(120,110) = 110
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 0, 30, 110}
	for i, v := range want {
		if res[i] != v && (i != 1) {
			t.Errorf("op %d: got %d want %d", i, res[i], v)
		}
	}
	// Commit: the next batch sees the updated weights.
	if got := p.Weight(0); got != 110 {
		t.Fatalf("committed weight(0)=%d want 110", got)
	}
	res2, err := p.Run([]PathOp{MinPath(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res2[0] != 30 {
		t.Fatalf("second batch sees %d want 30", res2[0])
	}
}

func TestPathAggregatorAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 200
	parent := make([]int32, n)
	perm := rng.Perm(n)
	parent[perm[0]] = -1
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(rng.Intn(100))
	}
	p, err := NewPathAggregator(parent, w)
	if err != nil {
		t.Fatal(err)
	}
	// Naive mirror.
	naiveW := append([]int64(nil), w...)
	naiveMin := func(v int32) int64 {
		best := naiveW[v]
		for u := v; u != -1; u = parent[u] {
			if naiveW[u] < best {
				best = naiveW[u]
			}
		}
		return best
	}
	naiveAdd := func(v int32, x int64) {
		for u := v; u != -1; u = parent[u] {
			naiveW[u] += x
		}
	}
	for batch := 0; batch < 3; batch++ {
		k := 100
		ops := make([]PathOp, k)
		for i := range ops {
			v := int32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				ops[i] = MinPath(v)
			} else {
				ops[i] = AddPath(v, int64(rng.Intn(21)-10))
			}
		}
		got, err := p.Run(ops)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range ops {
			if op.Query {
				if want := naiveMin(op.Vertex); got[i] != want {
					t.Fatalf("batch %d op %d: %d want %d", batch, i, got[i], want)
				}
			} else {
				naiveAdd(op.Vertex, op.X)
			}
		}
	}
}

func TestPathAggregatorValidation(t *testing.T) {
	if _, err := NewPathAggregator([]int32{-1, 0}, []int64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	p, err := NewPathAggregator([]int32{-1, 0}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]PathOp{MinPath(7)}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}
