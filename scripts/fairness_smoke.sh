#!/usr/bin/env bash
# fairness_smoke.sh — end-to-end scheduler fairness check for mincutd's
# QoS classes. It boots the real daemon with a small worker pool, floods
# it with background solves (distinct seeds, so nothing coalesces), then
# submits one interactive solve mid-flood and asserts that
#
#   * the interactive solve completes while the background queue is still
#     deep (it jumped the flood instead of waiting it out),
#   * the per-class metrics exist and account for the flood
#     (queue_depth{class="background"}, jobs_dispatched_total{class=...}),
#   * an NDJSON event stream for a job reaches its terminal result event.
#
# Runs in CI and locally: ./scripts/fairness_smoke.sh
set -euo pipefail

PORT="${PORT:-18372}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
LOG="${WORKDIR}/mincutd.log"
PID=""

cleanup() {
  [[ -n "${PID}" ]] && kill -9 "${PID}" 2>/dev/null || true
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- mincutd log ---" >&2
  cat "${LOG}" >&2 || true
  exit 1
}

cd "$(dirname "$0")/.."
echo "== building mincutd"
go build -o "${WORKDIR}/mincutd" ./cmd/mincutd

echo "== starting mincutd (2 workers, weighted-fair classes)"
"${WORKDIR}/mincutd" -addr "127.0.0.1:${PORT}" -workers 2 \
  -class-weights "interactive=8,batch=4,background=1" >>"${LOG}" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  curl -fsS "${BASE}/healthz" >/dev/null 2>&1 && break
  kill -0 "${PID}" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
curl -fsS "${BASE}/healthz" >/dev/null || fail "daemon never became healthy"

# A graph big enough that one solve takes real time on a busy box.
graph() {
  local n="$1" i
  echo "p cut ${n} $((2 * n))"
  for ((i = 0; i < n; i++)); do
    echo "e ${i} $(((i + 1) % n)) $((2 + i % 5))"
    echo "e ${i} $(((i + 7) % n)) $((1 + i % 3))"
  done
}

json_field() {
  grep -o "\"$1\":[^,}]*" | head -n1 | sed 's/^[^:]*://; s/^"//; s/"$//'
}

metric() {
  curl -fsS "${BASE}/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

echo "== uploading graph"
ID=$(graph 600 | curl -fsS -X POST --data-binary @- "${BASE}/v1/graphs" | json_field id)
[[ "$ID" == sha256:* ]] || fail "bad upload id: ${ID}"

echo "== flooding with 40 background solves"
for i in $(seq 1 40); do
  curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"seed\": ${i}, \"class\": \"background\", \"async\": true}" \
    "${BASE}/v1/graphs/${ID}/mincut" >/dev/null
done

DEPTH=$(metric 'mincutd_queue_depth{class="background"}')
[[ -n "${DEPTH}" && "${DEPTH}" -ge 10 ]] || fail "background queue depth '${DEPTH}', want a deep flood"
echo "   background queue depth: ${DEPTH}"

echo "== submitting an interactive solve mid-flood"
JOB=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"seed": 777, "class": "interactive", "async": true}' \
  "${BASE}/v1/graphs/${ID}/mincut" | json_field job_id)
[[ -n "${JOB}" ]] || fail "no job id for interactive solve"

echo "== watching its NDJSON event stream until the terminal event"
EVENTS=$(curl -fsS -N --max-time 120 "${BASE}/v1/jobs/${JOB}/events" | sed '/"terminal":true/q')
echo "${EVENTS}" | grep -q '"terminal":true' || fail "event stream never reached a terminal event"
echo "${EVENTS}" | grep -q '"type":"phase"' || fail "event stream carried no phase transitions"
echo "${EVENTS}" | grep -q '"state":"done"' || fail "interactive solve did not finish cleanly"

DEPTH_AFTER=$(metric 'mincutd_queue_depth{class="background"}')
[[ -n "${DEPTH_AFTER}" && "${DEPTH_AFTER}" -ge 1 ]] ||
  fail "background queue already drained (depth '${DEPTH_AFTER}'); the interactive solve never had to jump it"
echo "   interactive solve done with background depth still ${DEPTH_AFTER} — no starvation"

DISPATCHED_INT=$(metric 'mincutd_jobs_dispatched_total{class="interactive"}')
[[ "${DISPATCHED_INT}" -ge 1 ]] || fail "interactive dispatch counter is '${DISPATCHED_INT}'"

echo "== graceful shutdown (remaining background jobs drain)"
kill -TERM "${PID}"
wait "${PID}" || fail "daemon exited uncleanly on SIGTERM"
PID=""

echo "PASS: fairness smoke"
