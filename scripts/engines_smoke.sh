#!/usr/bin/env bash
# engines_smoke.sh — end-to-end check of the pluggable engine seam. It
# boots the real daemon, uploads one graph, solves it over HTTP with every
# engine value (geissmann, andersonblelloch, stoerwagner, kargerstein,
# auto), and asserts that
#
#   * all five solves return the same cut value,
#   * each job reports its concrete engine ("auto" reports what it
#     picked, and on this graph size it must pick stoerwagner),
#   * the job's trace run span carries the engine attribute,
#   * /metrics carries the engine-labeled completion counters and solve
#     duration histograms,
#   * an unknown engine is rejected with a 400.
#
# Runs in CI and locally: ./scripts/engines_smoke.sh
set -euo pipefail

PORT="${PORT:-18375}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
LOG="${WORKDIR}/mincutd.log"
PID=""

cleanup() {
  [[ -n "${PID}" ]] && kill -9 "${PID}" 2>/dev/null || true
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- mincutd log ---" >&2
  cat "${LOG}" >&2 || true
  exit 1
}

cd "$(dirname "$0")/.."
echo "== building mincutd"
go build -o "${WORKDIR}/mincutd" ./cmd/mincutd

echo "== starting mincutd (tracing on)"
"${WORKDIR}/mincutd" -addr "127.0.0.1:${PORT}" -workers 2 \
  -trace-buffer 64 -log-format json >>"${LOG}" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  curl -fsS "${BASE}/healthz" >/dev/null 2>&1 && break
  kill -0 "${PID}" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
curl -fsS "${BASE}/healthz" >/dev/null || fail "daemon never became healthy"

# A 200-vertex near-4-regular graph: small enough that every engine
# (including Karger–Stein's Θ(n² log³ n) trials) solves it in seconds, and
# under the auto rule's SmallN so "auto" must pick stoerwagner.
graph() {
  local n=200 i
  echo "p cut ${n} $((2 * n))"
  for ((i = 0; i < n; i++)); do
    echo "e ${i} $(((i + 1) % n)) $((2 + i % 5))"
    echo "e ${i} $(((i + 7) % n)) $((1 + i % 3))"
  done
}

json_field() {
  grep -o "\"$1\":[^,}]*" | head -n1 | sed 's/^[^:]*://; s/^"//; s/"$//'
}

echo "== uploading graph"
ID=$(graph | curl -fsS -X POST --data-binary @- "${BASE}/v1/graphs" | json_field id)
[[ "$ID" == sha256:* ]] || fail "bad upload id: ${ID}"

declare -A VALUE ENGINE JOB
for eng in geissmann andersonblelloch stoerwagner kargerstein auto; do
  echo "== solving with engine=${eng}"
  RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"seed\": 7, \"engine\": \"${eng}\"}" "${BASE}/v1/graphs/${ID}/mincut")
  echo "${RESP}" | grep -q '"status":"done"' || fail "engine ${eng}: solve did not finish: ${RESP}"
  VALUE[$eng]=$(echo "${RESP}" | json_field value)
  ENGINE[$eng]=$(echo "${RESP}" | json_field engine)
  JOB[$eng]=$(echo "${RESP}" | json_field job_id)
  [[ -n "${VALUE[$eng]}" ]] || fail "engine ${eng}: no value in ${RESP}"
done

echo "== diffing cut values across engines"
for eng in andersonblelloch stoerwagner kargerstein auto; do
  [[ "${VALUE[$eng]}" == "${VALUE[geissmann]}" ]] ||
    fail "engine ${eng} found ${VALUE[$eng]}, geissmann found ${VALUE[geissmann]}"
done

echo "== checking reported engines"
for eng in geissmann andersonblelloch stoerwagner kargerstein; do
  [[ "${ENGINE[$eng]}" == "${eng}" ]] || fail "engine ${eng} reported as ${ENGINE[$eng]}"
done
[[ "${ENGINE[auto]}" == "stoerwagner" ]] ||
  fail "auto resolved to ${ENGINE[auto]} on a 200-vertex graph, want stoerwagner"
# Auto resolves before the cache key is built, so the auto solve must have
# been served from the explicit stoerwagner solve's cache entry.
[[ "${JOB[auto]}" == "${JOB[stoerwagner]}" ]] ||
  fail "auto ran job ${JOB[auto]} instead of sharing ${JOB[stoerwagner]}"

echo "== checking the job object reports the engine"
curl -fsS "${BASE}/v1/jobs/${JOB[kargerstein]}" | grep -q '"engine":"kargerstein"' ||
  fail "GET /v1/jobs lacks the engine"

echo "== checking the trace run span carries the engine attribute"
TRACE=$(curl -fsS "${BASE}/v1/traces/${JOB[stoerwagner]}")
echo "${TRACE}" | grep -q '"key":"engine","value":"stoerwagner"' ||
  fail "trace lacks the engine attribute: ${TRACE}"
echo "${TRACE}" | grep -q '"name":"contract"' || fail "stoerwagner trace lacks a contract span"
TRACE_AB=$(curl -fsS "${BASE}/v1/traces/${JOB[andersonblelloch]}")
echo "${TRACE_AB}" | grep -q '"name":"path-decompose"' ||
  fail "andersonblelloch trace lacks a path-decompose span"
echo "${TRACE_AB}" | grep -q '"name":"path-scan"' ||
  fail "andersonblelloch trace lacks a path-scan span"

echo "== checking the engine-labeled metric families"
METRICS=$(curl -fsS "${BASE}/metrics")
for want in \
  'mincutd_jobs_completed_total{class="interactive",engine="geissmann"} 1' \
  'mincutd_jobs_completed_total{class="interactive",engine="andersonblelloch"} 1' \
  'mincutd_jobs_completed_total{class="interactive",engine="stoerwagner"} 1' \
  'mincutd_jobs_completed_total{class="interactive",engine="kargerstein"} 1' \
  'mincutd_solve_duration_seconds_count{class="interactive",phase="contract",engine="stoerwagner"}' \
  'mincutd_solve_duration_seconds_count{class="interactive",phase="scan",engine="geissmann"}' \
  'mincutd_solve_duration_seconds_count{class="interactive",phase="scan",engine="andersonblelloch"}'; do
  echo "${METRICS}" | grep -qF "${want}" || fail "/metrics lacks ${want}"
done

echo "== checking an unknown engine is a 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{"engine": "edmondskarp"}' "${BASE}/v1/graphs/${ID}/mincut")
[[ "${CODE}" == "400" ]] || fail "unknown engine returned ${CODE}, want 400"

echo "== graceful shutdown"
kill -TERM "${PID}"
wait "${PID}" || fail "daemon exited uncleanly on SIGTERM"
PID=""

echo "PASS: engines smoke"
