#!/usr/bin/env bash
# trace_smoke.sh — end-to-end observability check for mincutd's solve
# tracing. It boots the real daemon with tracing on, runs one solve over
# HTTP, and asserts that
#
#   * GET /v1/traces/{job} returns the job's span tree with the full
#     chain: job root, queue-wait, http, run, packing, and scan spans,
#   * GET /v1/traces lists the trace and its graph/min_duration filters
#     behave,
#   * /metrics carries the new histogram families
#     (solve_duration_seconds, queue_wait_seconds,
#     http_request_duration_seconds) and the build_info gauge,
#   * the slow-solve threshold produces a structured "slow solve" log
#     line, and the pprof debug listener answers.
#
# Runs in CI and locally: ./scripts/trace_smoke.sh
set -euo pipefail

PORT="${PORT:-18373}"
DEBUG_PORT="${DEBUG_PORT:-18374}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
LOG="${WORKDIR}/mincutd.log"
PID=""

cleanup() {
  [[ -n "${PID}" ]] && kill -9 "${PID}" 2>/dev/null || true
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- mincutd log ---" >&2
  cat "${LOG}" >&2 || true
  exit 1
}

cd "$(dirname "$0")/.."
echo "== building mincutd"
go build -ldflags "-X main.version=trace-smoke" -o "${WORKDIR}/mincutd" ./cmd/mincutd

echo "== starting mincutd (tracing on, slow threshold 1ns, pprof debug listener)"
"${WORKDIR}/mincutd" -addr "127.0.0.1:${PORT}" -workers 2 \
  -trace-buffer 64 -trace-slow-threshold 1ns -log-format json \
  -debug-addr "127.0.0.1:${DEBUG_PORT}" >>"${LOG}" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  curl -fsS "${BASE}/healthz" >/dev/null 2>&1 && break
  kill -0 "${PID}" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
curl -fsS "${BASE}/healthz" >/dev/null || fail "daemon never became healthy"
curl -fsS "${BASE}/healthz" | grep -q '"version":"trace-smoke"' || fail "healthz lacks the build version"

graph() {
  local n="$1" i
  echo "p cut ${n} $((2 * n))"
  for ((i = 0; i < n; i++)); do
    echo "e ${i} $(((i + 1) % n)) $((2 + i % 5))"
    echo "e ${i} $(((i + 7) % n)) $((1 + i % 3))"
  done
}

json_field() {
  grep -o "\"$1\":[^,}]*" | head -n1 | sed 's/^[^:]*://; s/^"//; s/"$//'
}

echo "== uploading graph and solving"
ID=$(graph 400 | curl -fsS -X POST --data-binary @- "${BASE}/v1/graphs" | json_field id)
[[ "$ID" == sha256:* ]] || fail "bad upload id: ${ID}"
# Pin the paper engine: this script asserts its packing/scan span chain,
# and the default engine is "auto", which sends a 400-vertex graph to the
# stoerwagner baseline (engines_smoke.sh covers that path).
RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' -d '{"seed": 7, "engine": "geissmann"}' \
  "${BASE}/v1/graphs/${ID}/mincut")
JOB=$(echo "${RESP}" | json_field job_id)
echo "${RESP}" | grep -q '"status":"done"' || fail "solve did not finish: ${RESP}"
[[ -n "${JOB}" ]] || fail "no job id in ${RESP}"

echo "== fetching the span tree for ${JOB}"
TRACE=$(curl -fsS "${BASE}/v1/traces/${JOB}")
for span in job queue-wait http run packing scan; do
  echo "${TRACE}" | grep -q "\"name\":\"${span}\"" || fail "trace lacks a ${span} span: ${TRACE}"
done
echo "${TRACE}" | grep -q "\"key\":\"graph\",\"value\":\"${ID}\"" || fail "trace root not tagged with the graph"

echo "== listing traces with filters"
curl -fsS "${BASE}/v1/traces?graph=${ID}" | grep -q "\"id\":\"${JOB}\"" || fail "trace list by graph misses ${JOB}"
LISTED=$(curl -fsS "${BASE}/v1/traces?graph=${ID}&min_duration=1h")
echo "${LISTED}" | grep -q "\"id\":\"${JOB}\"" && fail "min_duration=1h failed to filter the trace out"

echo "== checking the new metric families"
METRICS=$(curl -fsS "${BASE}/metrics")
for want in \
  'mincutd_build_info{version="trace-smoke"' \
  'mincutd_solve_duration_seconds_bucket{class="interactive",phase="packing"' \
  'mincutd_solve_duration_seconds_count{class="interactive",phase="scan"}' \
  'mincutd_queue_wait_seconds_bucket{class="interactive"' \
  'mincutd_http_request_duration_seconds_bucket{route="POST /v1/graphs/{id}/mincut",code="200"'; do
  echo "${METRICS}" | grep -qF "${want}" || fail "/metrics lacks ${want}"
done

echo "== checking the slow-solve log line"
grep -q '"msg":"slow solve"' "${LOG}" || fail "no slow-solve line despite a 1ns threshold"
grep '"msg":"slow solve"' "${LOG}" | head -n1 | grep -q '"packing"' || fail "slow-solve line lacks phase attribution"

echo "== checking the pprof debug listener"
curl -fsS "http://127.0.0.1:${DEBUG_PORT}/debug/pprof/cmdline" >/dev/null || fail "pprof debug listener not answering"

echo "== graceful shutdown"
kill -TERM "${PID}"
wait "${PID}" || fail "daemon exited uncleanly on SIGTERM"
PID=""

echo "PASS: trace smoke"
