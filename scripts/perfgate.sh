#!/usr/bin/env bash
# perfgate.sh — the CI perf gate over the solver's inner-loop primitives.
#
# Runs paperbench's hotpath experiment (work-stealing fork-join, scan
# family, parallel merge/sort, arena-backed connectivity) with median-of-N
# repetitions, writes the measured series to BENCH_hotpath.json, and
# compares them against the committed BENCH_baseline.json. Timing is
# normalized by the ref_spin calibration series so the comparison cancels
# raw host speed; allocs/op is compared directly. A regression beyond the
# tolerance fails the script (and the CI job).
#
# To accept an intended slowdown, refresh and commit the baseline:
#
#   go run ./cmd/paperbench -exp hotpath -hotpath-reps 3 -hotpath-out BENCH_baseline.json
#
# Environment overrides:
#   PERFGATE_BASELINE   baseline JSON path   (default BENCH_baseline.json)
#   PERFGATE_OUT        output JSON path     (default BENCH_hotpath.json)
#   PERFGATE_REPS       repetitions/series   (default 3)
#   PERFGATE_TOLERANCE  allowed regression   (default 0.10 = 10%)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${PERFGATE_BASELINE:-BENCH_baseline.json}"
out="${PERFGATE_OUT:-BENCH_hotpath.json}"
reps="${PERFGATE_REPS:-3}"
tol="${PERFGATE_TOLERANCE:-0.10}"

if [ ! -f "$baseline" ]; then
    echo "perfgate: baseline $baseline missing — generate and commit it first:" >&2
    echo "  go run ./cmd/paperbench -exp hotpath -hotpath-reps 3 -hotpath-out $baseline" >&2
    exit 1
fi

exec go run ./cmd/paperbench -exp hotpath \
    -hotpath-reps "$reps" \
    -hotpath-out "$out" \
    -perf-baseline "$baseline" \
    -perf-tolerance "$tol"
