#!/usr/bin/env bash
# crash_recovery_smoke.sh — end-to-end crash-safety check for mincutd's
# persistent graph store. It boots the real daemon with -data-dir, uploads
# graphs (one via the batch endpoint), records their min-cut values, kills
# the process with SIGKILL (no drain, no flush), appends garbage to a
# segment file to simulate a torn tail write, restarts on the same
# directory, and asserts that
#
#   * every graph solves with the same value WITHOUT being re-uploaded,
#   * the recovery metrics report the recovered graphs and the truncated
#     torn tail.
#
# Runs in CI and locally: ./scripts/crash_recovery_smoke.sh
set -euo pipefail

PORT="${PORT:-18371}"
BASE="http://127.0.0.1:${PORT}"
WORKDIR="$(mktemp -d)"
DATADIR="${WORKDIR}/data"
LOG="${WORKDIR}/mincutd.log"
PID=""

cleanup() {
  [[ -n "${PID}" ]] && kill -9 "${PID}" 2>/dev/null || true
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- mincutd log ---" >&2
  cat "${LOG}" >&2 || true
  exit 1
}

cd "$(dirname "$0")/.."
echo "== building mincutd"
go build -o "${WORKDIR}/mincutd" ./cmd/mincutd

start_daemon() {
  "${WORKDIR}/mincutd" -addr "127.0.0.1:${PORT}" -workers 2 -data-dir "${DATADIR}" >>"${LOG}" 2>&1 &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "${BASE}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "${PID}" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
  done
  fail "daemon never became healthy"
}

# graph N WEIGHT_STEP — emit a cycle graph in the text format.
graph() {
  local n="$1" i
  echo "p cut ${n} ${n}"
  for ((i = 0; i < n; i++)); do
    echo "e ${i} $(((i + 1) % n)) $((2 + i % 3))"
  done
}

# json_field FIELD — extract a scalar JSON field value from stdin (the
# responses here are flat enough that a grep suffices; no jq dependency).
json_field() {
  grep -o "\"$1\":[^,}]*" | head -n1 | sed 's/^[^:]*://; s/^"//; s/"$//'
}

metric() {
  curl -fsS "${BASE}/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

echo "== starting mincutd with -data-dir ${DATADIR}"
start_daemon

echo "== uploading graphs"
ID1=$(graph 8 | curl -fsS -X POST --data-binary @- "${BASE}/v1/graphs" | json_field id)
ID2=$(graph 12 | curl -fsS -X POST --data-binary @- "${BASE}/v1/graphs" | json_field id)
BATCH_BODY=$(printf '{"graphs": [{"text": "%s"}]}' "$(graph 16 | sed ':a;N;$!ba;s/\n/\\n/g')\\n")
ID3=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "${BATCH_BODY}" "${BASE}/v1/graphs:batch" | json_field id)
for id in "$ID1" "$ID2" "$ID3"; do
  [[ "$id" == sha256:* ]] || fail "bad upload id: ${id}"
done

solve() {
  curl -fsS -X POST -H 'Content-Type: application/json' -d '{"seed": 1}' \
    "${BASE}/v1/graphs/$1/mincut" | json_field value
}

V1=$(solve "$ID1"); V2=$(solve "$ID2"); V3=$(solve "$ID3")
echo "   values before crash: ${V1} ${V2} ${V3}"
[[ -n "$V1" && -n "$V2" && -n "$V3" ]] || fail "missing solve values"

echo "== hard-killing the daemon (SIGKILL, no drain)"
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
PID=""

echo "== simulating a torn tail write on the newest segment"
SEG=$(ls "${DATADIR}"/seg-*.dat | sort | tail -n1)
printf 'p cut 999 999\ne 0 1' >>"${SEG}"

echo "== restarting on the same data dir"
start_daemon

RECOVERED=$(metric mincutd_store_recovered_graphs_total)
CORRUPT=$(metric mincutd_store_corrupt_tail_total)
echo "   recovered=${RECOVERED} corrupt_tails=${CORRUPT}"
[[ "${RECOVERED}" == "3" ]] || fail "expected 3 recovered graphs, got '${RECOVERED}'"
[[ "${CORRUPT}" == "1" ]] || fail "expected 1 truncated torn tail, got '${CORRUPT}'"

echo "== solving WITHOUT re-upload"
W1=$(solve "$ID1"); W2=$(solve "$ID2"); W3=$(solve "$ID3")
echo "   values after restart: ${W1} ${W2} ${W3}"
[[ "$W1" == "$V1" && "$W2" == "$V2" && "$W3" == "$V3" ]] ||
  fail "values changed across restart: ${V1},${V2},${V3} -> ${W1},${W2},${W3}"

echo "== graceful shutdown"
kill -TERM "${PID}"
wait "${PID}" || fail "daemon exited uncleanly on SIGTERM"
PID=""

echo "PASS: crash recovery smoke"
