#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end check of sharded cluster mode against
# three real daemons. It boots a 3-node cluster, then asserts that
#
#   * all three nodes see each other as healthy peers,
#   * uploads through one node spread across shards by content hash, and
#     each response names the owning node,
#   * the same solve through two different non-owner nodes returns an
#     identical cut value and partition, stamped with the owner's
#     address (result neutrality: the entry node never matters),
#   * an X-Request-Id sent through a non-owner lands in the OWNER's
#     trace for the job, together with the forwarding node's address,
#   * the multi-graph batch endpoint fans out across shards and merges
#     results in input order,
#   * /metrics on a forwarding node carries the cluster families,
#   * kill -9 of one node takes out exactly its shard: solves for its
#     graphs answer 502 through a survivor while other shards keep
#     working,
#   * the survivors shut down cleanly on SIGTERM.
#
# Runs in CI and locally: ./scripts/cluster_smoke.sh
set -euo pipefail

PORTS=(18390 18391 18392)
WORKDIR="$(mktemp -d)"
PIDS=()

addr() { echo "127.0.0.1:$1"; }
base() { echo "http://127.0.0.1:$1"; }

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [[ -n "${pid}" ]] && kill -9 "${pid}" 2>/dev/null || true
  done
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for port in "${PORTS[@]}"; do
    echo "--- mincutd ${port} log ---" >&2
    cat "${WORKDIR}/${port}.log" >&2 || true
  done
  exit 1
}

json_field() {
  grep -o "\"$1\":[^,}]*" | head -n1 | sed 's/^[^:]*://; s/^"//; s/"$//'
}

cd "$(dirname "$0")/.."
echo "== building mincutd"
go build -o "${WORKDIR}/mincutd" ./cmd/mincutd

PEERS="$(addr "${PORTS[0]}"),$(addr "${PORTS[1]}"),$(addr "${PORTS[2]}")"
echo "== starting 3-node cluster (${PEERS})"
for port in "${PORTS[@]}"; do
  "${WORKDIR}/mincutd" -addr "$(addr "${port}")" -advertise "$(addr "${port}")" \
    -peers "${PEERS}" -peer-probe-interval 200ms -workers 2 \
    -trace-buffer 64 -log-format json >>"${WORKDIR}/${port}.log" 2>&1 &
  PIDS+=($!)
done
for i in "${!PORTS[@]}"; do
  port="${PORTS[$i]}"
  for _ in $(seq 1 100); do
    curl -fsS "$(base "${port}")/healthz" >/dev/null 2>&1 && break
    kill -0 "${PIDS[$i]}" 2>/dev/null || fail "node ${port} died during startup"
    sleep 0.1
  done
  curl -fsS "$(base "${port}")/healthz" >/dev/null || fail "node ${port} never became healthy"
done

echo "== waiting for peer probes to mark everyone up"
for _ in $(seq 1 50); do
  UP=$(curl -fsS "$(base "${PORTS[0]}")/healthz" | grep -o '"up":true' | wc -l)
  [[ "${UP}" -ge 2 ]] && break
  sleep 0.1
done
[[ "${UP}" -ge 2 ]] || fail "node ${PORTS[0]} never saw both peers healthy"

# An 8-vertex weighted cycle; varying the base weight w changes the
# content hash (steering placement) and the answer (min cut = 2*w, the
# two cheapest edges).
graph() {
  local w=$1 n=8 i
  echo "p cut ${n} ${n}"
  for ((i = 0; i < n; i++)); do
    echo "e ${i} $(((i + 1) % n)) $((w + i % 3))"
  done
}

# Upload graphs through node A until content hashing lands one on the
# node we will kill and one on a different (safe) node.
KILL_ADDR="$(addr "${PORTS[2]}")"
ID_KILL="" ID_SAFE="" SAFE_ADDR="" WANT_KILL="" WANT_SAFE=""
echo "== uploading through node A until two shards are populated"
for w in $(seq 1 60); do
  RESP=$(graph "${w}" | curl -fsS -X POST --data-binary @- "$(base "${PORTS[0]}")/v1/graphs")
  ID=$(echo "${RESP}" | json_field id)
  NODE=$(echo "${RESP}" | json_field node)
  [[ "$ID" == sha256:* && -n "${NODE}" ]] || fail "bad upload response: ${RESP}"
  if [[ -z "${ID_KILL}" && "${NODE}" == "${KILL_ADDR}" ]]; then
    ID_KILL="${ID}" WANT_KILL=$((2 * w))
  elif [[ -z "${ID_SAFE}" && "${NODE}" != "${KILL_ADDR}" ]]; then
    ID_SAFE="${ID}" SAFE_ADDR="${NODE}" WANT_SAFE=$((2 * w))
  fi
  [[ -n "${ID_KILL}" && -n "${ID_SAFE}" ]] && break
done
[[ -n "${ID_KILL}" && -n "${ID_SAFE}" ]] || fail "60 uploads never covered two shards"
echo "   shard ${KILL_ADDR}: ${ID_KILL} (cut ${WANT_KILL}); shard ${SAFE_ADDR}: ${ID_SAFE} (cut ${WANT_SAFE})"

echo "== solving the same graph through two non-owner nodes"
declare -A VAL CUT NODEF
for port in "${PORTS[1]}" "${PORTS[2]}"; do
  RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"seed": 7, "want_partition": true}' "$(base "${port}")/v1/graphs/${ID_SAFE}/mincut")
  echo "${RESP}" | grep -q '"status":"done"' || fail "solve via ${port} did not finish: ${RESP}"
  VAL[$port]=$(echo "${RESP}" | json_field value)
  CUT[$port]=$(echo "${RESP}" | grep -o '"in_cut":\[[^]]*\]')
  NODEF[$port]=$(echo "${RESP}" | json_field node)
done
[[ "${VAL[${PORTS[1]}]}" == "${WANT_SAFE}" ]] ||
  fail "solve returned ${VAL[${PORTS[1]}]}, want ${WANT_SAFE}"
[[ "${VAL[${PORTS[1]}]}" == "${VAL[${PORTS[2]}]}" ]] ||
  fail "cut value differs by entry node: ${VAL[${PORTS[1]}]} vs ${VAL[${PORTS[2]}]}"
[[ -n "${CUT[${PORTS[1]}]}" && "${CUT[${PORTS[1]}]}" == "${CUT[${PORTS[2]}]}" ]] ||
  fail "partition differs by entry node"
[[ "${NODEF[${PORTS[1]}]}" == "${SAFE_ADDR}" && "${NODEF[${PORTS[2]}]}" == "${SAFE_ADDR}" ]] ||
  fail "solve responses name ${NODEF[${PORTS[1]}]}/${NODEF[${PORTS[2]}]}, want owner ${SAFE_ADDR}"

echo "== checking a forwarded X-Request-Id lands in the owner's trace"
# Fresh seed so the solve cannot be served from cache (a cache hit would
# reuse an old job whose trace predates this request ID).
RID="rid-cluster-smoke-$$"
VIA_PORT="${PORTS[1]}"
[[ "${SAFE_ADDR}" == "$(addr "${VIA_PORT}")" ]] && VIA_PORT="${PORTS[2]}"
RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' -H "X-Request-Id: ${RID}" \
  -d '{"seed": 99}' "$(base "${VIA_PORT}")/v1/graphs/${ID_SAFE}/mincut")
JOB=$(echo "${RESP}" | json_field job_id)
[[ -n "${JOB}" ]] || fail "no job_id in forwarded solve: ${RESP}"
OWNER_BASE="http://${SAFE_ADDR}"
TRACE=$(curl -fsS "${OWNER_BASE}/v1/traces/${JOB}")
echo "${TRACE}" | grep -q "${RID}" ||
  fail "owner trace for ${JOB} lacks the forwarded request id ${RID}: ${TRACE}"
echo "${TRACE}" | grep -q "$(addr "${VIA_PORT}")" ||
  fail "owner trace for ${JOB} lacks the forwarding node: ${TRACE}"

echo "== multi-graph batch through node B fans out and merges in order"
BATCH=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"items\":[{\"graph_id\":\"${ID_KILL}\",\"seed\":7},{\"graph_id\":\"${ID_SAFE}\",\"seed\":7}]}" \
  "$(base "${PORTS[1]}")/v1/mincut:batch")
FIRST=$(echo "${BATCH}" | grep -o '"graph_id":"[^"]*"' | head -n1 | sed 's/"graph_id"://; s/"//g')
[[ "${FIRST}" == "${ID_KILL}" ]] || fail "batch results out of input order: ${BATCH}"
echo "${BATCH}" | grep -q "\"node\":\"${KILL_ADDR}\"" || fail "batch lacks shard ${KILL_ADDR}: ${BATCH}"
echo "${BATCH}" | grep -q "\"node\":\"${SAFE_ADDR}\"" || fail "batch lacks shard ${SAFE_ADDR}: ${BATCH}"
echo "${BATCH}" | grep -q "\"value\":${WANT_KILL}[,}]" || fail "batch lacks cut ${WANT_KILL}: ${BATCH}"
echo "${BATCH}" | grep -q "\"value\":${WANT_SAFE}[,}]" || fail "batch lacks cut ${WANT_SAFE}: ${BATCH}"

echo "== checking the cluster metric families on node A"
METRICS=$(curl -fsS "$(base "${PORTS[0]}")/metrics")
for want in \
  'mincutd_cluster_members' \
  'mincutd_cluster_ring_vnodes' \
  "mincutd_cluster_peer_up{peer=\"${KILL_ADDR}\"} 1" \
  'mincutd_cluster_forwarded_total'; do
  echo "${METRICS}" | grep -qF "${want}" || fail "/metrics lacks ${want}"
done

echo "== kill -9 node C: exactly its shard goes 502"
kill -9 "${PIDS[2]}"
wait "${PIDS[2]}" 2>/dev/null || true
PIDS[2]=""
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{"seed": 11}' "$(base "${PORTS[0]}")/v1/graphs/${ID_KILL}/mincut")
[[ "${CODE}" == "502" ]] || fail "dead shard solve returned ${CODE}, want 502"
RESP=$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"seed": 11}' "$(base "${PORTS[0]}")/v1/graphs/${ID_SAFE}/mincut")
echo "${RESP}" | grep -q "\"value\":${WANT_SAFE}[,}]" ||
  fail "surviving shard broken after peer death: ${RESP}"

echo "== waiting for probes to gate the dead peer in /metrics"
for _ in $(seq 1 50); do
  curl -fsS "$(base "${PORTS[0]}")/metrics" |
    grep -qF "mincutd_cluster_peer_up{peer=\"${KILL_ADDR}\"} 0" && break
  sleep 0.1
done
curl -fsS "$(base "${PORTS[0]}")/metrics" |
  grep -qF "mincutd_cluster_peer_up{peer=\"${KILL_ADDR}\"} 0" ||
  fail "dead peer never marked down in /metrics"

echo "== graceful shutdown of the survivors"
for i in 0 1; do
  kill -TERM "${PIDS[$i]}"
  wait "${PIDS[$i]}" || fail "node ${PORTS[$i]} exited uncleanly on SIGTERM"
  PIDS[$i]=""
done

echo "PASS: cluster smoke"
