package parcut

// Benchmark harness for the paper's quantitative artifacts (DESIGN.md
// experiment index E1–E10). Each bench regenerates the measurement behind
// one table row or claim; cmd/paperbench prints the same series as
// markdown tables. Custom metrics:
//
//	work/op   — Work-Depth model work per graph edge or per operation
//	depth/op  — model depth (critical path length)
//	misses/op — ideal-cache misses per operation (E7)
//
// Run everything with:  go test -bench=. -benchmem .
import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/graph/gen"
	"repro/internal/listrank"
	"repro/internal/minpath"
	"repro/internal/minprefix"
	"repro/internal/packing"
	"repro/internal/respect"
	"repro/internal/tree"
	"repro/internal/wd"
)

// --- E1: Table 1, work column -------------------------------------------

func BenchmarkTable1OursSparse(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		g := gen.RandomConnected(n, 4*n, 100, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var meter wd.Meter
			for i := 0; i < b.N; i++ {
				meter.Reset()
				if _, err := core.MinCut(g, core.Options{Seed: 7, Meter: &meter}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(meter.Work())/float64(g.M()), "work/edge")
			b.ReportMetric(float64(meter.Depth()), "depth")
		})
	}
}

func BenchmarkTable1OursDense(b *testing.B) {
	for _, n := range []int{128, 256} {
		g := gen.RandomConnected(n, n*n/8, 100, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var meter wd.Meter
			for i := 0; i < b.N; i++ {
				meter.Reset()
				if _, err := core.MinCut(g, core.Options{Seed: 7, Meter: &meter}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(meter.Work())/float64(g.M()), "work/edge")
		})
	}
}

func BenchmarkTable1KargerStein(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		g := gen.RandomConnected(n, 4*n, 100, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.KargerSteinOnce(g, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1StoerWagner(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		g := gen.RandomConnected(n, 4*n, 100, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.StoerWagner(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: self-speedup -----------------------------------------------------

func BenchmarkSelfSpeedup(b *testing.B) {
	g := gen.RandomConnected(1024, 4096, 100, 42)
	for _, p := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			old := runtime.GOMAXPROCS(p)
			defer runtime.GOMAXPROCS(old)
			for i := 0; i < b.N; i++ {
				if _, err := core.MinCut(g, core.Options{Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: Minimum Path batches (Lemma 9) -----------------------------------

func BenchmarkMinPathBatch(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 15} {
		parent := benchRandomTree(n, 11)
		tr, err := tree.FromParent(parent)
		if err != nil {
			b.Fatal(err)
		}
		s := minpath.New(tr, nil, nil)
		w0 := make([]int64, n)
		k := 2 * n
		ops := benchPathOps(n, k, 13)
		b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			var meter wd.Meter
			for i := 0; i < b.N; i++ {
				meter.Reset()
				s.RunBatch(w0, ops, nil, &meter)
			}
			b.ReportMetric(float64(meter.Work())/float64(k), "work/op")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/op-single")
		})
	}
}

// --- E4: decomposition (Lemma 7) -------------------------------------------

func BenchmarkDecompose(b *testing.B) {
	shapes := map[string][]int32{
		"random": benchRandomTree(1<<15, 3),
		"binary": benchBinaryTree(1 << 15),
		"path":   benchPathTree(1 << 15),
	}
	for name, parent := range shapes {
		tr, err := tree.FromParent(parent)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			phases := 0
			for i := 0; i < b.N; i++ {
				d := decomp.Decompose(tr, nil, nil)
				phases = d.NumPhases
			}
			b.ReportMetric(float64(phases), "phases")
		})
	}
}

// --- E5: constrained cut (Lemma 13) ----------------------------------------

func BenchmarkTwoRespect(b *testing.B) {
	n := 512
	for _, m := range []int{2048, 8192} {
		g := gen.RandomConnected(n, m, 50, 5)
		parent := gen.SpanningTreeParent(g, 6)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			var meter wd.Meter
			for i := 0; i < b.N; i++ {
				meter.Reset()
				if _, err := respect.Scan(g, parent, nil, &meter); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(meter.Work())/float64(m), "work/edge")
		})
	}
}

// --- E6: packing (Lemma 1) ---------------------------------------------------

func BenchmarkPacking(b *testing.B) {
	for _, n := range []int{256, 1024} {
		g := gen.RandomConnected(n, 4*n, 50, 9)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			trees := 0
			for i := 0; i < b.N; i++ {
				res, err := packing.SampleTrees(g, packing.Options{Seed: int64(i)}, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				trees = len(res.Trees)
			}
			b.ReportMetric(float64(trees), "trees")
		})
	}
}

// --- E7: cache misses (Theorem 14) -------------------------------------------

func BenchmarkCacheMisses(b *testing.B) {
	n, k := 1<<13, 1<<13
	w0 := make([]int64, n)
	ops := benchPrefixOps(n, k, 5)
	for _, impl := range []string{"one-by-one", "sweep"} {
		b.Run(impl, func(b *testing.B) {
			b.ReportAllocs()
			var misses int64
			for i := 0; i < b.N; i++ {
				sim := cache.NewSim(128, 1024)
				if impl == "sweep" {
					cache.TracedSweep(w0, ops, sim)
				} else {
					cache.TracedOneByOne(w0, ops, sim)
				}
				misses = sim.Misses()
			}
			b.ReportMetric(float64(misses)/float64(k), "misses/op")
		})
	}
}

// --- E9: merge+broadcast vs binary search -------------------------------------

func BenchmarkQueryMergeVsBinarySearch(b *testing.B) {
	n, k := 1<<14, 1<<16
	w0 := make([]int64, n)
	ops := benchPrefixOps(n, k, 3)
	b.Run("merge-broadcast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			minprefix.RunBatch(w0, ops, nil, nil)
		}
	})
	b.Run("binary-search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			minprefix.RunBatchBinarySearch(w0, ops, nil, nil)
		}
	})
}

// --- E10: list ranking engines --------------------------------------------------

func BenchmarkBoughFinding(b *testing.B) {
	n := 1 << 19
	next := make([]int32, n)
	for i := 0; i < n-1; i++ {
		next[i] = int32(i + 1)
	}
	next[n-1] = listrank.Nil
	b.Run("pointer-jumping", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			listrank.Rank(next, nil, nil)
		}
	})
	b.Run("random-mate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			listrank.RankRandomMate(next, int64(i), nil, nil)
		}
	})
}

// --- helpers ---

func benchRandomTree(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	parent := make([]int32, n)
	parent[perm[0]] = tree.None
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	return parent
}

func benchBinaryTree(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32((i - 1) / 2)
	}
	return parent
}

func benchPathTree(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32(i - 1)
	}
	return parent
}

func benchPathOps(n, k int, seed int64) []minpath.Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]minpath.Op, k)
	for i := range ops {
		v := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = minpath.MinOp(v)
		} else {
			ops[i] = minpath.AddOp(v, int64(rng.Intn(21)-10))
		}
	}
	return ops
}

func benchPrefixOps(n, k int, seed int64) []minprefix.Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]minprefix.Op, k)
	for i := range ops {
		leaf := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = minprefix.MinOp(leaf)
		} else {
			ops[i] = minprefix.AddOp(leaf, int64(rng.Intn(9)-4))
		}
	}
	return ops
}
