package parcut

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph/gen"
)

func TestCutEdges(t *testing.T) {
	g := NewGraph(4)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 3}, {1, 2, 1}, {2, 3, 4}, {3, 0, 2}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	res, err := MinCut(g, Options{Seed: 1, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.CutEdges(res.InCut)
	var total int64
	for _, e := range edges {
		total += e.W
	}
	if total != res.Value {
		t.Fatalf("crossing edges sum to %d, cut value %d", total, res.Value)
	}
	if len(edges) != 2 { // a cycle cut crosses exactly two edges
		t.Fatalf("cycle cut crossed %d edges, want 2", len(edges))
	}
}

func TestBoostNeverWorse(t *testing.T) {
	inner := gen.RandomConnected(40, 140, 12, 5)
	g := &Graph{g: inner}
	want, _, err := baseline.StoerWagner(inner)
	if err != nil {
		t.Fatal(err)
	}
	single, err := MinCut(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := MinCut(g, Options{Seed: 3, Boost: 3, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Value > single.Value {
		t.Fatalf("boost made the answer worse: %d > %d", boosted.Value, single.Value)
	}
	if boosted.Value != want {
		t.Fatalf("boosted=%d want %d", boosted.Value, want)
	}
	if boosted.TreesScanned <= single.TreesScanned {
		t.Fatalf("boost should scan more trees (%d vs %d)", boosted.TreesScanned, single.TreesScanned)
	}
	if got := g.CutValue(boosted.InCut); got != boosted.Value {
		t.Fatalf("boosted witness %d claimed %d", got, boosted.Value)
	}
}
