// Command mincut computes a global minimum cut of a weighted graph.
//
// Input comes from a file in the repository's DIMACS-like format or from a
// generator spec:
//
//	mincut -in graph.txt
//	mincut -gen random:n=2000,m=8000,w=100 -seed 3
//
// Algorithms: parcut (the paper's parallel algorithm, default),
// stoerwagner (exact deterministic O(n³)), kargerstein (Monte Carlo
// recursive contraction), brute (exhaustive, n ≤ 24).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/wd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mincut: ")
	in := flag.String("in", "", "input graph file (- for stdin)")
	genSpec := flag.String("gen", "", "generate the input instead (see graphgen -spec)")
	seed := flag.Int64("seed", 1, "random seed")
	algo := flag.String("algo", "parcut", "parcut | stoerwagner | kargerstein | brute")
	partition := flag.Bool("partition", false, "print one side of the cut")
	stats := flag.Bool("stats", false, "print work/depth model statistics (parcut only)")
	flag.Parse()

	g, truth := load(*in, *genSpec, *seed)
	start := time.Now()
	var (
		value int64
		inCut []bool
		err   error
	)
	var meter *wd.Meter
	switch *algo {
	case "parcut":
		if *stats {
			meter = new(wd.Meter)
		}
		var res core.Result
		res, err = core.MinCut(g, core.Options{Seed: *seed, WantPartition: *partition, Meter: meter})
		value, inCut = res.Value, res.InCut
	case "stoerwagner":
		value, inCut, err = baseline.StoerWagner(g)
	case "kargerstein":
		value, inCut, err = baseline.KargerStein(g, *seed)
	case "brute":
		value, inCut, err = baseline.BruteForce(g)
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("n=%d m=%d algo=%s\n", g.N(), g.M(), *algo)
	fmt.Printf("minimum cut value: %d\n", value)
	fmt.Printf("time: %v\n", elapsed.Round(time.Microsecond))
	if truth != nil {
		status := "MATCHES"
		if value != truth.CutValue {
			status = fmt.Sprintf("DIFFERS (known %d)", truth.CutValue)
		}
		fmt.Printf("known minimum cut: %s\n", status)
	}
	if meter != nil {
		fmt.Printf("model work: %d, model depth: %d\n", meter.Work(), meter.Depth())
	}
	if *partition && inCut != nil {
		fmt.Printf("cut side:")
		for v, in := range inCut {
			if in {
				fmt.Printf(" %d", v)
			}
		}
		fmt.Println()
		fmt.Printf("partition re-evaluated: %d\n", g.CutValue(inCut))
	}
}

func load(in, spec string, seed int64) (*graph.Graph, *gen.Planted) {
	switch {
	case in != "" && spec != "":
		log.Fatal("use either -in or -gen, not both")
	case spec != "":
		g, planted, err := gen.FromSpec(spec, seed)
		if err != nil {
			log.Fatal(err)
		}
		return g, planted
	case in == "-":
		g, err := graph.Read(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		return g, nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := graph.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		return g, nil
	}
	log.Fatal("provide -in FILE or -gen SPEC")
	return nil, nil
}
