// Command mincut computes a global minimum cut of a weighted graph.
//
// Input comes from a file in the repository's DIMACS-like format or from a
// generator spec:
//
//	mincut -in graph.txt
//	mincut -gen random:n=2000,m=8000,w=100 -seed 3
//
// Algorithms are the registered solve engines plus two conveniences:
// geissmann (the paper's parallel algorithm; "parcut" is an alias, the
// default), andersonblelloch (the same packing searched with the
// Anderson–Blelloch scan; bit-identical values), stoerwagner (exact
// deterministic O(n³)), kargerstein (Monte Carlo recursive contraction),
// auto (pick by graph size; the chosen engine is printed), and brute
// (exhaustive, n ≤ 24 — not an engine).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/wd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mincut: ")
	in := flag.String("in", "", "input graph file (- for stdin)")
	genSpec := flag.String("gen", "", "generate the input instead (see graphgen -spec)")
	seed := flag.Int64("seed", 1, "random seed")
	algo := flag.String("algo", "parcut", "parcut (= geissmann) | andersonblelloch | stoerwagner | kargerstein | auto | brute")
	partition := flag.Bool("partition", false, "print one side of the cut")
	stats := flag.Bool("stats", false, "print work/depth model statistics (parcut only)")
	flag.Parse()

	g, truth := load(*in, *genSpec, *seed)
	start := time.Now()
	var (
		value int64
		inCut []bool
		err   error
	)
	var meter *wd.Meter
	engName := ""
	if *algo == "brute" {
		value, inCut, err = baseline.BruteForce(g)
	} else {
		// Everything else routes through the engine registry; "parcut" stays
		// as an alias for the paper engine, and "auto" resolves by graph
		// size (the chosen engine is printed below).
		name := *algo
		if name == "parcut" {
			name = engine.Default
		}
		eng, rerr := engine.Resolve(name, g.N(), g.M())
		if rerr != nil {
			log.Fatalf("unknown algorithm %q: %v (plus the aliases parcut, brute)", *algo, rerr)
		}
		engName = eng.Name()
		if *stats && engName == engine.Default {
			meter = new(wd.Meter)
		}
		var res engine.Result
		res, err = eng.Solve(context.Background(), g, engine.Options{Seed: *seed, WantPartition: *partition, Meter: meter})
		value, inCut = res.Value, res.InCut
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if engName != "" {
		fmt.Printf("n=%d m=%d algo=%s engine=%s\n", g.N(), g.M(), *algo, engName)
	} else {
		fmt.Printf("n=%d m=%d algo=%s\n", g.N(), g.M(), *algo)
	}
	fmt.Printf("minimum cut value: %d\n", value)
	fmt.Printf("time: %v\n", elapsed.Round(time.Microsecond))
	if truth != nil {
		status := "MATCHES"
		if value != truth.CutValue {
			status = fmt.Sprintf("DIFFERS (known %d)", truth.CutValue)
		}
		fmt.Printf("known minimum cut: %s\n", status)
	}
	if meter != nil {
		fmt.Printf("model work: %d, model depth: %d\n", meter.Work(), meter.Depth())
	}
	if *partition && inCut != nil {
		fmt.Printf("cut side:")
		for v, in := range inCut {
			if in {
				fmt.Printf(" %d", v)
			}
		}
		fmt.Println()
		fmt.Printf("partition re-evaluated: %d\n", g.CutValue(inCut))
	}
}

func load(in, spec string, seed int64) (*graph.Graph, *gen.Planted) {
	switch {
	case in != "" && spec != "":
		log.Fatal("use either -in or -gen, not both")
	case spec != "":
		g, planted, err := gen.FromSpec(spec, seed)
		if err != nil {
			log.Fatal(err)
		}
		return g, planted
	case in == "-":
		g, err := graph.Read(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		return g, nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := graph.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		return g, nil
	}
	log.Fatal("provide -in FILE or -gen SPEC")
	return nil, nil
}
