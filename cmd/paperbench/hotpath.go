package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/par"
	"repro/internal/wd"
)

// The hotpath experiment benchmarks the solver's inner-loop primitives —
// the scan family, parallel merge/sort, fork-join dispatch, and the
// arena-backed connectivity kernel — and doubles as the CI perf gate:
// given -perf-baseline, it compares against the committed numbers and
// exits non-zero past -perf-tolerance.
//
// Cross-machine comparability: wall-clock ns/op is meaningless across
// hosts, so every gated series is normalized by ref_spin, a fixed
// sequential integer loop measured in the same process. The gate
// compares normalized ratios, which cancels raw CPU speed; allocs/op is
// machine-independent and compared directly. Pool widths are pinned
// (4 for the parallel series, 1 for the steady-state series) so the task
// structure does not depend on the host's core count either.
var (
	hotpathOut    = flag.String("hotpath-out", "", "write the hotpath series as JSON to this file")
	hotpathReps   = flag.Int("hotpath-reps", 3, "benchmark repetitions per hotpath series (median is reported)")
	perfBaseline  = flag.String("perf-baseline", "", "gate the hotpath series against this baseline JSON; regressions beyond -perf-tolerance exit non-zero")
	perfTolerance = flag.Float64("perf-tolerance", 0.10, "allowed relative regression in the perf gate (0.10 = 10%)")
)

// refSpinWork is sized so one op lands in single-digit milliseconds: long
// enough to measure cleanly, short enough that reps stay cheap.
const refSpinWork = 1 << 22

// refSpin is the calibration series: a pure sequential integer loop with
// no memory traffic beyond registers. Its ns/op tracks the host's scalar
// speed, which is the dominant machine factor in every other series.
func refSpin() uint64 {
	acc := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < refSpinWork; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
		acc += uint64(i)
	}
	return acc
}

type hotpathSeries struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type hotpathReport struct {
	Experiment string          `json:"experiment"`
	Reps       int             `json:"reps"`
	NumCPU     int             `json:"num_cpu"`
	GoVersion  string          `json:"go_version"`
	Series     []hotpathSeries `json:"series"`
	// Pool is the width-4 benchmark pool's counter snapshot after all
	// series ran: how the work moved (local vs shared vs overflow
	// pushes, steals) and how the arena behaved. StealRatio is
	// steals/(local+shared+overflow) — the fraction of queued tasks that
	// changed lanes. Informational, not gated: the ratio depends on
	// scheduling, unlike the gated ns/op and allocs/op.
	Pool hotpathPoolStats `json:"pool"`
}

type hotpathPoolStats struct {
	Steals         int64   `json:"steals"`
	LocalPushes    int64   `json:"local_pushes"`
	SharedPushes   int64   `json:"shared_pushes"`
	OverflowPushes int64   `json:"overflow_pushes"`
	InlineRuns     int64   `json:"inline_runs"`
	ArenaHits      int64   `json:"arena_hits"`
	ArenaMisses    int64   `json:"arena_misses"`
	StealRatio     float64 `json:"steal_ratio"`
}

// benchSeries runs one benchmark reps times; independent
// testing.Benchmark runs (each auto-scales b.N) are the cheapest way to
// get repetitions whose noise is uncorrelated. Timing keeps the MINIMUM
// across reps — interference from other processes only ever adds time,
// so the min is the noise-robust estimate of the series' true cost —
// while allocs/op keeps the median (it is deterministic; the median
// shields against a single rep whose warm-up iteration was counted).
func benchSeries(name string, reps int, f func(b *testing.B)) hotpathSeries {
	ns := make([]float64, 0, reps)
	allocs := make([]int64, 0, reps)
	bytes := make([]int64, 0, reps)
	for r := 0; r < reps; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		ns = append(ns, float64(res.NsPerOp()))
		allocs = append(allocs, res.AllocsPerOp())
		bytes = append(bytes, res.AllocedBytesPerOp())
	}
	sort.Float64s(ns)
	sort.Slice(allocs, func(i, j int) bool { return allocs[i] < allocs[j] })
	sort.Slice(bytes, func(i, j int) bool { return bytes[i] < bytes[j] })
	return hotpathSeries{Name: name, NsPerOp: ns[0], AllocsPerOp: allocs[len(allocs)/2], BytesPerOp: bytes[len(bytes)/2]}
}

// expHotpath — E14: inner-loop primitive benchmarks and the perf gate.
func expHotpath() {
	header("E14 (hotpath): inner-loop primitives, normalized by ref_spin")
	reps := *hotpathReps
	if reps < 1 {
		reps = 1
	}

	const n = 1 << 20
	xs := make([]int64, n)
	out := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i%1024) - 512
	}
	present := make([]bool, n)
	for i := range present {
		present[i] = i%257 == 0
	}
	// Two sorted interleaved halves for the merge series, and an
	// unsorted copy source for the sort series.
	half := n / 2
	ma := make([]int64, half)
	mb := make([]int64, half)
	for i := 0; i < half; i++ {
		ma[i] = int64(2 * i)
		mb[i] = int64(2*i + 1)
	}
	merged := make([]int64, n)
	sortSrc := make([]int64, n)
	for i := range sortSrc {
		sortSrc[i] = int64((i * 2654435761) % n)
	}
	sortBuf := make([]int64, n)

	// Width 4 regardless of host cores: identical task structure
	// everywhere, so only per-task cost varies (and ref_spin tracks it).
	pp := par.NewPool(4)
	defer pp.Close()
	less := func(a, b int64) bool { return a < b }

	// components_steady: the packing loop's connectivity check on a warm
	// arena — the series that pins the zero-alloc claim.
	const cn = 512
	cEdges := make([]graph.Edge, 0, 2*cn)
	for i := 1; i < cn; i++ {
		cEdges = append(cEdges, graph.Edge{U: int32(i / 2), V: int32(i), W: 1})
	}
	for i := 0; i+7 < cn; i += 3 {
		cEdges = append(cEdges, graph.Edge{U: int32(i), V: int32(i + 7), W: 1})
	}
	p1 := par.NewPool(1)
	defer p1.Close()
	meter := &wd.Meter{}

	var sink int64
	series := []struct {
		name string
		f    func(b *testing.B)
	}{
		{"ref_spin", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += int64(refSpin())
			}
		}},
		{"scan_1m", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += pp.ExclusiveSum(xs, out)
			}
		}},
		{"segbroadcast_1m", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pp.SegmentedBroadcast(present, xs, out, -1)
			}
		}},
		{"reduce_min_1m", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, _ := pp.MinInt64(xs)
				sink += v
			}
		}},
		{"merge_1m", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par.MergeOn(pp, ma, mb, merged, less)
			}
		}},
		{"sort_1m", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(sortBuf, sortSrc)
				par.SortStableOn(pp, sortBuf, less)
			}
		}},
		{"fork_join_burst", func(b *testing.B) {
			// 512 leaf tasks per op through the deques: the
			// saturation shape the stealing rewrite exists for.
			var rec func(d int)
			rec = func(d int) {
				if d == 0 {
					acc := uint64(d)
					for i := 0; i < 256; i++ {
						acc ^= acc<<13 + uint64(i)
					}
					sink += int64(acc)
					return
				}
				pp.Do(func() { rec(d - 1) }, func() { rec(d - 1) })
			}
			for i := 0; i < b.N; i++ {
				rec(9)
			}
		}},
		{"components_steady", func(b *testing.B) {
			mst.Components(cn, cEdges, p1, meter) // warm the arena
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += int64(mst.Components(cn, cEdges, p1, meter))
			}
		}},
	}

	results := make([]hotpathSeries, 0, len(series))
	fmt.Println("| series | ns/op | vs ref_spin | allocs/op | B/op |")
	fmt.Println("|--------|-------|-------------|-----------|------|")
	var refNs float64
	for _, s := range series {
		r := benchSeries(s.name, reps, s.f)
		if s.name == "ref_spin" {
			refNs = r.NsPerOp
		}
		norm := "—"
		if refNs > 0 && s.name != "ref_spin" {
			norm = fmt.Sprintf("%.3f", r.NsPerOp/refNs)
		}
		fmt.Printf("| %s | %.0f | %s | %d | %d |\n", r.Name, r.NsPerOp, norm, r.AllocsPerOp, r.BytesPerOp)
		results = append(results, r)
	}
	_ = sink

	st := pp.Stats()
	pushes := st.LocalPushes + st.SharedPushes + st.OverflowPushes
	ratio := 0.0
	if pushes > 0 {
		ratio = float64(st.Steals) / float64(pushes)
	}
	fmt.Printf("\npool: %d pushes (%d local, %d shared, %d overflow), %d steals (ratio %.3f), %d inline, arena %d hits / %d misses\n",
		pushes, st.LocalPushes, st.SharedPushes, st.OverflowPushes, st.Steals, ratio, st.InlineRuns, st.ArenaHits, st.ArenaMisses)

	if *hotpathOut != "" {
		blob, err := json.MarshalIndent(hotpathReport{
			Experiment: "hotpath",
			Reps:       reps,
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
			Series:     results,
			Pool: hotpathPoolStats{
				Steals:         st.Steals,
				LocalPushes:    st.LocalPushes,
				SharedPushes:   st.SharedPushes,
				OverflowPushes: st.OverflowPushes,
				InlineRuns:     st.InlineRuns,
				ArenaHits:      st.ArenaHits,
				ArenaMisses:    st.ArenaMisses,
				StealRatio:     ratio,
			},
		}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*hotpathOut, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *hotpathOut)
	}
	if *perfBaseline != "" {
		gateHotpath(results, *perfBaseline, *perfTolerance)
	}
}

// gateHotpath compares the measured series against the committed baseline
// and exits non-zero on regression. Timing is compared after dividing
// both sides by their own ref_spin (cancelling raw host speed); allocs/op
// is compared directly. A series only fails if it exceeds the tolerance
// AND regresses by at least one whole allocation — so a 0-alloc baseline
// fails on the first allocation that creeps in, without flagging noise.
func gateHotpath(cur []hotpathSeries, baselinePath string, tol float64) {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("perf gate: cannot read baseline: %v", err)
	}
	var base hotpathReport
	if err := json.Unmarshal(blob, &base); err != nil {
		log.Fatalf("perf gate: bad baseline %s: %v", baselinePath, err)
	}
	baseBy := map[string]hotpathSeries{}
	for _, s := range base.Series {
		baseBy[s.Name] = s
	}
	curBy := map[string]hotpathSeries{}
	for _, s := range cur {
		curBy[s.Name] = s
	}
	curRef, okC := curBy["ref_spin"]
	baseRef, okB := baseBy["ref_spin"]
	if !okC || !okB || curRef.NsPerOp <= 0 || baseRef.NsPerOp <= 0 {
		log.Fatal("perf gate: ref_spin series missing from current run or baseline")
	}

	fmt.Printf("\nperf gate vs %s (tolerance %.0f%%, ref_spin %.2fms now / %.2fms baseline)\n",
		baselinePath, tol*100, curRef.NsPerOp/1e6, baseRef.NsPerOp/1e6)
	failures := 0
	for _, c := range cur {
		if c.Name == "ref_spin" {
			continue
		}
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Printf("  NEW   %-18s no baseline entry; will be gated once the baseline is refreshed\n", c.Name)
			continue
		}
		ratio := (c.NsPerOp / curRef.NsPerOp) / (b.NsPerOp / baseRef.NsPerOp)
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSED"
			failures++
		}
		fmt.Printf("  %-5s %-18s normalized time %.3fx baseline (allocs %d vs %d)\n",
			verdict, c.Name, ratio, c.AllocsPerOp, b.AllocsPerOp)
		if float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) && c.AllocsPerOp >= b.AllocsPerOp+1 {
			fmt.Printf("  REGRESSED %-14s allocs/op %d vs baseline %d\n", c.Name, c.AllocsPerOp, b.AllocsPerOp)
			failures++
		}
	}
	for name := range baseBy {
		if _, ok := curBy[name]; !ok && name != "ref_spin" {
			fmt.Printf("  GONE  %-18s series in baseline but not measured — removed on purpose? refresh the baseline\n", name)
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("\nperf gate FAILED: %d regression(s).\n", failures)
		fmt.Println("If the slowdown is intended (algorithmic change, new feature cost), refresh the baseline:")
		fmt.Println("  go run ./cmd/paperbench -exp hotpath -hotpath-reps 3 -hotpath-out BENCH_baseline.json")
		fmt.Println("commit BENCH_baseline.json, and explain the regression in the PR description.")
		os.Exit(1)
	}
	fmt.Println("\nperf gate PASSED")
}
