// Command paperbench regenerates the paper's quantitative artifacts: the
// Table 1 work/depth comparison and the per-lemma complexity and quality
// claims (experiments E1–E10 of DESIGN.md). Output is markdown, ready to
// paste into EXPERIMENTS.md.
//
// Usage:
//
//	paperbench -exp table1|depth|minpath|decomp|tworespect|packing|cache|agree|ablation|engines|all [-quick]
//	paperbench -exp hotpath [-hotpath-reps N] [-hotpath-out f.json] [-perf-baseline BENCH_baseline.json] [-perf-tolerance 0.10]
//
// hotpath benchmarks the solver's inner-loop primitives and doubles as
// the CI perf gate (scripts/perfgate.sh); it is not part of "all".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	parcut "repro"
	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/engine"
	"repro/internal/graph/gen"
	"repro/internal/listrank"
	"repro/internal/minpath"
	"repro/internal/minprefix"
	"repro/internal/par"
	"repro/internal/respect"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/wd"
)

var (
	quick      = flag.Bool("quick", false, "smaller grids (sanity runs)")
	scalingOut = flag.String("scaling-out", "", "write the scaling experiment's per-width timings as JSON to this file")
	enginesOut = flag.String("engines-out", "", "write the engines experiment's per-cell timings and crossovers as JSON to this file")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	exp := flag.String("exp", "all", "experiment id or 'all'")
	flag.Parse()
	experiments := map[string]func(){
		"table1":     expTable1,
		"depth":      expDepth,
		"minpath":    expMinPath,
		"decomp":     expDecomp,
		"tworespect": expTwoRespect,
		"packing":    expPacking,
		"cache":      expCache,
		"agree":      expAgree,
		"ablation":   expAblation,
		"scaling":    expScaling,
		"engines":    expEngines,
		"hotpath":    expHotpath,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "depth", "minpath", "decomp", "tworespect", "packing", "cache", "agree", "ablation", "scaling", "engines"} {
			experiments[name]()
		}
		return
	}
	f, ok := experiments[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	f()
}

func header(title string) {
	fmt.Printf("\n## %s\n\n", title)
}

func lg(n int) float64 { return math.Log2(float64(n)) }

// expTable1 — E1: the Table 1 work comparison. Ours is measured in model
// work and wall time; Karger–Stein (one recursion, Θ(n² log n) work) and
// Stoer–Wagner (Θ(n³)) in wall time. The shape to reproduce: ours scales
// near-linearly with m, the dense baselines quadratically+ with n, so ours
// wins on sparse graphs and the advantage shrinks as density grows.
func expTable1() {
	header("E1 (Table 1): total work, ours vs quadratic-work baselines")
	type row struct{ n, m int }
	sparse := []row{{256, 1024}, {512, 2048}, {1024, 4096}, {2048, 8192}}
	dense := []row{{128, 2048}, {256, 8192}, {512, 32768}}
	if *quick {
		sparse = sparse[:2]
		dense = dense[:2]
	}
	fmt.Println("| family | n | m | ours ms | ours work | work/(m·lg⁴n) | KS-once ms | SW ms |")
	fmt.Println("|--------|---|---|---------|-----------|---------------|------------|-------|")
	run := func(family string, rows []row) {
		for _, r := range rows {
			g := gen.RandomConnected(r.n, r.m, 100, 42)
			var meter wd.Meter
			start := time.Now()
			res, err := core.MinCut(g, core.Options{Seed: 7, Meter: &meter})
			if err != nil {
				log.Fatal(err)
			}
			oursMS := time.Since(start).Seconds() * 1000
			start = time.Now()
			ksVal, _, err := baseline.KargerSteinOnce(g, 7)
			if err != nil {
				log.Fatal(err)
			}
			ksMS := time.Since(start).Seconds() * 1000
			start = time.Now()
			swVal, _, err := baseline.StoerWagner(g)
			if err != nil {
				log.Fatal(err)
			}
			swMS := time.Since(start).Seconds() * 1000
			if res.Value != swVal {
				fmt.Printf("| MISMATCH ours=%d sw=%d ks=%d |\n", res.Value, swVal, ksVal)
			}
			norm := float64(meter.Work()) / (float64(r.m) * math.Pow(lg(r.n), 4))
			fmt.Printf("| %s | %d | %d | %.0f | %d | %.3f | %.0f | %.0f |\n",
				family, r.n, r.m, oursMS, meter.Work(), norm, ksMS, swMS)
		}
	}
	run("sparse m=4n", sparse)
	run("dense m=n²/8", dense)
}

// expDepth — E2: model depth scales poly-logarithmically; wall-clock
// self-speedup from 1 to NumCPU workers.
func expDepth() {
	header("E2 (Table 1 depth column): model depth and self-speedup")
	sizes := []int{256, 512, 1024, 2048}
	if *quick {
		sizes = sizes[:2]
	}
	fmt.Println("| n | m | model depth | depth/lg³n | work/depth (avg parallelism) |")
	fmt.Println("|---|---|-------------|------------|------------------------------|")
	for _, n := range sizes {
		g := gen.RandomConnected(n, 4*n, 100, 42)
		var meter wd.Meter
		if _, err := core.MinCut(g, core.Options{Seed: 7, Meter: &meter}); err != nil {
			log.Fatal(err)
		}
		d := float64(meter.Depth())
		fmt.Printf("| %d | %d | %d | %.2f | %.0f |\n",
			n, 4*n, meter.Depth(), d/math.Pow(lg(n), 3), float64(meter.Work())/d)
	}
	// Self-speedup at the largest size.
	n := sizes[len(sizes)-1]
	g := gen.RandomConnected(n, 4*n, 100, 42)
	timeAt := func(p int) float64 {
		pool := par.NewPool(p)
		defer pool.Close()
		start := time.Now()
		if _, err := core.MinCut(g, core.Options{Seed: 7, Pool: pool}); err != nil {
			log.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	t1 := timeAt(1)
	tp := timeAt(runtime.NumCPU())
	fmt.Printf("\nself-speedup (full MinCut) at n=%d, m=%d: T(1)=%.2fs, T(%d)=%.2fs, speedup %.2fx\n",
		n, 4*n, t1, runtime.NumCPU(), tp, t1/tp)
	// The Minimum Path batch in isolation (the paper's §3 contribution).
	tn := 1 << 16
	parent := randomTreeParent(tn, 21)
	tr, err := tree.FromParent(parent)
	if err != nil {
		log.Fatal(err)
	}
	s := minpath.New(tr, nil, nil)
	w0 := make([]int64, tn)
	ops := randomPathOps(tn, 4*tn, 23)
	batchAt := func(p int) float64 {
		pool := par.NewPool(p)
		defer pool.Close()
		start := time.Now()
		for r := 0; r < 3; r++ {
			s.RunBatch(w0, ops, pool, nil)
		}
		return time.Since(start).Seconds() / 3
	}
	b1 := batchAt(1)
	bp := batchAt(runtime.NumCPU())
	fmt.Printf("self-speedup (MinPath batch, n=%d, k=%d): T(1)=%.0fms, T(%d)=%.0fms, speedup %.2fx\n",
		tn, 4*tn, b1*1000, runtime.NumCPU(), bp*1000, b1/bp)
}

// expMinPath — E3: per-operation cost of the batched Minimum Path
// structure as the batch grows (Lemma 9: O(log n (log n + log k)) work/op).
func expMinPath() {
	header("E3 (Lemma 9): Minimum Path batch, per-op cost")
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if *quick {
		sizes = sizes[:2]
	}
	fmt.Println("| tree n | batch k | ms | ns/op | model work/op | lg n·(lg n+lg k) |")
	fmt.Println("|--------|---------|----|-------|----------------|-------------------|")
	for _, n := range sizes {
		parent := randomTreeParent(n, 11)
		tr, err := tree.FromParent(parent)
		if err != nil {
			log.Fatal(err)
		}
		s := minpath.New(tr, nil, nil)
		w0 := make([]int64, n)
		for _, k := range []int{n / 2, 2 * n} {
			ops := randomPathOps(n, k, 13)
			var meter wd.Meter
			start := time.Now()
			s.RunBatch(w0, ops, nil, &meter)
			el := time.Since(start)
			fmt.Printf("| %d | %d | %.1f | %.0f | %.0f | %.0f |\n",
				n, k, el.Seconds()*1000, float64(el.Nanoseconds())/float64(k),
				float64(meter.Work())/float64(k), lg(n)*(lg(n)+lg(k)))
		}
	}
}

// expDecomp — E4: bough decomposition phase counts against the log2 bound.
func expDecomp() {
	header("E4 (Lemma 7): bough decomposition")
	fmt.Println("| tree | n | phases | bound lg n+1 | paths | ms |")
	fmt.Println("|------|---|--------|---------------|-------|----|")
	shapes := []struct {
		name   string
		parent func(n int) []int32
	}{
		{"path", pathTreeParent},
		{"random", func(n int) []int32 { return randomTreeParent(n, 3) }},
		{"binary", binaryTreeParent},
	}
	sizes := []int{1 << 10, 1 << 14, 1 << 17}
	if *quick {
		sizes = sizes[:2]
	}
	for _, sh := range shapes {
		for _, n := range sizes {
			tr, err := tree.FromParent(sh.parent(n))
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			d := decomp.Decompose(tr, nil, nil)
			el := time.Since(start).Seconds() * 1000
			fmt.Printf("| %s | %d | %d | %.0f | %d | %.1f |\n",
				sh.name, n, d.NumPhases, lg(n)+1, len(d.Paths), el)
		}
	}
}

// expTwoRespect — E5: the constrained search scales near-linearly in m
// (Lemma 13: O(m log³ n) work).
func expTwoRespect() {
	header("E5 (Lemma 13): 2-respecting cut search vs m")
	n := 512
	ms := []int{2048, 8192, 32768}
	if *quick {
		ms = ms[:2]
	}
	fmt.Println("| n | m | ms | model work | work/(m·lg³n) |")
	fmt.Println("|---|---|----|------------|----------------|")
	for _, mm := range ms {
		g := gen.RandomConnected(n, mm, 50, 5)
		parent := gen.SpanningTreeParent(g, 6)
		var meter wd.Meter
		start := time.Now()
		if _, err := respect.Scan(g, parent, nil, &meter); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start).Seconds() * 1000
		fmt.Printf("| %d | %d | %.0f | %d | %.3f |\n",
			n, mm, el, meter.Work(), float64(meter.Work())/(float64(mm)*math.Pow(lg(n), 3)))
	}
}

// expPacking — E6: Lemma 1 quality: how often does some sampled tree
// 2-respect a known minimum cut, and how tight is the estimate.
func expPacking() {
	header("E6 (Lemma 1): tree packing quality on planted cuts")
	trials := 20
	if *quick {
		trials = 6
	}
	hit := 0
	treesTotal := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		p := gen.PlantedCut(40, 36, 4, seed)
		res, err := core.MinCut(p.G, core.Options{Seed: seed * 3})
		if err != nil {
			log.Fatal(err)
		}
		if res.Value == p.CutValue {
			hit++
		}
		treesTotal += res.TreesScanned
	}
	fmt.Printf("planted-cut recovery: %d/%d correct, avg trees scanned %.1f\n",
		hit, trials, float64(treesTotal)/float64(trials))
}

// expCache — E7: Theorem 14 cache-miss comparison across (B, M).
func expCache() {
	header("E7 (Theorem 14): ideal-cache misses, sweep vs one-by-one")
	n, k := 1<<14, 1<<14
	if *quick {
		n, k = 1<<12, 1<<12
	}
	w0 := make([]int64, n)
	ops := make([]minprefix.Op, k)
	rng := rand.New(rand.NewSource(5))
	for i := range ops {
		leaf := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = minprefix.MinOp(leaf)
		} else {
			ops[i] = minprefix.AddOp(leaf, int64(rng.Intn(9)-4))
		}
	}
	fmt.Printf("list n=%d, batch k=%d\n\n", n, k)
	fmt.Println("| B | M | one-by-one misses/op | sweep misses/op | improvement |")
	fmt.Println("|---|---|----------------------|-----------------|-------------|")
	for _, geo := range [][2]int{{16, 1024}, {64, 1024}, {128, 1024}, {128, 8192}} {
		B, M := geo[0], geo[1]
		simA := cache.NewSim(B, M)
		cache.TracedOneByOne(w0, ops, simA)
		simB := cache.NewSim(B, M)
		cache.TracedSweep(w0, ops, simB)
		a := float64(simA.Misses()) / float64(k)
		b := float64(simB.Misses()) / float64(k)
		fmt.Printf("| %d | %d | %.2f | %.2f | %.1fx |\n", B, M, a, b, a/b)
	}
}

// expAgree — E8: end-to-end agreement with Stoer–Wagner across workload
// families.
func expAgree() {
	header("E8 (Theorem 10): agreement with Stoer–Wagner")
	trials := 25
	if *quick {
		trials = 8
	}
	families := []string{
		"random:n=48,m=160,w=12",
		"random:n=96,m=200,w=50",
		"planted:na=30,nb=26,k=4",
		"dumbbell:n=10,bridge=3",
		"cycle:n=40,w=30",
		"grid:rows=8,cols=9,w=9",
		"regular:n=60,d=4,w=7",
	}
	fmt.Println("| family | trials | agreements |")
	fmt.Println("|--------|--------|------------|")
	for _, spec := range families {
		agree := 0
		for seed := int64(0); seed < int64(trials); seed++ {
			g, _, err := gen.FromSpec(spec, seed)
			if err != nil {
				log.Fatal(err)
			}
			want, _, err := baseline.StoerWagner(g)
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.MinCut(g, core.Options{Seed: seed * 7})
			if err != nil {
				log.Fatal(err)
			}
			if res.Value == want {
				agree++
			}
		}
		fmt.Printf("| %s | %d | %d |\n", spec, trials, agree)
	}
}

// expAblation — E9 (merge+broadcast vs binary search in the query pass)
// and E10 (list ranking engines in bough ordering).
func expAblation() {
	header("E9 (§3.2 design): query resolution, merge+broadcast vs binary search")
	n, k := 1<<15, 1<<17
	if *quick {
		n, k = 1<<12, 1<<14
	}
	w0 := make([]int64, n)
	rng := rand.New(rand.NewSource(3))
	ops := make([]minprefix.Op, k)
	for i := range ops {
		leaf := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = minprefix.MinOp(leaf)
		} else {
			ops[i] = minprefix.AddOp(leaf, int64(rng.Intn(9)-4))
		}
	}
	start := time.Now()
	minprefix.RunBatch(w0, ops, nil, nil)
	tMerge := time.Since(start)
	start = time.Now()
	minprefix.RunBatchBinarySearch(w0, ops, nil, nil)
	tBS := time.Since(start)
	fmt.Printf("list n=%d, batch k=%d: merge+broadcast %.1fms, binary-search %.1fms (%.2fx)\n",
		n, k, tMerge.Seconds()*1000, tBS.Seconds()*1000,
		tBS.Seconds()/tMerge.Seconds())

	header("E10 (§3.3.1): list ranking engines on a long list")
	nn := 1 << 20
	if *quick {
		nn = 1 << 16
	}
	next := make([]int32, nn)
	for i := 0; i < nn-1; i++ {
		next[i] = int32(i + 1)
	}
	next[nn-1] = listrank.Nil
	start = time.Now()
	listrank.Rank(next, nil, nil)
	tJump := time.Since(start)
	start = time.Now()
	listrank.RankRandomMate(next, 5, nil, nil)
	tMate := time.Since(start)
	start = time.Now()
	listrank.RankDeterministic(next, nil, nil)
	tDet := time.Since(start)
	fmt.Printf("n=%d: pointer jumping %.1fms (O(n log n) work), random-mate %.1fms (O(n) work, Las Vegas), 3-coloring %.1fms (O(n log* n)-ish work, deterministic)\n",
		nn, tJump.Seconds()*1000, tMate.Seconds()*1000, tDet.Seconds()*1000)

	header("E11 (§4.3 schedule): sequential vs concurrent phase execution")
	gn := 1024
	if *quick {
		gn = 256
	}
	g := gen.RandomConnected(gn, 4*gn, 50, 8)
	parent := gen.SpanningTreeParent(g, 9)
	var mSeq, mPar wd.Meter
	start = time.Now()
	if _, err := respect.Scan(g, parent, nil, &mSeq); err != nil {
		log.Fatal(err)
	}
	tSeq := time.Since(start)
	start = time.Now()
	if _, err := respect.ScanParallelPhases(g, parent, nil, &mPar); err != nil {
		log.Fatal(err)
	}
	tPar := time.Since(start)
	fmt.Printf("n=%d m=%d: sequential phases %0.fms (model depth %d), concurrent phases %0.fms (model depth %d, %.1fx shallower)\n",
		gn, 4*gn, tSeq.Seconds()*1000, mSeq.Depth(), tPar.Seconds()*1000, mPar.Depth(),
		float64(mSeq.Depth())/float64(mPar.Depth()))
}

// expScaling — E12: wall-clock scaling of the full solver against the
// executor width, driven through the public Options.Parallelism knob (the
// algorithm's own parallelism, not the Go runtime's): each width runs on a
// dedicated pool of exactly that many lanes, with GOMAXPROCS untouched.
// The per-width results must be identical — the experiment double-checks
// the solver's width-determinism invariant while it measures.
func expScaling() {
	header("E12 (scaling): full solver wall clock vs executor width")
	n := 2048
	reps := 3
	if *quick {
		n, reps = 512, 1
	}
	m := 4 * n
	const seed = 7
	g := parcut.RandomGraph(n, m, 100, 42)

	widths := []int{1}
	for w := 2; w < runtime.NumCPU(); w *= 2 {
		widths = append(widths, w)
	}
	if last := widths[len(widths)-1]; last != runtime.NumCPU() {
		widths = append(widths, runtime.NumCPU())
	}

	type widthRow struct {
		Width   int     `json:"width"`
		Millis  float64 `json:"ms"`
		Speedup float64 `json:"speedup"`
		Value   int64   `json:"value"`
		// PackingMs and ScanMs attribute the best rep's wall clock to the
		// solver's phases, read off the run's trace spans — the same spans
		// mincutd serves on /v1/traces.
		PackingMs float64 `json:"packing_ms"`
		ScanMs    float64 `json:"scan_ms"`
		// AllocsPerSolve is the heap-allocation count of the last
		// (warmest) rep: the arena recycling means it should be far
		// below the first rep's and roughly width-independent.
		AllocsPerSolve uint64 `json:"allocs_per_solve"`
		// Steals and SharedPushes are the executor's work-stealing
		// counters summed over all reps at this width (zero at width 1,
		// where the pool runs inline).
		Steals       int64 `json:"steals"`
		SharedPushes int64 `json:"shared_pushes"`
	}
	rows := make([]widthRow, 0, len(widths))
	fmt.Println("| width | ms | speedup vs width 1 | packing ms | scan ms | allocs/solve | steals | value |")
	fmt.Println("|-------|----|--------------------|------------|---------|--------------|--------|-------|")
	var baseMS float64
	var refValue int64
	for i, w := range widths {
		exec := parcut.NewExecutor(w)
		best := math.Inf(1)
		var res parcut.Result
		var packMS, scanMS float64
		var allocs uint64
		for r := 0; r < reps; r++ {
			var published *trace.Trace
			rec := trace.NewRecorder("bench", 0, func(tr *trace.Trace) { published = tr })
			opt := parcut.Options{Seed: seed, Executor: exec, Trace: rec.Start("solve")}
			var msBefore runtime.MemStats
			runtime.ReadMemStats(&msBefore)
			start := time.Now()
			got, err := parcut.MinCut(g, opt)
			if err != nil {
				log.Fatal(err)
			}
			el := time.Since(start).Seconds() * 1000
			var msAfter runtime.MemStats
			runtime.ReadMemStats(&msAfter)
			allocs = msAfter.Mallocs - msBefore.Mallocs // keep the last (warmest) rep
			opt.Trace.End()
			rec.Release()
			if el < best {
				best = el
				packMS = phaseMillis(published, "packing")
				scanMS = phaseMillis(published, "scan")
			}
			res = got
		}
		st := exec.Stats()
		exec.Close()
		if i == 0 {
			baseMS = best
			refValue = res.Value
		} else if res.Value != refValue {
			log.Fatalf("scaling: width %d produced value %d, width 1 produced %d (determinism violated)", w, res.Value, refValue)
		}
		rows = append(rows, widthRow{Width: w, Millis: best, Speedup: baseMS / best, Value: res.Value,
			PackingMs: packMS, ScanMs: scanMS, AllocsPerSolve: allocs, Steals: st.Steals, SharedPushes: st.SharedPushes})
		fmt.Printf("| %d | %.1f | %.2fx | %.1f | %.1f | %d | %d | %d |\n",
			w, best, baseMS/best, packMS, scanMS, allocs, st.Steals, res.Value)
	}
	if *scalingOut == "" {
		return
	}
	blob, err := json.MarshalIndent(struct {
		Experiment string     `json:"experiment"`
		N          int        `json:"n"`
		M          int        `json:"m"`
		Seed       int64      `json:"seed"`
		Reps       int        `json:"reps"`
		NumCPU     int        `json:"num_cpu"`
		Widths     []widthRow `json:"widths"`
	}{"scaling", n, m, seed, reps, runtime.NumCPU(), rows}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*scalingOut, append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *scalingOut)
}

// expEngines — E13: crossover measurement behind the "auto" engine rule.
// Every registered engine solves the same graphs across an n × density
// grid (each engine capped at the sizes where it finishes in reasonable
// time), the exact baseline's value cross-checks the randomized engines,
// and the per-family crossover points — the largest n where Stoer–Wagner
// still beats the paper engine — are derived from the timings. The JSON
// artifact (-engines-out, BENCH_engines.json in CI) records the grid, the
// suggested thresholds, and the calibration engine.DefaultThresholds
// ships with, so drift between measurement and shipped rule is visible.
func expEngines() {
	header("E13 (engines): engine crossover by n and density")
	type cell struct {
		family string
		n, m   int
	}
	sparseNs := []int{64, 128, 256, 512, 1024, 2048}
	denseNs := []int{64, 128, 256, 512}
	reps := 3
	if *quick {
		sparseNs = []int{64, 128, 256}
		denseNs = []int{64, 128}
		reps = 1
	}
	var cells []cell
	for _, n := range sparseNs {
		cells = append(cells, cell{"sparse", n, 4 * n})
	}
	for _, n := range denseNs {
		cells = append(cells, cell{"dense", n, n * n / 8})
	}
	// Per-engine size caps: the dense baselines' superquadratic work makes
	// the large cells pointless (and slow) for them — the crossover they
	// calibrate sits well below the cap.
	engineMaxN := map[string]int{
		"geissmann":        1 << 30,
		"andersonblelloch": 1 << 30,
		"stoerwagner":      1024,
		"kargerstein":      256,
	}
	type row struct {
		Family string  `json:"family"`
		N      int     `json:"n"`
		M      int     `json:"m"`
		Engine string  `json:"engine"`
		Millis float64 `json:"ms"`
		Value  int64   `json:"value"`
	}
	var rows []row
	fmt.Println("| family | n | m | engine | ms | value |")
	fmt.Println("|--------|---|---|--------|----|-------|")
	for _, c := range cells {
		g := gen.RandomConnected(c.n, c.m, 100, 42)
		var exactVal int64
		haveExact := false
		cellVals := map[string]int64{}
		for _, name := range engine.Names() {
			if c.n > engineMaxN[name] {
				continue
			}
			eng, ok := engine.Lookup(name)
			if !ok {
				log.Fatalf("engine %q vanished from the registry", name)
			}
			best := math.Inf(1)
			var val int64
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := eng.Solve(context.Background(), g, engine.Options{Seed: 7})
				if err != nil {
					log.Fatal(err)
				}
				if el := time.Since(start).Seconds() * 1000; el < best {
					best = el
				}
				val = res.Value
			}
			if eng.Caps().Exact {
				exactVal, haveExact = val, true
			}
			cellVals[name] = val
			rows = append(rows, row{c.family, c.n, c.m, name, best, val})
			fmt.Printf("| %s | %d | %d | %s | %.1f | %d |\n", c.family, c.n, c.m, name, best, val)
		}
		if haveExact {
			for name, v := range cellVals {
				if v != exactVal {
					fmt.Printf("| MISMATCH %s n=%d m=%d: %s=%d exact=%d |\n", c.family, c.n, c.m, name, v, exactVal)
				}
			}
		}
	}
	// Crossovers per family, both derived the same way: the largest n where
	// the first engine still beat the second (0 when it never did on the
	// measured grid). stoerwagner-vs-geissmann calibrates when to leave the
	// exact baseline; geissmann-vs-andersonblelloch calibrates which
	// 2-respecting scan the large graphs get.
	crossover := func(family, slow, fast string) int {
		ms := map[string]map[int]float64{}
		for _, r := range rows {
			if r.Family != family {
				continue
			}
			if ms[r.Engine] == nil {
				ms[r.Engine] = map[int]float64{}
			}
			ms[r.Engine][r.N] = r.Millis
		}
		best := 0
		for n, sl := range ms[slow] {
			if fa, ok := ms[fast][n]; ok && sl <= fa && n > best {
				best = n
			}
		}
		return best
	}
	sparseX := crossover("sparse", "stoerwagner", "geissmann")
	denseX := crossover("dense", "stoerwagner", "geissmann")
	abSparseX := crossover("sparse", "geissmann", "andersonblelloch")
	abDenseX := crossover("dense", "geissmann", "andersonblelloch")
	fmt.Printf("\ncrossover (largest n where stoerwagner wins): sparse %d, dense %d\n", sparseX, denseX)
	fmt.Printf("crossover (largest n where geissmann beats andersonblelloch): sparse %d, dense %d\n", abSparseX, abDenseX)
	fmt.Printf("shipped auto thresholds: small_n=%d dense_n=%d dense_frac=%g ab_n=%d\n",
		engine.DefaultThresholds.SmallN, engine.DefaultThresholds.DenseN, engine.DefaultThresholds.DenseFrac,
		engine.DefaultThresholds.ABN)
	if *enginesOut == "" {
		return
	}
	blob, err := json.MarshalIndent(struct {
		Experiment         string  `json:"experiment"`
		Seed               int64   `json:"seed"`
		Reps               int     `json:"reps"`
		NumCPU             int     `json:"num_cpu"`
		Rows               []row   `json:"rows"`
		SparseCrossoverN   int     `json:"sparse_crossover_n"`
		DenseCrossoverN    int     `json:"dense_crossover_n"`
		ABSparseCrossoverN int     `json:"ab_sparse_crossover_n"`
		ABDenseCrossoverN  int     `json:"ab_dense_crossover_n"`
		ShippedSmallN      int     `json:"shipped_small_n"`
		ShippedDenseN      int     `json:"shipped_dense_n"`
		ShippedDenseFrac   float64 `json:"shipped_dense_frac"`
		ShippedABN         int     `json:"shipped_ab_n"`
	}{"engines", 7, reps, runtime.NumCPU(), rows, sparseX, denseX, abSparseX, abDenseX,
		engine.DefaultThresholds.SmallN, engine.DefaultThresholds.DenseN, engine.DefaultThresholds.DenseFrac,
		engine.DefaultThresholds.ABN}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*enginesOut, append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *enginesOut)
}

// --- helpers ---

// phaseMillis sums the durations of a trace's spans with the given name
// (one "packing" and one "scan" span per boost run).
func phaseMillis(tr *trace.Trace, name string) float64 {
	if tr == nil {
		return 0
	}
	var ns int64
	for _, sp := range tr.Spans {
		if sp.Name == name {
			ns += sp.Duration
		}
	}
	return float64(ns) / 1e6
}

func randomTreeParent(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	parent := make([]int32, n)
	parent[perm[0]] = tree.None
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	return parent
}

func pathTreeParent(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32(i - 1)
	}
	return parent
}

func binaryTreeParent(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32((i - 1) / 2)
	}
	return parent
}

func randomPathOps(n, k int, seed int64) []minpath.Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]minpath.Op, k)
	for i := range ops {
		v := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = minpath.MinOp(v)
		} else {
			ops[i] = minpath.AddOp(v, int64(rng.Intn(21)-10))
		}
	}
	return ops
}
