// Command graphgen emits benchmark graphs in the repository's DIMACS-like
// text format.
//
// Usage:
//
//	graphgen -spec random:n=1000,m=4000,w=100 -seed 7 -out graph.txt
//
// Supported spec kinds: random, planted, dumbbell, grid, regular, cycle,
// clique, disconnected (see internal/graph/gen.FromSpec for parameters).
// When the generator knows the exact minimum cut (planted, dumbbell,
// cycle), it is reported on stderr as ground truth for experiments.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	spec := flag.String("spec", "random:n=100,m=400,w=100", "workload specification")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file (- for stdout)")
	flag.Parse()

	g, planted, err := gen.FromSpec(*spec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: n=%d m=%d totalWeight=%d\n", g.N(), g.M(), g.TotalWeight())
	if planted != nil {
		fmt.Fprintf(os.Stderr, "graphgen: known minimum cut = %d\n", planted.CutValue)
	}
}
