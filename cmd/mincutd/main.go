// Command mincutd serves minimum-cut computations over HTTP: upload a
// graph once, solve it many times, concurrently, with caching and
// cancellation. See internal/service/httpapi for the API surface.
//
//	mincutd -addr :8080 -workers 8 -graph-cache-bytes 1073741824 \
//	        -data-dir /var/lib/mincutd
//
// With -data-dir set, uploaded graphs are committed to a crash-safe disk
// store before the upload returns, and a restart on the same directory
// recovers them — the in-memory registry becomes a cache over the store.
// Without it the service is memory-only and a restart starts empty.
//
// Observability: every log line is structured (text by default,
// -log-format json for machines), finished solves keep their span trees
// in a ring served by GET /v1/traces (size -trace-buffer, 0 disables),
// solves slower than -trace-slow-threshold are flagged in the log, and
// -debug-addr starts a separate listener exposing net/http/pprof —
// opt-in and separately bindable so profiling endpoints never face the
// service's own clients.
//
// Cluster mode: give every node the same -peers list (its own advertised
// address included) and each node owns a deterministic shard of the graph
// space by consistent hashing on graph content IDs. Any node accepts any
// request — work it does not own is forwarded to the owner — so a load
// balancer can spray requests across the whole cluster:
//
//	mincutd -addr :8080 -advertise host1:8080 \
//	        -peers host1:8080,host2:8080,host3:8080
//
// On SIGTERM or SIGINT the server stops accepting work, finishes in-flight
// requests and jobs, and exits; jobs still running when -drain-timeout
// expires are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	parcut "repro"
	"repro/internal/cluster"
	"repro/internal/service/httpapi"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
	"repro/internal/service/store"
	"repro/internal/trace"
)

// version identifies the build on /healthz, in mincutd_build_info, and in
// the startup log line. Override at build time with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/mincutd
var version = "dev"

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "solver worker pool size")
	cacheBytes := flag.Int64("graph-cache-bytes", 1<<30, "graph registry budget in edge bytes (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs")
	boostFanout := flag.Int("boost-fanout", 0, "max sub-jobs per boosted solve (0 = max(2*workers, 8), 1 = sequential boost)")
	solvePar := flag.Int("solve-parallelism", 0, "executor width per solver worker (0 = ceil(GOMAXPROCS/workers), partitioning the machine across workers)")
	dataDir := flag.String("data-dir", "", "directory for the persistent graph store (empty = memory-only, graphs lost on restart)")
	maxDiskBytes := flag.Int64("max-disk-bytes", 0, "disk budget for the graph store; uploads are rejected past it (0 = unbounded)")
	classWeights := flag.String("class-weights", "", `per-class dispatch weights, e.g. "interactive=8,batch=4,background=1" (unlisted classes keep their defaults)`)
	classCaps := flag.String("class-queue-caps", "", `per-class queued-job caps, e.g. "batch=1000,background=5000"; submissions past a cap get 429 (0/unlisted = unbounded)`)
	maxQueue := flag.Int("max-queue", 0, "total queued-job bound across classes; submissions past it get 429 (0 = unbounded)")
	logFormat := flag.String("log-format", "text", `log output format: "text" or "json"`)
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof profiling endpoints (empty = disabled)")
	traceBuffer := flag.Int("trace-buffer", 256, "finished solve traces retained for GET /v1/traces (0 = tracing disabled)")
	traceSlow := flag.Duration("trace-slow-threshold", 0, "log one structured line per solve slower than this (0 = disabled)")
	parTune := flag.Bool("par-tune", false, "calibrate parallel-primitive granularity cutoffs at startup instead of using the built-in baseline (~1s of probing)")
	peers := flag.String("peers", "", `static cluster member list, e.g. "host1:8080,host2:8080,host3:8080" (empty = single-node); every node must be given the same list`)
	advertise := flag.String("advertise", "", "this node's address as it appears in -peers (required with -peers)")
	clusterVNodes := flag.Int("cluster-vnodes", 0, "virtual nodes per member on the placement ring (0 = 256); must match across the cluster")
	peerProbe := flag.Duration("peer-probe-interval", 2*time.Second, "how often peers are health-probed via /healthz")
	peerRetries := flag.Int("peer-retries", 2, "re-dials after a connection-level forward failure (-1 = none); HTTP error responses are never retried")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mincutd: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	// Weights must be >= 1 (a zero weight would otherwise be silently
	// replaced by the class default — sched treats non-positive weights
	// as "use the default"); caps allow 0, which means unbounded.
	weights, err := parseClassInts(*classWeights, 1)
	if err != nil {
		fatal("bad -class-weights", "error", err)
	}
	caps, err := parseClassInts(*classCaps, 0)
	if err != nil {
		fatal("bad -class-queue-caps", "error", err)
	}
	if *traceBuffer < 0 {
		fatal("bad -trace-buffer", "error", "must be >= 0")
	}
	if *parTune {
		// Calibrate once against this machine and make the result the
		// process-wide default: every executor the scheduler's workers
		// create from here on picks it up.
		start := time.Now()
		t := parcut.Calibrate()
		parcut.SetDefaultTuning(t)
		logger.Info("calibrated parallel cutoffs",
			"for_grain", t.ForGrain, "scan", t.Scan, "reduce", t.Reduce,
			"merge", t.Merge, "sort", t.Sort,
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
	if err := run(config{
		addr:         *addr,
		workers:      *workers,
		cacheBytes:   *cacheBytes,
		drainTimeout: *drainTimeout,
		boostFanout:  *boostFanout,
		solvePar:     *solvePar,
		dataDir:      *dataDir,
		maxDiskBytes: *maxDiskBytes,
		classWeights: weights,
		classCaps:    caps,
		maxQueue:     *maxQueue,
		debugAddr:    *debugAddr,
		traceBuffer:  *traceBuffer,
		traceSlow:    *traceSlow,
		peers:        parseList(*peers),
		advertise:    *advertise,
		vnodes:       *clusterVNodes,
		peerProbe:    *peerProbe,
		peerRetries:  *peerRetries,
		logger:       logger,
	}, nil); err != nil {
		fatal("exiting", "error", err)
	}
}

// newLogger builds the process logger in the requested format, writing to
// stderr like the stdlib logger it replaces.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf(`bad -log-format %q (want "text" or "json")`, format)
}

// parseClassInts parses "class=n,class=n" lists for -class-weights
// (minVal 1) and -class-queue-caps (minVal 0). The empty string is an
// empty map (all defaults).
func parseClassInts(s string, minVal int) (map[sched.Class]int, error) {
	out := make(map[sched.Class]int)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want class=n)", part)
		}
		class, err := sched.ParseClass(strings.TrimSpace(name))
		if err != nil || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("bad entry %q: unknown class %q", part, name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < minVal {
			return nil, fmt.Errorf("bad entry %q: value must be an integer >= %d", part, minVal)
		}
		out[class] = n
	}
	return out, nil
}

// config carries the flag values into run.
type config struct {
	addr         string
	workers      int
	cacheBytes   int64
	drainTimeout time.Duration
	boostFanout  int
	solvePar     int
	dataDir      string
	maxDiskBytes int64
	classWeights map[sched.Class]int
	classCaps    map[sched.Class]int
	maxQueue     int
	debugAddr    string
	traceBuffer  int
	traceSlow    time.Duration
	peers        []string // static member list; empty = single-node
	advertise    string   // this node's address within peers
	vnodes       int
	peerProbe    time.Duration
	peerRetries  int
	logger       *slog.Logger // nil means slog.Default()
}

// parseList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func parseList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// jobIDPrefix derives the per-node job-ID prefix from the advertised
// address: a short stable hash, so job IDs are unique across the cluster
// (peers can route an unknown job ID to the node that minted it) without
// leaking raw host:port strings into IDs.
func jobIDPrefix(advertise string) string {
	h := fnv.New32a()
	_, _ = h.Write([]byte(advertise))
	return fmt.Sprintf("%08x-", h.Sum32())
}

// debugHandler is the pprof route table, registered explicitly on a
// private mux (importing net/http/pprof for its DefaultServeMux side
// effect would expose the profiles on the service listener too).
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run starts the service and blocks until the listener fails or a
// termination signal completes the drain. If ready is non-nil, the bound
// address is sent on it once the server accepts connections (used by
// tests, which listen on port 0).
func run(cfg config, ready chan<- string) error {
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}
	var st *store.Store
	if cfg.dataDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: cfg.dataDir, MaxDiskBytes: cfg.maxDiskBytes, Log: logger})
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		defer st.Close()
		ss := st.Stats()
		logger.Info("store recovered", "dir", cfg.dataDir,
			"graphs", ss.Recovered, "segments", ss.Segments, "bytes", ss.Bytes, "corrupt_tails", ss.CorruptTail)
	}
	var backend registry.Backend
	if st != nil {
		backend = st
	}
	var ring *trace.Ring
	if cfg.traceBuffer > 0 {
		ring = trace.NewRing(cfg.traceBuffer)
	}
	clustered := len(cfg.peers) > 0
	if clustered && cfg.advertise == "" {
		return fmt.Errorf("-peers requires -advertise (this node's address within the peer list)")
	}
	idPrefix := ""
	if clustered {
		idPrefix = jobIDPrefix(cfg.advertise)
	}
	reg := registry.New(cfg.cacheBytes, backend)
	sch := sched.New(sched.Config{
		Workers:          cfg.workers,
		MaxFanout:        cfg.boostFanout,
		SolveParallelism: cfg.solvePar,
		ClassWeights:     cfg.classWeights,
		ClassQueueCaps:   cfg.classCaps,
		MaxQueue:         cfg.maxQueue,
		Traces:           ring,
		SlowSolve:        cfg.traceSlow,
		Logger:           logger,
		IDPrefix:         idPrefix,
	})
	apiOpts := httpapi.Options{Traces: ring, Logger: logger, Version: version}
	if clustered {
		node, err := cluster.New(cluster.Options{
			Self:          cfg.advertise,
			Members:       cfg.peers,
			VNodes:        cfg.vnodes,
			Local:         sched.Local{Scheduler: sch},
			Graphs:        reg,
			RequestID:     httpapi.RequestID,
			Retries:       cfg.peerRetries,
			ProbeInterval: cfg.peerProbe,
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		apiOpts.Submitter = node
		apiOpts.Cluster = node
		logger.Info("cluster mode", "self", cfg.advertise, "members", node.Ring().Members(),
			"vnodes", node.Ring().VNodes(), "job_id_prefix", idPrefix)
	}
	api := httpapi.New(reg, sch, st, apiOpts)
	srv := &http.Server{Handler: api.Handler()}

	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listen: %w", err)
		}
		defer dln.Close()
		go func() {
			if err := http.Serve(dln, debugHandler()); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		logger.Info("pprof debug listener on", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	logger.Info("listening", "addr", ln.Addr().String(), "version", version, "go_version", runtime.Version(),
		"workers", cfg.workers, "graph_cache_bytes", cfg.cacheBytes, "trace_buffer", cfg.traceBuffer)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case got := <-sig:
		logger.Info("draining on signal", "signal", got.String(), "timeout", cfg.drainTimeout)
	}
	api.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// First finish in-flight HTTP requests (waiters), then in-flight jobs.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown", "error", err)
	}
	if err := sch.Shutdown(ctx); err != nil {
		return fmt.Errorf("scheduler drain: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}
