// Command mincutd serves minimum-cut computations over HTTP: upload a
// graph once, solve it many times, concurrently, with caching and
// cancellation. See internal/service/httpapi for the API surface.
//
//	mincutd -addr :8080 -workers 8 -graph-cache-bytes 1073741824 \
//	        -data-dir /var/lib/mincutd
//
// With -data-dir set, uploaded graphs are committed to a crash-safe disk
// store before the upload returns, and a restart on the same directory
// recovers them — the in-memory registry becomes a cache over the store.
// Without it the service is memory-only and a restart starts empty.
//
// On SIGTERM or SIGINT the server stops accepting work, finishes in-flight
// requests and jobs, and exits; jobs still running when -drain-timeout
// expires are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/service/httpapi"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
	"repro/internal/service/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mincutd: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "solver worker pool size")
	cacheBytes := flag.Int64("graph-cache-bytes", 1<<30, "graph registry budget in edge bytes (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs")
	boostFanout := flag.Int("boost-fanout", 0, "max sub-jobs per boosted solve (0 = max(2*workers, 8), 1 = sequential boost)")
	solvePar := flag.Int("solve-parallelism", 0, "executor width per solver worker (0 = ceil(GOMAXPROCS/workers), partitioning the machine across workers)")
	dataDir := flag.String("data-dir", "", "directory for the persistent graph store (empty = memory-only, graphs lost on restart)")
	maxDiskBytes := flag.Int64("max-disk-bytes", 0, "disk budget for the graph store; uploads are rejected past it (0 = unbounded)")
	classWeights := flag.String("class-weights", "", `per-class dispatch weights, e.g. "interactive=8,batch=4,background=1" (unlisted classes keep their defaults)`)
	classCaps := flag.String("class-queue-caps", "", `per-class queued-job caps, e.g. "batch=1000,background=5000"; submissions past a cap get 429 (0/unlisted = unbounded)`)
	maxQueue := flag.Int("max-queue", 0, "total queued-job bound across classes; submissions past it get 429 (0 = unbounded)")
	flag.Parse()
	// Weights must be >= 1 (a zero weight would otherwise be silently
	// replaced by the class default — sched treats non-positive weights
	// as "use the default"); caps allow 0, which means unbounded.
	weights, err := parseClassInts(*classWeights, 1)
	if err != nil {
		log.Fatalf("-class-weights: %v", err)
	}
	caps, err := parseClassInts(*classCaps, 0)
	if err != nil {
		log.Fatalf("-class-queue-caps: %v", err)
	}
	if err := run(config{
		addr:         *addr,
		workers:      *workers,
		cacheBytes:   *cacheBytes,
		drainTimeout: *drainTimeout,
		boostFanout:  *boostFanout,
		solvePar:     *solvePar,
		dataDir:      *dataDir,
		maxDiskBytes: *maxDiskBytes,
		classWeights: weights,
		classCaps:    caps,
		maxQueue:     *maxQueue,
	}, nil); err != nil {
		log.Fatal(err)
	}
}

// parseClassInts parses "class=n,class=n" lists for -class-weights
// (minVal 1) and -class-queue-caps (minVal 0). The empty string is an
// empty map (all defaults).
func parseClassInts(s string, minVal int) (map[sched.Class]int, error) {
	out := make(map[sched.Class]int)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want class=n)", part)
		}
		class, err := sched.ParseClass(strings.TrimSpace(name))
		if err != nil || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("bad entry %q: unknown class %q", part, name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < minVal {
			return nil, fmt.Errorf("bad entry %q: value must be an integer >= %d", part, minVal)
		}
		out[class] = n
	}
	return out, nil
}

// config carries the flag values into run.
type config struct {
	addr         string
	workers      int
	cacheBytes   int64
	drainTimeout time.Duration
	boostFanout  int
	solvePar     int
	dataDir      string
	maxDiskBytes int64
	classWeights map[sched.Class]int
	classCaps    map[sched.Class]int
	maxQueue     int
}

// run starts the service and blocks until the listener fails or a
// termination signal completes the drain. If ready is non-nil, the bound
// address is sent on it once the server accepts connections (used by
// tests, which listen on port 0).
func run(cfg config, ready chan<- string) error {
	var st *store.Store
	if cfg.dataDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: cfg.dataDir, MaxDiskBytes: cfg.maxDiskBytes})
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		defer st.Close()
		ss := st.Stats()
		log.Printf("store %s: recovered %d graphs (%d segments, %d bytes, %d corrupt tails truncated)",
			cfg.dataDir, ss.Recovered, ss.Segments, ss.Bytes, ss.CorruptTail)
	}
	var backend registry.Backend
	if st != nil {
		backend = st
	}
	reg := registry.New(cfg.cacheBytes, backend)
	sch := sched.New(sched.Config{
		Workers:          cfg.workers,
		MaxFanout:        cfg.boostFanout,
		SolveParallelism: cfg.solvePar,
		ClassWeights:     cfg.classWeights,
		ClassQueueCaps:   cfg.classCaps,
		MaxQueue:         cfg.maxQueue,
	})
	api := httpapi.New(reg, sch, st)
	srv := &http.Server{Handler: api.Handler()}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	log.Printf("listening on %s (%d workers, %d graph cache bytes)", ln.Addr(), cfg.workers, cfg.cacheBytes)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case got := <-sig:
		log.Printf("received %v, draining (timeout %v)", got, cfg.drainTimeout)
	}
	api.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// First finish in-flight HTTP requests (waiters), then in-flight jobs.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := sch.Shutdown(ctx); err != nil {
		return fmt.Errorf("scheduler drain: %w", err)
	}
	log.Print("drained cleanly")
	return nil
}
