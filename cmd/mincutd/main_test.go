package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSigtermDrainsInFlightJobs is the acceptance test for graceful
// shutdown: it boots the real server, parks a solve in flight, delivers a
// real SIGTERM to the process, and asserts that run() finishes the job
// before returning.
func TestSigtermDrainsInFlightJobs(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(config{addr: "127.0.0.1:0", workers: 1, drainTimeout: time.Minute}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	// Upload a cycle graph; minimum cut is the two weight-2 edges.
	var graph strings.Builder
	fmt.Fprintf(&graph, "p cut 8 8\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&graph, "e %d %d %d\n", i, (i+1)%8, 2+i%3)
	}
	resp, err := http.Post(base+"/v1/graphs", "text/plain", strings.NewReader(graph.String()))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Park a moderately boosted solve in flight (async so the HTTP request
	// itself does not hold the drain open), then SIGTERM mid-run. The paper
	// engine is pinned: under the default "auto" this graph resolves to the
	// exact backend, where boost collapses and the job would finish before
	// the signal lands.
	resp, err = http.Post(base+"/v1/graphs/"+up.ID+"/mincut", "application/json",
		bytes.NewReader([]byte(`{"seed": 3, "boost": 2000, "async": true, "engine": "geissmann"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async solve: %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	// A nil return proves the job was drained, not dropped: Shutdown only
	// returns nil once the workers have finished every queued and running
	// job, and cancellation happens solely on the drain-timeout path,
	// which returns an error. Finally, the listener must really be gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after drain")
	}
}

// boot starts the real server with the given config and returns its base
// URL plus a function that SIGTERMs it and waits for a clean drain.
func boot(t *testing.T, cfg config) (string, func()) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(cfg, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	return base, func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v, want clean drain", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("server did not exit after SIGTERM")
		}
	}
}

// TestRestartServesPersistedGraphs is the end-to-end persistence check:
// with -data-dir, graphs uploaded to one server instance are served —
// and solved — by a fresh instance on the same directory, no re-upload.
func TestRestartServesPersistedGraphs(t *testing.T) {
	dir := t.TempDir()
	cfg := config{addr: "127.0.0.1:0", workers: 1, drainTimeout: time.Minute, dataDir: dir}

	base, stop := boot(t, cfg)
	var graph strings.Builder
	fmt.Fprintf(&graph, "p cut 8 8\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&graph, "e %d %d %d\n", i, (i+1)%8, 2+i%3)
	}
	resp, err := http.Post(base+"/v1/graphs", "text/plain", strings.NewReader(graph.String()))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	stop()

	base, stop = boot(t, cfg)
	defer stop()
	resp, err = http.Post(base+"/v1/graphs/"+up.ID+"/mincut", "application/json",
		bytes.NewReader([]byte(`{"seed": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		Status string `json:"status"`
		Value  *int64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || job.Value == nil || *job.Value != 4 {
		t.Fatalf("solve after restart: status=%d job=%+v, want value 4", resp.StatusCode, job)
	}
}
