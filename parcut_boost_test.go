package parcut_test

import (
	"testing"

	parcut "repro"
)

// TestBoostSeedDecomposition: run i of a Boost=k solve must equal run 0
// of a single solve seeded with BoostSeed(seed, i), and the boosted
// result must equal the deterministic reduction over those runs
// (smallest Value, ties to the lowest run index) — the contract the
// scheduler's parallel fan-out is built on.
func TestBoostSeedDecomposition(t *testing.T) {
	g := parcut.RandomGraph(80, 320, 50, 11)
	const seed, k = 21, 5
	boosted, err := parcut.MinCut(g, parcut.Options{Seed: seed, Boost: k, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}

	var merged parcut.Result
	for run := 0; run < k; run++ {
		r, err := parcut.MinCut(g, parcut.Options{Seed: parcut.BoostSeed(seed, run), WantPartition: true})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 || r.Value < merged.Value {
			merged = parcut.Result{Value: r.Value, InCut: r.InCut, TreesScanned: merged.TreesScanned + r.TreesScanned}
		} else {
			merged.TreesScanned += r.TreesScanned
		}
	}
	if boosted.Value != merged.Value || boosted.TreesScanned != merged.TreesScanned {
		t.Fatalf("boosted %+v, merged single runs %+v", boosted, merged)
	}
	for v := range boosted.InCut {
		if boosted.InCut[v] != merged.InCut[v] {
			t.Fatalf("partitions differ at vertex %d", v)
		}
	}
}

// TestBoostSeedAdditive: chunked decompositions rely on
// BoostSeed(BoostSeed(s, a), b) == BoostSeed(s, a+b).
func TestBoostSeedAdditive(t *testing.T) {
	for _, s := range []int64{0, 1, -7, 1 << 40} {
		for a := 0; a < 5; a++ {
			for b := 0; b < 5; b++ {
				if got, want := parcut.BoostSeed(parcut.BoostSeed(s, a), b), parcut.BoostSeed(s, a+b); got != want {
					t.Fatalf("BoostSeed(BoostSeed(%d,%d),%d) = %d, want %d", s, a, b, got, want)
				}
			}
		}
	}
}

// TestBoostedPartitionAchievesValue: with Boost > 1 and WantPartition the
// returned partition must evaluate to exactly the returned value — the
// winning run's partition must survive the boost reduction intact.
func TestBoostedPartitionAchievesValue(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := parcut.RandomGraph(60, 240, 30, seed)
		res, err := parcut.MinCut(g, parcut.Options{Seed: seed, Boost: 4, WantPartition: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.InCut == nil {
			t.Fatal("no partition returned")
		}
		if cv := g.CutValue(res.InCut); cv != res.Value {
			t.Fatalf("seed %d: CutValue(InCut) = %d, Value = %d", seed, cv, res.Value)
		}
	}
}

// TestCanonicalPreservesGraph: Canonical must keep the cut structure (it
// only reorders edges) while normalizing the serialization.
func TestCanonicalPreservesGraph(t *testing.T) {
	g := parcut.NewGraph(4)
	for _, e := range [][3]int64{{3, 0, 2}, {1, 0, 3}, {2, 3, 4}, {1, 2, 1}} {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	c := g.Canonical()
	if c.N() != g.N() || c.M() != g.M() || c.TotalWeight() != g.TotalWeight() {
		t.Fatalf("canonical shape changed: n=%d m=%d w=%d", c.N(), c.M(), c.TotalWeight())
	}
	rg, err := parcut.MinCut(g, parcut.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := parcut.MinCut(c, parcut.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rg.Value != rc.Value {
		t.Fatalf("min cut changed under canonicalization: %d vs %d", rg.Value, rc.Value)
	}
}
