package parcut

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/trace"
)

// widthsUnderTest: sequential, even, odd (misaligned chunk boundaries),
// and the machine's own parallelism.
func widthsUnderTest() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestMinCutWidthEquivalence is the determinism invariant of the pool
// refactor: identical seed and input must produce a bit-identical Result
// at every executor width, including partitions and model stats — and
// attaching live instrumentation (a progress sink with an active event
// hook plus a trace recorder) must never perturb it: both sinks are
// write-only for the solver.
func TestMinCutWidthEquivalence(t *testing.T) {
	graphs := []*Graph{
		RandomGraph(140, 560, 50, 11),
		RandomGraph(64, 1200, 9, 5),
	}
	for gi, g := range graphs {
		for _, boost := range []int{1, 3} {
			var ref Result
			for i, w := range widthsUnderTest() {
				for _, instrumented := range []bool{false, true} {
					opt := Options{
						Seed:          42,
						WantPartition: true,
						CollectStats:  true,
						Boost:         boost,
						Parallelism:   w,
					}
					var rec *trace.Recorder
					var published *trace.Trace
					if instrumented {
						opt.Progress = NewProgress(func(ProgressSnapshot) {})
						rec = trace.NewRecorder("test", 0, func(tr *trace.Trace) { published = tr })
						opt.Trace = rec.Start("solve")
					}
					res, err := MinCut(g, opt)
					if err != nil {
						t.Fatalf("graph %d width %d instrumented=%v: %v", gi, w, instrumented, err)
					}
					if instrumented {
						opt.Trace.End()
						rec.Release()
						if published == nil || len(published.Spans) < 2 {
							t.Fatalf("graph %d width %d: trace not published or empty (%+v)", gi, w, published)
						}
					}
					if i == 0 && !instrumented {
						ref = res
						continue
					}
					if !reflect.DeepEqual(res, ref) {
						t.Fatalf("graph %d boost %d: width %d (instrumented=%v) result %+v differs from width-1 result %+v",
							gi, boost, w, instrumented, res, ref)
					}
				}
			}
		}
	}
}

// TestMinCutExecutorMatchesParallelism: a reusable Executor and the
// per-call Parallelism knob must be observationally identical.
func TestMinCutExecutorMatchesParallelism(t *testing.T) {
	g := RandomGraph(150, 600, 30, 3)
	want, err := MinCut(g, Options{Seed: 9, WantPartition: true, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(3)
	defer exec.Close()
	if exec.Width() != 3 {
		t.Fatalf("executor width = %d", exec.Width())
	}
	for i := 0; i < 3; i++ { // reuse across calls
		got, err := MinCut(g, Options{Seed: 9, WantPartition: true, Executor: exec})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("executor run %d: %+v != %+v", i, got, want)
		}
	}
}

// TestConstrainedMinCutWidthEquivalence covers the deterministic §4
// subproblem across widths.
func TestConstrainedMinCutWidthEquivalence(t *testing.T) {
	g := RandomGraph(120, 480, 25, 21)
	// The path tree on vertex order: a valid rooted tree over the vertex
	// set, which is all the constrained search needs to run.
	parent := make([]int32, g.N())
	parent[0] = -1
	for i := 1; i < g.N(); i++ {
		parent[i] = int32(i - 1)
	}
	var ref Result
	for i, w := range widthsUnderTest() {
		res, err := ConstrainedMinCut(g, parent, Options{WantPartition: true, CollectStats: true, Parallelism: w})
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("width %d: %+v != %+v", w, res, ref)
		}
	}
	if got := g.CutValue(ref.InCut); got != ref.Value {
		t.Fatalf("witness value %d != reported %d", got, ref.Value)
	}
}

// TestConcurrentMinCutIndependentExecutors runs many solves at once, each
// on its own executor, under the race detector: independent pools must
// not share mutable state, and every solve must match the sequential
// reference result.
func TestConcurrentMinCutIndependentExecutors(t *testing.T) {
	g := RandomGraph(150, 600, 40, 7)
	want, err := MinCut(g, Options{Seed: 5, WantPartition: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	results := make([]Result, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			exec := NewExecutor(1 + c%3)
			defer exec.Close()
			results[c], errs[c] = MinCut(g, Options{Seed: 5, WantPartition: true, Executor: exec})
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if !reflect.DeepEqual(results[c], want) {
			t.Fatalf("caller %d diverged: %+v != %+v", c, results[c], want)
		}
	}
}

// TestPathAggregatorWidthEquivalence: the standalone Minimum Path
// structure returns identical batch results at every parallelism.
func TestPathAggregatorWidthEquivalence(t *testing.T) {
	n := 300
	parent := make([]int32, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = int32((i - 1) / 3)
	}
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = int64((i * 37) % 101)
	}
	var ops []PathOp
	for i := 0; i < 4*n; i++ {
		v := int32((i * 13) % n)
		if i%2 == 0 {
			ops = append(ops, AddPath(v, int64(i%19-9)))
		} else {
			ops = append(ops, MinPath(v))
		}
	}
	var ref []int64
	for i, w := range widthsUnderTest() {
		pa, err := NewPathAggregatorOpts(parent, weights, Options{Parallelism: w})
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		got, err := pa.Run(ops)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		pa.Close()
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("width %d batch results differ", w)
		}
	}
}
