package parcut

import (
	"fmt"

	"repro/internal/minpath"
	"repro/internal/par"
	"repro/internal/tree"
)

// PathAggregator is the paper's parallel Minimum Path structure (§3) as a
// standalone tool: a rooted tree with an int64 weight per vertex,
// supporting batches of mixed operations
//
//	AddPath(v, x): add x to the weight of every vertex on the path v→root
//	MinPath(v):    the smallest weight on that path
//
// executed as if sequential, in O(k·log n·(log n + log k) + n log n) work
// and poly-logarithmic depth (Lemma 9). Batches commit: updates persist
// into the stored weights for subsequent batches.
type PathAggregator struct {
	t       *tree.Tree
	s       *minpath.Structure
	weights []int64
	pool    *par.Pool
	owned   bool // pool was created for this aggregator; Close releases it
}

// PathOp is one operation in a batch.
type PathOp struct {
	// Query selects MinPath (true) or AddPath (false).
	Query bool
	// Vertex is the lower endpoint of the root path.
	Vertex int32
	// X is the AddPath increment (ignored for queries).
	X int64
}

// AddPath builds an update operation.
func AddPath(v int32, x int64) PathOp { return PathOp{Vertex: v, X: x} }

// MinPath builds a query operation.
func MinPath(v int32) PathOp { return PathOp{Query: true, Vertex: v} }

// NewPathAggregator builds the structure over the rooted tree described by
// parent (root marked with -1) with the given initial weights, running on
// the shared default executor.
func NewPathAggregator(parent []int32, weights []int64) (*PathAggregator, error) {
	return NewPathAggregatorOpts(parent, weights, Options{})
}

// NewPathAggregatorOpts is NewPathAggregator with execution options:
// opt.Executor pins the aggregator's batches to a caller-owned executor;
// otherwise opt.Parallelism > 0 gives the aggregator a dedicated executor
// of that width, released by Close. The remaining Options fields are
// ignored. Results are identical at every parallelism.
func NewPathAggregatorOpts(parent []int32, weights []int64, opt Options) (*PathAggregator, error) {
	if len(parent) != len(weights) {
		return nil, fmt.Errorf("parcut: %d weights for %d vertices", len(weights), len(parent))
	}
	pool, owned := opt.executionPool()
	t, err := tree.FromParentParallel(parent, pool, nil)
	if err != nil {
		if owned {
			pool.Close()
		}
		return nil, fmt.Errorf("parcut: %v", err)
	}
	w := make([]int64, len(weights))
	copy(w, weights)
	return &PathAggregator{
		t:       t,
		s:       minpath.New(t, pool, nil),
		weights: w,
		pool:    pool,
		owned:   owned,
	}, nil
}

// Close releases the aggregator's dedicated executor, if it owns one
// (Parallelism > 0 without an Executor). It is safe to call always.
func (p *PathAggregator) Close() {
	if p.owned {
		p.pool.Close()
	}
}

// N returns the number of tree vertices.
func (p *PathAggregator) N() int { return p.t.N() }

// Weight returns the current weight of vertex v.
func (p *PathAggregator) Weight(v int32) int64 { return p.weights[v] }

// Run executes the batch in order and returns one entry per op (query
// results at query positions, 0 elsewhere). Updates persist: after Run,
// the stored weights reflect all AddPath operations of the batch.
func (p *PathAggregator) Run(ops []PathOp) ([]int64, error) {
	for i, op := range ops {
		if op.Vertex < 0 || int(op.Vertex) >= p.t.N() {
			return nil, fmt.Errorf("parcut: op %d vertex %d out of range", i, op.Vertex)
		}
	}
	inner := make([]minpath.Op, len(ops))
	for i, op := range ops {
		inner[i] = minpath.Op{Query: op.Query, Vertex: op.Vertex, X: op.X}
	}
	res := p.s.RunBatch(p.weights, inner, p.pool, nil)
	p.commit(ops)
	return res, nil
}

// commit folds the batch's updates into the stored weights: AddPath(v, x)
// raises the weight of every ancestor of v, so the new weight of u is the
// old weight plus the subtree sum (over u's subtree) of the per-vertex
// update totals.
func (p *PathAggregator) commit(ops []PathOp) {
	n := p.t.N()
	perVertex := make([]int64, n)
	any := false
	for _, op := range ops {
		if !op.Query && op.X != 0 {
			perVertex[op.Vertex] += op.X
			any = true
		}
	}
	if !any {
		return
	}
	sums := p.t.SubtreeSum(perVertex, p.pool, nil)
	p.pool.For(n, func(v int) {
		p.weights[v] += sums[v]
	})
}
