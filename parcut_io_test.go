package parcut

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// square builds the quickstart graph: a 4-cycle with weights 3,1,4,2 whose
// minimum cut (value 3) crosses the two lightest edges.
func square(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(4)
	for _, e := range [][3]int64{{0, 1, 3}, {1, 2, 1}, {2, 3, 4}, {3, 0, 2}} {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestCutEdgesQuickstartPartition(t *testing.T) {
	g := square(t)
	res, err := MinCut(g, Options{Seed: 1, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("Value = %d, want 3", res.Value)
	}
	edges := g.CutEdges(res.InCut)
	if len(edges) != 2 {
		t.Fatalf("CutEdges returned %d edges, want 2: %+v", len(edges), edges)
	}
	var total int64
	for _, e := range edges {
		if res.InCut[e.U] == res.InCut[e.V] {
			t.Fatalf("edge %+v does not cross the cut", e)
		}
		total += e.W
	}
	if total != res.Value {
		t.Fatalf("cut edges weigh %d, want %d", total, res.Value)
	}
	// Input order: {1,2} before {3,0}.
	if edges[0].U != 1 || edges[0].V != 2 || edges[0].W != 1 {
		t.Fatalf("edges[0] = %+v, want {1 2 1}", edges[0])
	}
}

func TestCutEdgesEmptyWhenAllOneSide(t *testing.T) {
	g := square(t)
	if edges := g.CutEdges(make([]bool, 4)); len(edges) != 0 {
		t.Fatalf("trivial partition cut %d edges", len(edges))
	}
}

func TestWriteReadGraphRoundTrip(t *testing.T) {
	g := RandomGraph(40, 120, 50, 11)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() || got.TotalWeight() != g.TotalWeight() {
		t.Fatalf("round trip changed shape: n %d->%d m %d->%d w %d->%d",
			g.N(), got.N(), g.M(), got.M(), g.TotalWeight(), got.TotalWeight())
	}
	// Serializing again must reproduce the bytes exactly (the service
	// registry's content addressing relies on this canonical form).
	var again bytes.Buffer
	if err := got.Write(&again); err != nil {
		t.Fatal(err)
	}
	first := regenerate(t, g)
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("canonical serialization is not a fixed point")
	}
	// And both solve to the same cut value.
	a, err := MinCut(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCut(got, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatalf("round trip changed min cut: %d -> %d", a.Value, b.Value)
	}
}

func regenerate(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadGraphRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "e 0 1 2\n", "p cut 2 1\ne 0 9 1\n"} {
		if _, err := ReadGraph(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadGraph(%q) succeeded, want error", bad)
		}
	}
}

func TestMinCutContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MinCutContext(ctx, square(t), Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}

func TestMinCutContextBackgroundMatchesMinCut(t *testing.T) {
	g := RandomGraph(60, 200, 30, 3)
	a, err := MinCut(g, Options{Seed: 9, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCutContext(context.Background(), g, Options{Seed: 9, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatalf("MinCut %d != MinCutContext %d", a.Value, b.Value)
	}
	if g.CutValue(b.InCut) != b.Value {
		t.Fatalf("partition does not achieve value %d", b.Value)
	}
}
