// Package core assembles the paper's parallel minimum cut algorithm
// (Theorem 10): pack O(log n) spanning trees so that w.h.p. one of them
// crosses the minimum cut at most twice (Lemma 1, internal/packing), then
// for every tree find the smallest cut crossing at most two of its edges
// (Lemma 13, internal/respect), and return the overall smallest. Total
// work O(m log⁴ n), depth O(log³ n), Monte Carlo with high probability.
package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/packing"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/respect"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/wd"
)

// Options configure MinCut.
type Options struct {
	// Seed drives all randomness; runs are deterministic in it.
	Seed int64
	// Packing overrides the tree-packing constants (zero values take the
	// package defaults).
	Packing packing.Options
	// WantPartition requests the cut's vertex partition, not just the value.
	WantPartition bool
	// ParallelPhases executes every bough phase's operation batches
	// concurrently per tree (the paper's §4.3 schedule): lower depth,
	// O(m log n) memory instead of O(m).
	ParallelPhases bool
	// Pool is the executor every parallel primitive of the computation
	// runs on; nil means the shared default pool (width GOMAXPROCS).
	// Results are identical at every pool width.
	Pool *par.Pool
	// Meter, when non-nil, accumulates Work-Depth model costs.
	Meter *wd.Meter
	// Progress, when non-nil, receives live phase and counter updates at
	// the cooperative-cancellation seams. It is write-only for the solver:
	// attaching a sink never changes the Result at any pool width.
	Progress *progress.Sink
	// Trace, when active, receives a span tree attributing the solve's
	// wall clock: "packing" and "scan" phase spans with estimate,
	// per-attempt, per-tree, and per-bough-phase children. Like Progress
	// it is write-only — attaching a recorder never changes the Result at
	// any pool width — and the zero SpanRef costs one branch per seam.
	Trace trace.SpanRef
}

// Result of a minimum cut computation.
type Result struct {
	// Value is the weight of the minimum cut.
	Value int64
	// InCut marks one side of an optimal partition (nil unless
	// Options.WantPartition).
	InCut []bool
	// TreesScanned is the number of distinct spanning trees searched.
	TreesScanned int
	// Estimate is the accepted cut estimate from the packing phase.
	Estimate int64
	// PackValue is the tree packing's value.
	PackValue float64
}

// MinCut computes a global minimum cut of g. It is Monte Carlo: the result
// is correct with high probability (failures can only overestimate — every
// reported value is the weight of some real cut).
func MinCut(g *graph.Graph, opt Options) (Result, error) {
	return MinCutContext(context.Background(), g, opt)
}

// MinCutContext is MinCut with cooperative cancellation: ctx is checked
// before the packing phase, at the start of every spanning-tree scan, and
// between bough phases inside each scan, so a canceled context stops the
// computation within one phase of work rather than running to completion.
func MinCutContext(ctx context.Context, g *graph.Graph, opt Options) (Result, error) {
	n := g.N()
	if n < 2 {
		return Result{}, fmt.Errorf("core: minimum cut needs at least 2 vertices, have %d", n)
	}
	m := opt.Meter
	pool := opt.Pool
	// Disconnected graphs have a minimum cut of 0 (paper §1.1.1).
	_, labels, comps := mst.ForestWithLabels(n, g.Edges(), nil, pool, m)
	if comps > 1 {
		res := Result{Value: 0}
		if opt.WantPartition {
			inCut := make([]bool, n)
			ref := labels[0]
			pool.For(n, func(v int) { inCut[v] = labels[v] == ref })
			res.InCut = inCut
		}
		return res, nil
	}
	// The minimum weighted degree is both the packing's starting upper
	// bound and a legitimate cut candidate (a singleton).
	deg := g.WeightedDegrees()
	minDeg, minDegV := pool.MinInt64(deg)
	m.Add(int64(n), wd.CeilLog2(n))

	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("core: canceled before packing: %w", err)
	}
	sink := opt.Progress
	sink.EnterPhase(progress.PhasePacking)
	popt := opt.Packing
	if popt.Seed == 0 {
		popt.Seed = opt.Seed + 1
	}
	packSp := opt.Trace.Child("packing")
	pk, err := packing.SampleTreesContext(ctx, g, popt, pool, m, sink, packSp)
	if err != nil {
		packSp.End()
		if ctx.Err() != nil {
			return Result{}, fmt.Errorf("core: tree packing canceled: %w", ctx.Err())
		}
		return Result{}, fmt.Errorf("core: tree packing failed: %v", err)
	}
	packSp.AttrInt("trees", int64(len(pk.Trees))).AttrInt("estimate", pk.Estimate).
		AttrInt("packings", int64(pk.Packings)).End()
	// Scan every tree in parallel; each scan is itself parallel.
	type scanOut struct {
		finding respect.Finding
		parent  []int32
		err     error
	}
	outs := make([]scanOut, len(pk.Trees))
	locals := make([]*wd.Meter, len(pk.Trees))
	sink.AddTrees(int64(len(pk.Trees)))
	sink.EnterPhase(progress.PhaseScan)
	scanSp := opt.Trace.Child("scan").AttrInt("trees", int64(len(pk.Trees)))
	var obs par.RegionFunc
	if scanSp.Active() {
		obs = func(name string, items, width int) func() {
			fsp := scanSp.Child(name).AttrInt("items", int64(items)).AttrInt("width", int64(width))
			return fsp.End
		}
	}
	pool.ForGrainRegion("fork:trees", obs, len(pk.Trees), 1, func(i int) {
		// Cancellation checkpoint between trees: a canceled context skips
		// every scan that has not started yet.
		if err := ctx.Err(); err != nil {
			outs[i].err = fmt.Errorf("canceled: %w", err)
			return
		}
		tsp := scanSp.Child("tree-scan").AttrInt("tree", int64(i))
		defer tsp.End()
		edges := make([][2]int32, len(pk.Trees[i]))
		for j, ei := range pk.Trees[i] {
			e := g.Edge(int(ei))
			edges[j] = [2]int32{e.U, e.V}
		}
		locals[i] = new(wd.Meter)
		parent, err := tree.RootEdgeList(n, edges, 0, pool, locals[i])
		if err != nil {
			outs[i].err = err
			return
		}
		var f respect.Finding
		if opt.ParallelPhases {
			f, err = respect.ScanParallelPhasesContext(ctx, g, parent, pool, locals[i], sink, tsp)
		} else {
			f, err = respect.ScanContext(ctx, g, parent, pool, locals[i], sink, tsp)
		}
		outs[i] = scanOut{finding: f, parent: parent, err: err}
		if err == nil {
			sink.TreeDone()
		}
	})
	scanSp.End()
	m.Par(locals...) // trees are searched in parallel (§4.3 step 3)
	best := Result{Value: minDeg, TreesScanned: len(pk.Trees), Estimate: pk.Estimate, PackValue: pk.PackValue}
	bestTree := -1
	for i, o := range outs {
		if o.err != nil {
			return Result{}, fmt.Errorf("core: tree %d scan failed: %w", i, o.err)
		}
		if o.finding.Value < best.Value {
			best.Value = o.finding.Value
			bestTree = i
		}
	}
	if opt.WantPartition {
		if bestTree < 0 {
			// The singleton minimum-degree cut won.
			inCut := make([]bool, n)
			inCut[minDegV] = true
			best.InCut = inCut
		} else {
			inCut, err := respect.Witness(g, outs[bestTree].parent, outs[bestTree].finding, pool, m)
			if err != nil {
				return Result{}, fmt.Errorf("core: witness extraction failed: %v", err)
			}
			best.InCut = inCut
		}
	}
	return best, nil
}

// ConstrainedMinCut exposes the per-tree primitive (Lemma 13): the
// smallest cut of g crossing at most two edges of the given spanning tree,
// rooted anywhere. The tree is given as a parent array with the root
// marked by -1.
func ConstrainedMinCut(g *graph.Graph, parent []int32, wantPartition bool, pool *par.Pool, m *wd.Meter) (Result, error) {
	r, err := respect.TwoRespect(g, parent, wantPartition, pool, m)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: r.Value, InCut: r.InCut, TreesScanned: 1}, nil
}
