package core

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// TestMinCutLargeWeights exercises the integer-weight regime near the
// supported cap: weights around 2^30 with totals under 2^40, where the
// ±2^60 blocking sentinel still has 20 bits of headroom.
func TestMinCutLargeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.New(24)
	// Ring of heavy edges plus a few light chords: the minimum cut must
	// pick the two lightest ring edges or a light chord combination.
	heavy := int64(1) << 30
	for i := 0; i < 24; i++ {
		w := heavy + int64(rng.Intn(1000))
		if err := g.AddEdge(i, (i+1)%24, w); err != nil {
			t.Fatal(err)
		}
	}
	want, _, err := baseline.StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinCut(g, Options{Seed: 5, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("got %d want %d", res.Value, want)
	}
	if got := g.CutValue(res.InCut); got != want {
		t.Fatalf("witness %d want %d", got, want)
	}
}

// TestMinCutAllEqualWeights: ties everywhere stress the deterministic
// tie-breaking in MSTs and the packing.
func TestMinCutAllEqualWeights(t *testing.T) {
	g := gen.Clique(12, 1, 3) // maxW=1 → all weights 1
	want, _, err := baseline.StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinCut(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want { // K12 unit weights: min cut = 11
		t.Fatalf("clique: got %d want %d", res.Value, want)
	}
}

// TestMinCutStar: star graphs have n-1 bridges; minimum cut = lightest
// spoke. Stars are also the worst case for bough fan-out.
func TestMinCutStar(t *testing.T) {
	g := graph.New(33)
	for i := 1; i < 33; i++ {
		if err := g.AddEdge(0, i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := MinCut(g, Options{Seed: 9, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Fatalf("star: got %d want 1", res.Value)
	}
	ones := 0
	for _, in := range res.InCut {
		if in {
			ones++
		}
	}
	if ones != 1 && ones != 32 {
		t.Fatalf("star witness should isolate one leaf, got %d/%d", ones, 33)
	}
}

// TestMinCutOnlyParallelEdges: a 2-vertex multigraph.
func TestMinCutOnlyParallelEdges(t *testing.T) {
	g := graph.New(2)
	var want int64
	for i := 1; i <= 10; i++ {
		if err := g.AddEdge(0, 1, int64(i)); err != nil {
			t.Fatal(err)
		}
		want += int64(i)
	}
	res, err := MinCut(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("got %d want %d", res.Value, want)
	}
}

// TestMinCutBridgeGraph: a path of blobs connected by unit bridges — many
// near-minimum cuts, the classic failure mode for sloppy sampling.
func TestMinCutBridgeGraph(t *testing.T) {
	blobs := 5
	per := 6
	n := blobs * per
	g := graph.New(n)
	add := func(u, v int, w int64) {
		t.Helper()
		if err := g.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < blobs; b++ {
		base := b * per
		for i := 0; i < per; i++ {
			for j := i + 1; j < per; j++ {
				add(base+i, base+j, 10)
			}
		}
		if b+1 < blobs {
			add(base, base+per, 1) // unit bridge
		}
	}
	res, err := MinCut(g, Options{Seed: 11, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 {
		t.Fatalf("bridge graph: got %d want 1", res.Value)
	}
	if got := g.CutValue(res.InCut); got != 1 {
		t.Fatalf("witness value %d", got)
	}
}

// TestMonteCarloFailureRate: many independent seeds on one fixed graph;
// the w.h.p. guarantee should translate into a near-zero observed failure
// rate (we allow one failure in 60 to keep the test robust).
func TestMonteCarloFailureRate(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := gen.RandomConnected(60, 180, 20, 99)
	want, _, err := baseline.StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	const trials = 60
	for seed := int64(0); seed < trials; seed++ {
		res, err := MinCut(g, Options{Seed: 1000 + seed*31})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			failures++
		}
	}
	if failures > 1 {
		t.Fatalf("%d/%d Monte Carlo failures (want ≤1)", failures, trials)
	}
}
