package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/tree"
	"repro/internal/wd"
)

// TestFigure1Example: the running example of paper Figure 1 has minimum
// cut 2.
func TestFigure1Example(t *testing.T) {
	g := graph.New(6)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 3}, {0, 2, 3}, {1, 2, 2}, {3, 4, 1}, {3, 5, 2}, {4, 5, 1}, {2, 3, 1}, {1, 4, 1}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	res, err := MinCut(g, Options{Seed: 1, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("figure 1 min cut = %d, want 2", res.Value)
	}
	if got := g.CutValue(res.InCut); got != 2 {
		t.Fatalf("partition value %d", got)
	}
}

// TestMinCutAgreesWithStoerWagner is experiment E8: end-to-end agreement
// on seeded random graphs.
func TestMinCutAgreesWithStoerWagner(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 8 + int(seed*13)%60
		mm := 2*n + int(seed*7)%(4*n)
		g := gen.RandomConnected(n, mm, 16, seed)
		want, _, err := baseline.StoerWagner(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinCut(g, Options{Seed: seed * 17, WantPartition: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Value != want {
			t.Fatalf("seed %d (n=%d m=%d): MinCut=%d StoerWagner=%d", seed, n, mm, res.Value, want)
		}
		if got := g.CutValue(res.InCut); got != res.Value {
			t.Fatalf("seed %d: partition value %d claimed %d", seed, got, res.Value)
		}
	}
}

func TestMinCutPlanted(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := gen.PlantedCut(20, 25, 4, seed)
		res, err := MinCut(p.G, Options{Seed: seed + 5, WantPartition: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != p.CutValue {
			t.Fatalf("seed %d: got %d want planted %d", seed, res.Value, p.CutValue)
		}
		// Unique planted cut: partitions must coincide up to complement.
		same := res.InCut[0] == p.InCut[0]
		for v := range res.InCut {
			if (res.InCut[v] == p.InCut[v]) != same {
				t.Fatalf("seed %d: partition differs from planted", seed)
			}
		}
	}
}

func TestMinCutDumbbellAndCycle(t *testing.T) {
	d := gen.Dumbbell(9, 4, 2)
	res, err := MinCut(d.G, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Fatalf("dumbbell: %d want 4", res.Value)
	}
	c := gen.Cycle([]int64{7, 3, 9, 2, 8, 5})
	res, err = MinCut(c.G, Options{Seed: 4, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 {
		t.Fatalf("cycle: %d want 5", res.Value)
	}
}

func TestMinCutDisconnected(t *testing.T) {
	g := gen.Disconnected(8, 9, 7)
	res, err := MinCut(g, Options{Seed: 1, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("disconnected: %d want 0", res.Value)
	}
	if got := g.CutValue(res.InCut); got != 0 {
		t.Fatalf("partition crosses weight %d", got)
	}
	// Partition must be proper: both sides nonempty.
	any, all := false, true
	for _, b := range res.InCut {
		any = any || b
		all = all && b
	}
	if !any || all {
		t.Fatal("partition is not proper")
	}
}

func TestMinCutTinyGraphs(t *testing.T) {
	g := graph.New(2)
	if err := g.AddEdge(0, 1, 9); err != nil {
		t.Fatal(err)
	}
	res, err := MinCut(g, Options{Seed: 2, WantPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 9 {
		t.Fatalf("K2: %d want 9", res.Value)
	}
	if _, err := MinCut(graph.New(1), Options{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := MinCut(graph.New(0), Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestMinCutDeterministicInSeed(t *testing.T) {
	g := gen.RandomConnected(40, 160, 12, 31)
	a, err := MinCut(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCut(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.TreesScanned != b.TreesScanned || a.Estimate != b.Estimate {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestMinCutMeterAccumulates(t *testing.T) {
	g := gen.RandomConnected(64, 256, 8, 9)
	var m wd.Meter
	if _, err := MinCut(g, Options{Seed: 11, Meter: &m}); err != nil {
		t.Fatal(err)
	}
	if m.Work() == 0 || m.Depth() == 0 {
		t.Fatalf("meter empty: work=%d depth=%d", m.Work(), m.Depth())
	}
	if m.Depth() >= m.Work() {
		t.Fatalf("depth %d should be far below work %d", m.Depth(), m.Work())
	}
}

func TestConstrainedMinCut(t *testing.T) {
	// Star graph, tree = the star: every cut crosses ≥1 tree edge; the
	// constrained minimum over ≤2 tree edges is the best single or pair.
	g := graph.New(4)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 5}, {0, 2, 3}, {0, 3, 4}, {1, 2, 1}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	parent := []int32{tree.None, 0, 0, 0}
	res, err := ConstrainedMinCut(g, parent, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := baseline.BruteForce(g) // every cut of a star 2-respects? n=4: cuts cross ≤3 tree edges
	if err != nil {
		t.Fatal(err)
	}
	// The constrained value can exceed the true min cut only when the
	// optimum needs 3 tree edges; here singleton {2} cuts edges (0,2),(1,2)
	// = 4, and brute force gives 4 as well.
	if want != 4 || res.Value != 4 {
		t.Fatalf("constrained=%d brute=%d want both 4", res.Value, want)
	}
	if got := g.CutValue(res.InCut); got != res.Value {
		t.Fatalf("witness %d claimed %d", got, res.Value)
	}
}
