package core

import (
	"testing"

	"repro/internal/graph/gen"
)

// BenchmarkMinCutSparse2048 is the profiling anchor for the end-to-end
// pipeline on a sparse instance.
func BenchmarkMinCutSparse2048(b *testing.B) {
	g := gen.RandomConnected(2048, 8192, 100, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinCut(g, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
