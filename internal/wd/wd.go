// Package wd provides work-depth accounting in the spirit of the
// Work-Depth model (paper §1.1.2): the work of an algorithm is the number
// of constant-time operations it performs and the depth is the length of
// the longest chain of sequentially dependent operations.
//
// Algorithms in this repository update a Meter at primitive granularity
// (one Add per parallel primitive invocation, with the measured input size,
// not one per element), so metering is cheap enough to leave on during
// benchmarks. Sequential composition adds both work and depth; parallel
// composition adds work and takes the maximum depth, which callers express
// with Seq and Par.
package wd

import "sync/atomic"

// Meter accumulates model work and depth. The zero value is ready to use.
// A nil *Meter is valid and records nothing, so metering is optional on
// every code path.
type Meter struct {
	work  atomic.Int64
	depth atomic.Int64
}

// Add records a primitive of the given work and depth, composed
// sequentially after everything recorded so far.
func (m *Meter) Add(work, depth int64) {
	if m == nil {
		return
	}
	m.work.Add(work)
	m.depth.Add(depth)
}

// Work returns the accumulated work.
func (m *Meter) Work() int64 {
	if m == nil {
		return 0
	}
	return m.work.Load()
}

// Depth returns the accumulated depth.
func (m *Meter) Depth() int64 {
	if m == nil {
		return 0
	}
	return m.depth.Load()
}

// Seq composes other after m: work and depth both accumulate.
func (m *Meter) Seq(other *Meter) {
	if m == nil || other == nil {
		return
	}
	m.work.Add(other.work.Load())
	m.depth.Add(other.depth.Load())
}

// Par composes the given meters as parallel branches following m:
// their work adds up, and the largest branch depth extends m's depth.
func (m *Meter) Par(branches ...*Meter) {
	if m == nil {
		return
	}
	var work, depth int64
	for _, b := range branches {
		if b == nil {
			continue
		}
		work += b.work.Load()
		if d := b.depth.Load(); d > depth {
			depth = d
		}
	}
	m.work.Add(work)
	m.depth.Add(depth)
}

// Reset clears the meter.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.work.Store(0)
	m.depth.Store(0)
}

// CeilLog2 returns ceil(log2(n)) for n >= 1 and 0 for n < 1. It is the
// depth unit used by the parallel primitives (a reduction or scan over n
// elements has model depth CeilLog2(n)+1).
func CeilLog2(n int) int64 {
	if n <= 1 {
		return 0
	}
	d := int64(0)
	x := n - 1
	for x > 0 {
		x >>= 1
		d++
	}
	return d
}
