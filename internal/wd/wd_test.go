package wd

import "testing"

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.Add(10, 2)
	m.Seq(nil)
	m.Par(nil, nil)
	m.Reset()
	if m.Work() != 0 || m.Depth() != 0 {
		t.Fatal("nil meter must report zero")
	}
}

func TestSeqComposition(t *testing.T) {
	var a, b Meter
	a.Add(100, 5)
	b.Add(50, 3)
	a.Seq(&b)
	if a.Work() != 150 || a.Depth() != 8 {
		t.Fatalf("seq: work=%d depth=%d", a.Work(), a.Depth())
	}
}

func TestParComposition(t *testing.T) {
	var m, b1, b2, b3 Meter
	m.Add(10, 1)
	b1.Add(100, 7)
	b2.Add(200, 4)
	b3.Add(50, 9)
	m.Par(&b1, &b2, &b3)
	if m.Work() != 360 {
		t.Fatalf("par work=%d want 360", m.Work())
	}
	if m.Depth() != 10 { // 1 + max(7,4,9)
		t.Fatalf("par depth=%d want 10", m.Depth())
	}
}

func TestReset(t *testing.T) {
	var m Meter
	m.Add(5, 5)
	m.Reset()
	if m.Work() != 0 || m.Depth() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int64{-3: 0, 0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d)=%d want %d", n, got, want)
		}
	}
}
