// Package abscan finds the minimum cut crossing at most two edges of a
// spanning tree with the compact search of Anderson–Blelloch
// (arXiv 2102.05301), the follow-up that improved the source paper's
// work bound: instead of decomposing the tree into boughs and running
// batched Minimum Path mixed operations per phase (internal/decomp +
// internal/respect), decompose it once into heavy paths and sweep a
// single bounded-depth contraction structure down each path.
//
// The search rests on Karger's pair identity: for tree edges e_v, e_u
// (named by their lower endpoints) the 2-respecting cut value is
//
//	cut(e_v, e_u) = c(v) + c(u) − 2·B(v, u)
//
// where c(x) is the weight of the 1-respecting cut at x (the cut of the
// subtree x↓) and B(v, u) is the total weight of graph edges whose
// tree path crosses both e_v and e_u. The identity holds for
// incomparable pairs (the cut is v↓ ∪ u↓) and nested pairs (v↓ \ u↓)
// alike, so one sweep covers both shapes — where the bough scan needed
// two separate operation batches (§4.1 pass A and Appendix A pass B).
//
// A heavy-first DFS makes both every subtree and every heavy path a
// contiguous range of DFS positions. The contraction structure ("the
// ladder") is a perfect binary tree over those positions with lazy
// range-add and leftmost-argmin range-min: leaf p holds
// c(order[p]) − 2·B(v, order[p]) for the currently fixed edge e_v, so
// the best partner for e_v is one range query. Fixing the next edge is
// cheap exactly on heavy paths: walking from a path's head to its leaf
// re-evaluates only the graph edges incident to the vertex left behind
// and its light subtrees, which is the classic O(log n)-re-evaluations-
// per-edge bound, each an O(log n)-hop path update. Heavy paths are
// independent of each other and restore the structure on exit, so they
// run either sequentially on one ladder (O(n) extra memory) or chunked
// across the pool with one ladder per chunk — the same memory/depth
// trade the bough scan exposes as ParallelPhases.
//
// Determinism: candidates are combined in (heavy path, position) order
// with strict <, the ladder returns the leftmost argmin, and chunk
// boundaries depend only on the path count, so the winning cut is
// bit-identical at every pool width.
package abscan

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
	"repro/internal/wd"
)

const maxValue = int64(1)<<62 - 1

// Finding kinds.
const (
	kindOne  = byte('1') // 1-respecting cut u↓
	kindPair = byte('2') // 2-respecting pair: u↓ xor v↓ (union or difference)
)

// Finding is the outcome of one tree's scan: the smallest cut value
// among cuts crossing at most two tree edges, plus enough provenance
// for Witness to rebuild the partition.
type Finding struct {
	// Value is the smallest cut value found.
	Value int64
	kind  byte
	u, v  int32
}

// decomposition is the heavy-path decomposition of one rooted tree in
// heavy-first DFS position space: the subtree of v occupies positions
// [tin[v], tin[v]+size[v]), and every heavy path is the consecutive run
// [tin[head], tin[tail]].
type decomposition struct {
	n      int
	root   int32
	parent []int32
	tin    []int32
	size   []int32
	head   []int32 // top vertex of v's heavy path
	heavy  []int32 // heavy child of v, or -1
	depth  []int32
	order  []int32 // DFS position -> vertex
}

// inSub reports whether x lies in the subtree of v.
func (d *decomposition) inSub(v, x int32) bool {
	return d.tin[x] >= d.tin[v] && d.tin[x] < d.tin[v]+d.size[v]
}

// lca by heavy-path hopping: O(log n).
func (d *decomposition) lca(x, y int32) int32 {
	for d.head[x] != d.head[y] {
		if d.depth[d.head[x]] < d.depth[d.head[y]] {
			x, y = y, x
		}
		x = d.parent[d.head[x]]
	}
	if d.tin[x] <= d.tin[y] {
		return x
	}
	return y
}

// build fills d from a parent array (root marked by a negative entry).
// All slices are caller-provided scratch of length n (the caller borrows
// them from the pool's arena); bfs and childList are length n, childEnd
// length n. Sequential: one tree's decomposition is O(n) and trees fan
// out in parallel above this call.
func (d *decomposition) build(parent []int32, childEnd, childList, bfs []int32) error {
	n := len(parent)
	d.n = n
	d.parent = parent
	d.root = -1
	for v := 0; v < n; v++ {
		childEnd[v] = 0
	}
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			childEnd[p]++
		} else {
			if d.root >= 0 {
				return fmt.Errorf("abscan: two roots %d and %d", d.root, v)
			}
			d.root = int32(v)
		}
	}
	if d.root < 0 {
		return fmt.Errorf("abscan: parent array has no root")
	}
	// Prefix-sum the counts into start offsets, then place children in
	// ascending vertex order; afterwards childEnd[v] is the end of v's
	// children and the start is childEnd[v-1] (0 for v == 0).
	sum := int32(0)
	for v := 0; v < n; v++ {
		c := childEnd[v]
		childEnd[v] = sum
		sum += c
	}
	for v := int32(0); v < int32(n); v++ {
		if p := parent[v]; p >= 0 {
			childList[childEnd[p]] = v
			childEnd[p]++
		}
	}
	// BFS for depths, reverse BFS for subtree sizes.
	bfs[0] = d.root
	d.depth[d.root] = 0
	qt := 1
	for qh := 0; qh < qt; qh++ {
		v := bfs[qh]
		cs := int32(0)
		if v > 0 {
			cs = childEnd[v-1]
		}
		for i := cs; i < childEnd[v]; i++ {
			c := childList[i]
			d.depth[c] = d.depth[v] + 1
			bfs[qt] = c
			qt++
		}
	}
	if qt != n {
		return fmt.Errorf("abscan: parent array is not a single tree (%d of %d reachable)", qt, n)
	}
	for v := 0; v < n; v++ {
		d.size[v] = 1
		d.heavy[v] = -1
	}
	for i := n - 1; i >= 1; i-- {
		v := bfs[i]
		d.size[parent[v]] += d.size[v]
	}
	// Heavy child: largest subtree, smallest vertex id on ties (childList
	// is ascending, strict > keeps the first maximum).
	for v := int32(0); v < int32(n); v++ {
		p := parent[v]
		if p < 0 {
			continue
		}
		if h := d.heavy[p]; h < 0 || d.size[v] > d.size[h] {
			d.heavy[p] = v
		}
	}
	// Heavy-first DFS (explicit stack, reusing bfs as the stack): the
	// heavy child is entered first so heavy paths are consecutive
	// positions; light children follow in ascending vertex order.
	stack := bfs
	stack[0] = d.root
	d.head[d.root] = d.root
	top := 1
	t := int32(0)
	for top > 0 {
		top--
		v := stack[top]
		d.tin[v] = t
		d.order[t] = v
		t++
		cs := int32(0)
		if v > 0 {
			cs = childEnd[v-1]
		}
		h := d.heavy[v]
		for i := childEnd[v] - 1; i >= cs; i-- {
			c := childList[i]
			if c == h {
				continue
			}
			d.head[c] = c
			stack[top] = c
			top++
		}
		if h >= 0 {
			d.head[h] = d.head[v]
			stack[top] = h
			top++
		}
	}
	return nil
}

// ladder is the bounded-depth contraction structure: a perfect binary
// tree over DFS positions with lazy range-add and leftmost-argmin
// range-min, depth ⌈log₂ n⌉. minv[x] includes the lazy adds at and
// below x; ancestors' pending adds are accumulated on the way down.
type ladder struct {
	base int // leaf count, power of two >= n
	minv []int64
	arg  []int32
	lazy []int64
}

// reset initializes the ladder over vals (leaf p = vals[p]); leaves at
// and past len(vals), and leaf 0 (the root vertex, which names no tree
// edge), hold the +inf sentinel. No range-add ever reaches a sentinel
// leaf — addPath never touches position 0 — so sentinels stay inert.
func (t *ladder) reset(vals []int64) {
	base := 1
	for base < len(vals) {
		base *= 2
	}
	t.base = base
	for p := 0; p < base; p++ {
		if p > 0 && p < len(vals) {
			t.minv[base+p] = vals[p]
		} else {
			t.minv[base+p] = maxValue
		}
		t.arg[base+p] = int32(p)
		t.lazy[base+p] = 0
	}
	for x := base - 1; x >= 1; x-- {
		l, r := 2*x, 2*x+1
		if t.minv[l] <= t.minv[r] {
			t.minv[x], t.arg[x] = t.minv[l], t.arg[l]
		} else {
			t.minv[x], t.arg[x] = t.minv[r], t.arg[r]
		}
		t.lazy[x] = 0
	}
}

// add adds delta to positions [l, r] (inclusive; no-op when l > r).
func (t *ladder) add(l, r int, delta int64) {
	if l > r {
		return
	}
	t.addRec(1, 0, t.base-1, l, r, delta)
}

func (t *ladder) addRec(x, lo, hi, l, r int, delta int64) {
	if r < lo || hi < l {
		return
	}
	if l <= lo && hi <= r {
		t.minv[x] += delta
		t.lazy[x] += delta
		return
	}
	mid := (lo + hi) / 2
	t.addRec(2*x, lo, mid, l, r, delta)
	t.addRec(2*x+1, mid+1, hi, l, r, delta)
	if t.minv[2*x] <= t.minv[2*x+1] {
		t.minv[x] = t.minv[2*x] + t.lazy[x]
		t.arg[x] = t.arg[2*x]
	} else {
		t.minv[x] = t.minv[2*x+1] + t.lazy[x]
		t.arg[x] = t.arg[2*x+1]
	}
}

// min returns the minimum over positions [l, r] and the leftmost
// position attaining it ((maxValue, -1) when the range is empty).
func (t *ladder) min(l, r int) (int64, int32) {
	if l > r {
		return maxValue, -1
	}
	return t.minRec(1, 0, t.base-1, l, r, 0)
}

func (t *ladder) minRec(x, lo, hi, l, r int, acc int64) (int64, int32) {
	if r < lo || hi < l {
		return maxValue, -1
	}
	if l <= lo && hi <= r {
		return t.minv[x] + acc, t.arg[x]
	}
	acc += t.lazy[x]
	mid := (lo + hi) / 2
	lv, la := t.minRec(2*x, lo, mid, l, r, acc)
	rv, ra := t.minRec(2*x+1, mid+1, hi, l, r, acc)
	if lv <= rv {
		return lv, la
	}
	return rv, ra
}

// pathAdd is one undo-log entry: addPath(x, y, delta) was applied.
type pathAdd struct {
	x, y  int32
	delta int64
}

// pathOut is one heavy path's best candidate.
type pathOut struct {
	value int64
	u, v  int32
}

// sweep walks heavy paths over one ladder. Parallel chunks each own a
// sweep; the sequential mode uses a single one.
type sweep struct {
	d   *decomposition
	adj *graph.Adj
	c   []int64
	lad *ladder
	log []pathAdd
}

// addPath adds delta to the ladder position of every tree edge on the
// tree path x..y, by heavy-path hops: positions along one heavy path
// are consecutive, and the edge out of a path's head is the head's own
// position. Appends to the undo log.
func (s *sweep) addPath(x, y int32, delta int64) {
	s.log = append(s.log, pathAdd{x: x, y: y, delta: delta})
	s.applyPath(x, y, delta)
}

func (s *sweep) applyPath(x, y int32, delta int64) {
	d := s.d
	for d.head[x] != d.head[y] {
		if d.depth[d.head[x]] < d.depth[d.head[y]] {
			x, y = y, x
		}
		hx := d.head[x]
		s.lad.add(int(d.tin[hx]), int(d.tin[x]), delta)
		x = d.parent[hx]
	}
	if d.tin[x] > d.tin[y] {
		x, y = y, x
	}
	if x != y {
		// x is the LCA; the path covers the edges of (x, y]'s vertices.
		s.lad.add(int(d.tin[x])+1, int(d.tin[y]), delta)
	}
}

// undo replays the log backwards, restoring the ladder to S(∅).
func (s *sweep) undo() {
	for i := len(s.log) - 1; i >= 0; i-- {
		e := s.log[i]
		s.applyPath(e.x, e.y, -e.delta)
	}
	s.log = s.log[:0]
}

// shift re-evaluates the graph edges of vertex x for the transition from
// fixed edge e_v to e_u (u = heavy child of v, x ∈ {v} ∪ light subtrees
// of v): an edge leaves the active set when its far endpoint is outside
// v↓ (it crossed e_v but not e_u) and enters it when the far endpoint is
// inside u↓. Far endpoints in the departing region itself are no-ops on
// both counts, so edges inside the region are touched twice and changed
// never.
func (s *sweep) shift(x, v, u int32) {
	d := s.d
	adj := s.adj
	for k := adj.Off[x]; k < adj.Off[x+1]; k++ {
		y := adj.Nbr[k]
		if !d.inSub(v, y) {
			s.addPath(x, y, 2*adj.W[k])
		} else if d.inSub(u, y) {
			s.addPath(x, y, -2*adj.W[k])
		}
	}
}

// runPath scans the heavy path with head hd: enters S(hd) by activating
// every graph edge crossing e_hd, then walks down the path, querying the
// best partner for each fixed edge and shifting the active set to the
// heavy child, and finally undoes its updates so the ladder is clean for
// the next path.
func (s *sweep) runPath(hd int32) pathOut {
	d := s.d
	adj := s.adj
	lo, hi := int(d.tin[hd]), int(d.tin[hd])+int(d.size[hd])-1
	// Entry: edges with exactly one endpoint in hd↓ cross e_hd. Edges
	// with both endpoints inside contribute nothing and are skipped.
	for p := lo; p <= hi; p++ {
		x := d.order[p]
		for k := adj.Off[x]; k < adj.Off[x+1]; k++ {
			y := adj.Nbr[k]
			if !d.inSub(hd, y) {
				s.addPath(x, y, -2*adj.W[k])
			}
		}
	}
	out := pathOut{value: maxValue}
	v := hd
	for {
		// Best partner for e_v: min over every other edge position. The
		// fixed edge's own position must be excluded (its leaf currently
		// holds c(v) − 2·B(v,v), which is not a pair value).
		tv := int(d.tin[v])
		m1, a1 := s.lad.min(1, tv-1)
		m2, a2 := s.lad.min(tv+1, s.d.n-1)
		m, a := m1, a1
		if m2 < m {
			m, a = m2, a2
		}
		if a >= 0 && m < maxValue/2 && s.c[v]+m < out.value {
			out = pathOut{value: s.c[v] + m, u: v, v: d.order[a]}
		}
		u := d.heavy[v]
		if u < 0 {
			break
		}
		// Shift S(v) -> S(u): re-evaluate edges incident to the departing
		// region {v} ∪ light subtrees of v.
		s.shift(v, v, u)
		for i := d.tin[v] + 1; i < d.tin[v]+d.size[v]; i++ {
			x := d.order[i]
			if x == u {
				// Skip u's own (heavy) subtree: positions jump past it.
				i += d.size[u] - 1
				continue
			}
			s.shift(x, v, u)
		}
		v = u
	}
	s.undo()
	return out
}

// Scan finds the minimum cut of g crossing at most two edges of the
// spanning tree given by parent (root marked by -1). adj is g's CSR
// adjacency (shared read-only across trees) and deg its weighted
// degrees. With parallelPaths the heavy paths are chunked across the
// pool, one ladder per chunk (more memory, less depth); results are
// identical either way and at every pool width. ctx is checked between
// heavy paths; sink counts each completed heavy path through the
// bough-phase counters (heavy paths play the role bough phases play in
// the respect scan, including as park/cancel seams); sp gets the
// path-decompose / contract / path-scan child spans.
func Scan(ctx context.Context, g *graph.Graph, adj *graph.Adj, deg []int64, parent []int32, parallelPaths bool, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (Finding, error) {
	n := g.N()
	if n < 2 {
		return Finding{}, fmt.Errorf("abscan: graph needs at least 2 vertices")
	}
	if len(parent) != n {
		return Finding{}, fmt.Errorf("abscan: parent array length %d != n %d", len(parent), n)
	}
	ar := pool.Arena()
	logn := wd.CeilLog2(n)

	// Phase 1: heavy-path decomposition.
	dsp := sp.Child("path-decompose")
	d, put, err := buildDecomposition(parent, ar)
	if err != nil {
		dsp.End()
		return Finding{}, err
	}
	defer put()
	m.Add(int64(4*n), logn)
	dsp.End()

	// Phase 2: per-vertex 1-respecting cut values and the contraction
	// ladder. c(v) = (Σ_{x∈v↓} deg(x)) − 2·(Σ_{x∈v↓} ρ(x)) where ρ(x) is
	// the weight of edges whose tree-path LCA is x: both sums accumulate
	// bottom-up in reverse DFS order.
	csp := sp.Child("contract")
	cp := ar.Int64(n)
	rhop := ar.Int64(n)
	defer ar.PutInt64(cp)
	defer ar.PutInt64(rhop)
	c, rho := *cp, *rhop
	for v := 0; v < n; v++ {
		c[v] = deg[v]
		rho[v] = 0
	}
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		rho[d.lca(e.U, e.V)] += e.W
	}
	for p := n - 1; p >= 1; p-- {
		v := d.order[p]
		pa := parent[v]
		c[pa] += c[v]
		rho[pa] += rho[v]
	}
	for v := 0; v < n; v++ {
		c[v] -= 2 * rho[v]
	}
	m.Add(int64(g.M())*logn+int64(2*n), logn)
	csp.End()

	// 1-respecting candidate: smallest c(v) over non-root vertices, in
	// position order (leftmost wins ties — same tie-break the ladder uses).
	best := Finding{Value: maxValue}
	for p := 1; p < n; p++ {
		if v := d.order[p]; c[v] < best.Value {
			best = Finding{Value: c[v], kind: kindOne, u: v}
		}
	}

	// Collect heavy-path heads in position order.
	headsP := ar.Int32(n)
	defer ar.PutInt32(headsP)
	heads := (*headsP)[:0]
	for p := 0; p < n; p++ {
		if v := d.order[p]; d.head[v] == v {
			heads = append(heads, v)
		}
	}
	sink.AddBoughs(len(heads))

	// Phase 3: sweep every heavy path.
	ssp := sp.Child("path-scan").AttrInt("paths", int64(len(heads)))
	defer ssp.End()
	outsP := par.Slice[pathOut](ar, len(heads))
	defer par.PutSlice(ar, outsP)
	outs := *outsP
	runRange := func(lo, hi int) error {
		sw, putSweep := newSweep(d, adj, c, ar)
		defer putSweep()
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			outs[i] = sw.runPath(heads[i])
			sink.BoughPhaseDone()
		}
		return nil
	}
	if parallelPaths && len(heads) > 1 {
		pool.ForChunk(len(heads), 1, func(lo, hi int) {
			// Cancellation aborts the chunk; the error surfaces below.
			_ = runRange(lo, hi)
		})
		if err := ctx.Err(); err != nil {
			return Finding{}, fmt.Errorf("abscan: scan canceled: %w", err)
		}
	} else {
		if err := runRange(0, len(heads)); err != nil {
			return Finding{}, fmt.Errorf("abscan: scan canceled: %w", err)
		}
	}
	// Combine in path order with strict <, matching the sequential sweep.
	for i := range outs {
		if outs[i].value < best.Value {
			best = Finding{Value: outs[i].value, kind: kindPair, u: outs[i].u, v: outs[i].v}
		}
	}
	m.Add(int64(g.M())*logn*logn, logn*logn)
	if best.Value >= maxValue {
		return Finding{}, fmt.Errorf("abscan: no cut candidate found")
	}
	return best, nil
}

// buildDecomposition borrows scratch for a decomposition from the arena
// and fills it; put returns everything.
func buildDecomposition(parent []int32, ar *par.Arena) (*decomposition, func(), error) {
	n := len(parent)
	bufs := make([]*[]int32, 0, 9)
	grab := func() []int32 {
		sp := ar.Int32(n)
		bufs = append(bufs, sp)
		return *sp
	}
	d := &decomposition{
		tin:   grab(),
		size:  grab(),
		head:  grab(),
		heavy: grab(),
		depth: grab(),
		order: grab(),
	}
	childEnd, childList, bfs := grab(), grab(), grab()
	put := func() {
		for _, sp := range bufs {
			ar.PutInt32(sp)
		}
	}
	if err := d.build(parent, childEnd, childList, bfs); err != nil {
		put()
		return nil, nil, err
	}
	return d, put, nil
}

// newSweep borrows a ladder (and undo log) sized for d from the arena.
func newSweep(d *decomposition, adj *graph.Adj, c []int64, ar *par.Arena) (*sweep, func()) {
	base := 1
	for base < d.n {
		base *= 2
	}
	minvP := ar.Int64(2 * base)
	lazyP := ar.Int64(2 * base)
	argP := ar.Int32(2 * base)
	logP := par.Slice[pathAdd](ar, 0)
	lad := &ladder{minv: *minvP, lazy: *lazyP, arg: *argP}
	// Leaf p carries c(order[p]): ladder positions are DFS positions.
	valsP := ar.Int64(d.n)
	vals := *valsP
	for p := 0; p < d.n; p++ {
		vals[p] = c[d.order[p]]
	}
	lad.reset(vals)
	ar.PutInt64(valsP)
	sw := &sweep{d: d, adj: adj, c: c, lad: lad, log: *logP}
	put := func() {
		*logP = sw.log[:0]
		par.PutSlice(ar, logP)
		ar.PutInt64(minvP)
		ar.PutInt64(lazyP)
		ar.PutInt32(argP)
	}
	return sw, put
}

// Witness reconstructs one side of the cut a Finding describes: for a
// 1-respecting cut the subtree u↓; for a pair, the symmetric difference
// u↓ xor v↓, which is the union for incomparable edges and the
// set difference for nested ones.
func Witness(g *graph.Graph, parent []int32, f Finding, pool *par.Pool, m *wd.Meter) ([]bool, error) {
	n := g.N()
	if len(parent) != n {
		return nil, fmt.Errorf("abscan: parent array length %d != n %d", len(parent), n)
	}
	d, put, err := buildDecomposition(parent, pool.Arena())
	if err != nil {
		return nil, err
	}
	defer put()
	inCut := make([]bool, n)
	u, v, kind := f.u, f.v, f.kind
	pool.For(n, func(x int) {
		in := d.inSub(u, int32(x))
		if kind == kindPair {
			in = in != d.inSub(v, int32(x))
		}
		inCut[x] = in
	})
	m.Add(int64(n), 1)
	return inCut, nil
}
