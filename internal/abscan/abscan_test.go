package abscan

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/par"
	"repro/internal/respect"
	"repro/internal/trace"
	"repro/internal/wd"
)

func scanTree(t *testing.T, g *graph.Graph, parent []int32, parallelPaths bool, pool *par.Pool) Finding {
	t.Helper()
	adj := g.BuildAdjOn(pool)
	f, err := Scan(context.Background(), g, adj, g.WeightedDegrees(), parent, parallelPaths, pool, nil, nil, trace.SpanRef{})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return f
}

// TestScanMatchesRespect is the ground-truth property test: on random
// connected graphs of varied density, with several random spanning trees
// each, the AB sweep must find exactly the value the bough-decomposition
// scan (internal/respect, Lemma 13) finds — both are exact minimum
// ≤2-respecting cut searches for the given tree.
func TestScanMatchesRespect(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		n := 2 + rng.Intn(70)
		maxM := n * (n - 1) / 2
		m := n - 1
		if maxM > n-1 {
			m += rng.Intn(maxM - (n - 1) + 1)
		}
		g := gen.RandomConnected(n, m, 50, int64(2000+i))
		for tr := 0; tr < 3; tr++ {
			parent := gen.SpanningTreeParent(g, int64(i*10+tr))
			want, err := respect.TwoRespect(g, parent, false, nil, nil)
			if err != nil {
				t.Fatalf("graph %d tree %d: respect: %v", i, tr, err)
			}
			f := scanTree(t, g, parent, tr%2 == 1, nil)
			if f.Value != want.Value {
				t.Fatalf("graph %d (n=%d m=%d) tree %d: abscan=%d respect=%d",
					i, n, m, tr, f.Value, want.Value)
			}
			// The witness partition must re-evaluate to the found value.
			inCut, err := Witness(g, parent, f, nil, nil)
			if err != nil {
				t.Fatalf("graph %d tree %d: witness: %v", i, tr, err)
			}
			if v := g.CutValue(inCut); v != f.Value {
				t.Fatalf("graph %d tree %d: witness re-evaluates to %d, found %d", i, tr, v, f.Value)
			}
		}
	}
}

// TestScanHandcraftedShapes exercises the decomposition's edge cases:
// the 2-vertex tree (no 2-respecting pair exists), stars (every heavy
// path has length 1), paths (one heavy path), and multigraphs with
// parallel edges and self-loops.
func TestScanHandcraftedShapes(t *testing.T) {
	t.Parallel()
	build := func(n int, edges [][3]int64) *graph.Graph {
		g := graph.New(n)
		for _, e := range edges {
			if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		}
		return g
	}
	cases := []struct {
		name   string
		g      *graph.Graph
		parent []int32
		want   int64
	}{
		{
			name:   "two vertices",
			g:      build(2, [][3]int64{{0, 1, 7}}),
			parent: []int32{-1, 0},
			want:   7,
		},
		{
			name:   "parallel edges",
			g:      build(2, [][3]int64{{0, 1, 3}, {0, 1, 4}}),
			parent: []int32{-1, 0},
			want:   7,
		},
		{
			name: "star with a weak spoke",
			g: build(5, [][3]int64{
				{0, 1, 9}, {0, 2, 9}, {0, 3, 9}, {0, 4, 1},
			}),
			parent: []int32{-1, 0, 0, 0, 0},
			want:   1,
		},
		{
			name: "path graph, interior pair",
			// 0-1-2-3 path weights 5,1,5 plus chord 0-3 of weight 2: best
			// ≤2-respecting cut of the path tree cuts {1-2} and the chord.
			g: build(4, [][3]int64{
				{0, 1, 5}, {1, 2, 1}, {2, 3, 5}, {0, 3, 2},
			}),
			parent: []int32{-1, 0, 1, 2},
			want:   3,
		},
		{
			name: "self loops ignored",
			g: build(3, [][3]int64{
				{0, 1, 2}, {1, 2, 3}, {1, 1, 50}, {0, 2, 1},
			}),
			parent: []int32{-1, 0, 1},
			want:   3,
		},
	}
	for _, c := range cases {
		f := scanTree(t, c.g, c.parent, false, nil)
		if f.Value != c.want {
			t.Errorf("%s: value = %d, want %d", c.name, f.Value, c.want)
		}
		want, err := respect.TwoRespect(c.g, c.parent, false, nil, nil)
		if err != nil {
			t.Fatalf("%s: respect: %v", c.name, err)
		}
		if f.Value != want.Value {
			t.Errorf("%s: abscan=%d respect=%d", c.name, f.Value, want.Value)
		}
	}
}

// TestScanModesAndWidthsIdentical: the sequential sweep, the chunked
// parallel-paths sweep, and every pool width produce bit-identical
// findings (value and provenance).
func TestScanModesAndWidthsIdentical(t *testing.T) {
	t.Parallel()
	g := gen.RandomConnected(90, 700, 40, 31)
	parent := gen.SpanningTreeParent(g, 8)
	ref := scanTree(t, g, parent, false, nil)
	for _, w := range []int{1, 2, 7} {
		pool := par.NewPool(w)
		for _, pp := range []bool{false, true} {
			f := scanTree(t, g, parent, pp, pool)
			if !reflect.DeepEqual(f, ref) {
				t.Fatalf("width %d parallelPaths=%v: finding %+v differs from reference %+v", w, pp, f, ref)
			}
		}
		pool.Close()
	}
}

// TestScanCancellation: a canceled context aborts the sweep between
// heavy paths, in both path-scheduling modes.
func TestScanCancellation(t *testing.T) {
	t.Parallel()
	g := gen.RandomConnected(60, 300, 20, 77)
	parent := gen.SpanningTreeParent(g, 1)
	adj := g.BuildAdj()
	deg := g.WeightedDegrees()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, pp := range []bool{false, true} {
		if _, err := Scan(ctx, g, adj, deg, parent, pp, nil, nil, nil, trace.SpanRef{}); err == nil {
			t.Fatalf("parallelPaths=%v: Scan on a canceled context succeeded", pp)
		}
	}
}

// TestScanMeters: the scan charges deterministic work/depth to the meter
// regardless of mode, so engine-level metering stays width-invariant.
func TestScanMeters(t *testing.T) {
	t.Parallel()
	g := gen.RandomConnected(50, 200, 10, 5)
	parent := gen.SpanningTreeParent(g, 2)
	adj := g.BuildAdj()
	deg := g.WeightedDegrees()
	var m1, m2 wd.Meter
	if _, err := Scan(context.Background(), g, adj, deg, parent, false, nil, &m1, nil, trace.SpanRef{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(context.Background(), g, adj, deg, parent, true, nil, &m2, nil, trace.SpanRef{}); err != nil {
		t.Fatal(err)
	}
	if m1.Work() == 0 || m1.Depth() == 0 {
		t.Fatalf("meter not charged: work=%d depth=%d", m1.Work(), m1.Depth())
	}
	if m1.Work() != m2.Work() || m1.Depth() != m2.Depth() {
		t.Fatalf("meter differs across modes: (%d,%d) vs (%d,%d)", m1.Work(), m1.Depth(), m2.Work(), m2.Depth())
	}
}
