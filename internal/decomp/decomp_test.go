package decomp

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/wd"
)

func mustTree(t *testing.T, parent []int32) *tree.Tree {
	t.Helper()
	tr, err := tree.FromParent(parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomParent(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	parent := make([]int32, n)
	parent[perm[0]] = tree.None
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	return parent
}

// validate checks the structural invariants of Lemma 7.
func validate(t *testing.T, tr *tree.Tree, d *Decomposition) {
	t.Helper()
	n := tr.N()
	seen := make([]bool, n)
	for pid, p := range d.Paths {
		if len(p) == 0 {
			t.Fatalf("path %d empty", pid)
		}
		for i, v := range p {
			if seen[v] {
				t.Fatalf("vertex %d in two paths", v)
			}
			seen[v] = true
			if d.PathOf[v] != int32(pid) || d.PosOf[v] != int32(i) {
				t.Fatalf("vertex %d: PathOf/PosOf inconsistent", v)
			}
			if i > 0 && tr.Parent[v] != p[i-1] {
				t.Fatalf("path %d not a downward chain at position %d", pid, i)
			}
		}
		if d.FrontParent[pid] != tr.Parent[p[0]] {
			t.Fatalf("path %d FrontParent mismatch", pid)
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			t.Fatalf("vertex %d missing from decomposition", v)
		}
	}
	// Lemma 7: every root-to-leaf path crosses at most log2(n)+1 paths.
	bound := int(wd.CeilLog2(n)) + 1
	if d.NumPhases > bound {
		t.Fatalf("phases %d exceed bound %d", d.NumPhases, bound)
	}
	for v := 0; v < n; v++ {
		crossed := map[int32]bool{}
		u := int32(v)
		for u != tree.None {
			crossed[d.PathOf[u]] = true
			u = tr.Parent[u]
		}
		if len(crossed) > bound {
			t.Fatalf("root path of %d crosses %d segments (> %d)", v, len(crossed), bound)
		}
	}
	// Walking up a path chain, phases strictly increase.
	for pid := range d.Paths {
		if fp := d.FrontParent[pid]; fp != tree.None {
			if d.PhaseOfPath[d.PathOf[fp]] <= d.PhaseOfPath[pid] {
				t.Fatalf("phase does not increase from path %d to its parent path", pid)
			}
		}
	}
}

func TestFigure11Boughs(t *testing.T) {
	// The tree of paper Figure 11 has 4 boughs. Reconstruction: root r
	// with child w0; w0 has two subtrees, one a single chain of two
	// vertices (one bough), the other a branching vertex with a chain of
	// two on one side and single leaves w5 on the other; plus r->w0 top
	// chain. We encode:
	//        0 (r)
	//        |
	//        1 (w0)
	//       / \
	//      2   3
	//     /|   |
	//    4 5   6
	//    |
	//    7
	parent := []int32{tree.None, 0, 1, 1, 2, 2, 3, 4}
	tr := mustTree(t, parent)
	paths, member := Boughs(tr, nil, nil, nil, trace.SpanRef{})
	// Boughs: {6,3} is not a bough (3's parent 1 has 2 children, and 3 has
	// only child 6 => subtree of 3 is chain {3,6}: 3 IS a bough member).
	// Members: 7,4 form a chain (4's subtree {4,7}), 5 alone, 3,6 chain.
	// Non-members: 2 (branching), 1, 0.
	wantMember := map[int32]bool{3: true, 4: true, 5: true, 6: true, 7: true}
	for v := int32(0); v < int32(tr.N()); v++ {
		if member[v] != wantMember[v] {
			t.Errorf("member[%d]=%v want %v", v, member[v], wantMember[v])
		}
	}
	if len(paths) != 3 {
		t.Fatalf("got %d boughs, want 3", len(paths))
	}
	// Check one concrete bough: top 3 then 6.
	found := false
	for _, p := range paths {
		if p[0] == 3 {
			found = true
			if len(p) != 2 || p[1] != 6 {
				t.Fatalf("bough at 3: %v", p)
			}
		}
	}
	if !found {
		t.Fatal("bough with front 3 missing")
	}
}

func TestDecomposePath(t *testing.T) {
	n := 64
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32(i - 1)
	}
	tr := mustTree(t, parent)
	d := Decompose(tr, nil, nil)
	if d.NumPhases != 1 || len(d.Paths) != 1 {
		t.Fatalf("path tree: phases=%d paths=%d", d.NumPhases, len(d.Paths))
	}
	if len(d.Paths[0]) != n || d.Paths[0][0] != 0 {
		t.Fatalf("path tree: front=%d len=%d", d.Paths[0][0], len(d.Paths[0]))
	}
	validate(t, tr, d)
}

func TestDecomposeStar(t *testing.T) {
	n := 17
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = 0
	}
	tr := mustTree(t, parent)
	d := Decompose(tr, nil, nil)
	if d.NumPhases != 2 {
		t.Fatalf("star phases=%d want 2", d.NumPhases)
	}
	validate(t, tr, d)
}

func TestDecomposeCompleteBinary(t *testing.T) {
	// Complete binary tree of depth 9: phases should be about depth.
	depth := 9
	n := 1<<(depth+1) - 1
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32((i - 1) / 2)
	}
	tr := mustTree(t, parent)
	d := Decompose(tr, nil, nil)
	validate(t, tr, d)
	if d.NumPhases < depth/2 {
		t.Fatalf("suspiciously few phases: %d", d.NumPhases)
	}
}

func TestDecomposeSingle(t *testing.T) {
	tr := mustTree(t, []int32{tree.None})
	d := Decompose(tr, nil, nil)
	if d.NumPhases != 1 || len(d.Paths) != 1 || len(d.Paths[0]) != 1 {
		t.Fatalf("single vertex decomposition wrong: %+v", d)
	}
}

func TestDecomposeRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 2 + int(seed*709)%1200
		tr := mustTree(t, randomParent(n, seed))
		var m wd.Meter
		d := Decompose(tr, nil, &m)
		validate(t, tr, d)
		if m.Work() == 0 {
			t.Error("meter not updated")
		}
	}
}

func TestBoughsMatchDecomposePhase1(t *testing.T) {
	for seed := int64(20); seed < 25; seed++ {
		tr := mustTree(t, randomParent(300, seed))
		d := Decompose(tr, nil, nil)
		_, member := Boughs(tr, nil, nil, nil, trace.SpanRef{})
		for v := 0; v < tr.N(); v++ {
			if member[v] != (d.PhaseOf[v] == 1) {
				t.Fatalf("seed %d: vertex %d bough membership %v but phase %d", seed, v, member[v], d.PhaseOf[v])
			}
		}
	}
}
