// Package decomp decomposes a rooted tree into vertex-disjoint paths by
// iteratively peeling boughs (paper §3.3): a bough starts at a leaf and
// continues upward until the first vertex that has a sibling. Peeling all
// boughs at least halves the number of leaves, so there are at most
// log2(n)+1 phases (Lemma 7) and every root-to-leaf path crosses at most
// that many paths of the decomposition.
//
// Bough membership is detected with subtree sums over the preorder (a
// vertex is in a bough exactly when no vertex of its remaining subtree has
// two or more remaining children), and boughs are ordered with list
// ranking, the same primitive the paper uses in §4.2 step 1.
package decomp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/listrank"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/wd"
)

// Decomposition is a partition of the tree's vertices into directed paths.
// Path vertices are stored front first, where the front is the vertex
// closest to the root (§2.3.2).
type Decomposition struct {
	Tree  *tree.Tree
	Paths [][]int32
	// FrontParent[p] is the tree parent of the front vertex of path p
	// (tree.None if the front is the root). Operations that walk from a
	// vertex to the root continue in FrontParent's path.
	FrontParent []int32
	PathOf      []int32 // path id of each vertex
	PosOf       []int32 // position of each vertex within its path (0 = front)
	PhaseOf     []int32 // 1-based peeling phase of each vertex
	PhaseOfPath []int32
	NumPhases   int
}

// Decompose peels the whole tree and returns the full decomposition.
func Decompose(t *tree.Tree, pool *par.Pool, m *wd.Meter) *Decomposition {
	n := t.N()
	d := &Decomposition{
		Tree:    t,
		PathOf:  make([]int32, n),
		PosOf:   make([]int32, n),
		PhaseOf: make([]int32, n),
	}
	alive := make([]bool, n)
	count := make([]int32, n) // remaining children per vertex
	pool.For(n, func(v int) {
		alive[v] = true
		count[v] = t.NumChildren(int32(v))
	})
	m.Add(int64(n), 1)
	remaining := n
	phase := int32(0)
	st, release := newPhaseState(pool.Arena(), n)
	defer release()
	memberBuf := make([]int32, 0, n)
	for remaining > 0 {
		phase++
		if phase > int32(wd.CeilLog2(n))+2 {
			panic(fmt.Sprintf("decomp: phase bound exceeded (n=%d, phase=%d)", n, phase))
		}
		members, paths, fronts := peelPhase(t, alive, count, st, d, pool, m, memberBuf[:0])
		if len(members) == 0 {
			panic("decomp: phase made no progress")
		}
		for i, p := range paths {
			d.Paths = append(d.Paths, p)
			d.PhaseOfPath = append(d.PhaseOfPath, phase)
			d.FrontParent = append(d.FrontParent, t.Parent[fronts[i]])
		}
		for _, v := range members {
			d.PhaseOf[v] = phase
		}
		remaining -= len(members)
	}
	d.NumPhases = int(phase)
	return d
}

// Boughs returns only the first peeling phase of t: the bough paths (front
// first) and the membership indicator, leaving t conceptually unmodified.
// This is the per-phase step the two-respecting cut search drives itself
// (§4.3 re-contracts the graph between phases). sink (nil OK) records the
// number of boughs found, so live progress can report bough counts from
// the decomposition itself rather than from its callers. sp (zero OK)
// gets a "boughs" child span annotated with the bough count, attributing
// the decomposition's share of each phase's wall clock.
func Boughs(t *tree.Tree, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (paths [][]int32, member []bool) {
	dsp := sp.Child("boughs")
	n := t.N()
	ar := pool.Arena()
	aliveP := ar.Bool(n)
	countP := ar.Int32(n)
	pathOfP := ar.Int32(n)
	posOfP := ar.Int32(n)
	membersP := ar.Int32(n)
	alive, count := *aliveP, *countP
	pool.For(n, func(v int) {
		alive[v] = true
		count[v] = t.NumChildren(int32(v))
	})
	m.Add(int64(n), 1)
	// The single-phase peel never reads PhaseOf, and PathOf/PosOf die with
	// this call — all of it comes from the arena.
	d := &Decomposition{
		Tree:   t,
		PathOf: *pathOfP,
		PosOf:  *posOfP,
	}
	st, release := newPhaseState(ar, n)
	_, ps, _ := peelPhase(t, alive, count, st, d, pool, m, (*membersP)[:0])
	sink.AddBoughs(len(ps))
	dsp.AttrInt("boughs", int64(len(ps))).End()
	// st.member is exactly the phase-1 membership; copy it into the
	// caller-owned indicator before the scratch goes back.
	member = make([]bool, n)
	copy(member, st.member)
	release()
	ar.PutInt32(membersP)
	ar.PutInt32(posOfP)
	ar.PutInt32(pathOfP)
	ar.PutInt32(countP)
	ar.PutBool(aliveP)
	return ps, member
}

// phaseState holds scratch arrays reused across phases. The arrays are
// borrowed from the executor's arena (the bough peel runs once per
// scan-mode phase of every solve, so recycling them keeps the steady
// state allocation-free) and handed back by the release func.
type phaseState struct {
	bad    []int64
	member []bool
	jump   []int32
	jump2  []int32
	next   []int32
	cnt    []atomic.Int64
}

func newPhaseState(ar *par.Arena, n int) (*phaseState, func()) {
	badP := ar.Int64(n + 1)
	memberP := ar.Bool(n)
	jumpP := ar.Int32(n)
	jump2P := ar.Int32(n)
	nextP := ar.Int32(n)
	cntP := ar.AtomicInt64(n)
	st := &phaseState{
		bad:    *badP,
		member: *memberP,
		jump:   *jumpP,
		jump2:  *jump2P,
		next:   *nextP,
		cnt:    *cntP,
	}
	// cnt must start zero and peelPhase leaves it zero (it resets every
	// cell it incremented), so one clear at borrow covers all phases.
	clear(st.cnt)
	release := func() {
		ar.PutInt64(badP)
		ar.PutBool(memberP)
		ar.PutInt32(jumpP)
		ar.PutInt32(jump2P)
		ar.PutInt32(nextP)
		ar.PutAtomicInt64(cntP)
	}
	return st, release
}

// peelPhase identifies the boughs of the remaining tree, records their
// paths into d (PathOf/PosOf), removes them from alive/count, and returns
// the removed vertices, the new paths (front first), and the front vertex
// of each path.
func peelPhase(t *tree.Tree, alive []bool, count []int32, st *phaseState,
	d *Decomposition, pool *par.Pool, m *wd.Meter, memberBuf []int32) (members []int32, paths [][]int32, fronts []int32) {

	n := t.N()
	// bad[i+1] = 1 when the vertex at preorder position i is alive and
	// branching; a vertex is a bough member iff its alive subtree contains
	// no branching vertex (subtree = preorder interval).
	pool.For(n, func(i int) {
		v := t.Pre[i]
		if alive[v] && count[v] >= 2 {
			st.bad[i+1] = 1
		} else {
			st.bad[i+1] = 0
		}
	})
	pool.InclusiveSum(st.bad, st.bad)
	pool.For(n, func(vi int) {
		v := int32(vi)
		st.member[v] = alive[v] && st.bad[t.Out[v]] == st.bad[t.In[v]]
	})
	m.Add(3*int64(n), 2+wd.CeilLog2(n))
	// Boughs are maximal member chains; the parent of a member is in the
	// same bough iff the parent is itself a member. Order each bough by
	// list ranking (distance to the bough top = position from the front)
	// and find tops by pointer doubling.
	pool.For(n, func(vi int) {
		v := int32(vi)
		st.next[v] = listrank.Nil
		st.jump[v] = v
		if !st.member[v] {
			return
		}
		if p := t.Parent[v]; p != tree.None && st.member[p] {
			st.next[v] = p
			st.jump[v] = p
		}
	})
	m.Add(int64(n), 1)
	rank := listrank.Rank(st.next, pool, m)
	rounds := wd.CeilLog2(n) + 1
	jump, jump2 := st.jump, st.jump2
	for r := int64(0); r < rounds; r++ {
		pool.For(n, func(v int) {
			jump2[v] = jump[jump[v]]
		})
		jump, jump2 = jump2, jump
	}
	m.Add(int64(n)*rounds, rounds)
	top := jump
	// Count bough sizes at the tops, then assign path ids to tops.
	pool.For(n, func(v int) {
		if st.member[v] {
			st.cnt[top[v]].Add(1)
		}
	})
	m.Add(int64(n), 1)
	for vi := 0; vi < n; vi++ {
		v := int32(vi)
		if st.member[v] && top[v] == v {
			paths = append(paths, make([]int32, st.cnt[v].Load()))
			fronts = append(fronts, v)
			d.PathOf[v] = int32(len(d.Paths) + len(paths) - 1)
		}
	}
	// Scatter members into their paths by rank (rank = distance to top =
	// position from the front) and remove them from the tree.
	pool.For(n, func(vi int) {
		v := int32(vi)
		if !st.member[v] {
			return
		}
		tp := top[v]
		pid := d.PathOf[tp]
		d.PathOf[v] = pid
		d.PosOf[v] = rank[v]
		paths[pid-int32(len(d.Paths))][rank[v]] = v
		alive[v] = false
		st.cnt[v].Store(0)
	})
	m.Add(int64(n), 1)
	// Each bough top's parent (if alive) loses one child.
	for i := range fronts {
		if p := t.Parent[fronts[i]]; p != tree.None {
			count[p]--
		}
	}
	m.Add(int64(len(fronts)), 1)
	members = memberBuf
	for vi := 0; vi < n; vi++ {
		if st.member[vi] {
			members = append(members, int32(vi))
		}
	}
	return members, paths, fronts
}
