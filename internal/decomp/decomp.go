// Package decomp decomposes a rooted tree into vertex-disjoint paths by
// iteratively peeling boughs (paper §3.3): a bough starts at a leaf and
// continues upward until the first vertex that has a sibling. Peeling all
// boughs at least halves the number of leaves, so there are at most
// log2(n)+1 phases (Lemma 7) and every root-to-leaf path crosses at most
// that many paths of the decomposition.
//
// Bough membership is detected with subtree sums over the preorder (a
// vertex is in a bough exactly when no vertex of its remaining subtree has
// two or more remaining children), and boughs are ordered with list
// ranking, the same primitive the paper uses in §4.2 step 1.
package decomp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/listrank"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/wd"
)

// Decomposition is a partition of the tree's vertices into directed paths.
// Path vertices are stored front first, where the front is the vertex
// closest to the root (§2.3.2).
type Decomposition struct {
	Tree  *tree.Tree
	Paths [][]int32
	// FrontParent[p] is the tree parent of the front vertex of path p
	// (tree.None if the front is the root). Operations that walk from a
	// vertex to the root continue in FrontParent's path.
	FrontParent []int32
	PathOf      []int32 // path id of each vertex
	PosOf       []int32 // position of each vertex within its path (0 = front)
	PhaseOf     []int32 // 1-based peeling phase of each vertex
	PhaseOfPath []int32
	NumPhases   int
}

// Decompose peels the whole tree and returns the full decomposition.
func Decompose(t *tree.Tree, pool *par.Pool, m *wd.Meter) *Decomposition {
	n := t.N()
	d := &Decomposition{
		Tree:    t,
		PathOf:  make([]int32, n),
		PosOf:   make([]int32, n),
		PhaseOf: make([]int32, n),
	}
	alive := make([]bool, n)
	count := make([]int32, n) // remaining children per vertex
	pool.For(n, func(v int) {
		alive[v] = true
		count[v] = t.NumChildren(int32(v))
	})
	m.Add(int64(n), 1)
	remaining := n
	phase := int32(0)
	st := newPhaseState(n)
	for remaining > 0 {
		phase++
		if phase > int32(wd.CeilLog2(n))+2 {
			panic(fmt.Sprintf("decomp: phase bound exceeded (n=%d, phase=%d)", n, phase))
		}
		members, paths, fronts := peelPhase(t, alive, count, st, d, pool, m)
		if len(members) == 0 {
			panic("decomp: phase made no progress")
		}
		for i, p := range paths {
			d.Paths = append(d.Paths, p)
			d.PhaseOfPath = append(d.PhaseOfPath, phase)
			d.FrontParent = append(d.FrontParent, t.Parent[fronts[i]])
		}
		for _, v := range members {
			d.PhaseOf[v] = phase
		}
		remaining -= len(members)
	}
	d.NumPhases = int(phase)
	return d
}

// Boughs returns only the first peeling phase of t: the bough paths (front
// first) and the membership indicator, leaving t conceptually unmodified.
// This is the per-phase step the two-respecting cut search drives itself
// (§4.3 re-contracts the graph between phases). sink (nil OK) records the
// number of boughs found, so live progress can report bough counts from
// the decomposition itself rather than from its callers. sp (zero OK)
// gets a "boughs" child span annotated with the bough count, attributing
// the decomposition's share of each phase's wall clock.
func Boughs(t *tree.Tree, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (paths [][]int32, member []bool) {
	dsp := sp.Child("boughs")
	n := t.N()
	alive := make([]bool, n)
	count := make([]int32, n)
	pool.For(n, func(v int) {
		alive[v] = true
		count[v] = t.NumChildren(int32(v))
	})
	m.Add(int64(n), 1)
	d := &Decomposition{
		Tree:    t,
		PathOf:  make([]int32, n),
		PosOf:   make([]int32, n),
		PhaseOf: make([]int32, n),
	}
	st := newPhaseState(n)
	members, ps, _ := peelPhase(t, alive, count, st, d, pool, m)
	sink.AddBoughs(len(ps))
	dsp.AttrInt("boughs", int64(len(ps))).End()
	member = make([]bool, n)
	for _, v := range members {
		member[v] = true
	}
	return ps, member
}

// phaseState holds scratch arrays reused across phases.
type phaseState struct {
	bad    []int64
	member []bool
	jump   []int32
	jump2  []int32
	next   []int32
	cnt    []atomic.Int32
}

func newPhaseState(n int) *phaseState {
	return &phaseState{
		bad:    make([]int64, n+1),
		member: make([]bool, n),
		jump:   make([]int32, n),
		jump2:  make([]int32, n),
		next:   make([]int32, n),
		cnt:    make([]atomic.Int32, n),
	}
}

// peelPhase identifies the boughs of the remaining tree, records their
// paths into d (PathOf/PosOf), removes them from alive/count, and returns
// the removed vertices, the new paths (front first), and the front vertex
// of each path.
func peelPhase(t *tree.Tree, alive []bool, count []int32, st *phaseState,
	d *Decomposition, pool *par.Pool, m *wd.Meter) (members []int32, paths [][]int32, fronts []int32) {

	n := t.N()
	// bad[i+1] = 1 when the vertex at preorder position i is alive and
	// branching; a vertex is a bough member iff its alive subtree contains
	// no branching vertex (subtree = preorder interval).
	pool.For(n, func(i int) {
		v := t.Pre[i]
		if alive[v] && count[v] >= 2 {
			st.bad[i+1] = 1
		} else {
			st.bad[i+1] = 0
		}
	})
	pool.InclusiveSum(st.bad, st.bad)
	pool.For(n, func(vi int) {
		v := int32(vi)
		st.member[v] = alive[v] && st.bad[t.Out[v]] == st.bad[t.In[v]]
	})
	m.Add(3*int64(n), 2+wd.CeilLog2(n))
	// Boughs are maximal member chains; the parent of a member is in the
	// same bough iff the parent is itself a member. Order each bough by
	// list ranking (distance to the bough top = position from the front)
	// and find tops by pointer doubling.
	pool.For(n, func(vi int) {
		v := int32(vi)
		st.next[v] = listrank.Nil
		st.jump[v] = v
		if !st.member[v] {
			return
		}
		if p := t.Parent[v]; p != tree.None && st.member[p] {
			st.next[v] = p
			st.jump[v] = p
		}
	})
	m.Add(int64(n), 1)
	rank := listrank.Rank(st.next, pool, m)
	rounds := wd.CeilLog2(n) + 1
	jump, jump2 := st.jump, st.jump2
	for r := int64(0); r < rounds; r++ {
		pool.For(n, func(v int) {
			jump2[v] = jump[jump[v]]
		})
		jump, jump2 = jump2, jump
	}
	m.Add(int64(n)*rounds, rounds)
	top := jump
	// Count bough sizes at the tops, then assign path ids to tops.
	pool.For(n, func(v int) {
		if st.member[v] {
			st.cnt[top[v]].Add(1)
		}
	})
	m.Add(int64(n), 1)
	for vi := 0; vi < n; vi++ {
		v := int32(vi)
		if st.member[v] && top[v] == v {
			paths = append(paths, make([]int32, st.cnt[v].Load()))
			fronts = append(fronts, v)
			d.PathOf[v] = int32(len(d.Paths) + len(paths) - 1)
		}
	}
	// Scatter members into their paths by rank (rank = distance to top =
	// position from the front) and remove them from the tree.
	pool.For(n, func(vi int) {
		v := int32(vi)
		if !st.member[v] {
			return
		}
		tp := top[v]
		pid := d.PathOf[tp]
		d.PathOf[v] = pid
		d.PosOf[v] = rank[v]
		paths[pid-int32(len(d.Paths))][rank[v]] = v
		alive[v] = false
		st.cnt[v].Store(0)
	})
	m.Add(int64(n), 1)
	// Each bough top's parent (if alive) loses one child.
	for i := range fronts {
		if p := t.Parent[fronts[i]]; p != tree.None {
			count[p]--
		}
	}
	m.Add(int64(len(fronts)), 1)
	members = make([]int32, 0)
	for vi := 0; vi < n; vi++ {
		if st.member[vi] {
			members = append(members, int32(vi))
		}
	}
	return members, paths, fronts
}
