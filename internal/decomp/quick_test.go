package decomp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/tree"
	"repro/internal/wd"
)

type quickTree struct {
	Seed int64
	N    uint16
}

// Generate implements quick.Generator.
func (quickTree) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickTree{Seed: rng.Int63(), N: uint16(rng.Intn(2000))})
}

// TestDecomposePhaseBound is the named Lemma 7 invariant of the experiment
// index (E4): for arbitrary trees, the peeling uses at most log2(n)+1
// phases, the paths partition the vertices, and every path is a downward
// chain.
func TestDecomposePhaseBound(t *testing.T) {
	property := func(q quickTree) bool {
		n := 1 + int(q.N)
		tr, err := tree.FromParent(randomParent(n, q.Seed))
		if err != nil {
			return false
		}
		d := Decompose(tr, nil, nil)
		if d.NumPhases > int(wd.CeilLog2(n))+1 {
			return false
		}
		seen := make([]bool, n)
		count := 0
		for pid, p := range d.Paths {
			if len(p) == 0 {
				return false
			}
			for i, v := range p {
				if seen[v] {
					return false
				}
				seen[v] = true
				count++
				if i > 0 && tr.Parent[v] != p[i-1] {
					return false
				}
			}
			if d.FrontParent[pid] != tr.Parent[p[0]] {
				return false
			}
		}
		return count == n
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(606))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
