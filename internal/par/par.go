// Package par implements the fork-join parallel primitives the paper's
// algorithms are written in terms of (§1.1.2, §3.1): parallel loops,
// reductions, all-prefix-sums (scans), segmented broadcasts, parallel
// merging of sorted sequences, and parallel stable sorting.
//
// Go has no work-stealing fork-join runtime, so the primitives emulate the
// Work-Depth model on an explicit executor, Pool: a persistent bounded-width
// worker set with per-worker work-stealing deques on which all primitives
// are methods. The non-generic primitives hang off *Pool directly; the
// generic ones (Merge, SortStable) are package functions taking the pool as
// their first argument (Go has no generic methods) under the names MergeOn
// and SortStableOn. The historic package-level functions remain and
// delegate to a shared default pool of width GOMAXPROCS, so code that does
// not care about executor placement keeps working unchanged — but without
// per-call goroutine spawning.
//
// Every primitive degrades to its sequential form below a cutoff size
// (per-primitive, machine-calibratable — see Tuning and Calibrate), which
// keeps constant factors competitive with hand-written loops while
// preserving the parallel structure that the paper's depth bounds rely on,
// and every primitive returns identical results at every pool width.
package par

// Grain is the default smallest amount of per-lane sequential work, and
// the anchor for the baseline per-primitive cutoffs (see BaselineTuning).
// Loops over fewer elements run sequentially: handing a branch to a worker
// and joining it costs on the order of microseconds, so data-parallel loops
// only pay off once each lane gets several thousand elements. Task
// parallelism over few-but-large units (tree scans, segment batches) uses
// ForGrain with an explicit small grain instead.
const Grain = 8192

// For runs f(i) for every i in [0, n) with no ordering guarantees.
func (p *Pool) For(n int, f func(i int)) {
	p = p.get()
	p.ForGrain(n, p.tun().ForGrain, f)
}

// ForGrain is For with an explicit grain size.
func (p *Pool) ForGrain(n, grain int, f func(i int)) {
	p = p.get()
	// Sequential fast path before the wrapper closure exists, so loops
	// below the cutoff (and any loop on a width-1 pool) allocate nothing.
	if p.lanes == nil || p.closed.Load() || n <= grain {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	p.ForChunk(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// RegionFunc observes one fork-join region. It is called when the region
// is about to fork with the region's name, its item count, and the width
// it may run at; the returned func (nil OK) is called after the join
// completes. Observers see regions, never individual forked branches —
// tracing stays coarse enough that the observer cost is amortized over a
// whole parallel loop.
type RegionFunc func(name string, items, width int) (done func())

// ForGrainRegion is ForGrain with an optional region observer: callers
// that trace fork-join structure pass an obs built for the span they are
// inside, everyone else passes nil and pays a single branch.
func (p *Pool) ForGrainRegion(name string, obs RegionFunc, n, grain int, f func(i int)) {
	if obs == nil {
		p.ForGrain(n, grain, f)
		return
	}
	done := obs(name, n, p.Width())
	p.ForGrain(n, grain, f)
	if done != nil {
		done()
	}
}

// ForChunk partitions [0, n) into contiguous chunks of at least grain
// elements and runs f(lo, hi) on the chunks in parallel. The caller and
// up to width-1 helper branches claim chunks from a shared atomic cursor,
// so chunk-to-lane assignment is dynamic (load-balanced) while chunk
// boundaries — and therefore results — are fixed by n and grain alone.
func (p *Pool) ForChunk(n, grain int, f func(lo, hi int)) {
	p = p.get()
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p.lanes == nil || p.closed.Load() || n <= grain {
		f(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if mx := p.maxChunks(); chunks > mx {
		chunks = mx
	}
	if chunks < 2 {
		f(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	cr := p.getChunkRun()
	cr.next.Store(0)
	cr.chunks, cr.size, cr.n, cr.f = chunks, size, n, f
	helpers := chunks - 1
	if mw := p.width - 1; helpers > mw {
		helpers = mw
	}
	j := p.getJoin()
	for i := 0; i < helpers; i++ {
		if !p.fork(nil, j, task{cs: cr}) {
			break // pool closed mid-call; the caller drains alone
		}
	}
	cr.drain()
	p.wait(nil, j)
	p.putJoin(j)
	p.putChunkRun(cr)
}

// Do runs the given functions as parallel fork-join branches on the pool:
// branches are handed to the lanes' deques (at most width run at once,
// zero goroutines spawned) and the caller helps execute queued branches
// while joining. Branches only run inline in the caller when the pool is
// sequential or closed — saturation spills to the overflow queue instead
// of serializing.
func (p *Pool) Do(fs ...func()) {
	p = p.get()
	switch len(fs) {
	case 0:
		return
	case 1:
		fs[0]()
		return
	}
	if p.lanes == nil || p.closed.Load() {
		for _, f := range fs {
			f()
		}
		return
	}
	j := p.getJoin()
	var inline []func()
	for _, f := range fs[1:] {
		if !p.fork(nil, j, task{f: f}) {
			inline = append(inline, f) // pool closed mid-call
		}
	}
	fs[0]()
	for _, f := range inline {
		f()
	}
	p.wait(nil, j)
	p.putJoin(j)
}

// Do2 is a binary fork-join (the common case in divide and conquer).
func (p *Pool) Do2(a, b func()) {
	p = p.get()
	if p.lanes == nil || p.closed.Load() {
		a()
		b()
		return
	}
	j := p.getJoin()
	if !p.fork(nil, j, task{f: b}) {
		p.putJoin(j)
		a()
		b()
		return
	}
	a()
	p.wait(nil, j)
	p.putJoin(j)
}

// ReduceInt64 reduces xs with the associative op, returning identity for an
// empty slice.
func (p *Pool) ReduceInt64(xs []int64, identity int64, op func(a, b int64) int64) int64 {
	p = p.get()
	n := len(xs)
	if n == 0 {
		return identity
	}
	if p.lanes == nil || n <= p.tun().Reduce {
		acc := identity
		for _, x := range xs {
			acc = op(acc, x)
		}
		return acc
	}
	chunks := p.numChunks(n)
	sp, partial := p.getScratch(chunks)
	defer p.putScratch(sp)
	size := (n + chunks - 1) / chunks
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			acc := identity
			for _, x := range xs[lo:hi] {
				acc = op(acc, x)
			}
			partial[c] = acc
		}
	})
	acc := identity
	for _, x := range partial {
		acc = op(acc, x)
	}
	return acc
}

// MinInt64 returns the minimum element and its index (the smallest index
// attaining the minimum). It panics on an empty slice.
func (p *Pool) MinInt64(xs []int64) (int64, int) {
	p = p.get()
	if len(xs) == 0 {
		panic("par: MinInt64 of empty slice")
	}
	n := len(xs)
	if p.lanes == nil || n <= p.tun().Reduce {
		return seqMin(xs, 0)
	}
	chunks := p.numChunks(n)
	vp, vals := p.getScratch(chunks)
	ip, idxs := p.getScratch(chunks)
	defer p.putScratch(vp)
	defer p.putScratch(ip)
	size := (n + chunks - 1) / chunks
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			v, i := seqMin(xs[lo:hi], lo)
			vals[c], idxs[c] = v, int64(i)
		}
	})
	best, bi := vals[0], idxs[0]
	for c := 1; c < chunks; c++ {
		if vals[c] < best {
			best, bi = vals[c], idxs[c]
		}
	}
	return best, int(bi)
}

func seqMin(xs []int64, base int) (int64, int) {
	best, bi := xs[0], base
	for i, x := range xs[1:] {
		if x < best {
			best, bi = x, base+i+1
		}
	}
	return best, bi
}

// SumInt64 returns the sum of xs.
func (p *Pool) SumInt64(xs []int64) int64 {
	return p.ReduceInt64(xs, 0, func(a, b int64) int64 { return a + b })
}

// --- package-level compatibility wrappers (shared default pool) ---

// For runs f(i) for every i in [0, n) on the default pool.
func For(n int, f func(i int)) { Default().For(n, f) }

// ForGrain is For with an explicit grain size, on the default pool.
func ForGrain(n, grain int, f func(i int)) { Default().ForGrain(n, grain, f) }

// ForChunk runs chunked parallel loops on the default pool.
func ForChunk(n, grain int, f func(lo, hi int)) { Default().ForChunk(n, grain, f) }

// Do runs fork-join branches on the default pool.
func Do(fs ...func()) { Default().Do(fs...) }

// Do2 is a binary fork-join on the default pool.
func Do2(a, b func()) { Default().Do2(a, b) }

// ReduceInt64 reduces on the default pool.
func ReduceInt64(xs []int64, identity int64, op func(a, b int64) int64) int64 {
	return Default().ReduceInt64(xs, identity, op)
}

// MinInt64 takes the argmin on the default pool.
func MinInt64(xs []int64) (int64, int) { return Default().MinInt64(xs) }

// SumInt64 sums on the default pool.
func SumInt64(xs []int64) int64 { return Default().SumInt64(xs) }
