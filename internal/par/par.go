// Package par implements the fork-join parallel primitives the paper's
// algorithms are written in terms of (§1.1.2, §3.1): parallel loops,
// reductions, all-prefix-sums (scans), segmented broadcasts, parallel
// merging of sorted sequences, and parallel stable sorting.
//
// Go has no work-stealing fork-join runtime, so the primitives emulate the
// Work-Depth model with chunked loops over at most GOMAXPROCS goroutines.
// Every primitive degrades to its sequential form below a grain size, which
// keeps constant factors competitive with hand-written loops while
// preserving the parallel structure that the paper's depth bounds rely on.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Grain is the default smallest amount of per-goroutine sequential work.
// Loops over fewer elements run sequentially: forking a goroutine and
// joining it costs on the order of microseconds, so data-parallel loops
// only pay off once each worker gets several thousand elements. Task
// parallelism over few-but-large units (tree scans, segment batches) uses
// ForGrain with an explicit small grain instead.
const Grain = 8192

// Workers reports the parallelism the primitives will use.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs f(i) for every i in [0, n) with no ordering guarantees.
func For(n int, f func(i int)) {
	ForChunk(n, Grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForGrain is For with an explicit grain size.
func ForGrain(n, grain int, f func(i int)) {
	ForChunk(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForChunk partitions [0, n) into contiguous chunks of at least grain
// elements and runs f(lo, hi) on the chunks in parallel.
func ForChunk(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Workers()
	if p == 1 || n <= grain {
		f(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > 4*p {
		chunks = 4 * p
	}
	if chunks < 2 {
		f(0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := p
	if workers > chunks {
		workers = chunks
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				if lo < hi {
					f(lo, hi)
				}
			}
		}()
	}
	wg.Wait()
}

// Do runs the given functions as parallel fork-join branches.
func Do(fs ...func()) {
	switch len(fs) {
	case 0:
		return
	case 1:
		fs[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[1:] {
		f := f
		go func() {
			defer wg.Done()
			f()
		}()
	}
	fs[0]()
	wg.Wait()
}

// Do2 is a binary fork-join (the common case in divide and conquer).
func Do2(a, b func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b()
	}()
	a()
	wg.Wait()
}

// ReduceInt64 reduces xs with the associative op, returning identity for an
// empty slice.
func ReduceInt64(xs []int64, identity int64, op func(a, b int64) int64) int64 {
	n := len(xs)
	if n == 0 {
		return identity
	}
	if n <= Grain || Workers() == 1 {
		acc := identity
		for _, x := range xs {
			acc = op(acc, x)
		}
		return acc
	}
	chunks := numChunks(n)
	partial := make([]int64, chunks)
	size := (n + chunks - 1) / chunks
	ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			acc := identity
			for _, x := range xs[lo:hi] {
				acc = op(acc, x)
			}
			partial[c] = acc
		}
	})
	acc := identity
	for _, x := range partial {
		acc = op(acc, x)
	}
	return acc
}

// MinInt64 returns the minimum element and its index (the smallest index
// attaining the minimum). It panics on an empty slice.
func MinInt64(xs []int64) (int64, int) {
	if len(xs) == 0 {
		panic("par: MinInt64 of empty slice")
	}
	n := len(xs)
	if n <= Grain || Workers() == 1 {
		return seqMin(xs, 0)
	}
	chunks := numChunks(n)
	vals := make([]int64, chunks)
	idxs := make([]int, chunks)
	size := (n + chunks - 1) / chunks
	ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			vals[c], idxs[c] = seqMin(xs[lo:hi], lo)
		}
	})
	best, bi := vals[0], idxs[0]
	for c := 1; c < chunks; c++ {
		if vals[c] < best {
			best, bi = vals[c], idxs[c]
		}
	}
	return best, bi
}

func seqMin(xs []int64, base int) (int64, int) {
	best, bi := xs[0], base
	for i, x := range xs[1:] {
		if x < best {
			best, bi = x, base+i+1
		}
	}
	return best, bi
}

// SumInt64 returns the sum of xs.
func SumInt64(xs []int64) int64 {
	return ReduceInt64(xs, 0, func(a, b int64) int64 { return a + b })
}

func numChunks(n int) int {
	p := Workers()
	chunks := 4 * p
	if chunks > (n+Grain-1)/Grain {
		chunks = (n + Grain - 1) / Grain
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}
