package par

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Arena recycles the typed scratch slices of the solver hot loops. Every
// solve round in packing/scan/decomposition needs a handful of O(n) or
// O(m) working arrays that die at the end of the round; allocating them
// fresh each round made the garbage collector a hidden participant in the
// paper's work bound. An Arena is a set of per-type free-lists (built on
// sync.Pool, so idle memory is still reclaimable by the GC across
// cycles): borrow with the typed getters, return with the matching Put.
//
// Contract: borrowed slices have the requested length but UNSPECIFIED
// contents — callers either write every cell before reading it or clear
// the slice themselves. Returning a slice transfers ownership back; the
// caller must not retain any view of it.
//
// Each Pool owns one Arena (see Pool.Arena), so scratch reuse follows
// executor placement: a scheduler worker's solves recycle through their
// own executor's free-lists without cross-worker contention beyond
// sync.Pool's own sharding. The zero Arena is ready to use.
type Arena struct {
	hits   atomic.Int64
	misses atomic.Int64

	int64s sync.Pool // *[]int64
	int32s sync.Pool // *[]int32
	bools  sync.Pool // *[]bool
	au64s  sync.Pool // *[]atomic.Uint64
	ai64s  sync.Pool // *[]atomic.Int64

	// typed holds free-lists created on demand for arbitrary element
	// types (key: reflect.Type, value: *sync.Pool). The named pools
	// above cover the scalar types the solver loops churn through;
	// Slice/PutSlice extend the same discipline to any T — recursion
	// frames, candidate records, algorithm-specific structs — without
	// growing this struct per type.
	typed sync.Map
}

// poolFor returns the free-list stored under key, creating it on first
// use. Keys are reflect.Types of pointer types, so looking one up never
// boxes a value onto the heap.
func poolFor(a *Arena, key any) *sync.Pool {
	if v, ok := a.typed.Load(key); ok {
		return v.(*sync.Pool)
	}
	v, _ := a.typed.LoadOrStore(key, new(sync.Pool))
	return v.(*sync.Pool)
}

// typedPool is the free-list of *[]T buffers, keyed by the *T type.
func typedPool[T any](a *Arena) *sync.Pool {
	return poolFor(a, reflect.TypeOf((*T)(nil)))
}

// framePool is the free-list of *F fork frames, keyed by the **F type
// so it can never collide with the *[]F list typedPool keys by *F.
func framePool[F any](a *Arena) *sync.Pool {
	return poolFor(a, reflect.TypeOf((**F)(nil)))
}

// Slice borrows a []T of length n (contents unspecified) from the
// arena's free-list for T. It is the generic face of the typed getters
// — same contract, same hit/miss accounting in Pool.Stats — and, like
// Merge/SortStable, a package function because Go does not allow
// generic methods.
func Slice[T any](a *Arena, n int) *[]T {
	return arenaGet[T](a, typedPool[T](a), n)
}

// PutSlice returns a slice borrowed with Slice.
func PutSlice[T any](a *Arena, sp *[]T) {
	typedPool[T](a).Put(sp)
}

// arenaGet reslices a recycled buffer to length n, or allocates one with
// some growth headroom when the free-list is empty or its buffer is too
// small (the undersized buffer is dropped for the GC; steady-state solves
// converge on max-sized buffers after the first round).
func arenaGet[T any](a *Arena, fl *sync.Pool, n int) *[]T {
	if v := fl.Get(); v != nil {
		sp := v.(*[]T)
		if cap(*sp) >= n {
			*sp = (*sp)[:n]
			a.hits.Add(1)
			return sp
		}
	}
	a.misses.Add(1)
	s := make([]T, n)
	return &s
}

// Int64 borrows a []int64 of length n (contents unspecified).
func (a *Arena) Int64(n int) *[]int64 { return arenaGet[int64](a, &a.int64s, n) }

// PutInt64 returns a slice borrowed with Int64.
func (a *Arena) PutInt64(sp *[]int64) { a.int64s.Put(sp) }

// Int32 borrows a []int32 of length n (contents unspecified).
func (a *Arena) Int32(n int) *[]int32 { return arenaGet[int32](a, &a.int32s, n) }

// PutInt32 returns a slice borrowed with Int32.
func (a *Arena) PutInt32(sp *[]int32) { a.int32s.Put(sp) }

// Bool borrows a []bool of length n (contents unspecified).
func (a *Arena) Bool(n int) *[]bool { return arenaGet[bool](a, &a.bools, n) }

// PutBool returns a slice borrowed with Bool.
func (a *Arena) PutBool(sp *[]bool) { a.bools.Put(sp) }

// AtomicUint64 borrows a []atomic.Uint64 of length n (contents
// unspecified).
func (a *Arena) AtomicUint64(n int) *[]atomic.Uint64 {
	return arenaGet[atomic.Uint64](a, &a.au64s, n)
}

// PutAtomicUint64 returns a slice borrowed with AtomicUint64.
func (a *Arena) PutAtomicUint64(sp *[]atomic.Uint64) { a.au64s.Put(sp) }

// AtomicInt64 borrows a []atomic.Int64 of length n (contents
// unspecified).
func (a *Arena) AtomicInt64(n int) *[]atomic.Int64 {
	return arenaGet[atomic.Int64](a, &a.ai64s, n)
}

// PutAtomicInt64 returns a slice borrowed with AtomicInt64.
func (a *Arena) PutAtomicInt64(sp *[]atomic.Int64) { a.ai64s.Put(sp) }

// Arena returns the pool's scratch arena (the default pool's for a nil
// receiver).
func (p *Pool) Arena() *Arena { return &p.get().arena }
