package par

import "testing"

// Steady-state allocation tests: the scan-family primitives must be
// allocation-free on the sequential path (width-1 pools and sub-cutoff
// sizes take it), and near-free on the parallel path, where the only
// per-call allocations are the loop-body closures — joins, chunk loops,
// and scratch all recycle.

func zeroAllocInput(n int) ([]int64, []int64) {
	xs := make([]int64, n)
	out := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 13)
	}
	return xs, out
}

func assertZeroAlloc(t *testing.T, name string, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; zero-alloc holds only in normal builds")
	}
	f() // warm the free-lists
	if avg := testing.AllocsPerRun(50, f); avg > 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func TestScanPrimitivesZeroAllocSequential(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	xs, out := zeroAllocInput(100_000)
	present := make([]bool, len(xs))
	for i := range present {
		present[i] = i%37 == 0
	}
	var sink int64
	assertZeroAlloc(t, "ExclusiveSum", func() { sink += p.ExclusiveSum(xs, out) })
	assertZeroAlloc(t, "InclusiveSum", func() { sink += p.InclusiveSum(xs, out) })
	assertZeroAlloc(t, "SegmentedBroadcast", func() { p.SegmentedBroadcast(present, xs, out, 0) })
	assertZeroAlloc(t, "SumInt64", func() { sink += p.SumInt64(xs) })
	assertZeroAlloc(t, "MinInt64", func() { v, _ := p.MinInt64(xs); sink += v })
	_ = sink
}

// TestForZeroAllocPreBoundClosure pins the property the solver hot loops
// build on: a For/ForChunk call with a closure created once (not per
// call) allocates nothing on the sequential path.
func TestForZeroAllocPreBoundClosure(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	xs, _ := zeroAllocInput(10_000)
	body := func(i int) { xs[i]++ }
	chunk := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i]++
		}
	}
	assertZeroAlloc(t, "For", func() { p.For(len(xs), body) })
	assertZeroAlloc(t, "ForChunk", func() { p.ForChunk(len(xs), Grain, chunk) })
}

// TestParallelScanSteadyStateAllocs bounds the parallel path: after
// warm-up, a parallel scan's only allocations are its two loop-body
// closures (the join, chunk runs, and scratch partials all recycle).
func TestParallelScanSteadyStateAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	xs, out := zeroAllocInput(200_000)
	var sink int64
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; the closures-only bound holds only in normal builds")
	}
	run := func() { sink += p.ExclusiveSum(xs, out) }
	run()
	if avg := testing.AllocsPerRun(20, run); avg > 4 {
		t.Errorf("parallel ExclusiveSum: %.1f allocs/op, want <= 4 (closures only)", avg)
	}
	_ = sink
}

// TestMergeSortZeroAllocSequential pins the arena-recycled scratch on
// the sequential path: a width-1 merge runs straight through seqMerge,
// and a width-1 sort borrows its ping-pong buffer from the arena, so
// neither allocates at all.
func TestMergeSortZeroAllocSequential(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	const n = 1 << 14
	a := make([]int64, n)
	b := make([]int64, n)
	out := make([]int64, 2*n)
	xs := make([]int64, 2*n)
	seed := make([]int64, 2*n)
	for i := range a {
		a[i] = int64(2 * i)
		b[i] = int64(2*i + 1)
	}
	for i := range seed {
		seed[i] = int64((i * 2654435761) % (2 * n))
	}
	less := func(x, y int64) bool { return x < y }
	assertZeroAlloc(t, "MergeOn", func() { MergeOn(p, a, b, out, less) })
	assertZeroAlloc(t, "SortStableOn", func() {
		copy(xs, seed)
		SortStableOn(p, xs, less)
	})
}

// TestMergeSortSteadyStateAllocs bounds the parallel path: fork frames
// and the sort buffer recycle through the arena's typed free-lists, so
// after warm-up a parallel merge or sort allocates (almost) nothing —
// the only slack allowed is sync.Pool occasionally stranding a frame in
// another P's private slot. Before frames, merge_1m sat at 31 allocs/op
// and sort_1m at 182 allocs/op (~8.4 MB/op, dominated by the ping-pong
// buffer).
func TestMergeSortSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; steady-state bounds hold only in normal builds")
	}
	p := NewPool(4)
	defer p.Close()
	const n = 1 << 15
	a := make([]int64, n)
	b := make([]int64, n)
	out := make([]int64, 2*n)
	xs := make([]int64, 2*n)
	seed := make([]int64, 2*n)
	for i := range a {
		a[i] = int64(2 * i)
		b[i] = int64(2*i + 1)
	}
	for i := range seed {
		seed[i] = int64((i * 2654435761) % (2 * n))
	}
	less := func(x, y int64) bool { return x < y }
	mrun := func() { MergeOn(p, a, b, out, less) }
	srun := func() {
		copy(xs, seed)
		SortStableOn(p, xs, less)
	}
	mrun()
	srun()
	if avg := testing.AllocsPerRun(20, mrun); avg > 2 {
		t.Errorf("parallel MergeOn: %.1f allocs/op, want <= 2 (was 31 before frames)", avg)
	}
	if avg := testing.AllocsPerRun(20, srun); avg > 4 {
		t.Errorf("parallel SortStableOn: %.1f allocs/op, want <= 4 (was 182 before frames)", avg)
	}
}

func TestArenaCountsHitsAndMisses(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ar := p.Arena()
	// Borrow/return repeatedly: under -race, sync.Pool deliberately drops
	// a fraction of Puts, so no single round is guaranteed to recycle —
	// but across many rounds at least one must.
	var last *[]int64
	for i := 0; i < 100; i++ {
		sp := ar.Int64(500)
		ar.PutInt64(sp)
		last = sp
	}
	st := p.Stats()
	if st.ArenaMisses < 1 {
		t.Errorf("ArenaMisses = %d, want >= 1 (first borrow allocates)", st.ArenaMisses)
	}
	if st.ArenaHits < 1 {
		t.Errorf("ArenaHits = %d, want >= 1 (repeated borrows recycle)", st.ArenaHits)
	}
	if got := len(*last); got != 500 {
		t.Errorf("borrow has length %d, want 500", got)
	}
}
