package par

import "sync"

// dequeCap bounds each lane's deque. Bursty divide-and-conquer fans out
// faster than workers drain, so the bound must absorb a realistic burst
// (a merge sort over 10^7 elements forks ~n/cutoff ≈ thousands of
// branches, but half of them complete before the other half is pushed);
// overflow past the bound spills to the pool's shared queue, never to
// inline execution in the forking caller.
const dequeCap = 256

// task is one forked branch, stored by value in the deques so that a fork
// allocates nothing beyond what the caller's own closure captured. Exactly
// one of f, lf, cs is set:
//
//   - f:  a plain branch (public Do/Do2/fork path)
//   - lf: a lane-aware branch — invoked with the *executing* lane, so
//     recursive primitives (merge, sort) keep pushing onto the deque of
//     whichever lane actually runs them
//   - cs: a shared chunk loop — the branch claims chunk indices from cs
//     until the loop is exhausted
//
// j, when non-nil, is decremented after the branch body returns.
type task struct {
	f  func()
	lf func(*lane)
	cs *chunkRun
	j  *join
}

// lane is one deque owner: each of the pool's width-1 worker goroutines
// owns a lane permanently. The owner pushes and pops at the bottom (LIFO,
// so nested fork-join keeps its depth-first cache locality); thieves take
// from the top (FIFO, so they steal the oldest — typically largest —
// branch).
type lane struct {
	dq deque
}

// deque is the bounded double-ended queue behind one lane. A small mutex
// per lane replaces the old pool-global channel: the owner's push/pop and
// an occasional thief contend only with each other, never with the other
// width-2 lanes.
type deque struct {
	mu   sync.Mutex
	head uint32 // next steal slot (top)
	tail uint32 // next push slot (bottom); tail-head = size
	buf  [dequeCap]task
}

// pushBottom appends t at the bottom. It reports false when the deque is
// full; the caller then spills to the pool's overflow queue.
func (d *deque) pushBottom(t task) bool {
	d.mu.Lock()
	if d.tail-d.head == dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[d.tail%dequeCap] = t
	d.tail++
	d.mu.Unlock()
	return true
}

// popBottom removes the most recently pushed task (LIFO), for the lane's
// owner.
func (d *deque) popBottom() (task, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return task{}, false
	}
	d.tail--
	t := d.buf[d.tail%dequeCap]
	d.buf[d.tail%dequeCap] = task{}
	d.mu.Unlock()
	return t, true
}

// stealTop removes the oldest task (FIFO), for a thief.
func (d *deque) stealTop() (task, bool) {
	d.mu.Lock()
	if d.tail == d.head {
		d.mu.Unlock()
		return task{}, false
	}
	t := d.buf[d.head%dequeCap]
	d.buf[d.head%dequeCap] = task{}
	d.head++
	d.mu.Unlock()
	return t, true
}

// size reports the current number of queued tasks (racy snapshot, used by
// tests).
func (d *deque) size() int {
	d.mu.Lock()
	n := int(d.tail - d.head)
	d.mu.Unlock()
	return n
}
