package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// chanRef reproduces the executor this package shipped before the
// work-stealing rewrite: one shared buffered channel of tasks, workers
// pulling from it, and forks degrading to inline execution the moment the
// channel is full. It exists only as the benchmark reference for
// BenchmarkForkJoinBurst — the bursty nested fork-join shape where the
// single channel collapses to sequential execution (every fork past the
// small buffer runs inline on the forking goroutine) while the deque pool
// keeps the burst distributed.
type chanRef struct {
	tasks chan func()
	stop  chan struct{}
	wg    sync.WaitGroup
}

func newChanRef(width int) *chanRef {
	// Queue depth 8*width and the fork/wait mechanics below match the
	// replaced implementation exactly.
	p := &chanRef{tasks: make(chan func(), 8*width), stop: make(chan struct{})}
	for i := 0; i < width-1; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case f := <-p.tasks:
					f()
				case <-p.stop:
					return
				}
			}
		}()
	}
	return p
}

func (p *chanRef) close() {
	close(p.stop)
	p.wg.Wait()
}

type chanJoin struct {
	pending atomic.Int32
	note    chan struct{}
}

// do runs a inline and b on the pool (inline when the queue is full),
// helping drain the shared channel while joining — the channel-era
// equivalent of Pool.Do with two functions.
func (p *chanRef) do(a, b func()) {
	j := &chanJoin{note: make(chan struct{}, 1)}
	j.pending.Add(1)
	wrapped := func() {
		b()
		if j.pending.Add(-1) == 0 {
			select {
			case j.note <- struct{}{}:
			default:
			}
		}
	}
	select {
	case p.tasks <- wrapped:
		a()
		for j.pending.Load() != 0 {
			select {
			case <-j.note:
			case f := <-p.tasks:
				f()
			}
		}
	default:
		// Saturated: degrade to inline execution.
		j.pending.Add(-1)
		b()
		a()
	}
}

// burstLeaf is enough work that a leaf is not free, but little enough
// that dispatch overhead dominates — the regime the rewrite targets.
func burstLeaf(acc *int64) {
	x := uint64(0x2545f4914f6cdd1d)
	for i := 0; i < 64; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	*acc += int64(x)
}

// BenchmarkForkJoinBurst compares the work-stealing pool against the old
// single-channel design on a binary fork tree of depth 9 (511 forks, 512
// leaves per op): the saturation-collapse shape. Run with -count=N and
// benchstat to compare medians.
func BenchmarkForkJoinBurst(b *testing.B) {
	const width, depth = 4, 9
	b.Run("steal", func(b *testing.B) {
		p := NewPool(width)
		defer p.Close()
		var acc int64
		var rec func(d int)
		rec = func(d int) {
			if d == 0 {
				burstLeaf(&acc)
				return
			}
			p.Do(func() { rec(d - 1) }, func() { rec(d - 1) })
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec(depth)
		}
	})
	b.Run("channel", func(b *testing.B) {
		p := newChanRef(width)
		defer p.close()
		var acc int64
		var rec func(d int)
		rec = func(d int) {
			if d == 0 {
				burstLeaf(&acc)
				return
			}
			p.do(func() { rec(d - 1) }, func() { rec(d - 1) })
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec(depth)
		}
	})
}

// BenchmarkArenaInt64 pins the arena's core contract: a steady-state
// borrow/return cycle is allocation-free.
func BenchmarkArenaInt64(b *testing.B) {
	p := NewPool(1)
	defer p.Close()
	ar := p.Arena()
	sp := ar.Int64(1 << 16)
	ar.PutInt64(sp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := ar.Int64(1 << 16)
		(*sp)[0] = int64(i)
		ar.PutInt64(sp)
	}
}

// BenchmarkScanArenaSteadyState measures the sequential scan path end to
// end at a solver-typical size; with the arena warm it must report
// 0 allocs/op.
func BenchmarkScanArenaSteadyState(b *testing.B) {
	p := NewPool(1)
	defer p.Close()
	n := 1 << 17
	xs := make([]int64, n)
	out := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 7)
	}
	var sink int64
	sink += p.ExclusiveSum(xs, out)
	b.SetBytes(int64(n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += p.ExclusiveSum(xs, out)
	}
	_ = sink
}
