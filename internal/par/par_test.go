package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, Grain - 1, Grain, Grain + 1, 10 * Grain} {
		seen := make([]atomic.Int32, n)
		For(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForChunkPartitions(t *testing.T) {
	n := 5*Grain + 13
	var total atomic.Int64
	ForChunk(n, 64, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("chunks cover %d of %d elements", total.Load(), n)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a branch")
	}
	Do() // must not hang
}

func TestReduceAndMin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 100, Grain, 3*Grain + 5} {
		xs := make([]int64, n)
		var want int64
		wantMin := int64(1 << 62)
		wantIdx := -1
		for i := range xs {
			xs[i] = int64(rng.Intn(2000) - 1000)
			want += xs[i]
			if xs[i] < wantMin {
				wantMin, wantIdx = xs[i], i
			}
		}
		if got := SumInt64(xs); got != want {
			t.Fatalf("n=%d: sum=%d want %d", n, got, want)
		}
		gotMin, gotIdx := MinInt64(xs)
		if gotMin != wantMin || gotIdx != wantIdx {
			t.Fatalf("n=%d: min=(%d,%d) want (%d,%d)", n, gotMin, gotIdx, wantMin, wantIdx)
		}
	}
}

func TestMinInt64FirstIndexOnTies(t *testing.T) {
	xs := make([]int64, 3*Grain)
	for i := range xs {
		xs[i] = 7
	}
	if _, idx := MinInt64(xs); idx != 0 {
		t.Fatalf("tie-break index = %d, want 0", idx)
	}
}

func TestExclusiveSumMatchesSequential(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		want := make([]int64, len(xs))
		var acc int64
		for i, x := range xs {
			want[i] = acc
			acc += x
		}
		got := make([]int64, len(xs))
		total := ExclusiveSum(xs, got)
		if total != acc {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScansLarge(t *testing.T) {
	n := 9*Grain + 3
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i%17 - 8)
	}
	excl := make([]int64, n)
	incl := make([]int64, n)
	totE := ExclusiveSum(xs, excl)
	totI := InclusiveSum(xs, incl)
	var acc int64
	for i := 0; i < n; i++ {
		if excl[i] != acc {
			t.Fatalf("exclusive[%d]=%d want %d", i, excl[i], acc)
		}
		acc += xs[i]
		if incl[i] != acc {
			t.Fatalf("inclusive[%d]=%d want %d", i, incl[i], acc)
		}
	}
	if totE != acc || totI != acc {
		t.Fatalf("totals %d,%d want %d", totE, totI, acc)
	}
}

func TestScanInPlaceAliasing(t *testing.T) {
	n := 6*Grain + 1
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = 1
	}
	ExclusiveSum(xs, xs)
	for i := range xs {
		if xs[i] != int64(i) {
			t.Fatalf("aliased scan wrong at %d: %d", i, xs[i])
		}
	}
}

func TestSegmentedBroadcast(t *testing.T) {
	for _, n := range []int{0, 1, 5, Grain, 7*Grain + 11} {
		present := make([]bool, n)
		vals := make([]int64, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range present {
			present[i] = rng.Intn(3) == 0
			vals[i] = int64(rng.Intn(1000))
		}
		out := make([]int64, n)
		SegmentedBroadcast(present, vals, out, -5)
		acc := int64(-5)
		for i := 0; i < n; i++ {
			if present[i] {
				acc = vals[i]
			}
			if out[i] != acc {
				t.Fatalf("n=%d pos=%d got %d want %d", n, i, out[i], acc)
			}
		}
	}
}

type kv struct {
	key int
	seq int
}

func TestMergeStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 10, 4 * Grain, 9*Grain + 1} {
		a := make([]kv, n)
		b := make([]kv, n/2+1)
		for i := range a {
			a[i] = kv{rng.Intn(50), i}
		}
		for i := range b {
			b[i] = kv{rng.Intn(50), n + i}
		}
		less := func(x, y kv) bool { return x.key < y.key }
		SortStable(a, less)
		SortStable(b, less)
		out := make([]kv, len(a)+len(b))
		Merge(a, b, out, less)
		for i := 1; i < len(out); i++ {
			if out[i].key < out[i-1].key {
				t.Fatalf("merge not sorted at %d", i)
			}
			if out[i].key == out[i-1].key && out[i].seq < out[i-1].seq {
				t.Fatalf("merge not stable at %d: seq %d before %d", i, out[i-1].seq, out[i].seq)
			}
		}
	}
}

func TestSortStableLargeAndStability(t *testing.T) {
	n := 40*Grain + 17
	xs := make([]kv, n)
	rng := rand.New(rand.NewSource(3))
	for i := range xs {
		xs[i] = kv{rng.Intn(97), i}
	}
	SortStable(xs, func(x, y kv) bool { return x.key < y.key })
	for i := 1; i < n; i++ {
		if xs[i].key < xs[i-1].key {
			t.Fatalf("not sorted at %d", i)
		}
		if xs[i].key == xs[i-1].key && xs[i].seq < xs[i-1].seq {
			t.Fatalf("not stable at %d", i)
		}
	}
}

func TestPrimitivesUnderSingleWorker(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	xs := make([]int64, 3*Grain)
	for i := range xs {
		xs[i] = 2
	}
	if got := SumInt64(xs); got != int64(2*len(xs)) {
		t.Fatalf("sum under GOMAXPROCS=1: %d", got)
	}
	out := make([]int64, len(xs))
	if got := ExclusiveSum(xs, out); got != int64(2*len(xs)) {
		t.Fatalf("scan under GOMAXPROCS=1: %d", got)
	}
}
