package par

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolWidths are the widths every pool test sweeps: sequential, small,
// odd (so chunk boundaries don't align with powers of two), and the
// machine's own.
func poolWidths() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestPoolPrimitivesWidthEquivalence checks that every primitive returns
// bit-identical results at every pool width, on sizes straddling the
// sequential cutoffs.
func TestPoolPrimitivesWidthEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, Grain + 1, 4*Grain + 3, 9 * Grain} {
		xs := make([]int64, n)
		present := make([]bool, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(2001) - 1000)
			present[i] = rng.Intn(4) == 0
		}
		// References computed sequentially.
		wantSum := make([]int64, n)
		var acc int64
		for i, x := range xs {
			acc += x
			wantSum[i] = acc
		}
		wantBro := make([]int64, n)
		bacc := int64(-42)
		for i := range xs {
			if present[i] {
				bacc = xs[i]
			}
			wantBro[i] = bacc
		}
		sorted := append([]int64(nil), xs...)
		if n > 1 {
			seqSortStable(sorted, make([]int64, n), func(a, b int64) bool { return a < b })
		}

		for _, w := range poolWidths() {
			p := NewPool(w)
			if got := p.Width(); got != w {
				t.Fatalf("width %d: Width() = %d", w, got)
			}
			out := make([]int64, n)
			if total := p.InclusiveSum(xs, out); n > 0 && (total != wantSum[n-1] || !reflect.DeepEqual(out, wantSum)) {
				t.Fatalf("width %d n %d: InclusiveSum mismatch", w, n)
			}
			p.SegmentedBroadcast(present, xs, out, -42)
			if n > 0 && !reflect.DeepEqual(out, wantBro) {
				t.Fatalf("width %d n %d: SegmentedBroadcast mismatch", w, n)
			}
			if n > 0 {
				wantMin, wantIdx := seqMin(xs, 0)
				gotMin, gotIdx := p.MinInt64(xs)
				if gotMin != wantMin || gotIdx != wantIdx {
					t.Fatalf("width %d n %d: MinInt64 = (%d,%d), want (%d,%d)", w, n, gotMin, gotIdx, wantMin, wantIdx)
				}
			}
			ys := append([]int64(nil), xs...)
			SortStableOn(p, ys, func(a, b int64) bool { return a < b })
			if !reflect.DeepEqual(ys, sorted) {
				t.Fatalf("width %d n %d: SortStableOn mismatch", w, n)
			}
			var touched atomic.Int64
			p.For(n, func(i int) { touched.Add(int64(i) + 1) })
			var wantTouched int64
			for i := 0; i < n; i++ {
				wantTouched += int64(i) + 1
			}
			if touched.Load() != wantTouched {
				t.Fatalf("width %d n %d: For visited wrong set", w, n)
			}
			p.Close()
		}
	}
}

// TestMergeOnWidths checks the parallel merge across widths, including
// stability (equal keys keep a-before-b order).
func TestMergeOnWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	type kv struct{ k, src int64 }
	n := 5*Grain + 11
	a := make([]kv, n)
	b := make([]kv, n/2)
	for i := range a {
		a[i] = kv{int64(rng.Intn(50)), 0}
	}
	for i := range b {
		b[i] = kv{int64(rng.Intn(50)), 1}
	}
	less := func(x, y kv) bool { return x.k < y.k }
	seqSortStable(a, make([]kv, len(a)), less)
	seqSortStable(b, make([]kv, len(b)), less)
	want := make([]kv, len(a)+len(b))
	seqMerge(a, b, want, less)
	for _, w := range poolWidths() {
		p := NewPool(w)
		got := make([]kv, len(a)+len(b))
		MergeOn(p, a, b, got, less)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: MergeOn mismatch", w)
		}
		p.Close()
	}
}

// TestDoWidthCap verifies that Do runs at most width branches at once:
// the pool must not regress to one-goroutine-per-branch.
func TestDoWidthCap(t *testing.T) {
	const width = 3
	p := NewPool(width)
	defer p.Close()
	var cur, peak atomic.Int32
	fs := make([]func(), 24)
	for i := range fs {
		fs[i] = func() {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		}
	}
	p.Do(fs...)
	if got := peak.Load(); got > width {
		t.Fatalf("Do ran %d branches concurrently on a width-%d pool", got, width)
	}
}

// TestPoolOwnsBoundedGoroutines: a pool spawns its workers once, and
// running primitives on it spawns nothing further.
func TestPoolOwnsBoundedGoroutines(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()
	p := NewPool(8)
	after := runtime.NumGoroutine()
	if after-base > 7 {
		t.Fatalf("NewPool(8) spawned %d goroutines, want <= 7", after-base)
	}
	xs := make([]int64, 6*Grain)
	for i := range xs {
		xs[i] = int64(i % 97)
	}
	for iter := 0; iter < 50; iter++ {
		p.InclusiveSum(xs, xs)
		p.For(len(xs), func(i int) { xs[i] ^= 1 })
	}
	during := runtime.NumGoroutine()
	if during-base > 8 {
		t.Fatalf("primitives grew the goroutine count to %d over baseline %d", during, base)
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("after Close the pool still holds %d goroutines over baseline %d", runtime.NumGoroutine()-base, base)
}

// TestNestedPrimitivesNoDeadlock drives deeply nested fork-join through a
// narrow pool: loops inside loops inside Do2, plus a concurrent caller per
// lane, must all complete (the help-first join makes this safe).
func TestNestedPrimitivesNoDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				p.ForGrain(8, 1, func(i int) {
					p.Do2(
						func() {
							p.ForGrain(8, 1, func(j int) {
								xs := make([]int64, 512)
								p.InclusiveSum(xs, xs)
							})
						},
						func() {
							ys := make([]int64, 3*Grain)
							p.ExclusiveSum(ys, ys)
						},
					)
				})
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested fork-join deadlocked")
	}
}

// TestClosedPoolStillComputes: primitives on a closed pool degrade to
// sequential execution but stay correct.
func TestClosedPoolStillComputes(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close() // idempotent
	xs := make([]int64, 5*Grain)
	for i := range xs {
		xs[i] = 1
	}
	if total := p.InclusiveSum(xs, xs); total != int64(len(xs)) {
		t.Fatalf("closed pool InclusiveSum total = %d", total)
	}
	ran := false
	p.Do2(func() {}, func() { ran = true })
	if !ran {
		t.Fatal("closed pool dropped a Do2 branch")
	}
}

// TestDefaultPoolTracksGOMAXPROCS: the shared default pool resizes when
// GOMAXPROCS changes (so `go test -cpu 1,2,4` really exercises the
// default-pool paths at every width), and the superseded pool's workers
// are released.
func TestDefaultPoolTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	first := Default()
	if first.Width() != old {
		t.Fatalf("default width %d != GOMAXPROCS %d", first.Width(), old)
	}
	next := old + 2
	runtime.GOMAXPROCS(next)
	resized := Default()
	if resized.Width() != next {
		t.Fatalf("after GOMAXPROCS(%d) default width = %d", next, resized.Width())
	}
	if Workers() != next {
		t.Fatalf("Workers() = %d, want %d", Workers(), next)
	}
	// The old default still computes (degraded to sequential is fine).
	xs := []int64{1, 2, 3}
	if total := first.InclusiveSum(xs, xs); total != 6 {
		t.Fatalf("superseded default pool broken: total %d", total)
	}
	// Closing a default (old or new) is a no-op for callers.
	resized.Close()
	if got := Default().InclusiveSum([]int64{4}, []int64{0}); got != 4 {
		t.Fatalf("default pool after Close: %d", got)
	}
}

// TestDefaultPoolSharedByPackageFuncs: the package-level wrappers keep
// working and report a positive width.
func TestDefaultPoolSharedByPackageFuncs(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	var nilPool *Pool
	if nilPool.Width() != Workers() {
		t.Fatalf("nil pool width %d != default %d", nilPool.Width(), Workers())
	}
	xs := []int64{3, 1, 2}
	SortStable(xs, func(a, b int64) bool { return a < b })
	if xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("package-level SortStable broken: %v", xs)
	}
}
