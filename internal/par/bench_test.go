package par

import (
	"math/rand"
	"testing"
)

func benchInts(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(1000) - 500)
	}
	return xs
}

func BenchmarkExclusiveSum1M(b *testing.B) {
	xs := benchInts(1<<20, 1)
	out := make([]int64, len(xs))
	b.ReportAllocs()
	b.SetBytes(int64(len(xs) * 8))
	for i := 0; i < b.N; i++ {
		ExclusiveSum(xs, out)
	}
}

func BenchmarkSegmentedBroadcast1M(b *testing.B) {
	n := 1 << 20
	present := make([]bool, n)
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range present {
		present[i] = rng.Intn(4) == 0
		vals[i] = int64(i)
	}
	out := make([]int64, n)
	b.ReportAllocs()
	b.SetBytes(int64(n * 8))
	for i := 0; i < b.N; i++ {
		SegmentedBroadcast(present, vals, out, 0)
	}
}

func BenchmarkMerge1M(b *testing.B) {
	n := 1 << 19
	x := benchInts(n, 3)
	y := benchInts(n, 4)
	less := func(a, b int64) bool { return a < b }
	SortStable(x, less)
	SortStable(y, less)
	out := make([]int64, 2*n)
	b.ReportAllocs()
	b.SetBytes(int64(2 * n * 8))
	for i := 0; i < b.N; i++ {
		Merge(x, y, out, less)
	}
}

func BenchmarkSortStable1M(b *testing.B) {
	src := benchInts(1<<20, 5)
	xs := make([]int64, len(src))
	less := func(a, b int64) bool { return a < b }
	b.ReportAllocs()
	b.SetBytes(int64(len(src) * 8))
	for i := 0; i < b.N; i++ {
		copy(xs, src)
		SortStable(xs, less)
	}
}

func BenchmarkReduceMin1M(b *testing.B) {
	xs := benchInts(1<<20, 6)
	b.ReportAllocs()
	b.SetBytes(int64(len(xs) * 8))
	for i := 0; i < b.N; i++ {
		MinInt64(xs)
	}
}
