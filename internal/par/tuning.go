package par

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tuning holds the per-primitive sequential cutoffs: a primitive invoked
// on fewer elements than its cutoff runs sequentially in the caller.
// Forking a branch costs on the order of a microsecond, so the profitable
// threshold differs per primitive — a scan does two cheap passes per
// element while a sort comparison cascade does far more work per element
// — and per machine. The zero value of a field means "use the baseline
// default"; values are clamped to [MinCutoff, MaxCutoff].
type Tuning struct {
	// ForGrain is the default per-chunk element count for For loops.
	ForGrain int
	// Scan gates ExclusiveSum/InclusiveSum/SegmentedBroadcast.
	Scan int
	// Reduce gates ReduceInt64/MinInt64/SumInt64.
	Reduce int
	// Merge gates MergeOn (total elements across both inputs).
	Merge int
	// Sort gates SortStableOn.
	Sort int
}

// Cutoff bounds: below MinCutoff forking never pays; above MaxCutoff a
// primitive that "never wins" would stop parallelizing even the huge
// inputs the paper's bounds are about.
const (
	MinCutoff = 1 << 10
	MaxCutoff = 1 << 20
)

// BaselineTuning is the uncalibrated default, matching the historical
// fixed-Grain thresholds the primitives shipped with.
func BaselineTuning() Tuning {
	return Tuning{
		ForGrain: Grain,
		Scan:     4 * Grain,
		Reduce:   Grain,
		Merge:    4 * Grain,
		Sort:     8 * Grain,
	}
}

// sequentialTuning turns every primitive sequential (width-1 machines,
// calibration probes).
func sequentialTuning() Tuning {
	return Tuning{ForGrain: MaxCutoff, Scan: MaxCutoff, Reduce: MaxCutoff, Merge: MaxCutoff, Sort: MaxCutoff}
}

func clampCutoff(v, fallback int) int {
	if v == 0 {
		v = fallback
	}
	if v < MinCutoff {
		return MinCutoff
	}
	if v > MaxCutoff {
		return MaxCutoff
	}
	return v
}

func (t Tuning) sanitized() Tuning {
	base := BaselineTuning()
	t.ForGrain = clampCutoff(t.ForGrain, base.ForGrain)
	t.Scan = clampCutoff(t.Scan, base.Scan)
	t.Reduce = clampCutoff(t.Reduce, base.Reduce)
	t.Merge = clampCutoff(t.Merge, base.Merge)
	t.Sort = clampCutoff(t.Sort, base.Sort)
	return t
}

// pkgTuning is the process-wide default applied to every pool without an
// explicit override; nil means BaselineTuning.
var pkgTuning atomic.Pointer[Tuning]

// DefaultTuning returns the process-wide cutoff defaults.
func DefaultTuning() Tuning {
	if t := pkgTuning.Load(); t != nil {
		return *t
	}
	return BaselineTuning()
}

// SetDefaultTuning replaces the process-wide cutoff defaults (zero fields
// fall back to the baseline; all values are clamped). Pools with a
// per-pool override (SetTuning) are unaffected.
func SetDefaultTuning(t Tuning) {
	s := t.sanitized()
	pkgTuning.Store(&s)
}

// SetTuning overrides the cutoffs for this pool only.
func (p *Pool) SetTuning(t Tuning) {
	s := t.sanitized()
	p.get().tuning.Store(&s)
}

// Tuning returns the cutoffs in effect for this pool.
func (p *Pool) Tuning() Tuning { return p.get().tun() }

func (p *Pool) tun() Tuning {
	if t := p.tuning.Load(); t != nil {
		return *t
	}
	return DefaultTuning()
}

// Calibrate measures the parallel-vs-sequential crossover of each
// primitive on this machine and returns the resulting cutoffs. It probes
// on a private pool of the given width (<= 0 means GOMAXPROCS), timing
// each primitive sequentially and force-parallel across a ladder of
// sizes and picking the smallest size where the parallel form wins by a
// clear margin. A width <= 1 machine gets all-sequential cutoffs. The
// probe costs a few tens of milliseconds; services run it once at
// startup (CalibrateOnce / mincutd's -par-tune) and install the result
// with SetDefaultTuning.
func Calibrate(width int) Tuning {
	p := NewPool(width)
	defer p.Close()
	if p.width <= 1 {
		return sequentialTuning()
	}

	sizes := []int{4096, 8192, 16384, 32768, 65536, 131072}
	buf := make([]int64, sizes[len(sizes)-1])
	out := make([]int64, len(buf))
	for i := range buf {
		buf[i] = int64(i*2654435761) % 1009
	}

	t := BaselineTuning()
	t.Scan = probeCutoff(p, sizes, func(n int) {
		p.ExclusiveSum(buf[:n], out[:n])
	}, func(tt *Tuning, cut int) { tt.Scan = cut })
	t.Reduce = probeCutoff(p, sizes, func(n int) {
		p.SumInt64(buf[:n])
	}, func(tt *Tuning, cut int) { tt.Reduce = cut })
	t.ForGrain = probeCutoff(p, sizes, func(n int) {
		s := buf[:n]
		p.For(n, func(i int) { s[i] = s[i] ^ int64(i) })
	}, func(tt *Tuning, cut int) { tt.ForGrain = cut })

	sorted := make([]int64, len(buf))
	t.Merge = probeCutoff(p, sizes, func(n int) {
		half := n / 2
		for i := 0; i < half; i++ {
			sorted[i] = int64(2 * i)
			sorted[half+i] = int64(2*i + 1)
		}
		MergeOn(p, sorted[:half], sorted[half:n], out[:n], func(a, b int64) bool { return a < b })
	}, func(tt *Tuning, cut int) { tt.Merge = cut })
	t.Sort = probeCutoff(p, sizes, func(n int) {
		copy(sorted[:n], buf[:n])
		SortStableOn(p, sorted[:n], func(a, b int64) bool { return a < b })
	}, func(tt *Tuning, cut int) { tt.Sort = cut })

	return t.sanitized()
}

// probeCutoff times run(n) sequentially (cutoffs maxed) and
// force-parallel (the primitive's cutoff dropped to n/2) at each ladder
// size and returns the smallest n where parallel beats sequential by
// >=5%; MaxCutoff if it never does. Medians over 5 reps absorb scheduler
// noise.
func probeCutoff(p *Pool, sizes []int, run func(n int), set func(*Tuning, int)) int {
	defer p.tuning.Store(nil)
	const reps = 5
	measure := func(n int, t Tuning) time.Duration {
		p.tuning.Store(&t)
		ds := make([]time.Duration, reps)
		for r := range ds {
			start := time.Now()
			run(n)
			ds[r] = time.Since(start)
		}
		// median by selection over 5 elements
		for i := 1; i < len(ds); i++ {
			for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
				ds[j], ds[j-1] = ds[j-1], ds[j]
			}
		}
		return ds[reps/2]
	}
	for _, n := range sizes {
		seq := measure(n, sequentialTuning())
		forced := sequentialTuning()
		set(&forced, n/2)
		parl := measure(n, forced)
		if parl*100 <= seq*95 {
			return n
		}
	}
	return MaxCutoff
}

var (
	calOnce sync.Once
	calT    Tuning
)

// CalibrateOnce runs Calibrate at the current GOMAXPROCS the first time
// it is called and caches the result process-wide.
func CalibrateOnce() Tuning {
	calOnce.Do(func() { calT = Calibrate(0) })
	return calT
}
