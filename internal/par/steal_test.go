package par

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// --- deque unit tests ---

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	var d deque
	order := make([]int, 0, 8)
	mk := func(i int) task { return task{f: func() { order = append(order, i) }} }
	for i := 0; i < 4; i++ {
		if !d.pushBottom(mk(i)) {
			t.Fatalf("pushBottom(%d) reported full on empty deque", i)
		}
	}
	if got := d.size(); got != 4 {
		t.Fatalf("size = %d, want 4", got)
	}
	// Thief takes the oldest.
	if tk, ok := d.stealTop(); !ok {
		t.Fatal("stealTop on non-empty deque failed")
	} else {
		tk.f()
	}
	// Owner takes the newest.
	if tk, ok := d.popBottom(); !ok {
		t.Fatal("popBottom on non-empty deque failed")
	} else {
		tk.f()
	}
	if tk, ok := d.stealTop(); !ok {
		t.Fatal("second stealTop failed")
	} else {
		tk.f()
	}
	if tk, ok := d.popBottom(); !ok {
		t.Fatal("last popBottom failed")
	} else {
		tk.f()
	}
	want := []int{0, 3, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
	if _, ok := d.popBottom(); ok {
		t.Fatal("popBottom on empty deque succeeded")
	}
	if _, ok := d.stealTop(); ok {
		t.Fatal("stealTop on empty deque succeeded")
	}
}

func TestDequeFullReportsFalse(t *testing.T) {
	var d deque
	nop := task{f: func() {}}
	for i := 0; i < dequeCap; i++ {
		if !d.pushBottom(nop) {
			t.Fatalf("deque full after %d pushes, cap is %d", i, dequeCap)
		}
	}
	if d.pushBottom(nop) {
		t.Fatal("pushBottom succeeded on a full deque")
	}
	if _, ok := d.popBottom(); !ok {
		t.Fatal("popBottom failed on full deque")
	}
	if !d.pushBottom(nop) {
		t.Fatal("pushBottom failed after freeing a slot")
	}
}

func TestDequeWraparound(t *testing.T) {
	var d deque
	nop := task{f: func() {}}
	// Cycle head/tail far past dequeCap to exercise index wrapping.
	for round := 0; round < 5*dequeCap; round++ {
		if !d.pushBottom(nop) {
			t.Fatalf("push failed at round %d", round)
		}
		if !d.pushBottom(nop) {
			t.Fatalf("push failed at round %d", round)
		}
		if _, ok := d.stealTop(); !ok {
			t.Fatalf("steal failed at round %d", round)
		}
		if _, ok := d.popBottom(); !ok {
			t.Fatalf("pop failed at round %d", round)
		}
		if d.size() != 0 {
			t.Fatalf("size = %d after balanced ops at round %d", d.size(), round)
		}
	}
}

// --- stealing stress: determinism across widths with stealing forced ---

// stressSolve runs a nested fork-join workload — parallel sorts, scans,
// merges and reductions forked as sibling branches from goroutines that
// own no lane — and returns a deterministic digest. Pushes from no-lane
// goroutines land on rotating victims' deques, so at any width > 1 other
// lanes must steal or be handed work they did not push: exactly the
// cross-lane traffic that must not affect results.
func stressSolve(p *Pool, n int) int64 {
	xs := make([]int64, n)
	ys := make([]int64, n)
	us := make([]int64, n)
	vs := make([]int64, n)
	zs := make([]int64, 2*n)
	for i := range xs {
		xs[i] = int64((i * 2654435761) % 10007)
		ys[i] = int64((i * 40503) % 9973)
		us[i] = ys[i]
		vs[i] = xs[i]
	}
	var scanTot, redTot int64
	p.Do(
		func() { SortStableOn(p, xs, func(a, b int64) bool { return a < b }) },
		func() { SortStableOn(p, ys, func(a, b int64) bool { return a < b }) },
		func() { scanTot = p.ExclusiveSum(us, make([]int64, n)) },
		func() { redTot = p.SumInt64(vs) },
	)
	MergeOn(p, xs, ys, zs, func(a, b int64) bool { return a < b })
	var digest int64
	p.For(2*n, func(i int) { _ = i })
	for i, z := range zs {
		digest += z * int64(i%97)
	}
	return digest + 31*scanTot + 17*redTot
}

func TestStealingStressWidthEquivalence(t *testing.T) {
	const n = 1 << 15
	widths := []int{1, 2, 7, runtime.GOMAXPROCS(0)}

	// Drop the cutoffs so the recursion forks aggressively even at this
	// (test-sized) n: deep cascades at width 2 and 7 guarantee deques
	// fill, spill, and get stolen from.
	forced := Tuning{ForGrain: MinCutoff, Scan: MinCutoff, Reduce: MinCutoff, Merge: MinCutoff, Sort: MinCutoff}

	var want int64
	for wi, w := range widths {
		p := NewPool(w)
		p.SetTuning(forced)
		var got int64
		// Several concurrent no-lane callers, several rounds each: bursty
		// nested fork-join from outside the worker set.
		var wg sync.WaitGroup
		results := make([]int64, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var last int64
				for r := 0; r < 3; r++ {
					last = stressSolve(p, n)
				}
				results[g] = last
			}(g)
		}
		wg.Wait()
		got = results[0]
		for g, r := range results {
			if r != got {
				t.Fatalf("width %d: caller %d got %d, caller 0 got %d", w, g, r, got)
			}
		}
		if wi == 0 {
			want = got
		} else if got != want {
			t.Fatalf("width %d digest = %d, width 1 digest = %d: stealing changed results", w, got, want)
		}
		st := p.Stats()
		if w > 1 {
			if st.SharedPushes == 0 {
				t.Errorf("width %d: no shared pushes — the no-lane fork path never ran", w)
			}
			if st.InlineRuns != 0 {
				t.Errorf("width %d: %d forks degraded to inline execution on an open pool", w, st.InlineRuns)
			}
			t.Logf("width %d: steals=%d local=%d shared=%d overflow=%d",
				w, st.Steals, st.LocalPushes, st.SharedPushes, st.OverflowPushes)
		}
		p.Close()
	}
}

// --- regression: saturation must not serialize into the caller ---

// TestNoSaturationCollapse guards against the old channel-pool behavior
// where a fork finding the shared queue full ran the branch inline in the
// caller, serializing bursty fan-out. With deques, bursts spill to the
// overflow queue and still execute on worker lanes: InlineRuns stays 0
// and observed parallelism exceeds 1.
func TestNoSaturationCollapse(t *testing.T) {
	const width = 4
	p := NewPool(width)
	defer p.Close()

	// Burst far past the per-lane deque capacity from a single no-lane
	// caller. Under the old pool (queue cap 8*width) most of these forks
	// would have collapsed inline.
	const burst = 8 * dequeCap
	var running, peak atomicMax
	fs := make([]func(), burst)
	for i := range fs {
		fs[i] = func() {
			r := running.add(1)
			peak.max(r)
			time.Sleep(10 * time.Microsecond)
			running.add(-1)
		}
	}
	p.Do(fs...)

	st := p.Stats()
	if st.InlineRuns != 0 {
		t.Fatalf("%d forks ran inline on an open pool; overflow spill is broken", st.InlineRuns)
	}
	if got := st.SharedPushes + st.OverflowPushes; got != burst-1 {
		t.Fatalf("burst of %d forks recorded %d pushes (shared %d + overflow %d), want %d",
			burst, got, st.SharedPushes, st.OverflowPushes, burst-1)
	}
	if got := peak.load(); got < 2 {
		t.Fatalf("peak parallelism %d during a %d-task burst on a width-%d pool", got, burst, width)
	}
	if got := peak.load(); got > width {
		t.Fatalf("peak parallelism %d exceeds pool width %d", got, width)
	}
}

// --- Default() replacement race ---

// TestDefaultConcurrentResize hammers Default() from many goroutines
// while GOMAXPROCS flips underneath, asserting no deadlock (primitives
// keep returning correct results) and no worker leak afterwards.
func TestDefaultConcurrentResize(t *testing.T) {
	if testing.Short() {
		t.Skip("resize stress skipped in -short")
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	xs := make([]int64, 40000)
	for i := range xs {
		xs[i] = int64(i)
	}
	var want int64 = int64(len(xs)) * int64(len(xs)-1) / 2

	stop := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		w := orig
		for {
			select {
			case <-stop:
				runtime.GOMAXPROCS(orig)
				return
			default:
			}
			if w = w%4 + 1; w == orig {
				w++
			}
			runtime.GOMAXPROCS(w)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				if got := SumInt64(xs); got != want {
					t.Errorf("SumInt64 = %d, want %d", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flip.Wait()

	// Settle on the original width and let retired pools' workers exit.
	Default()
	deadline := time.Now().Add(5 * time.Second)
	budget := runtime.GOMAXPROCS(0) + 20 // current pool's workers + test harness slack
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= budget {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive after resize storm (budget %d): retired default pools leaked workers", n, budget)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// atomicMax tracks a running count and its high-water mark.
type atomicMax struct {
	mu   sync.Mutex
	cur  int
	high int
}

func (a *atomicMax) add(d int) int {
	a.mu.Lock()
	a.cur += d
	c := a.cur
	a.mu.Unlock()
	return c
}

func (a *atomicMax) max(v int) {
	a.mu.Lock()
	if v > a.high {
		a.high = v
	}
	a.mu.Unlock()
}

func (a *atomicMax) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.high
}
