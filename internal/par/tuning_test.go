package par

import "testing"

func TestCalibrateSequentialWidth(t *testing.T) {
	tun := Calibrate(1)
	if tun.Scan != MaxCutoff || tun.Sort != MaxCutoff || tun.Merge != MaxCutoff ||
		tun.Reduce != MaxCutoff || tun.ForGrain != MaxCutoff {
		t.Fatalf("width-1 calibration must be all-sequential, got %+v", tun)
	}
}

func TestCalibrateProducesValidCutoffs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe skipped in -short")
	}
	tun := Calibrate(4)
	for name, v := range map[string]int{
		"ForGrain": tun.ForGrain, "Scan": tun.Scan, "Reduce": tun.Reduce,
		"Merge": tun.Merge, "Sort": tun.Sort,
	} {
		if v < MinCutoff || v > MaxCutoff {
			t.Errorf("%s cutoff %d outside [%d, %d]", name, v, MinCutoff, MaxCutoff)
		}
	}
}

func TestTuningSanitize(t *testing.T) {
	SetDefaultTuning(Tuning{Scan: 1, Sort: 1 << 30})
	defer pkgTuning.Store(nil)
	got := DefaultTuning()
	if got.Scan != MinCutoff {
		t.Errorf("Scan clamped to %d, want %d", got.Scan, MinCutoff)
	}
	if got.Sort != MaxCutoff {
		t.Errorf("Sort clamped to %d, want %d", got.Sort, MaxCutoff)
	}
	base := BaselineTuning()
	if got.Merge != base.Merge || got.Reduce != base.Reduce || got.ForGrain != base.ForGrain {
		t.Errorf("zero fields must fall back to baseline: got %+v", got)
	}
}

func TestPerPoolTuningOverride(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.SetTuning(Tuning{Scan: 2048})
	if got := p.Tuning().Scan; got != 2048 {
		t.Fatalf("pool Scan cutoff = %d, want 2048", got)
	}
	if got := DefaultTuning().Scan; got == 2048 && BaselineTuning().Scan != 2048 {
		t.Fatal("per-pool override leaked into the process default")
	}
	// Results must not depend on cutoffs.
	xs := make([]int64, 10000)
	for i := range xs {
		xs[i] = int64(i % 7)
	}
	out1 := make([]int64, len(xs))
	out2 := make([]int64, len(xs))
	t1 := p.ExclusiveSum(xs, out1)
	p.SetTuning(Tuning{Scan: MaxCutoff})
	t2 := p.ExclusiveSum(xs, out2)
	if t1 != t2 {
		t.Fatalf("totals differ across cutoffs: %d vs %d", t1, t2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("out[%d] differs across cutoffs: %d vs %d", i, out1[i], out2[i])
		}
	}
}
