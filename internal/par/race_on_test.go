//go:build race

package par

const raceEnabled = true
