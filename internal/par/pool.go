package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded-width parallel executor: the concrete machine the
// paper's abstract fork-join primitives (§1.1.2) run on. A Pool of width w
// owns w-1 long-lived worker goroutines; the goroutine invoking a
// primitive is the w-th lane. Primitives never spawn goroutines — forked
// branches are handed to idle workers through a queue, and a joining
// caller helps execute queued branches instead of blocking, so nested
// fork-join (parallel merge sort, concurrent tree scans) cannot deadlock
// and total parallelism stays capped at the pool width no matter how
// deeply primitives nest.
//
// Width never affects results: every primitive computes the same output at
// every width (chunked reductions use exact integer arithmetic, merges and
// sorts are stable), so callers may treat the width purely as a resource
// knob.
//
// A nil *Pool is valid everywhere a pool is accepted and means the shared
// process-wide default pool (width GOMAXPROCS), which is how the
// package-level compatibility functions run. Pools are safe for concurrent
// use by multiple goroutines; each concurrent caller adds one lane, so
// give logically independent solvers independent pools to keep their
// combined footprint explicit.
type Pool struct {
	width     int
	isDefault bool // the shared default pool; Close is a no-op on it
	tasks     chan func()
	stop      chan struct{}
	once      sync.Once // guards shutdown

	// scratch recycles the small per-chunk partial buffers of scans and
	// reductions ([]int64 of length <= maxChunks) so steady-state
	// primitives allocate nothing.
	scratch sync.Pool
}

// NewPool returns a Pool of the given width. Width <= 0 means
// runtime.GOMAXPROCS(0). A width-1 pool runs every primitive sequentially
// in the caller's goroutine and owns no workers. Call Close when done to
// release the workers; a finalizer is deliberately not used, but leaked
// pools only cost idle goroutines.
func NewPool(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		width: width,
		stop:  make(chan struct{}),
	}
	p.scratch.New = func() any {
		s := make([]int64, p.maxChunks())
		return &s
	}
	if width > 1 {
		// The queue is deeper than the worker count so bursts of small
		// forks (divide-and-conquer fans out faster than workers drain)
		// do not immediately degrade to inline execution.
		p.tasks = make(chan func(), 8*width)
		for i := 0; i < width-1; i++ {
			go p.worker()
		}
	}
	return p
}

// defaultPool is the shared executor behind the package-level primitives
// and nil *Pool receivers: one set of workers for all legacy callers
// instead of per-primitive goroutine spawning. The atomic pointer (with
// defaultMu serializing replacement) keeps Default and Close race-free.
var (
	defaultMu   sync.Mutex
	defaultPool atomic.Pointer[Pool]
)

// Default returns the shared process-wide pool, sized to the current
// GOMAXPROCS. If GOMAXPROCS has changed since the pool was created (test
// harnesses sweeping -cpu, operators resizing a live process), the
// default is transparently replaced by one of the new width and the old
// one's workers are released — primitives still in flight on the old pool
// finish correctly (degrading to sequential execution). Closing the
// default pool directly is a no-op.
func Default() *Pool {
	want := runtime.GOMAXPROCS(0)
	if p := defaultPool.Load(); p != nil && p.width == want {
		return p
	}
	defaultMu.Lock()
	defer defaultMu.Unlock()
	p := defaultPool.Load()
	if p != nil && p.width == want {
		return p
	}
	np := NewPool(want)
	np.isDefault = true
	defaultPool.Store(np)
	if p != nil {
		p.shutdown()
	}
	return np
}

// get resolves the nil-receiver convention.
func (p *Pool) get() *Pool {
	if p == nil {
		return Default()
	}
	return p
}

// Width reports the pool's parallelism (the default pool's width for a nil
// receiver).
func (p *Pool) Width() int {
	return p.get().width
}

// Workers reports the parallelism the package-level primitives will use
// (the default pool's width).
func Workers() int {
	return Default().width
}

// Close stops the pool's workers. Primitives invoked after Close (or
// racing with it) still complete correctly — forks fail over to inline
// execution — they just run sequentially. Closing the shared default pool
// is a no-op. Close is idempotent.
func (p *Pool) Close() {
	if p == nil || p.isDefault {
		return
	}
	p.shutdown()
}

// shutdown releases the workers unconditionally (Default uses it to
// retire a superseded default pool).
func (p *Pool) shutdown() {
	p.once.Do(func() { close(p.stop) })
}

// worker executes queued branches until the pool closes.
func (p *Pool) worker() {
	for {
		select {
		case f := <-p.tasks:
			f()
		case <-p.stop:
			return
		}
	}
}

// join tracks a set of forked branches. pending counts branches not yet
// finished; note (capacity 1) is poked whenever pending drops to zero.
// A buffered notification — instead of a closed channel — makes transient
// zeros safe: a branch may finish before the next one is even forked, and
// the waiter simply re-checks pending after every wake-up.
type join struct {
	pending atomic.Int32
	note    chan struct{}
}

func newJoin() *join {
	return &join{note: make(chan struct{}, 1)}
}

// fork hands f to the pool, registering it on j. It reports false — and
// runs nothing — when the pool is saturated (queue full) or closed, in
// which case the caller must run f inline itself.
func (p *Pool) fork(j *join, f func()) bool {
	if p.tasks == nil {
		return false
	}
	j.pending.Add(1)
	wrapped := func() {
		f()
		if j.pending.Add(-1) == 0 {
			select {
			case j.note <- struct{}{}:
			default:
			}
		}
	}
	select {
	case p.tasks <- wrapped:
		return true
	default:
		// Saturated: undo the registration; caller runs f inline.
		j.pending.Add(-1)
		return false
	}
}

// wait blocks until every branch forked on j has finished. While waiting
// it helps execute queued tasks (its own pending branches or anyone
// else's), which both speeds completion and guarantees progress: a branch
// can only be "stuck" in the queue, and everyone who waits drains the
// queue. A stale note (from a transient zero) just causes one extra
// pending check.
func (p *Pool) wait(j *join) {
	for j.pending.Load() != 0 {
		select {
		case <-j.note:
		case f := <-p.tasks:
			f()
		}
	}
}

// run executes body on up to width lanes: the caller plus at most lanes-1
// forked workers, all pulling from whatever shared work source body
// drains. body must be safe to run concurrently with itself and must
// return when the shared source is exhausted.
func (p *Pool) run(lanes int, body func()) {
	if lanes > p.width {
		lanes = p.width
	}
	if lanes <= 1 || p.tasks == nil {
		body()
		return
	}
	j := newJoin()
	for i := 1; i < lanes; i++ {
		if !p.fork(j, body) {
			break // saturated: remaining lanes fold into the caller's
		}
	}
	body()
	p.wait(j)
}

// maxChunks is the ceiling on chunk counts used by the chunked primitives
// (loops, scans, reductions): enough slack for load balancing without
// losing the near-sequential constant factors.
func (p *Pool) maxChunks() int {
	return 4 * p.width
}

// numChunks picks the chunk count for an n-element chunked primitive.
func (p *Pool) numChunks(n int) int {
	chunks := p.maxChunks()
	if byGrain := (n + Grain - 1) / Grain; chunks > byGrain {
		chunks = byGrain
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// getScratch borrows a []int64 of length n (n <= maxChunks) from the
// pool's scratch cache; putScratch returns it.
func (p *Pool) getScratch(n int) (*[]int64, []int64) {
	sp := p.scratch.Get().(*[]int64)
	s := *sp
	if cap(s) < n {
		s = make([]int64, n)
		*sp = s
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return sp, s
}

func (p *Pool) putScratch(sp *[]int64) {
	p.scratch.Put(sp)
}
