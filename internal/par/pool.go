package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded-width parallel executor: the concrete machine the
// paper's abstract fork-join primitives (§1.1.2) run on. A Pool of width w
// owns w-1 long-lived worker goroutines; the goroutine invoking a
// primitive is the w-th lane. Primitives never spawn goroutines — forked
// branches are pushed onto per-worker work-stealing deques, and a joining
// caller helps execute queued branches instead of blocking, so nested
// fork-join (parallel merge sort, concurrent tree scans) cannot deadlock
// and total parallelism stays capped at the pool width no matter how
// deeply primitives nest.
//
// Scheduling: each worker lane pushes and pops its own bounded LIFO deque
// (depth-first locality for divide-and-conquer cascades); idle lanes steal
// FIFO from victims (breadth-first, taking the oldest and typically
// largest branch); pushes that overflow a full deque spill to a shared
// unbounded queue rather than degrading to inline execution, so a
// saturated burst parallelizes instead of serializing into the forking
// caller.
//
// Width and schedule never affect results: every primitive computes the
// same output at every width and under any steal interleaving (chunked
// reductions use exact integer arithmetic, merges and sorts are stable),
// so callers may treat the width purely as a resource knob.
//
// A nil *Pool is valid everywhere a pool is accepted and means the shared
// process-wide default pool (width GOMAXPROCS), which is how the
// package-level compatibility functions run. Pools are safe for concurrent
// use by multiple goroutines; each concurrent caller adds one lane, so
// give logically independent solvers independent pools to keep their
// combined footprint explicit.
type Pool struct {
	width     int
	isDefault bool // the shared default pool; Close is a no-op on it
	lanes     []*lane
	stop      chan struct{}
	closed    atomic.Bool
	once      sync.Once // guards shutdown

	// wake is a wakeup semaphore for parked workers and helping waiters:
	// every push sends one non-blocking token. Capacity equals the number
	// of goroutines that can park (the workers plus slack for waiters), so
	// a dropped token implies enough pending tokens to wake everyone.
	wake chan struct{}

	// overflow is the shared FIFO spill for pushes that found their target
	// deque full. It is unbounded: admission control happens above the
	// pool (the scheduler's queue caps), not by silently serializing
	// forks.
	overflow struct {
		mu   sync.Mutex
		head int
		q    []task
	}

	// rr rotates push targets for callers that do not own a lane, and
	// steal sweep starting points.
	rr atomic.Uint32

	stats poolStats

	// tuning overrides the package-default granularity cutoffs for this
	// pool; nil means "follow the process-wide default" (see Tuning).
	tuning atomic.Pointer[Tuning]

	// arena recycles the typed scratch slices of the primitives and the
	// solver inner loops (see Arena); joins and chunk loops are recycled
	// alongside so steady-state fork-join allocates nothing per branch.
	arena     Arena
	joinPool  sync.Pool
	chunkPool sync.Pool
}

// poolStats aggregates the pool's scheduling counters. All atomics; reads
// through Stats are racy snapshots, which is fine for metrics.
type poolStats struct {
	steals         atomic.Int64
	localPushes    atomic.Int64
	sharedPushes   atomic.Int64
	overflowPushes atomic.Int64
	inlineRuns     atomic.Int64
}

// Stats is a point-in-time snapshot of a pool's scheduling and arena
// counters, surfaced as mincutd_pool_* metrics by the service.
type Stats struct {
	// Steals counts tasks taken FIFO from another lane's deque (by idle
	// workers or helping waiters). LocalPushes are forks that landed on
	// the forking lane's own deque; SharedPushes landed on another lane's
	// deque (forks from goroutines that own no lane); OverflowPushes
	// spilled to the shared queue because the target deque was full.
	Steals, LocalPushes, SharedPushes, OverflowPushes int64
	// InlineRuns counts forks that degraded to inline execution in the
	// caller. On an open pool of width > 1 this is always 0 — the old
	// single-queue executor folded saturated forks into the caller, the
	// deque executor never does; only a closed pool runs branches inline.
	InlineRuns int64
	// ArenaHits and ArenaMisses count scratch-slice recycles vs fresh
	// allocations in the pool's arena.
	ArenaHits, ArenaMisses int64
}

// Stats snapshots the pool's counters (the default pool's for a nil
// receiver).
func (p *Pool) Stats() Stats {
	p = p.get()
	return Stats{
		Steals:         p.stats.steals.Load(),
		LocalPushes:    p.stats.localPushes.Load(),
		SharedPushes:   p.stats.sharedPushes.Load(),
		OverflowPushes: p.stats.overflowPushes.Load(),
		InlineRuns:     p.stats.inlineRuns.Load(),
		ArenaHits:      p.arena.hits.Load(),
		ArenaMisses:    p.arena.misses.Load(),
	}
}

// NewPool returns a Pool of the given width. Width <= 0 means
// runtime.GOMAXPROCS(0). A width-1 pool runs every primitive sequentially
// in the caller's goroutine and owns no workers. Call Close when done to
// release the workers; a finalizer is deliberately not used, but leaked
// pools only cost idle goroutines.
func NewPool(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		width: width,
		stop:  make(chan struct{}),
	}
	if width > 1 {
		p.wake = make(chan struct{}, 2*width)
		p.lanes = make([]*lane, width-1)
		for i := range p.lanes {
			p.lanes[i] = &lane{}
		}
		for i := range p.lanes {
			go p.worker(p.lanes[i])
		}
	}
	return p
}

// defaultPool is the shared executor behind the package-level primitives
// and nil *Pool receivers: one set of workers for all legacy callers
// instead of per-primitive goroutine spawning. The atomic pointer (with
// defaultMu serializing replacement) keeps Default and Close race-free.
var (
	defaultMu   sync.Mutex
	defaultPool atomic.Pointer[Pool]
)

// Default returns the shared process-wide pool, sized to the current
// GOMAXPROCS. If GOMAXPROCS has changed since the pool was created (test
// harnesses sweeping -cpu, operators resizing a live process), the
// default is transparently replaced by one of the new width and the old
// one's workers are released — primitives still in flight on the old pool
// finish correctly (degrading to sequential execution). Closing the
// default pool directly is a no-op.
func Default() *Pool {
	want := runtime.GOMAXPROCS(0)
	if p := defaultPool.Load(); p != nil && p.width == want {
		return p
	}
	defaultMu.Lock()
	defer defaultMu.Unlock()
	p := defaultPool.Load()
	if p != nil && p.width == want {
		return p
	}
	np := NewPool(want)
	np.isDefault = true
	defaultPool.Store(np)
	if p != nil {
		p.shutdown()
	}
	return np
}

// get resolves the nil-receiver convention.
func (p *Pool) get() *Pool {
	if p == nil {
		return Default()
	}
	return p
}

// Width reports the pool's parallelism (the default pool's width for a nil
// receiver).
func (p *Pool) Width() int {
	return p.get().width
}

// Workers reports the parallelism the package-level primitives will use
// (the default pool's width).
func Workers() int {
	return Default().width
}

// Close stops the pool's workers. Primitives invoked after Close (or
// racing with it) still complete correctly — forks fail over to inline
// execution — they just run sequentially. Closing the shared default pool
// is a no-op. Close is idempotent.
func (p *Pool) Close() {
	if p == nil || p.isDefault {
		return
	}
	p.shutdown()
}

// shutdown releases the workers unconditionally (Default uses it to
// retire a superseded default pool).
func (p *Pool) shutdown() {
	p.once.Do(func() {
		p.closed.Store(true)
		close(p.stop)
	})
}

// worker owns lane l: pop the own deque LIFO, otherwise find work
// elsewhere (overflow FIFO, then steal FIFO from victims), otherwise park
// until a push wakes it or the pool closes.
func (p *Pool) worker(l *lane) {
	for {
		if t, ok := p.findTask(l); ok {
			p.exec(l, t)
			continue
		}
		select {
		case <-p.wake:
		case <-p.stop:
			return
		}
	}
}

// findTask locates the next task for lane l (nil for a helping waiter
// that owns no lane): own deque bottom first, then the shared overflow
// queue, then a FIFO steal sweep over the other lanes.
func (p *Pool) findTask(l *lane) (task, bool) {
	if l != nil {
		if t, ok := l.dq.popBottom(); ok {
			return t, true
		}
	}
	if t, ok := p.takeOverflow(); ok {
		return t, true
	}
	n := len(p.lanes)
	if n == 0 {
		return task{}, false
	}
	start := int(p.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		v := p.lanes[(start+i)%n]
		if v == l {
			continue
		}
		if t, ok := v.dq.stealTop(); ok {
			p.stats.steals.Add(1)
			return t, true
		}
	}
	return task{}, false
}

// takeOverflow pops the oldest spilled task.
func (p *Pool) takeOverflow() (task, bool) {
	o := &p.overflow
	o.mu.Lock()
	if o.head == len(o.q) {
		if o.head != 0 {
			o.q = o.q[:0]
			o.head = 0
		}
		o.mu.Unlock()
		return task{}, false
	}
	t := o.q[o.head]
	o.q[o.head] = task{}
	o.head++
	o.mu.Unlock()
	return t, true
}

// exec runs one task on lane l (nil for helping waiters) and signals its
// join.
func (p *Pool) exec(l *lane, t task) {
	switch {
	case t.cs != nil:
		t.cs.drain()
	case t.lf != nil:
		t.lf(l)
	default:
		t.f()
	}
	if t.j != nil {
		t.j.done()
	}
}

// push enqueues t: onto l's own deque when the pusher owns a lane, else
// onto a rotating victim's deque, spilling to the overflow queue when the
// target is full — never failing. One wake token per push keeps parked
// lanes live.
func (p *Pool) push(l *lane, t task) {
	switch {
	case l != nil && l.dq.pushBottom(t):
		p.stats.localPushes.Add(1)
	case p.lanes[int(p.rr.Add(1))%len(p.lanes)].dq.pushBottom(t):
		p.stats.sharedPushes.Add(1)
	default:
		o := &p.overflow
		o.mu.Lock()
		o.q = append(o.q, t)
		o.mu.Unlock()
		p.stats.overflowPushes.Add(1)
	}
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// join tracks a set of forked branches. pending counts branches not yet
// finished; note (capacity 1) is poked whenever pending drops to zero.
// A buffered notification — instead of a closed channel — makes transient
// zeros safe: a branch may finish before the next one is even forked, and
// the waiter simply re-checks pending after every wake-up. Joins are
// recycled through the pool's joinPool; a stale note token from a
// previous use at worst causes one extra pending check.
type join struct {
	pending atomic.Int32
	note    chan struct{}
}

func (j *join) done() {
	if j.pending.Add(-1) == 0 {
		select {
		case j.note <- struct{}{}:
		default:
		}
	}
}

func (p *Pool) getJoin() *join {
	if v := p.joinPool.Get(); v != nil {
		return v.(*join)
	}
	return &join{note: make(chan struct{}, 1)}
}

func (p *Pool) putJoin(j *join) {
	p.joinPool.Put(j)
}

// fork hands t to the pool, registering it on j. It reports false — and
// runs nothing — only when the pool has no workers (width 1) or is
// closed, in which case the caller must run the branch inline itself.
// Saturation never fails a fork: full deques spill to the overflow queue.
func (p *Pool) fork(l *lane, j *join, t task) bool {
	if p.lanes == nil || p.closed.Load() {
		if p.lanes != nil {
			p.stats.inlineRuns.Add(1)
		}
		return false
	}
	j.pending.Add(1)
	t.j = j
	p.push(l, t)
	return true
}

// wait blocks until every branch forked on j has finished. While waiting
// it helps execute queued tasks (its own branches or anyone else's),
// which both speeds completion and guarantees progress: a branch can only
// be "stuck" in a deque or the overflow queue, and everyone who waits
// sweeps all of them. A stale note (from a transient zero or a recycled
// join) just causes one extra pending check.
func (p *Pool) wait(l *lane, j *join) {
	for j.pending.Load() != 0 {
		if t, ok := p.findTask(l); ok {
			p.exec(l, t)
			continue
		}
		select {
		case <-j.note:
		case <-p.wake:
		}
	}
}

// chunkRun is a shared chunk loop: the caller and its forked helper
// branches all claim chunk indices from next until the range is
// exhausted. Recycled via chunkPool so chunked primitives allocate no
// per-call coordination state.
type chunkRun struct {
	next   atomic.Int64
	chunks int
	size   int
	n      int
	f      func(lo, hi int)
}

func (cr *chunkRun) drain() {
	for {
		c := int(cr.next.Add(1)) - 1
		if c >= cr.chunks {
			return
		}
		lo := c * cr.size
		hi := lo + cr.size
		if hi > cr.n {
			hi = cr.n
		}
		if lo < hi {
			cr.f(lo, hi)
		}
	}
}

func (p *Pool) getChunkRun() *chunkRun {
	if v := p.chunkPool.Get(); v != nil {
		return v.(*chunkRun)
	}
	return &chunkRun{}
}

func (p *Pool) putChunkRun(cr *chunkRun) {
	cr.f = nil
	p.chunkPool.Put(cr)
}

// do2Lane is the lane-aware binary fork-join behind the recursive
// primitives: branch b is pushed onto l's own deque (LIFO, so the lane
// that executes it — owner or thief — continues the cascade locally)
// while the caller runs a.
func (p *Pool) do2Lane(l *lane, a, b func(*lane)) {
	if p.lanes == nil || p.closed.Load() {
		a(l)
		b(l)
		return
	}
	j := p.getJoin()
	if !p.fork(l, j, task{lf: b}) {
		p.putJoin(j)
		a(l)
		b(l)
		return
	}
	a(l)
	p.wait(l, j)
	p.putJoin(j)
}

// maxChunks is the ceiling on chunk counts used by the chunked primitives
// (loops, scans, reductions): enough slack for load balancing without
// losing the near-sequential constant factors.
func (p *Pool) maxChunks() int {
	return 4 * p.width
}

// numChunks picks the chunk count for an n-element chunked primitive.
func (p *Pool) numChunks(n int) int {
	chunks := p.maxChunks()
	if byGrain := (n + Grain - 1) / Grain; chunks > byGrain {
		chunks = byGrain
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// getScratch borrows a []int64 of length n from the pool's arena;
// putScratch returns it. Contents are unspecified — every chunked
// primitive writes each cell before reading it.
func (p *Pool) getScratch(n int) (*[]int64, []int64) {
	sp := p.arena.Int64(n)
	return sp, *sp
}

func (p *Pool) putScratch(sp *[]int64) {
	p.arena.PutInt64(sp)
}
