package par

import "sort"

// MergeOn merges the sorted slices a and b into out (len(out) must be
// len(a)+len(b)) on the pool p, using the strict-weak ordering less. The
// merge is stable: on ties, elements of a precede elements of b. Large
// merges split in parallel by the classic median/binary-search scheme
// (Cole-style merging, the primitive the paper cites for its O(log) depth
// merge [7]); the recursion is lane-aware, so whichever lane executes a
// branch — owner or thief — pushes its sub-branches onto its own deque.
// Forked branches are described by recycled frames rather than fresh
// closures, so steady-state merges allocate nothing.
// Merge/SortStable are package functions rather than Pool methods because
// Go does not allow generic methods.
func MergeOn[T any](p *Pool, a, b, out []T, less func(x, y T) bool) {
	if len(out) != len(a)+len(b) {
		panic("par: Merge output length mismatch")
	}
	p = p.get()
	mergeRec(p, nil, a, b, out, less, p.tun().Merge, false)
}

// Merge merges on the default pool.
func Merge[T any](a, b, out []T, less func(x, y T) bool) {
	MergeOn(nil, a, b, out, less)
}

// mergeFrame carries the arguments of a forked mergeRec branch plus a
// run closure pre-bound to the frame. The closure is built once per
// frame lifetime and the frame recycles through the arena's typed
// free-lists, so forking costs no allocation after warm-up (the former
// closure-per-fork scheme cost ~31 allocs/op on a 1M-element merge).
type mergeFrame[T any] struct {
	p         *Pool
	a, b, out []T
	less      func(x, y T) bool
	cutoff    int
	flip      bool
	run       func(*lane)
}

func newMergeFrame[T any](p *Pool, a, b, out []T, less func(x, y T) bool, cutoff int, flip bool) *mergeFrame[T] {
	var fr *mergeFrame[T]
	if v := framePool[mergeFrame[T]](&p.arena).Get(); v != nil {
		fr = v.(*mergeFrame[T])
	} else {
		fr = new(mergeFrame[T])
		fr.run = fr.exec
	}
	fr.p, fr.a, fr.b, fr.out, fr.less, fr.cutoff, fr.flip = p, a, b, out, less, cutoff, flip
	return fr
}

func (fr *mergeFrame[T]) exec(l *lane) {
	mergeRec(fr.p, l, fr.a, fr.b, fr.out, fr.less, fr.cutoff, fr.flip)
}

// release returns the frame to its free-list. Only safe once the forked
// branch has been joined: the join's pending count drops after exec
// returns, so a caller past p.wait holds the only reference.
func (fr *mergeFrame[T]) release() {
	a := &fr.p.arena
	fr.p, fr.a, fr.b, fr.out, fr.less = nil, nil, nil, nil, nil
	framePool[mergeFrame[T]](a).Put(fr)
}

// mergeRec merges a and b into out. With flip false, elements of a win
// ties (a is logically first); with flip true, elements of b win. One
// function with a flip bit — rather than the former mergeRec /
// mergeRecFlipped pair — lets the forked branch be a recycled frame.
func mergeRec[T any](p *Pool, l *lane, a, b, out []T, less func(x, y T) bool, cutoff int, flip bool) {
	if len(a) < len(b) {
		// Keep a as the physically larger side so the split point is
		// well-defined; swapping sides flips the tie-break.
		a, b = b, a
		flip = !flip
	}
	if len(b) == 0 {
		copy(out, a)
		return
	}
	if p.lanes == nil || len(a)+len(b) <= cutoff {
		if flip {
			seqMerge(b, a, out, less)
		} else {
			seqMerge(a, b, out, less)
		}
		return
	}
	i := len(a) / 2
	var j int
	if flip {
		// First j with a[i] < b[j]: b elements tied with a[i] land to its
		// left (b is logically first here).
		j = sort.Search(len(b), func(j int) bool { return less(a[i], b[j]) })
	} else {
		// First j with b[j] >= a[i]: b elements tied with a[i] land to its
		// right, keeping a-before-b stability.
		j = sort.Search(len(b), func(j int) bool { return !less(b[j], a[i]) })
	}
	out[i+j] = a[i]
	fr := newMergeFrame(p, a[i+1:], b[j:], out[i+j+1:], less, cutoff, flip)
	jn := p.getJoin()
	if p.fork(l, jn, task{lf: fr.run}) {
		mergeRec(p, l, a[:i], b[:j], out[:i+j], less, cutoff, flip)
		p.wait(l, jn)
	} else {
		mergeRec(p, l, a[:i], b[:j], out[:i+j], less, cutoff, flip)
		fr.exec(l)
	}
	p.putJoin(jn)
	fr.release()
}

func seqMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortStableOn sorts xs in place, stably, on the pool p, using parallel
// merge sort with sequential sorted runs at the leaves. It is the parallel
// sorting primitive of Lemma 12 / §3.1.1 (stable sort by vertex, sort by
// time). The ping-pong buffer is borrowed from the pool's arena, so
// steady-state sorts do not pay an O(n) allocation per call.
func SortStableOn[T any](p *Pool, xs []T, less func(x, y T) bool) {
	p = p.get()
	n := len(xs)
	if n <= 1 {
		return
	}
	t := p.tun()
	bufp := Slice[T](&p.arena, n)
	if p.lanes == nil || n <= t.Sort {
		seqSortStable(xs, *bufp, less)
	} else {
		sortInto(p, nil, xs, *bufp, less, true, t.Sort, t.Merge)
	}
	PutSlice(&p.arena, bufp)
}

// SortStable sorts on the default pool.
func SortStable[T any](xs []T, less func(x, y T) bool) {
	SortStableOn(nil, xs, less)
}

// sortFrame is the recycled fork descriptor for sortInto's right
// branch; see mergeFrame.
type sortFrame[T any] struct {
	p        *Pool
	src, dst []T
	less     func(x, y T) bool
	inSrc    bool
	sortCut  int
	mergeCut int
	run      func(*lane)
}

func newSortFrame[T any](p *Pool, src, dst []T, less func(x, y T) bool, inSrc bool, sortCut, mergeCut int) *sortFrame[T] {
	var fr *sortFrame[T]
	if v := framePool[sortFrame[T]](&p.arena).Get(); v != nil {
		fr = v.(*sortFrame[T])
	} else {
		fr = new(sortFrame[T])
		fr.run = fr.exec
	}
	fr.p, fr.src, fr.dst, fr.less = p, src, dst, less
	fr.inSrc, fr.sortCut, fr.mergeCut = inSrc, sortCut, mergeCut
	return fr
}

func (fr *sortFrame[T]) exec(l *lane) {
	sortInto(fr.p, l, fr.src, fr.dst, fr.less, fr.inSrc, fr.sortCut, fr.mergeCut)
}

func (fr *sortFrame[T]) release() {
	a := &fr.p.arena
	fr.p, fr.src, fr.dst, fr.less = nil, nil, nil, nil
	framePool[sortFrame[T]](a).Put(fr)
}

// sortInto sorts src; if inSrc is true the result ends in src, else in dst.
func sortInto[T any](p *Pool, l *lane, src, dst []T, less func(x, y T) bool, inSrc bool, sortCut, mergeCut int) {
	n := len(src)
	if n <= sortCut {
		seqSortStable(src, dst, less)
		if !inSrc {
			copy(dst, src)
		}
		return
	}
	mid := n / 2
	if p.lanes == nil || p.closed.Load() {
		sortInto(p, l, src[:mid], dst[:mid], less, !inSrc, sortCut, mergeCut)
		sortInto(p, l, src[mid:], dst[mid:], less, !inSrc, sortCut, mergeCut)
	} else {
		fr := newSortFrame(p, src[mid:], dst[mid:], less, !inSrc, sortCut, mergeCut)
		jn := p.getJoin()
		if p.fork(l, jn, task{lf: fr.run}) {
			sortInto(p, l, src[:mid], dst[:mid], less, !inSrc, sortCut, mergeCut)
			p.wait(l, jn)
		} else {
			sortInto(p, l, src[:mid], dst[:mid], less, !inSrc, sortCut, mergeCut)
			fr.exec(l)
		}
		p.putJoin(jn)
		fr.release()
	}
	if inSrc {
		mergeRec(p, l, dst[:mid], dst[mid:], src, less, mergeCut, false)
	} else {
		mergeRec(p, l, src[:mid], src[mid:], dst, less, mergeCut, false)
	}
}

// seqSortStable is a reflection-free stable merge sort: insertion-sorted
// runs of 32 followed by bottom-up merges through buf. The result lands
// in xs.
func seqSortStable[T any](xs, buf []T, less func(x, y T) bool) {
	n := len(xs)
	const run = 32
	for lo := 0; lo < n; lo += run {
		hi := lo + run
		if hi > n {
			hi = n
		}
		for i := lo + 1; i < hi; i++ {
			x := xs[i]
			j := i - 1
			for j >= lo && less(x, xs[j]) {
				xs[j+1] = xs[j]
				j--
			}
			xs[j+1] = x
		}
	}
	src, dst := xs, buf
	for width := run; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			seqMerge(src[lo:mid], src[mid:hi], dst[lo:hi], less)
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}
