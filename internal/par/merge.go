package par

import "sort"

// MergeOn merges the sorted slices a and b into out (len(out) must be
// len(a)+len(b)) on the pool p, using the strict-weak ordering less. The
// merge is stable: on ties, elements of a precede elements of b. Large
// merges split in parallel by the classic median/binary-search scheme
// (Cole-style merging, the primitive the paper cites for its O(log) depth
// merge [7]); the recursion is lane-aware, so whichever lane executes a
// branch — owner or thief — pushes its sub-branches onto its own deque.
// Merge/SortStable are package functions rather than Pool methods because
// Go does not allow generic methods.
func MergeOn[T any](p *Pool, a, b, out []T, less func(x, y T) bool) {
	if len(out) != len(a)+len(b) {
		panic("par: Merge output length mismatch")
	}
	p = p.get()
	mergeRec(p, nil, a, b, out, less, p.tun().Merge)
}

// Merge merges on the default pool.
func Merge[T any](a, b, out []T, less func(x, y T) bool) {
	MergeOn(nil, a, b, out, less)
}

func mergeRec[T any](p *Pool, l *lane, a, b, out []T, less func(x, y T) bool, cutoff int) {
	if len(a) < len(b) {
		// Keep a as the larger side so the split point is well-defined,
		// flipping the tie-breaking so stability (a before b) is preserved.
		mergeRecFlipped(p, l, b, a, out, less, cutoff)
		return
	}
	if len(b) == 0 {
		copy(out, a)
		return
	}
	if p.lanes == nil || len(a)+len(b) <= cutoff {
		seqMerge(a, b, out, less)
		return
	}
	i := len(a) / 2
	// First j with b[j] >= a[i], so that b elements tied with a[i] land to
	// its right, keeping a-before-b stability.
	j := sort.Search(len(b), func(j int) bool { return !less(b[j], a[i]) })
	out[i+j] = a[i]
	p.do2Lane(l,
		func(l *lane) { mergeRec(p, l, a[:i], b[:j], out[:i+j], less, cutoff) },
		func(l *lane) { mergeRec(p, l, a[i+1:], b[j:], out[i+j+1:], less, cutoff) },
	)
}

// mergeRecFlipped merges with a as the physically larger slice but with b
// logically first for tie-breaking (elements of b win ties).
func mergeRecFlipped[T any](p *Pool, l *lane, a, b, out []T, less func(x, y T) bool, cutoff int) {
	if len(a) < len(b) {
		// Re-balance: mergeRec(b, a) keeps b's elements first on ties,
		// which is exactly this function's contract.
		mergeRec(p, l, b, a, out, less, cutoff)
		return
	}
	if len(b) == 0 {
		copy(out, a)
		return
	}
	if p.lanes == nil || len(a)+len(b) <= cutoff {
		seqMerge(b, a, out, less)
		return
	}
	i := len(a) / 2
	// First j with a[i] < b[j], so that b elements tied with a[i] land to
	// its left (b is logically first here).
	j := sort.Search(len(b), func(j int) bool { return less(a[i], b[j]) })
	out[i+j] = a[i]
	p.do2Lane(l,
		func(l *lane) { mergeRecFlipped(p, l, a[:i], b[:j], out[:i+j], less, cutoff) },
		func(l *lane) { mergeRecFlipped(p, l, a[i+1:], b[j:], out[i+j+1:], less, cutoff) },
	)
}

func seqMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortStableOn sorts xs in place, stably, on the pool p, using parallel
// merge sort with sequential sorted runs at the leaves. It is the parallel
// sorting primitive of Lemma 12 / §3.1.1 (stable sort by vertex, sort by
// time).
func SortStableOn[T any](p *Pool, xs []T, less func(x, y T) bool) {
	p = p.get()
	n := len(xs)
	if n <= 1 {
		return
	}
	t := p.tun()
	buf := make([]T, n)
	if p.lanes == nil || n <= t.Sort {
		seqSortStable(xs, buf, less)
		return
	}
	sortInto(p, nil, xs, buf, less, true, t.Sort, t.Merge)
}

// SortStable sorts on the default pool.
func SortStable[T any](xs []T, less func(x, y T) bool) {
	SortStableOn(nil, xs, less)
}

// sortInto sorts src; if inSrc is true the result ends in src, else in dst.
func sortInto[T any](p *Pool, l *lane, src, dst []T, less func(x, y T) bool, inSrc bool, sortCut, mergeCut int) {
	n := len(src)
	if n <= sortCut {
		seqSortStable(src, dst, less)
		if !inSrc {
			copy(dst, src)
		}
		return
	}
	mid := n / 2
	p.do2Lane(l,
		func(l *lane) { sortInto(p, l, src[:mid], dst[:mid], less, !inSrc, sortCut, mergeCut) },
		func(l *lane) { sortInto(p, l, src[mid:], dst[mid:], less, !inSrc, sortCut, mergeCut) },
	)
	if inSrc {
		mergeRec(p, l, dst[:mid], dst[mid:], src, less, mergeCut)
	} else {
		mergeRec(p, l, src[:mid], src[mid:], dst, less, mergeCut)
	}
}

// seqSortStable is a reflection-free stable merge sort: insertion-sorted
// runs of 32 followed by bottom-up merges through buf. The result lands
// in xs.
func seqSortStable[T any](xs, buf []T, less func(x, y T) bool) {
	n := len(xs)
	const run = 32
	for lo := 0; lo < n; lo += run {
		hi := lo + run
		if hi > n {
			hi = n
		}
		for i := lo + 1; i < hi; i++ {
			x := xs[i]
			j := i - 1
			for j >= lo && less(x, xs[j]) {
				xs[j+1] = xs[j]
				j--
			}
			xs[j+1] = x
		}
	}
	src, dst := xs, buf
	for width := run; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			seqMerge(src[lo:mid], src[mid:hi], dst[lo:hi], less)
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}
