package par

import (
	"math/rand"
	"testing"
)

// TestMergeSkewedSizes is the regression for the unbalanced-recursion
// panic: when one side of the merge drains much faster than the other,
// the recursion must keep re-balancing instead of indexing into an empty
// slice.
func TestMergeSkewedSizes(t *testing.T) {
	for _, tc := range []struct{ na, nb int }{
		{0, 10 * Grain}, {10 * Grain, 0}, {1, 10 * Grain}, {10 * Grain, 1},
		{17, 9 * Grain}, {9 * Grain, 17},
	} {
		a := make([]kv, tc.na)
		b := make([]kv, tc.nb)
		for i := range a {
			a[i] = kv{key: 2 * i, seq: i}
		}
		for i := range b {
			b[i] = kv{key: 2*i + 1, seq: tc.na + i}
		}
		out := make([]kv, tc.na+tc.nb)
		Merge(a, b, out, func(x, y kv) bool { return x.key < y.key })
		for i := 1; i < len(out); i++ {
			if out[i].key < out[i-1].key {
				t.Fatalf("na=%d nb=%d: not sorted at %d", tc.na, tc.nb, i)
			}
		}
	}
}

// TestMergeAllEqualKeys drives the split point to one extreme on every
// level, the worst case for balance, and checks stability survives.
func TestMergeAllEqualKeys(t *testing.T) {
	n := 12 * Grain
	a := make([]kv, n)
	b := make([]kv, n/3)
	for i := range a {
		a[i] = kv{key: 7, seq: i}
	}
	for i := range b {
		b[i] = kv{key: 7, seq: n + i}
	}
	out := make([]kv, len(a)+len(b))
	Merge(a, b, out, func(x, y kv) bool { return x.key < y.key })
	for i := 1; i < len(out); i++ {
		if out[i].seq < out[i-1].seq {
			t.Fatalf("stability broken at %d: %d before %d", i, out[i-1].seq, out[i].seq)
		}
	}
}

// TestSortStableConstantAndSkewedKeys mirrors the workload that exposed
// the bug: sorting large arrays whose keys are heavily clustered (as the
// by-segment sort of expanded path operations is).
func TestSortStableConstantAndSkewedKeys(t *testing.T) {
	n := 30 * Grain
	xs := make([]kv, n)
	rng := rand.New(rand.NewSource(4))
	for i := range xs {
		key := 0
		if rng.Intn(20) == 0 {
			key = rng.Intn(3)
		}
		xs[i] = kv{key: key, seq: i}
	}
	SortStable(xs, func(x, y kv) bool { return x.key < y.key })
	for i := 1; i < n; i++ {
		if xs[i].key < xs[i-1].key || (xs[i].key == xs[i-1].key && xs[i].seq < xs[i-1].seq) {
			t.Fatalf("order broken at %d", i)
		}
	}
}
