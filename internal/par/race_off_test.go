//go:build !race

package par

// raceEnabled reports whether the race detector is active. Steady-state
// allocation bounds skip under -race: the race-mode sync.Pool
// deliberately drops a fraction of Puts, so pooled joins, chunk runs, and
// arena buffers legitimately re-allocate there.
const raceEnabled = false
