package par

// ExclusiveSum replaces xs with its exclusive prefix sums and returns the
// total: out[i] = xs[0] + ... + xs[i-1]. It writes into out, which must
// have len(xs); xs and out may alias.
func (p *Pool) ExclusiveSum(xs, out []int64) int64 {
	p = p.get()
	n := len(xs)
	if n == 0 {
		return 0
	}
	if p.lanes == nil || n <= p.tun().Scan {
		return seqExclusive(xs, out)
	}
	chunks := p.numChunks(n)
	size := (n + chunks - 1) / chunks
	sp, sums := p.getScratch(chunks)
	defer p.putScratch(sp)
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			var s int64
			for _, x := range xs[lo:hi] {
				s += x
			}
			sums[c] = s
		}
	})
	var total int64
	for c := 0; c < chunks; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			acc := sums[c]
			for i := lo; i < hi; i++ {
				x := xs[i]
				out[i] = acc
				acc += x
			}
		}
	})
	return total
}

// InclusiveSum writes out[i] = xs[0] + ... + xs[i] and returns the total.
// xs and out may alias.
func (p *Pool) InclusiveSum(xs, out []int64) int64 {
	p = p.get()
	n := len(xs)
	if n == 0 {
		return 0
	}
	if p.lanes == nil || n <= p.tun().Scan {
		var acc int64
		for i, x := range xs {
			acc += x
			out[i] = acc
		}
		return acc
	}
	chunks := p.numChunks(n)
	size := (n + chunks - 1) / chunks
	sp, sums := p.getScratch(chunks)
	defer p.putScratch(sp)
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			var s int64
			for _, x := range xs[lo:hi] {
				s += x
			}
			sums[c] = s
		}
	})
	var total int64
	for c := 0; c < chunks; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			acc := sums[c]
			for i := lo; i < hi; i++ {
				acc += xs[i]
				out[i] = acc
			}
		}
	})
	return total
}

func seqExclusive(xs, out []int64) int64 {
	var acc int64
	for i, x := range xs {
		out[i] = acc
		acc += x
	}
	return acc
}

// SegmentedBroadcast propagates values forward through a mixed sequence:
// present[i] reports whether position i carries a value in vals; after the
// call, out[i] holds the value at the nearest position j <= i with
// present[j], or initial if there is none. It implements the "each ∆-value
// broadcasts itself to all following queries" step of paper §3.2 as a scan
// with the "last defined value" semigroup. vals and out may alias.
func (p *Pool) SegmentedBroadcast(present []bool, vals, out []int64, initial int64) {
	p = p.get()
	n := len(present)
	if n == 0 {
		return
	}
	if p.lanes == nil || n <= p.tun().Scan {
		acc := initial
		for i := 0; i < n; i++ {
			if present[i] {
				acc = vals[i]
			}
			out[i] = acc
		}
		return
	}
	chunks := p.numChunks(n)
	size := (n + chunks - 1) / chunks
	lp, last := p.getScratch(chunks)
	cp, carry := p.getScratch(chunks)
	defer p.putScratch(lp)
	defer p.putScratch(cp)
	hp := p.arena.Bool(chunks)
	defer p.arena.PutBool(hp)
	has := *hp
	clear(has)
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			for i := hi - 1; i >= lo; i-- {
				if present[i] {
					last[c], has[c] = vals[i], true
					break
				}
			}
		}
	})
	acc, defined := initial, true
	for c := 0; c < chunks; c++ {
		if defined {
			carry[c] = acc
		} else {
			carry[c] = initial
		}
		if has[c] {
			acc, defined = last[c], true
		}
	}
	p.ForChunk(chunks, 1, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			acc := carry[c]
			for i := lo; i < hi; i++ {
				if present[i] {
					acc = vals[i]
				}
				out[i] = acc
			}
		}
	})
}

// ExclusiveSum scans on the default pool.
func ExclusiveSum(xs, out []int64) int64 { return Default().ExclusiveSum(xs, out) }

// InclusiveSum scans on the default pool.
func InclusiveSum(xs, out []int64) int64 { return Default().InclusiveSum(xs, out) }

// SegmentedBroadcast broadcasts on the default pool.
func SegmentedBroadcast(present []bool, vals, out []int64, initial int64) {
	Default().SegmentedBroadcast(present, vals, out, initial)
}
