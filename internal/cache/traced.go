package cache

import (
	"repro/internal/minprefix"
)

// This file contains the two traced Minimum Prefix executors compared in
// experiment E7 (Theorem 14):
//
//   - TracedOneByOne: the classic difference tree (§2.3) executing one
//     operation at a time. Each operation walks a root path, scattering
//     accesses across the ∆ array: ~k·log n misses once the tree exceeds
//     the cache.
//   - TracedSweep: the monotone batched sweep (§3.1–3.2, executed
//     sequentially as in the cache-oblivious algorithm [10]): every level
//     is a handful of streaming passes, so the structure costs
//     O((k log n)/B) misses, cache-obliviously.
//
// Both executors return the query results, and tests pin them against the
// naive oracle — the traces are measurements of real executions, not
// synthetic approximations.

// TracedOneByOne runs ops one at a time on the §2.3 structure, reporting
// every ∆-cell and leaf-cell access to sim.
func TracedOneByOne(w0 []int64, ops []minprefix.Op, sim *Sim) []int64 {
	s := minprefix.NewSeq(w0)
	s.SetTrace(func(cell int) { sim.Access(int64(cell)) })
	return s.Run(ops)
}

// region is a bump-allocated address range backed by a real slice; every
// read and write is reported to the simulator.
type region struct {
	base int64
	w    []int64
	sim  *Sim
}

type allocator struct {
	next int64
	sim  *Sim
}

func (a *allocator) alloc(words int64) *region {
	r := &region{base: a.next, w: make([]int64, words), sim: a.sim}
	a.next += words
	return r
}

func (r *region) rd(i int64) int64 {
	r.sim.Access(r.base + i)
	return r.w[i]
}

func (r *region) wr(i int64, v int64) {
	r.sim.Access(r.base + i)
	r.w[i] = v
}

// Record widths (in words) for the streamed arrays.
const (
	updW = 4 // time, x, phi, fromRight
	qryW = 4 // time, d, origin, fromRight
	resW = 2 // origin, value
)

// span delimits one node's records inside the level arrays (metadata kept
// in a region as well: 5 words per node).
const spanW = 5 // id, u0, u1, q0, q1

// TracedSweep runs the whole batch with the monotone level-by-level sweep,
// reporting every touched word to sim, and returns per-op query results.
func TracedSweep(w0 []int64, ops []minprefix.Op, sim *Sim) []int64 {
	n := len(w0)
	if n == 0 {
		panic("cache: empty list")
	}
	k := len(ops)
	res := make([]int64, k)
	if k == 0 {
		return res
	}
	a := &allocator{sim: sim}
	if n == 1 {
		r := a.alloc(int64(2 * k))
		acc := w0[0]
		for i, op := range ops {
			r.wr(int64(2*i), op.X)
			if op.Query {
				res[i] = acc
				r.wr(int64(2*i+1), acc)
			} else {
				acc += op.X
				r.wr(int64(2*i+1), 1)
			}
		}
		return res
	}
	pad := 1
	for pad < n {
		pad *= 2
	}
	// min0 heap, built level by level (streaming reads and writes).
	min0 := a.alloc(int64(2 * pad))
	for i := 0; i < pad; i++ {
		if i < n {
			min0.wr(int64(pad+i), w0[i])
		} else {
			min0.wr(int64(pad+i), minprefix.PadInf)
		}
	}
	for b := int64(pad - 1); b >= 1; b-- {
		l, r := min0.rd(2*b), min0.rd(2*b+1)
		if r < l {
			l = r
		}
		min0.wr(b, l)
	}
	// Initial op records: (key=leaf, time, x|0, isQuery) sorted by leaf
	// with a traced bottom-up merge sort (stable: ties keep time order).
	const initW = 4
	init := a.alloc(int64(initW * k))
	for i, op := range ops {
		q := int64(0)
		if op.Query {
			q = 1
		}
		init.wr(int64(initW*i), int64(op.Leaf))
		init.wr(int64(initW*i+1), int64(i))
		init.wr(int64(initW*i+2), op.X)
		init.wr(int64(initW*i+3), q)
	}
	init = mergeSortTraced(a, init, k, initW, 0)
	// Split into the leaf-level upd/qry arrays plus node spans.
	upd := a.alloc(int64(updW * k))
	qry := a.alloc(int64(qryW * k))
	spans := a.alloc(int64(spanW * k))
	var nu, nq, ns int64
	for i := 0; i < k; {
		leaf := init.rd(int64(initW * i))
		id := int64(pad) + leaf
		fromRight := id & 1
		u0, q0 := nu, nq
		for ; i < k && init.rd(int64(initW*i)) == leaf; i++ {
			t := init.rd(int64(initW*i + 1))
			x := init.rd(int64(initW*i + 2))
			if init.rd(int64(initW*i+3)) == 1 {
				qry.wr(qryW*nq, t)
				qry.wr(qryW*nq+1, 0) // d
				qry.wr(qryW*nq+2, t) // origin
				qry.wr(qryW*nq+3, fromRight)
				nq++
			} else {
				upd.wr(updW*nu, t)
				upd.wr(updW*nu+1, x)
				upd.wr(updW*nu+2, x) // phi = x at the leaf
				upd.wr(updW*nu+3, fromRight)
				nu++
			}
		}
		spans.wr(spanW*ns, id)
		spans.wr(spanW*ns+1, u0)
		spans.wr(spanW*ns+2, nu)
		spans.wr(spanW*ns+3, q0)
		spans.wr(spanW*ns+4, nq)
		ns++
	}
	// Bottom-up sweep; the root additionally streams out (origin, value).
	resStream := a.alloc(int64(resW * k))
	var nres int64
	for ns > 1 || spans.rd(0) != 1 {
		nextUpd := a.alloc(int64(updW * k))
		nextQry := a.alloc(int64(qryW * k))
		nextSpans := a.alloc(int64(spanW * k))
		var mu, mq, ms int64
		for si := int64(0); si < ns; {
			id := spans.rd(spanW * si)
			parent := id / 2
			// Child ranges (left may be absent, right may be absent).
			var lu0, lu1, lq0, lq1, ru0, ru1, rq0, rq1 int64
			if id&1 == 0 {
				lu0, lu1 = spans.rd(spanW*si+1), spans.rd(spanW*si+2)
				lq0, lq1 = spans.rd(spanW*si+3), spans.rd(spanW*si+4)
				si++
				if si < ns && spans.rd(spanW*si)/2 == parent {
					ru0, ru1 = spans.rd(spanW*si+1), spans.rd(spanW*si+2)
					rq0, rq1 = spans.rd(spanW*si+3), spans.rd(spanW*si+4)
					si++
				}
			} else {
				ru0, ru1 = spans.rd(spanW*si+1), spans.rd(spanW*si+2)
				rq0, rq1 = spans.rd(spanW*si+3), spans.rd(spanW*si+4)
				si++
			}
			u0, q0 := mu, mq
			mu, mq, nres = sweepNode(parent, min0, upd, qry, nextUpd, nextQry,
				lu0, lu1, lq0, lq1, ru0, ru1, rq0, rq1, mu, mq,
				resStream, nres, parent == 1)
			nextSpans.wr(spanW*ms, parent)
			nextSpans.wr(spanW*ms+1, u0)
			nextSpans.wr(spanW*ms+2, mu)
			nextSpans.wr(spanW*ms+3, q0)
			nextSpans.wr(spanW*ms+4, mq)
			ms++
		}
		upd, qry, spans, ns = nextUpd, nextQry, nextSpans, ms
	}
	// Results arrive in root time order; sort by origin and stream out.
	sorted := mergeSortTraced(a, resStream, int(nres), resW, 0)
	for i := int64(0); i < nres; i++ {
		origin := sorted.rd(resW * i)
		res[origin] = sorted.rd(resW*i + 1)
	}
	return res
}

// sweepNode merges a node's child streams in time order while maintaining
// ∆ incrementally — the monotone execution of §3.1–3.2: one streaming
// pass per node per level.
func sweepNode(parent int64, min0, upd, qry, outU, outQ *region,
	lu0, lu1, lq0, lq1, ru0, ru1, rq0, rq1 int64, mu, mq int64,
	resStream *region, nres int64, isRoot bool) (int64, int64, int64) {

	delta := min0.rd(2*parent+1) - min0.rd(2*parent)
	minRoot := int64(0)
	if isRoot {
		minRoot = min0.rd(parent)
	}
	parentRight := parent & 1
	peekTime := func(r *region, pos, end, width int64) int64 {
		if pos >= end {
			return int64(1) << 62
		}
		return r.rd(width * pos)
	}
	for lu0 < lu1 || ru0 < ru1 || lq0 < lq1 || rq0 < rq1 {
		tlu := peekTime(upd, lu0, lu1, updW)
		tru := peekTime(upd, ru0, ru1, updW)
		tlq := peekTime(qry, lq0, lq1, qryW)
		trq := peekTime(qry, rq0, rq1, qryW)
		// Unique times: pick the global minimum.
		switch {
		case tlu <= tru && tlu <= tlq && tlu <= trq:
			x := upd.rd(updW*lu0 + 1)
			phi := upd.rd(updW*lu0 + 2)
			lu0++
			phiL, phiR := phi, int64(0)
			prev := delta
			delta = prev + phiR - phiL
			out := minprefix.PhiTransition(phiL, phiR, prev, delta)
			outU.wr(updW*mu, tlu)
			outU.wr(updW*mu+1, x)
			outU.wr(updW*mu+2, out)
			outU.wr(updW*mu+3, parentRight)
			mu++
			minRoot += out
		case tru <= tlq && tru <= trq:
			x := upd.rd(updW*ru0 + 1)
			phi := upd.rd(updW*ru0 + 2)
			ru0++
			phiL, phiR := x, phi
			prev := delta
			delta = prev + phiR - phiL
			out := minprefix.PhiTransition(phiL, phiR, prev, delta)
			outU.wr(updW*mu, tru)
			outU.wr(updW*mu+1, x)
			outU.wr(updW*mu+2, out)
			outU.wr(updW*mu+3, parentRight)
			mu++
			minRoot += out
		default:
			var t, d, origin int64
			var fromRight bool
			if tlq <= trq {
				t = tlq
				d = qry.rd(qryW*lq0 + 1)
				origin = qry.rd(qryW*lq0 + 2)
				fromRight = qry.rd(qryW*lq0+3) == 1
				lq0++
			} else {
				t = trq
				d = qry.rd(qryW*rq0 + 1)
				origin = qry.rd(qryW*rq0 + 2)
				fromRight = qry.rd(qryW*rq0+3) == 1
				rq0++
			}
			d = minprefix.DTransition(d, fromRight, delta)
			outQ.wr(qryW*mq, t)
			outQ.wr(qryW*mq+1, d)
			outQ.wr(qryW*mq+2, origin)
			outQ.wr(qryW*mq+3, parentRight)
			mq++
			if isRoot {
				resStream.wr(resW*nres, origin)
				resStream.wr(resW*nres+1, d+minRoot)
				nres++
			}
		}
	}
	return mu, mq, nres
}

// mergeSortTraced stably sorts recs of the given width by the key at
// keyOff, using bottom-up merge passes between two regions (each pass
// streams the whole array once — the cache-friendly sort the analysis
// assumes).
func mergeSortTraced(a *allocator, src *region, count, width int, keyOff int64) *region {
	if count <= 1 {
		return src
	}
	dst := a.alloc(int64(width * count))
	w := int64(width)
	for run := 1; run < count; run *= 2 {
		for lo := 0; lo < count; lo += 2 * run {
			mid := lo + run
			hi := lo + 2*run
			if mid > count {
				mid = count
			}
			if hi > count {
				hi = count
			}
			i, j, o := int64(lo), int64(mid), int64(lo)
			for i < int64(mid) || j < int64(hi) {
				var takeLeft bool
				switch {
				case i >= int64(mid):
					takeLeft = false
				case j >= int64(hi):
					takeLeft = true
				default:
					takeLeft = src.rd(w*i+keyOff) <= src.rd(w*j+keyOff)
				}
				from := j
				if takeLeft {
					from = i
				}
				for f := int64(0); f < w; f++ {
					dst.wr(w*o+f, src.rd(w*from+f))
				}
				if takeLeft {
					i++
				} else {
					j++
				}
				o++
			}
		}
		src, dst = dst, src
	}
	return src
}
