package cache

import (
	"math/rand"
	"testing"

	"repro/internal/minprefix"
)

func TestSimBasics(t *testing.T) {
	s := NewSim(4, 16) // 4 lines of 4 words
	for i := int64(0); i < 16; i++ {
		s.Access(i)
	}
	if s.Misses() != 4 {
		t.Fatalf("sequential scan misses=%d want 4", s.Misses())
	}
	// Everything resident: re-scan hits.
	for i := int64(0); i < 16; i++ {
		s.Access(i)
	}
	if s.Misses() != 4 {
		t.Fatalf("resident re-scan missed: %d", s.Misses())
	}
	// Touch a 5th line: evicts LRU line 0.
	s.Access(100)
	s.Access(0)
	if s.Misses() != 6 {
		t.Fatalf("eviction accounting: %d want 6", s.Misses())
	}
	if s.Accesses() != 34 {
		t.Fatalf("accesses=%d want 34", s.Accesses())
	}
	s.Reset()
	if s.Misses() != 0 || s.Accesses() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSimLRUOrder(t *testing.T) {
	s := NewSim(1, 2) // two single-word lines
	s.Access(1)
	s.Access(2)
	s.Access(1) // refresh 1: LRU is 2
	s.Access(3) // evicts 2
	s.Access(1) // hit
	if s.Misses() != 3 {
		t.Fatalf("misses=%d want 3", s.Misses())
	}
	s.Access(2) // miss again
	if s.Misses() != 4 {
		t.Fatalf("misses=%d want 4", s.Misses())
	}
}

func randomBatch(n, k int, seed int64) []minprefix.Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]minprefix.Op, k)
	for i := range ops {
		leaf := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = minprefix.MinOp(leaf)
		} else {
			ops[i] = minprefix.AddOp(leaf, int64(rng.Intn(21)-10))
		}
	}
	return ops
}

func TestTracedExecutorsAreCorrect(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 1 + int(seed*37)%200
		k := 1 + int(seed*91)%400
		rng := rand.New(rand.NewSource(seed + 100))
		w0 := make([]int64, n)
		for i := range w0 {
			w0[i] = int64(rng.Intn(100) - 50)
		}
		ops := randomBatch(n, k, seed)
		want := minprefix.NewNaive(w0).Run(ops)
		simA := NewSim(8, 1024)
		gotA := TracedOneByOne(w0, ops, simA)
		simB := NewSim(8, 1024)
		gotB := TracedSweep(w0, ops, simB)
		for i := range ops {
			if !ops[i].Query {
				continue
			}
			if gotA[i] != want[i] {
				t.Fatalf("seed %d: one-by-one op %d: %d want %d", seed, i, gotA[i], want[i])
			}
			if gotB[i] != want[i] {
				t.Fatalf("seed %d: sweep op %d: %d want %d", seed, i, gotB[i], want[i])
			}
		}
		if simA.Misses() == 0 || simB.Misses() == 0 {
			t.Fatal("trace produced no misses")
		}
	}
}

// TestSweepBeatsOneByOne is the shape of Theorem 14: once the structure
// exceeds the cache, the batched sweep incurs far fewer misses per
// operation than one-at-a-time execution. The advantage is Θ(B) divided
// by the sweep's constant stream width (each record is a few words and
// each level makes a few passes), so it shows at wide cache lines with a
// cache much smaller than the structure.
func TestSweepBeatsOneByOne(t *testing.T) {
	n, k := 1<<14, 1<<14
	w0 := make([]int64, n)
	ops := randomBatch(n, k, 5)
	B, M := 128, 1024
	simA := NewSim(B, M)
	TracedOneByOne(w0, ops, simA)
	simB := NewSim(B, M)
	TracedSweep(w0, ops, simB)
	if simB.Misses()*2 > simA.Misses() {
		t.Fatalf("sweep %d misses vs one-by-one %d: expected ≥2x gap",
			simB.Misses(), simA.Misses())
	}
}

// TestSweepScalesWithB: doubling the line size roughly halves the sweep's
// misses (the 1/B factor in Theorem 14); the one-by-one walker barely
// benefits because its accesses are scattered.
func TestSweepScalesWithB(t *testing.T) {
	n, k := 1<<13, 1<<13
	w0 := make([]int64, n)
	ops := randomBatch(n, k, 9)
	missesAt := func(B int) int64 {
		sim := NewSim(B, 64*B)
		TracedSweep(w0, ops, sim)
		return sim.Misses()
	}
	m8, m32 := missesAt(8), missesAt(32)
	ratio := float64(m8) / float64(m32)
	if ratio < 2.4 {
		t.Fatalf("B scaling ratio %.2f (misses %d @B=8 vs %d @B=32): want ≳4x", ratio, m8, m32)
	}
}
