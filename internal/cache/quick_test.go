package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refLRU is an obviously correct LRU cache used to cross-check the
// intrusive-list simulator.
type refLRU struct {
	capacity int
	order    []int64 // most recent first
	misses   int64
}

func (r *refLRU) access(line int64) {
	for i, l := range r.order {
		if l == line {
			copy(r.order[1:i+1], r.order[:i])
			r.order[0] = line
			return
		}
	}
	r.misses++
	r.order = append([]int64{line}, r.order...)
	if len(r.order) > r.capacity {
		r.order = r.order[:r.capacity]
	}
}

// TestQuickSimMatchesReference: for arbitrary access strings and
// geometries, the simulator's miss count matches the reference LRU.
func TestQuickSimMatchesReference(t *testing.T) {
	property := func(raw []uint16, bExp, linesExp uint8) bool {
		b := 1 << (bExp % 5)          // 1..16 words per line
		lines := 1 + int(linesExp%15) // 1..15 lines
		sim := NewSim(b, b*lines)
		ref := &refLRU{capacity: lines}
		for _, a := range raw {
			addr := int64(a % 4096)
			sim.Access(addr)
			ref.access(addr / int64(b))
		}
		return sim.Misses() == ref.misses
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSimGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 8}, {8, 4}, {-1, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry B=%d M=%d accepted", bad[0], bad[1])
				}
			}()
			NewSim(bad[0], bad[1])
		}()
	}
}
