// Package cache provides the ideal-cache model of paper §5 (Frigo et
// al. [9]): a fully associative cache of M words with lines of B words and
// LRU replacement, plus traced executors for the Minimum Prefix structure
// so the cache-oblivious claims of Theorem 14 can be measured rather than
// assumed. The parameters B and M are replay-time inputs only — the traced
// algorithms never see them, which is the definition of cache-oblivious.
package cache

import "fmt"

// Sim is an ideal-cache simulator: fully associative, LRU replacement
// (within a factor of two of the optimal replacement the model assumes),
// capacity M words, line size B words.
type Sim struct {
	b, lines int
	accesses int64
	misses   int64
	// LRU over resident lines: map + intrusive doubly linked list.
	where map[int64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	line       int64
	prev, next *lruNode
}

// NewSim builds a simulator with line size b words and capacity m words
// (at least one line).
func NewSim(b, m int) *Sim {
	if b < 1 || m < b {
		panic(fmt.Sprintf("cache: invalid geometry B=%d M=%d", b, m))
	}
	return &Sim{b: b, lines: m / b, where: make(map[int64]*lruNode)}
}

// Access touches one word address.
func (s *Sim) Access(addr int64) {
	s.accesses++
	line := addr / int64(s.b)
	if n, ok := s.where[line]; ok {
		s.toFront(n)
		return
	}
	s.misses++
	n := &lruNode{line: line}
	s.where[line] = n
	s.pushFront(n)
	if len(s.where) > s.lines {
		ev := s.tail
		s.unlink(ev)
		delete(s.where, ev.line)
	}
}

func (s *Sim) pushFront(n *lruNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *Sim) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
}

func (s *Sim) toFront(n *lruNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

// Misses returns the number of cache misses so far.
func (s *Sim) Misses() int64 { return s.misses }

// Accesses returns the number of word accesses so far.
func (s *Sim) Accesses() int64 { return s.accesses }

// Reset clears the cache and the counters.
func (s *Sim) Reset() {
	s.accesses, s.misses = 0, 0
	s.where = make(map[int64]*lruNode)
	s.head, s.tail = nil, nil
}
