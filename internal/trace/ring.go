package trace

import (
	"sync"
	"time"
)

// Ring is a bounded in-process buffer of finished traces: the service's
// trace store. When full, adding a trace evicts the oldest. A nil *Ring
// is valid and discards everything, so tracing can be disabled by simply
// not wiring a ring.
type Ring struct {
	mu    sync.Mutex
	buf   []*Trace // ring storage; nil slots while filling
	next  int      // next write position
	total int64    // traces ever added
	byID  map[string]*Trace
}

// NewRing returns a ring retaining up to capacity finished traces
// (capacity < 1 means 256).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 256
	}
	return &Ring{buf: make([]*Trace, capacity), byID: make(map[string]*Trace)}
}

// Add stores a finished trace, evicting the oldest past capacity. Re-added
// IDs replace their lookup entry (the ring keeps both copies until the
// older ages out).
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil && r.byID[old.ID] == old {
		delete(r.byID, old.ID)
	}
	r.buf[r.next] = t
	r.byID[t.ID] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// Get returns the trace with the given ID, if it is still retained.
func (r *Ring) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Len reports how many traces are currently retained; Total how many were
// ever added (the difference is what the ring has evicted).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// Total reports how many traces were ever added.
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Filter selects traces for List. The zero Filter matches everything.
type Filter struct {
	// Graph, when non-empty, matches traces whose root span carries a
	// "graph" attribute equal to it.
	Graph string
	// MinDuration drops traces shorter than it.
	MinDuration time.Duration
	// Limit caps the result count (0 means 100).
	Limit int
}

// List returns retained traces matching f, newest first.
func (r *Ring) List(f Filter) []*Trace {
	if r == nil {
		return nil
	}
	if f.Limit <= 0 {
		f.Limit = 100
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, min(f.Limit, len(r.byID)))
	n := len(r.buf)
	for i := 0; i < n && len(out) < f.Limit; i++ {
		// Walk backwards from the most recent write position.
		t := r.buf[((r.next-1-i)%n+n)%n]
		if t == nil {
			break
		}
		if r.byID[t.ID] != t {
			continue // superseded by a re-added ID
		}
		if f.Graph != "" && t.RootAttr("graph") != f.Graph {
			continue
		}
		if f.MinDuration > 0 && time.Duration(t.Duration) < f.MinDuration {
			continue
		}
		out = append(out, t)
	}
	return out
}
