package trace

import "testing"

// BenchmarkSpanDisabled guards the disabled-path contract: with no
// recorder attached, creating, annotating, and ending a span must be a
// few branches and zero allocations, so tracing seams can stay threaded
// through the solver's hot loops unconditionally.
func BenchmarkSpanDisabled(b *testing.B) {
	b.ReportAllocs()
	var sp SpanRef
	for i := 0; i < b.N; i++ {
		c := sp.Child("round")
		c.AttrInt("i", int64(i))
		c.End()
	}
}

// BenchmarkSpanEnabled sizes the enabled-path cost (mutex + append) so
// regressions in the "tracing on" overhead are visible too.
func BenchmarkSpanEnabled(b *testing.B) {
	b.ReportAllocs()
	r := NewRecorder("bench", b.N+2, nil)
	root := r.Start("job")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := root.Child("round")
		c.End()
	}
	b.StopTimer()
	root.End()
	r.Release()
}
