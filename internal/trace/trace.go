// Package trace is the solver's span tracer: a zero-dependency,
// allocation-light recorder of span trees that attributes one solve's wall
// clock to the places it was spent — HTTP request handling, scheduler
// queue wait, the solver's packing and scan phases, individual bough
// batches, and coarse fork-join regions of the executor pool.
//
// The design mirrors internal/progress: instrumentation is write-only for
// the solver (a recorder never feeds anything back into the computation,
// so attaching one cannot change a Result at any pool width), and the
// disabled path is free — the zero SpanRef is valid everywhere a span is
// accepted, and every operation on it is a nil check with no allocations,
// so library callers who do not trace pay nothing on the hot path (see
// BenchmarkSpanDisabled).
//
// A Recorder collects the spans of one trace (one job). Spans form a tree
// through parent indices; they may start and end concurrently from any
// goroutine. Completion is reference-counted: every party that appends
// spans after creation (an HTTP handler attaching a request span to a
// job's trace) takes a Hold and Releases it when done, and the trace is
// published to its sink exactly once, when the last hold is released.
package trace

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings; use
// SpanRef.AttrInt for integers (it formats only when a recorder is
// attached, so disabled call sites never pay for the conversion).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. Parent is the index of the
// enclosing span in the trace's Spans slice, -1 for a root.
type Span struct {
	ID       int32     `json:"id"`
	Parent   int32     `json:"parent"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration int64     `json:"duration_ns"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// Trace is a finished span tree. Spans appear in start order; span 0 is
// the root. Dropped counts spans discarded past the recorder's cap.
type Trace struct {
	ID       string    `json:"id"`
	Start    time.Time `json:"start"`
	Duration int64     `json:"duration_ns"`
	Spans    []Span    `json:"spans"`
	Dropped  int       `json:"dropped_spans,omitempty"`
}

// RootAttr returns the value of the named attribute on the root span, or
// "" if absent. List filters use it (graph ID, class) without the trace
// format having to know the service's vocabulary.
func (t *Trace) RootAttr(key string) string {
	if len(t.Spans) == 0 {
		return ""
	}
	for _, a := range t.Spans[0].Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// DefaultMaxSpans bounds a trace's span count when NewRecorder is given 0:
// enough for every packing round and bough batch of a large solve, small
// enough that a pathological one (a million boost runs) cannot hold the
// process hostage.
const DefaultMaxSpans = 4096

// Recorder accumulates one trace. Create with NewRecorder, append spans
// via SpanRef.Child (or Start for roots), and Release the creator's hold
// when the traced work is done. All methods are safe for concurrent use
// and all are valid on a nil *Recorder (recording nothing).
type Recorder struct {
	id       string
	maxSpans int
	onFinish func(*Trace)

	holds    atomic.Int32
	finished atomic.Bool

	mu      sync.Mutex
	start   time.Time
	spans   []Span
	dropped int
}

// NewRecorder starts a trace with the given ID. maxSpans caps the spans
// retained (0 means DefaultMaxSpans; spans past the cap are counted in
// Trace.Dropped). onFinish, if non-nil, receives the finished trace when
// the last hold is released; it runs on whichever goroutine released
// last. The recorder starts with one hold, owned by the creator.
func NewRecorder(id string, maxSpans int, onFinish func(*Trace)) *Recorder {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	r := &Recorder{id: id, maxSpans: maxSpans, onFinish: onFinish}
	r.holds.Store(1)
	return r
}

// Hold registers an additional party appending spans to the trace. It
// reports false — and registers nothing — on a nil or already-finished
// recorder; callers must skip their span work when it fails, because the
// trace has already been published.
func (r *Recorder) Hold() bool {
	if r == nil {
		return false
	}
	for {
		h := r.holds.Load()
		if h <= 0 {
			return false
		}
		if r.holds.CompareAndSwap(h, h+1) {
			return true
		}
	}
}

// Release drops one hold. The trace is finished and handed to onFinish
// when the last hold is released: open spans are closed at the finish
// instant and the trace duration is the root span's. Safe on nil.
func (r *Recorder) Release() {
	if r == nil {
		return
	}
	if r.holds.Add(-1) != 0 {
		return
	}
	if !r.finished.CompareAndSwap(false, true) {
		return
	}
	now := time.Now()
	r.mu.Lock()
	for i := range r.spans {
		if r.spans[i].Duration < 0 {
			r.spans[i].Duration = now.Sub(r.spans[i].Start).Nanoseconds()
		}
	}
	t := &Trace{ID: r.id, Start: r.start, Spans: r.spans, Dropped: r.dropped}
	if len(t.Spans) > 0 {
		t.Duration = t.Spans[0].Duration
	}
	r.mu.Unlock()
	if r.onFinish != nil {
		r.onFinish(t)
	}
}

// Start begins a root-level span (parent -1). Most spans should be
// children of an existing span; traces normally have exactly one root.
func (r *Recorder) Start(name string) SpanRef {
	return r.startSpan(-1, name)
}

func (r *Recorder) startSpan(parent int32, name string) SpanRef {
	if r == nil || r.finished.Load() {
		return SpanRef{}
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.maxSpans {
		r.dropped++
		return SpanRef{}
	}
	if len(r.spans) == 0 {
		r.start = now
	}
	id := int32(len(r.spans))
	r.spans = append(r.spans, Span{ID: id, Parent: parent, Name: name, Start: now, Duration: -1})
	return SpanRef{r: r, idx: id}
}

// SpanRef is a cheap handle on one span of a recorder: a value type safe
// to copy and pass through solver layers. The zero SpanRef is valid and
// means "tracing disabled" — every method on it is a no-op costing one
// branch and zero allocations.
type SpanRef struct {
	r   *Recorder
	idx int32
}

// Active reports whether the ref records anything. Call sites that build
// per-span closures (fork observers) gate on it so the disabled path
// allocates nothing.
func (s SpanRef) Active() bool { return s.r != nil }

// Recorder returns the owning recorder (nil for the zero ref), for
// Hold/Release by parties attaching spans across goroutine boundaries.
func (s SpanRef) Recorder() *Recorder { return s.r }

// Child starts a span nested under s. On the zero ref it returns the zero
// ref, so whole subtrees of an untraced call are free.
func (s SpanRef) Child(name string) SpanRef {
	if s.r == nil {
		return SpanRef{}
	}
	return s.r.startSpan(s.idx, name)
}

// End closes the span at the current instant. Ending a span twice keeps
// the first end; spans never ended are closed when the trace finishes.
func (s SpanRef) End() {
	if s.r == nil || s.r.finished.Load() {
		return
	}
	now := time.Now()
	s.r.mu.Lock()
	sp := &s.r.spans[s.idx]
	if sp.Duration < 0 {
		sp.Duration = now.Sub(sp.Start).Nanoseconds()
	}
	s.r.mu.Unlock()
}

// Attr annotates the span. It returns s so annotations chain.
func (s SpanRef) Attr(key, value string) SpanRef {
	if s.r == nil || s.r.finished.Load() {
		return s
	}
	s.r.mu.Lock()
	sp := &s.r.spans[s.idx]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
	s.r.mu.Unlock()
	return s
}

// AttrInt annotates the span with an integer, formatting it only when a
// recorder is attached.
func (s SpanRef) AttrInt(key string, v int64) SpanRef {
	if s.r == nil {
		return s
	}
	return s.Attr(key, strconv.FormatInt(v, 10))
}
