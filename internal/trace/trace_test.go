package trace

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderSpanTree(t *testing.T) {
	var got *Trace
	r := NewRecorder("t-1", 0, func(tr *Trace) { got = tr })
	root := r.Start("job")
	root.Attr("graph", "sha256:abc").AttrInt("seed", 42)
	q := root.Child("queue-wait")
	q.End()
	run := root.Child("run")
	pack := run.Child("packing")
	pack.AttrInt("rounds", 24)
	pack.End()
	run.End()
	root.End()
	r.Release()

	if got == nil {
		t.Fatal("onFinish never ran")
	}
	if got.ID != "t-1" {
		t.Fatalf("trace id = %q", got.ID)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(got.Spans))
	}
	wantParents := map[string]string{"job": "", "queue-wait": "job", "run": "job", "packing": "run"}
	byID := map[int32]Span{}
	for _, sp := range got.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range got.Spans {
		wantParent := wantParents[sp.Name]
		if wantParent == "" {
			if sp.Parent != -1 {
				t.Fatalf("span %q parent = %d, want -1", sp.Name, sp.Parent)
			}
			continue
		}
		if byID[sp.Parent].Name != wantParent {
			t.Fatalf("span %q parent = %q, want %q", sp.Name, byID[sp.Parent].Name, wantParent)
		}
		if sp.Duration < 0 {
			t.Fatalf("span %q left open (duration %d)", sp.Name, sp.Duration)
		}
	}
	if got.RootAttr("graph") != "sha256:abc" || got.RootAttr("seed") != "42" {
		t.Fatalf("root attrs = %+v", got.Spans[0].Attrs)
	}
	if got.RootAttr("missing") != "" {
		t.Fatal("missing attr should be empty")
	}
	if got.Duration != got.Spans[0].Duration {
		t.Fatalf("trace duration %d != root span duration %d", got.Duration, got.Spans[0].Duration)
	}
}

func TestRecorderOpenSpansClosedAtFinish(t *testing.T) {
	var got *Trace
	r := NewRecorder("t-2", 0, func(tr *Trace) { got = tr })
	root := r.Start("job")
	_ = root.Child("never-ended")
	r.Release()
	for _, sp := range got.Spans {
		if sp.Duration < 0 {
			t.Fatalf("span %q still open after finish", sp.Name)
		}
	}
}

func TestRecorderHoldsGatePublish(t *testing.T) {
	finished := 0
	r := NewRecorder("t-3", 0, func(*Trace) { finished++ })
	root := r.Start("job")
	if !r.Hold() {
		t.Fatal("Hold on live recorder failed")
	}
	root.End()
	r.Release() // creator's hold: one remains
	if finished != 0 {
		t.Fatal("published before last hold released")
	}
	r.Release()
	if finished != 1 {
		t.Fatalf("published %d times, want 1", finished)
	}
	if r.Hold() {
		t.Fatal("Hold on finished recorder succeeded")
	}
	// Span operations after finish are no-ops, not corruption.
	sp := root.Child("late")
	sp.Attr("k", "v")
	sp.End()
	if finished != 1 {
		t.Fatalf("late span ops re-published: %d", finished)
	}
}

func TestRecorderSpanCap(t *testing.T) {
	var got *Trace
	r := NewRecorder("t-4", 4, func(tr *Trace) { got = tr })
	root := r.Start("job")
	for i := 0; i < 10; i++ {
		c := root.Child("s")
		c.End()
	}
	r.Release()
	if len(got.Spans) != 4 {
		t.Fatalf("retained %d spans, want cap 4", len(got.Spans))
	}
	if got.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", got.Dropped)
	}
}

func TestRecorderConcurrentSpans(t *testing.T) {
	var got *Trace
	r := NewRecorder("t-5", 0, func(tr *Trace) { got = tr })
	root := r.Start("job")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				sp := root.Child("work")
				sp.AttrInt("lane", int64(i))
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	r.Release()
	if len(got.Spans) != 1+8*50 {
		t.Fatalf("span count = %d, want %d", len(got.Spans), 1+8*50)
	}
}

func TestZeroSpanRefIsInert(t *testing.T) {
	var sp SpanRef
	if sp.Active() {
		t.Fatal("zero SpanRef claims active")
	}
	if sp.Recorder() != nil {
		t.Fatal("zero SpanRef has a recorder")
	}
	c := sp.Child("x")
	c.Attr("k", "v").AttrInt("n", 1)
	c.End()
	if c.Active() {
		t.Fatal("child of zero SpanRef is active")
	}
	var r *Recorder
	if r.Hold() {
		t.Fatal("nil recorder Hold succeeded")
	}
	r.Release() // must not panic
	if got := r.Start("x"); got.Active() {
		t.Fatal("nil recorder produced a live span")
	}
}

// TestDisabledPathAllocates0 is the acceptance guard in test form: the
// whole span API on the zero SpanRef must not allocate, so an untraced
// solve pays nothing per would-be span.
func TestDisabledPathAllocates0(t *testing.T) {
	var sp SpanRef
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child("packing")
		c.AttrInt("rounds", 24)
		c.Attr("phase", "packing")
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per span, want 0", allocs)
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	ring := NewRing(3)
	mk := func(id string, d time.Duration, graph string) *Trace {
		return &Trace{ID: id, Duration: d.Nanoseconds(), Spans: []Span{
			{ID: 0, Parent: -1, Name: "job", Attrs: []Attr{{Key: "graph", Value: graph}}},
		}}
	}
	ring.Add(mk("a", time.Millisecond, "g1"))
	ring.Add(mk("b", time.Second, "g1"))
	ring.Add(mk("c", time.Minute, "g2"))
	ring.Add(mk("d", time.Hour, "g2")) // evicts a
	if _, ok := ring.Get("a"); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if tr, ok := ring.Get("c"); !ok || tr.ID != "c" {
		t.Fatal("retained trace not retrievable")
	}
	if ring.Len() != 3 || ring.Total() != 4 {
		t.Fatalf("len=%d total=%d", ring.Len(), ring.Total())
	}

	all := ring.List(Filter{})
	if len(all) != 3 || all[0].ID != "d" || all[2].ID != "b" {
		t.Fatalf("List order = %v", ids(all))
	}
	g2 := ring.List(Filter{Graph: "g2"})
	if len(g2) != 2 {
		t.Fatalf("graph filter returned %v", ids(g2))
	}
	slow := ring.List(Filter{MinDuration: time.Minute})
	if len(slow) != 2 || slow[0].ID != "d" || slow[1].ID != "c" {
		t.Fatalf("min-duration filter returned %v", ids(slow))
	}
	limited := ring.List(Filter{Limit: 1})
	if len(limited) != 1 || limited[0].ID != "d" {
		t.Fatalf("limit filter returned %v", ids(limited))
	}
}

func TestNilRingIsInert(t *testing.T) {
	var ring *Ring
	ring.Add(&Trace{ID: "x"})
	if _, ok := ring.Get("x"); ok {
		t.Fatal("nil ring retained a trace")
	}
	if ring.List(Filter{}) != nil || ring.Len() != 0 || ring.Total() != 0 {
		t.Fatal("nil ring not empty")
	}
}

func ids(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}
