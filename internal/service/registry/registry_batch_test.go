package registry

import (
	"testing"

	parcut "repro"
	"repro/internal/service/store"
)

// TestPutGraphBatchGroupCommits: the registry's batch path commits every
// new graph of the batch through the store's group commit — two fsync
// barriers for the whole batch — and resolves dedup against the registry,
// the disk, and earlier items of the same batch.
func TestPutGraphBatchGroupCommits(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	r := New(0, st)

	pre := parcut.RandomGraph(10, 20, 9, 1)
	preInfo, _, err := r.PutGraph(pre)
	if err != nil {
		t.Fatal(err)
	}

	gs := []*parcut.Graph{
		parcut.RandomGraph(10, 20, 9, 2),
		pre, // known to the registry already
		parcut.RandomGraph(10, 20, 9, 3),
		parcut.RandomGraph(10, 20, 9, 2), // duplicate of item 0 within the batch
	}
	base := st.Stats().Syncs
	out := r.PutGraphBatch(gs)
	if got := st.Stats().Syncs - base; got != 2 {
		t.Fatalf("batch issued %d fsync barriers, want 2 (group commit)", got)
	}
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
	}
	if out[0].Existed || out[2].Existed {
		t.Fatalf("fresh items reported existed: %+v", out)
	}
	if !out[1].Existed || out[1].Info != preInfo {
		t.Fatalf("pre-registered item = %+v, want existed with info %+v", out[1], preInfo)
	}
	if !out[3].Existed || out[3].Info != out[0].Info {
		t.Fatalf("within-batch duplicate = %+v, want existed with item 0's info", out[3])
	}

	// Every committed graph answers Get and survives in the store.
	for _, br := range out {
		if _, _, err := r.Get(br.Info.ID); err != nil {
			t.Fatalf("Get(%s): %v", br.Info.ID, err)
		}
		if _, ok := st.Info(br.Info.ID); !ok {
			t.Fatalf("store missing %s after batch", br.Info.ID)
		}
	}
	if s := r.Stats(); s.Graphs != 3 || s.Dedups != 2 {
		t.Fatalf("stats = %+v, want 3 graphs, 2 dedups", s)
	}
}

// TestPutGraphBatchMemoryOnly: without a batch-capable backend the path
// degrades to per-item semantics with identical outcomes.
func TestPutGraphBatchMemoryOnly(t *testing.T) {
	r := New(0, nil)
	g := parcut.RandomGraph(10, 20, 9, 4)
	out := r.PutGraphBatch([]*parcut.Graph{g, g})
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("batch errors: %+v", out)
	}
	if out[0].Existed || !out[1].Existed {
		t.Fatalf("existed flags = %v/%v, want false/true", out[0].Existed, out[1].Existed)
	}
	if s := r.Stats(); s.Graphs != 1 {
		t.Fatalf("stats = %+v, want 1 graph", s)
	}
}
