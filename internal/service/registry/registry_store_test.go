package registry

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/service/store"
)

// openStore creates a disk store for registry tests.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestEvictedGraphReloadsFromStore: with a backend, LRU eviction drops
// only the resident bytes — the next Get faults the graph back in from
// disk, bit-identical, with no re-upload.
func TestEvictedGraphReloadsFromStore(t *testing.T) {
	st := openStore(t, t.TempDir())
	r := New(64, st) // two 2-edge graphs fit
	mk := func(w int64) Info {
		info, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, w}, {1, 2, w}})))
		if err != nil {
			t.Fatal(err)
		}
		return info
	}
	a, b, c := mk(1), mk(2), mk(3) // a is the LRU victim when c arrives
	s := r.Stats()
	if s.Graphs != 3 || s.Resident != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 known, 2 resident, 1 eviction", s)
	}

	// The evicted graph still answers: transparently reloaded from disk.
	g, info, err := r.Get(a.ID)
	if err != nil {
		t.Fatalf("Get(evicted): %v", err)
	}
	if info != a {
		t.Fatalf("info = %+v, want %+v", info, a)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if want := "p cut 3 2\ne 0 1 1\ne 1 2 1\n"; buf.String() != want {
		t.Fatalf("reloaded graph:\n%swant:\n%s", buf.String(), want)
	}
	s = r.Stats()
	if s.Loads != 1 || s.Evictions != 2 { // reloading a evicted the next victim
		t.Fatalf("stats after reload = %+v, want 1 load", s)
	}
	// b and c remain known (one of them on disk only now).
	for _, id := range []string{b.ID, c.ID} {
		if _, _, err := r.Get(id); err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
	}
}

// TestCorruptSegmentSurfacesCleanError: a bit-flipped byte on disk must
// turn into a load error from Get — never a silently different graph.
func TestCorruptSegmentSurfacesCleanError(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	r := New(64, st)
	info, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 5}, {1, 2, 7}})))
	if err != nil {
		t.Fatal(err)
	}
	// Evict it by filling the cache, then corrupt the segment under it.
	for w := int64(10); w < 13; w++ {
		if _, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, w}, {1, 2, w}}))); err != nil {
			t.Fatal(err)
		}
	}
	ent, ok := st.Info(info.ID)
	if !ok {
		t.Fatal("store lost the graph")
	}
	seg := filepath.Join(dir, "seg-000001.dat")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[ent.Off+2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o666); err != nil {
		t.Fatal(err)
	}

	_, _, err = r.Get(info.ID)
	if err == nil || !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("Get over corrupt segment: err = %v, want store.ErrCorrupt", err)
	}
	if s := r.Stats(); s.LoadErrors != 1 {
		t.Fatalf("stats = %+v, want 1 load error", s)
	}
}

// TestRestartRebuildsIndexFromStore: a fresh registry over an existing
// store knows every graph immediately (Info without loading) and serves
// them lazily.
func TestRestartRebuildsIndexFromStore(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	r := New(0, st)
	info, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 5}, {1, 2, 7}})))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	r2 := New(0, st2)
	s := r2.Stats()
	if s.Graphs != 1 || s.Resident != 0 {
		t.Fatalf("warm stats = %+v, want 1 known, 0 resident", s)
	}
	g, got, err := r2.Get(info.ID)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if got != info {
		t.Fatalf("info = %+v, want %+v", got, info)
	}
	if g.TotalWeight() != 12 {
		t.Fatalf("total weight = %d, want 12", g.TotalWeight())
	}
	if s := r2.Stats(); s.Loads != 1 || s.Resident != 1 {
		t.Fatalf("stats after lazy load = %+v", s)
	}
}

// TestDeleteRemovesMemoryAndDisk: Delete drops the resident bytes and
// the durable copy; the id is unknown even after a restart.
func TestDeleteRemovesMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	r := New(0, st)
	info, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 5}, {1, 2, 7}})))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := r.Delete(info.ID)
	if err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if _, _, err := r.Get(info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
	if ok, err := r.Delete(info.ID); err != nil || ok {
		t.Fatalf("second Delete: ok=%v err=%v", ok, err)
	}
	st.Close()

	st2 := openStore(t, dir)
	r2 := New(0, st2)
	if s := r2.Stats(); s.Graphs != 0 {
		t.Fatalf("deleted graph survived restart: %+v", s)
	}
	// Re-uploading after delete works (fresh durable copy).
	info2, existed, err := r2.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 5}, {1, 2, 7}})))
	if err != nil || existed || info2.ID != info.ID {
		t.Fatalf("re-upload: info=%+v existed=%v err=%v", info2, existed, err)
	}
}

// TestConcurrentGetsShareOneLoad: many Gets of the same evicted graph
// must coalesce into a single backend load.
func TestConcurrentGetsShareOneLoad(t *testing.T) {
	st := openStore(t, t.TempDir())
	r := New(32, st) // one 2-edge graph resident at a time
	mk := func(w int64) Info {
		info, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, w}, {1, 2, w}})))
		if err != nil {
			t.Fatal(err)
		}
		return info
	}
	a := mk(1)
	mk(2) // evicts a
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := r.Get(a.ID); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := r.Stats(); s.Loads < 1 || s.Loads > 2 {
		// One load, or two if a racing Get started before the first
		// installed the graph; 16 would mean no coalescing at all.
		t.Fatalf("stats = %+v, want coalesced loads", s)
	}
}

// TestDedupAfterEvictionMakesResident: uploading a graph whose entry is
// known but evicted re-installs the bytes from the upload instead of
// leaving a disk-only entry.
func TestDedupAfterEvictionMakesResident(t *testing.T) {
	st := openStore(t, t.TempDir())
	r := New(32, st)
	body := text(3, [][3]int64{{0, 1, 5}, {1, 2, 7}})
	info, _, err := r.Put(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 9}, {1, 2, 9}}))); err != nil {
		t.Fatal(err) // evicts the first graph
	}
	info2, existed, err := r.Put(strings.NewReader(body))
	if err != nil || !existed || info2 != info {
		t.Fatalf("re-upload of evicted graph: info=%+v existed=%v err=%v", info2, existed, err)
	}
	s := r.Stats()
	if s.Loads != 0 {
		t.Fatalf("re-upload should not hit the disk: %+v", s)
	}
	if _, _, err := r.Get(info.ID); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Loads != 0 {
		t.Fatalf("graph should be resident after dedup re-upload: %+v", s)
	}
}

// TestConcurrentPutDeleteGetHammer drives the same id through uploads,
// deletes, and reads from many goroutines. Under -race this exercises the
// placeholder serialization: a Put acknowledged as existed/created must
// never be silently erased by a racing Delete's tombstone (checked at the
// end: if the last settled operation was a Put, the graph must load).
func TestConcurrentPutDeleteGetHammer(t *testing.T) {
	st := openStore(t, t.TempDir())
	r := New(0, st)
	body := func() *strings.Reader {
		return strings.NewReader(text(3, [][3]int64{{0, 1, 5}, {1, 2, 7}}))
	}
	info, _, err := r.Put(body())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, _, err := r.Put(body()); err != nil {
					t.Errorf("Put: %v", err)
				}
				_, _, _ = r.Get(info.ID)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := r.Delete(info.ID); err != nil {
					t.Errorf("Delete: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	// Settle to a known state and verify both levels agree.
	if _, _, err := r.Put(body()); err != nil {
		t.Fatal(err)
	}
	g, _, err := r.Get(info.ID)
	if err != nil || g.TotalWeight() != 12 {
		t.Fatalf("final Get: g=%v err=%v", g, err)
	}
	if _, err := st.Get(info.ID); err != nil {
		t.Fatalf("store lost an acknowledged Put: %v", err)
	}
}
