// Package registry is the service layer's content-addressed graph store:
// upload a graph once, solve it many times. Graphs are identified by the
// SHA-256 of their canonical serialization — parcut.Graph.Canonical
// (endpoints ordered within each edge, edges sorted by (u, v, w))
// re-emitted in the package's DIMACS-like text format — so the same graph
// uploaded twice deduplicates to one entry even with different comments,
// whitespace, permuted edge order, swapped edge endpoints, or via a
// different input encoding. The canonical form is also what is stored, so
// every solve of a given ID sees the same edge order no matter which
// permutation was uploaded first. Memory is bounded: entries are evicted
// least-recently-used once the total edge bytes held exceed the
// configured capacity.
package registry

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	parcut "repro"
)

// edgeBytes is the in-memory cost of one stored edge: two int32 endpoints
// and an int64 weight. The eviction budget is measured in these.
const edgeBytes = 16

// IDPrefix tags registry identifiers so they are self-describing in URLs
// and logs.
const IDPrefix = "sha256:"

// Info describes a stored graph.
type Info struct {
	// ID is "sha256:" + hex digest of the canonical serialization.
	ID string
	// N and M are the vertex and edge counts.
	N, M int
	// Bytes is the entry's edge-byte cost counted against the capacity.
	Bytes int64
}

// Stats is a snapshot of the registry's counters.
type Stats struct {
	// Graphs and Bytes are the current entry count and total edge bytes.
	Graphs int
	Bytes  int64
	// Capacity is the configured edge-byte budget.
	Capacity int64
	// Hits counts Get calls that found their graph; Misses the rest.
	Hits, Misses int64
	// Dedups counts Put calls that matched an existing entry.
	Dedups int64
	// Evictions counts entries dropped to make room.
	Evictions int64
}

type entry struct {
	info Info
	g    *parcut.Graph
	elem *list.Element // position in the LRU list; value is the ID string
}

// Registry is a bounded, concurrency-safe graph store. The zero value is
// not usable; call New.
type Registry struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[string]*entry
	lru      *list.List // front = most recently used

	hits, misses, dedups, evictions atomic.Int64
}

// New returns a registry that holds at most capacity edge bytes (16 bytes
// per stored edge). A non-positive capacity means unbounded.
func New(capacity int64) *Registry {
	return &Registry{
		capacity: capacity,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
}

// Put parses the graph in the repository's text format (streaming — the
// body is never buffered whole), canonicalizes and hashes it, and stores
// it unless an identical graph is already present. It returns the entry's
// Info and whether the graph already existed.
func (r *Registry) Put(src io.Reader) (Info, bool, error) {
	g, err := parcut.ReadGraph(src)
	if err != nil {
		return Info{}, false, err
	}
	return r.PutGraph(g)
}

// PutGraph stores an already-parsed graph, deduplicating by content hash.
// The stored copy is the graph's canonical form, not the caller's edge
// order, so results for an ID are reproducible across permuted uploads.
func (r *Registry) PutGraph(g *parcut.Graph) (Info, bool, error) {
	g = g.Canonical()
	// Hash the canonical serialization as a stream; materializing it would
	// transiently cost hundreds of MB for graphs near the budget.
	h := sha256.New()
	if err := g.Write(h); err != nil {
		return Info{}, false, fmt.Errorf("registry: canonicalize: %v", err)
	}
	info := Info{
		ID:    IDPrefix + hex.EncodeToString(h.Sum(nil)),
		N:     g.N(),
		M:     g.M(),
		Bytes: int64(g.M()) * edgeBytes,
	}
	if r.capacity > 0 && info.Bytes > r.capacity {
		return Info{}, false, fmt.Errorf("registry: graph needs %d edge bytes, capacity is %d", info.Bytes, r.capacity)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[info.ID]; ok {
		r.lru.MoveToFront(e.elem)
		r.dedups.Add(1)
		return e.info, true, nil
	}
	e := &entry{info: info, g: g}
	e.elem = r.lru.PushFront(info.ID)
	r.entries[info.ID] = e
	r.bytes += info.Bytes
	r.evictLocked()
	return info, false, nil
}

// evictLocked drops least-recently-used entries until the budget holds.
// The newest entry is never evicted (Put rejects oversized graphs up
// front, so the loop always terminates with at least one entry left).
func (r *Registry) evictLocked() {
	if r.capacity <= 0 {
		return
	}
	for r.bytes > r.capacity && r.lru.Len() > 1 {
		back := r.lru.Back()
		id := back.Value.(string)
		e := r.entries[id]
		r.lru.Remove(back)
		delete(r.entries, id)
		r.bytes -= e.info.Bytes
		r.evictions.Add(1)
	}
}

// Get returns the graph stored under id, marking it most recently used.
// Solvers keep their own reference, so a graph evicted mid-solve stays
// alive until the job finishes.
func (r *Registry) Get(id string) (*parcut.Graph, Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		r.misses.Add(1)
		return nil, Info{}, false
	}
	r.lru.MoveToFront(e.elem)
	r.hits.Add(1)
	return e.g, e.info, true
}

// Stats returns a snapshot of the registry's state and counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	graphs, bytes := len(r.entries), r.bytes
	r.mu.Unlock()
	return Stats{
		Graphs:    graphs,
		Bytes:     bytes,
		Capacity:  r.capacity,
		Hits:      r.hits.Load(),
		Misses:    r.misses.Load(),
		Dedups:    r.dedups.Load(),
		Evictions: r.evictions.Load(),
	}
}
