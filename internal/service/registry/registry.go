// Package registry is the service layer's content-addressed graph store:
// upload a graph once, solve it many times. Graphs are identified by the
// SHA-256 of their canonical serialization — parcut.Graph.Canonical
// (endpoints ordered within each edge, edges sorted by (u, v, w))
// re-emitted in the package's DIMACS-like text format — so the same graph
// uploaded twice deduplicates to one entry even with different comments,
// whitespace, permuted edge order, swapped edge endpoints, or via a
// different input encoding. The canonical form is also what is stored, so
// every solve of a given ID sees the same edge order no matter which
// permutation was uploaded first.
//
// Memory is bounded: resident graphs are evicted least-recently-used once
// the total edge bytes held exceed the configured capacity. With a
// Backend attached (a disk store), the LRU becomes a cache over the
// durable copy: Put writes through to the backend before the graph
// becomes visible, eviction drops only the in-memory bytes (the entry
// stays known and its Info still answers), and Get faults evicted graphs
// back in transparently — concurrent Gets of the same evicted graph share
// one load. Delete removes both the resident bytes and the backend copy.
package registry

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	parcut "repro"
)

// edgeBytes is the in-memory cost of one stored edge: two int32 endpoints
// and an int64 weight. The eviction budget is measured in these.
const edgeBytes = 16

// IDPrefix tags registry identifiers so they are self-describing in URLs
// and logs.
const IDPrefix = "sha256:"

// ErrNotFound reports a Get or Delete of an unknown graph ID.
var ErrNotFound = errors.New("registry: graph not found")

// ErrStore tags errors that originate in the backend store rather than
// in the caller's input, so the API layer can answer 5xx instead of 4xx.
// The backend's own sentinel (e.g. store.ErrDiskFull) stays matchable
// through errors.Is.
var ErrStore = errors.New("registry: backend store failure")

// BatchBackend is optionally implemented by backends that can commit many
// graphs with one set of fsync barriers (the store's group commit).
// PutGraphBatch uses it when present and falls back to per-item Puts
// otherwise. The result slice aligns with ids; a batch error means
// nothing new was committed.
type BatchBackend interface {
	PutMany(ids []string, gs []*parcut.Graph) (existed []bool, err error)
}

// Backend is a durable second level under the in-memory LRU. Implemented
// by internal/service/store; all methods must be safe for concurrent use.
type Backend interface {
	// Put durably stores g's canonical form under id; storing an id the
	// backend already holds reports existed=true and writes nothing.
	Put(id string, g *parcut.Graph) (existed bool, err error)
	// Get loads and integrity-checks the graph stored under id.
	Get(id string) (*parcut.Graph, error)
	// Delete removes id, reporting whether it was present.
	Delete(id string) (bool, error)
	// Walk calls fn for every stored graph so a restart can rebuild the
	// registry index without loading graph bytes.
	Walk(fn func(id string, n, m int))
}

// Info describes a stored graph.
type Info struct {
	// ID is "sha256:" + hex digest of the canonical serialization.
	ID string
	// N and M are the vertex and edge counts.
	N, M int
	// Bytes is the entry's edge-byte cost counted against the capacity.
	Bytes int64
}

// Stats is a snapshot of the registry's counters.
type Stats struct {
	// Graphs counts every known graph, resident or not; Resident the
	// subset currently holding their edges in memory (without a backend
	// the two are equal). Bytes is the resident edge-byte total.
	Graphs, Resident int
	Bytes            int64
	// Capacity is the configured edge-byte budget.
	Capacity int64
	// Hits counts Get calls that found their graph (including ones served
	// by a backend load); Misses the rest.
	Hits, Misses int64
	// Dedups counts Put calls that matched an existing entry.
	Dedups int64
	// Evictions counts entries whose resident bytes were dropped to make
	// room.
	Evictions int64
	// Loads counts graphs faulted back in from the backend; LoadErrors
	// the backend loads that failed (I/O or integrity).
	Loads, LoadErrors int64
}

// entry is one known graph. g is nil while the graph is not resident
// (evicted to the backend); loading is non-nil while a backend load is in
// flight, and concurrent Gets wait on it instead of loading twice.
type entry struct {
	info    Info
	g       *parcut.Graph
	elem    *list.Element // position in the LRU list; nil when not resident
	loading chan struct{}
	// pending marks a PutGraph placeholder whose backend write has not
	// committed yet: invisible to Lookup (durability before visibility),
	// while read-through loads of committed graphs stay visible.
	pending bool
}

// Registry is a bounded, concurrency-safe graph store. The zero value is
// not usable; call New.
type Registry struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[string]*entry
	lru      *list.List // front = most recently used; resident entries only
	backend  Backend    // nil = memory-only

	hits, misses, dedups, evictions atomic.Int64
	loads, loadErrs                 atomic.Int64
}

// New returns a registry that holds at most capacity edge bytes (16 bytes
// per stored edge) in memory. A non-positive capacity means unbounded.
// A non-nil backend makes the registry a cache over that durable store:
// its existing graphs are indexed immediately (lazily loaded on first
// Get), writes go through to it, and eviction keeps the disk copy.
func New(capacity int64, backend Backend) *Registry {
	r := &Registry{
		capacity: capacity,
		entries:  make(map[string]*entry),
		lru:      list.New(),
		backend:  backend,
	}
	if backend != nil {
		backend.Walk(func(id string, n, m int) {
			r.entries[id] = &entry{info: Info{ID: id, N: n, M: m, Bytes: int64(m) * edgeBytes}}
		})
	}
	return r
}

// Put parses the graph in the repository's text format (streaming — the
// body is never buffered whole), canonicalizes and hashes it, and stores
// it unless an identical graph is already present. It returns the entry's
// Info and whether the graph already existed.
func (r *Registry) Put(src io.Reader) (Info, bool, error) {
	g, err := parcut.ReadGraph(src)
	if err != nil {
		return Info{}, false, err
	}
	return r.PutGraph(g)
}

// PutGraph stores an already-parsed graph, deduplicating by content hash.
// The stored copy is the graph's canonical form, not the caller's edge
// order, so results for an ID are reproducible across permuted uploads.
// With a backend, the graph is durable before PutGraph returns.
func (r *Registry) PutGraph(g *parcut.Graph) (Info, bool, error) {
	// Hash the canonical serialization as a stream; materializing it would
	// transiently cost hundreds of MB for graphs near the budget.
	g, info, err := r.hashGraph(g)
	if err != nil {
		return Info{}, false, err
	}

	r.mu.Lock()
	for {
		e, ok := r.entries[info.ID]
		if !ok {
			break
		}
		if e.loading != nil {
			// Another goroutine is writing this id to the backend (or
			// loading it); wait for the outcome rather than racing it.
			ch := e.loading
			r.mu.Unlock()
			<-ch
			r.mu.Lock()
			continue
		}
		r.dedups.Add(1)
		if e.elem != nil {
			r.lru.MoveToFront(e.elem)
		} else {
			// Known but evicted: the upload body just handed us the bytes a
			// future Get would otherwise fault in from disk — keep them.
			r.makeResidentLocked(e, g)
		}
		existing := e.info
		r.mu.Unlock()
		return existing, true, nil
	}
	if r.backend == nil {
		e := &entry{info: info, g: g}
		e.elem = r.lru.PushFront(info.ID)
		r.entries[info.ID] = e
		r.bytes += info.Bytes
		r.evictLocked()
		r.mu.Unlock()
		return info, false, nil
	}
	// Durability before visibility, without stalling the registry: a
	// placeholder (loading channel set) reserves the id while the backend
	// write — a segment write plus two fsyncs — runs outside the lock, so
	// concurrent Gets of other graphs never wait on this upload's disk
	// I/O. Concurrent operations on THIS id block on the channel above.
	e := &entry{info: info, loading: make(chan struct{}), pending: true}
	r.entries[info.ID] = e
	r.mu.Unlock()

	_, err = r.backend.Put(info.ID, g)

	r.mu.Lock()
	close(e.loading)
	e.loading = nil
	e.pending = false
	if err != nil {
		if r.entries[info.ID] == e {
			delete(r.entries, info.ID)
		}
		r.mu.Unlock()
		return Info{}, false, fmt.Errorf("store %s: %w", info.ID, errors.Join(ErrStore, err))
	}
	if r.entries[info.ID] == e && e.g == nil {
		r.makeResidentLocked(e, g)
	}
	r.mu.Unlock()
	return info, false, nil
}

// BatchResult is one item's outcome of PutGraphBatch, aligned with the
// input slice.
type BatchResult struct {
	Info    Info
	Existed bool
	Err     error
}

// GraphID computes the content-addressed registry ID g would be stored
// under — "sha256:" + hex digest of the canonical serialization — without
// storing anything. The cluster router uses it to place a graph on its
// owning node before (and instead of) a local Put; the ID it returns is
// bit-for-bit the one the owning node's registry will assign, because
// both hash the same canonical form.
func GraphID(g *parcut.Graph) (string, error) {
	h := sha256.New()
	if err := g.Canonical().Write(h); err != nil {
		return "", fmt.Errorf("registry: canonicalize: %v", err)
	}
	return IDPrefix + hex.EncodeToString(h.Sum(nil)), nil
}

// hashGraph canonicalizes g and computes its content-addressed Info.
func (r *Registry) hashGraph(g *parcut.Graph) (*parcut.Graph, Info, error) {
	g = g.Canonical()
	h := sha256.New()
	if err := g.Write(h); err != nil {
		return nil, Info{}, fmt.Errorf("registry: canonicalize: %v", err)
	}
	info := Info{
		ID:    IDPrefix + hex.EncodeToString(h.Sum(nil)),
		N:     g.N(),
		M:     g.M(),
		Bytes: int64(g.M()) * edgeBytes,
	}
	if r.capacity > 0 && info.Bytes > r.capacity {
		return nil, Info{}, fmt.Errorf("registry: graph needs %d edge bytes, capacity is %d", info.Bytes, r.capacity)
	}
	return g, info, nil
}

// PutGraphBatch stores many graphs at once. With a backend that supports
// group commit (BatchBackend — the disk store), all new graphs of the
// batch are made durable with two fsync barriers total instead of two
// per graph; without one it degrades to per-item PutGraph calls. Items
// succeed or fail independently except that a group-commit failure fails
// every new item of the batch (nothing was committed). Duplicates —
// against the registry, the backend, or earlier items of the same batch
// — report Existed.
func (r *Registry) PutGraphBatch(gs []*parcut.Graph) []BatchResult {
	out := make([]BatchResult, len(gs))
	bb, batchable := r.backend.(BatchBackend)
	if !batchable {
		for i, g := range gs {
			out[i].Info, out[i].Existed, out[i].Err = r.PutGraph(g)
		}
		return out
	}
	type item struct {
		g    *parcut.Graph
		info Info
	}
	items := make([]item, len(gs))
	for i, g := range gs {
		cg, info, err := r.hashGraph(g)
		if err != nil {
			out[i].Err = err
			continue
		}
		items[i] = item{g: cg, info: info}
	}
	// Classify under the lock: known ids resolve immediately, brand-new
	// ids get pending placeholders (durability before visibility, same
	// protocol as PutGraph), and ids with an upload or load already in
	// flight fall back to the singular path, which knows how to wait.
	var newIdx, fallback []int
	firstOf := make(map[string]int) // id -> index of the batch's first copy
	var dups []int
	placeholders := make(map[string]*entry)
	r.mu.Lock()
	for i := range items {
		if out[i].Err != nil || items[i].g == nil {
			continue
		}
		id := items[i].info.ID
		// A repeat of an id this batch already claimed must be checked
		// before the entries lookup: the first copy's placeholder is in
		// entries with loading set, and the loading branch below would
		// misroute the duplicate to the singular fallback (re-hashing the
		// graph and, on a failed group commit, committing it solo against
		// the all-or-nothing contract).
		if _, dup := firstOf[id]; dup {
			dups = append(dups, i)
			continue
		}
		if e, ok := r.entries[id]; ok {
			if e.loading != nil {
				fallback = append(fallback, i)
				continue
			}
			r.dedups.Add(1)
			if e.elem != nil {
				r.lru.MoveToFront(e.elem)
			} else {
				r.makeResidentLocked(e, items[i].g)
			}
			out[i].Info, out[i].Existed = e.info, true
			continue
		}
		firstOf[id] = i
		e := &entry{info: items[i].info, loading: make(chan struct{}), pending: true}
		r.entries[id] = e
		placeholders[id] = e
		newIdx = append(newIdx, i)
	}
	r.mu.Unlock()

	var batchErr error
	var existedB []bool
	if len(newIdx) > 0 {
		ids := make([]string, len(newIdx))
		graphs := make([]*parcut.Graph, len(newIdx))
		for k, i := range newIdx {
			ids[k] = items[i].info.ID
			graphs[k] = items[i].g
		}
		existedB, batchErr = bb.PutMany(ids, graphs)
	}

	r.mu.Lock()
	for k, i := range newIdx {
		id := items[i].info.ID
		e := placeholders[id]
		close(e.loading)
		e.loading = nil
		e.pending = false
		if batchErr != nil {
			if r.entries[id] == e {
				delete(r.entries, id)
			}
			out[i].Err = fmt.Errorf("store %s: %w", id, errors.Join(ErrStore, batchErr))
			continue
		}
		out[i].Info = items[i].info
		if existedB[k] {
			// The backend held it from before this registry's lifetime
			// (e.g. a restart recovered it to disk but the index entry was
			// deleted meanwhile) — a dedup from the caller's point of view.
			out[i].Existed = true
			r.dedups.Add(1)
		}
		if r.entries[id] == e && e.g == nil {
			r.makeResidentLocked(e, items[i].g)
		}
	}
	// Later copies of an id within the batch share the first copy's
	// outcome, as Existed (their content is durable iff the first commit
	// succeeded).
	for _, i := range dups {
		first := firstOf[items[i].info.ID]
		out[i] = out[first]
		if out[i].Err == nil {
			out[i].Existed = true
			r.dedups.Add(1)
		}
	}
	r.mu.Unlock()

	for _, i := range fallback {
		out[i].Info, out[i].Existed, out[i].Err = r.PutGraph(gs[i])
	}
	return out
}

// makeResidentLocked installs g as e's resident bytes and charges the
// budget. Caller holds r.mu; e must not already be resident.
func (r *Registry) makeResidentLocked(e *entry, g *parcut.Graph) {
	e.g = g
	e.elem = r.lru.PushFront(e.info.ID)
	r.bytes += e.info.Bytes
	r.evictLocked()
}

// evictLocked drops least-recently-used resident graphs until the budget
// holds. With a backend the entry survives — only the bytes leave memory;
// without one the entry is gone for good. The newest entry is never
// evicted (Put rejects oversized graphs up front, so the loop always
// terminates with at least one entry left).
func (r *Registry) evictLocked() {
	if r.capacity <= 0 {
		return
	}
	for r.bytes > r.capacity && r.lru.Len() > 1 {
		back := r.lru.Back()
		id := back.Value.(string)
		e := r.entries[id]
		r.lru.Remove(back)
		e.elem = nil
		e.g = nil
		if r.backend == nil {
			delete(r.entries, id)
		}
		r.bytes -= e.info.Bytes
		r.evictions.Add(1)
	}
}

// Get returns the graph stored under id, marking it most recently used.
// A known-but-evicted graph is loaded back from the backend (outside the
// registry lock; concurrent Gets of the same id share one load). Solvers
// keep their own reference, so a graph evicted mid-solve stays alive
// until the job finishes. The error is ErrNotFound for unknown ids, or
// the backend's load error (e.g. a CRC mismatch) verbatim-wrapped.
func (r *Registry) Get(id string) (*parcut.Graph, Info, error) {
	r.mu.Lock()
	var e *entry
	for {
		var ok bool
		e, ok = r.entries[id]
		if !ok {
			r.misses.Add(1)
			r.mu.Unlock()
			return nil, Info{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		if e.g != nil {
			if e.elem != nil {
				r.lru.MoveToFront(e.elem)
			}
			r.hits.Add(1)
			g, info := e.g, e.info
			r.mu.Unlock()
			return g, info, nil
		}
		if e.loading == nil {
			break // this goroutine performs the load
		}
		ch := e.loading
		r.mu.Unlock()
		<-ch
		r.mu.Lock()
	}
	ch := make(chan struct{})
	e.loading = ch
	info := e.info
	r.mu.Unlock()

	g, err := r.backend.Get(id)

	r.mu.Lock()
	e.loading = nil
	close(ch)
	if err != nil {
		r.loadErrs.Add(1)
		r.mu.Unlock()
		return nil, Info{}, fmt.Errorf("registry: load %s: %w", id, err)
	}
	r.loads.Add(1)
	r.hits.Add(1)
	// Re-check before installing: a concurrent Delete may have dropped the
	// entry, or a concurrent Put may have made it resident already. The
	// loaded graph is returned either way — the caller's lookup was valid.
	if cur, ok := r.entries[id]; ok && cur == e && e.g == nil {
		r.makeResidentLocked(e, g)
	}
	r.mu.Unlock()
	return g, info, nil
}

// Lookup returns the Info for a known graph without loading its bytes:
// the index keeps N/M/Bytes for evicted entries precisely so metadata
// reads never fault multi-MB graphs back into the LRU.
func (r *Registry) Lookup(id string) (Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok || e.pending {
		// A pending entry is an upload whose durable commit is still in
		// flight (and may yet fail); it must not be visible.
		return Info{}, false
	}
	return e.info, true
}

// Delete removes the graph from memory and, when a backend is attached,
// from disk. It reports whether the graph was known. In-flight solves
// holding the graph pointer are unaffected.
func (r *Registry) Delete(id string) (bool, error) {
	r.mu.Lock()
	var e *entry
	ok := false
	for {
		e, ok = r.entries[id]
		if !ok || e.loading == nil {
			break
		}
		// An upload or load of this id is in flight; let it settle first so
		// the delete has a definite before/after.
		ch := e.loading
		r.mu.Unlock()
		<-ch
		r.mu.Lock()
	}
	if ok {
		if e.elem != nil {
			r.lru.Remove(e.elem)
			r.bytes -= e.info.Bytes
			e.elem = nil
			e.g = nil
		}
		delete(r.entries, id)
	}
	if r.backend == nil {
		r.mu.Unlock()
		return ok, nil
	}
	// The backend delete happens under the lock: releasing it first would
	// let a concurrent PutGraph observe the store's still-present entry
	// (existed=true, nothing written) and acknowledge as durable an upload
	// the racing tombstone then erases from disk. Deletes are rare; the
	// brief stall is the price of that invariant.
	onDisk, err := r.backend.Delete(id)
	r.mu.Unlock()
	if err != nil {
		return ok || onDisk, fmt.Errorf("registry: delete %s: %w", id, err)
	}
	return ok || onDisk, nil
}

// Stats returns a snapshot of the registry's state and counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	graphs, resident, bytes := len(r.entries), r.lru.Len(), r.bytes
	r.mu.Unlock()
	return Stats{
		Graphs:     graphs,
		Resident:   resident,
		Bytes:      bytes,
		Capacity:   r.capacity,
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		Dedups:     r.dedups.Load(),
		Evictions:  r.evictions.Load(),
		Loads:      r.loads.Load(),
		LoadErrors: r.loadErrs.Load(),
	}
}
