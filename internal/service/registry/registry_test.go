package registry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	parcut "repro"
)

// text builds a graph upload body in the repository's format.
func text(n int, edges [][3]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cut %d %d\n", n, len(edges))
	for _, e := range edges {
		fmt.Fprintf(&b, "e %d %d %d\n", e[0], e[1], e[2])
	}
	return b.String()
}

func TestPutGetRoundTrip(t *testing.T) {
	r := New(0, nil)
	in := text(3, [][3]int64{{0, 1, 5}, {1, 2, 7}})
	info, existed, err := r.Put(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if existed {
		t.Fatal("fresh Put reported existed")
	}
	if !strings.HasPrefix(info.ID, IDPrefix) {
		t.Fatalf("ID %q lacks prefix %q", info.ID, IDPrefix)
	}
	if info.N != 3 || info.M != 2 || info.Bytes != 32 {
		t.Fatalf("info = %+v", info)
	}
	g, got, err := r.Get(info.ID)
	if err != nil || got.ID != info.ID {
		t.Fatalf("Get: err=%v info=%+v", err, got)
	}
	if g.TotalWeight() != 12 {
		t.Fatalf("stored graph total weight = %d, want 12", g.TotalWeight())
	}
}

func TestDedupAcrossFormattingDifferences(t *testing.T) {
	r := New(0, nil)
	a := "p cut 3 2\ne 0 1 5\ne 1 2 7\n"
	b := "c a comment\np cut 3 2\n\ne 0 1 5\ne 1 2 7\n"
	ia, _, err := r.Put(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	ib, existed, err := r.Put(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !existed || ia.ID != ib.ID {
		t.Fatalf("want dedup: existed=%v ids %q vs %q", existed, ia.ID, ib.ID)
	}
	if s := r.Stats(); s.Graphs != 1 || s.Dedups != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDistinctGraphsGetDistinctIDs(t *testing.T) {
	r := New(0, nil)
	ia, _, _ := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 5}})))
	ib, _, _ := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 6}})))
	if ia.ID == ib.ID {
		t.Fatalf("different graphs share ID %q", ia.ID)
	}
}

func TestLRUEvictionByEdgeBytes(t *testing.T) {
	// Each 2-edge graph costs 32 bytes; capacity 64 holds exactly two.
	r := New(64, nil)
	mk := func(w int64) Info {
		info, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, w}, {1, 2, w}})))
		if err != nil {
			t.Fatal(err)
		}
		return info
	}
	a, b := mk(1), mk(2)
	// Touch a so b becomes the eviction victim.
	if _, _, err := r.Get(a.ID); err != nil {
		t.Fatal("a missing before eviction")
	}
	c := mk(3)
	if _, _, err := r.Get(b.ID); err == nil {
		t.Fatal("b survived eviction")
	}
	for _, id := range []string{a.ID, c.ID} {
		if _, _, err := r.Get(id); err != nil {
			t.Fatalf("%s evicted, want kept: %v", id, err)
		}
	}
	s := r.Stats()
	if s.Graphs != 2 || s.Bytes != 64 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutRejectsOversizedGraph(t *testing.T) {
	r := New(16, nil) // one edge fits, two do not
	if _, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{0, 1, 1}, {1, 2, 1}}))); err == nil {
		t.Fatal("oversized Put succeeded")
	}
	if _, _, err := r.Put(strings.NewReader(text(2, [][3]int64{{0, 1, 1}}))); err != nil {
		t.Fatalf("exact-fit Put failed: %v", err)
	}
}

func TestPutRejectsMalformedInput(t *testing.T) {
	r := New(0, nil)
	for _, bad := range []string{"", "e 0 1 5\n", "p cut 2 1\ne 0 5 1\n"} {
		if _, _, err := r.Put(strings.NewReader(bad)); err == nil {
			t.Errorf("Put(%q) succeeded, want error", bad)
		}
	}
}

func TestPutGraphMatchesTextPut(t *testing.T) {
	r := New(0, nil)
	g := parcut.NewGraph(3)
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ia, _, err := r.PutGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ib, existed, err := r.Put(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !existed || ia.ID != ib.ID {
		t.Fatalf("PutGraph and Put disagree: %q vs %q (existed=%v)", ia.ID, ib.ID, existed)
	}
}

// TestDedupAcrossEdgePermutations: the package promises content dedup
// regardless of input encoding, so the same graph with permuted edge
// order — or swapped edge endpoints — must hash to the same ID.
func TestDedupAcrossEdgePermutations(t *testing.T) {
	r := New(0, nil)
	a := text(4, [][3]int64{{0, 1, 3}, {1, 2, 1}, {2, 3, 4}, {3, 0, 2}})
	b := text(4, [][3]int64{{2, 3, 4}, {3, 0, 2}, {0, 1, 3}, {1, 2, 1}}) // permuted
	c := text(4, [][3]int64{{1, 0, 3}, {2, 1, 1}, {3, 2, 4}, {0, 3, 2}}) // endpoints swapped
	ia, _, err := r.Put(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{b, c} {
		info, existed, err := r.Put(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if !existed || info.ID != ia.ID {
			t.Fatalf("permuted upload got id %q existed=%v, want dedup to %q", info.ID, existed, ia.ID)
		}
	}
	if s := r.Stats(); s.Graphs != 1 || s.Dedups != 2 {
		t.Fatalf("stats = %+v, want 1 graph, 2 dedups", s)
	}
}

// TestStoredGraphIsCanonical: whichever permutation arrives first, the
// stored graph (and hence every solve of this ID) sees canonical edge
// order, so results are reproducible across upload orders.
func TestStoredGraphIsCanonical(t *testing.T) {
	r := New(0, nil)
	info, _, err := r.Put(strings.NewReader(text(3, [][3]int64{{2, 1, 7}, {1, 0, 5}})))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := r.Get(info.ID)
	if err != nil {
		t.Fatal("stored graph missing")
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	want := "p cut 3 2\ne 0 1 5\ne 1 2 7\n"
	if buf.String() != want {
		t.Fatalf("stored serialization:\n%scanonical form:\n%s", buf.String(), want)
	}
}
