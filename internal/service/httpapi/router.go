package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	parcut "repro"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
)

// This file is the cluster router: the thin layer that makes any node
// able to accept any request. Graph-scoped routes are forwarded raw to
// the graph's owner (a byte-level proxy keeps response fidelity — cached
// flags, async job IDs, NDJSON streams — exactly what a client talking
// to the owner directly would see), uploads hash their payload to find
// the owner before storing anything, batch uploads partition across
// shards and merge in input order, and job routes fall back to peers
// when the ID is not local. Every wrapper collapses to its plain
// single-node handler when the server has no cluster, so single-node
// deployments pay one nil check per request.

// forwarded reports whether r already crossed the cluster once. Forwarded
// requests are always served locally: if two nodes disagree about
// ownership (config skew mid-rollout), the request degrades to a 404
// instead of bouncing between them forever.
func forwarded(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardedFromHeader) != ""
}

// submitterFor picks the submission path for a solve request: the routing
// submitter normally, the node-local scheduler when the request was
// already forwarded once (the forwarding node believed we own the graph;
// re-routing would risk a loop).
func (s *Server) submitterFor(r *http.Request) sched.Submitter {
	if s.cluster != nil && forwarded(r) {
		return s.local
	}
	return s.sub
}

// nodeName is this server's cluster identity ("" when single-node),
// stamped on responses so clients can see which shard served them.
func (s *Server) nodeName() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.Self()
}

// flushingWriter flushes after every write so proxied streams (NDJSON
// job events, incremental batch results) stay live through the extra hop.
type flushingWriter struct{ w http.ResponseWriter }

func (f flushingWriter) Write(b []byte) (int, error) {
	n, err := f.w.Write(b)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// proxyToPeer relays r to owner verbatim: same method, path, query, and
// body, plus the forwarding marker and the originating request ID (so the
// owner's trace carries the correlation ID the client saw). The response
// is streamed back byte-for-byte.
func (s *Server) proxyToPeer(w http.ResponseWriter, r *http.Request, owner string, maxBody int64) {
	var body []byte
	if r.Body != nil && r.ContentLength != 0 {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
				return
			}
			writeErr(w, http.StatusBadRequest, "read request body: %v", err)
			return
		}
		body = b
	}
	s.proxyToPeerBody(w, r, owner, body)
}

// proxyToPeerBody is proxyToPeer with the body already in hand (the
// upload path reads it first to hash the graph).
func (s *Server) proxyToPeerBody(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	p := s.cluster.Peer(owner)
	if p == nil {
		writeErr(w, http.StatusBadGateway, "owner %q is not a cluster member", owner)
		return
	}
	headers := map[string]string{cluster.ForwardedFromHeader: s.cluster.Self()}
	if rid := RequestID(r.Context()); rid != "" {
		headers["X-Request-Id"] = rid
	}
	resp, err := p.Do(r.Context(), r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body, headers)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "forward to %s: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", cluster.NodeHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(flushingWriter{w}, resp.Body)
}

// routeGraph wraps a graph-scoped handler ({id} in the path) with
// ownership routing: local and forwarded requests fall through to next,
// everything else is proxied raw to the owner.
func (s *Server) routeGraph(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cluster == nil || forwarded(r) {
			next(w, r)
			return
		}
		owner := s.cluster.Owner(r.PathValue("id"))
		if owner == s.cluster.Self() {
			next(w, r)
			return
		}
		s.proxyToPeer(w, r, owner, maxUploadBytes)
	}
}

// routeJob wraps a job-scoped handler with peer fallback: job IDs carry a
// per-node prefix, so an ID this node's scheduler does not know belongs
// to whichever peer answers for it. The fallback asks up peers in address
// order and relays the first non-404; if nobody knows the job, next
// serves the local 404.
func (s *Server) routeJob(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cluster == nil || forwarded(r) {
			next(w, r)
			return
		}
		id := r.PathValue("id")
		if _, ok := s.sub.Job(id); ok {
			next(w, r)
			return
		}
		headers := map[string]string{cluster.ForwardedFromHeader: s.cluster.Self()}
		if rid := RequestID(r.Context()); rid != "" {
			headers["X-Request-Id"] = rid
		}
		for _, addr := range s.cluster.Ring().Members() {
			p := s.cluster.Peer(addr)
			if p == nil || !p.Up() {
				continue
			}
			resp, err := p.Do(r.Context(), r.Method, r.URL.RequestURI(), "", nil, headers)
			if err != nil {
				continue
			}
			if resp.StatusCode == http.StatusNotFound {
				resp.Body.Close()
				continue
			}
			for _, h := range []string{"Content-Type", cluster.NodeHeader} {
				if v := resp.Header.Get(h); v != "" {
					w.Header().Set(h, v)
				}
			}
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(flushingWriter{w}, resp.Body)
			resp.Body.Close()
			return
		}
		next(w, r)
	}
}

// parseUploadGraph decodes an upload body in either encoding (JSON or the
// text format) without storing it — the router needs the graph's content
// hash to pick an owner before any node commits bytes.
func parseUploadGraph(contentType string, body []byte) (*parcut.Graph, error) {
	if strings.HasPrefix(contentType, "application/json") {
		var jg jsonGraph
		if err := json.Unmarshal(body, &jg); err != nil {
			return nil, fmt.Errorf("bad JSON graph: %v", err)
		}
		return buildJSONGraph(jg.N, jg.Edges)
	}
	return parcut.ReadGraph(bytes.NewReader(body))
}

// routeUpload places a single-graph upload: parse, hash, and either store
// locally (this node owns the content hash) or relay the original bytes
// to the owner. Placement by content hash means re-uploading the same
// graph through any node always lands on the same shard and dedups there.
func (s *Server) routeUpload(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil || forwarded(r) {
		s.handleUpload(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "read upload: %v", err)
		return
	}
	g, perr := parseUploadGraph(r.Header.Get("Content-Type"), body)
	if perr != nil {
		writeErr(w, http.StatusBadRequest, "%v", perr)
		return
	}
	id, gerr := registry.GraphID(g)
	if gerr != nil {
		writeErr(w, http.StatusBadRequest, "%v", gerr)
		return
	}
	owner := s.cluster.Owner(id)
	if owner == s.cluster.Self() {
		r.Body = io.NopCloser(bytes.NewReader(body))
		s.handleUpload(w, r)
		return
	}
	s.proxyToPeerBody(w, r, owner, body)
}

// routeUploadBatch shards a batch upload: every parseable item is hashed,
// grouped by owner, committed as one registry batch per shard (keeping
// each shard's group-commit fsync amortization), and the per-item results
// are merged back in input order. Shard sub-batches run concurrently; a
// shard that cannot be reached fails only its own items.
func (s *Server) routeUploadBatch(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil || forwarded(r) {
		s.handleUploadBatch(w, r)
		return
	}
	var req batchUploadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeErr(w, code, "bad batch upload body: %v", err)
		return
	}
	if len(req.Graphs) == 0 {
		writeErr(w, http.StatusBadRequest, "batch needs at least one graph")
		return
	}
	if len(req.Graphs) > maxBatchUploadItems {
		writeErr(w, http.StatusBadRequest, "batch of %d graphs exceeds the limit of %d", len(req.Graphs), maxBatchUploadItems)
		return
	}
	results := make([]batchUploadEntry, len(req.Graphs))
	type shard struct {
		items []batchUploadItem
		idx   []int
	}
	self := s.cluster.Self()
	var localGraphs []*parcut.Graph
	var localIdx []int
	remote := make(map[string]*shard)
	for i, item := range req.Graphs {
		g, err := parseBatchItem(item)
		if err != nil {
			results[i] = batchUploadEntry{Index: i, Status: "failed", Error: err.Error()}
			continue
		}
		id, err := registry.GraphID(g)
		if err != nil {
			results[i] = batchUploadEntry{Index: i, Status: "failed", Error: err.Error()}
			continue
		}
		owner := s.cluster.Owner(id)
		if owner == self {
			localGraphs = append(localGraphs, g)
			localIdx = append(localIdx, i)
			continue
		}
		sh := remote[owner]
		if sh == nil {
			sh = &shard{}
			remote[owner] = sh
		}
		sh.items = append(sh.items, item)
		sh.idx = append(sh.idx, i)
	}

	var wg sync.WaitGroup
	owners := make([]string, 0, len(remote))
	for o := range remote {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, owner := range owners {
		sh := remote[owner]
		wg.Add(1)
		go func(owner string, sh *shard) {
			defer wg.Done()
			s.forwardUploadShard(r, owner, sh.items, sh.idx, results)
		}(owner, sh)
	}
	for k, br := range s.reg.PutGraphBatch(localGraphs) {
		i := localIdx[k]
		switch {
		case br.Err != nil:
			results[i] = batchUploadEntry{Index: i, Status: "failed", Error: br.Err.Error()}
		case br.Existed:
			results[i] = batchUploadEntry{Index: i, Status: "existed", ID: br.Info.ID, N: br.Info.N, M: br.Info.M, Bytes: br.Info.Bytes, Node: self}
		default:
			results[i] = batchUploadEntry{Index: i, Status: "created", ID: br.Info.ID, N: br.Info.N, M: br.Info.M, Bytes: br.Info.Bytes, Node: self}
		}
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// forwardUploadShard sends one owner's slice of a batch upload and folds
// the per-item results back into the caller's array at their original
// indices. idx disjointness across shards makes the concurrent writes
// race-free.
func (s *Server) forwardUploadShard(r *http.Request, owner string, items []batchUploadItem, idx []int, results []batchUploadEntry) {
	fail := func(msg string) {
		for _, i := range idx {
			results[i] = batchUploadEntry{Index: i, Status: "failed", Error: msg}
		}
	}
	p := s.cluster.Peer(owner)
	if p == nil {
		fail(fmt.Sprintf("owner %q is not a cluster member", owner))
		return
	}
	body, err := json.Marshal(batchUploadRequest{Graphs: items})
	if err != nil {
		fail(err.Error())
		return
	}
	headers := map[string]string{cluster.ForwardedFromHeader: s.cluster.Self()}
	if rid := RequestID(r.Context()); rid != "" {
		headers["X-Request-Id"] = rid
	}
	resp, err := p.Do(r.Context(), http.MethodPost, "/v1/graphs:batch", "application/json", body, headers)
	if err != nil {
		fail(fmt.Sprintf("forward to %s: %v", owner, err))
		return
	}
	defer resp.Body.Close()
	var out struct {
		Results []batchUploadEntry `json:"results"`
		Error   string             `json:"error"`
	}
	if derr := json.NewDecoder(io.LimitReader(resp.Body, maxUploadBytes)).Decode(&out); derr != nil {
		fail(fmt.Sprintf("bad response from %s: %v", owner, derr))
		return
	}
	if resp.StatusCode != http.StatusOK || len(out.Results) != len(idx) {
		msg := out.Error
		if msg == "" {
			msg = fmt.Sprintf("unexpected response from %s: %s", owner, resp.Status)
		}
		fail(msg)
		return
	}
	for k, e := range out.Results {
		e.Index = idx[k]
		results[idx[k]] = e
	}
}

// clusterBatchItem is one solve of a cross-shard batch: a graph anywhere
// in the cluster plus its solver options.
type clusterBatchItem struct {
	GraphID        string `json:"graph_id"`
	Seed           int64  `json:"seed"`
	Boost          int    `json:"boost,omitempty"`
	WantPartition  bool   `json:"want_partition,omitempty"`
	ParallelPhases bool   `json:"parallel_phases,omitempty"`
	// Engine defaults to "auto"; each graph's owner resolves it against
	// the graph it holds, so one batch may fan across engines.
	Engine string `json:"engine,omitempty"`
}

// clusterBatchRequest is the POST /v1/mincut:batch body: solves spanning
// any number of graphs on any shards.
type clusterBatchRequest struct {
	Items []clusterBatchItem `json:"items"`
	// Class is the QoS class of every solve; defaults to "batch".
	Class string `json:"class,omitempty"`
	// TimeoutMs bounds how long the whole batch waits; 0 means no timeout
	// beyond the client disconnecting.
	TimeoutMs int64 `json:"timeout_ms"`
}

// clusterBatchEntry is one element of the cross-shard batch response.
type clusterBatchEntry struct {
	GraphID string `json:"graph_id"`
	Seed    int64  `json:"seed"`
	// Node is the cluster member that ran (or would run) the solve;
	// omitted in single-node mode.
	Node         string `json:"node,omitempty"`
	JobID        string `json:"job_id,omitempty"`
	Status       string `json:"status"`
	Engine       string `json:"engine,omitempty"`
	Cached       bool   `json:"cached,omitempty"`
	Value        *int64 `json:"value,omitempty"`
	InCut        []bool `json:"in_cut,omitempty"`
	TreesScanned int    `json:"trees_scanned,omitempty"`
	Fanout       int    `json:"fanout,omitempty"`
	Error        string `json:"error,omitempty"`
}

// handleClusterBatch solves many graphs in one request, wherever they
// live. Every item is submitted up front through the routing Submitter —
// local items coalesce in this node's scheduler, remote items start their
// proxied solves concurrently on their owners — and the results stream
// back in input order as each solve finishes. Per-item failures (an
// unreachable shard, an unknown graph) fail only their own entries.
func (s *Server) handleClusterBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req clusterBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, http.StatusBadRequest, "batch needs at least one item")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeErr(w, http.StatusBadRequest, "batch of %d items exceeds the limit of %d", len(req.Items), maxBatchItems)
		return
	}
	if req.Class == "" {
		req.Class = string(sched.ClassBatch)
	}
	class, cerr := sched.ParseClass(req.Class)
	if cerr != nil {
		writeErr(w, http.StatusBadRequest, "%v", cerr)
		return
	}
	if req.TimeoutMs < 0 {
		writeErr(w, http.StatusBadRequest, "timeout_ms must be non-negative")
		return
	}
	for _, it := range req.Items {
		if it.GraphID == "" {
			writeErr(w, http.StatusBadRequest, "every item needs a graph_id")
			return
		}
		if it.Boost < 0 {
			writeErr(w, http.StatusBadRequest, "item boost must be non-negative")
			return
		}
	}

	sub := s.submitterFor(r)
	type submission struct {
		handle sched.Handle
		node   string
		hit    bool
		err    error
	}
	subs := make([]submission, len(req.Items))
	for i, it := range req.Items {
		key := sched.Key{GraphID: it.GraphID, Opt: sched.SolveOptions{
			Seed:           it.Seed,
			WantPartition:  it.WantPartition,
			Boost:          it.Boost,
			ParallelPhases: it.ParallelPhases,
			Engine:         it.Engine,
		}}
		if s.cluster != nil {
			subs[i].node = s.cluster.Owner(it.GraphID)
			subs[i].handle, subs[i].hit, subs[i].err = sub.Submit(r.Context(), key, nil, sched.SubmitOpts{Class: class})
			continue
		}
		// Single-node: fetch the graph and resolve the engine here, the
		// same way the graph-scoped solve route does.
		g, info, err := s.reg.Get(it.GraphID)
		if err != nil {
			subs[i].err = err
			continue
		}
		name := it.Engine
		if name == "" {
			name = engine.Auto
		}
		eng, rerr := engine.Resolve(name, info.N, info.M)
		if rerr != nil {
			subs[i].err = rerr
			continue
		}
		key.Opt.Engine = eng.Name()
		subs[i].handle, subs[i].hit, subs[i].err = sub.Submit(r.Context(), key, g, sched.SubmitOpts{Class: class})
	}

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	_, _ = io.WriteString(w, `{"results":[`)
	for i, sb := range subs {
		entry := clusterBatchEntry{GraphID: req.Items[i].GraphID, Seed: req.Items[i].Seed, Node: sb.node}
		switch {
		case sb.err != nil:
			entry.Status = "rejected"
			entry.Error = sb.err.Error()
		default:
			entry.Cached = sb.hit
			detach := attachJobSpan(r, sb.handle)
			res, err := sb.handle.Wait(ctx)
			detach()
			entry.JobID = sb.handle.ID()
			entry.Fanout = sb.handle.Fanout()
			fillBatchEngine(&entry, sb.handle, s.sub)
			if err != nil {
				entry.Status = "unfinished"
				entry.Error = err.Error()
			} else {
				entry.Status = string(sched.StateDone)
				entry.Value = &res.Value
				entry.InCut = res.InCut
				entry.TreesScanned = res.TreesScanned
			}
		}
		if i > 0 {
			_, _ = io.WriteString(w, ",")
		}
		raw, merr := json.Marshal(entry)
		if merr != nil {
			raw = []byte(`{"status":"failed","error":"encode"}`)
		}
		_, _ = w.Write(raw)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, _ = io.WriteString(w, "]}\n")
}

// fillBatchEngine reports which engine ran (and, for remote handles,
// whether the owner served it from cache): remote handles carry both on
// the handle, local jobs report through the scheduler's status.
func fillBatchEngine(entry *clusterBatchEntry, h sched.Handle, sub sched.Submitter) {
	type remoteInfo interface {
		Engine() string
		Cached() bool
	}
	if ri, ok := h.(remoteInfo); ok {
		if ri.Engine() != "" {
			entry.Engine = ri.Engine()
		}
		if ri.Cached() {
			entry.Cached = true
		}
		return
	}
	if st, ok := sub.Job(h.ID()); ok {
		entry.Engine = st.Engine
	}
}
