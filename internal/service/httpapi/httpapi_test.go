package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service/registry"
	"repro/internal/service/sched"
)

type testServer struct {
	*httptest.Server
	api *Server
	sch *sched.Scheduler
}

func newTestServer(t *testing.T, workers int) *testServer {
	t.Helper()
	reg := registry.New(0)
	sch := sched.New(sched.Config{Workers: workers})
	api := New(reg, sch)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := sch.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
	})
	return &testServer{Server: ts, api: api, sch: sch}
}

func (ts *testServer) do(t *testing.T, method, path, contentType string, body []byte, out any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.Bytes()
}

// uploadCycle uploads an n-cycle with edge weights 2,3,4,2,3,4,... and
// returns its registry ID. Minimum cut = 4 (two weight-2 edges).
func (ts *testServer) uploadCycle(t *testing.T, n int) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "p cut %d %d\n", n, n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e %d %d %d\n", i, (i+1)%n, 2+i%3)
	}
	var gr graphResponse
	code, raw := ts.do(t, "POST", "/v1/graphs", "", []byte(b.String()), &gr)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, raw)
	}
	return gr.ID
}

// metric scrapes one sample value from /metrics.
func (ts *testServer) metric(t *testing.T, name string) int64 {
	t.Helper()
	code, body := ts.do(t, "GET", "/metrics", "", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s missing from:\n%s", name, body)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func (ts *testServer) waitMetric(t *testing.T, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for ts.metric(t, name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %d (is %d)", name, want, ts.metric(t, name))
		}
		time.Sleep(time.Millisecond)
	}
}

// startBlocker occupies a worker with an effectively endless solve (huge
// boost on a small graph: each run is fast, so cancellation is prompt) and
// returns the job ID so tests can cancel it.
func (ts *testServer) startBlocker(t *testing.T, graphID string) string {
	t.Helper()
	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+graphID+"/mincut", "application/json",
		[]byte(`{"seed": 999, "boost": 1048576, "async": true}`), &jr)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit: %d %s", code, raw)
	}
	ts.waitMetric(t, "mincutd_jobs_running", 1)
	return jr.JobID
}

func (ts *testServer) cancelJob(t *testing.T, jobID string) {
	t.Helper()
	if code, raw := ts.do(t, "DELETE", "/v1/jobs/"+jobID, "", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel %s: %d %s", jobID, code, raw)
	}
}

func TestUploadSolveAndJobStatus(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 8)
	if !strings.HasPrefix(id, registry.IDPrefix) {
		t.Fatalf("graph ID = %q", id)
	}

	var gr graphResponse
	if code, _ := ts.do(t, "GET", "/v1/graphs/"+id, "", nil, &gr); code != http.StatusOK || gr.M != 8 {
		t.Fatalf("graph info: %d %+v", code, gr)
	}

	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 1, "want_partition": true}`), &jr)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if jr.Value == nil || *jr.Value != 4 || jr.Status != "done" {
		t.Fatalf("solve response: %s", raw)
	}
	if len(jr.InCut) != 8 {
		t.Fatalf("partition length %d, want 8", len(jr.InCut))
	}

	var st jobResponse
	if code, _ := ts.do(t, "GET", "/v1/jobs/"+jr.JobID, "", nil, &st); code != http.StatusOK || st.Status != "done" || *st.Value != 4 {
		t.Fatalf("job status: %d %+v", code, st)
	}
}

func TestUploadDedupAndJSONForm(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	// The same graph uploaded as JSON dedups to the same content address.
	edges := make([][3]int64, 8)
	for i := 0; i < 8; i++ {
		edges[i] = [3]int64{int64(i), int64((i + 1) % 8), int64(2 + i%3)}
	}
	body, _ := json.Marshal(jsonGraph{N: 8, Edges: edges})
	var gr graphResponse
	code, raw := ts.do(t, "POST", "/v1/graphs", "application/json", body, &gr)
	if code != http.StatusOK || !gr.Existed || gr.ID != id {
		t.Fatalf("JSON re-upload: %d %s (want existing %s)", code, raw, id)
	}
}

func TestNotFoundAndBadInput(t *testing.T) {
	ts := newTestServer(t, 1)
	if code, _ := ts.do(t, "GET", "/v1/graphs/sha256:feed", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing graph: %d", code)
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs/sha256:feed/mincut", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("solve on missing graph: %d", code)
	}
	if code, _ := ts.do(t, "GET", "/v1/jobs/job-404", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing job: %d", code)
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs", "", []byte("not a graph"), nil); code != http.StatusBadRequest {
		t.Fatalf("bad upload: %d", code)
	}
	id := ts.uploadCycle(t, 8)
	if code, _ := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json", []byte(`{"boost": -1}`), nil); code != http.StatusBadRequest {
		t.Fatalf("negative boost: %d", code)
	}
	// The JSON upload path must apply the same vertex-count bounds as the
	// text parser: negative n would panic NewGraph, huge n would let a
	// 16-byte upload pin O(n) solver allocations.
	for _, body := range []string{`{"n": -1}`, `{"n": 1099511627776, "edges": [[0,1,1]]}`} {
		if code, raw := ts.do(t, "POST", "/v1/graphs", "application/json", []byte(body), nil); code != http.StatusBadRequest {
			t.Fatalf("upload %s: %d %s, want 400", body, code, raw)
		}
	}
}

// TestConcurrentDuplicateRequestsCoalesce is the acceptance test for the
// singleflight cache: N identical in-flight requests produce one solver
// run, asserted via the cache-hit metric.
func TestConcurrentDuplicateRequestsCoalesce(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	blocker := ts.startBlocker(t, id)

	const dups = 5
	var wg sync.WaitGroup
	codes := make([]int, dups)
	values := make([]int64, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var jr jobResponse
			codes[i], _ = ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
				[]byte(`{"seed": 42}`), &jr)
			if jr.Value != nil {
				values[i] = *jr.Value
			}
		}(i)
	}
	// All five must be in flight (coalesced onto one queued job) before
	// the worker frees up, or they could be served one after another from
	// the finished-result cache instead.
	ts.waitMetric(t, "mincutd_jobs_coalesced_total", dups-1)
	ts.cancelJob(t, blocker)
	wg.Wait()
	for i := 0; i < dups; i++ {
		if codes[i] != http.StatusOK || values[i] != 4 {
			t.Fatalf("request %d: code=%d value=%d", i, codes[i], values[i])
		}
	}
	if hits := ts.metric(t, "mincutd_cache_hits_total"); hits != dups-1 {
		t.Fatalf("cache hits = %d, want %d", hits, dups-1)
	}
	// One shared solve; the canceled blocker never completes one.
	if solves := ts.metric(t, "mincutd_solve_seconds_count"); solves != 1 {
		t.Fatalf("solver runs = %d, want 1", solves)
	}
}

// TestExpiredDeadlineReturnsPromptly is the acceptance test for request
// deadlines: with the worker occupied, a 1ms-deadline request must come
// back as a timeout error long before the solver could have served it.
func TestExpiredDeadlineReturnsPromptly(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	blocker := ts.startBlocker(t, id)
	defer ts.cancelJob(t, blocker)

	start := time.Now()
	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 7, "timeout_ms": 1}`), &jr)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline solve: %d %s", code, raw)
	}
	if !strings.Contains(jr.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", jr.Error)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout response took %v", elapsed)
	}
}

func TestAsyncSolveAndCancel(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	blocker := ts.startBlocker(t, id)

	var st jobResponse
	if code, _ := ts.do(t, "GET", "/v1/jobs/"+blocker, "", nil, &st); code != http.StatusOK || st.Status != "running" {
		t.Fatalf("blocker status: %d %+v", code, st)
	}
	ts.cancelJob(t, blocker)
	deadline := time.Now().Add(60 * time.Second)
	for {
		ts.do(t, "GET", "/v1/jobs/"+blocker, "", nil, &st)
		if st.Status == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker stuck in %q", st.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Error == "" {
		t.Fatal("canceled job reports no error")
	}
}

// TestServerSideCancelIsNot499: a waiter whose job is canceled by someone
// else (DELETE) is still connected, so it must get 409, not 499 ("client
// closed request").
func TestServerSideCancelIsNot499(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	codeCh := make(chan int, 1)
	bodyCh := make(chan []byte, 1)
	go func() {
		var jr jobResponse
		code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
			[]byte(`{"seed": 999, "boost": 1048576}`), &jr)
		codeCh <- code
		bodyCh <- raw
	}()
	ts.waitMetric(t, "mincutd_jobs_running", 1)
	ts.cancelJob(t, "job-1")
	select {
	case code := <-codeCh:
		if code != http.StatusConflict {
			t.Fatalf("server-side cancel returned %d (%s), want 409", code, <-bodyCh)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sync waiter never returned after job cancel")
	}
}

func TestHealthzAndDrain(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	if code, _ := ts.do(t, "GET", "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	ts.api.SetDraining()
	if code, _ := ts.do(t, "GET", "/healthz", "", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", code)
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: %d", code)
	}
}
