package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	parcut "repro"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
	"repro/internal/service/store"
)

type testServer struct {
	*httptest.Server
	api *Server
	sch *sched.Scheduler
}

func newTestServer(t *testing.T, workers int) *testServer {
	t.Helper()
	reg := registry.New(0, nil)
	sch := sched.New(sched.Config{Workers: workers})
	api := New(reg, sch, nil, Options{})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := sch.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
	})
	return &testServer{Server: ts, api: api, sch: sch}
}

func (ts *testServer) do(t *testing.T, method, path, contentType string, body []byte, out any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.Bytes()
}

// uploadCycle uploads an n-cycle with edge weights 2,3,4,2,3,4,... and
// returns its registry ID. Minimum cut = 4 (two weight-2 edges).
func (ts *testServer) uploadCycle(t *testing.T, n int) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "p cut %d %d\n", n, n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e %d %d %d\n", i, (i+1)%n, 2+i%3)
	}
	var gr graphResponse
	code, raw := ts.do(t, "POST", "/v1/graphs", "", []byte(b.String()), &gr)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, raw)
	}
	return gr.ID
}

// metric scrapes one sample value from /metrics.
func (ts *testServer) metric(t *testing.T, name string) int64 {
	t.Helper()
	code, body := ts.do(t, "GET", "/metrics", "", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s missing from:\n%s", name, body)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// waitMetric polls until the named metric equals want;
// waitMetricAtLeast until it reaches want.
func (ts *testServer) waitMetric(t *testing.T, name string, want int64) {
	t.Helper()
	ts.waitMetricCond(t, name, want, func(v int64) bool { return v == want })
}

func (ts *testServer) waitMetricAtLeast(t *testing.T, name string, want int64) {
	t.Helper()
	ts.waitMetricCond(t, name, want, func(v int64) bool { return v >= want })
}

func (ts *testServer) waitMetricCond(t *testing.T, name string, want int64, ok func(int64) bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !ok(ts.metric(t, name)) {
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %d (is %d)", name, want, ts.metric(t, name))
		}
		time.Sleep(time.Millisecond)
	}
}

// startBlocker occupies a worker with an effectively endless solve (huge
// boost on a small graph: each run is fast, so cancellation is prompt) and
// returns the job ID so tests can cancel it. The paper engine is pinned:
// the default "auto" resolves small graphs to the exact stoerwagner
// backend, where boost collapses to one instant run — no blocking at all.
func (ts *testServer) startBlocker(t *testing.T, graphID string) string {
	t.Helper()
	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+graphID+"/mincut", "application/json",
		[]byte(`{"seed": 999, "boost": 1048576, "async": true, "engine": "geissmann"}`), &jr)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit: %d %s", code, raw)
	}
	ts.waitMetric(t, "mincutd_jobs_running", 1)
	return jr.JobID
}

func (ts *testServer) cancelJob(t *testing.T, jobID string) {
	t.Helper()
	if code, raw := ts.do(t, "DELETE", "/v1/jobs/"+jobID, "", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel %s: %d %s", jobID, code, raw)
	}
}

func TestUploadSolveAndJobStatus(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 8)
	if !strings.HasPrefix(id, registry.IDPrefix) {
		t.Fatalf("graph ID = %q", id)
	}

	var gr graphResponse
	if code, _ := ts.do(t, "GET", "/v1/graphs/"+id, "", nil, &gr); code != http.StatusOK || gr.M != 8 {
		t.Fatalf("graph info: %d %+v", code, gr)
	}

	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 1, "want_partition": true}`), &jr)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if jr.Value == nil || *jr.Value != 4 || jr.Status != "done" {
		t.Fatalf("solve response: %s", raw)
	}
	if len(jr.InCut) != 8 {
		t.Fatalf("partition length %d, want 8", len(jr.InCut))
	}

	var st jobResponse
	if code, _ := ts.do(t, "GET", "/v1/jobs/"+jr.JobID, "", nil, &st); code != http.StatusOK || st.Status != "done" || *st.Value != 4 {
		t.Fatalf("job status: %d %+v", code, st)
	}
}

func TestUploadDedupAndJSONForm(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	// The same graph uploaded as JSON dedups to the same content address.
	edges := make([][3]int64, 8)
	for i := 0; i < 8; i++ {
		edges[i] = [3]int64{int64(i), int64((i + 1) % 8), int64(2 + i%3)}
	}
	body, _ := json.Marshal(jsonGraph{N: 8, Edges: edges})
	var gr graphResponse
	code, raw := ts.do(t, "POST", "/v1/graphs", "application/json", body, &gr)
	if code != http.StatusOK || !gr.Existed || gr.ID != id {
		t.Fatalf("JSON re-upload: %d %s (want existing %s)", code, raw, id)
	}
}

func TestNotFoundAndBadInput(t *testing.T) {
	ts := newTestServer(t, 1)
	if code, _ := ts.do(t, "GET", "/v1/graphs/sha256:feed", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing graph: %d", code)
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs/sha256:feed/mincut", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("solve on missing graph: %d", code)
	}
	if code, _ := ts.do(t, "GET", "/v1/jobs/job-404", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing job: %d", code)
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs", "", []byte("not a graph"), nil); code != http.StatusBadRequest {
		t.Fatalf("bad upload: %d", code)
	}
	id := ts.uploadCycle(t, 8)
	if code, _ := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json", []byte(`{"boost": -1}`), nil); code != http.StatusBadRequest {
		t.Fatalf("negative boost: %d", code)
	}
	// The JSON upload path must apply the same vertex-count bounds as the
	// text parser: negative n would panic NewGraph, huge n would let a
	// 16-byte upload pin O(n) solver allocations.
	for _, body := range []string{`{"n": -1}`, `{"n": 1099511627776, "edges": [[0,1,1]]}`} {
		if code, raw := ts.do(t, "POST", "/v1/graphs", "application/json", []byte(body), nil); code != http.StatusBadRequest {
			t.Fatalf("upload %s: %d %s, want 400", body, code, raw)
		}
	}
}

// TestConcurrentDuplicateRequestsCoalesce is the acceptance test for the
// singleflight cache: N identical in-flight requests produce one solver
// run, asserted via the cache-hit metric.
func TestConcurrentDuplicateRequestsCoalesce(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	blocker := ts.startBlocker(t, id)

	const dups = 5
	var wg sync.WaitGroup
	codes := make([]int, dups)
	values := make([]int64, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var jr jobResponse
			codes[i], _ = ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
				[]byte(`{"seed": 42}`), &jr)
			if jr.Value != nil {
				values[i] = *jr.Value
			}
		}(i)
	}
	// All five must be in flight (coalesced onto one queued job) before
	// the worker frees up, or they could be served one after another from
	// the finished-result cache instead.
	ts.waitMetric(t, "mincutd_jobs_coalesced_total", dups-1)
	ts.cancelJob(t, blocker)
	wg.Wait()
	for i := 0; i < dups; i++ {
		if codes[i] != http.StatusOK || values[i] != 4 {
			t.Fatalf("request %d: code=%d value=%d", i, codes[i], values[i])
		}
	}
	if hits := ts.metric(t, "mincutd_cache_hits_total"); hits != dups-1 {
		t.Fatalf("cache hits = %d, want %d", hits, dups-1)
	}
	// One shared solve; the canceled blocker never completes one.
	if solves := ts.metric(t, "mincutd_solve_seconds_count"); solves != 1 {
		t.Fatalf("solver runs = %d, want 1", solves)
	}
}

// TestExpiredDeadlineReturnsPromptly is the acceptance test for request
// deadlines: with the worker occupied, a 1ms-deadline request must come
// back as a timeout error long before the solver could have served it.
func TestExpiredDeadlineReturnsPromptly(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	blocker := ts.startBlocker(t, id)
	defer ts.cancelJob(t, blocker)

	start := time.Now()
	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 7, "timeout_ms": 1}`), &jr)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline solve: %d %s", code, raw)
	}
	if !strings.Contains(jr.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", jr.Error)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout response took %v", elapsed)
	}
}

func TestAsyncSolveAndCancel(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	blocker := ts.startBlocker(t, id)

	var st jobResponse
	if code, _ := ts.do(t, "GET", "/v1/jobs/"+blocker, "", nil, &st); code != http.StatusOK || st.Status != "running" {
		t.Fatalf("blocker status: %d %+v", code, st)
	}
	ts.cancelJob(t, blocker)
	deadline := time.Now().Add(60 * time.Second)
	for {
		ts.do(t, "GET", "/v1/jobs/"+blocker, "", nil, &st)
		if st.Status == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker stuck in %q", st.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Error == "" {
		t.Fatal("canceled job reports no error")
	}
}

// TestServerSideCancelIsNot499: a waiter whose job is canceled by someone
// else (DELETE) is still connected, so it must get 409, not 499 ("client
// closed request").
func TestServerSideCancelIsNot499(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	codeCh := make(chan int, 1)
	bodyCh := make(chan []byte, 1)
	go func() {
		var jr jobResponse
		code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
			[]byte(`{"seed": 999, "boost": 1048576, "engine": "geissmann"}`), &jr)
		codeCh <- code
		bodyCh <- raw
	}()
	ts.waitMetric(t, "mincutd_jobs_running", 1)
	ts.cancelJob(t, "job-1")
	select {
	case code := <-codeCh:
		if code != http.StatusConflict {
			t.Fatalf("server-side cancel returned %d (%s), want 409", code, <-bodyCh)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sync waiter never returned after job cancel")
	}
}

func TestHealthzAndDrain(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	if code, _ := ts.do(t, "GET", "/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	ts.api.SetDraining()
	if code, _ := ts.do(t, "GET", "/healthz", "", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", code)
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: %d", code)
	}
}

// batchBody mirrors the batch endpoint's response shape.
type batchBody struct {
	GraphID string       `json:"graph_id"`
	Results []batchEntry `json:"results"`
}

func TestBatchSolve(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 8)
	var out batchBody
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut:batch", "application/json",
		[]byte(`{"seeds": [1, 2, 3], "want_partition": true}`), &out)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, raw)
	}
	if out.GraphID != id || len(out.Results) != 3 {
		t.Fatalf("batch body: %s", raw)
	}
	for i, e := range out.Results {
		if e.Seed != int64(i+1) || e.Status != "done" || e.Value == nil || *e.Value != 4 {
			t.Fatalf("entry %d: %+v", i, e)
		}
		if len(e.InCut) != 8 {
			t.Fatalf("entry %d partition length %d", i, len(e.InCut))
		}
		if e.JobID == "" {
			t.Fatalf("entry %d has no job id", i)
		}
	}
	// A duplicate seed inside a second batch is a cache hit.
	code, raw = ts.do(t, "POST", "/v1/graphs/"+id+"/mincut:batch", "application/json",
		[]byte(`{"seeds": [2], "want_partition": true}`), &out)
	if code != http.StatusOK || len(out.Results) != 1 || !out.Results[0].Cached {
		t.Fatalf("repeat batch not cached: %d %s", code, raw)
	}
}

func TestBatchValidation(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	for _, body := range []string{
		`{}`,                                    // no seeds
		`{"seeds": [1], "boost": -1}`,           // negative boost
		`{"items": [{"seed": 1, "boost": -2}]}`, // negative item boost
		`not json`,
	} {
		if code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut:batch", "application/json", []byte(body), nil); code != http.StatusBadRequest {
			t.Fatalf("batch %s: %d %s, want 400", body, code, raw)
		}
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs/sha256:feed/mincut:batch", "application/json", []byte(`{"seeds":[1]}`), nil); code != http.StatusNotFound {
		t.Fatalf("batch on missing graph: %d", code)
	}
	var big strings.Builder
	big.WriteString(`{"seeds": [`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, "%d", i)
	}
	big.WriteString(`]}`)
	if code, _ := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut:batch", "application/json", []byte(big.String()), nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d, want 400", code)
	}
}

// TestBatchBoostSharesRunsAcrossOverlappingRanges: a boosted batch item
// fans out into per-run sub-jobs; a later batch asking for one of those
// derived seeds directly must be served from the shared run cache.
func TestBatchBoostSharesRunsAcrossOverlappingRanges(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 8)
	var out batchBody
	// Boost fan-out is paper-engine machinery; under the default "auto"
	// this small graph would go to stoerwagner, where boost collapses.
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut:batch", "application/json",
		[]byte(`{"items": [{"seed": 5, "boost": 4}], "engine": "geissmann"}`), &out)
	if code != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("boosted batch: %d %s", code, raw)
	}
	if e := out.Results[0]; e.Status != "done" || e.Fanout != 4 || *e.Value != 4 {
		t.Fatalf("boosted entry: %+v", e)
	}
	if n := ts.metric(t, "mincutd_boost_subjobs_total"); n != 4 {
		t.Fatalf("boost sub-jobs = %d, want 4", n)
	}
	hitsBefore := ts.metric(t, "mincutd_cache_hits_total")
	// Runs 1 and 3 of the boost, requested as plain seeds (same engine, or
	// the keys wouldn't overlap).
	body := fmt.Sprintf(`{"seeds": [%d, %d], "engine": "geissmann"}`,
		parcut.BoostSeed(5, 1), parcut.BoostSeed(5, 3))
	code, raw = ts.do(t, "POST", "/v1/graphs/"+id+"/mincut:batch", "application/json", []byte(body), &out)
	if code != http.StatusOK {
		t.Fatalf("overlap batch: %d %s", code, raw)
	}
	for i, e := range out.Results {
		if e.Status != "done" || !e.Cached {
			t.Fatalf("overlap entry %d not served from shared runs: %+v", i, e)
		}
	}
	if hits := ts.metric(t, "mincutd_cache_hits_total"); hits != hitsBefore+2 {
		t.Fatalf("cache hits = %d, want %d", hits, hitsBefore+2)
	}
}

// TestBatchClientDisconnectCancelsJobs: dropping a batch request
// mid-flight must unwind its jobs — the running sub-job aborts and the
// queued ones leave the scheduler instead of burning workers.
func TestBatchClientDisconnectCancelsJobs(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/graphs/"+id+"/mincut:batch",
			strings.NewReader(`{"items": [{"seed": 999, "boost": 1048576}], "engine": "geissmann"}`))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	ts.waitMetric(t, "mincutd_jobs_running", 1)
	cancel()
	<-done
	// The parent and every sub-job must reach a terminal state and the
	// queue must empty without the worker grinding through doomed chunks.
	ts.waitMetricAtLeast(t, "mincutd_jobs_canceled_total", 2)
	ts.waitMetric(t, "mincutd_queue_depth", 0)
	ts.waitMetric(t, "mincutd_jobs_running", 0)
	if solves := ts.metric(t, "mincutd_solve_seconds_count"); solves != 0 {
		t.Fatalf("solver runs = %d, want 0 (no chunk ran to completion)", solves)
	}
}

// TestMetricsExposeFanoutAndRejections: the new counters must appear in
// the Prometheus exposition with sane values.
func TestMetricsExposeFanoutAndRejections(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 8)
	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 1, "boost": 3, "engine": "geissmann"}`), &jr)
	if code != http.StatusOK || jr.Fanout != 3 {
		t.Fatalf("boosted solve: %d %s (want fanout 3)", code, raw)
	}
	if n := ts.metric(t, "mincutd_boost_fanouts_total"); n != 1 {
		t.Fatalf("fanouts = %d, want 1", n)
	}
	if n := ts.metric(t, "mincutd_boost_subjobs_total"); n != 3 {
		t.Fatalf("sub-jobs = %d, want 3", n)
	}
	if n := ts.metric(t, "mincutd_jobs_rejected_total"); n != 0 {
		t.Fatalf("rejected = %d, want 0", n)
	}
	if n := ts.metric(t, "mincutd_jobs_running_peak"); n < 1 {
		t.Fatalf("running peak = %d, want >= 1", n)
	}
	// Submissions: 1 external solve; fan-out children are not submissions.
	if n := ts.metric(t, "mincutd_jobs_submitted_total"); n != 1 {
		t.Fatalf("submitted = %d, want 1", n)
	}
}

// newStoreServer boots a server whose registry is backed by a disk store
// in dir, returning both so tests can restart on the same directory.
func newStoreServer(t *testing.T, dir string, cacheBytes, maxDiskBytes int64) *testServer {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, MaxDiskBytes: maxDiskBytes})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(cacheBytes, st)
	sch := sched.New(sched.Config{Workers: 2})
	api := New(reg, sch, st, Options{})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := sch.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
		st.Close()
	})
	return &testServer{Server: ts, api: api, sch: sch}
}

func TestBatchUpload(t *testing.T) {
	ts := newTestServer(t, 2)
	// One text graph, one JSON graph, a duplicate of the first, a bad
	// edge, and an ambiguous item — each gets its own status.
	body := `{"graphs": [
		{"text": "p cut 3 2\ne 0 1 5\ne 1 2 7\n"},
		{"n": 4, "edges": [[0,1,3],[1,2,1],[2,3,4],[3,0,2]]},
		{"text": "c dup\np cut 3 2\ne 1 2 7\ne 0 1 5\n"},
		{"n": 2, "edges": [[0,9,1]]},
		{}
	]}`
	var resp struct {
		Results []batchUploadEntry `json:"results"`
	}
	code, raw := ts.do(t, "POST", "/v1/graphs:batch", "application/json", []byte(body), &resp)
	if code != http.StatusOK || len(resp.Results) != 5 {
		t.Fatalf("batch upload: %d %s", code, raw)
	}
	wantStatus := []string{"created", "created", "existed", "failed", "failed"}
	for i, want := range wantStatus {
		if resp.Results[i].Status != want {
			t.Fatalf("item %d: status %q, want %q (%s)", i, resp.Results[i].Status, want, raw)
		}
		if resp.Results[i].Index != i {
			t.Fatalf("item %d: index %d", i, resp.Results[i].Index)
		}
	}
	if resp.Results[2].ID != resp.Results[0].ID {
		t.Fatalf("duplicate upload got id %q, want %q", resp.Results[2].ID, resp.Results[0].ID)
	}
	if resp.Results[3].Error == "" || resp.Results[4].Error == "" {
		t.Fatalf("failed items lack errors: %s", raw)
	}
	// The batch-uploaded JSON graph solves normally.
	var jr jobResponse
	code, raw = ts.do(t, "POST", "/v1/graphs/"+resp.Results[1].ID+"/mincut", "application/json", []byte(`{"seed":1}`), &jr)
	if code != http.StatusOK || jr.Value == nil || *jr.Value != 3 {
		t.Fatalf("solve of batch-uploaded graph: %d %s", code, raw)
	}
}

func TestBatchUploadValidation(t *testing.T) {
	ts := newTestServer(t, 1)
	for _, bad := range []string{`{}`, `{"graphs": []}`, `not json`} {
		if code, raw := ts.do(t, "POST", "/v1/graphs:batch", "application/json", []byte(bad), nil); code != http.StatusBadRequest {
			t.Fatalf("batch %q: %d %s", bad, code, raw)
		}
	}
	var big strings.Builder
	big.WriteString(`{"graphs": [`)
	for i := 0; i <= maxBatchUploadItems; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`{"text": "x"}`)
	}
	big.WriteString(`]}`)
	if code, raw := ts.do(t, "POST", "/v1/graphs:batch", "application/json", []byte(big.String()), nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d %s", code, raw)
	}
}

// TestDeleteGraphInvalidatesResultCache is the staleness-hole regression
// test: DELETE must drop the scheduler's cached results for the graph
// hash, so a re-upload of the same content (same content-addressed ID)
// is re-solved, not served a cut cached before the delete.
func TestDeleteGraphInvalidatesResultCache(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 8)
	solve := func() jobResponse {
		var jr jobResponse
		code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json", []byte(`{"seed":5}`), &jr)
		if code != http.StatusOK {
			t.Fatalf("solve: %d %s", code, raw)
		}
		return jr
	}
	if jr := solve(); jr.Cached {
		t.Fatal("first solve reported cached")
	}
	if jr := solve(); !jr.Cached {
		t.Fatal("repeat solve not cached")
	}

	var del struct {
		Deleted     bool `json:"deleted"`
		Invalidated int  `json:"invalidated_results"`
	}
	code, raw := ts.do(t, "DELETE", "/v1/graphs/"+id, "", nil, &del)
	if code != http.StatusOK || !del.Deleted || del.Invalidated != 1 {
		t.Fatalf("delete: %d %s", code, raw)
	}
	if code, _ := ts.do(t, "GET", "/v1/graphs/"+id, "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("graph info after delete: %d", code)
	}
	if code, _ := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json", []byte(`{"seed":5}`), nil); code != http.StatusNotFound {
		t.Fatalf("solve after delete: %d", code)
	}
	if code, _ := ts.do(t, "DELETE", "/v1/graphs/"+id, "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("second delete: %d", code)
	}

	// Re-upload recreates the same ID; its first solve must re-run.
	if id2 := ts.uploadCycle(t, 8); id2 != id {
		t.Fatalf("re-upload got %q, want %q", id2, id)
	}
	if jr := solve(); jr.Cached {
		t.Fatal("solve after re-upload served from stale cache")
	}
}

// TestStoreBackedServerSurvivesRestart exercises the full persistence
// path over HTTP: upload to a disk-backed server, restart on the same
// data dir, solve without re-uploading, and watch the store metrics.
func TestStoreBackedServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts := newStoreServer(t, dir, 0, 0)
	id := ts.uploadCycle(t, 8)
	if g, rec := ts.metric(t, "mincutd_store_graphs"), ts.metric(t, "mincutd_store_recovered_graphs_total"); g != 1 || rec != 0 {
		t.Fatalf("store metrics after upload: graphs=%d recovered=%d", g, rec)
	}
	ts.Close()

	ts2 := newStoreServer(t, dir, 0, 0)
	if rec := ts2.metric(t, "mincutd_store_recovered_graphs_total"); rec != 1 {
		t.Fatalf("recovered = %d, want 1", rec)
	}
	if corrupt := ts2.metric(t, "mincutd_store_corrupt_tail_total"); corrupt != 0 {
		t.Fatalf("corrupt tails = %d, want 0", corrupt)
	}
	var jr jobResponse
	code, raw := ts2.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json", []byte(`{"seed":1}`), &jr)
	if code != http.StatusOK || jr.Value == nil || *jr.Value != 4 {
		t.Fatalf("solve after restart: %d %s", code, raw)
	}
	// DELETE reaches the disk too: a third instance starts empty.
	if code, raw := ts2.do(t, "DELETE", "/v1/graphs/"+id, "", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, raw)
	}
	ts2.Close()
	ts3 := newStoreServer(t, dir, 0, 0)
	if code, _ := ts3.do(t, "GET", "/v1/graphs/"+id, "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted graph survived restart: %d", code)
	}
}

// TestUploadErrorCodes: a full disk answers 507 (server-side capacity),
// never 400 (client fault), on both the single and batch upload paths.
func TestUploadErrorCodes(t *testing.T) {
	ts := newStoreServer(t, t.TempDir(), 0, 40) // room for one tiny graph
	body := []byte("p cut 3 2\ne 0 1 5\ne 1 2 7\n")
	if code, raw := ts.do(t, "POST", "/v1/graphs", "", body, nil); code != http.StatusCreated {
		t.Fatalf("first upload: %d %s", code, raw)
	}
	big := []byte("p cut 4 4\ne 0 1 1\ne 1 2 1\ne 2 3 1\ne 3 0 1\n")
	code, raw := ts.do(t, "POST", "/v1/graphs", "", big, nil)
	if code != http.StatusInsufficientStorage {
		t.Fatalf("over-budget upload: %d %s, want 507", code, raw)
	}
	var resp struct {
		Results []batchUploadEntry `json:"results"`
	}
	code, raw = ts.do(t, "POST", "/v1/graphs:batch", "application/json",
		[]byte(`{"graphs":[{"text":"p cut 4 4\ne 0 1 1\ne 1 2 1\ne 2 3 1\ne 3 0 1\n"}]}`), &resp)
	if code != http.StatusOK || len(resp.Results) != 1 || resp.Results[0].Status != "failed" {
		t.Fatalf("batch over budget: %d %s", code, raw)
	}
	if !strings.Contains(resp.Results[0].Error, "disk budget") {
		t.Fatalf("batch error = %q, want disk budget mention", resp.Results[0].Error)
	}
	// A parse error is still the client's 400.
	if code, _ := ts.do(t, "POST", "/v1/graphs", "", []byte("garbage"), nil); code != http.StatusBadRequest {
		t.Fatalf("garbage upload: %d, want 400", code)
	}
}

// TestGraphInfoDoesNotFaultBytesIn: GET /v1/graphs/{id} on an evicted
// graph answers from the index without a disk load.
func TestGraphInfoDoesNotFaultBytesIn(t *testing.T) {
	ts := newStoreServer(t, t.TempDir(), 32, 0) // one 2-edge graph resident
	var first graphResponse
	code, raw := ts.do(t, "POST", "/v1/graphs", "", []byte("p cut 3 2\ne 0 1 5\ne 1 2 7\n"), &first)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, raw)
	}
	if code, raw := ts.do(t, "POST", "/v1/graphs", "", []byte("p cut 3 2\ne 0 1 8\ne 1 2 8\n"), nil); code != http.StatusCreated {
		t.Fatalf("second upload: %d %s", code, raw) // evicts the first
	}
	var info graphResponse
	if code, raw := ts.do(t, "GET", "/v1/graphs/"+first.ID, "", nil, &info); code != http.StatusOK || info.M != 2 {
		t.Fatalf("info of evicted graph: %d %s", code, raw)
	}
	if loads := ts.metric(t, "mincutd_graph_store_loads_total"); loads != 0 {
		t.Fatalf("info read faulted bytes in: %d loads", loads)
	}
	if code, _ := ts.do(t, "GET", "/v1/graphs/sha256:nope", "", nil, nil); code != http.StatusNotFound {
		t.Fatal("unknown id not 404")
	}
}

// TestPoolMetricsExposed: /metrics must render the work-stealing executor
// counters, and the arena series must move after a solve (every solver run
// borrows its working arrays from the worker executor's arena).
func TestPoolMetricsExposed(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 64)
	// Force the paper engine: "auto" resolves small graphs to a
	// sequential backend that never exercises the executor.
	for seed := 1; seed <= 2; seed++ {
		var jr jobResponse
		body := []byte(fmt.Sprintf(`{"seed": %d, "engine": "geissmann"}`, seed))
		if code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json", body, &jr); code != http.StatusOK {
			t.Fatalf("solve: %d %s", code, raw)
		}
	}
	for _, name := range []string{
		"mincutd_pool_steals_total",
		"mincutd_pool_local_pushes_total",
		"mincutd_pool_shared_pushes_total",
		"mincutd_pool_overflow_pushes_total",
		"mincutd_pool_inline_runs_total",
		"mincutd_pool_arena_hits_total",
		"mincutd_pool_arena_misses_total",
	} {
		ts.metric(t, name) // fails the test if the series is absent
	}
	if v := ts.metric(t, "mincutd_pool_arena_misses_total"); v == 0 {
		t.Error("mincutd_pool_arena_misses_total = 0 after solving, want > 0")
	}
	if v := ts.metric(t, "mincutd_pool_arena_hits_total"); v == 0 {
		t.Error("mincutd_pool_arena_hits_total = 0 after two solves, want > 0")
	}
	if v := ts.metric(t, "mincutd_pool_inline_runs_total"); v != 0 {
		t.Errorf("mincutd_pool_inline_runs_total = %d, want 0", v)
	}
}
