package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/service/registry"
	"repro/internal/service/sched"
	"repro/internal/trace"
)

// newTracedServer wires a server whose scheduler publishes traces into a
// ring the API serves.
func newTracedServer(t *testing.T) *testServer {
	t.Helper()
	ring := trace.NewRing(16)
	reg := registry.New(0, nil)
	sch := sched.New(sched.Config{Workers: 2, Traces: ring})
	api := New(reg, sch, nil, Options{Traces: ring, Version: "test-build"})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := sch.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
	})
	return &testServer{Server: ts, api: api, sch: sch}
}

// solveSync runs one synchronous solve and returns the job ID.
func solveSync(t *testing.T, ts *testServer, graphID, body string) string {
	t.Helper()
	var resp struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
	}
	code, raw := ts.do(t, "POST", "/v1/graphs/"+graphID+"/mincut", "application/json", []byte(body), &resp)
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("solve: %d %s", code, raw)
	}
	return resp.JobID
}

// TestTraceEndpoints is the end-to-end acceptance path of the tracing
// tentpole: solve over HTTP, fetch the job's span tree by ID, and list
// it with filters.
func TestTraceEndpoints(t *testing.T) {
	ts := newTracedServer(t)
	id := ts.uploadCycle(t, 32)
	// Pin the paper engine: this test asserts its packing/scan span chain,
	// and the default "auto" sends a 32-vertex graph to stoerwagner.
	jobID := solveSync(t, ts, id, `{"seed": 3, "engine": "geissmann"}`)

	var tr trace.Trace
	code, raw := ts.do(t, "GET", "/v1/traces/"+jobID, "", nil, &tr)
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d %s", code, raw)
	}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"job", "queue-wait", "http", "run", "packing", "scan"} {
		if names[want] == 0 {
			t.Fatalf("trace lacks %q span; have %v", want, names)
		}
	}
	if tr.RootAttr("graph") != id {
		t.Fatalf("root graph attr = %q, want %q", tr.RootAttr("graph"), id)
	}

	var list struct {
		Traces []traceSummary `json:"traces"`
		Total  int64          `json:"total"`
	}
	code, raw = ts.do(t, "GET", "/v1/traces?graph="+id, "", nil, &list)
	if code != http.StatusOK || len(list.Traces) != 1 || list.Traces[0].ID != jobID {
		t.Fatalf("list by graph: %d %s", code, raw)
	}
	if list.Traces[0].Spans != len(tr.Spans) || list.Traces[0].State != "done" {
		t.Fatalf("summary row wrong: %+v", list.Traces[0])
	}
	// A silly threshold filters everything; both spellings parse.
	for _, q := range []string{"1h", "3600000"} {
		code, _ = ts.do(t, "GET", "/v1/traces?min_duration="+q, "", nil, &list)
		if code != http.StatusOK || len(list.Traces) != 0 {
			t.Fatalf("min_duration=%s: %d with %d rows", q, code, len(list.Traces))
		}
	}
	code, _ = ts.do(t, "GET", "/v1/traces?min_duration=bogus", "", nil, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad min_duration: %d", code)
	}
	code, _ = ts.do(t, "GET", "/v1/traces?limit=0", "", nil, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad limit: %d", code)
	}
	code, _ = ts.do(t, "GET", "/v1/traces/job-9999", "", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d", code)
	}
}

// TestTracesDisabled: without a ring the trace routes are a clean 404,
// not a panic or an empty 200.
func TestTracesDisabled(t *testing.T) {
	ts := newTestServer(t, 1)
	for _, path := range []string{"/v1/traces", "/v1/traces/job-1"} {
		if code, _ := ts.do(t, "GET", path, "", nil, nil); code != http.StatusNotFound {
			t.Fatalf("%s without tracing: %d, want 404", path, code)
		}
	}
}

// TestRequestIDHeader: responses carry an X-Request-Id; a client-supplied
// one is echoed back and lands on the job trace's http span.
func TestRequestIDHeader(t *testing.T) {
	ts := newTracedServer(t)
	id := ts.uploadCycle(t, 16)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id assigned")
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/graphs/"+id+"/mincut", strings.NewReader(`{"seed": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-abc")
	req.Header.Set("Content-Type", "application/json")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jr struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-abc" {
		t.Fatalf("X-Request-Id = %q, want echo of client-abc", got)
	}
	var tr trace.Trace
	if code, raw := ts.do(t, "GET", "/v1/traces/"+jr.JobID, "", nil, &tr); code != http.StatusOK {
		t.Fatalf("GET trace: %d %s", code, raw)
	}
	found := false
	for _, sp := range tr.Spans {
		if sp.Name != "http" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "request_id" && a.Value == "client-abc" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("http span lacks request_id=client-abc: %+v", tr.Spans)
	}
}

// TestHealthzBuildInfo: /healthz reports the build, and /metrics carries
// the build_info gauge plus the new histogram families after a solve.
func TestHealthzBuildInfo(t *testing.T) {
	ts := newTracedServer(t)
	var hz map[string]string
	code, raw := ts.do(t, "GET", "/healthz", "", nil, &hz)
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d %s", code, raw)
	}
	if hz["version"] != "test-build" || hz["go_version"] != runtime.Version() || hz["status"] != "ok" {
		t.Fatalf("/healthz = %v", hz)
	}

	id := ts.uploadCycle(t, 32)
	solveSync(t, ts, id, `{"seed": 3}`)
	code, body := ts.do(t, "GET", "/metrics", "", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`mincutd_build_info{version="test-build",go_version="` + runtime.Version() + `"} 1`,
		`mincutd_solve_duration_seconds_bucket{class="interactive",phase="packing",le="+Inf"}`,
		`mincutd_solve_duration_seconds_count{class="interactive",phase="scan"}`,
		`mincutd_queue_wait_seconds_bucket{class="interactive",le="+Inf"}`,
		`mincutd_http_request_duration_seconds_bucket{route="POST /v1/graphs/{id}/mincut",code="200",le="+Inf"} 1`,
		// The pre-histogram series must survive for old dashboards.
		`mincutd_queue_wait_seconds_total{class="interactive"}`,
		`mincutd_solve_phase_seconds_sum{phase="packing"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics lacks %s in:\n%s", want, text)
		}
	}
}

// TestJobEventsFromBeyondEnd is the regression test for resume cursors
// past the end of a finished event log: the stream must be an empty 200
// that terminates, never a 400 and never a hang.
func TestJobEventsFromBeyondEnd(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 16)
	jobID := solveSync(t, ts, id, `{"seed": 1}`)

	done := make(chan struct{})
	go func() {
		defer close(done)
		code, body := ts.do(t, "GET", "/v1/jobs/"+jobID+"/events?from=999999", "", nil, nil)
		if code != http.StatusOK {
			t.Errorf("from beyond end: %d %s", code, body)
		}
		if len(body) != 0 {
			t.Errorf("from beyond end: body %q, want empty", body)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("events stream with from beyond end hung")
	}

	// Sanity: a valid cursor still replays the tail, ending in the result.
	code, body := ts.do(t, "GET", "/v1/jobs/"+jobID+"/events?from=0", "", nil, nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"type":"result"`) {
		t.Fatalf("full replay: %d %s", code, body)
	}
	if code, _ := ts.do(t, "GET", "/v1/jobs/"+jobID+"/events?from=-1", "", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("negative from: %d, want 400", code)
	}
}
