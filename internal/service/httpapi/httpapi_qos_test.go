package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	parcut "repro"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
)

// newTestServerCfg is newTestServer with full scheduler control (class
// weights, queue caps).
func newTestServerCfg(t *testing.T, cfg sched.Config) *testServer {
	t.Helper()
	reg := registry.New(0, nil)
	sch := sched.New(cfg)
	api := New(reg, sch, nil, Options{})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		if err := sch.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
	})
	return &testServer{Server: ts, api: api, sch: sch}
}

// metricLabeled scrapes one labelled sample, e.g.
// metricLabeled(t, `mincutd_queue_depth{class="background"}`).
func (ts *testServer) metricLabeled(t *testing.T, sample string) int64 {
	t.Helper()
	code, body := ts.do(t, "GET", "/metrics", "", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("sample %s missing from:\n%s", sample, body)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// uploadRandom uploads a random multi-tree graph in the text format and
// returns its ID.
func (ts *testServer) uploadRandom(t *testing.T, n, m int, seed int64) string {
	t.Helper()
	g := parcut.RandomGraph(n, m, 30, seed)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var gr graphResponse
	code, raw := ts.do(t, "POST", "/v1/graphs", "", buf.Bytes(), &gr)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, raw)
	}
	return gr.ID
}

// TestJobEventsStream is the live-progress acceptance test: the NDJSON
// stream of a multi-tree solve must carry the lifecycle, the packing and
// scan phase transitions, and terminate with the final result event.
func TestJobEventsStream(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadRandom(t, 60, 200, 11)

	var jr jobResponse
	// Pin the paper engine: the test asserts its packing/scan phase
	// transitions, and the default "auto" sends a 60-vertex graph to
	// stoerwagner (whose contract phase httpapi_engines_test covers).
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 3, "class": "batch", "async": true, "engine": "geissmann"}`), &jr)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	if jr.Class != "batch" {
		t.Fatalf("async response class = %q, want batch", jr.Class)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/jobs/" + jr.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type event struct {
		Seq      int      `json:"seq"`
		Type     string   `json:"type"`
		State    string   `json:"state"`
		Phase    string   `json:"phase"`
		Value    *int64   `json:"value"`
		Fraction *float64 `json:"fraction"`
		Terminal bool     `json:"terminal"`
	}
	var events []event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		if ev.Terminal {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("only %d events streamed: %+v", len(events), events)
	}
	if events[0].Type != "state" || events[0].State != "queued" || events[0].Seq != 0 {
		t.Fatalf("first event = %+v, want state=queued seq=0", events[0])
	}
	sawRunning := false
	phases := map[string]bool{}
	for _, ev := range events {
		if ev.Type == "state" && ev.State == "running" {
			sawRunning = true
		}
		if ev.Type == "phase" {
			phases[ev.Phase] = true
		}
	}
	if !sawRunning {
		t.Fatalf("no running transition in %+v", events)
	}
	if !phases["packing"] || !phases["scan"] {
		t.Fatalf("phase transitions %v, want packing and scan", phases)
	}
	last := events[len(events)-1]
	if !last.Terminal || last.Type != "result" || last.State != "done" || last.Value == nil {
		t.Fatalf("terminal event = %+v, want done result with value", last)
	}

	// Resuming from the end yields exactly the terminal tail, no repeats.
	resp2, err := client.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, jr.JobID, last.Seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	n := 0
	for sc2.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("resume from final seq streamed %d events, want 1", n)
	}
}

// TestJobStatusReportsClassAndProgress: GET /v1/jobs/{id} carries the QoS
// class and a live progress block while the job is queued or running.
func TestJobStatusReportsClassAndProgress(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 8)
	blocker := ts.startBlocker(t, id)

	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 5, "class": "background", "async": true}`), &jr)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	var st jobResponse
	code, raw = ts.do(t, "GET", "/v1/jobs/"+jr.JobID, "", nil, &st)
	if code != http.StatusOK {
		t.Fatalf("job status: %d %s", code, raw)
	}
	if st.Status != "queued" || st.Class != "background" {
		t.Fatalf("status = %+v, want queued background", st)
	}
	if st.Progress == nil || st.Fraction == nil {
		t.Fatalf("queued job has no progress block: %s", raw)
	}
	if d := ts.metricLabeled(t, `mincutd_queue_depth{class="background"}`); d != 1 {
		t.Fatalf("background queue depth = %d, want 1", d)
	}

	ts.cancelJob(t, blocker)
	ts.waitMetricAtLeast(t, "mincutd_jobs_completed_total", 1)
	code, raw = ts.do(t, "GET", "/v1/jobs/"+jr.JobID, "", nil, &st)
	if code != http.StatusOK || st.Status != "done" || st.Value == nil {
		t.Fatalf("finished job status: %d %s", code, raw)
	}
	if st.Fraction == nil || *st.Fraction != 1 {
		t.Fatalf("done job fraction = %v, want 1", st.Fraction)
	}
}

// TestClassValidationAndCapRejections: an unknown class is a 400; a class
// whose queue cap is full gets 429 and the labelled rejection counter.
func TestClassValidationAndCapRejections(t *testing.T) {
	ts := newTestServerCfg(t, sched.Config{
		Workers: 1, MaxFanout: 1,
		ClassQueueCaps: map[sched.Class]int{sched.ClassBackground: 1},
	})
	id := ts.uploadCycle(t, 8)

	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"class": "express"}`), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown class: %d %s", code, raw)
	}

	blocker := ts.startBlocker(t, id)
	defer ts.cancelJob(t, blocker)
	// Pin the seeded paper engine: under "auto" this graph resolves to
	// stoerwagner, where both seeds normalize to one cache key and the
	// second submit would coalesce instead of tripping the cap.
	if code, raw = ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 1, "class": "background", "async": true, "engine": "geissmann"}`), nil); code != http.StatusAccepted {
		t.Fatalf("first background submit: %d %s", code, raw)
	}
	code, raw = ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed": 2, "class": "background", "async": true, "engine": "geissmann"}`), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: %d %s, want 429", code, raw)
	}
	if v := ts.metricLabeled(t, `mincutd_jobs_rejected_total{reason="class_cap"}`); v != 1 {
		t.Fatalf("class_cap rejections = %d, want 1", v)
	}
	if v := ts.metric(t, "mincutd_jobs_rejected_total"); v != 1 {
		t.Fatalf("unlabelled rejected sum = %d, want 1", v)
	}
}

// TestBatchUploadGroupCommitsToDisk: a store-backed batch upload commits
// all graphs with two fsync barriers, visible in the fsync metric.
func TestBatchUploadGroupCommitsToDisk(t *testing.T) {
	ts := newStoreServer(t, t.TempDir(), 1<<20, 0)
	body := `{"graphs": [
		{"text": "p cut 3 2\ne 0 1 5\ne 1 2 7\n"},
		{"n": 4, "edges": [[0,1,3],[1,2,1],[2,3,4],[3,0,2]]},
		{"text": "p cut 3 2\ne 0 1 9\ne 1 2 9\n"}
	]}`
	var out struct {
		Results []batchUploadEntry `json:"results"`
	}
	code, raw := ts.do(t, "POST", "/v1/graphs:batch", "application/json", []byte(body), &out)
	if code != http.StatusOK {
		t.Fatalf("batch upload: %d %s", code, raw)
	}
	for i, r := range out.Results {
		if r.Status != "created" {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
	if v := ts.metric(t, "mincutd_store_fsyncs_total"); v != 2 {
		t.Fatalf("batch of 3 graphs issued %d fsyncs, want 2 (group commit)", v)
	}
	// The graphs are really there: solve one.
	var jr jobResponse
	code, raw = ts.do(t, "POST", "/v1/graphs/"+out.Results[0].ID+"/mincut", "application/json",
		[]byte(`{"seed": 1}`), &jr)
	if code != http.StatusOK || jr.Value == nil || *jr.Value != 5 {
		t.Fatalf("solve after batch upload: %d %s", code, raw)
	}
}
