package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
	"repro/internal/trace"
)

// clusterNode is one in-process cluster member: a full server stack on a
// real listener, because cluster routing talks real HTTP between nodes.
type clusterNode struct {
	addr string
	sch  *sched.Scheduler
	node *cluster.Node
	api  *Server
	srv  *http.Server
	ln   net.Listener
}

// newTestCluster boots size members on loopback listeners and returns
// them ready to serve. Each node has its own registry, scheduler, trace
// ring, and a distinct job-ID prefix, exactly like separate processes.
func newTestCluster(t *testing.T, size int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, size)
	members := make([]string, size)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &clusterNode{ln: ln, addr: ln.Addr().String()}
		members[i] = ln.Addr().String()
	}
	for i, cn := range nodes {
		reg := registry.New(0, nil)
		ring := trace.NewRing(64)
		cn.sch = sched.New(sched.Config{Workers: 2, Traces: ring, IDPrefix: fmt.Sprintf("n%d-", i)})
		node, err := cluster.New(cluster.Options{
			Self:          cn.addr,
			Members:       members,
			Local:         sched.Local{Scheduler: cn.sch},
			Graphs:        reg,
			RequestID:     RequestID,
			ProbeInterval: time.Hour, // health transitions are driven by forwards in these tests
		})
		if err != nil {
			t.Fatal(err)
		}
		cn.node = node
		cn.api = New(reg, cn.sch, nil, Options{Traces: ring, Submitter: node, Cluster: node})
		cn.srv = &http.Server{Handler: cn.api.Handler()}
		go func(cn *clusterNode) { _ = cn.srv.Serve(cn.ln) }(cn)
	}
	t.Cleanup(func() {
		for _, cn := range nodes {
			cn.node.Close()
			_ = cn.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := cn.sch.Shutdown(ctx); err != nil {
				t.Errorf("scheduler shutdown: %v", err)
			}
			cancel()
		}
	})
	return nodes
}

// clusterDo sends one request to a specific node and decodes the JSON
// response body into out (unless out is nil).
func clusterDo(t *testing.T, addr, method, path, contentType string, body []byte, headers map[string]string, out any) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, buf.String(), err)
		}
	}
	return resp, buf.Bytes()
}

// cycleGraphText builds the n-cycle upload body with a weight tweak so
// different seeds of the generator produce different content hashes
// (and therefore different owners). Minimum cut = 2*minWeight.
func cycleGraphText(n int, minWeight int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cut %d %d\n", n, n)
	for i := 0; i < n; i++ {
		w := minWeight + int64(i%3)
		fmt.Fprintf(&b, "e %d %d %d\n", i, (i+1)%n, w)
	}
	return b.String()
}

// uploadOwnedBy uploads generated graphs through via until one lands on
// the wanted owner, returning its ID and its minimum cut value (2*w for
// the w used). Placement is content-addressed, so the test varies content
// until the hash falls in the right shard.
func uploadOwnedBy(t *testing.T, nodes []*clusterNode, via, owner int) (string, int64) {
	t.Helper()
	for w := int64(1); w < 200; w++ {
		gr := struct {
			ID   string `json:"id"`
			Node string `json:"node"`
		}{}
		resp, _ := clusterDo(t, nodes[via].addr, http.MethodPost, "/v1/graphs", "", []byte(cycleGraphText(8, w)), nil, &gr)
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			t.Fatalf("upload: status %d", resp.StatusCode)
		}
		if gr.Node == nodes[owner].addr {
			return gr.ID, 2 * w
		}
	}
	t.Fatal("no generated graph hashed onto the wanted owner")
	return "", 0
}

// TestClusterSolveThroughAnyNode pins the cluster's result-neutrality
// contract: the same solve through the owner and through a non-owner
// returns byte-identical results, and responses report the owner as the
// serving node.
func TestClusterSolveThroughAnyNode(t *testing.T) {
	nodes := newTestCluster(t, 2)
	id, want := uploadOwnedBy(t, nodes, 0, 1) // stored on node 1, uploaded via node 0

	var bodies []map[string]any
	for _, via := range nodes {
		jr := jobResponse{}
		resp, raw := clusterDo(t, via.addr, http.MethodPost, "/v1/graphs/"+id+"/mincut", "application/json",
			[]byte(`{"seed":1,"want_partition":true}`), nil, &jr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve via %s: status %d: %s", via.addr, resp.StatusCode, raw)
		}
		if jr.Value == nil || *jr.Value != want {
			t.Fatalf("solve via %s: value %v, want %d", via.addr, jr.Value, want)
		}
		if jr.Node != nodes[1].addr {
			t.Fatalf("solve via %s reported node %q, want owner %s", via.addr, jr.Node, nodes[1].addr)
		}
		if got := resp.Header.Get(cluster.NodeHeader); got != nodes[1].addr {
			t.Fatalf("solve via %s: %s = %q, want owner", via.addr, cluster.NodeHeader, got)
		}
		if !strings.HasPrefix(jr.JobID, "n1-") {
			t.Fatalf("job ID %q does not carry the owner's prefix", jr.JobID)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		// The owner legitimately reports a cache hit on the repeat solve;
		// everything else must be identical through either entry node.
		delete(m, "cached")
		bodies = append(bodies, m)
	}
	if !reflect.DeepEqual(bodies[0], bodies[1]) {
		t.Fatalf("solve responses differ by entry node:\n%v\n%v", bodies[0], bodies[1])
	}

	// The graph is visible through both nodes too.
	for _, via := range nodes {
		gr := graphResponse{}
		resp, _ := clusterDo(t, via.addr, http.MethodGet, "/v1/graphs/"+id, "", nil, nil, &gr)
		if resp.StatusCode != http.StatusOK || gr.ID != id || gr.Node != nodes[1].addr {
			t.Fatalf("graph info via %s = (%d, %+v), want the owner's record", via.addr, resp.StatusCode, gr)
		}
	}
}

// TestClusterRequestIDInOwnerTrace: a solve forwarded by a non-owner
// lands in the owner's trace ring carrying the original request ID and
// the forwarding node, so a cross-node solve is debuggable end to end.
func TestClusterRequestIDInOwnerTrace(t *testing.T) {
	nodes := newTestCluster(t, 2)
	id, _ := uploadOwnedBy(t, nodes, 0, 1)

	jr := jobResponse{}
	resp, _ := clusterDo(t, nodes[0].addr, http.MethodPost, "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed":3}`), map[string]string{"X-Request-Id": "rid-cross-node"}, &jr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	_, raw := clusterDo(t, nodes[1].addr, http.MethodGet, "/v1/traces/"+jr.JobID, "", nil, nil, nil)
	if !strings.Contains(string(raw), "rid-cross-node") {
		t.Errorf("owner trace %s does not carry the forwarded request ID: %s", jr.JobID, raw)
	}
	if !strings.Contains(string(raw), nodes[0].addr) {
		t.Errorf("owner trace %s does not name the forwarding node %s: %s", jr.JobID, nodes[0].addr, raw)
	}
}

// TestClusterJobLookupAcrossNodes: job IDs are node-prefixed, and a job
// status query through the wrong node falls back to the peer that minted
// the ID.
func TestClusterJobLookupAcrossNodes(t *testing.T) {
	nodes := newTestCluster(t, 2)
	id, _ := uploadOwnedBy(t, nodes, 0, 1)
	jr := jobResponse{}
	if resp, _ := clusterDo(t, nodes[1].addr, http.MethodPost, "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"seed":4}`), nil, &jr); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	got := jobResponse{}
	resp, raw := clusterDo(t, nodes[0].addr, http.MethodGet, "/v1/jobs/"+jr.JobID, "", nil, nil, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job lookup via non-owner: status %d: %s", resp.StatusCode, raw)
	}
	if got.JobID != jr.JobID || got.Status != string(sched.StateDone) {
		t.Fatalf("job lookup via non-owner = %+v, want done job %s", got, jr.JobID)
	}
}

// TestClusterBatchFanout: the multi-graph batch endpoint fans solves out
// to each graph's owner concurrently and merges results in input order,
// whichever node accepted the batch.
func TestClusterBatchFanout(t *testing.T) {
	nodes := newTestCluster(t, 2)
	id0, want0 := uploadOwnedBy(t, nodes, 0, 0)
	id1, want1 := uploadOwnedBy(t, nodes, 0, 1)
	wants := map[string]int64{id0: want0, id1: want1}

	req := fmt.Sprintf(`{"items":[{"graph_id":%q,"seed":1},{"graph_id":%q,"seed":1},{"graph_id":"sha256:missing","seed":1}]}`, id1, id0)
	var out struct {
		Results []clusterBatchEntry `json:"results"`
	}
	resp, raw := clusterDo(t, nodes[0].addr, http.MethodPost, "/v1/mincut:batch", "application/json", []byte(req), nil, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, raw)
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(out.Results))
	}
	// In input order: remote graph first, local second, failure last.
	if out.Results[0].GraphID != id1 || out.Results[0].Node != nodes[1].addr || out.Results[0].Status != "done" {
		t.Errorf("entry 0 = %+v, want done on %s", out.Results[0], nodes[1].addr)
	}
	if out.Results[1].GraphID != id0 || out.Results[1].Node != nodes[0].addr || out.Results[1].Status != "done" {
		t.Errorf("entry 1 = %+v, want done on %s", out.Results[1], nodes[0].addr)
	}
	for _, e := range out.Results[:2] {
		if e.Value == nil || *e.Value != wants[e.GraphID] {
			t.Errorf("entry %s value = %v, want %d", e.GraphID, e.Value, wants[e.GraphID])
		}
	}
	if out.Results[2].Status == "done" || out.Results[2].Error == "" {
		t.Errorf("entry 2 = %+v, want a per-item failure for the unknown graph", out.Results[2])
	}
}

// TestClusterPeerDown: killing one node takes out exactly its shard —
// solves for its graphs answer 502 through the survivor, solves for the
// survivor's own graphs keep working.
func TestClusterPeerDown(t *testing.T) {
	nodes := newTestCluster(t, 2)
	id0, want0 := uploadOwnedBy(t, nodes, 0, 0)
	id1, _ := uploadOwnedBy(t, nodes, 0, 1)

	_ = nodes[1].srv.Close()
	nodes[1].ln.Close()

	resp, raw := clusterDo(t, nodes[0].addr, http.MethodPost, "/v1/graphs/"+id1+"/mincut", "application/json", []byte(`{"seed":9}`), nil, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("solve for dead shard: status %d, want 502: %s", resp.StatusCode, raw)
	}
	jr := jobResponse{}
	if resp, _ := clusterDo(t, nodes[0].addr, http.MethodPost, "/v1/graphs/"+id0+"/mincut", "application/json", []byte(`{"seed":9}`), nil, &jr); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve for surviving shard: status %d, want 200", resp.StatusCode)
	}
	if jr.Value == nil || *jr.Value != want0 {
		t.Fatalf("surviving shard value = %v, want %d", jr.Value, want0)
	}
	// The failed forward gated the dead peer; metrics expose it.
	_, metrics := clusterDo(t, nodes[0].addr, http.MethodGet, "/metrics", "", nil, nil, nil)
	want := fmt.Sprintf("mincutd_cluster_peer_up{peer=%q} 0", nodes[1].addr)
	if !strings.Contains(string(metrics), want) {
		t.Errorf("metrics missing %q after forward failure", want)
	}
}

// TestClusterBatchUploadSharding: a batch upload through one node spreads
// graphs across shards by content hash and reports each item's node, in
// input order.
func TestClusterBatchUploadSharding(t *testing.T) {
	nodes := newTestCluster(t, 2)
	items := make([]string, 12)
	for i := range items {
		items[i] = fmt.Sprintf(`{"text":%q}`, cycleGraphText(8, int64(i+1)))
	}
	body := `{"graphs":[` + strings.Join(items, ",") + `]}`
	var out struct {
		Results []batchUploadEntry `json:"results"`
	}
	resp, raw := clusterDo(t, nodes[0].addr, http.MethodPost, "/v1/graphs:batch", "application/json", []byte(body), nil, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch upload: status %d: %s", resp.StatusCode, raw)
	}
	if len(out.Results) != len(items) {
		t.Fatalf("batch upload returned %d results, want %d", len(out.Results), len(items))
	}
	seen := map[string]int{}
	for i, e := range out.Results {
		if e.Index != i || e.Status != "created" || e.ID == "" {
			t.Fatalf("entry %d = %+v, want created in input order", i, e)
		}
		seen[e.Node]++
		// The reported node must agree with the ring.
		if want := nodes[0].node.Owner(e.ID); e.Node != want {
			t.Errorf("entry %d stored on %q, ring says %q", i, e.Node, want)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("12 distinct graphs all hashed to one shard: %v", seen)
	}
	// Every graph is now retrievable through the non-uploading node too.
	for _, e := range out.Results {
		gr := graphResponse{}
		if resp, _ := clusterDo(t, nodes[1].addr, http.MethodGet, "/v1/graphs/"+e.ID, "", nil, nil, &gr); resp.StatusCode != http.StatusOK {
			t.Errorf("graph %s not reachable via node 1: status %d", e.ID, resp.StatusCode)
		}
	}
}
