package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
)

// ctxKey keys httpapi's context values.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request's correlation ID, assigned (or accepted
// from the client's X-Request-Id header) by the server middleware; "" if
// the context did not pass through it.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter captures the response code for the access log and the
// request-duration histogram. It forwards Flush so the streaming handlers
// (batch solves, job events) keep flushing through the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// middleware wraps the route table with the cross-cutting request
// concerns: a correlation ID (accepted from X-Request-Id or minted),
// echoed back in the response and stored in the context for handlers to
// attach to job traces; a structured access-log line per request; and the
// per-route/per-code latency histogram.
func (s *Server) middleware(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)
		if s.cluster != nil {
			// Stamp which node handled this; a proxied response overwrites
			// it with the owner's stamp, so clients see who really served.
			w.Header().Set(cluster.NodeHeader, s.cluster.Self())
		}
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))
		// Resolve the route pattern up front: ServeMux hands handlers a
		// shallow copy of the request, so a pattern set during dispatch
		// would be invisible out here.
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		d := time.Since(start)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.httpm.observe(route, code, d)
		s.log.Info("http request",
			"request_id", rid,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"code", code,
			"duration", d,
		)
	})
}

// httpMetrics accumulates per-route/per-code request-duration histograms
// over latencyBuckets. A plain mutex suffices: the rate here is bounded
// by HTTP handling, not the solver hot path.
type httpMetrics struct {
	mu     sync.Mutex
	series map[string]*httpSeries
}

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram, matching the scheduler's solve-latency buckets so the two
// can share dashboard heat maps.
var latencyBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10, 60}

// httpSeries is one (route, code) labelled histogram. Buckets are
// cumulative (le semantics); the implicit +Inf bucket is Count.
type httpSeries struct {
	Route    string
	Code     int
	Count    int64
	SumNanos int64
	Buckets  [len(latencyBuckets)]int64
}

func (h *httpMetrics) observe(route string, code int, d time.Duration) {
	key := fmt.Sprintf("%s|%d", route, code)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.series == nil {
		h.series = make(map[string]*httpSeries)
	}
	sr := h.series[key]
	if sr == nil {
		sr = &httpSeries{Route: route, Code: code}
		h.series[key] = sr
	}
	sr.Count++
	sr.SumNanos += int64(d)
	secs := d.Seconds()
	for i, ub := range latencyBuckets {
		if secs <= ub {
			sr.Buckets[i]++
		}
	}
}

// snapshot returns the series sorted by route then code, so /metrics
// renders deterministically.
func (h *httpMetrics) snapshot() []httpSeries {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]httpSeries, 0, len(h.series))
	for _, sr := range h.series {
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Route != out[j].Route {
			return out[i].Route < out[j].Route
		}
		return out[i].Code < out[j].Code
	})
	return out
}
