package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestMinCutEngineSelection drives every engine value end-to-end through
// POST /v1/graphs/{id}/mincut: all four produce the same cut value on the
// same graph, the response reports the concrete engine ("auto" and the
// default report what was picked), auto shares cache entries with the
// explicit engine it resolves to, and an unknown engine is a 400.
func TestMinCutEngineSelection(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 60)

	resolved := map[string]string{}
	values := map[string]int64{}
	cached := map[string]bool{}
	for _, e := range []string{"", "auto", "stoerwagner", "geissmann", "kargerstein"} {
		body, _ := json.Marshal(map[string]any{"engine": e, "seed": 1})
		var jr jobResponse
		code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json", body, &jr)
		if code != http.StatusOK {
			t.Fatalf("engine %q: %d %s", e, code, raw)
		}
		if jr.Value == nil {
			t.Fatalf("engine %q: no value in %s", e, raw)
		}
		resolved[e], values[e], cached[e] = jr.Engine, *jr.Value, jr.Cached
	}
	for e, v := range values {
		if v != 4 {
			t.Fatalf("engine %q found cut %d, want 4", e, v)
		}
	}
	// n=60 sits under the auto rule's SmallN: both the default and "auto"
	// must resolve to the exact baseline and say so.
	if resolved[""] != "stoerwagner" || resolved["auto"] != "stoerwagner" {
		t.Fatalf(`resolved engines: ""=%q auto=%q, want stoerwagner for both`, resolved[""], resolved["auto"])
	}
	if resolved["geissmann"] != "geissmann" || resolved["kargerstein"] != "kargerstein" {
		t.Fatalf("explicit engines echoed as %q, %q", resolved["geissmann"], resolved["kargerstein"])
	}
	// The "" solve ran first and populated the stoerwagner entry; "auto"
	// and the explicit request must both hit it — resolution happens
	// before the cache key is built.
	if !cached["auto"] || !cached["stoerwagner"] {
		t.Fatalf("auto cached=%v, explicit stoerwagner cached=%v; want both to share the first solve's entry",
			cached["auto"], cached["stoerwagner"])
	}

	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"engine":"edmondskarp"}`), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown engine: %d %s, want 400", code, raw)
	}
}

// TestMinCutBatchEngine: the batch endpoint accepts the engine field and
// echoes the resolved engine in its envelope.
func TestMinCutBatchEngine(t *testing.T) {
	ts := newTestServer(t, 2)
	id := ts.uploadCycle(t, 24)
	var resp struct {
		GraphID string       `json:"graph_id"`
		Engine  string       `json:"engine"`
		Results []batchEntry `json:"results"`
	}
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut:batch", "application/json",
		[]byte(`{"seeds":[1,2],"engine":"stoerwagner"}`), &resp)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, raw)
	}
	if resp.Engine != "stoerwagner" {
		t.Fatalf("batch envelope engine = %q, want stoerwagner", resp.Engine)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("batch results = %d, want 2", len(resp.Results))
	}
	for _, r := range resp.Results {
		if r.Status != "done" || r.Value == nil || *r.Value != 4 {
			t.Fatalf("batch entry %+v, want done with value 4", r)
		}
	}
}

// TestBaselineEngineJobObservability: an async job on a promoted baseline
// engine carries its engine through the job API, logs the "contract"
// phase in its event stream, and lands in the engine-labeled completion
// metric.
func TestBaselineEngineJobObservability(t *testing.T) {
	ts := newTestServer(t, 1)
	id := ts.uploadCycle(t, 200)
	var jr jobResponse
	code, raw := ts.do(t, "POST", "/v1/graphs/"+id+"/mincut", "application/json",
		[]byte(`{"engine":"stoerwagner","async":true}`), &jr)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", code, raw)
	}
	if jr.Engine != "stoerwagner" {
		t.Fatalf("202 engine = %q, want stoerwagner", jr.Engine)
	}
	deadline := time.Now().Add(60 * time.Second)
	var st jobResponse
	for {
		code, raw = ts.do(t, "GET", "/v1/jobs/"+jr.JobID, "", nil, &st)
		if code != http.StatusOK {
			t.Fatalf("job status: %d %s", code, raw)
		}
		if st.Engine != "stoerwagner" {
			t.Fatalf("job %s reports engine %q in state %s", jr.JobID, st.Engine, st.Status)
		}
		if st.Status == "done" {
			break
		}
		if st.Status == "failed" || st.Status == "canceled" {
			t.Fatalf("job ended %s: %s", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Value == nil || *st.Value != 4 {
		t.Fatalf("done job value = %v, want 4", st.Value)
	}

	// The finished event log must show the baseline engine's phase.
	code, raw = ts.do(t, "GET", "/v1/jobs/"+jr.JobID+"/events", "", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	sawContract := false
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			Phase string `json:"phase"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Type == "phase" && ev.Phase == "contract" {
			sawContract = true
		}
	}
	if !sawContract {
		t.Fatalf("no contract phase event in log:\n%s", raw)
	}

	// The engine-labeled completion counter has the job.
	if n := ts.metric(t, `mincutd_jobs_completed_total{class="interactive",engine="stoerwagner"}`); n != 1 {
		t.Fatalf("completed{interactive,stoerwagner} = %d, want 1", n)
	}
}
