// Package httpapi is mincutd's JSON-over-HTTP front end. It glues the
// graph registry and the job scheduler to a small REST surface:
//
//	POST   /v1/graphs                    upload a graph (text format or JSON)
//	POST   /v1/graphs:batch              upload many graphs in one request
//	GET    /v1/graphs/{id}               stored graph info
//	DELETE /v1/graphs/{id}               remove a graph (memory, disk, result cache)
//	POST   /v1/graphs/{id}/mincut        solve (sync by default, async opt-in, QoS class opt-in)
//	POST   /v1/graphs/{id}/mincut:batch  solve many seeds in one request
//	GET    /v1/jobs/{id}                 job status / result / live progress
//	GET    /v1/jobs/{id}/events          NDJSON event stream until the job is terminal
//	DELETE /v1/jobs/{id}                 cancel a queued or running job
//	GET    /v1/traces                    finished solve traces (filter by graph, min_duration)
//	GET    /v1/traces/{id}               one trace's full span tree
//	GET    /healthz                      liveness (503 while draining), build info
//	GET    /metrics                      Prometheus text exposition
//
// Every response carries an X-Request-Id (echoing the client's, or
// minted), each request logs one structured access line, and solve
// requests attach an "http" span to the job trace they touch.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	parcut "repro"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/service/registry"
	"repro/internal/service/sched"
	"repro/internal/service/store"
	"repro/internal/trace"
)

// maxUploadBytes caps graph upload bodies (single and batch).
const maxUploadBytes = 256 << 20

// Server holds the service state behind the HTTP handlers.
type Server struct {
	reg     *registry.Registry
	sch     *sched.Scheduler
	sub     sched.Submitter // routing submitter: the cluster node, or local
	local   sched.Submitter // always this node's scheduler
	cluster *cluster.Node   // nil when running single-node
	st      *store.Store    // nil when running memory-only; metrics only
	traces  *trace.Ring     // nil when tracing is disabled; trace routes 404
	log     *slog.Logger
	version string

	reqSeq   atomic.Int64
	httpm    httpMetrics
	draining atomic.Bool
}

// Options carries the server's observability wiring; the zero value is a
// server with tracing disabled, the default logger, and version "dev".
type Options struct {
	// Traces is the ring the scheduler publishes finished solve traces
	// into; the trace endpoints serve from it. Nil disables them.
	Traces *trace.Ring
	// Logger receives the access log; nil means slog.Default().
	Logger *slog.Logger
	// Version is the build version reported by /healthz and the
	// mincutd_build_info metric; "" means "dev".
	Version string
	// Submitter routes solve submissions; nil means the local scheduler.
	// Cluster deployments pass the cluster.Node so submissions land on
	// each graph's owning shard.
	Submitter sched.Submitter
	// Cluster, when non-nil, turns on the cluster router: graph-scoped
	// requests this node does not own are forwarded to the owner, batch
	// requests shard across the ring, and /healthz and /metrics grow
	// cluster sections. Nil means single-node; the route table and wire
	// formats are identical either way (cluster responses additionally
	// carry "node" fields).
	Cluster *cluster.Node
}

// New wires a server around the given registry and scheduler. st is the
// disk store backing the registry, used for the persistence metrics; nil
// means the service runs memory-only.
func New(reg *registry.Registry, sch *sched.Scheduler, st *store.Store, opt Options) *Server {
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	if opt.Version == "" {
		opt.Version = "dev"
	}
	local := sched.Local{Scheduler: sch}
	sub := opt.Submitter
	if sub == nil {
		sub = local
	}
	return &Server{
		reg: reg, sch: sch, sub: sub, local: local, cluster: opt.Cluster,
		st: st, traces: opt.Traces, log: opt.Logger, version: opt.Version,
	}
}

// Handler returns the route table wrapped in the request middleware
// (request IDs, access log, latency histogram).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.routeUpload)
	mux.HandleFunc("POST /v1/graphs:batch", s.routeUploadBatch)
	mux.HandleFunc("GET /v1/graphs/{id}", s.routeGraph(s.handleGraphInfo))
	mux.HandleFunc("DELETE /v1/graphs/{id}", s.routeGraph(s.handleDeleteGraph))
	mux.HandleFunc("POST /v1/graphs/{id}/mincut", s.routeGraph(s.handleMinCut))
	mux.HandleFunc("POST /v1/graphs/{id}/mincut:batch", s.routeGraph(s.handleMinCutBatch))
	mux.HandleFunc("POST /v1/mincut:batch", s.handleClusterBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.routeJob(s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.routeJob(s.handleJobEvents))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.routeJob(s.handleCancelJob))
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.middleware(mux)
}

// attachJobSpan links the HTTP request into job's trace: an "http" span
// under the job root carrying the method, path, and request ID — and,
// for requests another cluster node forwarded here, the origin node, so
// a cross-node solve is linked back to its entry point. The returned
// func ends the span and releases the hold; it is a no-op when the job
// is untraced, its trace already published (a cached hit), or the job
// runs on another node (remote handles carry no local span).
func attachJobSpan(r *http.Request, job sched.Handle) func() {
	sp := job.TraceSpan()
	rec := sp.Recorder()
	if !sp.Active() || !rec.Hold() {
		return func() {}
	}
	hsp := sp.Child("http").Attr("method", r.Method).Attr("path", r.URL.Path)
	if rid := RequestID(r.Context()); rid != "" {
		hsp.Attr("request_id", rid)
	}
	if origin := r.Header.Get(cluster.ForwardedFromHeader); origin != "" {
		hsp.Attr("origin_node", origin)
	}
	return func() {
		hsp.End()
		rec.Release()
	}
}

// SetDraining flips /healthz to 503 and rejects new solves; uploads and
// reads keep working so load balancers can bleed traffic gracefully.
func (s *Server) SetDraining() { s.draining.Store(true) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// jsonGraph is the JSON upload form: {"n": 4, "edges": [[0,1,3], ...]}.
type jsonGraph struct {
	N     int        `json:"n"`
	Edges [][3]int64 `json:"edges"`
}

// buildJSONGraph validates and assembles the JSON upload form; the single
// and batch upload paths share it so their validation can never diverge.
func buildJSONGraph(n int, edges [][3]int64) (*parcut.Graph, error) {
	// Same vertex-count bounds as the text parser (graph.Read), which
	// this path bypasses; NewGraph panics on negative n.
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("invalid vertex count n=%d", n)
	}
	g := parcut.NewGraph(n)
	for i, e := range edges {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			return nil, fmt.Errorf("edge %d: %v", i, err)
		}
	}
	return g, nil
}

// uploadErrCode classifies a registry Put failure: a full disk is 507, any
// other backend-store fault is 502, and everything else (parse errors,
// malformed graphs, oversized-for-cache graphs) is the client's 400.
func uploadErrCode(err error) int {
	switch {
	case errors.Is(err, store.ErrDiskFull):
		return http.StatusInsufficientStorage
	case errors.Is(err, registry.ErrStore):
		return http.StatusBadGateway
	default:
		return http.StatusBadRequest
	}
}

type graphResponse struct {
	ID      string `json:"id"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Bytes   int64  `json:"bytes"`
	Existed bool   `json:"existed,omitempty"`
	// Node is the cluster member holding the graph; omitted single-node.
	Node string `json:"node,omitempty"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	var (
		info    registry.Info
		existed bool
		err     error
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var jg jsonGraph
		if derr := json.NewDecoder(body).Decode(&jg); derr != nil {
			writeErr(w, http.StatusBadRequest, "bad JSON graph: %v", derr)
			return
		}
		g, berr := buildJSONGraph(jg.N, jg.Edges)
		if berr != nil {
			writeErr(w, http.StatusBadRequest, "%v", berr)
			return
		}
		info, existed, err = s.reg.PutGraph(g)
	} else {
		info, existed, err = s.reg.Put(body)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
	}
	if err != nil {
		writeErr(w, uploadErrCode(err), "%v", err)
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, graphResponse{ID: info.ID, N: info.N, M: info.M, Bytes: info.Bytes, Existed: existed, Node: s.nodeName()})
}

// maxBatchUploadItems caps how many graphs one batch upload may carry.
const maxBatchUploadItems = 1024

// batchUploadItem is one graph of a batch upload, in either of the
// single-upload encodings: the JSON form (N + Edges) or the text format
// (Text). Exactly one must be set.
type batchUploadItem struct {
	N     *int       `json:"n,omitempty"`
	Edges [][3]int64 `json:"edges,omitempty"`
	Text  string     `json:"text,omitempty"`
}

// batchUploadRequest is the POST /v1/graphs:batch body.
type batchUploadRequest struct {
	Graphs []batchUploadItem `json:"graphs"`
}

// batchUploadEntry is one element of the batch upload response. Status is
// "created", "existed" (content-hash dedup, including against graphs
// already on disk from before a restart), or "failed".
type batchUploadEntry struct {
	Index  int    `json:"index"`
	Status string `json:"status"`
	ID     string `json:"id,omitempty"`
	N      int    `json:"n,omitempty"`
	M      int    `json:"m,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	// Node is the cluster member the graph was stored on; omitted
	// single-node.
	Node  string `json:"node,omitempty"`
	Error string `json:"error,omitempty"`
}

// handleUploadBatch ingests many graphs in one round trip — the bulk
// re-ingestion path after a migration or a data-dir loss. All parseable
// items are committed as one registry batch, which group-commits to the
// disk store (two fsync barriers for the whole batch instead of two per
// graph). Items succeed or fail independently, except that a failed
// group commit fails every new item; the response reports per-item
// status in input order. The HTTP status is 200 as long as the envelope
// was well-formed.
func (s *Server) handleUploadBatch(w http.ResponseWriter, r *http.Request) {
	var req batchUploadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeErr(w, code, "bad batch upload body: %v", err)
		return
	}
	if len(req.Graphs) == 0 {
		writeErr(w, http.StatusBadRequest, "batch needs at least one graph")
		return
	}
	if len(req.Graphs) > maxBatchUploadItems {
		writeErr(w, http.StatusBadRequest, "batch of %d graphs exceeds the limit of %d", len(req.Graphs), maxBatchUploadItems)
		return
	}
	results := make([]batchUploadEntry, len(req.Graphs))
	// Parse every item first; only the parseable ones join the group
	// commit (parse failures are the item's own problem, not the batch's).
	graphs := make([]*parcut.Graph, 0, len(req.Graphs))
	graphIdx := make([]int, 0, len(req.Graphs))
	for i, item := range req.Graphs {
		g, err := parseBatchItem(item)
		if err != nil {
			results[i] = batchUploadEntry{Index: i, Status: "failed", Error: err.Error()}
			continue
		}
		graphs = append(graphs, g)
		graphIdx = append(graphIdx, i)
	}
	node := s.nodeName()
	for k, br := range s.reg.PutGraphBatch(graphs) {
		i := graphIdx[k]
		switch {
		case br.Err != nil:
			results[i] = batchUploadEntry{Index: i, Status: "failed", Error: br.Err.Error()}
		case br.Existed:
			results[i] = batchUploadEntry{Index: i, Status: "existed", ID: br.Info.ID, N: br.Info.N, M: br.Info.M, Bytes: br.Info.Bytes, Node: node}
		default:
			results[i] = batchUploadEntry{Index: i, Status: "created", ID: br.Info.ID, N: br.Info.N, M: br.Info.M, Bytes: br.Info.Bytes, Node: node}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// parseBatchItem decodes one batch upload item in either encoding.
func parseBatchItem(item batchUploadItem) (*parcut.Graph, error) {
	switch {
	case item.Text != "" && item.N == nil && item.Edges == nil:
		return parcut.ReadGraph(strings.NewReader(item.Text))
	case item.Text == "" && item.N != nil:
		return buildJSONGraph(*item.N, item.Edges)
	default:
		return nil, fmt.Errorf(`graph needs exactly one of "text" or "n"+"edges"`)
	}
}

// getGraph fetches a registered graph, writing the HTTP error (404 for
// unknown ids, 502 for a storage-layer failure such as a corrupt segment)
// itself when it returns ok=false.
func (s *Server) getGraph(w http.ResponseWriter, id string) (*parcut.Graph, registry.Info, bool) {
	g, info, err := s.reg.Get(id)
	switch {
	case err == nil:
		return g, info, true
	case errors.Is(err, registry.ErrNotFound), errors.Is(err, store.ErrNotFound):
		// The second sentinel covers a lookup racing a DELETE: the registry
		// knew the id but the backend's copy vanished before the load.
		writeErr(w, http.StatusNotFound, "unknown graph %q", id)
	default:
		// The graph is known but could not be loaded (disk error, CRC
		// mismatch): the client's request was fine, the storage is not.
		writeErr(w, http.StatusBadGateway, "load graph %q: %v", id, err)
	}
	return nil, registry.Info{}, false
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Lookup, not Get: metadata reads must not fault an evicted graph's
	// bytes back in from disk (and churn the LRU) just to report counts
	// the index already holds.
	info, ok := s.reg.Lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph %q", id)
		return
	}
	writeJSON(w, http.StatusOK, graphResponse{ID: info.ID, N: info.N, M: info.M, Bytes: info.Bytes, Node: s.nodeName()})
}

// handleDeleteGraph removes a graph everywhere it lives: the in-memory
// registry, the disk store, and the scheduler's result cache. The cache
// purge closes a staleness hole — after a delete, re-uploading the same
// content recreates the same content-addressed ID, and without the purge
// those solves would be answered from results cached before the delete.
func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.reg.Delete(id)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "delete graph %q: %v", id, err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph %q", id)
		return
	}
	invalidated := s.sub.InvalidateGraph(id)
	resp := map[string]any{
		"id": id, "deleted": true, "invalidated_results": invalidated,
	}
	if node := s.nodeName(); node != "" {
		resp["node"] = node
	}
	writeJSON(w, http.StatusOK, resp)
}

// mincutRequest selects solver options; zero values are valid defaults.
type mincutRequest struct {
	Seed           int64 `json:"seed"`
	WantPartition  bool  `json:"want_partition"`
	Boost          int   `json:"boost"`
	ParallelPhases bool  `json:"parallel_phases"`
	// Engine picks the solver backend: "geissmann", "andersonblelloch",
	// "stoerwagner", "kargerstein", or "auto" (the default), which selects
	// by graph size.
	// "auto" resolves to a concrete engine before the job is keyed, so an
	// auto-selected solve and an explicit request for the same engine share
	// one result-cache entry; the chosen engine is reported on the job.
	Engine string `json:"engine,omitempty"`
	// Class is the job's QoS class: "interactive" (default), "batch", or
	// "background". Classes share the worker pool by weighted fairness;
	// see the scheduler docs.
	Class string `json:"class,omitempty"`
	// Async returns 202 with a job ID instead of waiting for the result.
	Async bool `json:"async"`
	// TimeoutMs bounds how long a synchronous request waits (and, if it is
	// the only waiter, how long the solve may run). 0 means no timeout
	// beyond the client disconnecting.
	TimeoutMs int64 `json:"timeout_ms"`
}

type jobResponse struct {
	JobID   string `json:"job_id"`
	GraphID string `json:"graph_id"`
	Status  string `json:"status"`
	Class   string `json:"class,omitempty"`
	// Engine is the concrete solver backend the job runs on ("auto"
	// requests report what auto picked).
	Engine       string `json:"engine,omitempty"`
	Cached       bool   `json:"cached,omitempty"`
	Value        *int64 `json:"value,omitempty"`
	InCut        []bool `json:"in_cut,omitempty"`
	TreesScanned int    `json:"trees_scanned,omitempty"`
	// Fanout is the number of scheduler sub-jobs a boosted solve was
	// decomposed into; absent for single-run solves.
	Fanout int `json:"fanout,omitempty"`
	// Phase, Progress, and Fraction report live solver progress for
	// queued/running jobs (phase "fanout" aggregates a boost's sub-jobs).
	Phase    string                   `json:"phase,omitempty"`
	Progress *parcut.ProgressSnapshot `json:"progress,omitempty"`
	Fraction *float64                 `json:"fraction,omitempty"`
	// Node is the cluster member the job ran on; omitted single-node.
	Node  string `json:"node,omitempty"`
	Error string `json:"error,omitempty"`
}

// submitErr maps a Submit failure to its HTTP response. Queue-pressure
// rejections are 429s (the client should back off and retry), draining is
// 503, an unknown class is the client's 400.
func submitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sched.ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, "draining")
	case errors.Is(err, sched.ErrQueueFull), errors.Is(err, sched.ErrClassQueueFull):
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, sched.ErrUnknownClass), errors.Is(err, sched.ErrUnknownEngine):
		writeErr(w, http.StatusBadRequest, "%v", err)
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

// resolveEngine maps the wire engine name (default "auto") to a concrete
// registered engine using the graph's size, writing the 400 itself on an
// unknown name. Resolving before the scheduler key is built is what lets
// "auto" share cache entries with explicit requests for the same engine.
func resolveEngine(w http.ResponseWriter, name string, info registry.Info) (engine.Engine, bool) {
	if name == "" {
		name = engine.Auto
	}
	eng, err := engine.Resolve(name, info.N, info.M)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	return eng, true
}

func (s *Server) handleMinCut(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	id := r.PathValue("id")
	g, info, ok := s.getGraph(w, id)
	if !ok {
		return
	}
	req := mincutRequest{}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	if req.Boost < 0 || req.TimeoutMs < 0 {
		writeErr(w, http.StatusBadRequest, "boost and timeout_ms must be non-negative")
		return
	}
	class, cerr := sched.ParseClass(req.Class)
	if cerr != nil {
		writeErr(w, http.StatusBadRequest, "%v", cerr)
		return
	}
	eng, ok := resolveEngine(w, req.Engine, info)
	if !ok {
		return
	}
	key := sched.Key{GraphID: id, Opt: sched.SolveOptions{
		Seed:           req.Seed,
		WantPartition:  req.WantPartition,
		Boost:          req.Boost,
		ParallelPhases: req.ParallelPhases,
		Engine:         eng.Name(),
	}}
	sub := s.submitterFor(r)
	job, hit, err := sub.Submit(r.Context(), key, g, sched.SubmitOpts{Class: class, Detached: req.Async})
	if err != nil {
		submitErr(w, err)
		return
	}
	detach := attachJobSpan(r, job)
	defer detach()
	if req.Async {
		st, _ := sub.Job(job.ID())
		writeJSON(w, http.StatusAccepted, jobResponse{
			JobID: job.ID(), GraphID: id, Status: string(st.State), Class: string(st.Class),
			Engine: st.Engine, Cached: hit, Fanout: job.Fanout(), Node: s.nodeName(),
		})
		return
	}
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	res, err := job.Wait(ctx)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case r.Context().Err() != nil:
			code = 499 // this client really closed the request (nginx convention)
		case errors.Is(err, context.Canceled):
			// Canceled from the job's side — DELETE /v1/jobs/{id} or the
			// shutdown drain — while this client was still connected.
			code = http.StatusConflict
		}
		writeJSON(w, code, jobResponse{JobID: job.ID(), GraphID: id, Status: "unfinished", Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, jobResponse{
		JobID: job.ID(), GraphID: id, Status: string(sched.StateDone), Class: string(class),
		Engine: eng.Name(), Cached: hit,
		Value: &res.Value, InCut: res.InCut, TreesScanned: res.TreesScanned, Fanout: job.Fanout(),
		Node: s.nodeName(),
	})
}

// maxBatchItems caps how many solves one batch request may carry.
const maxBatchItems = 1024

// batchItem is one solve of a batch request. A zero Boost inherits the
// request-level boost.
type batchItem struct {
	Seed  int64 `json:"seed"`
	Boost int   `json:"boost,omitempty"`
}

// batchRequest solves many seeds of one graph in a single request. Seeds
// is the shorthand form (every seed gets the request-level Boost); Items
// additionally carries per-item boosts. Both may be given; Seeds run
// first.
type batchRequest struct {
	Seeds          []int64     `json:"seeds"`
	Items          []batchItem `json:"items"`
	Boost          int         `json:"boost"`
	WantPartition  bool        `json:"want_partition"`
	ParallelPhases bool        `json:"parallel_phases"`
	// Engine picks the solver backend for every solve in the batch;
	// defaults to "auto" (see mincutRequest.Engine). The resolved engine is
	// echoed in the response envelope.
	Engine string `json:"engine,omitempty"`
	// Class is the QoS class of every solve in the batch; batches default
	// to "batch" (a bulk request is bulk work), unlike single solves.
	Class string `json:"class,omitempty"`
	// TimeoutMs bounds how long the whole batch waits. 0 means no timeout
	// beyond the client disconnecting.
	TimeoutMs int64 `json:"timeout_ms"`
}

// batchEntry is one element of the batch response's results array.
type batchEntry struct {
	Seed         int64  `json:"seed"`
	Boost        int    `json:"boost,omitempty"`
	JobID        string `json:"job_id,omitempty"`
	Status       string `json:"status"`
	Cached       bool   `json:"cached,omitempty"`
	Value        *int64 `json:"value,omitempty"`
	InCut        []bool `json:"in_cut,omitempty"`
	TreesScanned int    `json:"trees_scanned,omitempty"`
	Fanout       int    `json:"fanout,omitempty"`
	Error        string `json:"error,omitempty"`
}

// handleMinCutBatch submits every item of the batch up front — so
// overlapping seed ranges and boost fan-outs coalesce in the scheduler —
// then streams the results array in item order, flushing each entry as
// its solve finishes. Per-item failures (cancellation, timeout) are
// reported in the entry's status/error fields, not by the HTTP status,
// which is committed before the first solve completes.
func (s *Server) handleMinCutBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	id := r.PathValue("id")
	g, info, ok := s.getGraph(w, id)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Boost < 0 || req.TimeoutMs < 0 {
		writeErr(w, http.StatusBadRequest, "boost and timeout_ms must be non-negative")
		return
	}
	if req.Class == "" {
		req.Class = string(sched.ClassBatch)
	}
	class, cerr := sched.ParseClass(req.Class)
	if cerr != nil {
		writeErr(w, http.StatusBadRequest, "%v", cerr)
		return
	}
	eng, ok := resolveEngine(w, req.Engine, info)
	if !ok {
		return
	}
	items := make([]batchItem, 0, len(req.Seeds)+len(req.Items))
	for _, seed := range req.Seeds {
		items = append(items, batchItem{Seed: seed, Boost: req.Boost})
	}
	for _, it := range req.Items {
		if it.Boost < 0 {
			writeErr(w, http.StatusBadRequest, "item boost must be non-negative")
			return
		}
		if it.Boost == 0 {
			it.Boost = req.Boost
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		writeErr(w, http.StatusBadRequest, "batch needs at least one seed")
		return
	}
	if len(items) > maxBatchItems {
		writeErr(w, http.StatusBadRequest, "batch of %d items exceeds the limit of %d", len(items), maxBatchItems)
		return
	}

	submitter := s.submitterFor(r)
	type submission struct {
		job sched.Handle
		hit bool
		err error
	}
	subs := make([]submission, len(items))
	for i, it := range items {
		key := sched.Key{GraphID: id, Opt: sched.SolveOptions{
			Seed:           it.Seed,
			WantPartition:  req.WantPartition,
			Boost:          it.Boost,
			ParallelPhases: req.ParallelPhases,
			Engine:         eng.Name(),
		}}
		subs[i].job, subs[i].hit, subs[i].err = submitter.Submit(r.Context(), key, g, sched.SubmitOpts{Class: class})
	}

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	fmt.Fprintf(w, `{"graph_id":%q,"engine":%q,"results":[`, id, eng.Name())
	for i, sub := range subs {
		entry := batchEntry{Seed: items[i].Seed, Boost: items[i].Boost}
		switch {
		case sub.err != nil:
			entry.Status = "rejected"
			entry.Error = sub.err.Error()
		default:
			entry.JobID = sub.job.ID()
			entry.Cached = sub.hit
			entry.Fanout = sub.job.Fanout()
			detach := attachJobSpan(r, sub.job)
			res, err := sub.job.Wait(ctx)
			detach()
			if err != nil {
				entry.Status = "unfinished"
				entry.Error = err.Error()
			} else {
				entry.Status = string(sched.StateDone)
				entry.Value = &res.Value
				entry.InCut = res.InCut
				entry.TreesScanned = res.TreesScanned
			}
		}
		if i > 0 {
			_, _ = io.WriteString(w, ",")
		}
		raw, merr := json.Marshal(entry)
		if merr != nil {
			raw = []byte(`{"status":"failed","error":"encode"}`)
		}
		_, _ = w.Write(raw)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, _ = io.WriteString(w, "]}\n")
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sub.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	resp := jobResponse{
		JobID: st.ID, GraphID: st.GraphID, Status: string(st.State), Class: string(st.Class),
		Engine: st.Engine, Fanout: st.Fanout, Error: st.Err, Node: s.nodeName(),
	}
	fraction := st.Fraction
	resp.Fraction = &fraction
	if st.State == sched.StateQueued || st.State == sched.StateRunning {
		// Live progress: current phase plus the raw counters, so clients
		// can render "trees 7/21" alongside the coarse fraction.
		prog := st.Progress
		resp.Phase = prog.Phase
		resp.Progress = &prog
	}
	if st.State == sched.StateDone {
		v := st.Value
		resp.Value = &v
		resp.InCut = st.InCut
		resp.TreesScanned = st.TreesScanned
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobEvents streams the job's event log as NDJSON — one JSON object
// per line: lifecycle transitions, solver phase changes, throttled
// progress updates, and a final terminal "result" event, after which the
// stream ends. A client that lost its stream resumes without duplicates
// via ?from=<next seq>. Watch a long solve live with
//
//	curl -N localhost:8080/v1/jobs/job-7/events
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sch.Lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad from=%q", q)
			return
		}
		from = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, wake, ended := j.Events(from)
		from += len(evs)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		// ended also covers a resume cursor already past a finished log
		// (?from= beyond the terminal event): nothing more will ever be
		// appended, so waiting would hang the connection forever.
		if ended {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.sub.Job(id); !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	canceled := s.sub.Cancel(id)
	writeJSON(w, http.StatusOK, map[string]any{"job_id": id, "canceled": canceled})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	resp := map[string]any{
		"status":     status,
		"version":    s.version,
		"go_version": runtime.Version(),
	}
	if s.cluster != nil {
		st := s.cluster.Stats()
		peers := make([]map[string]any, 0, len(st.Peers))
		for _, p := range st.Peers {
			peers = append(peers, map[string]any{"addr": p.Addr, "up": p.Up})
		}
		resp["cluster"] = map[string]any{
			"self":    st.Self,
			"members": st.Members,
			"vnodes":  st.VNodes,
			"peers":   peers,
		}
	}
	writeJSON(w, code, resp)
}

// handleMetrics renders the scheduler and registry counters in Prometheus
// text exposition format, no client library needed.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.sch.Metrics()
	rs := s.reg.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	// writeHist renders one labelled histogram in le semantics; the
	// implicit +Inf bucket is the count.
	writeHist := func(name, labels string, h sched.Histogram) {
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, bk.UpperBound, bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.Count)
		fmt.Fprintf(&b, "%s_sum{%s} %g\n", name, labels, time.Duration(h.SumNanos).Seconds())
		fmt.Fprintf(&b, "%s_count{%s} %d\n", name, labels, h.Count)
	}
	fmt.Fprintf(&b, "# HELP mincutd_build_info Build metadata; the value is always 1.\n# TYPE mincutd_build_info gauge\n")
	fmt.Fprintf(&b, "mincutd_build_info{version=%q,go_version=%q} 1\n", s.version, runtime.Version())
	// Per-class/per-reason breakdowns keep the old unlabelled series as
	// the sum, so dashboards written against earlier versions keep
	// working next to the labelled ones.
	counter("mincutd_jobs_submitted_total", "Accepted solve submissions, including cache hits (sum; class label breaks it down).", m.Submitted)
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "mincutd_jobs_submitted_total{class=%q} %d\n", c.Class, c.Submitted)
	}
	counter("mincutd_jobs_rejected_total", "Solve submissions rejected (sum; reason label breaks it down).", m.Rejected)
	fmt.Fprintf(&b, "mincutd_jobs_rejected_total{reason=\"draining\"} %d\n", m.RejectedDraining)
	fmt.Fprintf(&b, "mincutd_jobs_rejected_total{reason=\"queue_full\"} %d\n", m.RejectedQueueFull)
	fmt.Fprintf(&b, "mincutd_jobs_rejected_total{reason=\"class_cap\"} %d\n", m.RejectedClassCap)
	counter("mincutd_jobs_completed_total", "Jobs that finished successfully (sum; class and class+engine labels break it down).", m.Completed)
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "mincutd_jobs_completed_total{class=%q} %d\n", c.Class, c.Completed)
	}
	for _, c := range m.Classes {
		for _, ec := range c.CompletedByEngine {
			fmt.Fprintf(&b, "mincutd_jobs_completed_total{class=%q,engine=%q} %d\n", c.Class, ec.Engine, ec.Count)
		}
	}
	counter("mincutd_jobs_failed_total", "Jobs that ended in a solver error.", m.Failed)
	counter("mincutd_jobs_canceled_total", "Jobs canceled before completion.", m.Canceled)
	var dispatched int64
	for _, c := range m.Classes {
		dispatched += c.Dispatched
	}
	counter("mincutd_jobs_dispatched_total", "Jobs handed to a worker (sum; class label breaks it down).", dispatched)
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "mincutd_jobs_dispatched_total{class=%q} %d\n", c.Class, c.Dispatched)
	}
	counter("mincutd_jobs_escalated_total", "Queued jobs promoted to a stronger class by coalescing.", m.Escalated)
	fmt.Fprintf(&b, "# HELP mincutd_queue_wait_seconds_total Total queued-to-dispatched wall time per class.\n# TYPE mincutd_queue_wait_seconds_total counter\n")
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "mincutd_queue_wait_seconds_total{class=%q} %g\n", c.Class, time.Duration(c.QueueWaitNanos).Seconds())
	}
	fmt.Fprintf(&b, "# HELP mincutd_solve_phase_seconds Solver wall time attributed to pipeline phases (canceled tails included).\n# TYPE mincutd_solve_phase_seconds summary\n")
	for _, ph := range m.PhaseSeconds {
		fmt.Fprintf(&b, "mincutd_solve_phase_seconds_sum{phase=%q} %g\n", ph.Phase, time.Duration(ph.Nanos).Seconds())
		fmt.Fprintf(&b, "mincutd_solve_phase_seconds_count{phase=%q} %d\n", ph.Phase, ph.Count)
	}
	fmt.Fprintf(&b, "# HELP mincutd_queue_wait_seconds Queued-to-dispatched wall time per class.\n# TYPE mincutd_queue_wait_seconds histogram\n")
	for _, c := range m.Classes {
		writeHist("mincutd_queue_wait_seconds", fmt.Sprintf("class=%q", c.Class), c.QueueWait)
	}
	fmt.Fprintf(&b, "# HELP mincutd_solve_duration_seconds Solver phase wall time per dispatch class (canceled tails included; the class+phase series is the sum over engines of the class+phase+engine series).\n# TYPE mincutd_solve_duration_seconds histogram\n")
	for _, c := range m.Classes {
		for _, ph := range c.PhaseDurations {
			writeHist("mincutd_solve_duration_seconds", fmt.Sprintf("class=%q,phase=%q", c.Class, ph.Phase), ph.Hist)
		}
	}
	for _, c := range m.Classes {
		for _, ph := range c.PhaseDurationsByEngine {
			writeHist("mincutd_solve_duration_seconds", fmt.Sprintf("class=%q,phase=%q,engine=%q", c.Class, ph.Phase, ph.Engine), ph.Hist)
		}
	}
	fmt.Fprintf(&b, "# HELP mincutd_http_request_duration_seconds HTTP request latency per route and status code.\n# TYPE mincutd_http_request_duration_seconds histogram\n")
	for _, sr := range s.httpm.snapshot() {
		labels := fmt.Sprintf("route=%q,code=\"%d\"", sr.Route, sr.Code)
		for i, ub := range latencyBuckets {
			fmt.Fprintf(&b, "mincutd_http_request_duration_seconds_bucket{%s,le=\"%g\"} %d\n", labels, ub, sr.Buckets[i])
		}
		fmt.Fprintf(&b, "mincutd_http_request_duration_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, sr.Count)
		fmt.Fprintf(&b, "mincutd_http_request_duration_seconds_sum{%s} %g\n", labels, time.Duration(sr.SumNanos).Seconds())
		fmt.Fprintf(&b, "mincutd_http_request_duration_seconds_count{%s} %d\n", labels, sr.Count)
	}
	counter("mincutd_cache_hits_total", "Submissions served without a new solver run (cached result or coalesced onto an in-flight job).", m.CacheHits)
	counter("mincutd_jobs_coalesced_total", "Submissions that joined an in-flight job (subset of cache hits).", m.Coalesced)
	counter("mincutd_boost_fanouts_total", "Boosted solves decomposed into parallel sub-jobs.", m.Fanouts)
	counter("mincutd_boost_subjobs_total", "Sub-jobs requested by boost fan-outs.", m.SubJobs)
	counter("mincutd_boost_subjobs_shared_total", "Fan-out sub-jobs served by an existing or cached run.", m.SubJobsShared)
	gauge("mincutd_queue_depth", "Jobs waiting for a worker (sum; class label breaks it down).", int64(m.QueueDepth))
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "mincutd_queue_depth{class=%q} %d\n", c.Class, c.QueueDepth)
	}
	fmt.Fprintf(&b, "# HELP mincutd_class_weight Deficit-round-robin dispatch weight per class.\n# TYPE mincutd_class_weight gauge\n")
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "mincutd_class_weight{class=%q} %d\n", c.Class, c.Weight)
	}
	fmt.Fprintf(&b, "# HELP mincutd_class_queue_cap Per-class queued-job admission cap (0 = unbounded).\n# TYPE mincutd_class_queue_cap gauge\n")
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "mincutd_class_queue_cap{class=%q} %d\n", c.Class, c.QueueCap)
	}
	gauge("mincutd_jobs_running", "Jobs currently on a worker.", int64(m.Running))
	gauge("mincutd_jobs_running_peak", "High-water mark of jobs concurrently on workers.", int64(m.PeakRunning))
	gauge("mincutd_workers", "Worker pool size.", int64(m.Workers))
	gauge("mincutd_solve_pool_width", "Executor width each solver worker owns (workers x width caps total solver parallelism).", int64(m.PoolWidth))
	counter("mincutd_pool_steals_total", "Tasks taken from another lane's deque by an idle worker, summed over worker executors.", m.Pool.Steals)
	counter("mincutd_pool_local_pushes_total", "Forks pushed onto the forking lane's own deque (fast path).", m.Pool.LocalPushes)
	counter("mincutd_pool_shared_pushes_total", "Forks from outside the pool distributed round-robin to lane deques.", m.Pool.SharedPushes)
	counter("mincutd_pool_overflow_pushes_total", "Forks spilled to the unbounded overflow queue because a deque was full.", m.Pool.OverflowPushes)
	counter("mincutd_pool_inline_runs_total", "Forks executed inline instead of being queued (closed-pool races only; should stay 0).", m.Pool.InlineRuns)
	counter("mincutd_pool_arena_hits_total", "Solve-arena borrows served from a recycled buffer.", m.Pool.ArenaHits)
	counter("mincutd_pool_arena_misses_total", "Solve-arena borrows that had to allocate a fresh buffer.", m.Pool.ArenaMisses)
	fmt.Fprintf(&b, "# HELP mincutd_solve_seconds Wall time of successful solver runs.\n# TYPE mincutd_solve_seconds histogram\n")
	for _, bk := range m.LatencyBuckets {
		fmt.Fprintf(&b, "mincutd_solve_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", bk.UpperBound), bk.Count)
	}
	fmt.Fprintf(&b, "mincutd_solve_seconds_bucket{le=\"+Inf\"} %d\n", m.SolveCount)
	fmt.Fprintf(&b, "mincutd_solve_seconds_sum %g\n", time.Duration(m.SolveNanos).Seconds())
	fmt.Fprintf(&b, "mincutd_solve_seconds_count %d\n", m.SolveCount)
	gauge("mincutd_graphs", "Graphs currently registered (resident or on disk).", int64(rs.Graphs))
	gauge("mincutd_graphs_resident", "Graphs whose edges are held in memory.", int64(rs.Resident))
	gauge("mincutd_graph_bytes", "Edge bytes held by the registry.", rs.Bytes)
	gauge("mincutd_graph_capacity_bytes", "Registry edge-byte budget (0 = unbounded).", rs.Capacity)
	counter("mincutd_graphs_evicted_total", "Graphs evicted by the LRU budget.", rs.Evictions)
	counter("mincutd_graph_dedup_total", "Uploads deduplicated by content hash.", rs.Dedups)
	counter("mincutd_graph_lookup_hits_total", "Graph lookups that found their graph.", rs.Hits)
	counter("mincutd_graph_lookup_misses_total", "Graph lookups that missed.", rs.Misses)
	counter("mincutd_graph_store_loads_total", "Evicted graphs faulted back in from the disk store.", rs.Loads)
	counter("mincutd_graph_store_load_errors_total", "Disk store loads that failed (I/O or CRC).", rs.LoadErrors)
	if s.st != nil {
		ss := s.st.Stats()
		gauge("mincutd_store_segments", "Segment files in the disk store.", int64(ss.Segments))
		gauge("mincutd_store_bytes", "Bytes held in segment files.", ss.Bytes)
		gauge("mincutd_store_live_bytes", "Segment bytes referenced by live graphs.", ss.LiveBytes)
		gauge("mincutd_store_graphs", "Graphs committed to the disk store.", int64(ss.Graphs))
		gauge("mincutd_store_max_disk_bytes", "Disk budget (0 = unbounded).", ss.MaxDiskBytes)
		counter("mincutd_store_recovered_graphs_total", "Graphs recovered from disk at startup.", ss.Recovered)
		counter("mincutd_store_corrupt_tail_total", "Torn tail writes truncated during startup recovery.", ss.CorruptTail)
		counter("mincutd_store_puts_total", "Graphs durably committed to disk.", ss.Puts)
		counter("mincutd_store_deletes_total", "Graphs tombstoned on disk.", ss.Deletes)
		counter("mincutd_store_fsyncs_total", "Fsync barriers issued by the commit protocol (group commit amortizes these over batches).", ss.Syncs)
	}
	if s.cluster != nil {
		cs := s.cluster.Stats()
		fmt.Fprintf(&b, "# HELP mincutd_cluster_members Static cluster member count this node's ring was built over.\n# TYPE mincutd_cluster_members gauge\n")
		fmt.Fprintf(&b, "mincutd_cluster_members{node=%q} %d\n", cs.Self, len(cs.Members))
		fmt.Fprintf(&b, "# HELP mincutd_cluster_ring_vnodes Virtual nodes per member on the placement ring.\n# TYPE mincutd_cluster_ring_vnodes gauge\n")
		fmt.Fprintf(&b, "mincutd_cluster_ring_vnodes{node=%q} %d\n", cs.Self, cs.VNodes)
		fmt.Fprintf(&b, "# HELP mincutd_cluster_peer_up Peer health gate: 1 while forwards are allowed, 0 while the peer is marked down.\n# TYPE mincutd_cluster_peer_up gauge\n")
		for _, p := range cs.Peers {
			up := 0
			if p.Up {
				up = 1
			}
			fmt.Fprintf(&b, "mincutd_cluster_peer_up{peer=%q} %d\n", p.Addr, up)
		}
		fmt.Fprintf(&b, "# HELP mincutd_cluster_forwarded_total Requests forwarded to a peer (counted once per request, not per retry).\n# TYPE mincutd_cluster_forwarded_total counter\n")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "mincutd_cluster_forwarded_total{peer=%q} %d\n", p.Addr, p.Forwarded)
		}
		fmt.Fprintf(&b, "# HELP mincutd_cluster_forward_failed_total Forwards that failed after retries or were gated by peer health.\n# TYPE mincutd_cluster_forward_failed_total counter\n")
		for _, p := range cs.Peers {
			fmt.Fprintf(&b, "mincutd_cluster_forward_failed_total{peer=%q} %d\n", p.Addr, p.Failed)
		}
	}
	_, _ = io.WriteString(w, b.String())
}
