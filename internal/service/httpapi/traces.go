package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/trace"
)

// traceSummary is one row of the trace listing: enough to pick a trace
// worth opening without shipping every span of every solve.
type traceSummary struct {
	ID         string    `json:"id"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Dropped    int       `json:"dropped_spans,omitempty"`
	Graph      string    `json:"graph,omitempty"`
	Class      string    `json:"class,omitempty"`
	State      string    `json:"state,omitempty"`
}

// parseMinDuration accepts either a Go duration string ("250ms", "1.5s")
// or a bare integer of milliseconds.
func parseMinDuration(q string) (time.Duration, error) {
	if ms, err := strconv.ParseInt(q, 10, 64); err == nil {
		return time.Duration(ms) * time.Millisecond, nil
	}
	return time.ParseDuration(q)
}

// handleTraces lists retained solve traces, newest first. Query
// parameters: graph=<id> keeps only that graph's solves, min_duration=<d>
// (duration string or integer milliseconds) keeps only slow ones, and
// limit=<n> caps the rows.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeErr(w, http.StatusNotFound, "tracing disabled (start mincutd with -trace-buffer > 0)")
		return
	}
	f := trace.Filter{Graph: r.URL.Query().Get("graph")}
	if q := r.URL.Query().Get("min_duration"); q != "" {
		d, err := parseMinDuration(q)
		if err != nil || d < 0 {
			writeErr(w, http.StatusBadRequest, "bad min_duration=%q", q)
			return
		}
		f.MinDuration = d
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad limit=%q", q)
			return
		}
		f.Limit = n
	}
	list := s.traces.List(f)
	rows := make([]traceSummary, 0, len(list))
	for _, t := range list {
		rows = append(rows, traceSummary{
			ID:         t.ID,
			Start:      t.Start,
			DurationMs: time.Duration(t.Duration).Seconds() * 1e3,
			Spans:      len(t.Spans),
			Dropped:    t.Dropped,
			Graph:      t.RootAttr("graph"),
			Class:      t.RootAttr("class"),
			State:      t.RootAttr("state"),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces": rows,
		"total":  s.traces.Total(),
	})
}

// handleTrace returns one trace's full span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeErr(w, http.StatusNotFound, "tracing disabled (start mincutd with -trace-buffer > 0)")
		return
	}
	id := r.PathValue("id")
	t, ok := s.traces.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no trace %q (evicted, still running, or never traced)", id)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
