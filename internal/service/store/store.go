// Package store is the service layer's disk-backed graph store: the
// durable half of the registry. Graphs are kept as their canonical text
// serialization in append-only segment files (seg-000001.dat, …), and a
// small manifest acts as the write-ahead commit log: a graph exists iff
// the manifest holds a valid record for it. The commit protocol is
//
//	append payload to the current segment → fsync segment →
//	append manifest record → fsync manifest
//
// so a crash at any point leaves either a fully committed graph or an
// orphaned segment tail that the next Open truncates away. Manifest
// records carry a CRC of their own line and of the payload they point
// at; loads re-verify the payload CRC, so a bit-flipped segment surfaces
// a clean error instead of a wrong graph. Deletes append a tombstone
// record; a segment whose graphs are all deleted is removed from disk.
//
// The store is a durable index, not a cache: Get reads are lazy (nothing
// is held in memory beyond the index), concurrent (reads use ReadAt on
// per-segment read handles and never block appends), and CRC-checked.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	parcut "repro"
)

const (
	manifestName = "MANIFEST"
	segPrefix    = "seg-"
	segSuffix    = ".dat"

	// DefaultMaxSegmentBytes is how large a segment grows before appends
	// rotate to a fresh file. One graph may exceed it (segments are never
	// split mid-graph); rotation just bounds the typical file size so dead
	// segments can be reclaimed at useful granularity.
	DefaultMaxSegmentBytes = 64 << 20
)

// castagnoli is the CRC-32C table used for both payload and manifest-line
// checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNotFound reports a Get or Delete of a graph the store does not hold.
var ErrNotFound = errors.New("store: graph not found")

// ErrDiskFull reports a Put that would exceed Options.MaxDiskBytes.
var ErrDiskFull = errors.New("store: disk budget exceeded")

// ErrCorrupt wraps payload integrity failures (CRC mismatch, truncated
// segment, re-parse disagreement) detected at load time.
var ErrCorrupt = errors.New("store: corrupt segment data")

// Options configures Open.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// MaxSegmentBytes rotates the append segment once it reaches this
	// size. 0 means DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
	// MaxDiskBytes caps the total bytes held in segment files; Put returns
	// ErrDiskFull rather than exceed it. 0 means unbounded.
	MaxDiskBytes int64
	// NoSync skips the fsync calls. Only tests that simulate crashes by
	// mutating files directly should set it; a real deployment loses the
	// crash-safety guarantee without the syncs.
	NoSync bool
	// Log receives recovery and corruption warnings (torn tails truncated,
	// entries dropped). Nil means slog.Default().
	Log *slog.Logger
}

// Entry describes one committed graph: where its canonical serialization
// lives and the CRC it must match.
type Entry struct {
	ID   string
	N, M int
	Seg  int
	Off  int64
	Len  int64
	CRC  uint32
}

// Stats is a snapshot of the store's state and counters.
type Stats struct {
	// Graphs is the number of live (committed, undeleted) graphs.
	Graphs int
	// Segments is the number of segment files on disk.
	Segments int
	// Bytes is the total size of the segment files; LiveBytes the subset
	// still referenced by live graphs (the rest is tombstoned space that
	// is reclaimed when its whole segment dies).
	Bytes, LiveBytes int64
	// MaxDiskBytes echoes the configured budget (0 = unbounded).
	MaxDiskBytes int64
	// Recovered is how many graphs the last Open rebuilt into the index.
	Recovered int64
	// CorruptTail counts torn tail writes truncated by Open (orphaned
	// segment bytes or a partial manifest record) plus committed entries
	// dropped because their segment bytes were missing.
	CorruptTail int64
	// Loads counts successful Gets; LoadErrors the Gets that failed
	// integrity checks or I/O.
	Loads, LoadErrors int64
	// Puts and Deletes count committed writes and tombstones.
	Puts, Deletes int64
	// Syncs counts fsync barriers issued by the commit protocol (segment
	// and manifest file syncs; directory syncs excluded). It still counts
	// under Options.NoSync — the barrier was reached, just not executed —
	// so tests can assert group-commit batching (a PutMany of N graphs
	// costs 2 barriers where N singular Puts cost 2N).
	Syncs int64
}

// Store is a crash-safe, disk-backed graph store. Create with Open.
type Store struct {
	dir    string
	maxSeg int64
	maxDsk int64
	noSync bool
	log    *slog.Logger

	mu        sync.Mutex
	index     map[string]Entry
	segBytes  map[int]int64 // committed size per segment
	segLive   map[int]int   // live entries per segment
	readers   map[int]*os.File
	cur       *os.File // current append segment, nil until first Put
	curSeg    int
	curOff    int64
	manifest  *os.File
	manOff    int64 // committed manifest size; rollback target on append failure
	manBroken bool  // a manifest rollback failed; no further writes
	closed    bool

	liveBytes  int64
	totalBytes int64

	recovered   int64
	corruptTail int64
	loads       atomic.Int64
	loadErrors  atomic.Int64
	puts        atomic.Int64
	deletes     atomic.Int64
	syncs       atomic.Int64
}

// Open creates or recovers the store in opts.Dir. Recovery replays the
// manifest (truncating a torn final record), drops committed entries
// whose segment bytes are missing, truncates orphaned segment tails that
// were appended but never committed, and deletes segment files with no
// live entries left.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	if opts.Log == nil {
		opts.Log = slog.Default()
	}
	s := &Store{
		dir:      opts.Dir,
		maxSeg:   opts.MaxSegmentBytes,
		maxDsk:   opts.MaxDiskBytes,
		noSync:   opts.NoSync,
		log:      opts.Log,
		index:    make(map[string]Entry),
		segBytes: make(map[int]int64),
		segLive:  make(map[int]int),
		readers:  make(map[int]*os.File),
	}
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func segName(n int) string { return fmt.Sprintf("%s%06d%s", segPrefix, n, segSuffix) }

func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimSuffix(name, segSuffix), segPrefix+"%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// recover rebuilds the in-memory index from disk. Caller owns s.mu-free
// access (no other goroutine sees s yet).
func (s *Store) recover() error {
	manPath := filepath.Join(s.dir, manifestName)
	data, err := os.ReadFile(manPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: read manifest: %w", err)
	}

	// Replay the manifest. Records are newline-terminated and carry a
	// trailing CRC of the rest of the line; the first record that fails to
	// parse — typically a partial final line from a crash mid-append —
	// ends the committed prefix, and the manifest is truncated there.
	// committedEnd tracks the furthest byte any record (including ones
	// later tombstoned) ever committed per segment: deleted graphs leave
	// gaps that are legitimate file content, not torn tails.
	committed := int64(0)
	committedEnd := make(map[int]int64)
	for off := int64(0); off < int64(len(data)); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // partial final line
		}
		line := string(data[off : off+int64(nl)])
		e, del, ok := parseRecord(line)
		if !ok {
			// Only the FINAL record can legitimately be invalid — a crash
			// tears at most the line being appended. An invalid record with
			// complete records after it is corruption in the committed
			// prefix; truncating there would silently destroy every later
			// graph, so refuse to open instead of guessing.
			if rest := data[off+int64(nl)+1:]; len(rest) > 0 {
				return fmt.Errorf("store: manifest record at byte %d is corrupt but not the final record; refusing to recover (restore the manifest from backup or remove %s to start fresh)",
					off, filepath.Join(s.dir, manifestName))
			}
			break
		}
		if del {
			if old, exists := s.index[e.ID]; exists {
				delete(s.index, e.ID)
				s.segLive[old.Seg]--
			}
		} else {
			if old, exists := s.index[e.ID]; exists {
				s.segLive[old.Seg]--
			}
			s.index[e.ID] = e
			s.segLive[e.Seg]++
			if end := e.Off + e.Len; end > committedEnd[e.Seg] {
				committedEnd[e.Seg] = end
			}
		}
		off += int64(nl) + 1
		committed = off
	}
	if committed < int64(len(data)) {
		if err := os.Truncate(manPath, committed); err != nil {
			return fmt.Errorf("store: truncate torn manifest: %w", err)
		}
		s.corruptTail++
		s.log.Warn("store: truncated torn manifest record", "dir", s.dir, "committed_bytes", committed, "torn_bytes", int64(len(data))-committed)
	}

	// Drop committed entries whose segment bytes do not exist on disk —
	// impossible under the commit protocol's write ordering, but the index
	// must never point past a file's end.
	segSize := make(map[int]int64)
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: read dir: %w", err)
	}
	maxSegSeen := 0
	for _, de := range dirents {
		n, ok := parseSegName(de.Name())
		if !ok {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			return fmt.Errorf("store: stat %s: %w", de.Name(), err)
		}
		segSize[n] = fi.Size()
		if n > maxSegSeen {
			maxSegSeen = n
		}
	}
	for id, e := range s.index {
		if e.Off+e.Len > segSize[e.Seg] {
			delete(s.index, id)
			s.segLive[e.Seg]--
			s.corruptTail++
			s.log.Warn("store: dropped committed graph with missing segment bytes", "dir", s.dir, "graph", id, "segment", e.Seg)
		}
	}

	// Per segment: anything past the committed end is a torn tail write —
	// payload that made it to the segment (or partially did) before the
	// crash beat the manifest record. Truncate it. A segment with no live
	// entries left (never referenced, or all deleted) is removed whole.
	for seg, size := range segSize {
		if s.segLive[seg] <= 0 {
			if err := os.Remove(filepath.Join(s.dir, segName(seg))); err != nil {
				return fmt.Errorf("store: remove dead segment: %w", err)
			}
			continue
		}
		if end := committedEnd[seg]; size > end {
			if err := os.Truncate(filepath.Join(s.dir, segName(seg)), end); err != nil {
				return fmt.Errorf("store: truncate torn segment: %w", err)
			}
			s.corruptTail++
			s.log.Warn("store: truncated torn segment tail", "dir", s.dir, "segment", seg, "committed_bytes", end, "torn_bytes", size-end)
			size = end
		}
		s.segBytes[seg] = size
	}

	for _, e := range s.index {
		s.liveBytes += e.Len
	}
	for _, b := range s.segBytes {
		s.totalBytes += b
	}

	// Resume appending at the end of the highest live segment, or start
	// fresh past the highest segment number ever seen (never reuse a
	// number: a removed dead segment's records may still be replayed from
	// the manifest on the next recovery, and must not alias new bytes).
	s.curSeg = maxSegSeen
	for seg := range s.segBytes {
		if seg > s.curSeg {
			s.curSeg = seg
		}
	}
	if s.curSeg == 0 {
		s.curSeg = 1
	} else if _, alive := s.segBytes[s.curSeg]; !alive {
		s.curSeg++
	}
	s.curOff = s.segBytes[s.curSeg]

	man, err := os.OpenFile(manPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("store: open manifest: %w", err)
	}
	s.manifest = man
	s.manOff = committed
	s.recovered = int64(len(s.index))
	return s.syncDir()
}

// record formats and parseRecord parses one manifest line. The layout is
//
//	add <id> <seg> <off> <len> <n> <m> <payloadCRC> <lineCRC>
//	del <id> <lineCRC>
//
// where lineCRC is the CRC-32C of everything before its preceding space.
func record(e Entry) string {
	body := fmt.Sprintf("add %s %d %d %d %d %d %d", e.ID, e.Seg, e.Off, e.Len, e.N, e.M, e.CRC)
	return fmt.Sprintf("%s %d\n", body, crc32.Checksum([]byte(body), castagnoli))
}

func tombstone(id string) string {
	body := "del " + id
	return fmt.Sprintf("%s %d\n", body, crc32.Checksum([]byte(body), castagnoli))
}

func parseRecord(line string) (e Entry, del bool, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return Entry{}, false, false
	}
	body := line[:sp]
	var lineCRC uint32
	if _, err := fmt.Sscanf(line[sp+1:], "%d", &lineCRC); err != nil {
		return Entry{}, false, false
	}
	if crc32.Checksum([]byte(body), castagnoli) != lineCRC {
		return Entry{}, false, false
	}
	switch {
	case strings.HasPrefix(body, "add "):
		var crc uint32
		if _, err := fmt.Sscanf(body, "add %s %d %d %d %d %d %d", &e.ID, &e.Seg, &e.Off, &e.Len, &e.N, &e.M, &crc); err != nil {
			return Entry{}, false, false
		}
		if e.Seg < 1 || e.Off < 0 || e.Len <= 0 || e.N < 0 || e.M < 0 {
			return Entry{}, false, false
		}
		e.CRC = crc
		return e, false, true
	case strings.HasPrefix(body, "del "):
		e.ID = body[len("del "):]
		return e, true, e.ID != ""
	}
	return Entry{}, false, false
}

// countingCRCWriter tees payload bytes into a CRC and a length counter on
// their way to the segment file.
type countingCRCWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

func (c *countingCRCWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	c.n += int64(n)
	return n, err
}

// Put durably stores g's canonical serialization under id. It reports
// existed=true (and writes nothing) when the store already holds id. The
// write is committed — visible to Get and to recovery — only after the
// segment bytes and the manifest record are both on disk.
func (s *Store) Put(id string, g *parcut.Graph) (existed bool, err error) {
	// Any whitespace or control character would corrupt the manifest's
	// space-delimited, newline-terminated records.
	if id == "" || strings.ContainsFunc(id, func(r rune) bool { return r <= ' ' || r == 0x7f }) {
		return false, fmt.Errorf("store: invalid graph id %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errors.New("store: closed")
	}
	if _, ok := s.index[id]; ok {
		return true, nil
	}
	// Reject an already-full store before writing anything: the exact
	// check happens after the payload length is known, but a retry loop
	// against a full disk must not re-write (and truncate away) the whole
	// payload each attempt.
	if s.maxDsk > 0 && s.totalBytes >= s.maxDsk {
		return false, fmt.Errorf("%w: %d bytes held, budget %d", ErrDiskFull, s.totalBytes, s.maxDsk)
	}
	if err := s.rotateLocked(); err != nil {
		return false, err
	}
	cw := &countingCRCWriter{w: s.cur, crc: crc32.New(castagnoli)}
	werr := g.Write(cw)
	if werr == nil && s.maxDsk > 0 && s.totalBytes+cw.n > s.maxDsk {
		werr = fmt.Errorf("%w: %d bytes held, graph needs %d, budget %d",
			ErrDiskFull, s.totalBytes, cw.n, s.maxDsk)
	}
	if werr == nil {
		werr = s.syncFile(s.cur)
	}
	if werr != nil {
		// Roll the partial payload back (best effort — leftover bytes past
		// curOff are uncommitted orphans that the next Put overwrites or
		// the next recovery truncates) and drop the handle so the next Put
		// reopens and reseeks to the committed end.
		_ = s.cur.Truncate(s.curOff)
		_ = s.cur.Close()
		s.cur = nil
		return false, werr
	}
	e := Entry{ID: id, N: g.N(), M: g.M(), Seg: s.curSeg, Off: s.curOff, Len: cw.n, CRC: cw.crc.Sum32()}
	if err := s.appendManifestLocked(record(e)); err != nil {
		// The payload is on disk but uncommitted; roll it back exactly like
		// a failed write, or the next Put's manifest entry would record
		// s.curOff while the file offset sits past these orphan bytes.
		_ = s.cur.Truncate(s.curOff)
		_ = s.cur.Close()
		s.cur = nil
		return false, err
	}
	s.index[id] = e
	s.segLive[e.Seg]++
	s.segBytes[e.Seg] += e.Len
	s.curOff += e.Len
	s.liveBytes += e.Len
	s.totalBytes += e.Len
	s.puts.Add(1)
	return false, nil
}

// PutMany durably stores every graph of the batch under its id with one
// group commit: all payloads are appended to the current segment, the
// segment is fsynced once, all manifest records are appended as one
// write, and the manifest is fsynced once — two fsync barriers for the
// whole batch instead of the 2·N a loop of Put calls would issue, which
// is the difference between disk-bound and ingest-bound bulk uploads.
//
// The batch is atomic: either every new graph is committed or none is (a
// failed payload write or manifest append rolls the segment back to the
// committed end). Graphs the store already holds — including duplicates
// within the batch — are skipped and reported existed=true, exactly like
// Put. The whole batch lands in one segment, so a batch may overshoot
// the rotation threshold the same way a single oversized graph does.
func (s *Store) PutMany(ids []string, gs []*parcut.Graph) (existed []bool, err error) {
	if len(ids) != len(gs) {
		return nil, fmt.Errorf("store: PutMany: %d ids for %d graphs", len(ids), len(gs))
	}
	for _, id := range ids {
		if id == "" || strings.ContainsFunc(id, func(r rune) bool { return r <= ' ' || r == 0x7f }) {
			return nil, fmt.Errorf("store: invalid graph id %q", id)
		}
	}
	existed = make([]bool, len(ids))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	fresh := make([]int, 0, len(ids)) // indices that actually need writing
	inBatch := make(map[string]bool, len(ids))
	for i, id := range ids {
		if _, ok := s.index[id]; ok || inBatch[id] {
			existed[i] = true
			continue
		}
		inBatch[id] = true
		fresh = append(fresh, i)
	}
	if len(fresh) == 0 {
		return existed, nil
	}
	if s.maxDsk > 0 && s.totalBytes >= s.maxDsk {
		return nil, fmt.Errorf("%w: %d bytes held, budget %d", ErrDiskFull, s.totalBytes, s.maxDsk)
	}
	if err := s.rotateLocked(); err != nil {
		return nil, err
	}
	// Phase 1: append every payload. Offsets are assigned sequentially
	// from the committed end; nothing is visible until the manifest
	// records land.
	rollback := func() {
		_ = s.cur.Truncate(s.curOff)
		_ = s.cur.Close()
		s.cur = nil
	}
	entries := make([]Entry, 0, len(fresh))
	off := s.curOff
	var batchBytes int64
	for _, i := range fresh {
		cw := &countingCRCWriter{w: s.cur, crc: crc32.New(castagnoli)}
		werr := gs[i].Write(cw)
		batchBytes += cw.n
		if werr == nil && s.maxDsk > 0 && s.totalBytes+batchBytes > s.maxDsk {
			werr = fmt.Errorf("%w: %d bytes held, batch needs %d so far, budget %d",
				ErrDiskFull, s.totalBytes, batchBytes, s.maxDsk)
		}
		if werr != nil {
			rollback()
			return nil, werr
		}
		entries = append(entries, Entry{
			ID: ids[i], N: gs[i].N(), M: gs[i].M(),
			Seg: s.curSeg, Off: off, Len: cw.n, CRC: cw.crc.Sum32(),
		})
		off += cw.n
	}
	// Phase 2: one segment barrier, then all records in one append and
	// one manifest barrier.
	if err := s.syncFile(s.cur); err != nil {
		rollback()
		return nil, err
	}
	var records strings.Builder
	for _, e := range entries {
		records.WriteString(record(e))
	}
	if err := s.appendManifestLocked(records.String()); err != nil {
		rollback()
		return nil, err
	}
	// Phase 3: the batch is durable; make it visible.
	for _, e := range entries {
		s.index[e.ID] = e
		s.segLive[e.Seg]++
		s.segBytes[e.Seg] += e.Len
		s.liveBytes += e.Len
	}
	s.curOff = off
	s.totalBytes += batchBytes
	s.puts.Add(int64(len(entries)))
	return existed, nil
}

// rotateLocked ensures an open append segment with room under the
// rotation threshold (a single oversized graph may still overflow it).
func (s *Store) rotateLocked() error {
	if s.cur != nil && s.curOff >= s.maxSeg {
		if err := s.cur.Close(); err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
		s.cur = nil
		s.curSeg++
		s.curOff = 0
	}
	if s.cur == nil {
		f, err := os.OpenFile(filepath.Join(s.dir, segName(s.curSeg)), os.O_CREATE|os.O_WRONLY, 0o666)
		if err != nil {
			return fmt.Errorf("store: open segment: %w", err)
		}
		// Drop any uncommitted orphan bytes a failed Put left behind, then
		// position at the committed end.
		if err := f.Truncate(s.curOff); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate segment to committed end: %w", err)
		}
		if _, err := f.Seek(s.curOff, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("store: seek segment: %w", err)
		}
		s.cur = f
		if err := s.syncDir(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) appendManifestLocked(line string) error {
	if s.manBroken {
		return errors.New("store: a manifest rollback failed earlier; refusing further writes (reopen the store to recover)")
	}
	if _, err := s.manifest.WriteString(line); err != nil {
		s.rollbackManifestLocked()
		return fmt.Errorf("store: append manifest: %w", err)
	}
	if err := s.syncFile(s.manifest); err != nil {
		s.rollbackManifestLocked()
		return err
	}
	s.manOff += int64(len(line))
	return nil
}

// rollbackManifestLocked truncates an unacknowledged (possibly partial)
// record off the manifest tail. Without this, a short write followed by a
// later successful append would glue two records into one garbage line in
// the middle of the manifest — which recovery rightly refuses to open. If
// even the truncate fails, the store stops accepting writes: reads stay
// valid, and reopening re-runs recovery, which truncates the torn final
// record itself.
func (s *Store) rollbackManifestLocked() {
	if err := s.manifest.Truncate(s.manOff); err != nil {
		s.manBroken = true
		s.log.Error("store: manifest rollback failed; refusing further writes", "dir", s.dir, "error", err)
	}
}

func (s *Store) syncFile(f *os.File) error {
	s.syncs.Add(1)
	if s.noSync {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", f.Name(), err)
	}
	return nil
}

// syncDir fsyncs the data directory so file creations and removals are
// themselves durable.
func (s *Store) syncDir() error {
	if s.noSync {
		return nil
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}

// Get loads, CRC-checks, and parses the graph stored under id. The disk
// read happens outside the store lock (ReadAt on a per-segment read
// handle), so concurrent loads — e.g. the scheduler's workers faulting
// evicted graphs back in — proceed in parallel with each other and with
// appends.
func (s *Store) Get(id string) (*parcut.Graph, error) {
	s.mu.Lock()
	e, ok := s.index[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	r, err := s.readerLocked(e.Seg)
	s.mu.Unlock()
	if err != nil {
		s.loadErrors.Add(1)
		return nil, err
	}
	buf := make([]byte, e.Len)
	if _, err := r.ReadAt(buf, e.Off); err != nil {
		// A concurrent Delete may have reclaimed the segment (closing this
		// handle) between the index lookup and the read — that is a plain
		// not-found for this caller, not corruption.
		s.mu.Lock()
		_, still := s.index[id]
		s.mu.Unlock()
		if !still {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		s.loadErrors.Add(1)
		return nil, fmt.Errorf("%w: %s: segment %d read: %v", ErrCorrupt, id, e.Seg, err)
	}
	if got := crc32.Checksum(buf, castagnoli); got != e.CRC {
		s.loadErrors.Add(1)
		return nil, fmt.Errorf("%w: %s: segment %d CRC mismatch (stored %d, computed %d)", ErrCorrupt, id, e.Seg, e.CRC, got)
	}
	g, err := parcut.ReadGraph(bytes.NewReader(buf))
	if err != nil {
		s.loadErrors.Add(1)
		return nil, fmt.Errorf("%w: %s: parse: %v", ErrCorrupt, id, err)
	}
	if g.N() != e.N || g.M() != e.M {
		s.loadErrors.Add(1)
		return nil, fmt.Errorf("%w: %s: parsed n=%d m=%d, manifest says n=%d m=%d", ErrCorrupt, id, g.N(), g.M(), e.N, e.M)
	}
	s.loads.Add(1)
	return g, nil
}

// readerLocked returns (opening and caching if needed) the read-only
// handle for a segment. ReadAt on *os.File is safe for concurrent use.
func (s *Store) readerLocked(seg int) (*os.File, error) {
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if f, ok := s.readers[seg]; ok {
		return f, nil
	}
	f, err := os.Open(filepath.Join(s.dir, segName(seg)))
	if err != nil {
		return nil, fmt.Errorf("store: open segment for read: %w", err)
	}
	s.readers[seg] = f
	return f, nil
}

// Delete removes id: a tombstone is committed to the manifest, and if
// that leaves the graph's segment with no live entries (and it is not
// the append segment) the whole file is reclaimed.
func (s *Store) Delete(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errors.New("store: closed")
	}
	e, ok := s.index[id]
	if !ok {
		return false, nil
	}
	if err := s.appendManifestLocked(tombstone(id)); err != nil {
		return false, err
	}
	delete(s.index, id)
	s.segLive[e.Seg]--
	s.liveBytes -= e.Len
	s.deletes.Add(1)
	if s.segLive[e.Seg] <= 0 && e.Seg != s.curSeg {
		if f, ok := s.readers[e.Seg]; ok {
			f.Close()
			delete(s.readers, e.Seg)
		}
		if err := os.Remove(filepath.Join(s.dir, segName(e.Seg))); err != nil {
			return true, fmt.Errorf("store: remove dead segment: %w", err)
		}
		s.totalBytes -= s.segBytes[e.Seg]
		delete(s.segBytes, e.Seg)
		delete(s.segLive, e.Seg)
		return true, s.syncDir()
	}
	return true, nil
}

// Walk calls fn for every live graph, in unspecified order. It matches
// the registry's Backend interface so a restarting service can rebuild
// its index without loading any graph bytes.
func (s *Store) Walk(fn func(id string, n, m int)) {
	s.mu.Lock()
	entries := make([]Entry, 0, len(s.index))
	for _, e := range s.index {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	for _, e := range entries {
		fn(e.ID, e.N, e.M)
	}
}

// Info returns the index entry for id without touching the disk.
func (s *Store) Info(id string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[id]
	return e, ok
}

// Stats returns a snapshot of the store's state and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Graphs:       len(s.index),
		Segments:     len(s.segBytes),
		Bytes:        s.totalBytes,
		LiveBytes:    s.liveBytes,
		MaxDiskBytes: s.maxDsk,
		Recovered:    s.recovered,
		CorruptTail:  s.corruptTail,
	}
	if s.cur != nil {
		if _, ok := s.segBytes[s.curSeg]; !ok {
			st.Segments++ // open append segment with nothing committed yet
		}
	}
	s.mu.Unlock()
	st.Loads = s.loads.Load()
	st.LoadErrors = s.loadErrors.Load()
	st.Puts = s.puts.Load()
	st.Deletes = s.deletes.Load()
	st.Syncs = s.syncs.Load()
	return st
}

// Close releases the store's file handles. Committed data needs no
// further shutdown step — every Put was already fsynced.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, f := range s.readers {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.readers = map[int]*os.File{}
	if s.cur != nil {
		if err := s.cur.Close(); err != nil && first == nil {
			first = err
		}
		s.cur = nil
	}
	if s.manifest != nil {
		if err := s.manifest.Close(); err != nil && first == nil {
			first = err
		}
		s.manifest = nil
	}
	return first
}
