package store

import (
	"errors"
	"testing"

	parcut "repro"
)

// batchOf builds n distinct canonical graphs with their ids and payloads.
func batchOf(t *testing.T, n int, seedBase int64) (ids []string, gs []*parcut.Graph, payloads [][]byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		g, id, payload := canon(t, 10, 20, seedBase+int64(i))
		ids = append(ids, id)
		gs = append(gs, g)
		payloads = append(payloads, payload)
	}
	return ids, gs, payloads
}

// TestPutManyGroupCommitFsyncCount is the point of group commit: a batch
// of N graphs costs exactly 2 fsync barriers (segment, manifest) where N
// singular Puts cost 2N. The Syncs counter ticks even under NoSync, so
// this asserts the protocol, not the disk.
func TestPutManyGroupCommitFsyncCount(t *testing.T) {
	s := open(t, t.TempDir(), Options{NoSync: true})
	ids, gs, payloads := batchOf(t, 10, 100)

	base := s.Stats().Syncs
	existed, err := s.PutMany(ids, gs)
	if err != nil {
		t.Fatalf("PutMany: %v", err)
	}
	if got := s.Stats().Syncs - base; got != 2 {
		t.Fatalf("PutMany of %d graphs issued %d fsync barriers, want 2", len(ids), got)
	}
	for i, e := range existed {
		if e {
			t.Fatalf("graph %d reported existed on first commit", i)
		}
		checkRoundTrip(t, s, ids[i], payloads[i])
	}

	// The singular path really is 2 per graph — the baseline the group
	// commit beats.
	ids2, gs2, _ := batchOf(t, 10, 200)
	base = s.Stats().Syncs
	for i := range ids2 {
		mustPut(t, s, ids2[i], gs2[i])
	}
	if got := s.Stats().Syncs - base; got != 20 {
		t.Fatalf("10 singular Puts issued %d fsync barriers, want 20", got)
	}
}

// TestPutManyDurableAndRecovered: a real (synced) group commit survives
// reopen; re-PutMany of the same batch dedups without writing.
func TestPutManyDurableAndRecovered(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	ids, gs, payloads := batchOf(t, 5, 300)
	if _, err := s.PutMany(ids, gs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	if st := s2.Stats(); st.Graphs != 5 || st.Recovered != 5 {
		t.Fatalf("after reopen: %+v, want 5 recovered graphs", st)
	}
	for i := range ids {
		checkRoundTrip(t, s2, ids[i], payloads[i])
	}
	existed, err := s2.PutMany(ids, gs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range existed {
		if !e {
			t.Fatalf("graph %d not deduplicated after recovery", i)
		}
	}
	if st := s2.Stats(); st.Graphs != 5 {
		t.Fatalf("dedup re-commit changed the store: %+v", st)
	}
}

// TestPutManyDedupsWithinBatch: the same id twice in one batch writes one
// copy; the later occurrence reports existed.
func TestPutManyDedupsWithinBatch(t *testing.T) {
	s := open(t, t.TempDir(), Options{NoSync: true})
	g, id, payload := canon(t, 10, 20, 7)
	g2, id2, _ := canon(t, 10, 20, 8)
	existed, err := s.PutMany([]string{id, id2, id}, []*parcut.Graph{g, g2, g})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true}
	for i := range want {
		if existed[i] != want[i] {
			t.Fatalf("existed = %v, want %v", existed, want)
		}
	}
	if st := s.Stats(); st.Graphs != 2 || st.Puts != 2 {
		t.Fatalf("stats = %+v, want 2 graphs committed once each", st)
	}
	checkRoundTrip(t, s, id, payload)
}

// TestPutManyBudgetFailureIsAtomic: a batch that would blow the disk
// budget commits nothing — not even its leading graphs — and leaves the
// store fully usable for a smaller commit.
func TestPutManyBudgetFailureIsAtomic(t *testing.T) {
	dir := t.TempDir()
	_, _, payloads := batchOf(t, 2, 400)
	budget := int64(len(payloads[0]) + 10) // one graph fits, two do not
	s := open(t, dir, Options{MaxDiskBytes: budget})
	ids, gs, _ := batchOf(t, 2, 400)
	if _, err := s.PutMany(ids, gs); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("PutMany over budget = %v, want ErrDiskFull", err)
	}
	if st := s.Stats(); st.Graphs != 0 {
		t.Fatalf("failed batch left %d graphs committed, want 0 (atomic)", st.Graphs)
	}
	// The rolled-back store still takes a batch that fits.
	if _, err := s.PutMany(ids[:1], gs[:1]); err != nil {
		t.Fatalf("PutMany after rollback: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery agrees: only the second, successful commit exists.
	s2 := open(t, dir, Options{MaxDiskBytes: budget})
	if st := s2.Stats(); st.Graphs != 1 || st.CorruptTail != 0 {
		t.Fatalf("after reopen: %+v, want exactly 1 graph and no torn tails", st)
	}
}

// TestPutManyMixedWithExisting: graphs already committed singularly are
// skipped; only the new ones join the group commit.
func TestPutManyMixedWithExisting(t *testing.T) {
	s := open(t, t.TempDir(), Options{NoSync: true})
	ids, gs, payloads := batchOf(t, 3, 500)
	mustPut(t, s, ids[1], gs[1])

	base := s.Stats().Syncs
	existed, err := s.PutMany(ids, gs)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Syncs - base; got != 2 {
		t.Fatalf("mixed batch issued %d barriers, want 2", got)
	}
	if existed[0] || !existed[1] || existed[2] {
		t.Fatalf("existed = %v, want [false true false]", existed)
	}
	for i := range ids {
		checkRoundTrip(t, s, ids[i], payloads[i])
	}
}
