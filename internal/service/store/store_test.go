package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	parcut "repro"
)

// canon returns a canonical random graph, its id (the registry's hashing
// scheme), and its canonical serialization.
func canon(t *testing.T, n, m int, seed int64) (*parcut.Graph, string, []byte) {
	t.Helper()
	g := parcut.RandomGraph(n, m, 50, seed).Canonical()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return g, "sha256:" + hex.EncodeToString(sum[:]), buf.Bytes()
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// mustPut stores g and fails the test on error or unexpected dedup.
func mustPut(t *testing.T, s *Store, id string, g *parcut.Graph) {
	t.Helper()
	existed, err := s.Put(id, g)
	if err != nil {
		t.Fatalf("Put(%s): %v", id, err)
	}
	if existed {
		t.Fatalf("Put(%s): unexpected existed", id)
	}
}

// checkRoundTrip asserts the stored graph re-serializes bit-for-bit to
// the canonical payload it was stored from.
func checkRoundTrip(t *testing.T, s *Store, id string, want []byte) {
	t.Helper()
	g, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Get(%s): serialization differs from stored payload\ngot:\n%s\nwant:\n%s", id, buf.Bytes(), want)
	}
}

func TestPutGetRoundTripsBitForBit(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for seed := int64(1); seed <= 20; seed++ {
		g, id, payload := canon(t, 12, 25, seed)
		mustPut(t, s, id, g)
		checkRoundTrip(t, s, id, payload)
	}
	if st := s.Stats(); st.Graphs != 20 || st.Puts != 20 || st.Loads != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutDeduplicates(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	g, id, _ := canon(t, 8, 12, 1)
	mustPut(t, s, id, g)
	existed, err := s.Put(id, g)
	if err != nil || !existed {
		t.Fatalf("second Put: existed=%v err=%v", existed, err)
	}
	if st := s.Stats(); st.Graphs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReopenRecoversEverythingCommitted(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSegmentBytes: 256}) // force several segments
	type stored struct {
		id      string
		payload []byte
	}
	var all []stored
	for seed := int64(1); seed <= 12; seed++ {
		g, id, payload := canon(t, 12, 20, seed)
		mustPut(t, s, id, g)
		all = append(all, stored{id, payload})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{MaxSegmentBytes: 256})
	st := r.Stats()
	if st.Recovered != int64(len(all)) || st.CorruptTail != 0 {
		t.Fatalf("recovery stats = %+v, want %d recovered, 0 corrupt", st, len(all))
	}
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, stats = %+v", st)
	}
	for _, e := range all {
		checkRoundTrip(t, r, e.id, e.payload)
	}
}

// TestRecoveryTruncatesTornSegmentTail is the crash-mid-ingest invariant:
// payload bytes that reached the segment but never got their manifest
// record (crash between the two fsyncs) are truncated at the next Open,
// counted in CorruptTail, and every committed graph still round-trips
// bit-for-bit.
func TestRecoveryTruncatesTornSegmentTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	g1, id1, p1 := canon(t, 10, 15, 1)
	g2, id2, p2 := canon(t, 11, 18, 2)
	mustPut(t, s, id1, g1)
	mustPut(t, s, id2, g2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn write: half a graph appended to the segment with
	// no manifest record.
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("p cut 99 99\ne 0 1"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	r := open(t, dir, Options{})
	st := r.Stats()
	if st.Recovered != 2 || st.CorruptTail != 1 {
		t.Fatalf("recovery stats = %+v, want 2 recovered, 1 corrupt tail", st)
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() || after.Size() != int64(len(p1)+len(p2)) {
		t.Fatalf("segment not truncated: %d -> %d, want %d", before.Size(), after.Size(), len(p1)+len(p2))
	}
	checkRoundTrip(t, r, id1, p1)
	checkRoundTrip(t, r, id2, p2)

	// And appends keep working on the recovered store.
	g3, id3, p3 := canon(t, 12, 20, 3)
	mustPut(t, r, id3, g3)
	checkRoundTrip(t, r, id3, p3)
}

// TestRecoveryTruncatesTornManifestRecord: a crash mid manifest append
// leaves a partial final line; recovery truncates it (the graph it was
// committing is lost — its segment bytes become a torn tail) and keeps
// every earlier record.
func TestRecoveryTruncatesTornManifestRecord(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	g1, id1, p1 := canon(t, 10, 15, 1)
	mustPut(t, s, id1, g1)
	g2, id2, _ := canon(t, 11, 18, 2)
	mustPut(t, s, id2, g2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop the manifest mid-way through the second record.
	man := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	first := bytes.IndexByte(data, '\n') + 1
	if err := os.WriteFile(man, data[:first+10], 0o666); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{})
	st := r.Stats()
	// One corrupt manifest tail, plus the second graph's now-orphaned
	// segment bytes truncated.
	if st.Recovered != 1 || st.CorruptTail != 2 {
		t.Fatalf("recovery stats = %+v, want 1 recovered, 2 corrupt", st)
	}
	checkRoundTrip(t, r, id1, p1)
	if _, err := r.Get(id2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted graph resurfaced: %v", err)
	}
}

// TestCRCDetectsBitFlip: a flipped payload byte must surface as a clean
// ErrCorrupt from Get, never as a silently different graph.
func TestCRCDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	g, id, _ := canon(t, 10, 15, 7)
	mustPut(t, s, id, g)
	e, ok := s.Info(id)
	if !ok {
		t.Fatal("missing entry")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, segName(e.Seg))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[e.Off+e.Len/2] ^= 0x40 // flip a bit mid-payload
	if err := os.WriteFile(seg, data, 0o666); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{})
	_, err = r.Get(id)
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("Get on bit-flipped payload: err = %v, want ErrCorrupt mentioning CRC", err)
	}
	if st := r.Stats(); st.LoadErrors != 1 {
		t.Fatalf("stats = %+v, want 1 load error", st)
	}
}

func TestDeletePersistsAndReclaimsDeadSegments(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSegmentBytes: 1}) // one graph per segment
	g1, id1, p1 := canon(t, 10, 15, 1)
	g2, id2, _ := canon(t, 11, 18, 2)
	g3, id3, _ := canon(t, 12, 20, 3)
	mustPut(t, s, id1, g1)
	mustPut(t, s, id2, g2)
	mustPut(t, s, id3, g3) // rotates past segments 1 and 2

	if ok, err := s.Delete(id2); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if ok, err := s.Delete(id2); err != nil || ok {
		t.Fatalf("second Delete: ok=%v err=%v", ok, err)
	}
	if _, err := s.Get(id2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted graph still loads: %v", err)
	}
	// id2 had segment 2 to itself; the file must be gone.
	if _, err := os.Stat(filepath.Join(dir, segName(2))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dead segment not reclaimed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The delete survives restart; survivors are intact.
	r := open(t, dir, Options{MaxSegmentBytes: 1})
	st := r.Stats()
	if st.Recovered != 2 || st.CorruptTail != 0 {
		t.Fatalf("recovery stats = %+v", st)
	}
	if _, err := r.Get(id2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted graph resurrected: %v", err)
	}
	checkRoundTrip(t, r, id1, p1)

	// Re-uploading the deleted graph works and lands in a fresh segment.
	mustPut(t, r, id2, g2)
	if _, err := r.Get(id2); err != nil {
		t.Fatalf("re-uploaded graph: %v", err)
	}
}

func TestMaxDiskBytesRejectsOverBudgetPut(t *testing.T) {
	dir := t.TempDir()
	g1, id1, p1 := canon(t, 10, 15, 1)
	s := open(t, dir, Options{MaxDiskBytes: int64(len(p1))})
	mustPut(t, s, id1, g1)
	g2, id2, _ := canon(t, 11, 18, 2)
	if _, err := s.Put(id2, g2); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("over-budget Put: %v, want ErrDiskFull", err)
	}
	// The rejected put must leave no trace: the first graph still loads
	// and a restart sees a clean store.
	checkRoundTrip(t, s, id1, p1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, Options{})
	if st := r.Stats(); st.Recovered != 1 || st.CorruptTail != 0 {
		t.Fatalf("recovery stats after rejected put = %+v", st)
	}
	checkRoundTrip(t, r, id1, p1)
}

func TestConcurrentGetsAndPuts(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxSegmentBytes: 512})
	type stored struct {
		id      string
		payload []byte
	}
	var seeded []stored
	for seed := int64(1); seed <= 8; seed++ {
		g, id, p := canon(t, 10, 16, seed)
		mustPut(t, s, id, g)
		seeded = append(seeded, stored{id, p})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				e := seeded[(w+i)%len(seeded)]
				g, err := s.Get(e.id)
				if err != nil {
					errs <- err
					return
				}
				var buf bytes.Buffer
				if err := g.Write(&buf); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf.Bytes(), e.payload) {
					errs <- errors.New("concurrent Get returned wrong payload")
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, id, _ := canon(t, 13, 22, int64(100+w))
			if _, err := s.Put(id, g); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWalkListsLiveGraphs(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	g1, id1, _ := canon(t, 10, 15, 1)
	g2, id2, _ := canon(t, 11, 18, 2)
	mustPut(t, s, id1, g1)
	mustPut(t, s, id2, g2)
	if _, err := s.Delete(id2); err != nil {
		t.Fatal(err)
	}
	got := map[string][2]int{}
	s.Walk(func(id string, n, m int) { got[id] = [2]int{n, m} })
	if len(got) != 1 {
		t.Fatalf("Walk saw %v", got)
	}
	if dims, ok := got[id1]; !ok || dims != [2]int{g1.N(), g1.M()} {
		t.Fatalf("Walk(%s) = %v, want [%d %d]", id1, got[id1], g1.N(), g1.M())
	}
}

func TestManifestRecordRoundTrip(t *testing.T) {
	e := Entry{ID: "sha256:abc", N: 5, M: 9, Seg: 3, Off: 128, Len: 77, CRC: 12345}
	got, del, ok := parseRecord(strings.TrimSuffix(record(e), "\n"))
	if !ok || del || got != e {
		t.Fatalf("parse(record) = %+v del=%v ok=%v", got, del, ok)
	}
	id, del, ok := parseRecord(strings.TrimSuffix(tombstone("sha256:abc"), "\n"))
	if !ok || !del || id.ID != "sha256:abc" {
		t.Fatalf("parse(tombstone) = %+v del=%v ok=%v", id, del, ok)
	}
	// A flipped byte in a record must fail the line CRC.
	line := strings.TrimSuffix(record(e), "\n")
	bad := strings.Replace(line, "128", "129", 1)
	if _, _, ok := parseRecord(bad); ok {
		t.Fatal("tampered record parsed as valid")
	}
}

func TestOpenRejectsMissingDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with no dir succeeded")
	}
}

func TestStressManySmallGraphsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSegmentBytes: 2048})
	want := map[string][]byte{}
	for seed := int64(1); seed <= 60; seed++ {
		g, id, p := canon(t, 6+int(seed%7), 12, seed)
		if _, err := s.Put(id, g); err != nil {
			t.Fatal(err)
		}
		want[id] = p
	}
	// Delete a third of them.
	i := 0
	for id := range want {
		if i%3 == 0 {
			if _, err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(want, id)
		}
		i++
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, Options{MaxSegmentBytes: 2048})
	if st := r.Stats(); int(st.Recovered) != len(want) {
		t.Fatalf("recovered %d, want %d (stats %+v)", st.Recovered, len(want), st)
	}
	for id, p := range want {
		checkRoundTrip(t, r, id, p)
	}
}

// TestOpenRefusesMidManifestCorruption: an invalid record that is NOT the
// final line cannot be a torn tail — it is corruption inside the
// committed prefix, and recovery must refuse to run rather than silently
// truncate away (and physically delete) every later graph.
func TestOpenRefusesMidManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for seed := int64(1); seed <= 3; seed++ {
		g, id, _ := canon(t, 10, 15, seed)
		mustPut(t, s, id, g)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	man := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0x01 // flip a byte inside the FIRST record
	if err := os.WriteFile(man, data, 0o666); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open over mid-manifest corruption: err = %v, want refusal", err)
	}
	// Nothing was truncated or deleted by the refusal.
	after, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("refusing Open still truncated the manifest: %d -> %d bytes", len(data), len(after))
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
		t.Fatalf("refusing Open removed segment data: %v", err)
	}
}

// TestPutRollsBackWhenDiskFullMidSegment: a rejected Put must leave the
// append offset consistent so the NEXT Put commits bytes that load back
// correctly (regression for the offset-desync rollback path).
func TestPutRollsBackWhenDiskFullMidSegment(t *testing.T) {
	g1, id1, p1 := canon(t, 10, 15, 1)
	g2, id2, _ := canon(t, 14, 30, 2) // bigger than the remaining budget
	g3, id3, p3 := canon(t, 10, 15, 3)
	dir := t.TempDir()
	s := open(t, dir, Options{MaxDiskBytes: int64(len(p1) + len(p3))})
	mustPut(t, s, id1, g1)
	if _, err := s.Put(id2, g2); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("over-budget Put: %v", err)
	}
	mustPut(t, s, id3, g3) // must land exactly after p1, not after orphan bytes
	checkRoundTrip(t, s, id1, p1)
	checkRoundTrip(t, s, id3, p3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, Options{})
	if st := r.Stats(); st.Recovered != 2 || st.CorruptTail != 0 {
		t.Fatalf("recovery stats = %+v", st)
	}
	checkRoundTrip(t, r, id3, p3)
}
