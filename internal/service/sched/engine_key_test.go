package sched

import (
	"context"
	"errors"
	"testing"

	"repro/internal/engine"
)

// TestEngineInResultCacheKey is the cache-key audit regression: the same
// graph and seed solved on two different engines must be two different
// jobs with two different cache entries — before the engine field joined
// the key, the second submission would have been served the first
// engine's cached result.
func TestEngineInResultCacheKey(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	g := cycle(t, 8)

	kGeis := Key{GraphID: "g1", Opt: SolveOptions{Seed: 3, Engine: "geissmann"}}
	kSW := Key{GraphID: "g1", Opt: SolveOptions{Seed: 3, Engine: "stoerwagner"}}

	j1, hit, err := s.Submit(kGeis, g, SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("geissmann Submit: hit=%v err=%v", hit, err)
	}
	if _, err := s.Wait(context.Background(), j1); err != nil {
		t.Fatal(err)
	}
	j2, hit, err := s.Submit(kSW, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("stoerwagner submission for the same graph/seed hit the geissmann cache entry")
	}
	if j1.ID() == j2.ID() {
		t.Fatalf("engines coalesced onto one job %s", j1.ID())
	}
	if _, err := s.Wait(context.Background(), j2); err != nil {
		t.Fatal(err)
	}
	st1, _ := s.Job(j1.ID())
	st2, _ := s.Job(j2.ID())
	if st1.Engine != "geissmann" || st2.Engine != "stoerwagner" {
		t.Fatalf("job engines = %q, %q", st1.Engine, st2.Engine)
	}
	// Both engines are exact on a cycle this small, so the values agree
	// even though the cache entries must not.
	if st1.Value != st2.Value {
		t.Fatalf("cycle cut: geissmann=%d stoerwagner=%d", st1.Value, st2.Value)
	}

	// Resubmitting each engine now hits its own entry.
	for _, k := range []Key{kGeis, kSW} {
		if _, hit, err := s.Submit(k, g, SubmitOpts{}); err != nil || !hit {
			t.Fatalf("resubmit %q: hit=%v err=%v", k.Opt.Engine, hit, err)
		}
	}
}

// TestEngineOptionNormalization: options an engine ignores are erased
// before keying, so requests that cannot differ in outcome share one
// cache entry — and the empty engine name means the default engine's
// entry, not a separate one.
func TestEngineOptionNormalization(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	g := cycle(t, 8)

	// The exact engine ignores seeds: all seeds share one entry.
	j, hit, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 1, Engine: "stoerwagner"}}, g, SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("first SW Submit: hit=%v err=%v", hit, err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 99, Engine: "stoerwagner"}}, g, SubmitOpts{}); err != nil || !hit {
		t.Fatalf("SW with a different seed: hit=%v err=%v, want a cache hit", hit, err)
	}
	// Boost cannot improve a non-decomposable engine: boosted SW folds
	// into the plain entry instead of fanning out.
	jb, hit, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 5, Boost: 5, Engine: "stoerwagner"}}, g, SubmitOpts{})
	if err != nil || !hit {
		t.Fatalf("boosted SW: hit=%v err=%v, want the plain entry", hit, err)
	}
	if jb.Fanout() != 0 {
		t.Fatalf("boosted SW fanned out into %d sub-jobs", jb.Fanout())
	}
	// "" resolves to the default engine's entry.
	jd, _, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 2}}, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), jd); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 2, Engine: engine.Default}}, g, SubmitOpts{}); err != nil || !hit {
		t.Fatalf("explicit default engine: hit=%v err=%v, want the \"\" entry", hit, err)
	}
}

// TestSubmitRejectsUnresolvedEngine: the scheduler never guesses — an
// unknown engine name is rejected, and so is the "auto" pseudo-engine,
// which the API layer must resolve to a concrete engine before keying.
func TestSubmitRejectsUnresolvedEngine(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	g := cycle(t, 8)
	for _, name := range []string{"edmondskarp", "auto"} {
		_, _, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Engine: name}}, g, SubmitOpts{})
		if !errors.Is(err, ErrUnknownEngine) {
			t.Fatalf("Submit(engine=%q) err = %v, want ErrUnknownEngine", name, err)
		}
	}
}
