package sched

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// spanNames collects the distinct span names of a trace.
func spanNames(tr *trace.Trace) map[string]int {
	out := map[string]int{}
	for _, sp := range tr.Spans {
		out[sp.Name]++
	}
	return out
}

// TestJobTracePublished: a traced solve publishes a span tree into the
// ring with the full chain — job root, queue-wait, run, packing, scan —
// and the phase spans' durations are contained in the job span's.
func TestJobTracePublished(t *testing.T) {
	ring := trace.NewRing(8)
	s := New(Config{Workers: 1, Traces: ring})
	defer shutdown(t, s)

	j, _, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 3}}, cycle(t, 32), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	tr, ok := ring.Get(j.ID())
	if !ok {
		t.Fatalf("no trace for %s in ring (len %d)", j.ID(), ring.Len())
	}
	names := spanNames(tr)
	for _, want := range []string{"job", "queue-wait", "run", "packing", "scan", "estimate", "tree-scan", "bough-phase"} {
		if names[want] == 0 {
			t.Fatalf("trace lacks %q span; have %v", want, names)
		}
	}
	if tr.RootAttr("graph") != "g1" || tr.RootAttr("class") != "interactive" || tr.RootAttr("state") != "done" {
		t.Fatalf("root attrs wrong: %+v", tr.Spans[0].Attrs)
	}
	// Phase spans must nest inside the root's duration (the acceptance
	// criterion's sum-within-slack property follows from containment).
	for _, sp := range tr.Spans {
		if sp.Duration > tr.Duration {
			t.Fatalf("span %q (%d ns) longer than trace (%d ns)", sp.Name, sp.Duration, tr.Duration)
		}
	}
}

// TestFanoutTraceLinks: a boosted solve's parent trace names its child
// traces, fresh children point back, and every trace publishes.
func TestFanoutTraceLinks(t *testing.T) {
	ring := trace.NewRing(16)
	s := New(Config{Workers: 2, MaxFanout: 3, Traces: ring})
	defer shutdown(t, s)

	j, _, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 3, Boost: 3}}, cycle(t, 24), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Fanout() != 3 {
		t.Fatalf("fanout = %d, want 3", j.Fanout())
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	parent, ok := ring.Get(j.ID())
	if !ok {
		t.Fatal("parent trace missing")
	}
	var children []string
	for _, a := range parent.Spans[0].Attrs {
		if a.Key == "child_trace" {
			children = append(children, a.Value)
		}
	}
	if len(children) != 3 {
		t.Fatalf("parent links %d children, want 3 (%+v)", len(children), parent.Spans[0].Attrs)
	}
	for _, id := range children {
		ct, ok := ring.Get(id)
		if !ok {
			t.Fatalf("child trace %s missing", id)
		}
		if got := ct.RootAttr("parent_trace"); got != j.ID() {
			t.Fatalf("child %s parent_trace = %q, want %q", id, got, j.ID())
		}
	}
}

// TestUntracedSchedulerHasNoSpans: without a ring, jobs carry no recorder
// and TraceSpan is inert.
func TestUntracedSchedulerHasNoSpans(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	j, _, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 3}}, cycle(t, 16), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if j.TraceSpan().Active() {
		t.Fatal("untraced job has an active span")
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
}

// TestSlowSolveLog: a threshold of 1ns flags every solve; the structured
// line carries the job, phase attribution, and duration.
func TestSlowSolveLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := New(Config{Workers: 1, SlowSolve: time.Nanosecond, Logger: logger})
	defer shutdown(t, s)
	j, _, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 3}}, cycle(t, 32), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "slow-solve line", func() bool {
		return strings.Contains(buf.String(), "slow solve")
	})
	line := buf.String()
	for _, want := range []string{"job=" + j.ID(), "graph=g1", "class=interactive", "packing=", "scan=", "queue_wait="} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-solve line lacks %q: %s", want, line)
		}
	}
}

// TestPhaseHistograms: completed solves populate the class/phase duration
// histograms and the queue-wait histogram.
func TestPhaseHistograms(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	j, _, err := s.Submit(Key{GraphID: "g1", Opt: SolveOptions{Seed: 3}}, cycle(t, 32), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	// finishPublish (which settles the phase tail) runs before done is
	// closed, so the histograms are settled once Wait returns.
	m := s.Metrics()
	cm := m.Classes[ClassInteractive.rank()]
	if cm.QueueWait.Count == 0 {
		t.Fatalf("queue-wait histogram empty: %+v", cm.QueueWait)
	}
	if len(cm.PhaseDurations) != len(phaseNames) {
		t.Fatalf("phase histograms = %+v", cm.PhaseDurations)
	}
	for _, ph := range cm.PhaseDurations {
		if ph.Phase == "contract" {
			// The default engine never contracts; its histogram stays
			// empty here (engine-labeled coverage is tested separately).
			continue
		}
		if ph.Hist.Count == 0 {
			t.Fatalf("phase %q histogram empty", ph.Phase)
		}
		// The cumulative buckets must be monotone and end at Count.
		last := int64(0)
		for _, b := range ph.Hist.Buckets {
			if b.Count < last {
				t.Fatalf("phase %q buckets not cumulative: %+v", ph.Phase, ph.Hist.Buckets)
			}
			last = b.Count
		}
		if last > ph.Hist.Count {
			t.Fatalf("phase %q bucket count exceeds total: %+v", ph.Phase, ph.Hist)
		}
	}
}
