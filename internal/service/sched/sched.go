// Package sched runs minimum-cut jobs on a bounded worker pool. It is the
// service layer's concurrency core: requests become Jobs, identical
// requests coalesce into one solver run (singleflight keyed by graph hash,
// seed, and options), finished results are cached, every job carries a
// context so callers can cancel or time out, and Shutdown drains in-flight
// work before returning.
//
// Jobs are classed (interactive / batch / background) and dispatched by
// weighted fairness: each class owns a queue (smallest-graph-first within
// the class, with periodic oldest-first aging pops), and workers pick the
// next job by deficit round robin over the configured class weights, so
// no class can starve another — see class.go. Per-class queue caps and a
// global queue bound reject excess load at Submit time with typed errors
// the API maps to 429s.
//
// Every job carries a live progress sink (parcut.Progress) threaded into
// the solver and an event log: lifecycle transitions, solver phase
// changes, and throttled counter updates, streamed to clients as NDJSON
// and aggregated into the solve-phase-seconds metrics.
//
// The machine's cores are partitioned across the pool: each worker owns a
// long-lived parcut.Executor of width Config.SolveParallelism (default
// ⌈GOMAXPROCS/Workers⌉) that all its solves run on, so a saturated
// scheduler uses exactly Workers × SolveParallelism lanes instead of
// oversubscribing the box. Executor width never affects results.
//
// Boosted solves fan out: a Boost=k request is decomposed into up to
// MaxFanout sub-jobs covering disjoint run ranges (parcut.BoostSeed makes
// the chunking exact), scheduled across the pool like any other job and
// merged by a deterministic reduction — smallest Value, ties to the lowest
// run index — so the merged result is bit-for-bit the sequential Boost
// loop's. Sub-jobs are keyed like ordinary requests, so overlapping boost
// requests and plain single-seed requests share runs through the same
// singleflight cache, and canceling the parent cancels sub-jobs nobody
// else is waiting on.
package sched

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	parcut "repro"
	"repro/internal/engine"
	"repro/internal/trace"
)

// ErrDraining is returned by Submit once Shutdown has begun.
var ErrDraining = errors.New("sched: scheduler is draining")

// ErrQueueFull is returned by Submit when the global queue bound
// (Config.MaxQueue) is reached.
var ErrQueueFull = errors.New("sched: queue full")

// ErrClassQueueFull is returned by Submit when the submitting class's
// queue cap (Config.ClassQueueCaps) is reached. Other classes may still
// have room — the caller's load, not the service, is what is saturated.
var ErrClassQueueFull = errors.New("sched: class queue cap reached")

// ErrUnknownEngine is returned by Submit for an engine name it cannot
// schedule: one that is not registered, or the unresolved "auto"
// pseudo-engine (callers resolve auto against the graph's size via
// engine.Resolve before submitting, so cache keys always name a concrete
// engine and an auto request shares its cache entry with the equivalent
// explicit one).
var ErrUnknownEngine = errors.New("sched: unknown engine")

// SolveOptions is the comparable subset of parcut.Options that, together
// with the graph ID, keys the result cache. Submit normalizes it so
// equivalent requests share one key: Boost 0 and 1 both mean a single
// run, the empty Engine means the default, and options the chosen engine
// cannot use are zeroed — a non-boost-decomposable engine runs once
// whatever Boost says, an engine without parallel phases ignores that
// flag, and a seed-insensitive (exact) engine returns the same result for
// every seed, so all seeds map to one cache entry. Without Engine in the
// key, two engines' results for the same graph and seed would collide in
// the cache.
type SolveOptions struct {
	Seed           int64
	WantPartition  bool
	Boost          int
	ParallelPhases bool
	// Engine names the solver backend (engine.Names lists the valid
	// values; empty means engine.Default). It is part of the cache key.
	Engine string
}

func (o SolveOptions) normalized() SolveOptions {
	if o.Boost < 1 {
		o.Boost = 1
	}
	if o.Engine == "" {
		o.Engine = engine.Default
	}
	if eng, ok := engine.Lookup(o.Engine); ok {
		caps := eng.Caps()
		if !caps.BoostDecomposable {
			o.Boost = 1
		}
		if !caps.ParallelPhases {
			o.ParallelPhases = false
		}
		if !caps.Seeded {
			o.Seed = 0
		}
	}
	return o
}

func (o SolveOptions) parcut() parcut.Options {
	return parcut.Options{
		Engine:         o.Engine,
		Seed:           o.Seed,
		WantPartition:  o.WantPartition,
		Boost:          o.Boost,
		ParallelPhases: o.ParallelPhases,
	}
}

// Key identifies a solve request for coalescing and caching.
type Key struct {
	GraphID string
	Opt     SolveOptions
}

// State is a job's lifecycle stage.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// fanout is the bookkeeping of a decomposed boost solve: the parent job
// waits (off-worker) for its children and merges their results. children
// is immutable after construction.
type fanout struct {
	children []*Job
}

// Job is one scheduled (possibly shared) solver run, or the parent of a
// boost fan-out. All mutable fields are guarded by the owning scheduler's
// mutex; Done is closed exactly once when the job reaches a terminal
// state.
type Job struct {
	id    string
	key   Key
	g     *parcut.Graph
	owner *Scheduler // the scheduler that created the job; Handle.Wait needs it

	class    Class
	prio     int           // graph edge count; smaller solves first within a class
	seq      uint64        // FIFO tiebreak
	heapIdx  int           // index in its class queue heap; -1 once popped or removed
	fifoElem *list.Element // position in its class's arrival FIFO (aging); nil once dequeued

	ctx    context.Context
	cancel context.CancelCauseFunc

	waiters  int
	detached bool    // submitted without a waiter; never auto-canceled
	group    *fanout // non-nil for boost fan-out parents

	// prog is the live progress sink threaded into the solver; its hook
	// feeds the event log and the phase-seconds metrics.
	prog *parcut.Progress

	// Tracing (all nil/zero when the scheduler has no trace ring). rec
	// publishes the job's span tree when its last holder releases it; the
	// scheduler's own hold is released in finishPublish. rootSp and
	// queueSp are written once at creation and immutable afterwards.
	rec     *trace.Recorder
	rootSp  trace.SpanRef
	queueSp trace.SpanRef
	// metricClass is the class rank frozen at dispatch (creation rank
	// until then): the label the solver-side metric hooks use, so they
	// never race with escalation's writes to class. Written under s.mu
	// before the solve starts; read by the solver hooks afterwards.
	metricClass int
	// engineIdx is the engine's rank in the metric label space, fixed at
	// creation (the engine of a job never changes), so solver hooks read
	// it without any lock.
	engineIdx int

	state       State
	res         parcut.Result
	err         error
	created     time.Time
	dispatched  time.Time // when a worker picked the job up
	dispatchSeq uint64    // global dispatch order (0 = never dispatched)
	finished    time.Time
	histBytes   int64 // memory charged against HistoryBytes at publish

	// Event log, guarded by evMu (never by the scheduler mutex: the
	// solver hook appends while holding only evMu, so progress updates
	// cannot contend with Submit/Wait traffic). evWake is closed and
	// replaced on every append.
	evMu       sync.Mutex
	events     []Event
	evWake     chan struct{}
	evPhase    string
	evPhaseAt  time.Time
	evLastProg time.Time
	// Per-job phase wall time (evMu-guarded, same writers as evPhaseAt):
	// the slow-solve log reads these to say where a slow job's time went.
	packNanos     int64
	scanNanos     int64
	contractNanos int64

	done chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Progress returns a live snapshot of the job's solver counters. For a
// fan-out parent it aggregates the children's sinks (phase "fanout").
// Safe to call at any time; purely atomic reads.
func (j *Job) Progress() parcut.ProgressSnapshot {
	if j.group == nil {
		return j.prog.Snapshot()
	}
	agg := parcut.ProgressSnapshot{Phase: "fanout", RunsTotal: int64(j.key.Opt.Boost)}
	for _, c := range j.group.children {
		ps := c.prog.Snapshot()
		agg.RunsDone += ps.RunsDone
		agg.PackRoundsDone += ps.PackRoundsDone
		agg.PackRoundsTotal += ps.PackRoundsTotal
		agg.TreesScanned += ps.TreesScanned
		agg.TreesTotal += ps.TreesTotal
		agg.BoughPhasesDone += ps.BoughPhasesDone
		agg.BoughsProcessed += ps.BoughsProcessed
	}
	return agg
}

// Fanout returns the number of sub-jobs a boosted solve was decomposed
// into, 0 for ordinary jobs. It is fixed at Submit time, so reading it
// never contends with the scheduler.
func (j *Job) Fanout() int {
	if j.group == nil {
		return 0
	}
	return len(j.group.children)
}

// Status is a snapshot of a job visible to API clients.
type Status struct {
	ID      string
	GraphID string
	Opt     SolveOptions
	Class   Class
	// Engine is the concrete solver backend the job runs on (Opt.Engine
	// after normalization — never empty or "auto").
	Engine       string
	State        State
	Value        int64
	InCut        []bool
	TreesScanned int
	// Fanout is the number of sub-jobs a boosted solve was decomposed
	// into; 0 for ordinary jobs.
	Fanout int
	// Progress is the live solver snapshot (aggregated over sub-jobs for
	// fan-out parents); Fraction is its display-oriented completion
	// estimate, forced to 1 for done jobs.
	Progress parcut.ProgressSnapshot
	Fraction float64
	Err      string
	Created  time.Time
	// Dispatched is when a worker picked the job up (zero while queued
	// and for fan-out parents, which never occupy a worker);
	// DispatchSeq is the job's position in the scheduler's global
	// dispatch order (1-based; 0 = never dispatched) — fairness tests
	// and audits read the weighted-fair interleaving from it.
	Dispatched  time.Time
	DispatchSeq uint64
	Finished    time.Time
}

// Config sizes a Scheduler.
type Config struct {
	// Workers is the solver pool size; 0 means 1.
	Workers int
	// History bounds how many finished jobs (and their cached results)
	// are retained; 0 means 1024.
	History int
	// HistoryBytes additionally bounds the memory those retained jobs may
	// pin — partition bytes (Result.InCut) plus their event logs —
	// evicting oldest-first past the budget; a count bound alone would
	// let 1024 partitions of huge graphs (or 1024 full event logs) dwarf
	// the registry budget. 0 means 256 MiB.
	HistoryBytes int64
	// MaxFanout caps how many sub-jobs a boosted solve is decomposed
	// into (larger boosts get chunked run ranges). 0 means
	// max(2*Workers, 8); 1 disables fan-out, running the boost loop
	// sequentially inside one worker.
	MaxFanout int
	// SolveParallelism is the executor width each solver worker owns:
	// the machine's cores are partitioned across the pool instead of
	// oversubscribed (the pre-pool behavior was Workers × GOMAXPROCS
	// goroutines at full load). 0 means ⌈GOMAXPROCS/Workers⌉, so the
	// whole machine is saturated — never exceeded — when every worker is
	// busy. Solver results are identical at every width.
	SolveParallelism int
	// ClassWeights sets each class's dispatch share under contention
	// (deficit-round-robin quantum, unit cost per job). Missing or
	// non-positive entries take the defaults (interactive 8, batch 4,
	// background 1). nil means all defaults.
	ClassWeights map[Class]int
	// ClassQueueCaps bounds each class's queued jobs; a Submit that would
	// queue past the cap returns ErrClassQueueFull. 0 or missing means
	// unbounded. Boost fan-out children are admitted with their parent
	// but occupy real queue slots of the parent's class, so they count
	// against the cap for later submissions — one huge boost exerts the
	// same backpressure as the equivalent number of plain jobs.
	ClassQueueCaps map[Class]int
	// MaxQueue bounds the total queued jobs across classes; Submit
	// returns ErrQueueFull past it. 0 means unbounded.
	MaxQueue int
	// Traces, when non-nil, turns on per-job tracing: every job records a
	// span tree (root "job" span, "queue-wait" and "run" children, solver
	// phase spans below) published into the ring when the job finishes and
	// its last holder releases it. nil disables tracing entirely — jobs
	// carry a nil recorder and every span operation is a single branch.
	Traces *trace.Ring
	// SlowSolve, when positive, logs one structured line (via Logger) for
	// every job whose creation-to-finish wall time reaches it, with queue
	// wait and per-phase attribution.
	SlowSolve time.Duration
	// Logger receives the scheduler's structured logs (currently the
	// slow-solve lines). nil means slog.Default().
	Logger *slog.Logger
	// IDPrefix is prepended to every job ID this scheduler mints. Single
	// instances leave it empty ("job-7"); cluster nodes set a per-node
	// prefix ("a1b2-job-7") so job IDs are unique across the cluster and
	// a job lookup that misses locally can be forwarded to peers without
	// ambiguity.
	IDPrefix string
}

// Scheduler owns the worker pool, the priority queue, and the result
// cache. Create with New, stop with Shutdown.
type Scheduler struct {
	workers      int
	history      int
	historyBytes int64
	maxFanout    int
	solveWidth   int // executor width per solver worker
	maxQueue     int
	weights      [numClasses]int
	caps         [numClasses]int
	traces       *trace.Ring
	slowSolve    time.Duration
	log          *slog.Logger
	idPrefix     string

	baseCtx    context.Context
	cancelBase context.CancelCauseFunc

	mu          sync.Mutex
	cond        *sync.Cond
	queues      [numClasses]jobHeap    // one priority queue per class
	fifos       [numClasses]*list.List // arrival order per class, for aging pops
	queuedTotal int
	deficit     [numClasses]int // remaining DRR quantum per class
	rrIdx       int             // DRR cursor
	agePops     [numClasses]int // pops since the last aging pop per class
	byID        map[string]*Job
	byKey       map[Key]*Job // in-flight or successfully finished jobs
	order       []string     // finished job IDs, oldest first (history ring)
	resBytes    int64        // partition bytes pinned by the history
	nextSeq     uint64
	dispatchSeq uint64
	draining    bool
	running     int // jobs currently on a worker (fan-out parents excluded)
	peakRun     int // high-water mark of running

	execMu sync.Mutex
	execs  []*parcut.Executor // live worker executors, for Metrics aggregation

	wg sync.WaitGroup
	m  counters
}

// New starts a scheduler with cfg.Workers solver goroutines.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.History < 1 {
		cfg.History = 1024
	}
	if cfg.HistoryBytes < 1 {
		cfg.HistoryBytes = 256 << 20
	}
	if cfg.MaxFanout < 1 {
		cfg.MaxFanout = 2 * cfg.Workers
		if cfg.MaxFanout < 8 {
			cfg.MaxFanout = 8
		}
	}
	if cfg.SolveParallelism < 1 {
		p := runtime.GOMAXPROCS(0)
		cfg.SolveParallelism = (p + cfg.Workers - 1) / cfg.Workers
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Scheduler{
		workers:      cfg.Workers,
		history:      cfg.History,
		historyBytes: cfg.HistoryBytes,
		maxFanout:    cfg.MaxFanout,
		solveWidth:   cfg.SolveParallelism,
		maxQueue:     cfg.MaxQueue,
		traces:       cfg.Traces,
		slowSolve:    cfg.SlowSolve,
		log:          cfg.Logger,
		idPrefix:     cfg.IDPrefix,
		baseCtx:      ctx,
		cancelBase:   cancel,
		byID:         make(map[string]*Job),
		byKey:        make(map[Key]*Job),
	}
	s.m.initEngines()
	for i, c := range Classes {
		s.fifos[i] = list.New()
		s.weights[i] = defaultClassWeights[c]
		if w, ok := cfg.ClassWeights[c]; ok && w > 0 {
			s.weights[i] = w
		}
		if cap := cfg.ClassQueueCaps[c]; cap > 0 {
			s.caps[i] = cap
		}
	}
	// The DRR cursor starts on interactive with a fresh quantum.
	s.deficit[0] = s.weights[0]
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// SubmitOpts qualifies a submission. The zero value is a plain attached
// interactive request.
type SubmitOpts struct {
	// Class is the job's QoS class; the empty string means interactive.
	Class Class
	// Detached submissions run even if nobody waits; attached ones must
	// be followed by exactly one Wait call on the returned job.
	Detached bool
}

// Submit schedules a solve of g (registered under key.GraphID) or joins an
// equivalent job that is already queued, running, or finished. It reports
// whether the request was a cache hit (no new solver run). Joining a job
// escalates it to the stronger of its and the new request's class, so a
// coalesced job always serves its most latency-sensitive waiter.
//
// A Boost > 1 request becomes a fan-out parent: its sub-jobs occupy
// workers (inheriting the parent's class), the parent itself never does.
// The parent reports StateRunning while its sub-jobs are in flight.
//
// Admission control applies to genuinely new work only (joins add no
// queue entries): past Config.MaxQueue total queued jobs Submit returns
// ErrQueueFull, and past the class's Config.ClassQueueCaps entry it
// returns ErrClassQueueFull.
func (s *Scheduler) Submit(key Key, g *parcut.Graph, opts SubmitOpts) (*Job, bool, error) {
	key.Opt = key.Opt.normalized()
	if _, ok := engine.Lookup(key.Opt.Engine); !ok {
		return nil, false, fmt.Errorf("%w %q", ErrUnknownEngine, key.Opt.Engine)
	}
	class, err := ParseClass(string(opts.Class))
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.m.rejected.Add(1)
		s.m.rejectedDraining.Add(1)
		return nil, false, ErrDraining
	}
	// A still-unfinished job whose context is already canceled (abandoned
	// waiters, Cancel) is doomed; joining it would hand this fresh request
	// a spurious cancellation error, so start over instead (the doomed job
	// skips its byKey cleanup once it sees it was replaced). Finished jobs
	// always have a canceled context — publish releases it — so the check
	// must not exclude them from cache hits.
	if prev, ok := s.byKey[key]; ok && !doomed(prev) {
		s.m.submitted.Add(1)
		s.m.submittedBy[class.rank()].Add(1)
		s.m.cacheHits.Add(1)
		if prev.state == StateQueued || prev.state == StateRunning {
			s.m.coalesced.Add(1)
		}
		if !opts.Detached {
			prev.waiters++
		}
		if opts.Detached {
			prev.detached = true
		}
		s.escalateLocked(prev, class)
		return prev, true, nil
	}
	if s.maxQueue > 0 && s.queuedTotal >= s.maxQueue {
		s.m.rejected.Add(1)
		s.m.rejectedQueueFull.Add(1)
		return nil, false, fmt.Errorf("%w: %d jobs queued", ErrQueueFull, s.queuedTotal)
	}
	if cap := s.caps[class.rank()]; cap > 0 && s.queues[class.rank()].Len() >= cap {
		s.m.rejected.Add(1)
		s.m.rejectedClassCap.Add(1)
		return nil, false, fmt.Errorf("%w: class %q has %d jobs queued, cap %d",
			ErrClassQueueFull, class, s.queues[class.rank()].Len(), cap)
	}
	s.m.submitted.Add(1)
	s.m.submittedBy[class.rank()].Add(1)
	if key.Opt.Boost > 1 && s.maxFanout > 1 {
		return s.newFanoutLocked(key, g, class, opts.Detached), false, nil
	}
	j := s.newJobLocked(key, g, class, opts.Detached)
	s.pushLocked(j)
	s.cond.Signal()
	return j, false, nil
}

// doomed reports whether j is unfinished but already canceled, so a fresh
// request must not join it.
func doomed(j *Job) bool {
	return j.ctx.Err() != nil && (j.state == StateQueued || j.state == StateRunning)
}

// newJobLocked allocates and registers a queued job (without pushing it to
// its class queue — fan-out parents are never queued).
func (s *Scheduler) newJobLocked(key Key, g *parcut.Graph, class Class, detached bool) *Job {
	s.nextSeq++
	jctx, jcancel := context.WithCancelCause(s.baseCtx)
	j := &Job{
		id:       fmt.Sprintf("%sjob-%d", s.idPrefix, s.nextSeq),
		key:      key,
		g:        g,
		owner:    s,
		class:    class,
		prio:     g.M(),
		seq:      s.nextSeq,
		heapIdx:  -1,
		ctx:      jctx,
		cancel:   jcancel,
		detached: detached,
		state:    StateQueued,
		created:  time.Now(),
		evWake:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	j.prog = parcut.NewProgress(func(ps parcut.ProgressSnapshot) { s.onProgress(j, ps) })
	j.metricClass = class.rank()
	j.engineIdx = engineRank(key.Opt.Engine)
	if s.traces != nil {
		j.rec = trace.NewRecorder(j.id, 0, s.traces.Add)
		j.rootSp = j.rec.Start("job").Attr("job", j.id).Attr("graph", key.GraphID).
			Attr("class", string(class)).Attr("engine", key.Opt.Engine).
			AttrInt("seed", key.Opt.Seed).AttrInt("boost", int64(key.Opt.Boost))
		j.queueSp = j.rootSp.Child("queue-wait").Attr("class", string(class))
	}
	if !detached {
		j.waiters = 1
	}
	s.byID[j.id] = j
	s.byKey[key] = j
	j.recordEvent(Event{Type: "state", State: StateQueued}, false)
	return j
}

// TraceSpan returns the job's root span (the zero SpanRef when tracing is
// disabled). HTTP handlers hang request spans off it; they must take a
// Hold on its Recorder first and Release when done.
func (j *Job) TraceSpan() trace.SpanRef { return j.rootSp }

// newFanoutLocked decomposes a Boost=k solve into up to maxFanout
// sub-jobs covering disjoint run ranges and registers the parent that
// merges them. Sub-jobs inherit the parent's class — they are the
// parent's work wearing smaller coats, so a background boost must not
// have its pieces compete as if they were fresh interactive arrivals —
// and go through the same singleflight keying as external requests, so
// overlapping boost requests share runs. The merge goroutine is
// registered on the scheduler's WaitGroup so Shutdown waits for parents,
// not just workers.
func (s *Scheduler) newFanoutLocked(key Key, g *parcut.Graph, class Class, detached bool) *Job {
	parent := s.newJobLocked(key, g, class, detached)
	parent.state = StateRunning // its sub-jobs are in flight from the start
	parent.group = &fanout{}
	s.m.fanouts.Add(1)

	k := key.Opt.Boost
	chunks := s.maxFanout
	if k < chunks {
		chunks = k
	}
	base, rem := k/chunks, k%chunks
	start := 0
	for i := 0; i < chunks; i++ {
		size := base
		if i < rem {
			size++
		}
		// Children carry the parent's engine: without it two engines'
		// sub-runs for the same seed range would collide in the cache.
		childKey := Key{GraphID: key.GraphID, Opt: SolveOptions{
			Seed:           parcut.BoostSeed(key.Opt.Seed, start),
			WantPartition:  key.Opt.WantPartition,
			Boost:          size,
			ParallelPhases: key.Opt.ParallelPhases,
			Engine:         key.Opt.Engine,
		}}
		child, fresh := s.submitChildLocked(childKey, g, class)
		parent.group.children = append(parent.group.children, child)
		// Link the traces both ways: the parent's trace names each child
		// trace, and each child (when this parent created it) names the
		// parent. A shared child keeps its original parent_trace link.
		parent.rootSp.Attr("child_trace", child.id)
		if fresh {
			child.rootSp.Attr("parent_trace", parent.id)
		}
		start += size
	}
	// A fan-out parent never queues — its sub-jobs do — so its queue-wait
	// span closes immediately.
	parent.queueSp.End()
	// The parent never solves; drop its graph reference now so only the
	// children (and the registry) pin it.
	parent.g = nil
	parent.recordEvent(Event{Type: "state", State: StateRunning}, false)
	ps := parent.Progress()
	parent.recordEvent(Event{Type: "phase", Phase: ps.Phase, Progress: &ps, Fraction: fptr(ps.Fraction())}, true)
	s.cond.Broadcast()
	s.wg.Add(1)
	go s.merge(parent)
	return parent
}

// submitChildLocked is Submit's internal sibling for fan-out sub-jobs: the
// parent counts as one waiter, the child inherits the parent's class, and
// the sub-job counters move instead of the external submission counters.
// A shared child is escalated if this parent's class is stronger. fresh
// reports whether the child was created here (false: joined an existing
// or cached job).
func (s *Scheduler) submitChildLocked(key Key, g *parcut.Graph, class Class) (j *Job, fresh bool) {
	s.m.subJobs.Add(1)
	if prev, ok := s.byKey[key]; ok && !doomed(prev) {
		s.m.subJobsShared.Add(1)
		prev.waiters++
		s.escalateLocked(prev, class)
		return prev, false
	}
	j = s.newJobLocked(key, g, class, false)
	s.pushLocked(j)
	return j, true
}

// merge waits for a fan-out parent's children and publishes the reduced
// result: smallest Value, ties broken by run index (children are held in
// run order and each child reduces its own chunk the same way), matching
// the sequential Boost loop exactly. If the parent is canceled, the
// per-child waits give up, which drops the parent's waiter registration
// on every child and thereby cancels the sub-jobs nobody else wants.
func (s *Scheduler) merge(parent *Job) {
	defer s.wg.Done()
	children := parent.group.children
	type sub struct {
		res parcut.Result
		err error
	}
	results := make([]sub, len(children))
	mctx, mcancel := context.WithCancelCause(parent.ctx)
	defer mcancel(nil)
	var wg sync.WaitGroup
	for i, c := range children {
		wg.Add(1)
		go func(i int, c *Job) {
			defer wg.Done()
			res, err := s.Wait(mctx, c)
			results[i] = sub{res, err}
			if err != nil {
				// One failed run fails the whole boost; stop waiting on
				// (and thereby release) the siblings.
				mcancel(err)
				return
			}
			// Each finished chunk is a progress milestone on the parent's
			// own event stream — without this, watchers of a boosted job
			// would see nothing between "running" and the terminal result
			// (the children's phase events land on the children's logs).
			ps := parent.Progress()
			parent.recordEvent(Event{Type: "progress", Phase: ps.Phase, Progress: &ps, Fraction: fptr(ps.Fraction())}, true)
		}(i, c)
	}
	wg.Wait()

	var out parcut.Result
	var err error
	for i, r := range results {
		if r.err != nil {
			// Prefer a real solver failure over the sibling cancellations
			// it triggered.
			if err == nil || (isCancellation(err) && !isCancellation(r.err)) {
				err = r.err
			}
			continue
		}
		if err != nil {
			continue
		}
		if i == 0 || r.res.Value < out.Value {
			out = parcut.Result{Value: r.res.Value, InCut: r.res.InCut, TreesScanned: out.TreesScanned + r.res.TreesScanned}
		} else {
			out.TreesScanned += r.res.TreesScanned
		}
	}
	if err != nil {
		out = parcut.Result{}
		// Wait's errors carry the cancellation *cause* (a plain message),
		// not context.Canceled itself; re-wrap so the parent classifies as
		// canceled exactly when its own context was ended.
		if ctxErr := parent.ctx.Err(); ctxErr != nil && !isCancellation(err) {
			err = fmt.Errorf("sched: boost fan-out canceled (%v): %w", context.Cause(parent.ctx), ctxErr)
		}
	}
	s.publish(parent, out, err)
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Wait blocks until j finishes or ctx is done, whichever is first. When
// the last waiter of a still-unfinished, non-detached job gives up, the
// job's context is canceled so the solver stops promptly instead of
// running to completion. The returned error wraps ctx's cause on timeout
// and the solver's error (including cancellation) otherwise.
func (s *Scheduler) Wait(ctx context.Context, j *Job) (parcut.Result, error) {
	select {
	case <-j.done:
		s.dropWaiter(j)
		return j.res, j.err
	case <-ctx.Done():
		s.dropWaiter(j)
		return parcut.Result{}, fmt.Errorf("sched: wait: %w", context.Cause(ctx))
	}
}

// dropWaiter unregisters one waiter and cancels the job if it was the
// last. The cancel happens under the scheduler lock: deciding outside it
// would let a concurrent Submit join the job in the window between the
// abandon check and the cancel and then see its fresh request canceled.
// (context cancel functions only close done channels and propagate to
// children — they never call back into the scheduler, so holding the
// lock is safe.) A job abandoned while still queued is removed from the
// heap and published right here instead of burning a worker pop.
func (s *Scheduler) dropWaiter(j *Job) {
	s.mu.Lock()
	if j.waiters > 0 {
		j.waiters--
	}
	aborted := false
	if j.waiters == 0 && !j.detached &&
		(j.state == StateQueued || j.state == StateRunning) {
		j.cancel(errors.New("sched: all waiters gone"))
		aborted = s.abortQueuedLocked(j)
	}
	s.mu.Unlock()
	if aborted {
		s.finishPublish(j)
	}
}

// Cancel aborts the job with the given ID. It reports whether the job
// exists and had not already finished. A running job (or fan-out parent)
// transitions through its worker or merge goroutine as before; a job
// still in the queue is removed and published immediately, so queue depth
// and worker time are not spent on doomed work.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.byID[id]
	if !ok || (j.state != StateQueued && j.state != StateRunning) {
		s.mu.Unlock()
		return false
	}
	j.cancel(errors.New("sched: canceled by request"))
	aborted := s.abortQueuedLocked(j)
	s.mu.Unlock()
	if aborted {
		s.finishPublish(j)
	}
	return true
}

// abortQueuedLocked eagerly removes a canceled-but-still-queued job from
// its class queue and records its terminal state. The caller must hold
// s.mu, must already have canceled j's context, and — when true is
// returned — must call finishPublish(j) after unlocking.
func (s *Scheduler) abortQueuedLocked(j *Job) bool {
	if j.state != StateQueued || j.heapIdx < 0 {
		return false
	}
	s.unqueueLocked(j)
	s.publishLocked(j, parcut.Result{}, fmt.Errorf("sched: canceled while queued (%v): %w", context.Cause(j.ctx), j.ctx.Err()))
	return true
}

// InvalidateGraph drops every singleflight/result-cache key for the
// given graph ID and returns how many keys were removed. Callers use it
// when a graph is deleted: without it, a later re-upload of the same
// content (same hash, hence same ID) would be served stale cached cuts
// computed before the delete. In-flight jobs keep running — they hold
// their own graph reference — but lose their cache key, so they finish
// for their current waiters and are never joined or replayed afterwards.
func (s *Scheduler) InvalidateGraph(graphID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for key := range s.byKey {
		if key.GraphID == graphID {
			delete(s.byKey, key)
			n++
		}
	}
	return n
}

// Job returns a snapshot of the job with the given ID.
func (s *Scheduler) Job(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return Status{}, false
	}
	return s.statusLocked(j), true
}

func (s *Scheduler) statusLocked(j *Job) Status {
	st := Status{
		ID:          j.id,
		GraphID:     j.key.GraphID,
		Opt:         j.key.Opt,
		Class:       j.class,
		Engine:      j.key.Opt.Engine,
		State:       j.state,
		Created:     j.created,
		Dispatched:  j.dispatched,
		DispatchSeq: j.dispatchSeq,
		Finished:    j.finished,
		Progress:    j.Progress(),
	}
	st.Fraction = st.Progress.Fraction()
	if j.group != nil {
		st.Fanout = len(j.group.children)
	}
	if j.state == StateDone {
		st.Value = j.res.Value
		st.InCut = j.res.InCut
		st.TreesScanned = j.res.TreesScanned
		st.Fraction = 1
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Lookup returns the live job object for event streaming; most callers
// want the Status snapshot from Job instead.
func (s *Scheduler) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// Metrics returns a snapshot of the scheduler's counters and gauges.
func (s *Scheduler) Metrics() Metrics {
	m := s.m.snapshot()
	s.mu.Lock()
	depth := 0
	for i := range s.queues {
		d := s.queues[i].Len()
		depth += d
		m.Classes[i].QueueDepth = d
	}
	m.QueueDepth = depth
	m.Running = s.running
	m.PeakRunning = s.peakRun
	s.mu.Unlock()
	for i, c := range Classes {
		m.Classes[i].Class = c
		m.Classes[i].Weight = s.weights[i]
		m.Classes[i].QueueCap = s.caps[i]
	}
	m.Workers = s.workers
	m.PoolWidth = s.solveWidth
	s.execMu.Lock()
	for _, e := range s.execs {
		st := e.Stats()
		m.Pool.Steals += st.Steals
		m.Pool.LocalPushes += st.LocalPushes
		m.Pool.SharedPushes += st.SharedPushes
		m.Pool.OverflowPushes += st.OverflowPushes
		m.Pool.InlineRuns += st.InlineRuns
		m.Pool.ArenaHits += st.ArenaHits
		m.Pool.ArenaMisses += st.ArenaMisses
	}
	s.execMu.Unlock()
	return m
}

// Shutdown stops accepting new jobs and waits for queued and running work
// (including fan-out merges) to finish. If ctx expires first, every
// outstanding job is canceled and Shutdown waits (briefly, since the
// solver aborts between phases) for the workers to exit, then returns
// ctx's error.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.cancelBase(fmt.Errorf("sched: shutdown deadline: %w", context.Cause(ctx)))
		<-drained
		return ctx.Err()
	}
}

// worker pops jobs by weighted-fair class order until the scheduler
// drains. Each worker owns a solveWidth-wide executor for the whole of
// its life, so the workers together hold a fixed partition of the
// machine's cores: no per-solve goroutine churn, and at full load exactly
// workers × solveWidth lanes are live instead of the unbounded
// workers × GOMAXPROCS oversubscription of per-call spawning.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	exec := parcut.NewExecutor(s.solveWidth)
	defer exec.Close()
	s.execMu.Lock()
	s.execs = append(s.execs, exec)
	s.execMu.Unlock()
	defer func() {
		s.execMu.Lock()
		for i, e := range s.execs {
			if e == exec {
				s.execs[i] = s.execs[len(s.execs)-1]
				s.execs = s.execs[:len(s.execs)-1]
				break
			}
		}
		s.execMu.Unlock()
	}()
	for {
		s.mu.Lock()
		for s.queuedTotal == 0 && !s.draining {
			s.cond.Wait()
		}
		j := s.pickLocked()
		if j == nil {
			s.mu.Unlock()
			return
		}
		j.state = StateRunning
		s.dispatchSeq++
		j.dispatchSeq = s.dispatchSeq
		j.dispatched = time.Now()
		s.running++
		if s.running > s.peakRun {
			s.peakRun = s.running
		}
		c := j.class.rank()
		j.metricClass = c
		s.mu.Unlock()
		j.queueSp.End()
		wait := j.dispatched.Sub(j.created)
		s.m.dispatchedBy[c].Add(1)
		s.m.queueWaitNanosBy[c].Add(int64(wait))
		s.m.queueWaitHist[c].observe(wait)
		j.recordEvent(Event{Type: "state", State: StateRunning}, false)
		s.run(j, exec)
	}
}

// run executes one job on the worker's executor and publishes its terminal
// state.
func (s *Scheduler) run(j *Job, exec *parcut.Executor) {
	var (
		res parcut.Result
		err error
	)
	if err = j.ctx.Err(); err == nil {
		opt := j.key.Opt.parcut()
		opt.Executor = exec
		opt.Progress = j.prog
		opt.Trace = j.rootSp.Child("run").Attr("engine", j.key.Opt.Engine).AttrInt("width", int64(s.solveWidth))
		start := time.Now()
		res, err = parcut.MinCutContext(j.ctx, j.g, opt)
		opt.Trace.End()
		if err == nil {
			s.m.observeSolve(time.Since(start))
		}
	}
	s.publish(j, res, err)
}

// publish records j's terminal state and wakes its waiters.
func (s *Scheduler) publish(j *Job, res parcut.Result, err error) {
	s.mu.Lock()
	s.publishLocked(j, res, err)
	s.mu.Unlock()
	s.finishPublish(j)
}

// finishPublish completes a publishLocked outside the lock: it settles
// the phase-seconds accounting, appends the terminal "result" event (so
// event streams always end, even on failure or cancellation), wakes the
// waiters, and releases the job's context resources.
func (s *Scheduler) finishPublish(j *Job) {
	s.closePhaseTimer(j)
	ev := Event{Type: "result", State: j.state, Terminal: true, Fraction: fptr(j.Progress().Fraction())}
	if j.state == StateDone {
		v := j.res.Value
		ev.Value = &v
		ev.InCut = j.res.InCut
		ev.Trees = j.res.TreesScanned
		ev.Fraction = fptr(1)
	}
	if j.err != nil {
		ev.Err = j.err.Error()
	}
	j.recordEvent(ev, false)
	if j.rec != nil {
		j.rootSp.Attr("state", string(j.state))
		j.rootSp.End()
		j.rec.Release() // publish unless an HTTP handler still holds it
	}
	if s.slowSolve > 0 {
		if d := j.finished.Sub(j.created); d >= s.slowSolve {
			j.evMu.Lock()
			pack, scan, contract := j.packNanos, j.scanNanos, j.contractNanos
			j.evMu.Unlock()
			var wait time.Duration
			if !j.dispatched.IsZero() {
				wait = j.dispatched.Sub(j.created)
			}
			s.log.Warn("slow solve",
				"job", j.id,
				"graph", j.key.GraphID,
				"class", Classes[j.metricClass],
				"engine", j.key.Opt.Engine,
				"state", j.state,
				"duration", d,
				"queue_wait", wait,
				"packing", time.Duration(pack),
				"scan", time.Duration(scan),
				"contract", time.Duration(contract),
				"trees", j.res.TreesScanned,
				"fanout", j.Fanout())
		}
	}
	close(j.done)
	j.cancel(nil)
}

// publishLocked moves j to its terminal state and does the cache and
// history bookkeeping. The caller must hold s.mu and must call
// finishPublish(j) after unlocking (done is closed outside the lock so
// waiters that race with the publish never contend on it).
func (s *Scheduler) publishLocked(j *Job, res parcut.Result, err error) {
	if j.state == StateRunning && j.group == nil {
		s.running--
	}
	j.res, j.err = res, err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		s.m.completed.Add(1)
		s.m.completedBy[j.class.rank()].Add(1)
		s.m.completedCell(j.class.rank(), j.engineIdx).Add(1)
	case isCancellation(err):
		j.state = StateCanceled
		s.m.canceled.Add(1)
	default:
		j.state = StateFailed
		s.m.failed.Add(1)
	}
	// Only successful results stay cached; a failed or canceled key must
	// be retryable. A doomed job may already have been replaced under its
	// key by a fresh Submit — leave the replacement alone.
	if j.state != StateDone && s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	// The graph is only needed for the solve; drop the reference so the
	// history pins partitions (bounded below) but never whole graphs.
	j.g = nil
	// Charge the retained memory — partition bytes plus the event log
	// (which a long solve grows to maxJobEvents snapshot-carrying
	// entries) — against the history budget; the charge is remembered on
	// the job so eviction releases exactly what was charged, even though
	// the terminal event is appended after this point.
	j.evMu.Lock()
	j.histBytes = int64(len(j.res.InCut)) + int64(len(j.events)+1)*eventBytesEstimate
	j.evMu.Unlock()
	s.order = append(s.order, j.id)
	s.resBytes += j.histBytes
	for len(s.order) > 1 && (len(s.order) > s.history || s.resBytes > s.historyBytes) {
		old := s.order[0]
		s.order = s.order[1:]
		if oj, ok := s.byID[old]; ok {
			s.resBytes -= oj.histBytes
			delete(s.byID, old)
			if s.byKey[oj.key] == oj {
				delete(s.byKey, oj.key)
			}
		}
	}
}

// jobHeap orders queued jobs by graph size, then submission order: small
// graphs jump the queue because their solves are fastest, which minimizes
// mean latency under mixed load. Each job tracks its heap index so
// cancellation can remove it eagerly.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].prio != h[b].prio {
		return h[a].prio < h[b].prio
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIdx = a
	h[b].heapIdx = b
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
