// Package sched runs minimum-cut jobs on a bounded worker pool. It is the
// service layer's concurrency core: requests become Jobs, identical
// requests coalesce into one solver run (singleflight keyed by graph hash,
// seed, and options), finished results are cached, smaller graphs are
// solved first, every job carries a context so callers can cancel or
// time out, and Shutdown drains in-flight work before returning.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	parcut "repro"
)

// ErrDraining is returned by Submit once Shutdown has begun.
var ErrDraining = errors.New("sched: scheduler is draining")

// SolveOptions is the comparable subset of parcut.Options that, together
// with the graph ID, keys the result cache.
type SolveOptions struct {
	Seed           int64
	WantPartition  bool
	Boost          int
	ParallelPhases bool
}

func (o SolveOptions) parcut() parcut.Options {
	return parcut.Options{
		Seed:           o.Seed,
		WantPartition:  o.WantPartition,
		Boost:          o.Boost,
		ParallelPhases: o.ParallelPhases,
	}
}

// Key identifies a solve request for coalescing and caching.
type Key struct {
	GraphID string
	Opt     SolveOptions
}

// State is a job's lifecycle stage.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Job is one scheduled (possibly shared) solver run. All mutable fields
// are guarded by the owning scheduler's mutex; Done is closed exactly once
// when the job reaches a terminal state.
type Job struct {
	id  string
	key Key
	g   *parcut.Graph

	prio int    // graph edge count; smaller solves first
	seq  uint64 // FIFO tiebreak

	ctx    context.Context
	cancel context.CancelCauseFunc

	waiters  int
	detached bool // submitted without a waiter; never auto-canceled

	state    State
	res      parcut.Result
	err      error
	created  time.Time
	finished time.Time

	done chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is a snapshot of a job visible to API clients.
type Status struct {
	ID           string
	GraphID      string
	Opt          SolveOptions
	State        State
	Value        int64
	InCut        []bool
	TreesScanned int
	Err          string
	Created      time.Time
	Finished     time.Time
}

// Config sizes a Scheduler.
type Config struct {
	// Workers is the solver pool size; 0 means 1.
	Workers int
	// History bounds how many finished jobs (and their cached results)
	// are retained; 0 means 1024.
	History int
	// HistoryBytes additionally bounds the partition bytes (Result.InCut)
	// those retained jobs may pin, evicting oldest-first past the budget —
	// a count bound alone would let 1024 partitions of huge graphs dwarf
	// the registry budget. 0 means 256 MiB.
	HistoryBytes int64
}

// Scheduler owns the worker pool, the priority queue, and the result
// cache. Create with New, stop with Shutdown.
type Scheduler struct {
	workers      int
	history      int
	historyBytes int64

	baseCtx    context.Context
	cancelBase context.CancelCauseFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobHeap
	byID     map[string]*Job
	byKey    map[Key]*Job // in-flight or successfully finished jobs
	order    []string     // finished job IDs, oldest first (history ring)
	resBytes int64        // partition bytes pinned by the history
	nextSeq  uint64
	draining bool

	wg sync.WaitGroup
	m  counters
}

// New starts a scheduler with cfg.Workers solver goroutines.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.History < 1 {
		cfg.History = 1024
	}
	if cfg.HistoryBytes < 1 {
		cfg.HistoryBytes = 256 << 20
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Scheduler{
		workers:      cfg.Workers,
		history:      cfg.History,
		historyBytes: cfg.HistoryBytes,
		baseCtx:      ctx,
		cancelBase:   cancel,
		byID:         make(map[string]*Job),
		byKey:        make(map[Key]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit schedules a solve of g (registered under key.GraphID) or joins an
// equivalent job that is already queued, running, or finished. It reports
// whether the request was a cache hit (no new solver run). Unless detached,
// the caller must follow up with exactly one Wait call on the returned job;
// detached submissions run even if nobody waits.
func (s *Scheduler) Submit(key Key, g *parcut.Graph, detached bool) (*Job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.submitted.Add(1)
	if s.draining {
		return nil, false, ErrDraining
	}
	// A still-unfinished job whose context is already canceled (abandoned
	// waiters, Cancel) is doomed; joining it would hand this fresh request
	// a spurious cancellation error, so start over instead (the doomed job
	// skips its byKey cleanup once it sees it was replaced). Finished jobs
	// always have a canceled context — run() releases it — so the check
	// must not exclude them from cache hits.
	if prev, ok := s.byKey[key]; ok {
		doomed := prev.ctx.Err() != nil && (prev.state == StateQueued || prev.state == StateRunning)
		if !doomed {
			s.m.cacheHits.Add(1)
			if prev.state == StateQueued || prev.state == StateRunning {
				s.m.coalesced.Add(1)
			}
			if !detached {
				prev.waiters++
			}
			if detached {
				prev.detached = true
			}
			return prev, true, nil
		}
	}
	s.nextSeq++
	jctx, jcancel := context.WithCancelCause(s.baseCtx)
	j := &Job{
		id:       fmt.Sprintf("job-%d", s.nextSeq),
		key:      key,
		g:        g,
		prio:     g.M(),
		seq:      s.nextSeq,
		ctx:      jctx,
		cancel:   jcancel,
		detached: detached,
		state:    StateQueued,
		created:  time.Now(),
		done:     make(chan struct{}),
	}
	if !detached {
		j.waiters = 1
	}
	s.byID[j.id] = j
	s.byKey[key] = j
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return j, false, nil
}

// Wait blocks until j finishes or ctx is done, whichever is first. When
// the last waiter of a still-unfinished, non-detached job gives up, the
// job's context is canceled so the solver stops promptly instead of
// running to completion. The returned error wraps ctx's cause on timeout
// and the solver's error (including cancellation) otherwise.
func (s *Scheduler) Wait(ctx context.Context, j *Job) (parcut.Result, error) {
	select {
	case <-j.done:
		s.dropWaiter(j)
		return j.res, j.err
	case <-ctx.Done():
		s.dropWaiter(j)
		return parcut.Result{}, fmt.Errorf("sched: wait: %w", context.Cause(ctx))
	}
}

// dropWaiter unregisters one waiter and cancels the job if it was the
// last. The cancel happens under the scheduler lock: deciding outside it
// would let a concurrent Submit join the job in the window between the
// abandon check and the cancel and then see its fresh request canceled.
// (context cancel functions only close done channels and propagate to
// children — they never call back into the scheduler, so holding the
// lock is safe.)
func (s *Scheduler) dropWaiter(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.waiters > 0 {
		j.waiters--
	}
	if j.waiters == 0 && !j.detached &&
		(j.state == StateQueued || j.state == StateRunning) {
		j.cancel(errors.New("sched: all waiters gone"))
	}
}

// Cancel aborts the job with the given ID. It reports whether the job
// exists and had not already finished; the job still transitions through
// the normal terminal bookkeeping on its worker.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.byID[id]
	live := ok && (j.state == StateQueued || j.state == StateRunning)
	s.mu.Unlock()
	if !live {
		return false
	}
	j.cancel(errors.New("sched: canceled by request"))
	return true
}

// Job returns a snapshot of the job with the given ID.
func (s *Scheduler) Job(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return Status{}, false
	}
	return s.statusLocked(j), true
}

func (s *Scheduler) statusLocked(j *Job) Status {
	st := Status{
		ID:       j.id,
		GraphID:  j.key.GraphID,
		Opt:      j.key.Opt,
		State:    j.state,
		Created:  j.created,
		Finished: j.finished,
	}
	if j.state == StateDone {
		st.Value = j.res.Value
		st.InCut = j.res.InCut
		st.TreesScanned = j.res.TreesScanned
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Metrics returns a snapshot of the scheduler's counters and gauges.
func (s *Scheduler) Metrics() Metrics {
	m := s.m.snapshot()
	s.mu.Lock()
	m.QueueDepth = s.queue.Len()
	running := 0
	for _, j := range s.byID {
		if j.state == StateRunning {
			running++
		}
	}
	s.mu.Unlock()
	m.Running = running
	m.Workers = s.workers
	return m
}

// Shutdown stops accepting new jobs and waits for queued and running work
// to finish. If ctx expires first, every outstanding job is canceled and
// Shutdown waits (briefly, since the solver aborts between phases) for
// the workers to exit, then returns ctx's error.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.cancelBase(fmt.Errorf("sched: shutdown deadline: %w", context.Cause(ctx)))
		<-drained
		return ctx.Err()
	}
}

// worker pops jobs in priority order until the scheduler drains.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		j.state = StateRunning
		s.mu.Unlock()
		s.run(j)
	}
}

// run executes one job and publishes its terminal state.
func (s *Scheduler) run(j *Job) {
	var (
		res parcut.Result
		err error
	)
	if err = j.ctx.Err(); err == nil {
		start := time.Now()
		res, err = parcut.MinCutContext(j.ctx, j.g, j.key.Opt.parcut())
		if err == nil {
			s.m.observeSolve(time.Since(start))
		}
	}

	s.mu.Lock()
	j.res, j.err = res, err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		s.m.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		s.m.canceled.Add(1)
	default:
		j.state = StateFailed
		s.m.failed.Add(1)
	}
	// Only successful results stay cached; a failed or canceled key must
	// be retryable. A doomed job may already have been replaced under its
	// key by a fresh Submit — leave the replacement alone.
	if j.state != StateDone && s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	// The graph is only needed for the solve; drop the reference so the
	// history pins partitions (bounded below) but never whole graphs.
	j.g = nil
	s.order = append(s.order, j.id)
	s.resBytes += int64(len(j.res.InCut))
	for len(s.order) > 1 && (len(s.order) > s.history || s.resBytes > s.historyBytes) {
		old := s.order[0]
		s.order = s.order[1:]
		if oj, ok := s.byID[old]; ok {
			s.resBytes -= int64(len(oj.res.InCut))
			delete(s.byID, old)
			if s.byKey[oj.key] == oj {
				delete(s.byKey, oj.key)
			}
		}
	}
	s.mu.Unlock()
	close(j.done)
	j.cancel(nil)
}

// jobHeap orders queued jobs by graph size, then submission order: small
// graphs jump the queue because their solves are fastest, which minimizes
// mean latency under mixed load.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].prio != h[b].prio {
		return h[a].prio < h[b].prio
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
