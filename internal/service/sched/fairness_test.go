package sched

import (
	"context"
	"errors"
	"testing"

	parcut "repro"
)

// bgGraph returns a per-seed distinct graph heavy enough (a few ms per
// solve) that a stream of them keeps the queue deep on a 4-worker pool.
func bgGraph(seed int64) *parcut.Graph { return parcut.RandomGraph(120, 480, 50, seed) }

// totalDispatched sums the per-class dispatch counters.
func totalDispatched(m Metrics) int64 {
	var n int64
	for _, c := range m.Classes {
		n += c.Dispatched
	}
	return n
}

func classMetrics(m Metrics, class Class) ClassMetrics { return m.Classes[classRank(class)] }

// TestBackgroundSaturationDoesNotStarveInteractive is the fairness
// acceptance test: with a 4-worker scheduler saturated by background
// jobs, an interactive job submitted mid-flood must be dispatched within
// a bounded number of dispatches — the DRR bound is the other classes'
// remaining quanta (weight sum 4+1 with the default weights), far below
// the ~40 a FIFO would cost.
func TestBackgroundSaturationDoesNotStarveInteractive(t *testing.T) {
	s := New(Config{Workers: 4})
	defer shutdown(t, s)
	for i := 0; i < 40; i++ {
		if _, _, err := s.Submit(Key{GraphID: "bg", Opt: SolveOptions{Seed: int64(i)}},
			bgGraph(int64(i)), SubmitOpts{Class: ClassBackground, Detached: true}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "background flood running", func() bool { return s.Metrics().Running >= 4 })

	before := totalDispatched(s.Metrics())
	j, _, err := s.Submit(Key{GraphID: "vip", Opt: SolveOptions{Seed: 1}}, cycle(t, 12), SubmitOpts{Class: ClassInteractive})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Job(j.ID())
	if !ok || st.DispatchSeq == 0 {
		t.Fatalf("interactive job has no dispatch record: %+v", st)
	}
	// Dispatches that jumped ahead of the interactive job after it was
	// submitted: bounded by the batch+background quanta (4+1), plus
	// generous slack for the dispatches that raced the Submit itself.
	ahead := int64(st.DispatchSeq) - before - 1
	if ahead > 10 {
		t.Fatalf("%d background dispatches jumped ahead of the interactive job, want <= 10 (starvation)", ahead)
	}
	if d := s.Metrics().QueueDepth; d == 0 {
		t.Fatal("background queue drained before the interactive job finished; the test never exercised contention")
	}
}

// TestWeightsShiftDispatchShares pins the DRR interleaving: with a single
// worker and both queues preloaded behind a blocker, the dispatch order
// is deterministic, and the batch:background share among the first
// dispatches must track the configured weights.
func TestWeightsShiftDispatchShares(t *testing.T) {
	share := func(weights map[Class]int) (batch, background int) {
		t.Helper()
		s := New(Config{Workers: 1, MaxFanout: 1, ClassWeights: weights})
		defer shutdown(t, s)
		unblock := block(t, s)
		defer unblock()
		var batchJobs, bgJobs []*Job
		for i := 0; i < 30; i++ {
			jb, _, err := s.Submit(Key{GraphID: "b", Opt: SolveOptions{Seed: int64(i)}},
				cycle(t, 8), SubmitOpts{Class: ClassBatch, Detached: true})
			if err != nil {
				t.Fatal(err)
			}
			jg, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: int64(i)}},
				cycle(t, 8), SubmitOpts{Class: ClassBackground, Detached: true})
			if err != nil {
				t.Fatal(err)
			}
			batchJobs, bgJobs = append(batchJobs, jb), append(bgJobs, jg)
		}
		unblock()
		for _, j := range append(append([]*Job{}, batchJobs...), bgJobs...) {
			<-j.Done()
		}
		// Count each class among the first 20 dispatches after the blocker.
		const window = 20
		count := func(jobs []*Job) int {
			n := 0
			for _, j := range jobs {
				st, _ := s.Job(j.ID())
				if st.DispatchSeq >= 2 && st.DispatchSeq < 2+window {
					n++
				}
			}
			return n
		}
		return count(batchJobs), count(bgJobs)
	}

	// Default-ish 4:1 → 16 batch vs 4 background per 20 (± cursor phase).
	b, g := share(map[Class]int{ClassBatch: 4, ClassBackground: 1})
	if b < 13 || g > 7 {
		t.Fatalf("weights 4:1 dispatched %d batch / %d background in the window, want ~16/4", b, g)
	}
	// Equal weights → even split.
	b, g = share(map[Class]int{ClassBatch: 1, ClassBackground: 1})
	if b < 7 || b > 13 || g < 7 || g > 13 {
		t.Fatalf("weights 1:1 dispatched %d batch / %d background in the window, want ~10/10", b, g)
	}
}

// TestClassQueueCapRejects: the per-class admission cap turns the
// submitting class away with ErrClassQueueFull while other classes (and
// joins of existing jobs) still get in.
func TestClassQueueCapRejects(t *testing.T) {
	s := New(Config{Workers: 1, MaxFanout: 1, ClassQueueCaps: map[Class]int{ClassBackground: 2}})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	for i := 0; i < 2; i++ {
		if _, _, err := s.Submit(Key{GraphID: "bg", Opt: SolveOptions{Seed: int64(i)}},
			cycle(t, 8), SubmitOpts{Class: ClassBackground, Detached: true}); err != nil {
			t.Fatalf("submit %d under cap: %v", i, err)
		}
	}
	_, _, err := s.Submit(Key{GraphID: "bg", Opt: SolveOptions{Seed: 9}}, cycle(t, 8),
		SubmitOpts{Class: ClassBackground, Detached: true})
	if !errors.Is(err, ErrClassQueueFull) {
		t.Fatalf("over-cap submit = %v, want ErrClassQueueFull", err)
	}
	// Joining an existing background job is not new queue load.
	if _, hit, err := s.Submit(Key{GraphID: "bg", Opt: SolveOptions{Seed: 0}}, cycle(t, 8),
		SubmitOpts{Class: ClassBackground, Detached: true}); err != nil || !hit {
		t.Fatalf("join under cap: hit=%v err=%v", hit, err)
	}
	// Another class is unaffected.
	if _, _, err := s.Submit(Key{GraphID: "i", Opt: SolveOptions{Seed: 1}}, cycle(t, 8),
		SubmitOpts{Detached: true}); err != nil {
		t.Fatalf("interactive submit with background capped: %v", err)
	}
	m := s.Metrics()
	if m.RejectedClassCap != 1 || m.Rejected != 1 {
		t.Fatalf("rejections = %+v, want 1 class_cap", m)
	}
}

// TestGlobalQueueCapRejects: the cross-class bound rejects with
// ErrQueueFull once the total queue is full.
func TestGlobalQueueCapRejects(t *testing.T) {
	s := New(Config{Workers: 1, MaxFanout: 1, MaxQueue: 2})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	for i := 0; i < 2; i++ {
		if _, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: int64(i)}},
			cycle(t, 8), SubmitOpts{Class: ClassBatch, Detached: true}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 9}}, cycle(t, 8), SubmitOpts{Detached: true})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound submit = %v, want ErrQueueFull", err)
	}
	if m := s.Metrics(); m.RejectedQueueFull != 1 {
		t.Fatalf("RejectedQueueFull = %d, want 1", m.RejectedQueueFull)
	}
}

// TestSubJobsInheritParentClass is the fan-out priority bugfix: a
// background boost's sub-jobs queue as background, so a later interactive
// job overtakes all of them.
func TestSubJobsInheritParentClass(t *testing.T) {
	s := New(Config{Workers: 1, MaxFanout: 4})
	defer shutdown(t, s)
	// A single-run blocker (Boost 1 never fans out) so the only queued
	// jobs below are the ones this test submits.
	blocker, _, err := s.Submit(Key{GraphID: "blocker", Opt: SolveOptions{Seed: 7}}, slow(), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	bctx, bcancel := context.WithCancel(context.Background())
	go s.Wait(bctx, blocker)
	defer bcancel()
	waitUntil(t, "blocker running", func() bool { return s.Metrics().Running >= 1 })
	unblock := bcancel

	parent, _, err := s.Submit(Key{GraphID: "boost", Opt: SolveOptions{Seed: 3, Boost: 4}},
		cycle(t, 16), SubmitOpts{Class: ClassBackground, Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := classMetrics(s.Metrics(), ClassBackground).QueueDepth; d != 4 {
		t.Fatalf("background queue depth = %d after background fanout, want 4 (children must inherit the class)", d)
	}
	vip, _, err := s.Submit(Key{GraphID: "vip", Opt: SolveOptions{Seed: 1}}, cycle(t, 64), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	unblock()
	if _, err := s.Wait(context.Background(), vip); err != nil {
		t.Fatal(err)
	}
	<-parent.Done()
	st, _ := s.Job(vip.ID())
	// Blocker was dispatch 1; the interactive job must beat every one of
	// the four earlier-submitted background children (its graph is even
	// bigger, so smallest-graph-first cannot explain the win).
	if st.DispatchSeq != 2 {
		t.Fatalf("interactive DispatchSeq = %d, want 2 (background children jumped ahead)", st.DispatchSeq)
	}
	pst, _ := s.Job(parent.ID())
	if pst.Class != ClassBackground || pst.State != StateDone {
		t.Fatalf("parent status = %+v, want done background", pst)
	}
	// The fan-out parent's own event stream must show life between
	// "running" and the terminal result: a phase event at decomposition
	// and a progress milestone per finished chunk.
	pevs, _, ended := parent.Events(0)
	if !ended {
		t.Fatal("fan-out parent event log not ended")
	}
	var phases, progresses int
	for _, ev := range pevs {
		switch ev.Type {
		case "phase":
			phases++
		case "progress":
			progresses++
		}
	}
	if phases == 0 || progresses < 4 {
		t.Fatalf("parent events: %d phase, %d progress (want >=1 and >=4 for 4 chunks): %+v", phases, progresses, pevs)
	}
}

// TestCoalesceEscalatesQueuedJob: an interactive request joining a queued
// background job pulls the job into the interactive queue, so the shared
// solve is dispatched at the stronger waiter's priority.
func TestCoalesceEscalatesQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, MaxFanout: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	key := Key{GraphID: "shared", Opt: SolveOptions{Seed: 5}}
	a, _, err := s.Submit(key, cycle(t, 32), SubmitOpts{Class: ClassBackground, Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := s.Submit(Key{GraphID: "other", Opt: SolveOptions{Seed: 6}},
		cycle(t, 8), SubmitOpts{Class: ClassBackground, Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	joined, hit, err := s.Submit(key, cycle(t, 32), SubmitOpts{Class: ClassInteractive})
	if err != nil || !hit || joined != a {
		t.Fatalf("interactive join: hit=%v same=%v err=%v", hit, joined == a, err)
	}
	unblock()
	if _, err := s.Wait(context.Background(), joined); err != nil {
		t.Fatal(err)
	}
	<-other.Done()
	sa, _ := s.Job(a.ID())
	so, _ := s.Job(other.ID())
	if sa.Class != ClassInteractive {
		t.Fatalf("joined job class = %s, want interactive after escalation", sa.Class)
	}
	// Without escalation, smallest-graph-first inside background would
	// dispatch "other" (8 edges) before "shared" (32 edges).
	if sa.DispatchSeq > so.DispatchSeq {
		t.Fatalf("escalated job dispatched at %d, after the background job at %d", sa.DispatchSeq, so.DispatchSeq)
	}
	if m := s.Metrics(); m.Escalated != 1 {
		t.Fatalf("Escalated = %d, want 1", m.Escalated)
	}
}

// TestJobEventLog: a job's event log tells the whole story in order —
// queued, running, solver phases, terminal result — and the terminal
// event carries the value.
func TestJobEventLog(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	g := parcut.RandomGraph(60, 200, 20, 9)
	j, _, err := s.Submit(Key{GraphID: "ev", Opt: SolveOptions{Seed: 2}}, g, SubmitOpts{Class: ClassBatch})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	evs, _, ended := j.Events(0)
	if !ended {
		t.Fatal("finished job's event log does not report ended")
	}
	if len(evs) < 4 {
		t.Fatalf("only %d events recorded: %+v", len(evs), evs)
	}
	// A resume cursor past the terminal event must report ended with no
	// events — the signal that keeps event streams from hanging forever.
	if tail, _, ended := j.Events(len(evs)); len(tail) != 0 || !ended {
		t.Fatalf("Events past the end = %d events, ended=%v; want 0 and true", len(tail), ended)
	}
	if evs[0].Type != "state" || evs[0].State != StateQueued {
		t.Fatalf("first event = %+v, want queued", evs[0])
	}
	phases := map[string]bool{}
	for _, ev := range evs {
		if ev.Type == "phase" {
			phases[ev.Phase] = true
		}
	}
	if !phases["packing"] || !phases["scan"] {
		t.Fatalf("phase events %v, want both packing and scan", phases)
	}
	last := evs[len(evs)-1]
	if !last.Terminal || last.Type != "result" || last.Value == nil || *last.Value != res.Value {
		t.Fatalf("terminal event = %+v, want result with value %d", last, res.Value)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// Phase wall time flowed into the metrics.
	m := s.Metrics()
	var packing, scan PhaseSeconds
	for _, ph := range m.PhaseSeconds {
		switch ph.Phase {
		case "packing":
			packing = ph
		case "scan":
			scan = ph
		}
	}
	if packing.Count == 0 || scan.Count == 0 {
		t.Fatalf("phase seconds not recorded: %+v", m.PhaseSeconds)
	}
}
