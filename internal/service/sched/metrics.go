package sched

import (
	"sync/atomic"
	"time"

	parcut "repro"
	"repro/internal/engine"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, chosen to straddle the microsecond-to-seconds range the
// solver spans from toy graphs to millions of edges.
var latencyBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10, 60}

// phaseNames are the solver phases the class-labeled duration histograms
// track, indexed like counters.solveHist's second dimension: the paper
// solver's packing and scan, plus the baseline engines' contract.
var phaseNames = [...]string{"packing", "scan", "contract"}

// engineNames is the metric label space for the engine dimension, fixed
// at package init from the registry (registration order). Engines
// registered later by external code run fine but fold into index 0 in
// the engine-labeled series.
var engineNames = engine.Names()

// engineRank maps an engine name to its index in engineNames.
func engineRank(name string) int {
	for i, n := range engineNames {
		if n == name {
			return i
		}
	}
	return 0
}

// hist is a cumulative (Prometheus le-semantics) histogram over
// latencyBuckets: atomic buckets plus count and sum, so the solver-side
// hooks record observations without any lock.
type hist struct {
	count    atomic.Int64
	sumNanos atomic.Int64
	buckets  [len(latencyBuckets)]atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.buckets[i].Add(1)
		}
	}
}

// Histogram is a point-in-time histogram snapshot. Buckets are cumulative
// (le semantics); the implicit +Inf bucket is Count.
type Histogram struct {
	Count    int64
	SumNanos int64
	Buckets  []LatencyBucket
}

func (h *hist) snapshot() Histogram {
	out := Histogram{Count: h.count.Load(), SumNanos: h.sumNanos.Load()}
	for i, ub := range latencyBuckets {
		out.Buckets = append(out.Buckets, LatencyBucket{UpperBound: ub, Count: h.buckets[i].Load()})
	}
	return out
}

// counters aggregates the scheduler's monotonic metrics. All fields are
// atomics so the hot path never takes the scheduler lock to record them.
type counters struct {
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	cacheHits atomic.Int64
	coalesced atomic.Int64

	// Rejections by reason; their sum is `rejected`.
	rejectedDraining  atomic.Int64
	rejectedQueueFull atomic.Int64
	rejectedClassCap  atomic.Int64

	// Per-class counters, indexed by classRank.
	submittedBy      [numClasses]atomic.Int64
	dispatchedBy     [numClasses]atomic.Int64
	completedBy      [numClasses]atomic.Int64
	queueWaitNanosBy [numClasses]atomic.Int64

	// escalated counts queued jobs requeued onto a stronger class after a
	// higher-class request coalesced onto them.
	escalated atomic.Int64

	fanouts       atomic.Int64
	subJobs       atomic.Int64
	subJobsShared atomic.Int64

	solveCount atomic.Int64
	solveNanos atomic.Int64
	buckets    [len(latencyBuckets)]atomic.Int64 // cumulative, le semantics

	// Wall time per solver phase, fed by the jobs' progress hooks (tails
	// of canceled runs included — operators care where time went, not
	// only where it succeeded).
	phasePackingNanos  atomic.Int64
	phasePackingCount  atomic.Int64
	phaseScanNanos     atomic.Int64
	phaseScanCount     atomic.Int64
	phaseContractNanos atomic.Int64
	phaseContractCount atomic.Int64

	// Real histograms layered on the sums above: per-phase solve
	// durations labeled by dispatch class, and queue wait per class.
	solveHist     [numClasses][len(phaseNames)]hist
	queueWaitHist [numClasses]hist

	// Engine-labeled series, allocated by initEngines (engineNames is not
	// a compile-time constant): completions per {class, engine} and solve
	// durations per {class, phase, engine}. The class- and phase-only
	// series above stay as sums over engines, following the package's
	// "legacy series kept" labeling convention.
	completedByClassEngine []atomic.Int64 // [class*len(engineNames)+engine]
	solveHistEngine        []hist         // [(class*len(phaseNames)+phase)*len(engineNames)+engine]
}

// initEngines sizes the engine-labeled series; New calls it once. A
// counters value that skipped it (zero-value Schedulers in tests) drops
// engine-labeled observations into the discard cells below instead of
// panicking.
func (c *counters) initEngines() {
	ne := len(engineNames)
	c.completedByClassEngine = make([]atomic.Int64, numClasses*ne)
	c.solveHistEngine = make([]hist, numClasses*len(phaseNames)*ne)
}

var (
	discardCount atomic.Int64
	discardHist  hist
)

// completedCell addresses the {class, engine} completion counter.
func (c *counters) completedCell(class, eng int) *atomic.Int64 {
	if len(c.completedByClassEngine) == 0 {
		return &discardCount
	}
	return &c.completedByClassEngine[class*len(engineNames)+eng]
}

// solveHistCell addresses the {class, phase, engine} duration histogram.
func (c *counters) solveHistCell(class, phase, eng int) *hist {
	if len(c.solveHistEngine) == 0 {
		return &discardHist
	}
	return &c.solveHistEngine[(class*len(phaseNames)+phase)*len(engineNames)+eng]
}

func (c *counters) observeSolve(d time.Duration) {
	c.solveCount.Add(1)
	c.solveNanos.Add(int64(d))
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			c.buckets[i].Add(1)
		}
	}
}

// observePhase attributes d of solver wall time to the named phase: the
// legacy unlabeled sums, the class-labeled histogram, and the
// {class, phase, engine} histogram.
func (c *counters) observePhase(class, eng int, phase string, d time.Duration) {
	var idx int
	switch phase {
	case "packing":
		c.phasePackingNanos.Add(int64(d))
		c.phasePackingCount.Add(1)
		idx = 0
	case "scan":
		c.phaseScanNanos.Add(int64(d))
		c.phaseScanCount.Add(1)
		idx = 1
	case "contract":
		c.phaseContractNanos.Add(int64(d))
		c.phaseContractCount.Add(1)
		idx = 2
	default:
		return
	}
	c.solveHist[class][idx].observe(d)
	c.solveHistCell(class, idx, eng).observe(d)
}

// LatencyBucket is one cumulative histogram bucket.
type LatencyBucket struct {
	UpperBound float64 // seconds; the final +Inf bucket is SolveCount
	Count      int64
}

// ClassMetrics is one QoS class's share of the scheduler's counters.
type ClassMetrics struct {
	Class Class
	// Weight is the class's DRR quantum; QueueCap its admission bound
	// (0 = unbounded).
	Weight, QueueCap int
	// QueueDepth is the class's current queued jobs; Submitted,
	// Dispatched, and Completed its monotonic lifecycle counters, and
	// QueueWaitNanos the total queued-to-dispatched wall time (so
	// QueueWaitNanos/Dispatched is the class's mean queue wait).
	QueueDepth                       int
	Submitted, Dispatched, Completed int64
	QueueWaitNanos                   int64
	// QueueWait is the class's queue-wait histogram (same data as
	// QueueWaitNanos/Dispatched, with distribution).
	QueueWait Histogram
	// PhaseDurations holds the class's per-phase solve-duration
	// histograms, indexed like phaseNames (packing, scan, contract).
	PhaseDurations []PhaseHistogram
	// CompletedByEngine breaks Completed down by solve engine, in
	// Metrics.Engines order.
	CompletedByEngine []EngineCount
	// PhaseDurationsByEngine refines PhaseDurations by engine: phases in
	// phaseNames order, engines in Metrics.Engines order within each
	// phase.
	PhaseDurationsByEngine []EnginePhaseHistogram
}

// PhaseHistogram is one phase's duration histogram for one class.
type PhaseHistogram struct {
	Phase string
	Hist  Histogram
}

// EngineCount is one engine's share of a per-class counter.
type EngineCount struct {
	Engine string
	Count  int64
}

// EnginePhaseHistogram is one {phase, engine} duration histogram for one
// class.
type EnginePhaseHistogram struct {
	Phase  string
	Engine string
	Hist   Histogram
}

// PhaseSeconds is wall time attributed to one solver phase.
type PhaseSeconds struct {
	Phase string
	Nanos int64
	Count int64 // completed phase spans
}

// Metrics is a point-in-time snapshot of the scheduler's counters and
// gauges.
type Metrics struct {
	// Submitted counts accepted Submit calls; Rejected the submissions
	// turned away (RejectedDraining + RejectedQueueFull +
	// RejectedClassCap partition it by reason). Completed/Failed/Canceled
	// partition the jobs that reached a terminal state.
	Submitted, Rejected, Completed, Failed, Canceled      int64
	RejectedDraining, RejectedQueueFull, RejectedClassCap int64
	// Classes breaks the load down by QoS class, indexed by classRank
	// (i.e. the order of the package-level Classes list). Escalated
	// counts queued jobs promoted to a stronger class by coalescing.
	Classes   [numClasses]ClassMetrics
	Escalated int64
	// Engines lists the engine label values of the per-engine series
	// (registration order).
	Engines []string
	// PhaseSeconds attributes solver wall time to pipeline phases.
	PhaseSeconds []PhaseSeconds
	// CacheHits counts Submit calls served without a new solver run —
	// either a finished cached result or joining an in-flight job.
	// Coalesced is the in-flight-join subset.
	CacheHits, Coalesced int64
	// Fanouts counts boosted solves decomposed into sub-jobs; SubJobs the
	// sub-jobs requested by those fan-outs; SubJobsShared the subset
	// served by an existing or cached run instead of a fresh one.
	Fanouts, SubJobs, SubJobsShared int64
	// SolveCount and SolveNanos accumulate completed solver runs and
	// their total wall time; LatencyBuckets is the cumulative histogram.
	SolveCount, SolveNanos int64
	LatencyBuckets         []LatencyBucket
	// QueueDepth and Running are current gauges (fan-out parents, which
	// never occupy a worker, count in neither); PeakRunning is Running's
	// high-water mark; Workers is the pool size; PoolWidth is the
	// executor width each worker owns (Workers × PoolWidth caps the
	// solver's total parallelism).
	QueueDepth, Running, PeakRunning, Workers, PoolWidth int
	// Pool aggregates the work-stealing and arena counters across every
	// worker's executor: steal traffic, fork placement (local deque /
	// another lane's deque / overflow spill), inline degradations (always
	// 0 while the executors are open), and solve-arena hit rates.
	Pool parcut.PoolStats
}

func (c *counters) snapshot() Metrics {
	m := Metrics{
		Submitted:         c.submitted.Load(),
		Rejected:          c.rejected.Load(),
		Completed:         c.completed.Load(),
		Failed:            c.failed.Load(),
		Canceled:          c.canceled.Load(),
		RejectedDraining:  c.rejectedDraining.Load(),
		RejectedQueueFull: c.rejectedQueueFull.Load(),
		RejectedClassCap:  c.rejectedClassCap.Load(),
		Escalated:         c.escalated.Load(),
		CacheHits:         c.cacheHits.Load(),
		Coalesced:         c.coalesced.Load(),
		Fanouts:           c.fanouts.Load(),
		SubJobs:           c.subJobs.Load(),
		SubJobsShared:     c.subJobsShared.Load(),
		SolveCount:        c.solveCount.Load(),
		SolveNanos:        c.solveNanos.Load(),
	}
	for i := range Classes {
		m.Classes[i] = ClassMetrics{
			Class:          Classes[i],
			Submitted:      c.submittedBy[i].Load(),
			Dispatched:     c.dispatchedBy[i].Load(),
			Completed:      c.completedBy[i].Load(),
			QueueWaitNanos: c.queueWaitNanosBy[i].Load(),
			QueueWait:      c.queueWaitHist[i].snapshot(),
		}
		for p, name := range phaseNames {
			m.Classes[i].PhaseDurations = append(m.Classes[i].PhaseDurations,
				PhaseHistogram{Phase: name, Hist: c.solveHist[i][p].snapshot()})
		}
		for e, en := range engineNames {
			m.Classes[i].CompletedByEngine = append(m.Classes[i].CompletedByEngine,
				EngineCount{Engine: en, Count: c.completedCell(i, e).Load()})
		}
		for p, name := range phaseNames {
			for e, en := range engineNames {
				m.Classes[i].PhaseDurationsByEngine = append(m.Classes[i].PhaseDurationsByEngine,
					EnginePhaseHistogram{Phase: name, Engine: en, Hist: c.solveHistCell(i, p, e).snapshot()})
			}
		}
	}
	m.Engines = append([]string(nil), engineNames...)
	m.PhaseSeconds = []PhaseSeconds{
		{Phase: "packing", Nanos: c.phasePackingNanos.Load(), Count: c.phasePackingCount.Load()},
		{Phase: "scan", Nanos: c.phaseScanNanos.Load(), Count: c.phaseScanCount.Load()},
		{Phase: "contract", Nanos: c.phaseContractNanos.Load(), Count: c.phaseContractCount.Load()},
	}
	for i, ub := range latencyBuckets {
		m.LatencyBuckets = append(m.LatencyBuckets, LatencyBucket{UpperBound: ub, Count: c.buckets[i].Load()})
	}
	return m
}
