package sched

import (
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, chosen to straddle the microsecond-to-seconds range the
// solver spans from toy graphs to millions of edges.
var latencyBuckets = [...]float64{0.001, 0.01, 0.1, 1, 10, 60}

// counters aggregates the scheduler's monotonic metrics. All fields are
// atomics so the hot path never takes the scheduler lock to record them.
type counters struct {
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	cacheHits atomic.Int64
	coalesced atomic.Int64

	fanouts       atomic.Int64
	subJobs       atomic.Int64
	subJobsShared atomic.Int64

	solveCount atomic.Int64
	solveNanos atomic.Int64
	buckets    [len(latencyBuckets)]atomic.Int64 // cumulative, le semantics
}

func (c *counters) observeSolve(d time.Duration) {
	c.solveCount.Add(1)
	c.solveNanos.Add(int64(d))
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			c.buckets[i].Add(1)
		}
	}
}

// LatencyBucket is one cumulative histogram bucket.
type LatencyBucket struct {
	UpperBound float64 // seconds; the final +Inf bucket is SolveCount
	Count      int64
}

// Metrics is a point-in-time snapshot of the scheduler's counters and
// gauges.
type Metrics struct {
	// Submitted counts accepted Submit calls; Rejected the submissions
	// turned away while draining. Completed/Failed/Canceled partition the
	// jobs that reached a terminal state.
	Submitted, Rejected, Completed, Failed, Canceled int64
	// CacheHits counts Submit calls served without a new solver run —
	// either a finished cached result or joining an in-flight job.
	// Coalesced is the in-flight-join subset.
	CacheHits, Coalesced int64
	// Fanouts counts boosted solves decomposed into sub-jobs; SubJobs the
	// sub-jobs requested by those fan-outs; SubJobsShared the subset
	// served by an existing or cached run instead of a fresh one.
	Fanouts, SubJobs, SubJobsShared int64
	// SolveCount and SolveNanos accumulate completed solver runs and
	// their total wall time; LatencyBuckets is the cumulative histogram.
	SolveCount, SolveNanos int64
	LatencyBuckets         []LatencyBucket
	// QueueDepth and Running are current gauges (fan-out parents, which
	// never occupy a worker, count in neither); PeakRunning is Running's
	// high-water mark; Workers is the pool size; PoolWidth is the
	// executor width each worker owns (Workers × PoolWidth caps the
	// solver's total parallelism).
	QueueDepth, Running, PeakRunning, Workers, PoolWidth int
}

func (c *counters) snapshot() Metrics {
	m := Metrics{
		Submitted:     c.submitted.Load(),
		Rejected:      c.rejected.Load(),
		Completed:     c.completed.Load(),
		Failed:        c.failed.Load(),
		Canceled:      c.canceled.Load(),
		CacheHits:     c.cacheHits.Load(),
		Coalesced:     c.coalesced.Load(),
		Fanouts:       c.fanouts.Load(),
		SubJobs:       c.subJobs.Load(),
		SubJobsShared: c.subJobsShared.Load(),
		SolveCount:    c.solveCount.Load(),
		SolveNanos:    c.solveNanos.Load(),
	}
	for i, ub := range latencyBuckets {
		m.LatencyBuckets = append(m.LatencyBuckets, LatencyBucket{UpperBound: ub, Count: c.buckets[i].Load()})
	}
	return m
}
