package sched

import (
	"context"

	parcut "repro"
	"repro/internal/trace"
)

// Handle is the transport-agnostic view of a submitted job: enough to
// identify it, wait for its result, and hang an HTTP span off its trace.
// A local handle is a *Job; a remote handle (internal/cluster) wraps an
// in-flight HTTP request to the owning node. Callers that received an
// attached handle must call Wait exactly once, whatever the transport.
type Handle interface {
	// ID is the job identifier on the node that runs the job. Remote
	// handles may not know it until Wait returns.
	ID() string
	// Fanout is the number of sub-jobs a boosted solve was decomposed
	// into (0 for ordinary jobs; remote handles learn it at Wait).
	Fanout() int
	// TraceSpan is the job's root span; the zero SpanRef (always returned
	// by remote handles — the span tree lives on the owning node) makes
	// every span operation a no-op.
	TraceSpan() trace.SpanRef
	// Wait blocks until the job finishes or ctx is done. Abandoning the
	// wait cancels the job if nobody else is attached to it.
	Wait(ctx context.Context) (parcut.Result, error)
}

// Submitter is the transport-agnostic job-submission seam: everything the
// HTTP layer needs from "whatever runs solves", with no commitment to
// where they run. *Scheduler implements it (through the Local adapter)
// for the single-process service; internal/cluster's Node implements it
// by consistent-hash routing between the local scheduler and remote
// peers, so local and remote jobs are the same object to the API layer.
type Submitter interface {
	// Submit schedules a solve of the graph registered under key.GraphID
	// (g may carry the parsed graph when the caller already holds it; a
	// routing submitter fetches it itself when nil) or joins an
	// equivalent in-flight or cached job. The boolean reports a cache
	// hit. ctx bounds the submission itself, not the solve: local
	// admission never blocks and ignores it, remote submission uses it
	// for the proxied request.
	Submit(ctx context.Context, key Key, g *parcut.Graph, opts SubmitOpts) (Handle, bool, error)
	// Job returns a status snapshot of a job this submitter knows about.
	Job(id string) (Status, bool)
	// Cancel aborts a queued or running job, reporting whether it existed
	// and was still cancelable.
	Cancel(id string) bool
	// InvalidateGraph drops every cached result for the graph so a
	// re-upload of the same content cannot be served stale cuts; it
	// returns how many cache keys were dropped.
	InvalidateGraph(graphID string) int
}

// Local adapts a *Scheduler's concrete API to the Submitter seam. It is
// what single-process deployments use directly, and what the cluster
// node uses for the shard it owns.
type Local struct{ *Scheduler }

// Submit implements Submitter by delegating to the scheduler. Admission
// is non-blocking, so ctx is intentionally unused; the returned handle's
// Wait is where cancellation and deadlines apply.
func (l Local) Submit(_ context.Context, key Key, g *parcut.Graph, opts SubmitOpts) (Handle, bool, error) {
	j, hit, err := l.Scheduler.Submit(key, g, opts)
	if err != nil {
		return nil, false, err
	}
	return j, hit, nil
}

// Wait implements Handle: it blocks until the job finishes or ctx is
// done, unregistering this waiter either way (the last waiter to give up
// on a non-detached job cancels it).
func (j *Job) Wait(ctx context.Context) (parcut.Result, error) {
	return j.owner.Wait(ctx, j)
}

// compile-time checks: the scheduler side satisfies the seam.
var (
	_ Submitter = Local{}
	_ Handle    = (*Job)(nil)
)
