package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	parcut "repro"
)

// Class is a job's quality-of-service class. Classes share the worker
// pool by weighted fairness: each class owns its own queue (still
// smallest-graph-first within the class), and workers pick the next job
// by deficit round robin over the class weights, so a saturated
// background tenant can never starve interactive callers — it can only
// slow them by its weight share.
type Class string

const (
	// ClassInteractive is for latency-sensitive callers (the default for
	// single synchronous solves).
	ClassInteractive Class = "interactive"
	// ClassBatch is for bulk work that still has a caller waiting (the
	// default for the batch endpoint).
	ClassBatch Class = "batch"
	// ClassBackground is for best-effort work: it proceeds only at its
	// weight share and is the first to queue behind everyone else.
	ClassBackground Class = "background"
)

// Classes lists every class in dispatch-preference order; classRank
// indexes into it and into every per-class array.
var Classes = [...]Class{ClassInteractive, ClassBatch, ClassBackground}

const numClasses = len(Classes)

// classRank maps a (normalized) class to its array index.
func classRank(c Class) int {
	for i, cc := range Classes {
		if cc == c {
			return i
		}
	}
	return 0
}

// ErrUnknownClass reports a class name outside the known set.
var ErrUnknownClass = errors.New("sched: unknown class")

// ParseClass validates a wire-format class name. The empty string means
// ClassInteractive: an unclassified request is someone waiting for an
// answer, and defaulting them to the strongest class preserves the
// pre-class scheduler's latency behavior.
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "":
		return ClassInteractive, nil
	case ClassInteractive, ClassBatch, ClassBackground:
		return Class(s), nil
	}
	return "", fmt.Errorf("%w %q (want interactive, batch, or background)", ErrUnknownClass, s)
}

// defaultClassWeights is the dispatch share each class gets under
// contention: per full scheduler round, up to 8 interactive dispatches
// for every 4 batch and 1 background.
var defaultClassWeights = map[Class]int{
	ClassInteractive: 8,
	ClassBatch:       4,
	ClassBackground:  1,
}

// agingPeriod is the intra-class aging knob: every agingPeriod-th
// dispatch from a class serves the class's oldest queued job instead of
// its smallest graph, so a huge graph behind an endless stream of small
// ones is still dispatched within a bounded number of its class's turns.
const agingPeriod = 8

// pickLocked chooses the next job by deficit round robin with unit cost:
// the cursor stays on a class while it has queued work and remaining
// deficit, and entering a class replenishes its deficit with its weight.
// A class that is skipped while empty loses nothing — its quantum is
// restored the moment the cursor reaches it with work queued — which is
// exactly the aging guarantee: from any cursor position, a newly queued
// job of class c waits at most the other classes' remaining quanta
// (bounded by the weight sum) before c is served. Returns nil when
// nothing is queued. Caller holds s.mu.
func (s *Scheduler) pickLocked() *Job {
	if s.queuedTotal == 0 {
		return nil
	}
	for {
		c := s.rrIdx
		if s.queues[c].Len() > 0 && s.deficit[c] > 0 {
			s.deficit[c]--
			return s.popClassLocked(c)
		}
		s.rrIdx = (s.rrIdx + 1) % numClasses
		s.deficit[s.rrIdx] = s.weights[s.rrIdx]
	}
}

// popClassLocked removes and returns the next job of class c: normally
// the smallest graph, but every agingPeriod-th pop takes the oldest
// queued job (the class FIFO's front) so no job starves within its
// class. The FIFO makes the aging pop O(log n) — scanning the heap for
// the oldest entry would stall every scheduler operation behind an O(n)
// walk under the lock on deep queues.
func (s *Scheduler) popClassLocked(c int) *Job {
	q := &s.queues[c]
	s.agePops[c]++
	var j *Job
	if s.agePops[c] >= agingPeriod && q.Len() > 1 {
		s.agePops[c] = 0
		j = s.fifos[c].Front().Value.(*Job)
		heap.Remove(q, j.heapIdx)
	} else {
		j = heap.Pop(q).(*Job)
	}
	s.fifos[c].Remove(j.fifoElem)
	j.fifoElem = nil
	s.queuedTotal--
	return j
}

// pushLocked queues j on its class queue (heap + arrival FIFO). Caller
// holds s.mu.
func (s *Scheduler) pushLocked(j *Job) {
	c := classRank(j.class)
	heap.Push(&s.queues[c], j)
	j.fifoElem = s.fifos[c].PushBack(j)
	s.queuedTotal++
}

// unqueueLocked removes a still-queued j from its class's heap and FIFO
// without publishing it. Caller holds s.mu; j.heapIdx must be valid.
func (s *Scheduler) unqueueLocked(j *Job) {
	c := classRank(j.class)
	heap.Remove(&s.queues[c], j.heapIdx)
	s.fifos[c].Remove(j.fifoElem)
	j.fifoElem = nil
	s.queuedTotal--
}

// escalateLocked raises j to class c when c is stronger than j's current
// class, requeueing a still-queued job onto the stronger queue. Fan-out
// parents escalate their children, so a batch boost joined by an
// interactive caller stops queueing behind other batch work. Coalescing
// calls this: the job serves its strongest waiter. Caller holds s.mu.
func (s *Scheduler) escalateLocked(j *Job, c Class) {
	if classRank(c) >= classRank(j.class) {
		return
	}
	if j.group != nil {
		for _, child := range j.group.children {
			s.escalateLocked(child, c)
		}
		j.class = c
		return
	}
	if j.state == StateQueued && j.heapIdx >= 0 {
		s.unqueueLocked(j)
		j.class = c
		s.pushLocked(j)
		s.m.escalated.Add(1)
		return
	}
	j.class = c
}

// rank is classRank as a method (for call sites that read better with it).
func (c Class) rank() int { return classRank(c) }

// Event is one entry of a job's live event log, streamed to clients as
// NDJSON by GET /v1/jobs/{id}/events. Seq is the event's index in the
// log, so clients can resume a dropped stream without duplicates.
type Event struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// Type is "state" (lifecycle transition), "phase" (solver entered a
	// new phase), "progress" (throttled counter update), or "result"
	// (terminal; always the last event).
	Type     string                   `json:"type"`
	State    State                    `json:"state,omitempty"`
	Phase    string                   `json:"phase,omitempty"`
	Progress *parcut.ProgressSnapshot `json:"progress,omitempty"`
	// Fraction is a pointer so a legitimate 0 ("just started") still
	// serializes; it is set on every phase/progress/result event.
	Fraction *float64 `json:"fraction,omitempty"`
	Value    *int64   `json:"value,omitempty"`
	InCut    []bool   `json:"in_cut,omitempty"`
	Trees    int      `json:"trees_scanned,omitempty"`
	Err      string   `json:"error,omitempty"`
	Terminal bool     `json:"terminal,omitempty"`
}

// fptr boxes a fraction for Event.Fraction.
func fptr(f float64) *float64 { return &f }

// maxJobEvents caps the phase/progress entries one job retains, so a
// pathological solve (millions of boost runs in one job) cannot grow the
// log without bound. State and terminal events always append; a capped
// log still ends with its result.
const maxJobEvents = 1024

// eventBytesEstimate is the per-event memory charged against the
// scheduler's HistoryBytes budget for retained finished jobs (an Event
// plus its heap-allocated ProgressSnapshot).
const eventBytesEstimate = 256

// progressEventInterval throttles counter-only progress events; phase
// transitions and lifecycle events are never throttled.
const progressEventInterval = 100 * time.Millisecond

// recordEvent appends ev to j's log and wakes streamers. limited marks
// phase/progress events, which stop appending once the log is full.
func (j *Job) recordEvent(ev Event, limited bool) {
	j.evMu.Lock()
	if limited && len(j.events) >= maxJobEvents {
		j.evMu.Unlock()
		return
	}
	ev.Seq = len(j.events)
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	j.events = append(j.events, ev)
	close(j.evWake)
	j.evWake = make(chan struct{})
	j.evMu.Unlock()
}

// Events returns a copy of the job's event log from seq `from` onward, a
// channel that is closed when another event is appended, and whether the
// log has already ended (its last event is terminal — nothing further
// will ever be appended, so waiting on the channel would block forever).
// A stream is complete when it has consumed an event with Terminal set
// or sees ended with no events left.
func (j *Job) Events(from int) (evs []Event, wake <-chan struct{}, ended bool) {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	ended = len(j.events) > 0 && j.events[len(j.events)-1].Terminal
	return evs, j.evWake, ended
}

// onProgress is the solver hook: it runs on the job's solver goroutine at
// a cancellation seam each time the solve crosses a milestone. It feeds
// the phase-seconds metrics and appends phase/progress events. It takes
// only the job's event mutex — never the scheduler lock — so the solver
// hot path cannot contend with Submit/Wait traffic.
func (s *Scheduler) onProgress(j *Job, ps parcut.ProgressSnapshot) {
	now := time.Now()
	j.evMu.Lock()
	if ps.Phase != j.evPhase {
		if j.evPhase != "" && !j.evPhaseAt.IsZero() {
			s.observePhaseLocked(j, j.evPhase, now.Sub(j.evPhaseAt))
		}
		j.evPhase, j.evPhaseAt = ps.Phase, now
		j.evMu.Unlock()
		j.recordEvent(Event{Type: "phase", Phase: ps.Phase, Progress: &ps, Fraction: fptr(ps.Fraction()), Time: now}, true)
		return
	}
	throttled := now.Sub(j.evLastProg) < progressEventInterval
	if !throttled {
		j.evLastProg = now
	}
	j.evMu.Unlock()
	if !throttled {
		j.recordEvent(Event{Type: "progress", Phase: ps.Phase, Progress: &ps, Fraction: fptr(ps.Fraction()), Time: now}, true)
	}
}

// closePhaseTimer attributes the tail of the job's current phase to the
// phase-seconds metrics when the job reaches a terminal state.
func (s *Scheduler) closePhaseTimer(j *Job) {
	j.evMu.Lock()
	if j.evPhase != "" && !j.evPhaseAt.IsZero() {
		s.observePhaseLocked(j, j.evPhase, time.Since(j.evPhaseAt))
	}
	j.evPhase, j.evPhaseAt = "", time.Time{}
	j.evMu.Unlock()
}

// observePhaseLocked attributes d of solver wall time to the named phase:
// the scheduler-wide counters and histograms (labeled with the job's
// dispatch class) and the job's own accounting for the slow-solve log.
// Caller holds j.evMu.
func (s *Scheduler) observePhaseLocked(j *Job, phase string, d time.Duration) {
	s.m.observePhase(j.metricClass, j.engineIdx, phase, d)
	switch phase {
	case "packing":
		j.packNanos += int64(d)
	case "scan":
		j.scanNanos += int64(d)
	case "contract":
		j.contractNanos += int64(d)
	}
}
