package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	parcut "repro"
)

// cycle builds a small cycle graph whose minimum cut is the two lightest
// edges — fast to solve and easy to assert.
func cycle(t *testing.T, n int) *parcut.Graph {
	t.Helper()
	g := parcut.NewGraph(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n, int64(2+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// slow builds a job heavy enough to keep a worker busy until canceled; no
// test ever runs it to completion, so its absolute cost only bounds the
// cancellation latency (one boost run plus one bough phase).
func slow() *parcut.Graph { return parcut.RandomGraph(1000, 4000, 100, 42) }

func slowOpts() SolveOptions { return SolveOptions{Seed: 7, Boost: 1 << 20} }

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// block occupies one worker with a slow job and returns a cancel function
// that aborts it. The blocker is submitted with a single waiter whose
// context the cancel function ends, exercising the abandoned-waiter path.
func block(t *testing.T, s *Scheduler) context.CancelFunc {
	t.Helper()
	j, _, err := s.Submit(Key{GraphID: "blocker", Opt: slowOpts()}, slow(), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go s.Wait(ctx, j)
	waitUntil(t, "blocker running", func() bool { return s.Metrics().Running >= 1 })
	return cancel
}

func shutdown(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestSolveAndResultCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	g := cycle(t, 8)
	key := Key{GraphID: "g1", Opt: SolveOptions{Seed: 1}}

	j, hit, err := s.Submit(key, g, SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("first Submit: hit=%v err=%v", hit, err)
	}
	res, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Value != 4 { // lightest two cycle edges: 2+2
		t.Fatalf("Value = %d, want 4", res.Value)
	}

	j2, hit, err := s.Submit(key, g, SubmitOpts{})
	if err != nil || !hit {
		t.Fatalf("repeat Submit: hit=%v err=%v", hit, err)
	}
	if j2 != j {
		t.Fatal("repeat Submit returned a different job")
	}
	if _, err := s.Wait(context.Background(), j2); err != nil {
		t.Fatalf("Wait on cached job: %v", err)
	}
	m := s.Metrics()
	if m.SolveCount != 1 || m.CacheHits != 1 || m.Coalesced != 0 {
		t.Fatalf("metrics = %+v, want 1 solve, 1 cache hit, 0 coalesced", m)
	}
	st, ok := s.Job(j.ID())
	if !ok || st.State != StateDone || st.Value != 4 {
		t.Fatalf("Job status = %+v ok=%v", st, ok)
	}
	// Finished jobs must not pin their graph: retained memory stays
	// bounded by the registry budget, not the job history.
	s.mu.Lock()
	retained := j.g != nil
	s.mu.Unlock()
	if retained {
		t.Fatal("finished job still references its graph")
	}
}

func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	// Occupy the only worker so the duplicates below stay queued together.
	unblock := block(t, s)
	defer unblock()

	g := cycle(t, 10)
	key := Key{GraphID: "dup", Opt: SolveOptions{Seed: 3}}
	const dups = 5
	var wg sync.WaitGroup
	results := make([]parcut.Result, dups)
	for i := 0; i < dups; i++ {
		j, _, err := s.Submit(key, g, SubmitOpts{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			res, err := s.Wait(context.Background(), j)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, j)
	}
	unblock() // free the worker for the coalesced job
	wg.Wait()
	for i := 1; i < dups; i++ {
		if results[i].Value != results[0].Value {
			t.Fatalf("waiter %d got %d, waiter 0 got %d", i, results[i].Value, results[0].Value)
		}
	}
	m := s.Metrics()
	if m.CacheHits != dups-1 || m.Coalesced != dups-1 {
		t.Fatalf("metrics = %+v, want %d cache hits all coalesced", m, dups-1)
	}
	if m.SolveCount != 1 { // one shared solve; the canceled blocker counts no solve
		t.Fatalf("SolveCount = %d, want 1", m.SolveCount)
	}
}

func TestSmallGraphsJumpTheQueue(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	big, _, err := s.Submit(Key{GraphID: "big", Opt: SolveOptions{Seed: 1}}, cycle(t, 64), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := s.Submit(Key{GraphID: "small", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	unblock()
	if _, err := s.Wait(context.Background(), big); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), small); err != nil {
		t.Fatal(err)
	}
	sb, _ := s.Job(big.ID())
	ss, _ := s.Job(small.ID())
	if !ss.Finished.Before(sb.Finished) {
		t.Fatalf("small finished %v, big %v: want small first despite later submit", ss.Finished, sb.Finished)
	}
}

func TestExpiredDeadlineReturnsPromptly(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	j, _, err := s.Submit(Key{GraphID: "late", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Wait(ctx, j)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait error = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Wait took %v, want prompt return", d)
	}
	// The abandoned job is canceled rather than run to completion, and the
	// canceled key is retryable.
	unblock()
	waitUntil(t, "job canceled", func() bool {
		st, ok := s.Job(j.ID())
		return ok && st.State == StateCanceled
	})
	if m := s.Metrics(); m.Canceled < 1 {
		t.Fatalf("Canceled = %d, want >= 1", m.Canceled)
	}
	j2, hit, err := s.Submit(Key{GraphID: "late", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("retry Submit: hit=%v err=%v", hit, err)
	}
	if res, err := s.Wait(context.Background(), j2); err != nil || res.Value == 0 {
		t.Fatalf("retry solve: res=%+v err=%v", res, err)
	}
}

// TestDoomedQueuedJobIsNotJoined covers the window where a queued job's
// context is already canceled (its only waiter timed out) but no worker
// has published its terminal state yet: a fresh Submit for the same key
// must start a new job, not inherit the doomed one's cancellation.
func TestDoomedQueuedJobIsNotJoined(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	key := Key{GraphID: "k", Opt: SolveOptions{Seed: 1}}
	g := cycle(t, 8)
	doomed, _, err := s.Submit(key, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx, doomed); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on doomed job: %v", err)
	}
	// The doomed job is still queued (the worker is blocked) with a dead
	// context; the retry must get a fresh job and a real result.
	fresh, hit, err := s.Submit(key, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if hit || fresh == doomed {
		t.Fatalf("retry joined the doomed job (hit=%v)", hit)
	}
	unblock()
	if res, err := s.Wait(context.Background(), fresh); err != nil || res.Value != 4 {
		t.Fatalf("fresh job: res=%+v err=%v", res, err)
	}
	waitUntil(t, "doomed job published", func() bool {
		st, _ := s.Job(doomed.ID())
		return st.State == StateCanceled
	})
	// The doomed job's cleanup must not have evicted the fresh cached
	// result from the key cache.
	again, hit, err := s.Submit(key, g, SubmitOpts{})
	if err != nil || !hit || again != fresh {
		t.Fatalf("cached result lost after doomed cleanup: hit=%v err=%v", hit, err)
	}
	if _, err := s.Wait(context.Background(), again); err != nil {
		t.Fatal(err)
	}
}

func TestMidRunCancellationAborts(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	j, _, err := s.Submit(Key{GraphID: "slow", Opt: slowOpts()}, slow(), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job running", func() bool { return s.Metrics().Running == 1 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want Canceled", err)
	}
	waitUntil(t, "solver aborted", func() bool {
		st, _ := s.Job(j.ID())
		return st.State == StateCanceled
	})
	if st, _ := s.Job(j.ID()); st.Err == "" {
		t.Fatalf("canceled job has no error: %+v", st)
	}
}

// TestHistoryBytesBoundsRetainedPartitions: finished jobs pin their InCut
// slices only up to the HistoryBytes budget, oldest first.
func TestHistoryBytesBoundsRetainedPartitions(t *testing.T) {
	s := New(Config{Workers: 1, HistoryBytes: 10}) // one 8-byte partition fits, two do not
	defer shutdown(t, s)
	g := cycle(t, 8)
	solve := func(seed int64) *Job {
		j, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: seed, WantPartition: true}}, g, SubmitOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if res, err := s.Wait(context.Background(), j); err != nil || len(res.InCut) != 8 {
			t.Fatalf("solve %d: res=%+v err=%v", seed, res, err)
		}
		return j
	}
	first, second := solve(1), solve(2)
	if _, ok := s.Job(first.ID()); ok {
		t.Fatal("first job survived the partition-byte budget")
	}
	if _, ok := s.Job(second.ID()); !ok {
		t.Fatal("newest job was evicted")
	}
	// The evicted job's cached result went with it: same key re-solves.
	j, hit, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 1, WantPartition: true}}, g, SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("re-submit after eviction: hit=%v err=%v", hit, err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 2})
	g := cycle(t, 12)
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: int64(i)}}, g, SubmitOpts{Detached: true})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, j := range jobs {
		st, ok := s.Job(j.ID())
		if !ok || st.State != StateDone {
			t.Fatalf("job %s not drained: %+v", j.ID(), st)
		}
	}
	if _, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 99}}, g, SubmitOpts{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Shutdown = %v, want ErrDraining", err)
	}
}

func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1})
	j, _, err := s.Submit(Key{GraphID: "slow", Opt: slowOpts()}, slow(), SubmitOpts{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job running", func() bool { return s.Metrics().Running == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	st, _ := s.Job(j.ID())
	if st.State != StateCanceled {
		t.Fatalf("straggler state = %s, want canceled", st.State)
	}
}

// medium builds a graph whose single solve takes long enough (tens of
// milliseconds — orders of magnitude above a queue pop) that fan-out
// sub-jobs demonstrably overlap on a multi-worker pool.
func medium() *parcut.Graph { return parcut.RandomGraph(150, 600, 100, 42) }

// TestBoostFanOutMatchesSequential is the acceptance test for the boost
// fan-out: a Boost=8 solve on a 4-worker scheduler must decompose into
// sub-jobs that run concurrently on at least two workers, and the merged
// result must be bit-for-bit the sequential Boost loop's.
func TestBoostFanOutMatchesSequential(t *testing.T) {
	g := medium()
	opt := parcut.Options{Seed: 5, Boost: 8, WantPartition: true}
	want, err := parcut.MinCut(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 4})
	defer shutdown(t, s)
	j, hit, err := s.Submit(Key{GraphID: "m", Opt: SolveOptions{Seed: 5, Boost: 8, WantPartition: true}}, g, SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("Submit: hit=%v err=%v", hit, err)
	}
	st, ok := s.Job(j.ID())
	if !ok || st.Fanout != 8 || st.State != StateRunning {
		t.Fatalf("parent status = %+v ok=%v, want fanout 8 running", st, ok)
	}
	got, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got.Value != want.Value || got.TreesScanned != want.TreesScanned {
		t.Fatalf("fan-out result %+v, sequential %+v", got, want)
	}
	if len(got.InCut) != len(want.InCut) {
		t.Fatalf("partition length %d vs %d", len(got.InCut), len(want.InCut))
	}
	for v := range got.InCut {
		if got.InCut[v] != want.InCut[v] {
			t.Fatalf("partitions differ at vertex %d", v)
		}
	}
	m := s.Metrics()
	if m.Fanouts != 1 || m.SubJobs != 8 || m.SubJobsShared != 0 {
		t.Fatalf("fan-out metrics = %+v, want 1 fanout, 8 fresh sub-jobs", m)
	}
	if m.SolveCount != 8 {
		t.Fatalf("SolveCount = %d, want 8 single-run solves", m.SolveCount)
	}
	if m.PeakRunning < 2 {
		t.Fatalf("PeakRunning = %d, want >= 2 (sub-jobs never overlapped)", m.PeakRunning)
	}
}

// TestBoostChunkingComposes: when Boost exceeds MaxFanout, run ranges are
// chunked; BoostSeed's additivity must keep the merged result identical
// to the sequential loop.
func TestBoostChunkingComposes(t *testing.T) {
	g := cycle(t, 16)
	opt := parcut.Options{Seed: 9, Boost: 8, WantPartition: true}
	want, err := parcut.MinCut(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, MaxFanout: 3}) // chunks of 3, 3, 2 runs
	defer shutdown(t, s)
	j, _, err := s.Submit(Key{GraphID: "c", Opt: SolveOptions{Seed: 9, Boost: 8, WantPartition: true}}, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.TreesScanned != want.TreesScanned {
		t.Fatalf("chunked result %+v, sequential %+v", got, want)
	}
	for v := range got.InCut {
		if got.InCut[v] != want.InCut[v] {
			t.Fatalf("partitions differ at vertex %d", v)
		}
	}
	if m := s.Metrics(); m.SubJobs != 3 {
		t.Fatalf("SubJobs = %d, want 3 chunks", m.SubJobs)
	}
}

// TestBoostSubJobsShareRunsWithPlainRequests: a plain request for one of
// a boost's derived seeds must be served by the same run, and vice versa.
func TestBoostSubJobsShareRunsWithPlainRequests(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	g := cycle(t, 8)
	// Solve run 1's seed as a plain request first.
	plain, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: parcut.BoostSeed(3, 1)}}, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), plain); err != nil {
		t.Fatal(err)
	}
	// The Boost=2 solve needs runs 0 and 1; run 1 is already cached.
	boosted, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 3, Boost: 2}}, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), boosted); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.SubJobs != 2 || m.SubJobsShared != 1 {
		t.Fatalf("sub-job metrics = %+v, want 2 requested / 1 shared", m)
	}
	if m.SolveCount != 2 { // plain run + boost run 0; run 1 reused
		t.Fatalf("SolveCount = %d, want 2", m.SolveCount)
	}
}

// TestCancelParentCancelsSubJobs: canceling a fan-out parent must unwind
// its children — the running one aborts, the queued ones leave the heap
// without ever reaching a worker.
func TestCancelParentCancelsSubJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	parent, _, err := s.Submit(Key{GraphID: "slow", Opt: SolveOptions{Seed: 7, Boost: 4}}, slow(), SubmitOpts{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "first sub-job running", func() bool { return s.Metrics().Running >= 1 })
	if !s.Cancel(parent.ID()) {
		t.Fatal("Cancel(parent) = false")
	}
	waitUntil(t, "parent canceled", func() bool {
		st, _ := s.Job(parent.ID())
		return st.State == StateCanceled
	})
	m := s.Metrics()
	if m.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d after parent cancel, want 0", m.QueueDepth)
	}
	if m.SolveCount != 0 {
		t.Fatalf("SolveCount = %d, want 0 (no sub-job ran to completion)", m.SolveCount)
	}
}

// TestCancelQueuedJobLeavesHeapEagerly: a canceled queued job must leave
// the priority heap (and the queue-depth gauge) immediately instead of
// waiting for a worker to pop and discard it.
func TestCancelQueuedJobLeavesHeapEagerly(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	// The blocker's own queued sub-jobs contribute to the depth; only the
	// victim's contribution matters here.
	before := s.Metrics().QueueDepth
	j, _, err := s.Submit(Key{GraphID: "victim", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), SubmitOpts{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Metrics().QueueDepth; d != before+1 {
		t.Fatalf("QueueDepth = %d before cancel, want %d (the victim queued)", d, before+1)
	}
	if !s.Cancel(j.ID()) {
		t.Fatal("Cancel = false for a queued job")
	}
	// Eager: no worker has freed up, yet the depth already dropped and the
	// job is terminal.
	if d := s.Metrics().QueueDepth; d != before {
		t.Fatalf("QueueDepth = %d after cancel, want %d", d, before)
	}
	st, ok := s.Job(j.ID())
	if !ok || st.State != StateCanceled || st.Err == "" {
		t.Fatalf("victim status = %+v ok=%v, want canceled with error", st, ok)
	}
	if m := s.Metrics(); m.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", m.Canceled)
	}
}

// TestDrainRejectionsAreNotCountedAsSubmitted: the submitted counter must
// only move for accepted submissions; drain rejections get their own.
func TestDrainRejectionsAreNotCountedAsSubmitted(t *testing.T) {
	s := New(Config{Workers: 1})
	g := cycle(t, 8)
	if _, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 1}}, g, SubmitOpts{Detached: true}); err != nil {
		t.Fatal(err)
	}
	shutdown(t, s)
	if _, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 2}}, g, SubmitOpts{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}
	m := s.Metrics()
	if m.Submitted != 1 || m.Rejected != 1 {
		t.Fatalf("Submitted = %d, Rejected = %d; want 1 and 1", m.Submitted, m.Rejected)
	}
}

// TestBoostZeroAndOneShareAKey: 0 and 1 both mean a single run, so the
// two spellings must hit one cache entry.
func TestBoostZeroAndOneShareAKey(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	g := cycle(t, 8)
	a, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 4, Boost: 0}}, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	b, hit, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 4, Boost: 1}}, g, SubmitOpts{})
	if err != nil || !hit || a != b {
		t.Fatalf("Boost=1 resubmit: hit=%v err=%v", hit, err)
	}
	if _, err := s.Wait(context.Background(), b); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidateGraphDropsCachedResults: after invalidation, a repeat of
// a previously cached request must run the solver again — the staleness
// guard behind DELETE /v1/graphs/{id}, where a re-uploaded graph recycles
// its content-addressed ID.
func TestInvalidateGraphDropsCachedResults(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	g := cycle(t, 8)
	key := Key{GraphID: "g1", Opt: SolveOptions{Seed: 1}}
	otherKey := Key{GraphID: "g2", Opt: SolveOptions{Seed: 1}}

	j, _, err := s.Submit(key, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	jo, _, err := s.Submit(otherKey, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), jo); err != nil {
		t.Fatal(err)
	}

	if n := s.InvalidateGraph("g1"); n != 1 {
		t.Fatalf("InvalidateGraph removed %d keys, want 1", n)
	}
	j2, hit, err := s.Submit(key, g, SubmitOpts{})
	if err != nil || hit {
		t.Fatalf("post-invalidate Submit: hit=%v err=%v", hit, err)
	}
	if j2 == j {
		t.Fatal("post-invalidate Submit rejoined the stale job")
	}
	res, err := s.Wait(context.Background(), j2)
	if err != nil || res.Value != 4 {
		t.Fatalf("re-solve: res=%+v err=%v", res, err)
	}
	if m := s.Metrics(); m.SolveCount != 3 {
		t.Fatalf("SolveCount = %d, want 3 (invalidated key re-ran)", m.SolveCount)
	}

	// The untouched graph's cache survives.
	_, hit, err = s.Submit(otherKey, g, SubmitOpts{})
	if err != nil || !hit {
		t.Fatalf("other graph lost its cache: hit=%v err=%v", hit, err)
	}
	if n := s.InvalidateGraph("unknown"); n != 0 {
		t.Fatalf("InvalidateGraph(unknown) = %d", n)
	}
}

// TestInvalidateGraphWithInFlightJob: invalidating while a job runs lets
// the job finish for its waiters but prevents later joins. MaxFanout 1
// keeps the boosted blocker a single job (single cache key), and every
// cancellation happens before the assertions so a failed expectation
// cannot strand the drain.
func TestInvalidateGraphWithInFlightJob(t *testing.T) {
	s := New(Config{Workers: 1, MaxFanout: 1})
	defer shutdown(t, s)
	key := Key{GraphID: "gf", Opt: slowOpts()}
	j, _, err := s.Submit(key, slow(), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waitDone := make(chan error, 1)
	go func() {
		_, werr := s.Wait(ctx, j)
		waitDone <- werr
	}()
	waitUntil(t, "job running", func() bool { return s.Metrics().Running >= 1 })

	n := s.InvalidateGraph("gf")
	// A fresh submit must start a new job, not join the invalidated one.
	j2, hit, err2 := s.Submit(key, slow(), SubmitOpts{})
	if err2 == nil {
		s.Cancel(j2.ID())
	}
	cancel()
	werr := <-waitDone

	if n != 1 {
		t.Fatalf("InvalidateGraph = %d, want 1", n)
	}
	if err2 != nil || hit || j2 == j {
		t.Fatalf("Submit joined invalidated in-flight job: hit=%v same=%v err=%v", hit, j2 == j, err2)
	}
	if werr == nil {
		t.Fatal("blocked waiter returned nil after cancel")
	}
}

// TestMetricsAggregateExecutorPoolCounters: the scheduler's Metrics must
// surface the work-stealing executors' counters. Every solve borrows its
// working arrays from the worker executor's arena, so after one solve the
// arena counters are non-zero, and after a second solve of the same shape
// the free-lists are warm and hits appear.
func TestMetricsAggregateExecutorPoolCounters(t *testing.T) {
	s := New(Config{Workers: 1, SolveParallelism: 2})
	defer shutdown(t, s)
	g := cycle(t, 64)
	for seed := int64(1); seed <= 2; seed++ {
		j, _, err := s.Submit(Key{GraphID: "pm", Opt: SolveOptions{Seed: seed}}, g, SubmitOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), j); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	m := s.Metrics()
	if m.Pool.ArenaMisses == 0 {
		t.Errorf("Pool.ArenaMisses = 0, want > 0 (first solve must borrow fresh buffers)")
	}
	if m.Pool.ArenaHits == 0 {
		t.Errorf("Pool.ArenaHits = 0, want > 0 (second solve must recycle)")
	}
	if m.Pool.InlineRuns != 0 {
		t.Errorf("Pool.InlineRuns = %d, want 0 (no saturation collapse)", m.Pool.InlineRuns)
	}
	if m.Pool.LocalPushes+m.Pool.SharedPushes+m.Pool.OverflowPushes == 0 {
		t.Errorf("no forks recorded at width 2; counters = %+v", m.Pool)
	}
}
