package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	parcut "repro"
)

// cycle builds a small cycle graph whose minimum cut is the two lightest
// edges — fast to solve and easy to assert.
func cycle(t *testing.T, n int) *parcut.Graph {
	t.Helper()
	g := parcut.NewGraph(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n, int64(2+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// slow builds a job heavy enough to keep a worker busy until canceled; no
// test ever runs it to completion, so its absolute cost only bounds the
// cancellation latency (one boost run plus one bough phase).
func slow() *parcut.Graph { return parcut.RandomGraph(1000, 4000, 100, 42) }

func slowOpts() SolveOptions { return SolveOptions{Seed: 7, Boost: 1 << 20} }

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// block occupies one worker with a slow job and returns a cancel function
// that aborts it. The blocker is submitted with a single waiter whose
// context the cancel function ends, exercising the abandoned-waiter path.
func block(t *testing.T, s *Scheduler) context.CancelFunc {
	t.Helper()
	j, _, err := s.Submit(Key{GraphID: "blocker", Opt: slowOpts()}, slow(), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go s.Wait(ctx, j)
	waitUntil(t, "blocker running", func() bool { return s.Metrics().Running >= 1 })
	return cancel
}

func shutdown(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestSolveAndResultCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	g := cycle(t, 8)
	key := Key{GraphID: "g1", Opt: SolveOptions{Seed: 1}}

	j, hit, err := s.Submit(key, g, false)
	if err != nil || hit {
		t.Fatalf("first Submit: hit=%v err=%v", hit, err)
	}
	res, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Value != 4 { // lightest two cycle edges: 2+2
		t.Fatalf("Value = %d, want 4", res.Value)
	}

	j2, hit, err := s.Submit(key, g, false)
	if err != nil || !hit {
		t.Fatalf("repeat Submit: hit=%v err=%v", hit, err)
	}
	if j2 != j {
		t.Fatal("repeat Submit returned a different job")
	}
	if _, err := s.Wait(context.Background(), j2); err != nil {
		t.Fatalf("Wait on cached job: %v", err)
	}
	m := s.Metrics()
	if m.SolveCount != 1 || m.CacheHits != 1 || m.Coalesced != 0 {
		t.Fatalf("metrics = %+v, want 1 solve, 1 cache hit, 0 coalesced", m)
	}
	st, ok := s.Job(j.ID())
	if !ok || st.State != StateDone || st.Value != 4 {
		t.Fatalf("Job status = %+v ok=%v", st, ok)
	}
	// Finished jobs must not pin their graph: retained memory stays
	// bounded by the registry budget, not the job history.
	s.mu.Lock()
	retained := j.g != nil
	s.mu.Unlock()
	if retained {
		t.Fatal("finished job still references its graph")
	}
}

func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	// Occupy the only worker so the duplicates below stay queued together.
	unblock := block(t, s)
	defer unblock()

	g := cycle(t, 10)
	key := Key{GraphID: "dup", Opt: SolveOptions{Seed: 3}}
	const dups = 5
	var wg sync.WaitGroup
	results := make([]parcut.Result, dups)
	for i := 0; i < dups; i++ {
		j, _, err := s.Submit(key, g, false)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			res, err := s.Wait(context.Background(), j)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, j)
	}
	unblock() // free the worker for the coalesced job
	wg.Wait()
	for i := 1; i < dups; i++ {
		if results[i].Value != results[0].Value {
			t.Fatalf("waiter %d got %d, waiter 0 got %d", i, results[i].Value, results[0].Value)
		}
	}
	m := s.Metrics()
	if m.CacheHits != dups-1 || m.Coalesced != dups-1 {
		t.Fatalf("metrics = %+v, want %d cache hits all coalesced", m, dups-1)
	}
	if m.SolveCount != 1 { // one shared solve; the canceled blocker counts no solve
		t.Fatalf("SolveCount = %d, want 1", m.SolveCount)
	}
}

func TestSmallGraphsJumpTheQueue(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	big, _, err := s.Submit(Key{GraphID: "big", Opt: SolveOptions{Seed: 1}}, cycle(t, 64), false)
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := s.Submit(Key{GraphID: "small", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), false)
	if err != nil {
		t.Fatal(err)
	}
	unblock()
	if _, err := s.Wait(context.Background(), big); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), small); err != nil {
		t.Fatal(err)
	}
	sb, _ := s.Job(big.ID())
	ss, _ := s.Job(small.ID())
	if !ss.Finished.Before(sb.Finished) {
		t.Fatalf("small finished %v, big %v: want small first despite later submit", ss.Finished, sb.Finished)
	}
}

func TestExpiredDeadlineReturnsPromptly(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	j, _, err := s.Submit(Key{GraphID: "late", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), false)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Wait(ctx, j)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait error = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Wait took %v, want prompt return", d)
	}
	// The abandoned job is canceled rather than run to completion, and the
	// canceled key is retryable.
	unblock()
	waitUntil(t, "job canceled", func() bool {
		st, ok := s.Job(j.ID())
		return ok && st.State == StateCanceled
	})
	if m := s.Metrics(); m.Canceled < 1 {
		t.Fatalf("Canceled = %d, want >= 1", m.Canceled)
	}
	j2, hit, err := s.Submit(Key{GraphID: "late", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), false)
	if err != nil || hit {
		t.Fatalf("retry Submit: hit=%v err=%v", hit, err)
	}
	if res, err := s.Wait(context.Background(), j2); err != nil || res.Value == 0 {
		t.Fatalf("retry solve: res=%+v err=%v", res, err)
	}
}

// TestDoomedQueuedJobIsNotJoined covers the window where a queued job's
// context is already canceled (its only waiter timed out) but no worker
// has published its terminal state yet: a fresh Submit for the same key
// must start a new job, not inherit the doomed one's cancellation.
func TestDoomedQueuedJobIsNotJoined(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	unblock := block(t, s)
	defer unblock()

	key := Key{GraphID: "k", Opt: SolveOptions{Seed: 1}}
	g := cycle(t, 8)
	doomed, _, err := s.Submit(key, g, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx, doomed); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on doomed job: %v", err)
	}
	// The doomed job is still queued (the worker is blocked) with a dead
	// context; the retry must get a fresh job and a real result.
	fresh, hit, err := s.Submit(key, g, false)
	if err != nil {
		t.Fatal(err)
	}
	if hit || fresh == doomed {
		t.Fatalf("retry joined the doomed job (hit=%v)", hit)
	}
	unblock()
	if res, err := s.Wait(context.Background(), fresh); err != nil || res.Value != 4 {
		t.Fatalf("fresh job: res=%+v err=%v", res, err)
	}
	waitUntil(t, "doomed job published", func() bool {
		st, _ := s.Job(doomed.ID())
		return st.State == StateCanceled
	})
	// The doomed job's cleanup must not have evicted the fresh cached
	// result from the key cache.
	again, hit, err := s.Submit(key, g, false)
	if err != nil || !hit || again != fresh {
		t.Fatalf("cached result lost after doomed cleanup: hit=%v err=%v", hit, err)
	}
	if _, err := s.Wait(context.Background(), again); err != nil {
		t.Fatal(err)
	}
}

func TestMidRunCancellationAborts(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	j, _, err := s.Submit(Key{GraphID: "slow", Opt: slowOpts()}, slow(), false)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job running", func() bool { return s.Metrics().Running == 1 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want Canceled", err)
	}
	waitUntil(t, "solver aborted", func() bool {
		st, _ := s.Job(j.ID())
		return st.State == StateCanceled
	})
	if st, _ := s.Job(j.ID()); st.Err == "" {
		t.Fatalf("canceled job has no error: %+v", st)
	}
}

// TestHistoryBytesBoundsRetainedPartitions: finished jobs pin their InCut
// slices only up to the HistoryBytes budget, oldest first.
func TestHistoryBytesBoundsRetainedPartitions(t *testing.T) {
	s := New(Config{Workers: 1, HistoryBytes: 10}) // one 8-byte partition fits, two do not
	defer shutdown(t, s)
	g := cycle(t, 8)
	solve := func(seed int64) *Job {
		j, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: seed, WantPartition: true}}, g, false)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := s.Wait(context.Background(), j); err != nil || len(res.InCut) != 8 {
			t.Fatalf("solve %d: res=%+v err=%v", seed, res, err)
		}
		return j
	}
	first, second := solve(1), solve(2)
	if _, ok := s.Job(first.ID()); ok {
		t.Fatal("first job survived the partition-byte budget")
	}
	if _, ok := s.Job(second.ID()); !ok {
		t.Fatal("newest job was evicted")
	}
	// The evicted job's cached result went with it: same key re-solves.
	j, hit, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 1, WantPartition: true}}, g, false)
	if err != nil || hit {
		t.Fatalf("re-submit after eviction: hit=%v err=%v", hit, err)
	}
	if _, err := s.Wait(context.Background(), j); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 2})
	g := cycle(t, 12)
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: int64(i)}}, g, true)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, j := range jobs {
		st, ok := s.Job(j.ID())
		if !ok || st.State != StateDone {
			t.Fatalf("job %s not drained: %+v", j.ID(), st)
		}
	}
	if _, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 99}}, g, false); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Shutdown = %v, want ErrDraining", err)
	}
}

func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1})
	j, _, err := s.Submit(Key{GraphID: "slow", Opt: slowOpts()}, slow(), true)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job running", func() bool { return s.Metrics().Running == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	st, _ := s.Job(j.ID())
	if st.State != StateCanceled {
		t.Fatalf("straggler state = %s, want canceled", st.State)
	}
}
