package sched

import (
	"context"
	"strings"
	"testing"
)

// TestIDPrefix pins the cluster-wide job-ID contract: a scheduler given
// an IDPrefix mints every job ID under it, and the default prefix is
// empty (single-node IDs stay "job-N"). Cross-node job lookup routes by
// this prefix, so it may never silently change.
func TestIDPrefix(t *testing.T) {
	s := New(Config{Workers: 1, IDPrefix: "n7-"})
	defer shutdown(t, s)
	j, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.ID(), "n7-job-") {
		t.Fatalf("job ID %q does not carry the configured prefix", j.ID())
	}

	plain := New(Config{Workers: 1})
	defer shutdown(t, plain)
	pj, _, err := plain.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 1}}, cycle(t, 8), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pj.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pj.ID(), "job-") {
		t.Fatalf("unprefixed scheduler minted %q, want job-N", pj.ID())
	}
}

// TestLocalAdapter pins the Submitter seam the cluster layer builds on:
// Local{Scheduler} routes Submit/Job/Cancel/InvalidateGraph through the
// scheduler unchanged, handles returned through the seam Wait like the
// concrete jobs they wrap, and the cache-hit boolean survives the
// adapter.
func TestLocalAdapter(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	var sub Submitter = Local{Scheduler: s}

	key := Key{GraphID: "g", Opt: SolveOptions{Seed: 5}}
	h, hit, err := sub.Submit(context.Background(), key, cycle(t, 8), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first submit reported a cache hit")
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The cycle's two lightest edges both weigh 2.
	if res.Value != 4 {
		t.Fatalf("cut value %d, want 4", res.Value)
	}

	if _, ok := sub.Job(h.ID()); !ok {
		t.Fatalf("seam lost job %q", h.ID())
	}
	h2, hit, err := sub.Submit(context.Background(), key, cycle(t, 8), SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || h2.ID() != h.ID() {
		t.Fatalf("repeat submit = (%q, hit=%v), want cached %q", h2.ID(), hit, h.ID())
	}
	if _, err := h2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	if n := sub.InvalidateGraph("g"); n == 0 {
		t.Fatal("InvalidateGraph dropped no cached results")
	}
	if sub.Cancel(h.ID()) {
		t.Fatal("Cancel reported success on a finished job")
	}
}
