package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	parcut "repro"
)

// saturationGraph builds a solve-heavy-enough graph for load tests.
func saturationGraph(seed int64) *parcut.Graph {
	return parcut.RandomGraph(150, 600, 40, seed)
}

// TestNoOversubscription pins the headline claim of the pool refactor:
// with W workers each owning a ⌈P/W⌉-wide executor, a fully loaded
// scheduler holds a fixed, small goroutine budget — not the
// workers × GOMAXPROCS (and transiently far worse) fan-out of per-call
// spawning. The bound checked is structural: pools cannot spawn beyond
// their width, so the ceiling holds at any sampling moment.
func TestNoOversubscription(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	const workers = 4
	s := New(Config{Workers: workers})
	width := s.Metrics().PoolWidth
	if want := (runtime.GOMAXPROCS(0) + workers - 1) / workers; width != want {
		t.Fatalf("PoolWidth = %d, want ceil(P/workers) = %d", width, want)
	}

	const jobs = 12
	var wg sync.WaitGroup
	var peak atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := int64(runtime.NumGoroutine())
			for {
				old := peak.Load()
				if g <= old || peak.CompareAndSwap(old, g) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 0; i < jobs; i++ {
		key := Key{GraphID: fmt.Sprintf("g%d", i), Opt: SolveOptions{Seed: int64(i)}}
		j, _, err := s.Submit(key, saturationGraph(int64(i)), SubmitOpts{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			if _, err := s.Wait(context.Background(), j); err != nil {
				t.Error(err)
			}
		}(j)
	}
	wg.Wait()
	close(stop)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Budget: the scheduler's own goroutines (workers + per-job waiters
	// in this test + sampler) plus each worker's pool lanes (width-1
	// persistent workers). Per-call spawning would blow through this on
	// any multi-core box: each solve alone used to start GOMAXPROCS
	// goroutines per primitive invocation, with nesting multiplying that.
	budget := int64(base + jobs + 2*workers + workers*(width-1) + 8)
	if got := peak.Load(); got > budget {
		t.Fatalf("peak goroutines %d exceeded pooled budget %d (base %d, workers %d, width %d)",
			got, budget, base, workers, width)
	}
}

// TestSolveParallelismConfig: an explicit width is honored and surfaced.
func TestSolveParallelismConfig(t *testing.T) {
	s := New(Config{Workers: 2, SolveParallelism: 3})
	defer s.Shutdown(context.Background())
	if got := s.Metrics().PoolWidth; got != 3 {
		t.Fatalf("PoolWidth = %d, want 3", got)
	}
	// Results on a partitioned scheduler match a plain sequential solve.
	g := saturationGraph(99)
	j, _, err := s.Submit(Key{GraphID: "g", Opt: SolveOptions{Seed: 4, WantPartition: true}}, g, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	want, err := parcut.MinCut(g, parcut.Options{Seed: 4, WantPartition: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.TreesScanned != want.TreesScanned {
		t.Fatalf("partitioned scheduler result %+v != sequential %+v", got, want)
	}
}

// BenchmarkSaturation measures scheduler throughput with N concurrent
// solves on partitioned executors — the load shape mincutd sees. Run with
// -benchtime to taste; the per-op metric is one full solve.
func BenchmarkSaturation(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	s := New(Config{Workers: workers, History: 4})
	defer s.Shutdown(context.Background())
	// Distinct seeds defeat the result cache so every op is a real solve.
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			key := Key{GraphID: fmt.Sprintf("bench%d", i), Opt: SolveOptions{Seed: i}}
			j, _, err := s.Submit(key, saturationGraph(7), SubmitOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Wait(context.Background(), j); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSolveSequentialReference is the seed-equivalent baseline: one
// solve at a time, full-machine executor. Saturated pooled throughput
// (BenchmarkSaturation ops/s x concurrency) should meet or beat it.
func BenchmarkSolveSequentialReference(b *testing.B) {
	g := saturationGraph(7)
	for i := 0; i < b.N; i++ {
		if _, err := parcut.MinCut(g, parcut.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
