package sched

import (
	"testing"
	"time"

	parcut "repro"
)

// newBareJob builds a job with just the event-log machinery wired, so the
// throttle and cap can be exercised directly without a worker pool.
func newBareJob(id string) *Job {
	return &Job{id: id, evWake: make(chan struct{})}
}

// eventTypes tallies a job's event log by type.
func eventTypes(j *Job) map[string]int {
	evs, _, _ := j.Events(0)
	out := map[string]int{}
	for _, ev := range evs {
		out[ev.Type]++
	}
	return out
}

// TestEventLogThrottlesProgressFlood: a solver hammering the progress
// hook within one phase must not grow the event log per call — counter
// updates inside progressEventInterval collapse into one event.
func TestEventLogThrottlesProgressFlood(t *testing.T) {
	s := &Scheduler{}
	j := newBareJob("job-t")
	const flood = 5000
	start := time.Now()
	for i := 0; i < flood; i++ {
		s.onProgress(j, parcut.ProgressSnapshot{Phase: "packing", PackRoundsDone: int64(i)})
	}
	elapsed := time.Since(start)
	types := eventTypes(j)
	if types["phase"] != 1 {
		t.Fatalf("phase events = %d, want 1 (single transition)", types["phase"])
	}
	// The throttle admits at most one progress event per interval elapsed
	// (+1 for the leading edge); everything else must collapse.
	maxProgress := int(elapsed/progressEventInterval) + 1
	if types["progress"] > maxProgress {
		t.Fatalf("flood of %d updates produced %d progress events in %v (max %d)",
			flood, types["progress"], elapsed, maxProgress)
	}
}

// TestEventLogPhaseTransitionsNotThrottled: phase changes always append,
// back-to-back or not — a client must never miss one.
func TestEventLogPhaseTransitionsNotThrottled(t *testing.T) {
	s := &Scheduler{}
	j := newBareJob("job-p")
	const flips = 40
	for i := 0; i < flips; i++ {
		phase := "packing"
		if i%2 == 1 {
			phase = "scan"
		}
		s.onProgress(j, parcut.ProgressSnapshot{Phase: phase})
	}
	if types := eventTypes(j); types["phase"] != flips {
		t.Fatalf("phase events = %d, want %d", types["phase"], flips)
	}
}

// TestEventLogCapKeepsTerminal: past maxJobEvents the limited events stop
// appending, but the terminal result still lands, so a capped log still
// ends the stream cleanly.
func TestEventLogCapKeepsTerminal(t *testing.T) {
	j := newBareJob("job-c")
	for i := 0; i < maxJobEvents+100; i++ {
		j.recordEvent(Event{Type: "progress", Phase: "scan"}, true)
	}
	evs, _, ended := j.Events(0)
	if len(evs) != maxJobEvents {
		t.Fatalf("capped log holds %d events, want %d", len(evs), maxJobEvents)
	}
	if ended {
		t.Fatal("log reports ended before the terminal event")
	}
	j.recordEvent(Event{Type: "result", Terminal: true}, false)
	evs, _, ended = j.Events(0)
	if len(evs) != maxJobEvents+1 || !ended || !evs[len(evs)-1].Terminal {
		t.Fatalf("terminal event missing from capped log: len=%d ended=%v", len(evs), ended)
	}
	// Sequence numbers stay dense so resume cursors stay exact.
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// A resume cursor past the end of the finished log: no events, ended.
	evs, _, ended = j.Events(len(evs) + 50)
	if len(evs) != 0 || !ended {
		t.Fatalf("cursor past finished log: %d events, ended=%v", len(evs), ended)
	}
}

// TestEventWakeOnAppend: each append closes the previous wake channel, so
// a parked streamer always observes the event that woke it.
func TestEventWakeOnAppend(t *testing.T) {
	j := newBareJob("job-w")
	_, wake, _ := j.Events(0)
	select {
	case <-wake:
		t.Fatal("wake channel closed before any append")
	default:
	}
	j.recordEvent(Event{Type: "state", State: StateQueued}, false)
	select {
	case <-wake:
	case <-time.After(time.Second):
		t.Fatal("append did not wake the streamer")
	}
	evs, _, _ := j.Events(0)
	if len(evs) != 1 || evs[0].Type != "state" {
		t.Fatalf("streamer woke to %+v", evs)
	}
}
