package engine

import (
	"context"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/progress"
)

func init() {
	// One init registers every built-in so the registration order — which
	// Names() exposes and tests pin — does not depend on file names.
	Register(geissmannEngine{})
	Register(stoerWagnerEngine{})
	Register(kargerSteinEngine{})
	Register(andersonBlellochEngine{})
}

// geissmannEngine is the paper solver (core.MinCutContext) behind the
// Engine seam: Geissmann–Gianinazzi tree packing + 2-respecting scan,
// O(m log⁴ n) work, O(log³ n) depth, Monte Carlo whp.
type geissmannEngine struct{}

func (geissmannEngine) Name() string { return "geissmann" }

func (geissmannEngine) Caps() Caps {
	return Caps{
		Seeded:            true,
		BoostDecomposable: true,
		ParallelPhases:    true,
		Phases:            []progress.Phase{progress.PhasePacking, progress.PhaseScan},
	}
}

func (geissmannEngine) Solve(ctx context.Context, g *graph.Graph, opt Options) (Result, error) {
	r, err := core.MinCutContext(ctx, g, core.Options{
		Seed:           opt.Seed,
		WantPartition:  opt.WantPartition,
		ParallelPhases: opt.ParallelPhases,
		Pool:           opt.Pool,
		Meter:          opt.Meter,
		Progress:       opt.Progress,
		Trace:          opt.Trace,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Value: r.Value, InCut: r.InCut, TreesScanned: r.TreesScanned}, nil
}
