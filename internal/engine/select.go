package engine

// Thresholds parameterize the Auto selection rule. The rule is
// intentionally coarse — a few comparisons on numbers the registry
// already has (n, m) — because the measured crossovers (paperbench -exp
// engines, BENCH_engines.json) are themselves coarse. The four-engine
// selection table it implements:
//
//	n <= SmallN                        → stoerwagner
//	n <= DenseN and m >= DenseFrac·n²  → stoerwagner
//	otherwise, n > ABN                 → andersonblelloch
//	otherwise                          → geissmann (Default)
//
// Tuned sequential Stoer–Wagner wins while the n³ term is small or the
// graph is dense enough that the polylog machinery has no sparsity to
// exploit. Past that region, both 2-respecting-scan engines pack the
// same trees and find bit-identical values, so the choice between them
// is purely a constant-factor race between geissmann's
// bough-decomposition scan and the Anderson–Blelloch heavy-path scan
// (internal/abscan), which does one log factor less work per tree.
// Karger–Stein is never auto-selected: on every measured cell it is
// dominated by one of the other three (it exists for cross-checking and
// as the Table 1 comparator).
type Thresholds struct {
	// SmallN: graphs with n <= SmallN go to stoerwagner regardless of
	// density.
	SmallN int
	// DenseN / DenseFrac: graphs with n <= DenseN whose edge count is at
	// least DenseFrac·n² also go to stoerwagner (dense enough that m is
	// Θ(n²), where the sequential baseline's cache-friendly inner loops
	// win longer).
	DenseN    int
	DenseFrac float64
	// ABN: above the stoerwagner region, graphs with n > ABN go to
	// andersonblelloch; at or below it they stay on geissmann. Both scans
	// return bit-identical values, so this threshold only moves time, not
	// answers.
	ABN int
}

// DefaultThresholds hold the shipped calibration, refreshed from the
// crossover measurements in BENCH_engines.json (paperbench -exp engines).
// Last measured: on the sparse family (m = 4n) stoerwagner wins through
// n = 512 (265 ms vs 294 ms) and loses at n = 1024 (2.0 s vs 0.94 s); on
// the dense family (m = n²/8) it still wins 14× at n = 512 (258 ms vs
// 3.7 s), so the dense rule extends one doubling past the sparse one.
// Between the two scan engines, andersonblelloch beat geissmann on every
// measured cell (e.g. sparse n = 1024: 883 ms vs 938 ms; n = 2048:
// 2.5 s vs 2.9 s; dense n = 512: 3.7 s vs 4.9 s), so ABN ships at 0 and
// geissmann is never auto-selected — the field exists so a hardware
// recalibration that finds a mid-size geissmann window can express it.
var DefaultThresholds = Thresholds{SmallN: 512, DenseN: 1024, DenseFrac: 0.125, ABN: 0}

// Select applies the thresholds to a graph with n vertices and m edges.
func (t Thresholds) Select(n, m int) string {
	if n <= t.SmallN {
		return "stoerwagner"
	}
	if n <= t.DenseN && float64(m) >= t.DenseFrac*float64(n)*float64(n) {
		return "stoerwagner"
	}
	if n > t.ABN {
		return "andersonblelloch"
	}
	return Default
}

// Select is the Auto rule at the default calibration.
func Select(n, m int) string {
	return DefaultThresholds.Select(n, m)
}
