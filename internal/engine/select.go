package engine

// Thresholds parameterize the Auto selection rule. The rule is
// intentionally coarse — two comparisons on numbers the registry already
// has (n, m) — because the measured crossover (paperbench -exp engines,
// BENCH_engines.json) is itself coarse: tuned sequential Stoer–Wagner
// wins while the n³ term is small or the graph is dense enough that the
// paper solver's O(m log⁴ n) machinery has no sparsity to exploit, and
// loses decisively afterwards. Karger–Stein is never auto-selected: on
// every measured cell it is dominated by one of the other two (it exists
// for cross-checking and as the Table 1 comparator).
type Thresholds struct {
	// SmallN: graphs with n <= SmallN go to stoerwagner regardless of
	// density.
	SmallN int
	// DenseN / DenseFrac: graphs with n <= DenseN whose edge count is at
	// least DenseFrac·n² also go to stoerwagner (dense enough that m is
	// Θ(n²), where the sequential baseline's cache-friendly inner loops
	// win longer).
	DenseN    int
	DenseFrac float64
}

// DefaultThresholds hold the shipped calibration, refreshed from the
// crossover measurements in BENCH_engines.json (paperbench -exp engines).
// Last measured: on the sparse family (m = 4n) stoerwagner wins through
// n = 512 (663 ms vs 768 ms) and loses at n = 1024 (5.0 s vs 2.5 s); on
// the dense family (m = n²/8) it still wins 19× at n = 512 (434 ms vs
// 8.2 s), so the dense rule extends one doubling past the sparse one.
var DefaultThresholds = Thresholds{SmallN: 512, DenseN: 1024, DenseFrac: 0.125}

// Select applies the thresholds to a graph with n vertices and m edges.
func (t Thresholds) Select(n, m int) string {
	if n <= t.SmallN {
		return "stoerwagner"
	}
	if n <= t.DenseN && float64(m) >= t.DenseFrac*float64(n)*float64(n) {
		return "stoerwagner"
	}
	return Default
}

// Select is the Auto rule at the default calibration.
func Select(n, m int) string {
	return DefaultThresholds.Select(n, m)
}
