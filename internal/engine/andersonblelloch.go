package engine

import (
	"context"
	"fmt"

	"repro/internal/abscan"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/packing"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/tree"
	"repro/internal/wd"
)

// andersonBlellochEngine shares the paper solver's outer loop — Karger
// tree packing (internal/packing), per-tree search, minimum-degree
// fallback — but searches each sampled tree with the Anderson–Blelloch
// compact 2-respecting scan (internal/abscan: heavy-path decomposition
// + one contraction ladder per sweep) instead of the bough
// decomposition and batched Minimum Path operations. Both searches are
// exact per tree and the packing is seeded identically, so the engine
// returns bit-identical cut values to geissmann at every pool width; it
// just gets there with one log factor less work and far less machinery
// per tree.
type andersonBlellochEngine struct{}

func (andersonBlellochEngine) Name() string { return "andersonblelloch" }

func (andersonBlellochEngine) Caps() Caps {
	return Caps{
		Seeded:            true,
		BoostDecomposable: true,
		ParallelPhases:    true,
		Phases:            []progress.Phase{progress.PhasePacking, progress.PhaseScan},
	}
}

func (andersonBlellochEngine) Solve(ctx context.Context, g *graph.Graph, opt Options) (Result, error) {
	n := g.N()
	if n < 2 {
		return Result{}, fmt.Errorf("andersonblelloch: minimum cut needs at least 2 vertices, have %d", n)
	}
	m := opt.Meter
	pool := opt.Pool
	// Disconnected graphs have a minimum cut of 0, same as core.
	_, labels, comps := mst.ForestWithLabels(n, g.Edges(), nil, pool, m)
	if comps > 1 {
		res := Result{Value: 0}
		if opt.WantPartition {
			inCut := make([]bool, n)
			ref := labels[0]
			pool.For(n, func(v int) { inCut[v] = labels[v] == ref })
			res.InCut = inCut
		}
		return res, nil
	}
	deg := g.WeightedDegrees()
	minDeg, minDegV := pool.MinInt64(deg)
	m.Add(int64(n), wd.CeilLog2(n))

	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("andersonblelloch: canceled before packing: %w", err)
	}
	sink := opt.Progress
	sink.EnterPhase(progress.PhasePacking)
	// Same seed derivation as core.MinCutContext, so the sampled trees —
	// and therefore the cut values — match geissmann's bit for bit.
	popt := packing.Options{Seed: opt.Seed + 1}
	packSp := opt.Trace.Child("packing")
	pk, err := packing.SampleTreesContext(ctx, g, popt, pool, m, sink, packSp)
	if err != nil {
		packSp.End()
		if ctx.Err() != nil {
			return Result{}, fmt.Errorf("andersonblelloch: tree packing canceled: %w", ctx.Err())
		}
		return Result{}, fmt.Errorf("andersonblelloch: tree packing failed: %v", err)
	}
	packSp.AttrInt("trees", int64(len(pk.Trees))).AttrInt("estimate", pk.Estimate).
		AttrInt("packings", int64(pk.Packings)).End()

	// One CSR adjacency, shared read-only by every tree's sweep.
	adj := g.BuildAdjOn(pool)
	type scanOut struct {
		finding abscan.Finding
		parent  []int32
		err     error
	}
	outs := make([]scanOut, len(pk.Trees))
	locals := make([]*wd.Meter, len(pk.Trees))
	sink.AddTrees(int64(len(pk.Trees)))
	sink.EnterPhase(progress.PhaseScan)
	scanSp := opt.Trace.Child("scan").AttrInt("trees", int64(len(pk.Trees)))
	var obs par.RegionFunc
	if scanSp.Active() {
		obs = func(name string, items, width int) func() {
			fsp := scanSp.Child(name).AttrInt("items", int64(items)).AttrInt("width", int64(width))
			return fsp.End
		}
	}
	pool.ForGrainRegion("fork:trees", obs, len(pk.Trees), 1, func(i int) {
		if err := ctx.Err(); err != nil {
			outs[i].err = fmt.Errorf("canceled: %w", err)
			return
		}
		tsp := scanSp.Child("tree-scan").AttrInt("tree", int64(i))
		defer tsp.End()
		edges := make([][2]int32, len(pk.Trees[i]))
		for j, ei := range pk.Trees[i] {
			e := g.Edge(int(ei))
			edges[j] = [2]int32{e.U, e.V}
		}
		locals[i] = new(wd.Meter)
		parent, err := tree.RootEdgeList(n, edges, 0, pool, locals[i])
		if err != nil {
			outs[i].err = err
			return
		}
		f, err := abscan.Scan(ctx, g, adj, deg, parent, opt.ParallelPhases, pool, locals[i], sink, tsp)
		outs[i] = scanOut{finding: f, parent: parent, err: err}
		if err == nil {
			sink.TreeDone()
		}
	})
	scanSp.End()
	m.Par(locals...)
	best := Result{Value: minDeg, TreesScanned: len(pk.Trees)}
	bestTree := -1
	for i, o := range outs {
		if o.err != nil {
			return Result{}, fmt.Errorf("andersonblelloch: tree %d scan failed: %w", i, o.err)
		}
		if o.finding.Value < best.Value {
			best.Value = o.finding.Value
			bestTree = i
		}
	}
	if opt.WantPartition {
		if bestTree < 0 {
			inCut := make([]bool, n)
			inCut[minDegV] = true
			best.InCut = inCut
		} else {
			inCut, err := abscan.Witness(g, outs[bestTree].parent, outs[bestTree].finding, pool, m)
			if err != nil {
				return Result{}, fmt.Errorf("andersonblelloch: witness extraction failed: %v", err)
			}
			best.InCut = inCut
		}
	}
	return best, nil
}
