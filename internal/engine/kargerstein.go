package engine

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/progress"
)

// kargerSteinEngine serves baseline.KargerSteinContext: randomized
// recursive contraction, Θ(n² log³ n) work per solve (⌈log²n⌉+1 pooled
// trials), seedable and boost-decomposable like the paper solver.
type kargerSteinEngine struct{}

func (kargerSteinEngine) Name() string { return "kargerstein" }

func (kargerSteinEngine) Caps() Caps {
	return Caps{
		Seeded:            true,
		BoostDecomposable: true,
		Phases:            []progress.Phase{progress.PhaseContract},
	}
}

func (kargerSteinEngine) Solve(ctx context.Context, g *graph.Graph, opt Options) (Result, error) {
	v, inCut, err := baseline.KargerSteinContext(ctx, g, opt.Seed, opt.Pool, opt.Progress, opt.Trace)
	if err != nil {
		return Result{}, err
	}
	if !opt.WantPartition {
		inCut = nil
	}
	return Result{Value: v, InCut: inCut, TreesScanned: baseline.KargerSteinTrials(g.N())}, nil
}
