package engine

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/par"
)

// TestRegistryBuiltins: the four built-in engines register in order, each
// resolvable by name, with the capability matrix the upper layers gate on.
func TestRegistryBuiltins(t *testing.T) {
	want := []string{"geissmann", "stoerwagner", "kargerstein", "andersonblelloch"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	caps := map[string]Caps{}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		if e.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, e.Name())
		}
		caps[name] = e.Caps()
	}
	if !caps["stoerwagner"].Exact || caps["stoerwagner"].Seeded || caps["stoerwagner"].BoostDecomposable {
		t.Fatalf("stoerwagner caps = %+v, want exact, unseeded, not boostable", caps["stoerwagner"])
	}
	if caps["geissmann"].Exact || !caps["geissmann"].Seeded || !caps["geissmann"].BoostDecomposable || !caps["geissmann"].ParallelPhases {
		t.Fatalf("geissmann caps = %+v", caps["geissmann"])
	}
	if caps["kargerstein"].Exact || !caps["kargerstein"].Seeded || !caps["kargerstein"].BoostDecomposable || caps["kargerstein"].ParallelPhases {
		t.Fatalf("kargerstein caps = %+v", caps["kargerstein"])
	}
	ab := caps["andersonblelloch"]
	if ab.Exact || !ab.Seeded || !ab.BoostDecomposable || !ab.ParallelPhases {
		t.Fatalf("andersonblelloch caps = %+v, want seeded, boostable, parallel-phases, not exact", ab)
	}
	if !reflect.DeepEqual(ab.Phases, caps["geissmann"].Phases) {
		t.Fatalf("andersonblelloch phases = %v, want geissmann's %v (same outer loop)", ab.Phases, caps["geissmann"].Phases)
	}
}

func TestResolve(t *testing.T) {
	if e, err := Resolve("", 10_000, 40_000); err != nil || e.Name() != Default {
		t.Fatalf(`Resolve("") = %v, %v; want the default engine`, e, err)
	}
	if e, err := Resolve("kargerstein", 10, 20); err != nil || e.Name() != "kargerstein" {
		t.Fatalf("Resolve(kargerstein) = %v, %v", e, err)
	}
	if _, err := Resolve("edmondskarp", 10, 20); err == nil {
		t.Fatal("Resolve of an unknown engine succeeded")
	}
	// Auto: small goes to the exact baseline, large sparse to the
	// Anderson–Blelloch scan (which beat geissmann on every measured
	// cell, so ABN ships at 0), large-and-dense to the baseline again.
	if e, _ := Resolve(Auto, 100, 400); e.Name() != "stoerwagner" {
		t.Fatalf("auto(100, 400) = %s, want stoerwagner", e.Name())
	}
	if e, _ := Resolve(Auto, 4096, 16_384); e.Name() != "andersonblelloch" {
		t.Fatalf("auto(4096, 16384) = %s, want andersonblelloch", e.Name())
	}
	if e, _ := Resolve(Auto, 1024, 1024*1024/4); e.Name() != "stoerwagner" {
		t.Fatalf("auto(1024, dense) = %s, want stoerwagner", e.Name())
	}
}

func TestSelectThresholds(t *testing.T) {
	// A hypothetical calibration with a mid-size geissmann window
	// (SmallN < n <= ABN), to exercise all four rows of the table.
	tr := Thresholds{SmallN: 512, DenseN: 1024, DenseFrac: 0.125, ABN: 2048}
	cases := []struct {
		n, m int
		want string
	}{
		{2, 1, "stoerwagner"},
		{512, 2048, "stoerwagner"},        // at SmallN
		{513, 2052, Default},              // just past SmallN, sparse, <= ABN
		{1024, 1024 * 128, "stoerwagner"}, // <= DenseN and m = n²/8
		{1024, 1024*128 - 1, Default},     // a hair under the density bar
		{1025, 1025 * 1025, Default},      // past DenseN, density irrelevant
		{2048, 8192, Default},             // at ABN
		{2049, 8196, "andersonblelloch"},  // just past ABN
		{100_000, 400_000, "andersonblelloch"},
	}
	for _, c := range cases {
		if got := tr.Select(c.n, c.m); got != c.want {
			t.Errorf("Select(%d, %d) = %s, want %s", c.n, c.m, got, c.want)
		}
	}
	// The shipped calibration has no geissmann window: andersonblelloch
	// won every measured cell, so ABN is 0.
	if got := Select(4096, 16_384); got != "andersonblelloch" {
		t.Errorf("shipped Select(4096, 16384) = %s, want andersonblelloch", got)
	}
}

// checkPartition verifies a WantPartition result: a real two-sided
// partition whose re-evaluated cut weight equals the reported value.
func checkPartition(t *testing.T, g *graph.Graph, name string, res Result) {
	t.Helper()
	if len(res.InCut) != g.N() {
		t.Fatalf("%s: partition has %d entries for n=%d", name, len(res.InCut), g.N())
	}
	side := 0
	for _, in := range res.InCut {
		if in {
			side++
		}
	}
	if side == 0 || side == g.N() {
		t.Fatalf("%s: degenerate partition (%d of %d on the cut side)", name, side, g.N())
	}
	if v := g.CutValue(res.InCut); v != res.Value {
		t.Fatalf("%s: partition re-evaluates to %d, reported value %d", name, v, res.Value)
	}
}

// TestCrossEngineEquivalence solves ~50 random connected graphs of varied
// density with the paper engine, the Anderson–Blelloch engine, and the
// exact baseline: every value must match — and andersonblelloch must
// match geissmann bit for bit, since it packs the same trees and both
// per-tree searches are exact — and each engine's partition must
// re-evaluate to that value. The (much slower) Karger–Stein engine is
// cross-checked on the smallest graphs. Runs under -race in CI.
func TestCrossEngineEquivalence(t *testing.T) {
	t.Parallel()
	geis, _ := Lookup("geissmann")
	ab, _ := Lookup("andersonblelloch")
	sw, _ := Lookup("stoerwagner")
	ks, _ := Lookup("kargerstein")
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		n := 16 + rng.Intn(80)
		maxM := n * (n - 1) / 2
		// Sweep density from barely-connected to near-complete.
		m := n - 1 + rng.Intn(maxM-(n-1)+1)
		g := gen.RandomConnected(n, m, 50, int64(1000+i))
		opt := Options{Seed: int64(i), WantPartition: true}
		sres, err := sw.Solve(ctx, g, opt)
		if err != nil {
			t.Fatalf("graph %d (n=%d m=%d): stoerwagner: %v", i, n, m, err)
		}
		gres, err := geis.Solve(ctx, g, opt)
		if err != nil {
			t.Fatalf("graph %d (n=%d m=%d): geissmann: %v", i, n, m, err)
		}
		if gres.Value != sres.Value {
			t.Fatalf("graph %d (n=%d m=%d): geissmann=%d stoerwagner=%d", i, n, m, gres.Value, sres.Value)
		}
		ares, err := ab.Solve(ctx, g, opt)
		if err != nil {
			t.Fatalf("graph %d (n=%d m=%d): andersonblelloch: %v", i, n, m, err)
		}
		if ares.Value != gres.Value {
			t.Fatalf("graph %d (n=%d m=%d): andersonblelloch=%d geissmann=%d (must be bit-identical)",
				i, n, m, ares.Value, gres.Value)
		}
		if ares.TreesScanned != gres.TreesScanned {
			t.Fatalf("graph %d: andersonblelloch scanned %d trees, geissmann %d (same packing expected)",
				i, ares.TreesScanned, gres.TreesScanned)
		}
		checkPartition(t, g, "stoerwagner", sres)
		checkPartition(t, g, "geissmann", gres)
		checkPartition(t, g, "andersonblelloch", ares)
		if i%10 == 0 && n <= 48 {
			kres, err := ks.Solve(ctx, g, opt)
			if err != nil {
				t.Fatalf("graph %d: kargerstein: %v", i, err)
			}
			if kres.Value != sres.Value {
				t.Fatalf("graph %d (n=%d m=%d): kargerstein=%d exact=%d", i, n, m, kres.Value, sres.Value)
			}
			checkPartition(t, g, "kargerstein", kres)
		}
	}
}

// TestWidthDeterminism: every engine returns a bit-identical Result at
// pool widths 1, 2, 7, and GOMAXPROCS — the repo's invariant that the
// executor width is a throughput knob, never a semantic one.
func TestWidthDeterminism(t *testing.T) {
	t.Parallel()
	g := gen.RandomConnected(72, 600, 40, 4242)
	widths := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for _, name := range Names() {
		e, _ := Lookup(name)
		var ref Result
		for wi, w := range widths {
			pool := par.NewPool(w)
			res, err := e.Solve(context.Background(), g, Options{Seed: 5, WantPartition: true, Pool: pool})
			pool.Close()
			if err != nil {
				t.Fatalf("%s at width %d: %v", name, w, err)
			}
			if wi == 0 {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("%s: width %d result %+v differs from width 1 result %+v", name, w, res, ref)
			}
		}
	}
}
