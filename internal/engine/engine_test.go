package engine

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/par"
)

// TestRegistryBuiltins: the three built-in engines register in order, each
// resolvable by name, with the capability matrix the upper layers gate on.
func TestRegistryBuiltins(t *testing.T) {
	want := []string{"geissmann", "stoerwagner", "kargerstein"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	caps := map[string]Caps{}
	for _, name := range want {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		if e.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, e.Name())
		}
		caps[name] = e.Caps()
	}
	if !caps["stoerwagner"].Exact || caps["stoerwagner"].Seeded || caps["stoerwagner"].BoostDecomposable {
		t.Fatalf("stoerwagner caps = %+v, want exact, unseeded, not boostable", caps["stoerwagner"])
	}
	if caps["geissmann"].Exact || !caps["geissmann"].Seeded || !caps["geissmann"].BoostDecomposable || !caps["geissmann"].ParallelPhases {
		t.Fatalf("geissmann caps = %+v", caps["geissmann"])
	}
	if caps["kargerstein"].Exact || !caps["kargerstein"].Seeded || !caps["kargerstein"].BoostDecomposable || caps["kargerstein"].ParallelPhases {
		t.Fatalf("kargerstein caps = %+v", caps["kargerstein"])
	}
}

func TestResolve(t *testing.T) {
	if e, err := Resolve("", 10_000, 40_000); err != nil || e.Name() != Default {
		t.Fatalf(`Resolve("") = %v, %v; want the default engine`, e, err)
	}
	if e, err := Resolve("kargerstein", 10, 20); err != nil || e.Name() != "kargerstein" {
		t.Fatalf("Resolve(kargerstein) = %v, %v", e, err)
	}
	if _, err := Resolve("edmondskarp", 10, 20); err == nil {
		t.Fatal("Resolve of an unknown engine succeeded")
	}
	// Auto: small goes to the exact baseline, large sparse to the paper
	// engine, large-and-dense to the baseline again.
	if e, _ := Resolve(Auto, 100, 400); e.Name() != "stoerwagner" {
		t.Fatalf("auto(100, 400) = %s, want stoerwagner", e.Name())
	}
	if e, _ := Resolve(Auto, 4096, 16_384); e.Name() != Default {
		t.Fatalf("auto(4096, 16384) = %s, want %s", e.Name(), Default)
	}
	if e, _ := Resolve(Auto, 1024, 1024*1024/4); e.Name() != "stoerwagner" {
		t.Fatalf("auto(1024, dense) = %s, want stoerwagner", e.Name())
	}
}

func TestSelectThresholds(t *testing.T) {
	tr := Thresholds{SmallN: 512, DenseN: 1024, DenseFrac: 0.125}
	cases := []struct {
		n, m int
		want string
	}{
		{2, 1, "stoerwagner"},
		{512, 2048, "stoerwagner"},        // at SmallN
		{513, 2052, Default},              // just past SmallN, sparse
		{1024, 1024 * 128, "stoerwagner"}, // <= DenseN and m = n²/8
		{1024, 1024*128 - 1, Default},     // a hair under the density bar
		{1025, 1025 * 1025, Default},      // past DenseN, density irrelevant
		{100_000, 400_000, Default},
	}
	for _, c := range cases {
		if got := tr.Select(c.n, c.m); got != c.want {
			t.Errorf("Select(%d, %d) = %s, want %s", c.n, c.m, got, c.want)
		}
	}
}

// checkPartition verifies a WantPartition result: a real two-sided
// partition whose re-evaluated cut weight equals the reported value.
func checkPartition(t *testing.T, g *graph.Graph, name string, res Result) {
	t.Helper()
	if len(res.InCut) != g.N() {
		t.Fatalf("%s: partition has %d entries for n=%d", name, len(res.InCut), g.N())
	}
	side := 0
	for _, in := range res.InCut {
		if in {
			side++
		}
	}
	if side == 0 || side == g.N() {
		t.Fatalf("%s: degenerate partition (%d of %d on the cut side)", name, side, g.N())
	}
	if v := g.CutValue(res.InCut); v != res.Value {
		t.Fatalf("%s: partition re-evaluates to %d, reported value %d", name, v, res.Value)
	}
}

// TestCrossEngineEquivalence solves ~50 random connected graphs of varied
// density with the paper engine and the exact baseline: every value must
// match, and each engine's partition must re-evaluate to that value. The
// (much slower) Karger–Stein engine is cross-checked on the smallest
// graphs. Runs under -race in CI.
func TestCrossEngineEquivalence(t *testing.T) {
	t.Parallel()
	geis, _ := Lookup("geissmann")
	sw, _ := Lookup("stoerwagner")
	ks, _ := Lookup("kargerstein")
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		n := 16 + rng.Intn(80)
		maxM := n * (n - 1) / 2
		// Sweep density from barely-connected to near-complete.
		m := n - 1 + rng.Intn(maxM-(n-1)+1)
		g := gen.RandomConnected(n, m, 50, int64(1000+i))
		opt := Options{Seed: int64(i), WantPartition: true}
		sres, err := sw.Solve(ctx, g, opt)
		if err != nil {
			t.Fatalf("graph %d (n=%d m=%d): stoerwagner: %v", i, n, m, err)
		}
		gres, err := geis.Solve(ctx, g, opt)
		if err != nil {
			t.Fatalf("graph %d (n=%d m=%d): geissmann: %v", i, n, m, err)
		}
		if gres.Value != sres.Value {
			t.Fatalf("graph %d (n=%d m=%d): geissmann=%d stoerwagner=%d", i, n, m, gres.Value, sres.Value)
		}
		checkPartition(t, g, "stoerwagner", sres)
		checkPartition(t, g, "geissmann", gres)
		if i%10 == 0 && n <= 48 {
			kres, err := ks.Solve(ctx, g, opt)
			if err != nil {
				t.Fatalf("graph %d: kargerstein: %v", i, err)
			}
			if kres.Value != sres.Value {
				t.Fatalf("graph %d (n=%d m=%d): kargerstein=%d exact=%d", i, n, m, kres.Value, sres.Value)
			}
			checkPartition(t, g, "kargerstein", kres)
		}
	}
}

// TestWidthDeterminism: every engine returns a bit-identical Result at
// pool widths 1, 2, 7, and GOMAXPROCS — the repo's invariant that the
// executor width is a throughput knob, never a semantic one.
func TestWidthDeterminism(t *testing.T) {
	t.Parallel()
	g := gen.RandomConnected(72, 600, 40, 4242)
	widths := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for _, name := range Names() {
		e, _ := Lookup(name)
		var ref Result
		for wi, w := range widths {
			pool := par.NewPool(w)
			res, err := e.Solve(context.Background(), g, Options{Seed: 5, WantPartition: true, Pool: pool})
			pool.Close()
			if err != nil {
				t.Fatalf("%s at width %d: %v", name, w, err)
			}
			if wi == 0 {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("%s: width %d result %+v differs from width 1 result %+v", name, w, res, ref)
			}
		}
	}
}
