// Package engine makes the solver backend a first-class, selectable
// resource. An Engine computes one minimum cut run behind a narrow seam —
// Solve(ctx, graph, Options) — with the same cross-cutting facilities the
// paper solver enjoys threaded through Options: cooperative cancellation,
// a bounded-width par.Pool, a progress sink, and a trace span. The
// registry names each engine so the scheduler can key result caches, the
// HTTP API can accept an "engine" field, and metrics/traces can label
// work by backend.
//
// Four engines are built in:
//
//   - "geissmann": the paper's parallel solver (core.MinCutContext) —
//     near-linear work, polylog depth, Monte Carlo, boost-decomposable.
//   - "andersonblelloch": the same tree packing searched with the
//     Anderson–Blelloch compact 2-respecting scan (internal/abscan) —
//     one log factor less work per tree, bit-identical cut values to
//     geissmann.
//   - "stoerwagner": the exact deterministic O(n³) baseline — the right
//     choice for small or dense graphs where polylog machinery loses to
//     tuned sequential code.
//   - "kargerstein": randomized recursive contraction, Θ(n² log³ n) —
//     seedable and boost-decomposable, kept for cross-checking.
//
// Engines declare capabilities (Caps) so upper layers can gate features
// structurally instead of by name: boost fan-out only decomposes solves
// on engines whose extra seeded runs actually change the answer, and
// options an engine ignores are normalized away before result-cache
// keying so equivalent requests share cache entries.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
	"repro/internal/wd"
)

// Default is the engine used when a caller names none: the paper's solver.
const Default = "geissmann"

// Auto is the pseudo-engine name that selects a concrete engine from the
// graph's size via Select. It never reaches Solve: resolve it with
// Resolve before caching or scheduling so "auto" and an explicit choice
// of the same engine share result-cache entries.
const Auto = "auto"

// Options carry one run's inputs and instrumentation. Every field mirrors
// the corresponding parcut/core option; engines ignore fields their Caps
// do not claim (e.g. Seed on an exact engine), and the normalization in
// upper layers relies on that.
type Options struct {
	// Seed fixes the run's randomness; ignored by engines with
	// Caps.Seeded == false.
	Seed int64
	// WantPartition requests InCut in the result. Engines that compute a
	// partition anyway (the dense baselines) still return nil without it,
	// so results are canonical for caching.
	WantPartition bool
	// ParallelPhases selects the paper solver's concurrent bough-phase
	// schedule; ignored by engines with Caps.ParallelPhases == false.
	ParallelPhases bool
	// Pool is the executor the run's parallel primitives use (nil = the
	// shared default pool). Results are identical at every pool width.
	Pool *par.Pool
	// Meter, when non-nil, accumulates Work-Depth model costs (only the
	// paper solver meters itself today).
	Meter *wd.Meter
	// Progress, when non-nil, receives live phase/counter updates at the
	// run's cancellation seams.
	Progress *progress.Sink
	// Trace, when active, receives the run's phase span tree.
	Trace trace.SpanRef
}

// Result is one run's outcome.
type Result struct {
	// Value is the cut weight found by this run.
	Value int64
	// InCut marks one side of the cut (nil unless Options.WantPartition).
	InCut []bool
	// TreesScanned counts the engine's coarse work units: spanning trees
	// scanned (geissmann), contraction trials (kargerstein), 0 for the
	// single-pass exact baseline.
	TreesScanned int
}

// Caps declare what an engine can do, so feature gating upstream is
// structural rather than name-based.
type Caps struct {
	// Exact: the result is the true minimum cut deterministically (not
	// Monte Carlo). Exact engines gain nothing from boosting.
	Exact bool
	// Seeded: the result depends on Options.Seed.
	Seeded bool
	// BoostDecomposable: repeating the run with BoostSeed-derived seeds
	// and taking the minimum improves the failure probability, and such a
	// boosted solve may be decomposed into independent sub-runs (the
	// scheduler's boost fan-out).
	BoostDecomposable bool
	// ParallelPhases: the engine honors Options.ParallelPhases.
	ParallelPhases bool
	// Phases lists the progress phases the engine reports, in order.
	Phases []progress.Phase
}

// Engine computes one minimum cut run. Implementations must be safe for
// concurrent Solve calls and deterministic in (graph, Options.Seed) at
// every pool width.
type Engine interface {
	// Name is the engine's registry key, wire name, and metric label.
	Name() string
	// Caps reports the engine's capabilities.
	Caps() Caps
	// Solve computes one run. Boosting (minimum over several seeded runs)
	// is the caller's loop, gated on Caps.BoostDecomposable.
	Solve(ctx context.Context, g *graph.Graph, opt Options) (Result, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Engine)
	regOrder []string
)

// Register adds an engine under its Name. It panics on a duplicate or
// empty name — registration is a process-setup step, not a runtime path.
func Register(e Engine) {
	name := e.Name()
	if name == "" || name == Auto {
		panic(fmt.Sprintf("engine: invalid engine name %q", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate engine %q", name))
	}
	registry[name] = e
	regOrder = append(regOrder, name)
}

// Lookup returns the engine registered under name.
func Lookup(name string) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names lists the registered engines in registration order (the built-ins
// first: geissmann, stoerwagner, kargerstein, andersonblelloch).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// Resolve maps a requested engine name to a concrete Engine: "" means
// Default, Auto selects by the graph's size (n vertices, m edges), and
// anything else must be registered. The error lists the valid names.
func Resolve(name string, n, m int) (Engine, error) {
	switch name {
	case "":
		name = Default
	case Auto:
		name = Select(n, m)
	}
	e, ok := Lookup(name)
	if !ok {
		valid := Names()
		sort.Strings(valid)
		return nil, fmt.Errorf("engine: unknown engine %q (have %s, %s)",
			name, strings.Join(valid, ", "), Auto)
	}
	return e, nil
}
