package engine

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/progress"
)

// stoerWagnerEngine serves baseline.StoerWagnerContext: exact,
// deterministic, O(n³). Seed-insensitive and single-run (boosting an
// exact algorithm is pure waste), so upper layers normalize Seed and
// Boost away before cache keying.
type stoerWagnerEngine struct{}

func (stoerWagnerEngine) Name() string { return "stoerwagner" }

func (stoerWagnerEngine) Caps() Caps {
	return Caps{
		Exact:  true,
		Phases: []progress.Phase{progress.PhaseContract},
	}
}

func (stoerWagnerEngine) Solve(ctx context.Context, g *graph.Graph, opt Options) (Result, error) {
	v, inCut, err := baseline.StoerWagnerContext(ctx, g, opt.Pool, opt.Progress, opt.Trace)
	if err != nil {
		return Result{}, err
	}
	if !opt.WantPartition {
		inCut = nil
	}
	return Result{Value: v, InCut: inCut}, nil
}
