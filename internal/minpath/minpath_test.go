package minpath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/tree"
	"repro/internal/wd"
)

func mustTree(t *testing.T, parent []int32) *tree.Tree {
	t.Helper()
	tr, err := tree.FromParent(parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomParent(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	parent := make([]int32, n)
	parent[perm[0]] = tree.None
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	return parent
}

func randomOps(n, k int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, k)
	for i := range ops {
		v := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = MinOp(v)
		} else {
			ops[i] = AddOp(v, int64(rng.Intn(41)-20))
		}
	}
	return ops
}

func checkBatch(t *testing.T, tr *tree.Tree, w0 []int64, ops []Op) {
	t.Helper()
	want := NewNaive(tr, w0).Run(ops)
	s := New(tr, nil, nil)
	got := s.RunBatch(w0, ops, nil, nil)
	for i := range ops {
		if ops[i].Query && got[i] != want[i] {
			t.Fatalf("query op %d (vertex %d): got %d want %d", i, ops[i].Vertex, got[i], want[i])
		}
	}
}

// TestFigure3Operations pins the semantics of Figure 3: MinPath(v4)
// takes the minimum over the root path of v4; AddPath(v8, x) adds along
// the root path of v8.
func TestFigure3Operations(t *testing.T) {
	// Tree shaped like Figure 3 (1-based labels in the paper; 0-based
	// here, vertex i has weight w_{i+1} = 10*(i+1)):
	//        0
	//      / | \
	//     1  2  3
	//    / \    |
	//   4  5    7
	//   |
	//   6          (so v8 of the paper = vertex 7 here? we just need shape)
	parent := []int32{tree.None, 0, 0, 0, 1, 1, 4, 3}
	tr := mustTree(t, parent)
	w0 := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	s := New(tr, nil, nil)
	// MinPath(4): path 4 -> 1 -> 0: min(50, 20, 10) = 10.
	// AddPath(7, -100): path 7 -> 3 -> 0.
	// MinPath(3): path 3 -> 0: min(40-100, 10-100) = -90.
	ops := []Op{MinOp(4), AddOp(7, -100), MinOp(3), MinOp(6)}
	got := s.RunBatch(w0, ops, nil, nil)
	want := []int64{10, 0, -90, -90} // MinPath(6): 70,50,20,10-100 => -90
	for i, w := range want {
		if ops[i].Query && got[i] != w {
			t.Errorf("op %d: got %d want %d", i, got[i], w)
		}
	}
}

// TestFigure4PathDecomposition: operations decompose into at most
// log2(n)+1 prefix operations, one per crossed path.
func TestFigure4PathDecomposition(t *testing.T) {
	n := 1024
	tr := mustTree(t, randomParent(n, 5))
	s := New(tr, nil, nil)
	bound := int(wd.CeilLog2(n)) + 1
	if s.D.NumPhases > bound {
		t.Fatalf("decomposition has %d phases, bound %d", s.D.NumPhases, bound)
	}
	// Count segments crossed by a deep vertex's root path.
	deepest := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if tr.Depth[v] > tr.Depth[deepest] {
			deepest = v
		}
	}
	segs := map[int32]bool{}
	v := deepest
	for v != tree.None {
		segs[s.D.PathOf[v]] = true
		v = s.D.FrontParent[s.D.PathOf[v]]
	}
	if len(segs) > bound {
		t.Fatalf("root path crosses %d segments (bound %d)", len(segs), bound)
	}
}

func TestBatchOnPathTree(t *testing.T) {
	n := 100
	parent := make([]int32, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = int32(i - 1)
	}
	tr := mustTree(t, parent)
	w0 := make([]int64, n)
	for i := range w0 {
		w0[i] = int64((i*37)%100 - 50)
	}
	checkBatch(t, tr, w0, randomOps(n, 300, 1))
}

func TestBatchOnStarAndSingle(t *testing.T) {
	star := make([]int32, 33)
	star[0] = tree.None
	for i := 1; i < 33; i++ {
		star[i] = 0
	}
	tr := mustTree(t, star)
	w0 := make([]int64, 33)
	for i := range w0 {
		w0[i] = int64(i % 7)
	}
	checkBatch(t, tr, w0, randomOps(33, 200, 2))

	single := mustTree(t, []int32{tree.None})
	checkBatch(t, single, []int64{42}, []Op{MinOp(0), AddOp(0, -1), MinOp(0)})
}

func TestBatchRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 2 + int(seed*211)%400
		tr := mustTree(t, randomParent(n, seed))
		rng := rand.New(rand.NewSource(seed + 999))
		w0 := make([]int64, n)
		for i := range w0 {
			w0[i] = int64(rng.Intn(201) - 100)
		}
		checkBatch(t, tr, w0, randomOps(n, 1+int(seed*97)%500, seed+5))
	}
}

func TestRunBatchDoesNotMutateWeights(t *testing.T) {
	tr := mustTree(t, randomParent(50, 3))
	w0 := make([]int64, 50)
	for i := range w0 {
		w0[i] = int64(i)
	}
	saved := make([]int64, 50)
	copy(saved, w0)
	s := New(tr, nil, nil)
	s.RunBatch(w0, randomOps(50, 100, 7), nil, nil)
	for i := range w0 {
		if w0[i] != saved[i] {
			t.Fatal("RunBatch mutated the weight slice")
		}
	}
}

func TestStructureReuseAcrossBatches(t *testing.T) {
	tr := mustTree(t, randomParent(120, 11))
	s := New(tr, nil, nil)
	rng := rand.New(rand.NewSource(13))
	for batch := 0; batch < 4; batch++ {
		w0 := make([]int64, 120)
		for i := range w0 {
			w0[i] = int64(rng.Intn(100))
		}
		ops := randomOps(120, 150, int64(batch)*71+17)
		want := NewNaive(tr, w0).Run(ops)
		got := s.RunBatch(w0, ops, nil, nil)
		for i := range ops {
			if ops[i].Query && got[i] != want[i] {
				t.Fatalf("batch %d op %d: got %d want %d", batch, i, got[i], want[i])
			}
		}
	}
}

type quickCase struct {
	Seed int64
	N, K uint8
}

// Generate implements quick.Generator.
func (quickCase) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickCase{Seed: rng.Int63(), N: uint8(rng.Intn(120)), K: uint8(rng.Intn(200))})
}

// TestQuickMatchesNaive: property test across random trees, weights, and
// batches (Lemma 9 correctness).
func TestQuickMatchesNaive(t *testing.T) {
	property := func(c quickCase) bool {
		n := 1 + int(c.N)
		k := int(c.K)
		tr, err := tree.FromParent(randomParent(n, c.Seed))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(c.Seed + 1))
		w0 := make([]int64, n)
		for i := range w0 {
			w0[i] = int64(rng.Intn(101) - 50)
		}
		ops := randomOps(n, k, c.Seed+2)
		want := NewNaive(tr, w0).Run(ops)
		got := New(tr, nil, nil).RunBatch(w0, ops, nil, nil)
		for i := range ops {
			if ops[i].Query && got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(424242))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
