// Package minpath implements the paper's Minimum Path structure (§2.2,
// §3.4): a rooted tree with vertex weights supporting AddPath(v, x) — add
// x to every vertex on the path from v to the root — and MinPath(v) —
// smallest weight on that path. A batch of k mixed operations runs in
// O(k log n (log n + log k) + n log n) work and O(log n (log n + log k))
// depth (Lemma 9): the tree is decomposed into boughs (§3.3), each
// operation expands into at most log2(n)+1 Minimum Prefix operations (one
// per path of the decomposition crossed by its root path, Figure 4), and
// the per-path batches execute in parallel with the §3.1–3.2 machinery.
package minpath

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/minprefix"
	"repro/internal/par"
	"repro/internal/tree"
	"repro/internal/wd"
)

// Op is one Minimum Path operation: AddPath (Query false) adds X to all
// vertices on the path Vertex→root; MinPath (Query true) returns the
// minimum weight on that path. Batch position is the operation's time.
type Op struct {
	Query  bool
	Vertex int32
	X      int64
}

// AddOp and MinOp are convenience constructors.
func AddOp(v int32, x int64) Op { return Op{Vertex: v, X: x} }
func MinOp(v int32) Op          { return Op{Query: true, Vertex: v} }

// Structure is a Minimum Path structure over a fixed tree: the bough
// decomposition is built once and reused across batches.
type Structure struct {
	T *tree.Tree
	D *decomp.Decomposition
}

// New decomposes the tree (Lemma 7) and returns a reusable structure.
func New(t *tree.Tree, pool *par.Pool, m *wd.Meter) *Structure {
	return &Structure{T: t, D: decomp.Decompose(t, pool, m)}
}

// expOp is one Minimum Prefix operation produced by expanding a tree op.
type expOp struct {
	seg    int32
	leaf   int32
	expIdx int32 // position in expansion order, for result scatter
	query  bool
	x      int64
}

// RunBatch executes the ops in order against initial vertex weights w0,
// returning a slice with one entry per op (query results at query
// positions, 0 elsewhere). The weights conceptually revert for the next
// batch: RunBatch does not mutate w0.
func (s *Structure) RunBatch(w0 []int64, ops []Op, pool *par.Pool, m *wd.Meter) []int64 {
	n := s.T.N()
	if len(w0) != n {
		panic(fmt.Sprintf("minpath: %d weights for %d vertices", len(w0), n))
	}
	res := make([]int64, len(ops))
	if len(ops) == 0 {
		return res
	}
	k := len(ops)
	d := s.D
	// Pass 1: count each op's expansion length (segments crossed on the
	// way to the root, at most NumPhases by Lemma 7).
	off := make([]int64, k+1)
	pool.For(k, func(i int) {
		v := ops[i].Vertex
		if v < 0 || int(v) >= n {
			panic(fmt.Sprintf("minpath: op %d vertex %d out of range", i, v))
		}
		c := int64(0)
		for v != tree.None {
			c++
			v = d.FrontParent[d.PathOf[v]]
		}
		off[i+1] = c
	})
	total := pool.InclusiveSum(off[1:], off[1:]) // off[i], off[i+1) brackets op i
	m.Add(int64(k)*int64(d.NumPhases), int64(d.NumPhases)+wd.CeilLog2(k))
	// Pass 2: materialize the expansions in op (= time) order.
	exp := make([]expOp, total)
	pool.For(k, func(i int) {
		v := ops[i].Vertex
		at := off[i]
		for v != tree.None {
			p := d.PathOf[v]
			exp[at] = expOp{
				seg:    p,
				leaf:   d.PosOf[v],
				expIdx: int32(at),
				query:  ops[i].Query,
				x:      ops[i].X,
			}
			at++
			v = d.FrontParent[p]
		}
	})
	m.Add(total, int64(d.NumPhases))
	// Group by segment with a stable counting sort (segment ids are a
	// bounded universe, so this is a linear-work sort; time order within a
	// segment is preserved by scattering in expansion order).
	numSegs := len(d.Paths)
	segCount := make([]int64, numSegs+1)
	for _, e := range exp {
		segCount[e.seg+1]++
	}
	pool.InclusiveSum(segCount, segCount)
	sorted := make([]expOp, total)
	cursor := make([]int64, numSegs)
	copy(cursor, segCount[:numSegs])
	for _, e := range exp {
		sorted[cursor[e.seg]] = e
		cursor[e.seg]++
	}
	m.Add(3*total, wd.CeilLog2(int(total)))
	// Per-segment sub-batches run in parallel; results scatter back to
	// expansion order.
	expRes := make([]int64, total)
	var bounds []int64
	for s := 0; s < numSegs; s++ {
		if segCount[s] < segCount[s+1] {
			bounds = append(bounds, segCount[s])
		}
	}
	bounds = append(bounds, total)
	pool.ForGrain(len(bounds)-1, 1, func(bi int) {
		lo, hi := bounds[bi], bounds[bi+1]
		seg := sorted[lo].seg
		path := d.Paths[seg]
		weights := make([]int64, len(path))
		for i, v := range path {
			weights[i] = w0[v]
		}
		sub := make([]minprefix.Op, hi-lo)
		for i := lo; i < hi; i++ {
			sub[i-lo] = minprefix.Op{Query: sorted[i].query, Leaf: sorted[i].leaf, X: sorted[i].x}
		}
		subRes := minprefix.RunBatch(weights, sub, pool, m)
		for i := lo; i < hi; i++ {
			expRes[sorted[i].expIdx] = subRes[i-lo]
		}
	})
	// Reduce each query's expansion results to their minimum (§3.4: "the
	// smallest result of the O(log n) MinPrefix queries").
	pool.For(k, func(i int) {
		if !ops[i].Query {
			return
		}
		lo, hi := off[i], off[i+1]
		best := expRes[lo]
		for j := lo + 1; j < hi; j++ {
			if expRes[j] < best {
				best = expRes[j]
			}
		}
		res[i] = best
	})
	m.Add(total, int64(d.NumPhases))
	return res
}

// Naive is the walk-to-root reference executor used by tests.
type Naive struct {
	t *tree.Tree
	w []int64
}

// NewNaive copies w0.
func NewNaive(t *tree.Tree, w0 []int64) *Naive {
	w := make([]int64, len(w0))
	copy(w, w0)
	return &Naive{t: t, w: w}
}

// AddPath adds x to all vertices from v to the root.
func (s *Naive) AddPath(v int32, x int64) {
	for v != tree.None {
		s.w[v] += x
		v = s.t.Parent[v]
	}
}

// MinPath returns the smallest weight on the path from v to the root.
func (s *Naive) MinPath(v int32) int64 {
	best := s.w[v]
	v = s.t.Parent[v]
	for v != tree.None {
		if s.w[v] < best {
			best = s.w[v]
		}
		v = s.t.Parent[v]
	}
	return best
}

// Run executes a batch (result layout as in Structure.RunBatch).
func (s *Naive) Run(ops []Op) []int64 {
	res := make([]int64, len(ops))
	for i, op := range ops {
		if op.Query {
			res[i] = s.MinPath(op.Vertex)
		} else {
			s.AddPath(op.Vertex, op.X)
		}
	}
	return res
}
