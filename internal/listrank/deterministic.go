package listrank

import (
	"repro/internal/par"
	"repro/internal/wd"
)

// This file implements the deterministic variant the paper sketches at
// the end of §3.3.1: "Construct a 3-coloring of the tree and choose the
// color with the largest number of non-branching internal vertices" —
// on lists, the 3-coloring comes from Cole–Vishkin deterministic coin
// tossing (O(log* n) halving rounds), and each contraction round splices
// out the largest properly-colored class, which is an independent set by
// construction.

// threeColor computes a proper 3-coloring of the live nodes of the lists
// (adjacent nodes along next get different colors), deterministically.
// color and color2 are caller-provided scratch; pred is the predecessor
// array maintained by the contraction.
func threeColor(live []int32, nxt, pred, color, color2 []int32, pool *par.Pool, m *wd.Meter) {
	// Start from unique colors (node ids).
	for _, v := range live {
		color[v] = v
	}
	// Cole–Vishkin: replace each color by 2k+bit where k is the lowest
	// bit differing from the successor's color (synchronous: read old,
	// write new). O(log* n) rounds shrink the palette to {0..5}.
	maxColor := int32(len(color))
	for maxColor >= 6 {
		pool.ForGrain(len(live), 4096, func(i int) {
			v := live[i]
			s := nxt[v]
			var k int32
			if s == Nil {
				k = 0
			} else {
				diff := color[v] ^ color[s]
				for diff&1 == 0 {
					diff >>= 1
					k++
				}
			}
			color2[v] = 2*k + (color[v]>>k)&1
		})
		for _, v := range live {
			color[v] = color2[v]
		}
		// Color values bounded by v shrink to 2(bits(v)-1)+1.
		newMax := 2*int32(wd.CeilLog2(int(maxColor)+1)-1) + 1
		if newMax >= maxColor {
			break
		}
		maxColor = newMax
		m.Add(int64(len(live)), 1)
	}
	// Reduce {0..5} to {0,1,2}: each high color class is independent, so
	// its members can simultaneously pick the smallest color unused by
	// their neighbors.
	for c := int32(3); c <= 5; c++ {
		pool.ForGrain(len(live), 4096, func(i int) {
			v := live[i]
			if color[v] != c {
				return
			}
			used := [3]bool{}
			if s := nxt[v]; s != Nil && color[s] < 3 {
				used[color[s]] = true
			}
			if p := pred[v]; p != Nil && color[p] < 3 {
				used[color[p]] = true
			}
			for pick := int32(0); pick < 3; pick++ {
				if !used[pick] {
					color[v] = pick
					return
				}
			}
		})
		m.Add(int64(len(live)), 1)
	}
}

// RankDeterministic ranks with deterministic independent-set contraction:
// per round, 3-color the remaining lists and splice out the largest color
// class of interior nodes. Work O(n log n log* n), depth O(log n log* n),
// fully deterministic (the paper's derandomization of Lemma 8).
func RankDeterministic(next []int32, pool *par.Pool, m *wd.Meter) []int32 {
	n := len(next)
	nxt := make([]int32, n)
	pred := make([]int32, n)
	dist := make([]int32, n)
	for i := range pred {
		pred[i] = Nil
	}
	live := make([]int32, 0, n)
	for i, s := range next {
		nxt[i] = s
		if s != Nil {
			pred[s] = int32(i)
			dist[i] = 1
			live = append(live, int32(i))
		}
	}
	color := make([]int32, n)
	color2 := make([]int32, n)
	var rounds [][]splice
	const seqThreshold = 512
	for len(live) > seqThreshold {
		threeColor(live, nxt, pred, color, color2, pool, m)
		// Count interior candidates per color; splice the largest class.
		var counts [3]int
		for _, v := range live {
			if nxt[v] != Nil && pred[v] != Nil && color[v] < 3 {
				counts[color[v]]++
			}
		}
		bestColor := int32(0)
		for c := int32(1); c < 3; c++ {
			if counts[c] > counts[bestColor] {
				bestColor = c
			}
		}
		if counts[bestColor] == 0 {
			break // lists are all of length <= 2; finish sequentially
		}
		var removed []splice
		keep := live[:0]
		for _, v := range live {
			if color[v] == bestColor && nxt[v] != Nil && pred[v] != Nil {
				removed = append(removed, splice{node: v, succ: nxt[v], dist: dist[v]})
			} else {
				keep = append(keep, v)
			}
		}
		for _, sp := range removed {
			p := pred[sp.node]
			nxt[p] = sp.succ
			dist[p] += sp.dist
			pred[sp.succ] = p
		}
		live = keep
		rounds = append(rounds, removed)
		m.Add(int64(len(keep)+len(removed)), 1)
	}
	rank := finishRanking(n, nxt, pred, dist, rounds, pool, m)
	return rank
}

// finishRanking sequentially ranks the contracted lists and reintroduces
// spliced nodes round by round (shared with the random-mate engine).
func finishRanking(n int, nxt, pred, dist []int32, rounds [][]splice, pool *par.Pool, m *wd.Meter) []int32 {
	rank := make([]int32, n)
	for i := 0; i < n; i++ {
		if pred[i] == Nil && nxt[i] != Nil {
			var chain []int32
			v := int32(i)
			for v != Nil {
				chain = append(chain, v)
				v = nxt[v]
			}
			acc := int32(0)
			for j := len(chain) - 1; j >= 0; j-- {
				acc += dist[chain[j]] // dist[tail] is 0
				rank[chain[j]] = acc
			}
		}
	}
	for r := len(rounds) - 1; r >= 0; r-- {
		removed := rounds[r]
		pool.For(len(removed), func(k int) {
			sp := removed[k]
			rank[sp.node] = rank[sp.succ] + sp.dist
		})
		m.Add(int64(len(removed)), 1)
	}
	return rank
}
