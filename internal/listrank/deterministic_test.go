package listrank

import (
	"testing"

	"repro/internal/wd"
)

func TestDeterministicSimple(t *testing.T) {
	next := buildLists(6, []int32{3, 1, 5}, []int32{0, 2})
	want := []int32{1, 1, 0, 2, 0, 0}
	got := RankDeterministic(next, nil, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rank[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestDeterministicMatchesSequentialOnRandomForests(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 700 + int(seed)*311
		k := 1 + int(seed)%5
		next := randomLists(n, k, seed)
		want := RankSeq(next)
		got := RankDeterministic(next, nil, nil)
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("seed %d: rank[%d]=%d want %d", seed, i, got[i], want[i])
			}
		}
	}
}

func TestDeterministicLongList(t *testing.T) {
	n := 50000
	l := make([]int32, n)
	for i := range l {
		l[i] = int32(i)
	}
	next := buildLists(n, l)
	var m wd.Meter
	got := RankDeterministic(next, nil, &m)
	for i := 0; i < n; i += 997 {
		if got[i] != int32(n-1-i) {
			t.Fatalf("rank[%d]=%d want %d", i, got[i], n-1-i)
		}
	}
	if m.Work() == 0 {
		t.Error("meter not updated")
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	next := randomLists(5000, 3, 42)
	a := RankDeterministic(next, nil, nil)
	b := RankDeterministic(next, nil, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two runs differ")
		}
	}
}

func TestThreeColorProper(t *testing.T) {
	n := 20000
	l := make([]int32, n)
	for i := range l {
		l[i] = int32(i)
	}
	next := buildLists(n, l)
	pred := make([]int32, n)
	for i := range pred {
		pred[i] = Nil
	}
	live := make([]int32, 0, n)
	for i, s := range next {
		if s != Nil {
			pred[s] = int32(i)
		}
	}
	for i := 0; i < n; i++ {
		live = append(live, int32(i))
	}
	color := make([]int32, n)
	color2 := make([]int32, n)
	threeColor(live, next, pred, color, color2, nil, nil)
	for _, v := range live {
		if color[v] < 0 || color[v] > 2 {
			t.Fatalf("node %d has color %d outside {0,1,2}", v, color[v])
		}
		if s := next[v]; s != Nil && color[v] == color[s] {
			t.Fatalf("adjacent nodes %d,%d share color %d", v, s, color[v])
		}
	}
}
