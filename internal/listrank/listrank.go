// Package listrank implements parallel list ranking, the primitive behind
// the paper's Euler tours, bough ordering (§4.2 step 1), and bough finding
// (§3.3.1, which cites Anderson–Miller [1]). Given linked lists encoded as
// a successor array, ranking computes for every node its distance to the
// end of its list.
//
// Two engines are provided: pointer jumping (deterministic, O(n log n)
// work, O(log n) depth) and random-mate independent-set contraction
// (O(n) work in expectation, O(log n) depth w.h.p., the Las Vegas
// construction of Lemma 8). Both operate on forests of disjoint lists.
package listrank

import (
	"math/rand"

	"repro/internal/par"
	"repro/internal/wd"
)

// Nil marks a list tail in a successor array.
const Nil = int32(-1)

// Rank returns, for each node i, the number of nodes strictly after i in
// its list (tails get 0). next describes disjoint singly linked lists;
// next[i] == Nil ends a list. Pointer jumping, deterministic.
func Rank(next []int32, pool *par.Pool, m *wd.Meter) []int32 {
	n := len(next)
	rank := make([]int32, n)
	nxt := make([]int32, n)
	for i, s := range next {
		nxt[i] = s
		if s != Nil {
			rank[i] = 1
		}
	}
	rank2 := make([]int32, n)
	nxt2 := make([]int32, n)
	// After ceil(log2 n) doubling rounds every proper list has converged;
	// the cap makes cyclic (invalid) input terminate with garbage ranks on
	// the cycles instead of hanging, which callers detect by coverage.
	maxRounds := wd.CeilLog2(n) + 2
	for round := int64(0); round < maxRounds; round++ {
		alive := false
		for _, s := range nxt {
			if s != Nil {
				alive = true
				break
			}
		}
		if !alive {
			break
		}
		pool.For(n, func(i int) {
			s := nxt[i]
			if s == Nil {
				rank2[i] = rank[i]
				nxt2[i] = Nil
				return
			}
			rank2[i] = rank[i] + rank[s]
			nxt2[i] = nxt[s]
		})
		rank, rank2 = rank2, rank
		nxt, nxt2 = nxt2, nxt
		m.Add(int64(n), 1)
	}
	m.Add(int64(n), wd.CeilLog2(n))
	return rank
}

// splice records a node removed during random-mate contraction.
type splice struct {
	node, succ int32
	dist       int32
}

// RankRandomMate ranks with random-mate independent-set contraction
// seeded by seed (Las Vegas: the result is always exact; only the running
// time is random).
func RankRandomMate(next []int32, seed int64, pool *par.Pool, m *wd.Meter) []int32 {
	n := len(next)
	nxt := make([]int32, n)
	pred := make([]int32, n)
	dist := make([]int32, n)
	for i := range pred {
		pred[i] = Nil
	}
	live := make([]int32, 0, n)
	for i, s := range next {
		nxt[i] = s
		if s != Nil {
			pred[s] = int32(i)
			dist[i] = 1
			live = append(live, int32(i))
		}
	}
	// live holds nodes that still have a successor (removable candidates).
	rng := rand.New(rand.NewSource(seed))
	coins := make([]byte, n)
	var rounds [][]splice
	const seqThreshold = 512
	for len(live) > seqThreshold {
		for _, v := range live {
			coins[v] = byte(rng.Intn(2))
		}
		// Remove v iff coin(v)=1 and coin(next(v))=0: no two adjacent
		// nodes are removed, so all splices commute.
		var removed []splice
		keep := live[:0]
		for _, v := range live {
			s := nxt[v]
			if s != Nil && pred[v] != Nil && coins[v] == 1 && coins[s] == 0 {
				removed = append(removed, splice{node: v, succ: s, dist: dist[v]})
			} else {
				keep = append(keep, v)
			}
		}
		if len(removed) == 0 {
			live = keep
			continue
		}
		for _, sp := range removed {
			p := pred[sp.node]
			nxt[p] = sp.succ
			dist[p] += sp.dist
			pred[sp.succ] = p
		}
		// Rebuild the live set: nodes with a successor that were not removed.
		live = keep
		rounds = append(rounds, removed)
		m.Add(int64(len(keep)+len(removed)), 1)
	}
	m.Add(int64(len(live)), int64(seqThreshold))
	return finishRanking(n, nxt, pred, dist, rounds, pool, m)
}

// RankSeq is the sequential reference implementation used by tests.
func RankSeq(next []int32) []int32 {
	n := len(next)
	rank := make([]int32, n)
	pred := make([]int32, n)
	for i := range pred {
		pred[i] = Nil
	}
	hasSucc := make([]bool, n)
	for i, s := range next {
		if s != Nil {
			pred[s] = int32(i)
			hasSucc[i] = true
		}
	}
	for i := 0; i < n; i++ {
		if pred[i] == Nil && hasSucc[i] {
			// i is a head; walk the list.
			var chain []int32
			v := int32(i)
			for v != Nil {
				chain = append(chain, v)
				v = next[v]
			}
			for j, v := range chain {
				rank[v] = int32(len(chain) - 1 - j)
			}
		}
	}
	return rank
}
