package listrank

import (
	"math/rand"
	"testing"

	"repro/internal/wd"
)

// buildLists creates a successor array containing the given lists (each a
// sequence of node ids).
func buildLists(n int, lists ...[]int32) []int32 {
	next := make([]int32, n)
	for i := range next {
		next[i] = Nil
	}
	for _, l := range lists {
		for i := 0; i+1 < len(l); i++ {
			next[l[i]] = l[i+1]
		}
	}
	return next
}

// randomLists shuffles nodes 0..n-1 into k random lists.
func randomLists(n, k int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	next := make([]int32, n)
	for i := range next {
		next[i] = Nil
	}
	bounds := map[int]bool{0: true}
	for len(bounds) < k {
		bounds[rng.Intn(n)] = true
	}
	for i := 0; i+1 < n; i++ {
		if !bounds[i+1] {
			next[perm[i]] = int32(perm[i+1])
		}
	}
	return next
}

func TestRankSimple(t *testing.T) {
	next := buildLists(6, []int32{3, 1, 5}, []int32{0, 2})
	want := []int32{1, 1, 0, 2, 0, 0}
	for name, got := range map[string][]int32{
		"jump": Rank(next, nil, nil),
		"mate": RankRandomMate(next, 1, nil, nil),
		"seq":  RankSeq(next),
	} {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: rank[%d]=%d want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestRankSingleLongList(t *testing.T) {
	n := 10000
	l := make([]int32, n)
	for i := range l {
		l[i] = int32(i)
	}
	next := buildLists(n, l)
	var m wd.Meter
	got := Rank(next, nil, &m)
	for i := 0; i < n; i++ {
		if got[i] != int32(n-1-i) {
			t.Fatalf("rank[%d]=%d want %d", i, got[i], n-1-i)
		}
	}
	if m.Work() == 0 || m.Depth() == 0 {
		t.Error("meter not updated")
	}
	// Pointer jumping depth should be logarithmic, not linear.
	if m.Depth() > 4*wd.CeilLog2(n)+8 {
		t.Errorf("depth %d too large for n=%d", m.Depth(), n)
	}
}

func TestEnginesAgreeOnRandomForests(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 500 + int(seed)*377
		k := 1 + int(seed)%7
		next := randomLists(n, k, seed)
		want := RankSeq(next)
		jump := Rank(next, nil, nil)
		mate := RankRandomMate(next, seed*13+5, nil, nil)
		for i := 0; i < n; i++ {
			if jump[i] != want[i] {
				t.Fatalf("seed %d: jump rank[%d]=%d want %d", seed, i, jump[i], want[i])
			}
			if mate[i] != want[i] {
				t.Fatalf("seed %d: mate rank[%d]=%d want %d", seed, i, mate[i], want[i])
			}
		}
	}
}

func TestRankEmptyAndSingletons(t *testing.T) {
	if got := Rank(nil, nil, nil); len(got) != 0 {
		t.Error("empty input")
	}
	next := []int32{Nil, Nil, Nil}
	for _, got := range [][]int32{Rank(next, nil, nil), RankRandomMate(next, 3, nil, nil), RankSeq(next)} {
		for i, r := range got {
			if r != 0 {
				t.Errorf("singleton %d has rank %d", i, r)
			}
		}
	}
}

func TestRandomMateDoesNotMutateInput(t *testing.T) {
	next := randomLists(1000, 3, 9)
	saved := make([]int32, len(next))
	copy(saved, next)
	RankRandomMate(next, 4, nil, nil)
	for i := range next {
		if next[i] != saved[i] {
			t.Fatal("input successor array mutated")
		}
	}
}
