package progress

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestNilSinkIsSafe: every update and read must be a no-op on a nil sink,
// so code paths can thread one unconditionally.
func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	s.EnterPhase(PhasePacking)
	s.SetRuns(3)
	s.RunDone()
	s.AddPackRounds(10)
	s.PackRoundDone()
	s.AddTrees(5)
	s.TreeDone()
	s.AddBoughs(2)
	s.BoughPhaseDone()
	if got := s.Snapshot(); got != (Snapshot{}) {
		t.Fatalf("nil sink snapshot = %+v, want zero", got)
	}
	if s.Phase() != PhaseNone {
		t.Fatalf("nil sink phase = %v", s.Phase())
	}
}

// TestSinkCountersAndNotify: counters accumulate and the hook fires at
// milestones but not on per-round updates.
func TestSinkCountersAndNotify(t *testing.T) {
	var s Sink
	notifies := 0
	s.Notify = func() { notifies++ }
	s.SetRuns(2)
	s.EnterPhase(PhasePacking) // notify 1
	s.AddPackRounds(24)
	for i := 0; i < 24; i++ {
		s.PackRoundDone() // no notify: hot path
	}
	s.AddTrees(3)
	s.EnterPhase(PhaseScan) // notify 2
	s.AddBoughs(4)
	s.BoughPhaseDone() // notify 3
	s.TreeDone()       // notify 4
	s.RunDone()        // notify 5

	got := s.Snapshot()
	want := Snapshot{
		Phase: PhaseScan, RunsDone: 1, RunsTotal: 2,
		PackRoundsDone: 24, PackRoundsTotal: 24,
		TreesDone: 1, TreesTotal: 3,
		BoughPhasesDone: 1, BoughsProcessed: 4,
	}
	if got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
	if notifies != 5 {
		t.Fatalf("notify fired %d times, want 5", notifies)
	}
	if PhasePacking.String() != "packing" || PhaseScan.String() != "scan" || PhaseNone.String() != "none" {
		t.Fatal("phase names drifted from the wire format")
	}
}

// TestSinkConcurrentNotifyFlood hammers one sink from many goroutines —
// the shape of a wide parallel scan all hitting milestones at once — and
// checks that no update is lost, the hook fires exactly once per
// milestone, and nothing races (run under -race). This is the load the
// scheduler's event-log throttle sits behind; the sink itself must stay
// exact even when the hook's consumer throttles.
func TestSinkConcurrentNotifyFlood(t *testing.T) {
	const (
		workers       = 8
		perWorker     = 500
		roundsPerIter = 3
	)
	var s Sink
	var notifies atomic.Int64
	s.Notify = func() { notifies.Add(1) }
	s.EnterPhase(PhaseScan) // 1 notify
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.AddPackRounds(roundsPerIter)
				for r := 0; r < roundsPerIter; r++ {
					s.PackRoundDone() // hot path: must not notify
				}
				s.AddTrees(1)
				s.AddBoughs(2)
				s.BoughPhaseDone() // notify
				s.TreeDone()       // notify
				s.RunDone()        // notify
			}
		}()
	}
	wg.Wait()
	got := s.Snapshot()
	n := int64(workers * perWorker)
	want := Snapshot{
		Phase: PhaseScan, RunsDone: n,
		PackRoundsDone: n * roundsPerIter, PackRoundsTotal: n * roundsPerIter,
		TreesDone: n, TreesTotal: n,
		BoughPhasesDone: n, BoughsProcessed: 2 * n,
	}
	if got != want {
		t.Fatalf("flood snapshot = %+v, want %+v", got, want)
	}
	if fired := notifies.Load(); fired != 3*n+1 {
		t.Fatalf("notify fired %d times, want %d (3 per iteration + the phase entry)", fired, 3*n+1)
	}
}
