// Package progress is the solver's live progress sink: a small set of
// atomic counters that the algorithm phases update at exactly the seams
// where cooperative cancellation is already checked — between boost runs,
// around the packing rounds, between spanning-tree scans, and between
// bough phases. Instrumentation is write-only from the solver's point of
// view: a Sink never feeds anything back into the computation, so an
// attached sink cannot change the result at any pool width.
//
// A nil *Sink is valid and records nothing, mirroring *wd.Meter, so every
// code path can thread a sink unconditionally.
package progress

import "sync/atomic"

// Phase identifies where in the pipeline a solve currently is.
type Phase int32

const (
	// PhaseNone is the zero phase: the solve has not started.
	PhaseNone Phase = iota
	// PhasePacking covers the tree-packing step (paper §2.1 / Lemma 1):
	// skeleton sampling and the greedy MST packing rounds.
	PhasePacking
	// PhaseScan covers the per-tree 2-respecting cut searches (paper §4):
	// bough decomposition and the Minimum Path batches.
	PhaseScan
	// PhaseContract covers the contraction loops of the baseline engines
	// (Stoer–Wagner's maximum-adjacency phases, Karger–Stein's recursive
	// contraction trials). The paper's solver never enters it.
	PhaseContract
)

// String returns the phase's wire name.
func (p Phase) String() string {
	switch p {
	case PhasePacking:
		return "packing"
	case PhaseScan:
		return "scan"
	case PhaseContract:
		return "contract"
	default:
		return "none"
	}
}

// Snapshot is a point-in-time copy of a sink's counters. Totals are the
// planned amounts known so far; they grow as boost runs start and as
// packing attempts add rounds, so a done/total fraction can dip when a
// phase re-plans (e.g. the packing estimate loop rejects a guess).
type Snapshot struct {
	// Phase is the pipeline stage the solve is currently in.
	Phase Phase
	// RunsDone / RunsTotal count completed and planned boost runs.
	RunsDone, RunsTotal int64
	// PackRoundsDone / PackRoundsTotal count greedy packing rounds across
	// all packing attempts of the solve.
	PackRoundsDone, PackRoundsTotal int64
	// TreesDone / TreesTotal count completed and planned spanning-tree
	// scans, accumulated across boost runs.
	TreesDone, TreesTotal int64
	// BoughPhasesDone counts completed bough phases across all tree scans.
	BoughPhasesDone int64
	// BoughsProcessed counts boughs handled by those phases.
	BoughsProcessed int64
}

// Sink accumulates live solve progress. All updates are atomic; a Sink
// may be read (Snapshot) concurrently with the solve it instruments. One
// Sink instruments one solve at a time — attach a fresh one per job.
//
// The zero value is ready to use. A nil *Sink is valid and records
// nothing.
type Sink struct {
	phase      atomic.Int32
	runsDone   atomic.Int64
	runsTotal  atomic.Int64
	packDone   atomic.Int64
	packTotal  atomic.Int64
	treesDone  atomic.Int64
	treesTotal atomic.Int64
	boughPh    atomic.Int64
	boughs     atomic.Int64

	// Notify, when non-nil, is called after phase transitions and coarse
	// milestones (run, tree, and bough-phase completions) — never on the
	// per-round hot path. It runs on a solver goroutine, so it must be
	// cheap and must not call back into the solve; set it before the
	// solve starts and do not change it afterwards. Because every call
	// site sits at a cooperative-cancellation seam, a Notify that blocks
	// parks the solve at that seam (tests use this to pin a job inside a
	// chosen phase deterministically).
	Notify func()
}

func (s *Sink) notify() {
	if s.Notify != nil {
		s.Notify()
	}
}

// EnterPhase records a phase transition and notifies.
func (s *Sink) EnterPhase(p Phase) {
	if s == nil {
		return
	}
	s.phase.Store(int32(p))
	s.notify()
}

// SetRuns records the planned number of boost runs.
func (s *Sink) SetRuns(total int64) {
	if s == nil {
		return
	}
	s.runsTotal.Store(total)
}

// RunDone records one completed boost run and notifies.
func (s *Sink) RunDone() {
	if s == nil {
		return
	}
	s.runsDone.Add(1)
	s.notify()
}

// AddPackRounds grows the planned packing-round total: each packing
// attempt (estimate guess) plans `rounds` more greedy MST rounds.
func (s *Sink) AddPackRounds(rounds int64) {
	if s == nil {
		return
	}
	s.packTotal.Add(rounds)
}

// PackRoundDone records one completed packing round. It does not notify:
// rounds are the inner loop of the packing phase, and per-round callbacks
// would put a hook on the hot path.
func (s *Sink) PackRoundDone() {
	if s == nil {
		return
	}
	s.packDone.Add(1)
}

// AddTrees grows the planned spanning-tree-scan total (per boost run, as
// each packing completes).
func (s *Sink) AddTrees(total int64) {
	if s == nil {
		return
	}
	s.treesTotal.Add(total)
}

// TreeDone records one completed spanning-tree scan and notifies.
func (s *Sink) TreeDone() {
	if s == nil {
		return
	}
	s.treesDone.Add(1)
	s.notify()
}

// AddBoughs records `boughs` boughs entering processing (called by the
// decomposition as it discovers them). It does not notify; the phase
// completion that follows does.
func (s *Sink) AddBoughs(boughs int) {
	if s == nil {
		return
	}
	s.boughs.Add(int64(boughs))
}

// BoughPhaseDone records one completed bough phase and notifies.
func (s *Sink) BoughPhaseDone() {
	if s == nil {
		return
	}
	s.boughPh.Add(1)
	s.notify()
}

// Phase returns the current phase.
func (s *Sink) Phase() Phase {
	if s == nil {
		return PhaseNone
	}
	return Phase(s.phase.Load())
}

// Snapshot copies the counters. Individual fields are loaded atomically;
// the snapshot as a whole is not a consistent cut of a running solve,
// which is fine for progress reporting.
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Phase:           Phase(s.phase.Load()),
		RunsDone:        s.runsDone.Load(),
		RunsTotal:       s.runsTotal.Load(),
		PackRoundsDone:  s.packDone.Load(),
		PackRoundsTotal: s.packTotal.Load(),
		TreesDone:       s.treesDone.Load(),
		TreesTotal:      s.treesTotal.Load(),
		BoughPhasesDone: s.boughPh.Load(),
		BoughsProcessed: s.boughs.Load(),
	}
}
