package minprefix

// Seq is the sequential monotone Minimum Prefix structure of paper §2.3:
// a complete binary tree over the list in which every inner node stores
// only ∆ = min(right subtree) − min(left subtree). An operation walks one
// leaf-to-root path, so updates and queries cost O(log n) each, and every
// operation touches memory in the same bottom-up order (the monotonicity
// that both the cache-oblivious algorithm [10] and the parallel batch
// executor exploit).
//
// Seq doubles as the "one-by-one" comparator in the cache-miss experiment
// (E7): its per-op root path scatters across the ∆ array, while the batch
// executor streams.
type Seq struct {
	n     int
	pad   int     // leaves padded to a power of two
	delta []int64 // heap-ordered ∆ per inner node (index 1..pad-1)
	leafW []int64 // current weight per (real) leaf... maintained implicitly
	// minRoot is the current overall minimum, updated with ϕ(root) after
	// every AddPrefix.
	minRoot int64
	// trace, when non-nil, records the index of every delta/leaf cell
	// touched, for the cache simulator.
	trace func(cell int)
}

// padInf is the weight of padding leaves: larger than any reachable real
// weight (graph totals are capped at 2^40 and the blocking sentinel at
// 2^60), so padding never influences a minimum, yet small enough that
// ∆ arithmetic stays far from int64 overflow.
const padInf = int64(1) << 62

// NewSeq builds the structure over the initial weights w0.
func NewSeq(w0 []int64) *Seq {
	n := len(w0)
	if n == 0 {
		panic("minprefix: empty list")
	}
	pad := 1
	for pad < n {
		pad *= 2
	}
	s := &Seq{n: n, pad: pad, delta: make([]int64, pad), leafW: make([]int64, pad)}
	// Build ∆ bottom-up from a scratch min array.
	min := make([]int64, 2*pad)
	for i := 0; i < pad; i++ {
		if i < n {
			min[pad+i] = w0[i]
			s.leafW[i] = w0[i]
		} else {
			min[pad+i] = padInf
			s.leafW[i] = padInf
		}
	}
	for b := pad - 1; b >= 1; b-- {
		l, r := min[2*b], min[2*b+1]
		s.delta[b] = r - l
		if l < r {
			min[b] = l
		} else {
			min[b] = r
		}
	}
	s.minRoot = min[1]
	return s
}

// SetTrace installs a memory-access callback; cell ids < pad are ∆ cells,
// cells >= pad are leaf weights.
func (s *Seq) SetTrace(f func(cell int)) { s.trace = f }

func (s *Seq) touch(cell int) {
	if s.trace != nil {
		s.trace(cell)
	}
}

// AddPrefix adds x to the weights of leaves 0..leaf.
func (s *Seq) AddPrefix(leaf int32, x int64) {
	if leaf < 0 || int(leaf) >= s.n {
		panic("minprefix: AddPrefix leaf out of range")
	}
	b := s.pad + int(leaf)
	s.leafW[leaf] += x
	s.touch(b)
	phi := x
	for b > 1 {
		parent := b / 2
		fromRight := b&1 == 1
		var phiL, phiR int64
		if fromRight {
			phiL, phiR = x, phi // prefix covers the whole left subtree
		} else {
			phiL, phiR = phi, 0 // prefix ends inside the left subtree
		}
		deltaPrev := s.delta[parent]
		deltaCur := deltaPrev + phiR - phiL
		s.delta[parent] = deltaCur
		s.touch(parent)
		phi = phiTransition(phiL, phiR, deltaPrev, deltaCur)
		b = parent
	}
	s.minRoot += phi
}

// MinPrefix returns the smallest weight among leaves 0..leaf.
func (s *Seq) MinPrefix(leaf int32) int64 {
	if leaf < 0 || int(leaf) >= s.n {
		panic("minprefix: MinPrefix leaf out of range")
	}
	b := s.pad + int(leaf)
	s.touch(b)
	d := int64(0)
	for b > 1 {
		parent := b / 2
		d = dTransition(d, b&1 == 1, s.delta[parent])
		s.touch(parent)
		b = parent
	}
	return d + s.minRoot
}

// Run executes a batch one operation at a time (result layout as in
// Naive.Run).
func (s *Seq) Run(ops []Op) []int64 {
	validate(s.n, ops)
	res := make([]int64, len(ops))
	for i, op := range ops {
		if op.Query {
			res[i] = s.MinPrefix(op.Leaf)
		} else {
			s.AddPrefix(op.Leaf, op.X)
		}
	}
	return res
}
