package minprefix

import (
	"testing"
)

// FuzzBatchMatchesNaive feeds arbitrary byte strings decoded as op
// sequences into all three executors and cross-checks them; the decoder
// maps bytes to list sizes, op kinds, leaves and increments.
func FuzzBatchMatchesNaive(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 128, 3, 250})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 254})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 1 + int(data[0])%64
		w0 := make([]int64, n)
		for i := range w0 {
			w0[i] = int64(int8(data[(i+1)%len(data)]))
		}
		var ops []Op
		for i := 1; i+1 < len(data); i += 2 {
			leaf := int32(int(data[i]) % n)
			if data[i+1]&1 == 0 {
				ops = append(ops, MinOp(leaf))
			} else {
				ops = append(ops, AddOp(leaf, int64(int8(data[i+1]))))
			}
		}
		want := NewNaive(w0).Run(ops)
		seq := NewSeq(w0).Run(ops)
		batch := RunBatch(w0, ops, nil, nil)
		bs := RunBatchBinarySearch(w0, ops, nil, nil)
		for i := range ops {
			if !ops[i].Query {
				continue
			}
			if seq[i] != want[i] || batch[i] != want[i] || bs[i] != want[i] {
				t.Fatalf("op %d: naive=%d seq=%d batch=%d bs=%d",
					i, want[i], seq[i], batch[i], bs[i])
			}
		}
	})
}
