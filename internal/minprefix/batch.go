package minprefix

import (
	"repro/internal/par"
	"repro/internal/wd"
)

// updRec is an update relevant at the current node: one entry of the
// arrays H (time), X (original increment), and Φ (this node's minimum
// change) of §3.1. fromRight records whether the node holding this record
// is the right child of its parent.
type updRec struct {
	time      int32
	fromRight bool
	x         int64
	phi       int64
}

// qryRec is a query relevant at the current node with its partial d value
// (§3.2) and the index of the originating op.
type qryRec struct {
	time      int32
	fromRight bool
	origin    int32
	d         int64
}

// nodeSpan locates one tree node's records inside the per-level arrays.
type nodeSpan struct {
	id             int32 // heap id (root = 1, leaves pad..2*pad-1)
	u0, u1, q0, q1 int32
}

// RunBatch executes a batch of operations on a list with initial weights
// w0 as if they were applied sequentially in op order, but processes the
// whole batch at once: a parallel bottom-up sweep over the difference
// tree produces every intermediate ∆ state (§3.1) and resolves the query
// d-values against them with merges and segmented broadcasts (§3.2).
// The result slice has one entry per op; entry i is the query result when
// ops[i].Query and 0 otherwise.
func RunBatch(w0 []int64, ops []Op, pool *par.Pool, m *wd.Meter) []int64 {
	return runBatch(w0, ops, pool, m, false)
}

// RunBatchBinarySearch is the E9 ablation variant: instead of merging the
// query stream with the ∆ stream and broadcasting (the paper's approach),
// every query binary-searches the update times, paying the extra Θ(log k)
// work factor §3.2 is designed to avoid.
func RunBatchBinarySearch(w0 []int64, ops []Op, pool *par.Pool, m *wd.Meter) []int64 {
	return runBatch(w0, ops, pool, m, true)
}

// seqCutoff routes small batches to the one-by-one difference tree: below
// this size the parallel sweep's per-level bookkeeping (and its goroutine
// fan-out) costs more than it saves. The Minimum Path layer produces many
// tiny per-segment batches, so this cutoff carries real weight.
const seqCutoff = 2048

func runBatch(w0 []int64, ops []Op, pool *par.Pool, m *wd.Meter, binsearch bool) []int64 {
	n := len(w0)
	validate(n, ops)
	res := make([]int64, len(ops))
	if len(ops) == 0 {
		return res
	}
	if n == 1 {
		runSingleLeaf(w0[0], ops, res, pool, m)
		return res
	}
	if n+len(ops) <= seqCutoff {
		s := NewSeq(w0)
		for i, op := range ops {
			if op.Query {
				res[i] = s.MinPrefix(op.Leaf)
			} else {
				s.AddPrefix(op.Leaf, op.X)
			}
		}
		// Metered at the batch algorithm's model cost (Lemma 6): running
		// tiny batches sequentially is a constant-factor engineering
		// substitution, not an algorithmic serialization.
		m.Add(int64(n+len(ops))*wd.CeilLog2(n), wd.CeilLog2(n)*(wd.CeilLog2(len(ops))+1))
		return res
	}
	pad := 1
	levels := int64(0)
	for pad < n {
		pad *= 2
		levels++
	}
	// min0: initial subtree minima, heap-ordered.
	min0 := make([]int64, 2*pad)
	pool.For(pad, func(i int) {
		if i < n {
			min0[pad+i] = w0[i]
		} else {
			min0[pad+i] = padInf
		}
	})
	for lvl := levels - 1; lvl >= 0; lvl-- {
		lo := 1 << lvl
		pool.For(lo, func(i int) {
			b := lo + i
			l, r := min0[2*b], min0[2*b+1]
			if l < r {
				min0[b] = l
			} else {
				min0[b] = r
			}
		})
	}
	m.Add(int64(2*pad), levels+1)

	// Leaf grouping: stable-sort op indices by leaf (stability keeps time
	// order within a leaf), then split each leaf's ops into updates and
	// queries (§3.1.1).
	k := len(ops)
	order := make([]int32, k)
	pool.For(k, func(i int) { order[i] = int32(i) })
	par.SortStableOn(pool, order, func(a, b int32) bool { return ops[a].Leaf < ops[b].Leaf })
	m.Add(int64(k)*wd.CeilLog2(k), wd.CeilLog2(k))
	upd := make([]updRec, 0, k)
	qry := make([]qryRec, 0, k)
	var spans []nodeSpan
	for i := 0; i < k; {
		leaf := ops[order[i]].Leaf
		id := int32(pad) + leaf
		fromRight := id&1 == 1
		sp := nodeSpan{id: id, u0: int32(len(upd)), q0: int32(len(qry))}
		for ; i < k && ops[order[i]].Leaf == leaf; i++ {
			t := order[i]
			op := ops[t]
			if op.Query {
				qry = append(qry, qryRec{time: t, fromRight: fromRight, origin: t})
			} else {
				upd = append(upd, updRec{time: t, fromRight: fromRight, x: op.X, phi: op.X})
			}
		}
		sp.u1, sp.q1 = int32(len(upd)), int32(len(qry))
		spans = append(spans, sp)
	}
	m.Add(int64(k), wd.CeilLog2(k))

	// Scratch buffers shared by all nodes of a level (each node slices the
	// region matching its output offsets), so the sweep's per-node state
	// costs no allocations.
	nu, nq := len(upd), len(qry)
	scratch := &levelScratch{
		delta:  make([]int64, nu),
		sl:     make([]int64, nu),
		sr:     make([]int64, nu),
		states: make([]int64, nq),
	}
	// Bottom-up sweep: nodes of one level are processed in parallel; the
	// records of each parent are the merge of its children's records.
	for len(spans) > 1 || spans[0].id != 1 {
		type job struct {
			parent int32
			left   int32 // index into spans, -1 if absent
			right  int32
			u0, q0 int32 // output offsets
		}
		var jobs []job
		var uo, qo int32
		for i := 0; i < len(spans); {
			p := spans[i].id / 2
			j := job{parent: p, left: -1, right: -1, u0: uo, q0: qo}
			if spans[i].id&1 == 0 {
				j.left = int32(i)
			} else {
				j.right = int32(i)
			}
			uo += spans[i].u1 - spans[i].u0
			qo += spans[i].q1 - spans[i].q0
			i++
			if i < len(spans) && spans[i].id/2 == p {
				j.right = int32(i)
				uo += spans[i].u1 - spans[i].u0
				qo += spans[i].q1 - spans[i].q0
				i++
			}
			jobs = append(jobs, j)
		}
		nextUpd := make([]updRec, uo)
		nextQry := make([]qryRec, qo)
		nextSpans := make([]nodeSpan, len(jobs))
		pool.ForGrain(len(jobs), 1, func(ji int) {
			j := jobs[ji]
			var ul, ur []updRec
			var ql, qr []qryRec
			if j.left >= 0 {
				sp := spans[j.left]
				ul, ql = upd[sp.u0:sp.u1], qry[sp.q0:sp.q1]
			}
			if j.right >= 0 {
				sp := spans[j.right]
				ur, qr = upd[sp.u0:sp.u1], qry[sp.q0:sp.q1]
			}
			uOut := nextUpd[j.u0 : j.u0+int32(len(ul)+len(ur))]
			qOut := nextQry[j.q0 : j.q0+int32(len(ql)+len(qr))]
			sc := nodeScratch{
				delta:  scratch.delta[j.u0 : j.u0+int32(len(uOut))],
				sl:     scratch.sl[j.u0 : j.u0+int32(len(uOut))],
				sr:     scratch.sr[j.u0 : j.u0+int32(len(uOut))],
				states: scratch.states[j.q0 : j.q0+int32(len(qOut))],
			}
			processNode(j.parent, min0, ul, ur, ql, qr, uOut, qOut, res, binsearch, sc, pool)
			nextSpans[ji] = nodeSpan{
				id: j.parent,
				u0: j.u0, u1: j.u0 + int32(len(uOut)),
				q0: j.q0, q1: j.q0 + int32(len(qOut)),
			}
		})
		m.Add(int64(len(nextUpd)+len(nextQry))+int64(len(jobs)), wd.CeilLog2(len(nextUpd)+len(nextQry)+2)+1)
		spans, upd, qry = nextSpans, nextUpd, nextQry
	}
	return res
}

// runSingleLeaf handles the degenerate 1-element list: a query result is
// the initial weight plus the sum of the updates before it.
func runSingleLeaf(w0 int64, ops []Op, res []int64, pool *par.Pool, m *wd.Meter) {
	k := len(ops)
	xs := make([]int64, k)
	pool.For(k, func(i int) {
		if !ops[i].Query {
			xs[i] = ops[i].X
		}
	})
	pool.ExclusiveSum(xs, xs)
	pool.For(k, func(i int) {
		if ops[i].Query {
			res[i] = w0 + xs[i]
		}
	})
	m.Add(3*int64(k), 2+wd.CeilLog2(k))
}

// levelScratch holds the per-level shared buffers; nodeScratch is the
// per-node view (slices of the level buffers at the node's offsets).
type levelScratch struct {
	delta, sl, sr, states []int64
}

type nodeScratch struct {
	delta, sl, sr, states []int64
}

// processNode computes the parent node's update records (∆ states and Φ
// values, §3.1.2) and advances the query d-values through the parent
// (§3.2). When parent is the root it also resolves the final results.
func processNode(parent int32, min0 []int64, ul, ur []updRec, ql, qr []qryRec,
	uOut []updRec, qOut []qryRec, res []int64, binsearch bool, sc nodeScratch, pool *par.Pool) {

	delta0 := min0[2*parent+1] - min0[2*parent]
	byTimeU := func(a, b updRec) bool { return a.time < b.time }
	byTimeQ := func(a, b qryRec) bool { return a.time < b.time }
	par.MergeOn(pool, ul, ur, uOut, byTimeU)
	par.MergeOn(pool, ql, qr, qOut, byTimeQ)

	u := len(uOut)
	// Prefix sums of φl and φr reconstruct every intermediate ∆ (the
	// telescoped update equation, Observations 3 and 4): records from the
	// left child have φr = 0; records from the right child have φl = x.
	delta := sc.delta
	if u > 0 {
		sl, sr := sc.sl, sc.sr
		pool.For(u, func(i int) {
			r := uOut[i]
			if r.fromRight {
				sl[i], sr[i] = r.x, r.phi
			} else {
				sl[i], sr[i] = r.phi, 0
			}
		})
		pool.InclusiveSum(sl, sl)
		pool.InclusiveSum(sr, sr)
		pool.For(u, func(i int) {
			delta[i] = delta0 + sr[i] - sl[i]
		})
		fromRight := parent&1 == 1
		pool.For(u, func(i int) {
			r := &uOut[i]
			deltaPrev := delta0
			if i > 0 {
				deltaPrev = delta[i-1]
			}
			var phiL, phiR int64
			if r.fromRight {
				phiL, phiR = r.x, r.phi
			} else {
				phiL, phiR = r.phi, 0
			}
			r.phi = phiTransition(phiL, phiR, deltaPrev, delta[i])
			r.fromRight = fromRight
		})
	}

	// Advance queries: each needs ∆ at the last update time before it.
	if len(qOut) > 0 {
		deltaStates(uOut, delta, qOut, delta0, binsearch, sc.states, pool)
		fromRight := parent&1 == 1
		pool.For(len(qOut), func(i int) {
			q := &qOut[i]
			q.d = dTransition(q.d, q.fromRight, sc.states[i])
			q.fromRight = fromRight
		})
	}

	if parent == 1 && len(qOut) > 0 {
		// Root: the overall minimum after update i is min0(root) plus the
		// prefix sums of ϕ(root) (§3.1.3); each query adds the minimum at
		// the closest preceding time to its final d (§3.2). The sl scratch
		// is free again at this point and holds the running minima.
		minAt := sc.sl
		pool.For(u, func(i int) { minAt[i] = uOut[i].phi })
		pool.InclusiveSum(minAt[:u], minAt[:u])
		pool.For(u, func(i int) { minAt[i] += min0[1] })
		deltaStates(uOut, minAt, qOut, min0[1], binsearch, sc.states, pool)
		pool.For(len(qOut), func(i int) {
			res[qOut[i].origin] = qOut[i].d + sc.states[i]
		})
	}
}

// deltaStates fills states[i] with the value of vals at the last update
// with time before query i (or initial if none). Small nodes use an
// allocation-free two-pointer walk; large nodes use the paper's §3.2
// construction (parallel merge + segmented broadcast); the ablation path
// binary-searches per query.
func deltaStates(uOut []updRec, vals []int64, qOut []qryRec, initial int64, binsearch bool, states []int64, pool *par.Pool) {
	if !binsearch && len(uOut)+len(qOut) <= 4*par.Grain {
		// Sequential merge of the two time-sorted streams.
		cur := initial
		ui := 0
		for qi := range qOut {
			for ui < len(uOut) && uOut[ui].time < qOut[qi].time {
				cur = vals[ui]
				ui++
			}
			states[qi] = cur
		}
		return
	}
	if binsearch {
		times := make([]int64, len(uOut))
		pool.For(len(uOut), func(i int) { times[i] = int64(uOut[i].time) })
		pool.For(len(qOut), func(i int) {
			// Largest update index with time < query time.
			lo, hi := 0, len(times) // hi exclusive
			for lo < hi {
				mid := (lo + hi) / 2
				if times[mid] < int64(qOut[i].time) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == 0 {
				states[i] = initial
			} else {
				states[i] = vals[lo-1]
			}
		})
		return
	}
	// Merge update (time, value) and query (time, slot) streams.
	type mix struct {
		time  int32
		isQ   bool
		val   int64
		qslot int32
	}
	a := make([]mix, len(uOut))
	b := make([]mix, len(qOut))
	pool.For(len(uOut), func(i int) { a[i] = mix{time: uOut[i].time, val: vals[i]} })
	pool.For(len(qOut), func(i int) { b[i] = mix{time: qOut[i].time, isQ: true, qslot: int32(i)} })
	merged := make([]mix, len(a)+len(b))
	par.MergeOn(pool, a, b, merged, func(x, y mix) bool { return x.time < y.time })
	present := make([]bool, len(merged))
	mv := make([]int64, len(merged))
	pool.For(len(merged), func(i int) {
		if !merged[i].isQ {
			present[i] = true
			mv[i] = merged[i].val
		}
	})
	pool.SegmentedBroadcast(present, mv, mv, initial)
	pool.For(len(merged), func(i int) {
		if merged[i].isQ {
			states[merged[i].qslot] = mv[i]
		}
	})
}
