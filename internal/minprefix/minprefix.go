// Package minprefix implements the Minimum Prefix structure of the paper:
// a list of weighted vertices supporting AddPrefix (add x to the first i
// weights) and MinPrefix (smallest weight among the first i) — §2.3 for
// the one-by-one difference-encoded binary tree and §3.1–3.2 for the
// batched parallel executor that produces all intermediate states of every
// node at once and answers a batch of k mixed operations in
// O(k(log n + log k) + n) work and O(log n log k) depth (Lemmas 5 and 6).
//
// Paper erratum: the four-case formula for Φ(b)[i] printed in §3.1.2 uses
// ∆(b)[i] where the paper's own Figures 6 and 7 (correctly) use the
// previous state ∆(b)[i−1]. With ∆ = min(right) − min(left), φl/φr the
// per-child minimum changes, ∆prev = ∆ before the update and ∆cur after:
//
//	min stays left   (∆prev > 0, ∆cur > 0):  ϕ(b) = φl
//	right → left     (∆prev ≤ 0, ∆cur > 0):  ϕ(b) = φl − ∆prev
//	min stays right  (∆prev ≤ 0, ∆cur ≤ 0):  ϕ(b) = φr
//	left → right     (∆prev > 0, ∆cur ≤ 0):  ϕ(b) = φr + ∆prev
//
// TestPhiTransitionCases pins each case against the naive executor.
package minprefix

import "fmt"

// Op is one Minimum Prefix operation at a leaf of the list: AddPrefix
// (Query false; adds X to the weights of leaves 0..Leaf) or MinPrefix
// (Query true; returns the minimum weight among leaves 0..Leaf). The
// position of the Op in a batch is its time.
type Op struct {
	Query bool
	Leaf  int32
	X     int64
}

// AddOp and MinOp are convenience constructors.
func AddOp(leaf int32, x int64) Op { return Op{Leaf: leaf, X: x} }
func MinOp(leaf int32) Op          { return Op{Query: true, Leaf: leaf} }

func validate(listLen int, ops []Op) {
	if listLen < 1 {
		panic("minprefix: empty list")
	}
	for i, op := range ops {
		if op.Leaf < 0 || int(op.Leaf) >= listLen {
			panic(fmt.Sprintf("minprefix: op %d leaf %d out of range [0,%d)", i, op.Leaf, listLen))
		}
	}
}

// Naive is the obviously correct O(n)-per-operation executor used as the
// test oracle.
type Naive struct {
	w []int64
}

// NewNaive copies w0 as the initial weights.
func NewNaive(w0 []int64) *Naive {
	w := make([]int64, len(w0))
	copy(w, w0)
	return &Naive{w: w}
}

// AddPrefix adds x to weights 0..leaf.
func (s *Naive) AddPrefix(leaf int32, x int64) {
	for i := int32(0); i <= leaf; i++ {
		s.w[i] += x
	}
}

// MinPrefix returns the smallest weight among 0..leaf.
func (s *Naive) MinPrefix(leaf int32) int64 {
	best := s.w[0]
	for i := int32(1); i <= leaf; i++ {
		if s.w[i] < best {
			best = s.w[i]
		}
	}
	return best
}

// Run executes a batch, returning a slice with one entry per op; entry i
// holds the query result when ops[i].Query and 0 otherwise.
func (s *Naive) Run(ops []Op) []int64 {
	validate(len(s.w), ops)
	res := make([]int64, len(ops))
	for i, op := range ops {
		if op.Query {
			res[i] = s.MinPrefix(op.Leaf)
		} else {
			s.AddPrefix(op.Leaf, op.X)
		}
	}
	return res
}

// PhiTransition exposes phiTransition for the traced cache-model replay
// in internal/cache, which re-implements the sweep sequentially.
func PhiTransition(phiL, phiR, deltaPrev, deltaCur int64) int64 {
	return phiTransition(phiL, phiR, deltaPrev, deltaCur)
}

// DTransition exposes dTransition for the traced cache-model replay.
func DTransition(d int64, fromRight bool, delta int64) int64 {
	return dTransition(d, fromRight, delta)
}

// PadInf is the padding-leaf sentinel (see seq.go).
const PadInf = padInf

// phiTransition is the (corrected) four-case update of §3.1.2 shared by
// the sequential and batched executors.
func phiTransition(phiL, phiR, deltaPrev, deltaCur int64) int64 {
	switch {
	case deltaPrev > 0 && deltaCur > 0:
		return phiL
	case deltaPrev <= 0 && deltaCur > 0:
		return phiL - deltaPrev
	case deltaPrev <= 0 && deltaCur <= 0:
		return phiR
	default: // deltaPrev > 0, deltaCur <= 0
		return phiR + deltaPrev
	}
}

// dTransition is the query-side rule of §3.2 (Figures 8 and 9): d is the
// partial result arriving from the path child, fromRight tells whether the
// query leaf lies in the right subtree, delta is ∆(b) at the query's time.
func dTransition(d int64, fromRight bool, delta int64) int64 {
	if delta > 0 {
		if fromRight {
			return 0 // whole left subtree, holding min(b), is in the prefix
		}
		return d
	}
	if fromRight {
		if d+delta < 0 {
			return d
		}
		return -delta
	}
	return d - delta
}
