package minprefix

import (
	"math/rand"
	"testing"
)

// randomBatch builds a reproducible random op batch over a list of length n.
func randomBatch(n, k int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, k)
	for i := range ops {
		leaf := int32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			ops[i] = MinOp(leaf)
		} else {
			ops[i] = AddOp(leaf, int64(rng.Intn(41)-20))
		}
	}
	return ops
}

func randomWeights(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(rng.Intn(201) - 100)
	}
	return w
}

func checkAgainstNaive(t *testing.T, w0 []int64, ops []Op, name string, run func([]int64, []Op) []int64) {
	t.Helper()
	want := NewNaive(w0).Run(ops)
	got := run(w0, ops)
	if len(got) != len(want) {
		t.Fatalf("%s: result length %d want %d", name, len(got), len(want))
	}
	for i := range ops {
		if ops[i].Query && got[i] != want[i] {
			t.Fatalf("%s: query at op %d (leaf %d): got %d want %d",
				name, i, ops[i].Leaf, got[i], want[i])
		}
	}
}

func runSeq(w0 []int64, ops []Op) []int64     { return NewSeq(w0).Run(ops) }
func runBatchT(w0 []int64, ops []Op) []int64  { return RunBatch(w0, ops, nil, nil) }
func runBatchBS(w0 []int64, ops []Op) []int64 { return RunBatchBinarySearch(w0, ops, nil, nil) }

func TestExecutorsAgreeRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 1 + int(seed*37)%129
		k := 1 + int(seed*101)%300
		w0 := randomWeights(n, seed)
		ops := randomBatch(n, k, seed+1000)
		checkAgainstNaive(t, w0, ops, "seq", runSeq)
		checkAgainstNaive(t, w0, ops, "batch", runBatchT)
		checkAgainstNaive(t, w0, ops, "batch-bs", runBatchBS)
	}
}

func TestLargerBatch(t *testing.T) {
	n, k := 511, 4096
	w0 := randomWeights(n, 3)
	ops := randomBatch(n, k, 4)
	checkAgainstNaive(t, w0, ops, "batch", runBatchT)
}

func TestAllQueriesNoUpdates(t *testing.T) {
	w0 := []int64{5, -2, 7, 0}
	ops := []Op{MinOp(0), MinOp(1), MinOp(2), MinOp(3)}
	got := RunBatch(w0, ops, nil, nil)
	want := []int64{5, -2, -2, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestAllUpdatesNoQueries(t *testing.T) {
	w0 := []int64{1, 2}
	ops := []Op{AddOp(0, 5), AddOp(1, -3)}
	got := RunBatch(w0, ops, nil, nil)
	for i, v := range got {
		if v != 0 {
			t.Errorf("non-query slot %d = %d, want 0", i, v)
		}
	}
}

func TestSingleLeafList(t *testing.T) {
	w0 := []int64{10}
	ops := []Op{MinOp(0), AddOp(0, -4), MinOp(0), AddOp(0, 1), MinOp(0)}
	want := []int64{10, 0, 6, 0, 7}
	for name, run := range map[string]func([]int64, []Op) []int64{
		"seq": runSeq, "batch": runBatchT, "batch-bs": runBatchBS,
	} {
		got := run(w0, ops)
		for i := range want {
			if ops[i].Query && got[i] != want[i] {
				t.Errorf("%s: op %d got %d want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	if got := RunBatch([]int64{1, 2, 3}, nil, nil, nil); len(got) != 0 {
		t.Fatal("empty batch should return empty results")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range leaf did not panic")
		}
	}()
	RunBatch([]int64{1, 2}, []Op{MinOp(5)}, nil, nil)
}

// TestFigure5DifferenceTree pins the ∆ encoding of paper Figure 5: each
// inner node stores min(right) − min(left).
func TestFigure5DifferenceTree(t *testing.T) {
	w := []int64{4, 7, 2, 9, 5, 1, 8, 3}
	s := NewSeq(w)
	// Heap ids: 1 root; leaves 8..15.
	wantDelta := map[int]int64{
		4: 7 - 4, 5: 9 - 2, 6: 1 - 5, 7: 3 - 8, // level above leaves
		2: 2 - 4, 3: 3 - 1, // min(2,9)-min(4,7), min(8,3)-min(5,1)
		1: 1 - 2, // min(5,1,8,3) - min(4,7,2,9)
	}
	for node, want := range wantDelta {
		if s.delta[node] != want {
			t.Errorf("delta[%d]=%d want %d", node, s.delta[node], want)
		}
	}
	if s.minRoot != 1 {
		t.Errorf("minRoot=%d want 1", s.minRoot)
	}
}

// TestPhiTransitionCases exercises each of the four Φ cases of §3.1.2
// (with the corrected ∆prev indexing; see the package comment) against
// the naive executor, including the scenarios of Figures 6 and 7.
func TestPhiTransitionCases(t *testing.T) {
	// Two-leaf list: node 1 is the root with leaves 2 (left), 3 (right).
	cases := []struct {
		name string
		w0   []int64
		ops  []Op
	}{
		// Figure 6: minimum stays in the right subtree after the update.
		{"stays-right", []int64{5, 1}, []Op{AddOp(0, -2), MinOp(1)}},
		// Figure 7: minimum moves from left to right.
		{"left-to-right", []int64{1, 5}, []Op{AddOp(0, 10), MinOp(1)}},
		// Symmetric: minimum stays left.
		{"stays-left", []int64{1, 5}, []Op{AddOp(0, 1), MinOp(1)}},
		// Symmetric: minimum moves from right to left.
		{"right-to-left", []int64{5, 1}, []Op{AddOp(1, 10), MinOp(1)}},
	}
	for _, c := range cases {
		checkAgainstNaive(t, c.w0, c.ops, "seq/"+c.name, runSeq)
		checkAgainstNaive(t, c.w0, c.ops, "batch/"+c.name, runBatchT)
	}
}

// TestDTransitionCases pins the query rules of Figures 8 and 9.
func TestDTransitionCases(t *testing.T) {
	// d(b) when ∆ > 0 (min left) and query in left: copy d(l). (Fig. 8)
	if got := dTransition(3, false, 5); got != 3 {
		t.Errorf("fig8 case: %d", got)
	}
	// ∆ ≤ 0 (min right), query left: d(l) − ∆. (Fig. 9)
	if got := dTransition(3, false, -4); got != 7 {
		t.Errorf("fig9 case: %d", got)
	}
	// Query right, ∆ > 0: whole left subtree in prefix, d = 0.
	if got := dTransition(3, true, 5); got != 0 {
		t.Errorf("right/minleft case: %d", got)
	}
	// Query right, ∆ ≤ 0, d(r)+∆ < 0: keep d(r).
	if got := dTransition(1, true, -4); got != 1 {
		t.Errorf("right/minright deep case: %d", got)
	}
	// Query right, ∆ ≤ 0, d(r)+∆ ≥ 0: −∆.
	if got := dTransition(9, true, -4); got != 4 {
		t.Errorf("right/minright shallow case: %d", got)
	}
}

// TestFigure10RelevantSets checks that an update is processed at exactly
// the nodes whose subtree contains its leaf: updating leaf 1 of an
// 8-leaf list must not disturb queries confined to other subtrees, and the
// intermediate states seen by later queries must match the sequential
// execution (which is what H(b) tracks).
func TestFigure10RelevantSets(t *testing.T) {
	w0 := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	ops := []Op{
		AddOp(4, 1), // o1 = (1, v5, x1) in the figure's 1-based naming
		AddOp(1, 2), // o2 = (2, v2, x2)
		AddOp(6, 4), // o3 = (3, v7, x3)
		MinOp(7), MinOp(3), MinOp(1), MinOp(6),
	}
	checkAgainstNaive(t, w0, ops, "figure10", runBatchT)
}

func TestInterleavedHammering(t *testing.T) {
	// Dense alternation on a tiny list stresses the ∆ bookkeeping.
	w0 := []int64{0, 0, 0}
	var ops []Op
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		ops = append(ops, AddOp(int32(rng.Intn(3)), int64(rng.Intn(7)-3)))
		ops = append(ops, MinOp(int32(rng.Intn(3))))
	}
	checkAgainstNaive(t, w0, ops, "hammer-seq", runSeq)
	checkAgainstNaive(t, w0, ops, "hammer-batch", runBatchT)
}

func TestBlockingSentinelScale(t *testing.T) {
	// The respecting-cut passes add and remove ±2^60 blocking values; the
	// structure must stay exact in that regime.
	const inf = int64(1) << 60
	w0 := []int64{100, 200, 300, 400}
	ops := []Op{
		AddOp(3, inf),
		MinOp(3),       // all blocked: 100+inf is the min
		AddOp(1, -inf), // unblock leaves 0..1
		MinOp(3),       // min is 100 again
		AddOp(3, -inf), // net: leaves 2..3 at -inf+original
		MinOp(3),
	}
	checkAgainstNaive(t, w0, ops, "sentinel", runBatchT)
	checkAgainstNaive(t, w0, ops, "sentinel-seq", runSeq)
}

func TestSeqTrace(t *testing.T) {
	s := NewSeq(make([]int64, 8))
	var cells []int
	s.SetTrace(func(c int) { cells = append(cells, c) })
	s.AddPrefix(5, 3)
	// Leaf 5 lives at heap id 13; path touches 13, 6, 3, 1.
	want := []int{13, 6, 3, 1}
	if len(cells) != len(want) {
		t.Fatalf("trace %v want %v", cells, want)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("trace %v want %v", cells, want)
		}
	}
}
