package minprefix

import (
	"fmt"
	"testing"
)

// BenchmarkBatchVsSeq quantifies Lemma 5/6: the batched sweep amortizes
// per-op cost as the batch grows, while the one-by-one tree pays a full
// root path per op.
func BenchmarkBatchVsSeq(b *testing.B) {
	n := 1 << 14
	w0 := make([]int64, n)
	for _, k := range []int{1 << 12, 1 << 16} {
		ops := randomBatch(n, k, 7)
		b.Run(fmt.Sprintf("batch/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunBatch(w0, ops, nil, nil)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/op-single")
		})
		b.Run(fmt.Sprintf("seq/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NewSeq(w0).Run(ops)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/op-single")
		})
	}
}

func BenchmarkSeqSingleOps(b *testing.B) {
	n := 1 << 16
	s := NewSeq(make([]int64, n))
	b.Run("AddPrefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.AddPrefix(int32(i%n), 1)
		}
	})
	b.Run("MinPrefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.MinPrefix(int32(i % n))
		}
	})
}
