package minprefix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// opsGen is a quick.Generator producing a coherent (weights, ops) pair.
type opsGen struct {
	W0  []int64
	Ops []Op
}

// Generate implements quick.Generator.
func (opsGen) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(size+1)
	k := rng.Intn(4*size + 1)
	g := opsGen{W0: make([]int64, n), Ops: make([]Op, k)}
	for i := range g.W0 {
		g.W0[i] = int64(rng.Intn(2001) - 1000)
	}
	for i := range g.Ops {
		leaf := int32(rng.Intn(n))
		if rng.Intn(5) < 2 {
			g.Ops[i] = MinOp(leaf)
		} else {
			g.Ops[i] = AddOp(leaf, int64(rng.Intn(101)-50))
		}
	}
	return reflect.ValueOf(g)
}

// TestQuickBatchMatchesNaive is the headline property: for arbitrary
// batches, the parallel executor is indistinguishable from sequential
// one-at-a-time execution (the correctness statement of Lemma 6).
func TestQuickBatchMatchesNaive(t *testing.T) {
	property := func(g opsGen) bool {
		want := NewNaive(g.W0).Run(g.Ops)
		got := RunBatch(g.W0, g.Ops, nil, nil)
		for i := range g.Ops {
			if g.Ops[i].Query && got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12345))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeqMatchesNaive pins the one-by-one difference tree the same way.
func TestQuickSeqMatchesNaive(t *testing.T) {
	property := func(g opsGen) bool {
		want := NewNaive(g.W0).Run(g.Ops)
		got := NewSeq(g.W0).Run(g.Ops)
		for i := range g.Ops {
			if g.Ops[i].Query && got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(999))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUpdateOnlyPreservesTotal: applying updates and then querying the
// full prefix equals the naive minimum — a cheap algebraic invariant that
// stresses ∆ bookkeeping with no interleaved queries.
func TestQuickUpdateOnlyPreservesTotal(t *testing.T) {
	property := func(g opsGen) bool {
		updates := make([]Op, 0, len(g.Ops))
		for _, op := range g.Ops {
			if !op.Query {
				updates = append(updates, op)
			}
		}
		updates = append(updates, MinOp(int32(len(g.W0)-1)))
		want := NewNaive(g.W0).Run(updates)
		got := RunBatch(g.W0, updates, nil, nil)
		return got[len(updates)-1] == want[len(updates)-1]
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(31337))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
