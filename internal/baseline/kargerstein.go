package baseline

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
)

// ksSeedStep derives trial i's seed as seed + i*ksSeedStep — the same
// additive odd-constant scheme as parcut.BoostSeed, so trial seeds are
// explicit, deterministic, and composable (trial i of a k-trial solve
// equals trial 0 of a solve seeded at seed + i*ksSeedStep). No
// package-global rand state is ever touched.
const ksSeedStep = 0x9e3779b9

// ksCancelCheckN bounds how deep into the recursion ctx is still polled:
// subproblems at or below this size run to completion unchecked, so a
// cancel unwinds within O(ksCancelCheckN²) work per in-flight trial
// without putting ctx.Err (a mutex) on the innermost contraction loops.
const ksCancelCheckN = 64

// ksState is a contracted graph in dense form, the natural representation
// for recursive contraction (and the source of its Θ(n²) work per level).
type ksState struct {
	n      int       // supernodes
	w      []int64   // n*n merged weights
	rowSum []int64   // incident weight per supernode
	groups [][]int32 // original vertices per supernode
}

func newKSState(g *graph.Graph) *ksState {
	n := g.N()
	s := &ksState{n: n, w: make([]int64, n*n), rowSum: make([]int64, n), groups: make([][]int32, n)}
	for v := 0; v < n; v++ {
		s.groups[v] = []int32{int32(v)}
	}
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		s.w[int(e.U)*n+int(e.V)] += e.W
		s.w[int(e.V)*n+int(e.U)] += e.W
		s.rowSum[e.U] += e.W
		s.rowSum[e.V] += e.W
	}
	return s
}

func (s *ksState) clone() *ksState {
	c := &ksState{n: s.n, w: append([]int64(nil), s.w...), rowSum: append([]int64(nil), s.rowSum...)}
	c.groups = make([][]int32, len(s.groups))
	for i, g := range s.groups {
		c.groups[i] = append([]int32(nil), g...)
	}
	return c
}

// contractRandom merges a random edge chosen proportionally to weight.
// Supernode indices stay dense by swapping the last row in.
func (s *ksState) contractRandom(rng *rand.Rand) {
	// Pick endpoint u ∝ rowSum, then v ∝ w[u][·].
	var total int64
	for i := 0; i < s.n; i++ {
		total += s.rowSum[i]
	}
	if total == 0 {
		// Disconnected remainder: merge two arbitrary supernodes.
		s.merge(0, 1)
		return
	}
	r := rng.Int63n(total)
	u := 0
	for ; u < s.n; u++ {
		if r < s.rowSum[u] {
			break
		}
		r -= s.rowSum[u]
	}
	r = rng.Int63n(s.rowSum[u])
	v := 0
	for ; v < s.n; v++ {
		if v == u {
			continue
		}
		if r < s.w[u*s.n+v] {
			break
		}
		r -= s.w[u*s.n+v]
	}
	s.merge(u, v)
}

// merge contracts supernodes u and v (u keeps the identity; the last
// supernode moves into v's slot).
func (s *ksState) merge(u, v int) {
	n := s.n
	// Fold v's row into u.
	s.rowSum[u] += s.rowSum[v] - 2*s.w[u*n+v]
	for x := 0; x < n; x++ {
		if x == u || x == v {
			continue
		}
		s.w[u*n+x] += s.w[v*n+x]
		s.w[x*n+u] = s.w[u*n+x]
	}
	s.w[u*n+v] = 0
	s.w[v*n+u] = 0
	s.groups[u] = append(s.groups[u], s.groups[v]...)
	// Move the last supernode into slot v.
	last := n - 1
	if v != last {
		for x := 0; x < n; x++ {
			s.w[v*n+x] = s.w[last*n+x]
			s.w[x*n+v] = s.w[x*n+last]
		}
		s.w[v*n+v] = 0
		s.rowSum[v] = s.rowSum[last]
		s.groups[v] = s.groups[last]
	}
	s.n = n - 1
	s.compactInto(n)
}

// compactInto rewrites the (n)x(n) matrix into (n')x(n') row stride.
func (s *ksState) compactInto(oldN int) {
	n := s.n
	if n == oldN {
		return
	}
	for r := 1; r < n; r++ {
		copy(s.w[r*n:(r+1)*n], s.w[r*oldN:r*oldN+n])
	}
	s.w = s.w[:n*n]
	s.rowSum = s.rowSum[:n]
	s.groups = s.groups[:n]
}

// contractTo contracts until t supernodes remain.
func (s *ksState) contractTo(t int, rng *rand.Rand) {
	for s.n > t {
		s.contractRandom(rng)
	}
}

// cutOfTwo reads off the cut value once two supernodes remain.
func (s *ksState) cutOfTwo() (int64, []int32) {
	return s.w[1], s.groups[0]
}

// recurse is the Karger–Stein recursion: contract to n/√2 twice and take
// the better of the two recursive results. ctx is polled while the
// subproblem is still larger than ksCancelCheckN.
func recurse(ctx context.Context, s *ksState, rng *rand.Rand) (int64, []int32, error) {
	if s.n > ksCancelCheckN {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
	}
	if s.n <= 6 {
		s.contractTo(2, rng)
		v, g := s.cutOfTwo()
		return v, g, nil
	}
	t := int(math.Ceil(1 + float64(s.n)/math.Sqrt2))
	if t >= s.n {
		t = s.n - 1
	}
	a := s.clone()
	a.contractTo(t, rng)
	v1, g1, err := recurse(ctx, a, rng)
	if err != nil {
		return 0, nil, err
	}
	s.contractTo(t, rng)
	v2, g2, err := recurse(ctx, s, rng)
	if err != nil {
		return 0, nil, err
	}
	if v1 <= v2 {
		return v1, g1, nil
	}
	return v2, g2, nil
}

// KargerSteinOnce runs one recursive-contraction trial (success
// probability Ω(1/log n)) with an explicit seed; the trial's randomness
// comes from a private rand.Rand, never package-global state.
func KargerSteinOnce(g *graph.Graph, seed int64) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	rng := rand.New(rand.NewSource(seed))
	v, group, err := recurse(context.Background(), newKSState(g), rng)
	if err != nil {
		return 0, nil, err
	}
	inCut := make([]bool, n)
	for _, x := range group {
		inCut[x] = true
	}
	return v, inCut, nil
}

// ksTrials is the high-probability repetition count ⌈log²n⌉+1.
func ksTrials(n int) int {
	log2n := math.Log2(float64(n))
	return int(math.Ceil(log2n*log2n)) + 1
}

// KargerSteinTrials reports how many independent trials KargerStein runs
// on an n-vertex graph — the engine's coarse work-unit count.
func KargerSteinTrials(n int) int { return ksTrials(n) }

// KargerStein repeats the recursion ⌈log²n⌉+1 times for a high-probability
// result (Θ(n² log³ n) total work — the Table 1 comparator). Deterministic
// in seed: trial i runs on seed + i*ksSeedStep.
func KargerStein(g *graph.Graph, seed int64) (int64, []bool, error) {
	return KargerSteinContext(context.Background(), g, seed, nil, nil, trace.SpanRef{})
}

// KargerSteinContext is KargerStein promoted to a serveable engine. The
// independent trials run concurrently on pool (nil means the shared
// default pool), each on its own rand.Rand seeded from the explicit
// per-trial derivation, and the winner is the minimum value with ties
// broken by lowest trial index — bit-identical to the sequential loop at
// every pool width. ctx is polled at trial entry and inside each trial's
// recursion while subproblems are large, so cancellation unwinds
// promptly; sink (nil-safe) enters PhaseContract and counts one coarse
// step per finished trial on the tree counters; sp, when active, gains
// one "contract" child span tagged with the trial count.
func KargerSteinContext(ctx context.Context, g *graph.Graph, seed int64, pool *par.Pool, sink *progress.Sink, sp trace.SpanRef) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	trials := ksTrials(n)
	csp := sp.Child("contract")
	defer csp.End()
	csp.AttrInt("trials", int64(trials))
	sink.EnterPhase(progress.PhaseContract)
	sink.AddTrees(int64(trials))
	vals := make([]int64, trials)
	cuts := make([][]bool, trials)
	var failed atomic.Bool // set on cancellation; read only after the join
	// One trial per pool task: each allocates its own dense state, so
	// live memory is bounded by pool width, not trial count.
	pool.ForGrain(trials, 1, func(i int) {
		if ctx.Err() != nil {
			failed.Store(true)
			return
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*ksSeedStep))
		v, group, err := recurse(ctx, newKSState(g), rng)
		if err != nil {
			failed.Store(true)
			return
		}
		inCut := make([]bool, n)
		for _, x := range group {
			inCut[x] = true
		}
		vals[i], cuts[i] = v, inCut
		sink.TreeDone()
	})
	if failed.Load() || ctx.Err() != nil {
		return 0, nil, fmt.Errorf("baseline: canceled: %w", ctx.Err())
	}
	best := 0
	for i := 1; i < trials; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return vals[best], cuts[best], nil
}

// BruteForce enumerates all 2^(n-1) cuts (n ≤ 24 enforced).
func BruteForce(g *graph.Graph) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	if n > 24 {
		return 0, nil, fmt.Errorf("baseline: brute force limited to 24 vertices, got %d", n)
	}
	best := int64(-1)
	var bestMask uint64
	inCut := make([]bool, n)
	for mask := uint64(1); mask < 1<<uint(n-1); mask++ {
		for v := 0; v < n; v++ {
			inCut[v] = mask&(1<<uint(v)) != 0
		}
		if v := g.CutValue(inCut); best < 0 || v < best {
			best, bestMask = v, mask
		}
	}
	for v := 0; v < n; v++ {
		inCut[v] = bestMask&(1<<uint(v)) != 0
	}
	return best, inCut, nil
}
