package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// ksState is a contracted graph in dense form, the natural representation
// for recursive contraction (and the source of its Θ(n²) work per level).
type ksState struct {
	n      int       // supernodes
	w      []int64   // n*n merged weights
	rowSum []int64   // incident weight per supernode
	groups [][]int32 // original vertices per supernode
}

func newKSState(g *graph.Graph) *ksState {
	n := g.N()
	s := &ksState{n: n, w: make([]int64, n*n), rowSum: make([]int64, n), groups: make([][]int32, n)}
	for v := 0; v < n; v++ {
		s.groups[v] = []int32{int32(v)}
	}
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		s.w[int(e.U)*n+int(e.V)] += e.W
		s.w[int(e.V)*n+int(e.U)] += e.W
		s.rowSum[e.U] += e.W
		s.rowSum[e.V] += e.W
	}
	return s
}

func (s *ksState) clone() *ksState {
	c := &ksState{n: s.n, w: append([]int64(nil), s.w...), rowSum: append([]int64(nil), s.rowSum...)}
	c.groups = make([][]int32, len(s.groups))
	for i, g := range s.groups {
		c.groups[i] = append([]int32(nil), g...)
	}
	return c
}

// contractRandom merges a random edge chosen proportionally to weight.
// Supernode indices stay dense by swapping the last row in.
func (s *ksState) contractRandom(rng *rand.Rand) {
	// Pick endpoint u ∝ rowSum, then v ∝ w[u][·].
	var total int64
	for i := 0; i < s.n; i++ {
		total += s.rowSum[i]
	}
	if total == 0 {
		// Disconnected remainder: merge two arbitrary supernodes.
		s.merge(0, 1)
		return
	}
	r := rng.Int63n(total)
	u := 0
	for ; u < s.n; u++ {
		if r < s.rowSum[u] {
			break
		}
		r -= s.rowSum[u]
	}
	r = rng.Int63n(s.rowSum[u])
	v := 0
	for ; v < s.n; v++ {
		if v == u {
			continue
		}
		if r < s.w[u*s.n+v] {
			break
		}
		r -= s.w[u*s.n+v]
	}
	s.merge(u, v)
}

// merge contracts supernodes u and v (u keeps the identity; the last
// supernode moves into v's slot).
func (s *ksState) merge(u, v int) {
	n := s.n
	// Fold v's row into u.
	s.rowSum[u] += s.rowSum[v] - 2*s.w[u*n+v]
	for x := 0; x < n; x++ {
		if x == u || x == v {
			continue
		}
		s.w[u*n+x] += s.w[v*n+x]
		s.w[x*n+u] = s.w[u*n+x]
	}
	s.w[u*n+v] = 0
	s.w[v*n+u] = 0
	s.groups[u] = append(s.groups[u], s.groups[v]...)
	// Move the last supernode into slot v.
	last := n - 1
	if v != last {
		for x := 0; x < n; x++ {
			s.w[v*n+x] = s.w[last*n+x]
			s.w[x*n+v] = s.w[x*n+last]
		}
		s.w[v*n+v] = 0
		s.rowSum[v] = s.rowSum[last]
		s.groups[v] = s.groups[last]
	}
	s.n = n - 1
	s.compactInto(n)
}

// compactInto rewrites the (n)x(n) matrix into (n')x(n') row stride.
func (s *ksState) compactInto(oldN int) {
	n := s.n
	if n == oldN {
		return
	}
	for r := 1; r < n; r++ {
		copy(s.w[r*n:(r+1)*n], s.w[r*oldN:r*oldN+n])
	}
	s.w = s.w[:n*n]
	s.rowSum = s.rowSum[:n]
	s.groups = s.groups[:n]
}

// contractTo contracts until t supernodes remain.
func (s *ksState) contractTo(t int, rng *rand.Rand) {
	for s.n > t {
		s.contractRandom(rng)
	}
}

// cutOfTwo reads off the cut value once two supernodes remain.
func (s *ksState) cutOfTwo() (int64, []int32) {
	return s.w[1], s.groups[0]
}

// recurse is the Karger–Stein recursion: contract to n/√2 twice and take
// the better of the two recursive results.
func recurse(s *ksState, rng *rand.Rand) (int64, []int32) {
	if s.n <= 6 {
		s.contractTo(2, rng)
		return s.cutOfTwo()
	}
	t := int(math.Ceil(1 + float64(s.n)/math.Sqrt2))
	if t >= s.n {
		t = s.n - 1
	}
	a := s.clone()
	a.contractTo(t, rng)
	v1, g1 := recurse(a, rng)
	s.contractTo(t, rng)
	v2, g2 := recurse(s, rng)
	if v1 <= v2 {
		return v1, g1
	}
	return v2, g2
}

// KargerSteinOnce runs one recursive-contraction trial (success
// probability Ω(1/log n)).
func KargerSteinOnce(g *graph.Graph, seed int64) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	rng := rand.New(rand.NewSource(seed))
	v, group := recurse(newKSState(g), rng)
	inCut := make([]bool, n)
	for _, x := range group {
		inCut[x] = true
	}
	return v, inCut, nil
}

// KargerStein repeats the recursion ⌈c·log²n⌉ times for a high-probability
// result (Θ(n² log³ n) total work — the Table 1 comparator).
func KargerStein(g *graph.Graph, seed int64) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	log2n := math.Log2(float64(n))
	trials := int(math.Ceil(log2n*log2n)) + 1
	best := int64(-1)
	var bestCut []bool
	for i := 0; i < trials; i++ {
		v, cut, err := KargerSteinOnce(g, seed+int64(i)*7919)
		if err != nil {
			return 0, nil, err
		}
		if best < 0 || v < best {
			best, bestCut = v, cut
		}
	}
	return best, bestCut, nil
}

// BruteForce enumerates all 2^(n-1) cuts (n ≤ 24 enforced).
func BruteForce(g *graph.Graph) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	if n > 24 {
		return 0, nil, fmt.Errorf("baseline: brute force limited to 24 vertices, got %d", n)
	}
	best := int64(-1)
	var bestMask uint64
	inCut := make([]bool, n)
	for mask := uint64(1); mask < 1<<uint(n-1); mask++ {
		for v := 0; v < n; v++ {
			inCut[v] = mask&(1<<uint(v)) != 0
		}
		if v := g.CutValue(inCut); best < 0 || v < best {
			best, bestMask = v, mask
		}
	}
	for v := 0; v < n; v++ {
		inCut[v] = bestMask&(1<<uint(v)) != 0
	}
	return best, inCut, nil
}
