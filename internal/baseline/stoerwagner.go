// Package baseline implements the comparison algorithms of the paper's
// Table 1 and related work section: Stoer–Wagner's deterministic minimum
// cut (the exact oracle for correctness experiments, §1.2.2 [32]),
// Karger–Stein recursive contraction (the classic Θ(n² polylog) Monte
// Carlo algorithm, §1.2.3 [18], which is also the "best previous
// polylog-depth, quadratic-work" regime the paper improves on), and
// exhaustive enumeration for tiny instances.
//
// Both comparison algorithms come in a Context form (cancellation,
// par.Pool, progress, tracing) so internal/engine can serve them behind
// the same scheduler seams as the paper solver.
package baseline

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
)

// swGrain keeps the pool off tiny inner loops: the O(n) weight
// accumulation per maximum-adjacency step only forks once a phase has at
// least this many active supernodes. Below it, fork overhead dominates
// the loop body.
const swGrain = 2048

// StoerWagner computes an exact global minimum cut deterministically in
// O(n³) time (the simple array implementation of the O(nm + n² log n)
// algorithm). A disconnected graph yields value 0. Returns the cut value
// and one side of an optimal partition.
func StoerWagner(g *graph.Graph) (int64, []bool, error) {
	return StoerWagnerContext(context.Background(), g, nil, nil, trace.SpanRef{})
}

// StoerWagnerContext is StoerWagner promoted to a serveable engine: ctx
// is checked between contraction phases (there are n-1 of them, each
// O(active²) work) so cancellation is prompt; the per-phase weight
// loops run on pool (nil means the shared default pool) — every parallel
// loop writes disjoint indices and the phase's vertex selection stays
// sequential, so the result is bit-identical at every pool width; sink
// (nil-safe) enters PhaseContract and counts one coarse step per
// contraction phase on the tree counters, notifying at the same seam
// where ctx is checked; sp, when active, gains one "contract" child span
// tagged with the phase count.
func StoerWagnerContext(ctx context.Context, g *graph.Graph, pool *par.Pool, sink *progress.Sink, sp trace.SpanRef) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	csp := sp.Child("contract")
	defer csp.End()
	csp.AttrInt("phases", int64(n-1))
	sink.EnterPhase(progress.PhaseContract)
	sink.AddTrees(int64(n - 1))
	// Dense weight matrix with parallel edges merged; loops dropped.
	w := make([]int64, n*n)
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		w[int(e.U)*n+int(e.V)] += e.W
		w[int(e.V)*n+int(e.U)] += e.W
	}
	// groups[v] lists the original vertices merged into supernode v.
	groups := make([][]int32, n)
	for v := range groups {
		groups[v] = []int32{int32(v)}
	}
	active := make([]int32, n)
	for i := range active {
		active[i] = int32(i)
	}
	bestVal := int64(-1)
	var bestGroup []int32
	weight := make([]int64, n) // connectivity to the growing set A
	inA := make([]bool, n)
	for len(active) > 1 {
		if err := ctx.Err(); err != nil {
			return 0, nil, fmt.Errorf("baseline: canceled: %w", err)
		}
		// Maximum adjacency (minimum cut phase) search.
		for _, v := range active {
			weight[v] = 0
			inA[v] = false
		}
		var prev, last int32 = -1, active[0]
		inA[last] = true
		pool.ForGrain(len(active), swGrain, func(i int) {
			if u := active[i]; u != last {
				weight[u] = w[int(last)*n+int(u)]
			}
		})
		for step := 1; step < len(active); step++ {
			// The selection scans sequentially so ties break by position,
			// independent of pool width.
			var pick int32 = -1
			for _, u := range active {
				if !inA[u] && (pick < 0 || weight[u] > weight[pick]) {
					pick = u
				}
			}
			inA[pick] = true
			prev, last = last, pick
			if step < len(active)-1 {
				pool.ForGrain(len(active), swGrain, func(i int) {
					if u := active[i]; !inA[u] {
						weight[u] += w[int(pick)*n+int(u)]
					}
				})
			}
		}
		// Cut-of-the-phase: the last vertex alone against the rest.
		if bestVal < 0 || weight[last] < bestVal {
			bestVal = weight[last]
			bestGroup = append([]int32(nil), groups[last]...)
		}
		// Merge last into prev.
		pool.ForGrain(len(active), swGrain, func(i int) {
			if u := active[i]; u != last && u != prev {
				w[int(prev)*n+int(u)] += w[int(last)*n+int(u)]
				w[int(u)*n+int(prev)] = w[int(prev)*n+int(u)]
			}
		})
		groups[prev] = append(groups[prev], groups[last]...)
		out := active[:0]
		for _, u := range active {
			if u != last {
				out = append(out, u)
			}
		}
		active = out
		sink.TreeDone()
	}
	inCut := make([]bool, n)
	for _, v := range bestGroup {
		inCut[v] = true
	}
	return bestVal, inCut, nil
}
