// Package baseline implements the comparison algorithms of the paper's
// Table 1 and related work section: Stoer–Wagner's deterministic minimum
// cut (the exact oracle for correctness experiments, §1.2.2 [32]),
// Karger–Stein recursive contraction (the classic Θ(n² polylog) Monte
// Carlo algorithm, §1.2.3 [18], which is also the "best previous
// polylog-depth, quadratic-work" regime the paper improves on), and
// exhaustive enumeration for tiny instances.
package baseline

import (
	"fmt"

	"repro/internal/graph"
)

// StoerWagner computes an exact global minimum cut deterministically in
// O(n³) time (the simple array implementation of the O(nm + n² log n)
// algorithm). A disconnected graph yields value 0. Returns the cut value
// and one side of an optimal partition.
func StoerWagner(g *graph.Graph) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("baseline: minimum cut needs at least 2 vertices")
	}
	// Dense weight matrix with parallel edges merged; loops dropped.
	w := make([]int64, n*n)
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		w[int(e.U)*n+int(e.V)] += e.W
		w[int(e.V)*n+int(e.U)] += e.W
	}
	// groups[v] lists the original vertices merged into supernode v.
	groups := make([][]int32, n)
	for v := range groups {
		groups[v] = []int32{int32(v)}
	}
	active := make([]int32, n)
	for i := range active {
		active[i] = int32(i)
	}
	bestVal := int64(-1)
	var bestGroup []int32
	weight := make([]int64, n) // connectivity to the growing set A
	inA := make([]bool, n)
	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase) search.
		for _, v := range active {
			weight[v] = 0
			inA[v] = false
		}
		var prev, last int32 = -1, active[0]
		inA[last] = true
		for _, u := range active {
			if u != last {
				weight[u] = w[int(last)*n+int(u)]
			}
		}
		for step := 1; step < len(active); step++ {
			var pick int32 = -1
			for _, u := range active {
				if !inA[u] && (pick < 0 || weight[u] > weight[pick]) {
					pick = u
				}
			}
			inA[pick] = true
			prev, last = last, pick
			if step < len(active)-1 {
				for _, u := range active {
					if !inA[u] {
						weight[u] += w[int(pick)*n+int(u)]
					}
				}
			}
		}
		// Cut-of-the-phase: the last vertex alone against the rest.
		if bestVal < 0 || weight[last] < bestVal {
			bestVal = weight[last]
			bestGroup = append([]int32(nil), groups[last]...)
		}
		// Merge last into prev.
		for _, u := range active {
			if u != last && u != prev {
				w[int(prev)*n+int(u)] += w[int(last)*n+int(u)]
				w[int(u)*n+int(prev)] = w[int(prev)*n+int(u)]
			}
		}
		groups[prev] = append(groups[prev], groups[last]...)
		out := active[:0]
		for _, u := range active {
			if u != last {
				out = append(out, u)
			}
		}
		active = out
	}
	inCut := make([]bool, n)
	for _, v := range bestGroup {
		inCut[v] = true
	}
	return bestVal, inCut, nil
}
