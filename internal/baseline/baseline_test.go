package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestStoerWagnerAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		n := 2 + int(seed*5)%12
		g := gen.RandomConnected(n, n-1+int(seed*3)%(2*n), 9, seed)
		want, wantCut, err := BruteForce(g)
		if err != nil {
			t.Fatal(err)
		}
		got, cut, err := StoerWagner(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: SW=%d brute=%d", seed, got, want)
		}
		if v := g.CutValue(cut); v != want {
			t.Fatalf("seed %d: SW partition value %d want %d", seed, v, want)
		}
		if v := g.CutValue(wantCut); v != want {
			t.Fatalf("seed %d: brute partition inconsistent", seed)
		}
	}
}

func TestStoerWagnerPlanted(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := gen.PlantedCut(10, 14, 3, seed)
		got, cut, err := StoerWagner(p.G)
		if err != nil {
			t.Fatal(err)
		}
		if got != p.CutValue {
			t.Fatalf("seed %d: SW=%d planted=%d", seed, got, p.CutValue)
		}
		// Must recover exactly the planted bipartition (it is unique).
		same := cut[0] == p.InCut[0]
		for v := range cut {
			if (cut[v] == p.InCut[v]) != same {
				t.Fatalf("seed %d: partition differs from planted", seed)
			}
		}
	}
}

func TestStoerWagnerDisconnected(t *testing.T) {
	g := gen.Disconnected(6, 7, 1)
	got, cut, err := StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("disconnected SW=%d want 0", got)
	}
	if v := g.CutValue(cut); v != 0 {
		t.Fatalf("partition crosses %d weight", v)
	}
}

func TestStoerWagnerParallelEdgesAndLoops(t *testing.T) {
	g := graph.New(3)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 3}, {0, 1, 4}, {1, 2, 2}, {1, 1, 99}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("got %d want 2", got)
	}
}

func TestKargerSteinAgainstStoerWagner(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 6 + int(seed*7)%30
		g := gen.RandomConnected(n, 3*n, 12, seed+40)
		want, _, err := StoerWagner(g)
		if err != nil {
			t.Fatal(err)
		}
		got, cut, err := KargerStein(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d (n=%d): KS=%d SW=%d", seed, n, got, want)
		}
		if v := g.CutValue(cut); v != got {
			t.Fatalf("seed %d: KS partition value %d claimed %d", seed, v, got)
		}
	}
}

func TestKargerSteinDumbbell(t *testing.T) {
	p := gen.Dumbbell(8, 2, 3)
	got, _, err := KargerStein(p.G, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("KS=%d want 2", got)
	}
}

func TestBruteForceRejectsLarge(t *testing.T) {
	g := gen.RandomConnected(30, 60, 5, 1)
	if _, _, err := BruteForce(g); err == nil {
		t.Fatal("n=30 accepted")
	}
}

func TestTooSmallGraphs(t *testing.T) {
	g := graph.New(1)
	if _, _, err := StoerWagner(g); err == nil {
		t.Fatal("n=1 accepted by SW")
	}
	if _, _, err := KargerStein(g, 1); err == nil {
		t.Fatal("n=1 accepted by KS")
	}
	if _, _, err := BruteForce(g); err == nil {
		t.Fatal("n=1 accepted by brute")
	}
}
