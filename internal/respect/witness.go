package respect

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/par"
	"repro/internal/trace"
	"repro/internal/wd"
)

// Finding is an opaque result of Scan that Witness can expand into a
// partition.
type Finding struct {
	Value int64
	prov  provenance
}

// Scan returns the smallest at-most-2-respecting cut value and enough
// provenance to reconstruct the partition later (so callers can scan many
// trees and extract a witness only for the winner).
func Scan(g *graph.Graph, parent []int32, pool *par.Pool, m *wd.Meter) (Finding, error) {
	return ScanContext(context.Background(), g, parent, pool, m, nil, trace.SpanRef{})
}

// Witness reconstructs one side of the cut found by Scan over the original
// vertices. It re-runs the (deterministic) phase recursion up to the
// winning phase, then recomputes the winning query's view directly along
// one root path.
func Witness(g *graph.Graph, parent []int32, f Finding, pool *par.Pool, m *wd.Meter) ([]bool, error) {
	inCut, err := witness(g, parent, f.prov, pool, m)
	if err != nil {
		return nil, err
	}
	if got := g.CutValueOn(pool, inCut); got != f.Value {
		return nil, fmt.Errorf("respect: witness value %d does not match scan value %d", got, f.Value)
	}
	return inCut, nil
}

func witness(g *graph.Graph, parent []int32, prov provenance, pool *par.Pool, m *wd.Meter) ([]bool, error) {
	var pv phaseView
	if _, _, err := scan(g, parent, prov.phase, &pv, pool, m); err != nil {
		return nil, err
	}
	n := g.N()
	inCut := make([]bool, n)
	switch prov.kind {
	case kindOne:
		pool.For(n, func(o int) {
			inCut[o] = pv.t.IsAncestor(prov.y, pv.origOf[o])
		})
		m.Add(int64(n), 1)
		return inCut, nil
	case kindPair, kindDiff:
		x, err := findPartner(&pv, prov, pool, m)
		if err != nil {
			return nil, err
		}
		y := prov.y
		if prov.kind == kindPair {
			// S = y↓ ∪ x↓ (Figure 12).
			pool.For(n, func(o int) {
				cur := pv.origOf[o]
				inCut[o] = pv.t.IsAncestor(y, cur) || pv.t.IsAncestor(x, cur)
			})
		} else {
			// S = x↓ − y↓ (Figure 15).
			pool.For(n, func(o int) {
				cur := pv.origOf[o]
				inCut[o] = pv.t.IsAncestor(x, cur) && !pv.t.IsAncestor(y, cur)
			})
		}
		m.Add(int64(n), 1)
		return inCut, nil
	}
	return nil, fmt.Errorf("respect: unknown candidate kind %q", prov.kind)
}

// findPartner recomputes the weights the winning MinPath query saw, but
// only along the chain from the query target to the root: the Minimum
// Path weight of a chain vertex x at that moment was C(x↓) plus the
// (±2w) contributions of every edge incident to the processed set y↓
// whose other endpoint descends from x — and the chain vertices that are
// ancestors of such an endpoint b form exactly the suffix of the chain
// above LCA(target, b).
func findPartner(pv *phaseView, prov provenance, pool *par.Pool, m *wd.Meter) (int32, error) {
	t := pv.t
	// Locate y's bough; the processed set at y's up-visit is the bough
	// suffix from y down to the leaf.
	var bough []int32
	pos := -1
	for _, p := range pv.paths {
		for i, v := range p {
			if v == prov.y {
				bough, pos = p, i
				break
			}
		}
		if pos >= 0 {
			break
		}
	}
	if pos < 0 {
		return 0, fmt.Errorf("respect: witness vertex %d not in any bough", prov.y)
	}
	processed := bough[pos:]
	start := prov.z
	chainLen := int(t.Depth[start]) + 1
	acc := make([]int64, chainLen) // index j = chain vertex at depth(start)-j
	idxOf := func(x int32) int { return int(t.Depth[start] - t.Depth[x]) }
	sign := int64(-2)
	if prov.kind == kindDiff {
		sign = 2
	}
	l := lca.New(t, pool, m)
	adj := pv.g.BuildAdjOn(pool)
	for _, a := range processed {
		for i := adj.Off[a]; i < adj.Off[a+1]; i++ {
			b, w := adj.Nbr[i], adj.W[i]
			anc := l.Query(start, b) // lowest chain vertex that is an ancestor of b
			acc[idxOf(anc)] += sign * w
		}
	}
	if prov.kind == kindPair {
		// The ∞ block applies to all ancestors of the bough leaf.
		leaf := bough[len(bough)-1]
		acc[idxOf(l.Query(start, leaf))] += infWeight
	}
	// A contribution at index j applies to chain[j] and everything above.
	best, arg := maxValue, int32(-1)
	run := int64(0)
	v := start
	for j := 0; j < chainLen; j++ {
		run += acc[j]
		if w := pv.c[v] + run; w < best {
			best, arg = w, v
		}
		v = t.Parent[v]
	}
	m.Add(int64(chainLen), int64(chainLen))
	if arg < 0 {
		return 0, fmt.Errorf("respect: witness chain empty")
	}
	return arg, nil
}
