package respect

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/tree"
	"repro/internal/wd"
)

// contraction maps one bough phase's graph/tree to the next (§4.3 step 2):
// every vertex of a bough collapses into the parent of the bough's top
// vertex; self-loops are dropped; parallel edges are kept ("it is not
// necessary to combine parallel edges").
type contraction struct {
	g *graph.Graph
	t *tree.Tree
	// toNew[v] = compact id of the supernode that absorbed old vertex v.
	toNew []int32
}

// contractBoughs removes the bough members from (g, t). It returns nil
// when the whole remaining tree was a single bough (the recursion ends).
func contractBoughs(g *graph.Graph, t *tree.Tree, member []bool, paths [][]int32, pool *par.Pool, m *wd.Meter) *contraction {
	n := t.N()
	// target[v]: the surviving vertex absorbing v.
	target := make([]int32, n)
	pool.For(n, func(v int) { target[v] = int32(v) })
	for _, p := range paths {
		top := p[0]
		parent := t.Parent[top]
		if parent == tree.None {
			// The bough reaches the root: everything is peeled.
			return nil
		}
		for _, v := range p {
			target[v] = parent
		}
	}
	m.Add(int64(n), 1)
	// Compact ids for survivors.
	keep := make([]int64, n+1)
	pool.For(n, func(v int) {
		if !member[v] {
			keep[v+1] = 1
		}
	})
	total := pool.InclusiveSum(keep, keep)
	newN := int(total)
	toNew := make([]int32, n)
	pool.For(n, func(v int) {
		if member[v] {
			toNew[v] = -1
		} else {
			toNew[v] = int32(keep[v])
		}
	})
	// Route bough members through their absorbing survivor.
	pool.For(n, func(v int) {
		if member[v] {
			toNew[v] = toNew[target[v]]
		}
	})
	m.Add(3*int64(n), 3+wd.CeilLog2(n))
	// New tree: parents among survivors are unchanged.
	parent := make([]int32, newN)
	pool.For(n, func(v int) {
		if member[v] {
			return
		}
		p := t.Parent[v]
		if p == tree.None {
			parent[toNew[v]] = tree.None
		} else {
			parent[toNew[v]] = toNew[p]
		}
	})
	nt, err := tree.FromParentParallel(parent, pool, m)
	if err != nil {
		panic("respect: contraction produced an invalid tree: " + err.Error())
	}
	// New graph: remap endpoints, drop loops, and combine parallel edges.
	// The paper notes combining is not necessary for correctness (§4.3);
	// we do it anyway because it caps the edge count of later phases at
	// the square of the shrinking vertex count, which matters on dense
	// inputs. Cut values are preserved exactly.
	type mapped struct {
		key int64
		w   int64
	}
	remapped := make([]mapped, 0, g.M())
	for _, e := range g.Edges() {
		nu, nv := toNew[e.U], toNew[e.V]
		if nu == nv {
			continue
		}
		if nu > nv {
			nu, nv = nv, nu
		}
		remapped = append(remapped, mapped{key: int64(nu)<<32 | int64(nv), w: e.W})
	}
	par.SortStableOn(pool, remapped, func(a, b mapped) bool { return a.key < b.key })
	ng := graph.New(newN)
	for i := 0; i < len(remapped); {
		key := remapped[i].key
		var w int64
		for ; i < len(remapped) && remapped[i].key == key; i++ {
			w += remapped[i].w
		}
		if err := ng.AddEdge(int(key>>32), int(key&0xffffffff), w); err != nil {
			panic("respect: contraction produced an invalid edge: " + err.Error())
		}
	}
	m.Add(int64(g.M())*wd.CeilLog2(g.M()), wd.CeilLog2(g.M())+1)
	return &contraction{g: ng, t: nt, toNew: toNew}
}
