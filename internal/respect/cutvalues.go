// Package respect finds the smallest cut of a graph G that crosses at most
// two edges of a given spanning tree T (paper §4, Lemma 13): the missing
// piece that makes Karger's algorithm parallel. The search walks the
// boughs of T bottom-up, maintaining cut estimates in the parallel Minimum
// Path structure, handles both shapes of a 2-respecting cut — the union of
// two incomparable descendant sets (§4.1) and the difference of two nested
// ones (Appendix A) — and recurses on the bough-contracted graph (§4.3).
package respect

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/par"
	"repro/internal/tree"
	"repro/internal/wd"
)

// CutValues computes, for every vertex v of the rooted spanning tree t,
// the value C(v↓) of the cut that has the descendants of v on one side
// (Lemma 11), plus the subtree-internal weight ρ↓(v) — the total weight of
// edges with both endpoints in v↓ — needed by the descendant case
// (Appendix A). Edges with both endpoints in v↓ are exactly those whose
// LCA lies in v↓, so both reduce to subtree sums:
//
//	C(v↓) = Σ_{x∈v↓} S(x) − 2·ρ↓(v),   ρ↓(v) = Σ_{x∈v↓} ρ(x)
//
// with S the weighted degree and ρ(x) the weight of edges whose LCA is x.
func CutValues(g *graph.Graph, t *tree.Tree, l *lca.LCA, pool *par.Pool, m *wd.Meter) (c, rhoDown []int64) {
	n := t.N()
	ar := pool.Arena()
	sP := ar.Int64(n)
	rhoP := ar.Int64(n)
	s, rho := *sP, *rhoP
	clear(s) // atomic-add accumulators must start at zero
	clear(rho)
	edges := g.Edges()
	pool.ForChunk(len(edges), par.Grain, func(lo, hi int) {
		for _, e := range edges[lo:hi] {
			if e.U == e.V {
				continue
			}
			atomic.AddInt64(&s[e.U], e.W)
			atomic.AddInt64(&s[e.V], e.W)
			atomic.AddInt64(&rho[l.Query(e.U, e.V)], e.W)
		}
	})
	m.Add(int64(len(edges)), 1)
	sDown := t.SubtreeSum(s, pool, m)
	rhoDown = t.SubtreeSum(rho, pool, m)
	ar.PutInt64(sP)
	ar.PutInt64(rhoP)
	c = make([]int64, n)
	pool.For(n, func(v int) {
		c[v] = sDown[v] - 2*rhoDown[v]
	})
	m.Add(int64(n), 1)
	return c, rhoDown
}

// minOneRespect returns the smallest 1-respecting cut value and its vertex
// (minimum of C(v↓) over non-root v).
func minOneRespect(c []int64, t *tree.Tree) (int64, int32) {
	best := int64(1)<<62 - 1
	arg := int32(-1)
	for v := int32(0); v < int32(len(c)); v++ {
		if v != t.Root && c[v] < best {
			best = c[v]
			arg = v
		}
	}
	return best, arg
}
