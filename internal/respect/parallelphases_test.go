package respect

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/wd"
)

// TestParallelPhasesMatchesSequential: the two execution schedules of
// §4.3 (phase-at-a-time vs all-phases-concurrently) are different
// orderings of the same deterministic computation and must agree exactly.
func TestParallelPhasesMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 8 + int(seed*29)%120
		g := gen.RandomConnected(n, 3*n, 12, seed)
		parent := gen.SpanningTreeParent(g, seed+500)
		seq, err := Scan(g, parent, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := ScanParallelPhases(g, parent, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Value != pp.Value {
			t.Fatalf("seed %d: sequential %d vs parallel-phases %d", seed, seq.Value, pp.Value)
		}
		// The witness path must work from either finding.
		inCut, err := Witness(g, parent, pp, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.CutValue(inCut); got != pp.Value {
			t.Fatalf("seed %d: witness %d want %d", seed, got, pp.Value)
		}
	}
}

// TestParallelPhasesDepthAdvantage: deferring the batches and running them
// as parallel branches must reduce the recorded model depth (that is its
// entire purpose).
func TestParallelPhasesDepthAdvantage(t *testing.T) {
	g := gen.RandomConnected(512, 2048, 20, 9)
	parent := gen.SpanningTreeParent(g, 10)
	var mSeq, mPar wd.Meter
	if _, err := Scan(g, parent, nil, &mSeq); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanParallelPhases(g, parent, nil, &mPar); err != nil {
		t.Fatal(err)
	}
	if mPar.Depth() >= mSeq.Depth() {
		t.Fatalf("parallel phases depth %d not below sequential %d", mPar.Depth(), mSeq.Depth())
	}
	// Work should be essentially unchanged (same computation).
	ratio := float64(mPar.Work()) / float64(mSeq.Work())
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("work changed by %0.2fx between modes", ratio)
	}
}
