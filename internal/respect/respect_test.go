package respect

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/lca"
	"repro/internal/tree"
)

// bruteForce enumerates every cut that crosses at most two edges of the
// tree: all v↓, all unions of incomparable v↓ ∪ u↓, and all differences
// u↓ − v↓ for v below u. It is the oracle for Lemma 13. The testing.T is
// optional (property tests pass nil and rely on the panic on bad input).
func bruteForce(t *testing.T, g *graph.Graph, parent []int32) int64 {
	tr, err := tree.FromParent(parent)
	if err != nil {
		panic(err)
	}
	n := g.N()
	best := int64(1)<<62 - 1
	inCut := make([]bool, n)
	eval := func() {
		if v := g.CutValue(inCut); v < best {
			best = v
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if v == tr.Root {
			continue
		}
		for o := int32(0); o < int32(n); o++ {
			inCut[o] = tr.IsAncestor(v, o)
		}
		eval()
		for u := int32(0); u < int32(n); u++ {
			if u == tr.Root || u == v {
				continue
			}
			switch {
			case tr.IsAncestor(u, v): // difference u↓ − v↓
				for o := int32(0); o < int32(n); o++ {
					inCut[o] = tr.IsAncestor(u, o) && !tr.IsAncestor(v, o)
				}
				eval()
			case tr.IsAncestor(v, u): // handled symmetrically when roles swap
			default: // incomparable union
				for o := int32(0); o < int32(n); o++ {
					inCut[o] = tr.IsAncestor(v, o) || tr.IsAncestor(u, o)
				}
				eval()
			}
		}
	}
	return best
}

func randomParent(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	parent := make([]int32, n)
	parent[perm[0]] = tree.None
	for i := 1; i < n; i++ {
		parent[perm[i]] = int32(perm[rng.Intn(i)])
	}
	return parent
}

// spanningParent extracts a random spanning tree of g as a parent array.
func spanningParent(t *testing.T, g *graph.Graph, seed int64) []int32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	adj := g.BuildAdj()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = tree.None
	}
	seen := make([]bool, n)
	order := rng.Perm(n)
	root := int32(order[0])
	seen[root] = true
	// Random-order DFS.
	stack := []int32{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		deg := adj.Off[v+1] - adj.Off[v]
		for _, di := range rng.Perm(int(deg)) {
			u := adj.Nbr[adj.Off[v]+int32(di)]
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				stack = append(stack, u)
			}
		}
	}
	for _, ok := range seen {
		if !ok {
			t.Fatal("graph not connected")
		}
	}
	return parent
}

func TestCutValuesAgainstNaive(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 3 + int(seed*17)%40
		g := gen.RandomConnected(n, 3*n, 12, seed)
		parent := spanningParent(t, g, seed+10)
		tr, err := tree.FromParent(parent)
		if err != nil {
			t.Fatal(err)
		}
		l := lca.New(tr, nil, nil)
		c, rhoDown := CutValues(g, tr, l, nil, nil)
		inCut := make([]bool, n)
		for v := int32(0); v < int32(n); v++ {
			for o := int32(0); o < int32(n); o++ {
				inCut[o] = tr.IsAncestor(v, o)
			}
			if got := g.CutValue(inCut); got != c[v] {
				t.Fatalf("seed %d: C(%d↓)=%d want %d", seed, v, c[v], got)
			}
			// ρ↓: weight of edges with both endpoints in v↓.
			var want int64
			for _, e := range g.Edges() {
				if e.U != e.V && inCut[e.U] && inCut[e.V] {
					want += e.W
				}
			}
			if rhoDown[v] != want {
				t.Fatalf("seed %d: rho↓(%d)=%d want %d", seed, v, rhoDown[v], want)
			}
		}
	}
}

// TestFigure2ConstrainedCut reproduces the situation of paper Figure 2: a
// cut that crosses two tree edges beats every 1-respecting cut.
func TestFigure2ConstrainedCut(t *testing.T) {
	// Path tree 0-1-2-3-4 rooted at 0 embedded in a graph where the best
	// cut takes {1,2} out of the middle: tree edges (0,1) and (2,3) are
	// cut. Heavy edges elsewhere make every single-tree-edge cut larger.
	g := graph.New(5)
	must := func(u, v int, w int64) {
		t.Helper()
		if err := g.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	must(0, 1, 1) // tree edge, light
	must(1, 2, 9) // tree edge, heavy (inside the cut side)
	must(2, 3, 1) // tree edge, light
	must(3, 4, 9) // tree edge
	must(0, 4, 9) // heavy back edge keeps 1-respecting cuts big
	parent := []int32{tree.None, 0, 1, 2, 3}
	want := bruteForce(t, g, parent)
	if want != 2 { // {1,2} vs rest: edges (0,1) and (2,3)
		t.Fatalf("brute force says %d, test premise broken", want)
	}
	res, err := TwoRespect(g, parent, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("TwoRespect=%d want 2", res.Value)
	}
	if got := g.CutValue(res.InCut); got != 2 {
		t.Fatalf("witness value %d want 2", got)
	}
}

func TestTwoRespectMatchesBruteForceRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		n := 2 + int(seed*13)%26
		mm := n - 1 + int(seed*7)%(3*n)
		g := gen.RandomConnected(n, mm, 10, seed)
		parent := spanningParent(t, g, seed+100)
		want := bruteForce(t, g, parent)
		res, err := TwoRespect(g, parent, true, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Value != want {
			t.Fatalf("seed %d (n=%d m=%d): TwoRespect=%d brute=%d", seed, n, mm, res.Value, want)
		}
		if got := g.CutValue(res.InCut); got != want {
			t.Fatalf("seed %d: witness=%d want %d", seed, got, want)
		}
	}
}

// TestTwoRespectArbitraryTrees: the search is well-defined for any rooted
// tree over the vertices, not only subgraph spanning trees.
func TestTwoRespectArbitraryTrees(t *testing.T) {
	for seed := int64(50); seed < 62; seed++ {
		n := 2 + int(seed*11)%22
		g := gen.RandomConnected(n, 2*n, 8, seed)
		parent := randomParent(n, seed)
		want := bruteForce(t, g, parent)
		res, err := TwoRespect(g, parent, true, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Value != want {
			t.Fatalf("seed %d: got %d want %d", seed, res.Value, want)
		}
		if got := g.CutValue(res.InCut); got != want {
			t.Fatalf("seed %d: witness=%d want %d", seed, got, want)
		}
	}
}

// TestFigure12IncomparableCase: a minimum cut that is the union of two
// incomparable descendant sets, as in Figure 12.
func TestFigure12IncomparableCase(t *testing.T) {
	//        0
	//       / \
	//      1   2
	//      |   |
	//      3   4
	// Cut = {3} ∪ {4}: tree edges (1,3) and (2,4) cut.
	g := graph.New(5)
	must := func(u, v int, w int64) {
		t.Helper()
		if err := g.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	must(0, 1, 10)
	must(0, 2, 10)
	must(1, 3, 1) // light tree edges isolate {3,4}
	must(2, 4, 1)
	must(3, 4, 20) // heavy edge binds 3 and 4 together
	parent := []int32{tree.None, 0, 0, 1, 2}
	want := bruteForce(t, g, parent)
	if want != 2 {
		t.Fatalf("premise: brute=%d", want)
	}
	res, err := TwoRespect(g, parent, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("got %d want 2", res.Value)
	}
	// The witness must be exactly {3,4} (or its complement).
	if res.InCut[3] != res.InCut[4] || res.InCut[3] == res.InCut[0] {
		t.Fatalf("witness %v does not isolate {3,4}", res.InCut)
	}
}

// TestFigure15DescendantCase: a minimum cut that is the difference of two
// nested descendant sets (Appendix A).
func TestFigure15DescendantCase(t *testing.T) {
	// Path tree 0-1-2-3 with the middle {1,2} as the best cut... but make
	// it so only the difference shape finds it: S = 1↓ − 3↓ = {1,2}.
	g := graph.New(4)
	must := func(u, v int, w int64) {
		t.Helper()
		if err := g.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	must(0, 1, 2) // tree
	must(1, 2, 30)
	must(2, 3, 2)
	must(0, 3, 5) // binds the endpoints
	parent := []int32{tree.None, 0, 1, 2}
	want := bruteForce(t, g, parent) // {1,2}: edges (0,1)+(2,3) = 4
	if want != 4 {
		t.Fatalf("premise: brute=%d", want)
	}
	res, err := TwoRespect(g, parent, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Fatalf("got %d want 4", res.Value)
	}
	if res.InCut[1] != res.InCut[2] || res.InCut[1] == res.InCut[0] || res.InCut[3] == res.InCut[1] {
		t.Fatalf("witness %v does not isolate {1,2}", res.InCut)
	}
}

// TestFigure13VisitTimes pins the bough traversal schedule.
func TestFigure13VisitTimes(t *testing.T) {
	paths := [][]int32{{2, 1, 0}, {3}, {6, 5, 4}}
	t1, t2 := visitTimes(7, paths)
	// First bough (top 2, leaf 0): up 0,1,2 from the leaf; down 3,4,5.
	if t1[0] != 0 || t1[1] != 1 || t1[2] != 2 {
		t.Fatalf("up times: %v %v %v", t1[0], t1[1], t1[2])
	}
	if t2[2] != 3 || t2[1] != 4 || t2[0] != 5 {
		t.Fatalf("down times: %v %v %v", t2[2], t2[1], t2[0])
	}
	// Second bough occupies 6,7; third 8..13.
	if t1[3] != 6 || t2[3] != 7 {
		t.Fatalf("singleton bough times %d %d", t1[3], t2[3])
	}
	if t1[4] != 8 || t1[6] != 10 || t2[4] != 13 {
		t.Fatalf("third bough times %d %d %d", t1[4], t1[6], t2[4])
	}
}

func TestTwoRespectParallelEdgesAndLoops(t *testing.T) {
	g := graph.New(4)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 3}, {0, 1, 2}, {1, 2, 1}, {2, 3, 4}, {3, 0, 2}, {2, 2, 50}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	parent := []int32{tree.None, 0, 1, 2}
	want := bruteForce(t, g, parent)
	res, err := TwoRespect(g, parent, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("got %d want %d", res.Value, want)
	}
}

func TestTwoRespectTwoVertices(t *testing.T) {
	g := graph.New(2)
	if err := g.AddEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	res, err := TwoRespect(g, []int32{tree.None, 0}, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 10 {
		t.Fatalf("got %d want 10", res.Value)
	}
}

func TestScanAndWitnessSplit(t *testing.T) {
	g := gen.RandomConnected(20, 50, 9, 77)
	parent := spanningParent(t, g, 78)
	f, err := Scan(g, parent, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inCut, err := Witness(g, parent, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CutValue(inCut); got != f.Value {
		t.Fatalf("witness %d != scan %d", got, f.Value)
	}
}
