package respect

import (
	"repro/internal/graph"
	"repro/internal/minpath"
	"repro/internal/par"
	"repro/internal/tree"
	"repro/internal/wd"
)

// infWeight is the blocking sentinel of §4.1: adding it to the weight of
// the ancestors of a bough leaf excludes them from being returned as cut
// partners; reversing the sign undoes the block exactly (weights are
// integers, so this is lossless). It dominates every real cut value (graph
// totals are capped at 2^40) while staying far from int64 overflow in the
// Minimum Prefix difference arithmetic.
const infWeight = int64(1) << 60

// queryTag identifies what to do with a MinPath query result when
// combining (§4.3 step 4 and Appendix A).
type queryTag struct {
	opIdx int32 // position in the op batch
	y     int32 // bough vertex being visited
	z     int32 // query target (neighbor in pass A, parent(y) in pass B)
}

// schedule is one phase's operation batch for one pass.
type schedule struct {
	ops  []minpath.Op
	tags []queryTag
}

// genOp is an op with its sort key and combine info.
type genOp struct {
	key  int64
	op   minpath.Op
	y, z int32
}

// visitTimes assigns each bough vertex its up- and down-visit times
// (Figure 13): boughs occupy consecutive time blocks; within a bough of h
// vertices the vertex at distance i from the leaf is visited at base+i on
// the way up and at base+2h−1−i on the way down. Entries for non-bough
// vertices are -1.
func visitTimes(n int, paths [][]int32) (t1, t2 []int64) {
	t1 = make([]int64, n)
	t2 = make([]int64, n)
	for i := range t1 {
		t1[i], t2[i] = -1, -1
	}
	base := int64(0)
	for _, p := range paths {
		h := int64(len(p))
		for pos, v := range p {
			i := h - 1 - int64(pos) // distance from the leaf
			t1[v] = base + i
			t2[v] = base + 2*h - 1 - i
		}
		base += 2 * h
	}
	return t1, t2
}

// buildSchedules generates the pass A (incomparable case, §4.1) and pass B
// (descendant case, Appendix A) operation batches for one bough phase
// (Lemma 12). adj is the adjacency of the current graph; paths are the
// boughs of the current tree.
func buildSchedules(g *graph.Graph, t *tree.Tree, adj *graph.Adj, paths [][]int32, pool *par.Pool, m *wd.Meter) (passA, passB schedule) {
	t1, t2 := visitTimes(t.N(), paths)
	// Upper-bound op counts: per bough vertex y: pass A has deg(y) updates
	// + deg(y) queries going up, deg(y) undos going down, plus two leaf
	// blocks; pass B has deg(y)+1 up, deg(y) down.
	var genA, genB []genOp
	// key = 2*visitTime + (0 updates, 1 queries): updates precede queries
	// within a visit (§4.2 step 4).
	upd := func(time int64) int64 { return 2 * time }
	qry := func(time int64) int64 { return 2*time + 1 }
	for _, p := range paths {
		leaf := p[len(p)-1]
		genA = append(genA,
			genOp{key: upd(t1[leaf]), op: minpath.AddOp(leaf, infWeight)},
			genOp{key: upd(t2[leaf]), op: minpath.AddOp(leaf, -infWeight)},
		)
		for _, y := range p {
			up, down := t1[y], t2[y]
			for i := adj.Off[y]; i < adj.Off[y+1]; i++ {
				z, w := adj.Nbr[i], adj.W[i]
				// Pass A: subtract the doubled edge weight along z→root,
				// then probe z for the best incomparable partner.
				genA = append(genA,
					genOp{key: upd(up), op: minpath.AddOp(z, -2*w)},
					genOp{key: qry(up), op: minpath.MinOp(z), y: y, z: z},
					genOp{key: upd(down), op: minpath.AddOp(z, 2*w)},
				)
				// Pass B: add the doubled edge weight along z→root so every
				// ancestor x accumulates 2·cross(y↓, x↓).
				genB = append(genB,
					genOp{key: upd(up), op: minpath.AddOp(z, 2*w)},
					genOp{key: upd(down), op: minpath.AddOp(z, -2*w)},
				)
			}
			// Pass B probes the strict ancestors of y (t = y would be the
			// empty cut, so the query starts at the parent).
			if parent := t.Parent[y]; parent != tree.None {
				genB = append(genB, genOp{key: qry(up), op: minpath.MinOp(parent), y: y, z: parent})
			}
		}
	}
	m.Add(int64(len(genA)+len(genB)), 2)
	// Keys are bounded by twice the visit-time range (≤ 4n+2), so a stable
	// counting sort orders each schedule in linear work.
	maxKey := int64(4*t.N()) + 2
	passA = finishSchedule(genA, maxKey, pool, m)
	passB = finishSchedule(genB, maxKey, pool, m)
	return passA, passB
}

// finishSchedule sorts the generated ops by time (stable counting sort
// over the bounded key universe) and extracts query tags.
func finishSchedule(gen []genOp, maxKey int64, pool *par.Pool, m *wd.Meter) schedule {
	counts := make([]int64, maxKey+2)
	for i := range gen {
		counts[gen[i].key+1]++
	}
	pool.InclusiveSum(counts, counts)
	s := schedule{ops: make([]minpath.Op, len(gen))}
	order := make([]int32, len(gen))
	for i := range gen {
		order[counts[gen[i].key]] = int32(i)
		counts[gen[i].key]++
	}
	for pos, gi := range order {
		g := &gen[gi]
		s.ops[pos] = g.op
		if g.op.Query {
			s.tags = append(s.tags, queryTag{opIdx: int32(pos), y: g.y, z: g.z})
		}
	}
	m.Add(3*int64(len(gen))+maxKey, 3+wd.CeilLog2(len(gen)))
	return s
}
