package respect

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph/gen"
)

type quickInstance struct {
	Seed int64
	N    uint8
	Deg  uint8
}

// Generate implements quick.Generator.
func (quickInstance) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickInstance{
		Seed: rng.Int63(),
		N:    uint8(rng.Intn(24)),
		Deg:  uint8(rng.Intn(4)),
	})
}

// TestQuickTwoRespectMatchesBruteForce is the property form of Lemma 13's
// correctness: on arbitrary random instances and spanning trees, the
// parallel search equals exhaustive enumeration over tree-edge pairs, and
// the witness always evaluates to the reported value.
func TestQuickTwoRespectMatchesBruteForce(t *testing.T) {
	property := func(q quickInstance) bool {
		n := 2 + int(q.N)
		mm := n - 1 + int(q.Deg)*n/2
		g := gen.RandomConnected(n, mm, 9, q.Seed)
		parent := gen.SpanningTreeParent(g, q.Seed+1)
		res, err := TwoRespect(g, parent, true, nil, nil)
		if err != nil {
			return false
		}
		if g.CutValue(res.InCut) != res.Value {
			return false
		}
		return res.Value == bruteForce(nil, g, parent)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(777))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMediumScaleAgainstBruteForce runs one larger instance through both
// engines (the brute force is O(n²·m); n=80 keeps it tractable).
func TestMediumScaleAgainstBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("medium brute force")
	}
	g := gen.RandomConnected(80, 320, 15, 4242)
	parent := gen.SpanningTreeParent(g, 17)
	want := bruteForce(nil, g, parent)
	res, err := TwoRespect(g, parent, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("n=80: got %d want %d", res.Value, want)
	}
	if got := g.CutValue(res.InCut); got != want {
		t.Fatalf("witness %d want %d", got, want)
	}
}
