package respect

import (
	"context"
	"fmt"

	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/minpath"
	"repro/internal/par"
	"repro/internal/progress"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/wd"
)

const maxValue = int64(1)<<62 - 1

// kind of the winning candidate.
const (
	kindOne  = byte('1') // 1-respecting cut v↓ (Lemma 11)
	kindPair = byte('A') // union of two incomparable descendant sets (§4.1)
	kindDiff = byte('B') // difference of two nested descendant sets (App. A)
)

// provenance records where the best candidate was found, so the witness
// pass can rebuild exactly that phase.
type provenance struct {
	phase int
	kind  byte
	y, z  int32 // phase-local vertices: y = visited bough vertex (or the
	// 1-respect argmin); z = query target (neighbor / parent)
}

// Result is the outcome of TwoRespect.
type Result struct {
	// Value is the smallest cut value among cuts crossing at most two
	// edges of the spanning tree.
	Value int64
	// InCut marks one side of a cut achieving Value over the original
	// vertices; nil unless a witness was requested.
	InCut []bool
}

// TwoRespect finds the smallest cut of g that cuts at most two edges of
// the spanning tree given by the parent array (rooted anywhere). With
// wantWitness it also reconstructs the partition. Lemma 13: work
// O(m log³ n), depth O(log² n) per tree.
func TwoRespect(g *graph.Graph, parent []int32, wantWitness bool, pool *par.Pool, m *wd.Meter) (Result, error) {
	if g.N() < 2 {
		return Result{}, fmt.Errorf("respect: graph needs at least 2 vertices")
	}
	if len(parent) != g.N() {
		return Result{}, fmt.Errorf("respect: parent array length %d != n %d", len(parent), g.N())
	}
	best, prov, err := scan(g, parent, -1, nil, pool, m)
	if err != nil {
		return Result{}, err
	}
	res := Result{Value: best}
	if wantWitness {
		inCut, err := witness(g, parent, prov, pool, m)
		if err != nil {
			return Result{}, err
		}
		res.InCut = inCut
	}
	return res, nil
}

// phaseView is the state of one bough phase, handed to the witness pass.
type phaseView struct {
	g      *graph.Graph
	t      *tree.Tree
	c, rho []int64
	paths  [][]int32
	member []bool
	origOf []int32 // original vertex -> phase-local supernode
}

// phaseJob is the executable part of one bough phase: everything needed
// to run and combine the two Minimum Path batches.
type phaseJob struct {
	phase        int
	t            *tree.Tree
	c, rho       []int64
	passA, passB schedule
	// outcome
	best int64
	prov provenance
}

// run executes the phase's batches and records the phase-local minimum.
func (j *phaseJob) run(pool *par.Pool, m *wd.Meter) {
	structure := minpath.New(j.t, pool, m)
	j.best = maxValue
	resA := structure.RunBatch(j.c, j.passA.ops, pool, m)
	for _, tag := range j.passA.tags {
		if v := resA[tag.opIdx] + j.c[tag.y]; v < j.best {
			j.best, j.prov = v, provenance{phase: j.phase, kind: kindPair, y: tag.y, z: tag.z}
		}
	}
	resB := structure.RunBatch(j.c, j.passB.ops, pool, m)
	for _, tag := range j.passB.tags {
		if v := resB[tag.opIdx] - 4*j.rho[tag.y] - j.c[tag.y]; v < j.best {
			j.best, j.prov = v, provenance{phase: j.phase, kind: kindDiff, y: tag.y, z: tag.z}
		}
	}
}

// scan runs the bough-phase recursion (§4.3), returning the smallest
// candidate value and its provenance. By default phases execute one after
// another (each internally parallel), keeping memory at O(m); with
// parallelPhases the batches of every phase are first generated along the
// contraction chain and then all executed concurrently — the paper's
// §4.3 step 3-4 schedule — at O(m log n) memory. If stopAtPhase >= 0,
// scan instead stops before executing batches of that phase and stores
// the phase state in *out (witness rebuild mode).
func scan(g *graph.Graph, parent []int32, stopAtPhase int, out *phaseView, pool *par.Pool, m *wd.Meter) (int64, provenance, error) {
	return scanMode(context.Background(), g, parent, stopAtPhase, out, false, pool, m, nil, trace.SpanRef{})
}

func scanMode(ctx context.Context, g *graph.Graph, parent []int32, stopAtPhase int, out *phaseView, parallelPhases bool, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (int64, provenance, error) {
	t, err := tree.FromParentParallel(parent, pool, m)
	if err != nil {
		return 0, provenance{}, fmt.Errorf("respect: invalid spanning tree: %v", err)
	}
	curG, curT := g, t
	origOf := make([]int32, g.N())
	pool.For(g.N(), func(i int) { origOf[i] = int32(i) })
	best := maxValue
	var prov provenance
	var deferred []*phaseJob
	for phase := 0; ; phase++ {
		// Cooperative cancellation between bough phases: each phase is a
		// bounded batch of work, so this keeps cancellation latency at one
		// phase without any locking on the hot path.
		if err := ctx.Err(); err != nil {
			return 0, provenance{}, fmt.Errorf("respect: scan canceled: %w", err)
		}
		if phase > int(wd.CeilLog2(g.N()))+2 {
			return 0, provenance{}, fmt.Errorf("respect: phase bound exceeded")
		}
		// In parallelPhases mode the phase span covers only batch
		// construction; execution is deferred and gets its own spans below.
		psp := sp.Child("bough-phase").AttrInt("phase", int64(phase))
		l := lca.New(curT, pool, m)
		c, rho := CutValues(curG, curT, l, pool, m)
		paths, member := decomp.Boughs(curT, pool, m, sink, psp)
		if stopAtPhase == phase {
			psp.End()
			*out = phaseView{g: curG, t: curT, c: c, rho: rho, paths: paths, member: member, origOf: origOf}
			return best, prov, nil
		}
		// 1-respecting candidate.
		if v1, arg := minOneRespect(c, curT); arg >= 0 && v1 < best {
			best, prov = v1, provenance{phase: phase, kind: kindOne, y: arg}
		}
		// 2-respecting candidates via the Minimum Path batches.
		adj := curG.BuildAdjOn(pool)
		passA, passB := buildSchedules(curG, curT, adj, paths, pool, m)
		job := &phaseJob{phase: phase, t: curT, c: c, rho: rho, passA: passA, passB: passB}
		if parallelPhases {
			deferred = append(deferred, job)
		} else {
			job.run(pool, m)
			if job.best < best {
				best, prov = job.best, job.prov
			}
			// A completed bough phase is both a progress milestone and the
			// cancellation seam the next loop iteration checks.
			sink.BoughPhaseDone()
		}
		// Contract the boughs and recurse.
		ctr := contractBoughs(curG, curT, member, paths, pool, m)
		if ctr == nil {
			psp.End()
			break
		}
		next := make([]int32, len(origOf))
		pool.For(len(origOf), func(i int) { next[i] = ctr.toNew[origOf[i]] })
		m.Add(int64(len(origOf)), 1)
		origOf = next
		curG, curT = ctr.g, ctr.t
		psp.End()
	}
	if parallelPhases && len(deferred) > 0 {
		locals := make([]*wd.Meter, len(deferred))
		var obs par.RegionFunc
		if sp.Active() {
			obs = func(name string, items, width int) func() {
				fsp := sp.Child(name).AttrInt("items", int64(items)).AttrInt("width", int64(width))
				return fsp.End
			}
		}
		pool.ForGrainRegion("fork:bough-phases", obs, len(deferred), 1, func(i int) {
			// The deferred batches are where this mode spends its work, so
			// cancellation must be honored here too, not just while the
			// contraction chain was being built.
			if ctx.Err() != nil {
				return
			}
			esp := sp.Child("bough-phase-exec").AttrInt("phase", int64(deferred[i].phase))
			locals[i] = new(wd.Meter)
			deferred[i].run(pool, locals[i])
			esp.End()
			sink.BoughPhaseDone()
		})
		if err := ctx.Err(); err != nil {
			return 0, provenance{}, fmt.Errorf("respect: scan canceled: %w", err)
		}
		m.Par(locals...)
		for _, job := range deferred {
			if job.best < best {
				best, prov = job.best, job.prov
			}
		}
	}
	if best >= maxValue {
		return 0, provenance{}, fmt.Errorf("respect: no cut candidate found")
	}
	return best, prov, nil
}

// ScanParallelPhases is Scan with the paper-faithful concurrent phase
// execution (§4.3): lower depth, O(m log n) memory.
func ScanParallelPhases(g *graph.Graph, parent []int32, pool *par.Pool, m *wd.Meter) (Finding, error) {
	return ScanParallelPhasesContext(context.Background(), g, parent, pool, m, nil, trace.SpanRef{})
}

// ScanContext is Scan with cooperative cancellation and live
// instrumentation: ctx is checked between bough phases, so cancellation
// latency is bounded by a single phase; sink (nil OK) is advanced at
// exactly those seams; and sp (zero OK) gets one child span per bough
// phase.
func ScanContext(ctx context.Context, g *graph.Graph, parent []int32, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (Finding, error) {
	if g.N() < 2 {
		return Finding{}, fmt.Errorf("respect: graph needs at least 2 vertices")
	}
	v, p, err := scanMode(ctx, g, parent, -1, nil, false, pool, m, sink, sp)
	if err != nil {
		return Finding{}, err
	}
	return Finding{Value: v, prov: p}, nil
}

// ScanParallelPhasesContext is ScanParallelPhases with cooperative
// cancellation between bough phases and the same progress and tracing
// seams as ScanContext.
func ScanParallelPhasesContext(ctx context.Context, g *graph.Graph, parent []int32, pool *par.Pool, m *wd.Meter, sink *progress.Sink, sp trace.SpanRef) (Finding, error) {
	if g.N() < 2 {
		return Finding{}, fmt.Errorf("respect: graph needs at least 2 vertices")
	}
	v, p, err := scanMode(ctx, g, parent, -1, nil, true, pool, m, sink, sp)
	if err != nil {
		return Finding{}, err
	}
	return Finding{Value: v, prov: p}, nil
}
