package mst

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func forestCost(edges []graph.Edge, cost []int64, sel []int32) int64 {
	var total int64
	for _, i := range sel {
		if cost != nil {
			total += cost[i]
		} else {
			total++
		}
	}
	return total
}

func TestForestMatchesKruskalOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 5 + int(seed*97)%300
		g := gen.RandomConnected(n, 3*n, 50, seed)
		rng := rand.New(rand.NewSource(seed + 7))
		cost := make([]int64, g.M())
		for i := range cost {
			cost[i] = int64(rng.Intn(1000))
		}
		selB, compB := Forest(n, g.Edges(), cost, nil, nil)
		selK, compK := Kruskal(n, g.Edges(), cost)
		if compB != 1 || compK != 1 {
			t.Fatalf("seed %d: comps %d/%d", seed, compB, compK)
		}
		if len(selB) != n-1 || len(selK) != n-1 {
			t.Fatalf("seed %d: tree sizes %d/%d", seed, len(selB), len(selK))
		}
		// With index tie-breaking the MSF is unique: compare edge sets.
		inK := map[int32]bool{}
		for _, i := range selK {
			inK[i] = true
		}
		for _, i := range selB {
			if !inK[i] {
				t.Fatalf("seed %d: Boruvka selected %d, Kruskal did not (cost B=%d K=%d)",
					seed, i, forestCost(g.Edges(), cost, selB), forestCost(g.Edges(), cost, selK))
			}
		}
	}
}

func TestForestUniformCosts(t *testing.T) {
	g := gen.RandomConnected(100, 400, 10, 3)
	sel, comps := Forest(100, g.Edges(), nil, nil, nil)
	if comps != 1 || len(sel) != 99 {
		t.Fatalf("comps=%d |sel|=%d", comps, len(sel))
	}
}

func TestForestDisconnected(t *testing.T) {
	g := gen.Disconnected(20, 30, 5)
	sel, comps := Forest(g.N(), g.Edges(), nil, nil, nil)
	if comps != 2 {
		t.Fatalf("comps=%d want 2", comps)
	}
	if len(sel) != g.N()-2 {
		t.Fatalf("|sel|=%d want %d", len(sel), g.N()-2)
	}
	if got := Components(g.N(), g.Edges(), nil, nil); got != 2 {
		t.Fatalf("Components=%d", got)
	}
}

func TestForestParallelEdgesAndLoops(t *testing.T) {
	g := graph.New(3)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 5}, {0, 1, 2}, {1, 1, 1}, {1, 2, 9}, {1, 2, 9}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	cost := []int64{5, 2, 1, 9, 9}
	sel, comps := Forest(3, g.Edges(), cost, nil, nil)
	if comps != 1 || len(sel) != 2 {
		t.Fatalf("comps=%d sel=%v", comps, sel)
	}
	want := map[int32]bool{1: true, 3: true} // cheaper parallel edge; first of the tied pair
	for _, i := range sel {
		if !want[i] {
			t.Fatalf("selected %v want edges {1,3}", sel)
		}
	}
}

func TestForestEmptyAndSingle(t *testing.T) {
	if sel, comps := Forest(0, nil, nil, nil, nil); len(sel) != 0 || comps != 0 {
		t.Fatal("empty graph")
	}
	if sel, comps := Forest(1, nil, nil, nil, nil); len(sel) != 0 || comps != 1 {
		t.Fatal("single vertex")
	}
	if sel, comps := Forest(5, nil, nil, nil, nil); len(sel) != 0 || comps != 5 {
		t.Fatal("isolated vertices")
	}
}

func TestForestRespectsLoadOrdering(t *testing.T) {
	// Square with a diagonal: loads force specific tree choices, the way
	// the packing uses repeated MSTs.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	load := []int64{0, 0, 0, 0, 0}
	counts := map[int32]int{}
	for round := 0; round < 10; round++ {
		sel, comps := Forest(4, g.Edges(), load, nil, nil)
		if comps != 1 || len(sel) != 3 {
			t.Fatalf("round %d: comps=%d sel=%v", round, comps, sel)
		}
		for _, i := range sel {
			load[i]++
			counts[i]++
		}
	}
	// All five edges should participate across rounds: greedy packing
	// spreads load.
	for i := int32(0); i < 5; i++ {
		if counts[i] == 0 {
			t.Fatalf("edge %d never used: %v", i, counts)
		}
	}
}
