//go:build race

package mst

const raceEnabled = true
