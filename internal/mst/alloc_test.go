package mst

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/wd"
)

// TestComponentsZeroAllocSteadyState asserts the packing inner loop's
// core claim: a steady-state connectivity check — the operation
// EstimateCut hammers while walking the sampling rate — performs zero
// heap allocations once the executor's arena is warm. Loop bodies are
// pre-bound closures recycled with the forest state; labels, candidates,
// hooks, and the dedupe bits all come from the arena.
func TestComponentsZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; zero-alloc holds only in normal builds")
	}
	const n = 512
	edges := make([]graph.Edge, 0, 2*n)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i / 2), V: int32(i), W: 1})
	}
	for i := 0; i+7 < n; i += 3 {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 7), W: 1})
	}
	p := par.NewPool(1)
	defer p.Close()
	m := &wd.Meter{}

	run := func() {
		if comps := Components(n, edges, p, m); comps != 1 {
			t.Fatalf("Components = %d, want 1", comps)
		}
	}
	run() // warm the arena and the forest state pool
	if avg := testing.AllocsPerRun(50, run); avg > 0 {
		t.Errorf("steady-state Components: %.2f allocs/op, want 0", avg)
	}
}

// TestForestSteadyStateAllocsOnlyOutput: Forest must allocate only what
// it returns (the selected-edge slice), never its working arrays.
func TestForestSteadyStateAllocsOnlyOutput(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; the output-only bound holds only in normal builds")
	}
	const n = 512
	edges := make([]graph.Edge, 0, n)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i / 2), V: int32(i), W: 1})
	}
	p := par.NewPool(1)
	defer p.Close()
	m := &wd.Meter{}

	run := func() {
		sel, comps := Forest(n, edges, nil, p, m)
		if comps != 1 || len(sel) != n-1 {
			t.Fatalf("Forest: %d comps, %d edges", comps, len(sel))
		}
	}
	run()
	// One allocation: the returned sel backing array.
	if avg := testing.AllocsPerRun(50, run); avg > 1 {
		t.Errorf("steady-state Forest: %.2f allocs/op, want <= 1 (output only)", avg)
	}
}
