//go:build !race

package mst

// raceEnabled reports whether the race detector is active. The
// steady-state zero-alloc tests skip under -race: the race-mode
// sync.Pool deliberately drops a fraction of Puts (to shake out
// use-after-Put bugs), so arena borrows legitimately re-allocate there.
const raceEnabled = false
