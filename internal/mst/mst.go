// Package mst computes minimum spanning forests with parallel Borůvka
// rounds. The tree-packing procedure behind Lemma 1 performs O(log² n)
// minimum spanning tree computations with respect to evolving edge loads;
// Borůvka is the classic O(log n)-round parallel MST algorithm, so it is
// the natural engine here (and it doubles as the connectivity test for
// detecting disconnected inputs, whose minimum cut is 0).
package mst

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/wd"
)

// maxCost bounds edge costs so that (cost, edgeIndex) pairs pack into one
// uint64 for atomic candidate selection: cost < 2^38, index < 2^25.
const (
	maxCost  = int64(1) << 38
	maxEdges = 1 << 25
	noCand   = ^uint64(0)
)

// Forest computes a minimum spanning forest of the n-vertex multigraph
// with the given edges. cost[i] is the cost of edge i (nil means uniform
// cost); ties break by edge index, making the forest unique and the
// Borůvka hooking cycle-free. It returns the indices of the selected
// edges and the number of connected components.
func Forest(n int, edges []graph.Edge, cost []int64, pool *par.Pool, m *wd.Meter) (sel []int32, comps int) {
	sel, _, comps = ForestWithLabels(n, edges, cost, pool, m)
	return sel, comps
}

// ForestWithLabels is Forest, additionally returning a component label per
// vertex (labels are representative vertex ids, not compacted).
func ForestWithLabels(n int, edges []graph.Edge, cost []int64, pool *par.Pool, m *wd.Meter) (sel []int32, labels []int32, comps int) {
	if n == 0 {
		return nil, nil, 0
	}
	mm := len(edges)
	if mm >= maxEdges {
		panic(fmt.Sprintf("mst: %d edges exceed packed-candidate limit %d", mm, maxEdges))
	}
	if cost != nil {
		for i, c := range cost {
			if c < 0 || c >= maxCost {
				panic(fmt.Sprintf("mst: cost[%d]=%d outside [0, 2^38)", i, c))
			}
		}
	}
	comp := make([]int32, n)
	pool.For(n, func(i int) { comp[i] = int32(i) })
	cand := make([]atomic.Uint64, n)
	hook := make([]int32, n)
	hook2 := make([]int32, n)
	comps = n
	sel = make([]int32, 0, n-1)
	for round := 0; ; round++ {
		if round > int(wd.CeilLog2(n))+2 {
			panic("mst: round bound exceeded")
		}
		pool.For(n, func(i int) { cand[i].Store(noCand) })
		// Each component's candidate: the cheapest incident edge leaving it.
		pool.ForChunk(mm, par.Grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := edges[i]
				cu, cv := comp[e.U], comp[e.V]
				if cu == cv {
					continue
				}
				var c int64
				if cost != nil {
					c = cost[i]
				}
				key := uint64(c)<<25 | uint64(i)
				atomicMin(&cand[cu], key)
				atomicMin(&cand[cv], key)
			}
		})
		m.Add(int64(mm), 1)
		// Hook components along their candidate edges.
		progress := false
		pool.For(n, func(ci int) {
			hook[ci] = int32(ci)
			key := cand[ci].Load()
			if key == noCand {
				return
			}
			e := edges[key&(1<<25-1)]
			other := comp[e.U]
			if other == int32(ci) {
				other = comp[e.V]
			}
			hook[ci] = other
		})
		// Break mutual hooks (2-cycles) toward the smaller label.
		pool.For(n, func(ci int) {
			h := hook[ci]
			if hook[h] == int32(ci) && h > int32(ci) {
				// ci is the smaller of a mutual pair: it becomes the root.
				hook2[ci] = int32(ci)
			} else {
				hook2[ci] = h
			}
		})
		hook, hook2 = hook2, hook
		// Collect selected edges (dedupe mutual candidates).
		seen := make(map[int32]bool, comps)
		for ci := 0; ci < n; ci++ {
			key := cand[ci].Load()
			if key == noCand {
				continue
			}
			idx := int32(key & (1<<25 - 1))
			if !seen[idx] {
				seen[idx] = true
				sel = append(sel, idx)
				comps--
				progress = true
			}
		}
		if !progress {
			break
		}
		// Pointer-jump hooks to roots and relabel vertex components.
		for j := int64(0); j <= wd.CeilLog2(n); j++ {
			var changed atomic.Bool
			pool.For(n, func(ci int) {
				h := hook[hook[ci]]
				hook2[ci] = h
				if h != hook[ci] {
					changed.Store(true)
				}
			})
			hook, hook2 = hook2, hook
			if !changed.Load() {
				break
			}
		}
		pool.For(n, func(v int) { comp[v] = hook[comp[v]] })
		m.Add(3*int64(n), wd.CeilLog2(n)+2)
	}
	return sel, comp, comps
}

// atomicMin lowers a to min(a, key).
func atomicMin(a *atomic.Uint64, key uint64) {
	for {
		cur := a.Load()
		if key >= cur || a.CompareAndSwap(cur, key) {
			return
		}
	}
}

// Components returns the number of connected components (Borůvka with
// uniform costs, discarding the forest).
func Components(n int, edges []graph.Edge, pool *par.Pool, m *wd.Meter) int {
	_, comps := Forest(n, edges, nil, pool, m)
	return comps
}

// Kruskal is the sequential reference MST used by tests: sort edge indices
// by (cost, index) and union-find.
func Kruskal(n int, edges []graph.Edge, cost []int64) (sel []int32, comps int) {
	idx := make([]int32, len(edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	par.SortStable(idx, func(a, b int32) bool {
		var ca, cb int64
		if cost != nil {
			ca, cb = cost[a], cost[b]
		}
		if ca != cb {
			return ca < cb
		}
		return a < b
	})
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps = n
	for _, i := range idx {
		e := edges[i]
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			sel = append(sel, i)
			comps--
		}
	}
	return sel, comps
}
