// Package mst computes minimum spanning forests with parallel Borůvka
// rounds. The tree-packing procedure behind Lemma 1 performs O(log² n)
// minimum spanning tree computations with respect to evolving edge loads;
// Borůvka is the classic O(log n)-round parallel MST algorithm, so it is
// the natural engine here (and it doubles as the connectivity test for
// detecting disconnected inputs, whose minimum cut is 0).
//
// Forest is the innermost loop of a solve — packing calls it O(log² n)
// times per estimate guess — so its working arrays (component labels,
// candidate slots, hook chains, selection dedupe bits) come from the
// executor's arena and its loop bodies are pre-bound closures recycled
// through a state pool: a steady-state Forest call performs no O(n) or
// O(m) allocations beyond the selected-edge output the caller asked for.
package mst

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/wd"
)

// maxCost bounds edge costs so that (cost, edgeIndex) pairs pack into one
// uint64 for atomic candidate selection: cost < 2^38, index < 2^25.
const (
	maxCost  = int64(1) << 38
	maxEdges = 1 << 25
	noCand   = ^uint64(0)
)

// forestState carries one Forest invocation's working set. The loop-body
// closures are bound once, when the state is first created, and capture
// only the state pointer — so a recycled state re-runs the same closures
// over freshly borrowed arrays and the per-round loops allocate nothing.
type forestState struct {
	edges []graph.Edge
	cost  []int64
	comp  []int32
	hook  []int32
	hook2 []int32
	cand  []atomic.Uint64
	seen  []bool

	changed atomic.Bool

	fInit    func(i int)
	fClear   func(i int)
	fScan    func(lo, hi int)
	fHook    func(i int)
	fBreak   func(i int)
	fJump    func(i int)
	fRelabel func(i int)
}

var forestStates sync.Pool

func getForestState() *forestState {
	if v := forestStates.Get(); v != nil {
		return v.(*forestState)
	}
	s := &forestState{}
	s.fInit = func(i int) { s.comp[i] = int32(i) }
	s.fClear = func(i int) { s.cand[i].Store(noCand) }
	// Each component's candidate: the cheapest incident edge leaving it.
	s.fScan = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := s.edges[i]
			cu, cv := s.comp[e.U], s.comp[e.V]
			if cu == cv {
				continue
			}
			var c int64
			if s.cost != nil {
				c = s.cost[i]
			}
			key := uint64(c)<<25 | uint64(i)
			atomicMin(&s.cand[cu], key)
			atomicMin(&s.cand[cv], key)
		}
	}
	// Hook components along their candidate edges.
	s.fHook = func(ci int) {
		s.hook[ci] = int32(ci)
		key := s.cand[ci].Load()
		if key == noCand {
			return
		}
		e := s.edges[key&(1<<25-1)]
		other := s.comp[e.U]
		if other == int32(ci) {
			other = s.comp[e.V]
		}
		s.hook[ci] = other
	}
	// Break mutual hooks (2-cycles) toward the smaller label.
	s.fBreak = func(ci int) {
		h := s.hook[ci]
		if s.hook[h] == int32(ci) && h > int32(ci) {
			// ci is the smaller of a mutual pair: it becomes the root.
			s.hook2[ci] = int32(ci)
		} else {
			s.hook2[ci] = h
		}
	}
	s.fJump = func(ci int) {
		h := s.hook[s.hook[ci]]
		s.hook2[ci] = h
		if h != s.hook[ci] {
			s.changed.Store(true)
		}
	}
	s.fRelabel = func(v int) { s.comp[v] = s.hook[s.comp[v]] }
	return s
}

func putForestState(s *forestState) {
	s.edges, s.cost = nil, nil
	s.comp, s.hook, s.hook2, s.cand, s.seen = nil, nil, nil, nil, nil
	forestStates.Put(s)
}

// Forest computes a minimum spanning forest of the n-vertex multigraph
// with the given edges. cost[i] is the cost of edge i (nil means uniform
// cost); ties break by edge index, making the forest unique and the
// Borůvka hooking cycle-free. It returns the indices of the selected
// edges and the number of connected components.
func Forest(n int, edges []graph.Edge, cost []int64, pool *par.Pool, m *wd.Meter) (sel []int32, comps int) {
	if n == 0 {
		return nil, 0
	}
	ar := pool.Arena()
	compP := ar.Int32(n)
	sel = make([]int32, 0, n-1)
	sel, comps = forestInto(n, edges, cost, pool, m, *compP, sel)
	ar.PutInt32(compP)
	return sel, comps
}

// ForestWithLabels is Forest, additionally returning a component label per
// vertex (labels are representative vertex ids, not compacted).
func ForestWithLabels(n int, edges []graph.Edge, cost []int64, pool *par.Pool, m *wd.Meter) (sel []int32, labels []int32, comps int) {
	if n == 0 {
		return nil, nil, 0
	}
	labels = make([]int32, n)
	sel = make([]int32, 0, n-1)
	sel, comps = forestInto(n, edges, cost, pool, m, labels, sel)
	return sel, labels, comps
}

// Components returns the number of connected components (Borůvka with
// uniform costs, discarding the forest). With the forest discarded, every
// working array comes from the executor's arena: steady-state calls are
// allocation-free.
func Components(n int, edges []graph.Edge, pool *par.Pool, m *wd.Meter) int {
	if n == 0 {
		return 0
	}
	ar := pool.Arena()
	compP := ar.Int32(n)
	selP := ar.Int32(n - 1)
	_, comps := forestInto(n, edges, nil, pool, m, *compP, (*selP)[:0])
	ar.PutInt32(selP)
	ar.PutInt32(compP)
	return comps
}

// forestInto runs the Borůvka rounds, writing component labels into comp
// (len n, caller-provided) and appending selected edge indices to sel
// (cap n-1 avoids regrowth). It returns the final sel and the component
// count.
func forestInto(n int, edges []graph.Edge, cost []int64, pool *par.Pool, m *wd.Meter, comp, sel []int32) ([]int32, int) {
	mm := len(edges)
	if mm >= maxEdges {
		panic(fmt.Sprintf("mst: %d edges exceed packed-candidate limit %d", mm, maxEdges))
	}
	if cost != nil {
		for i, c := range cost {
			if c < 0 || c >= maxCost {
				panic(fmt.Sprintf("mst: cost[%d]=%d outside [0, 2^38)", i, c))
			}
		}
	}
	ar := pool.Arena()
	candP := ar.AtomicUint64(n)
	hookP := ar.Int32(n)
	hook2P := ar.Int32(n)
	seenP := ar.Bool(mm)

	s := getForestState()
	s.edges, s.cost = edges, cost
	s.comp, s.cand = comp, *candP
	s.hook, s.hook2 = *hookP, *hook2P
	s.seen = *seenP
	// seen dedupes selected edges across the whole call: once an edge is
	// selected its endpoints share a component, so it can never become a
	// candidate again — one clear up front suffices.
	clear(s.seen)

	pool.For(n, s.fInit)
	comps := n
	for round := 0; ; round++ {
		if round > int(wd.CeilLog2(n))+2 {
			panic("mst: round bound exceeded")
		}
		pool.For(n, s.fClear)
		pool.ForChunk(mm, par.Grain, s.fScan)
		m.Add(int64(mm), 1)
		pool.For(n, s.fHook)
		pool.For(n, s.fBreak)
		s.hook, s.hook2 = s.hook2, s.hook
		// Collect selected edges (dedupe mutual candidates).
		progress := false
		for ci := 0; ci < n; ci++ {
			key := s.cand[ci].Load()
			if key == noCand {
				continue
			}
			idx := int32(key & (1<<25 - 1))
			if !s.seen[idx] {
				s.seen[idx] = true
				sel = append(sel, idx)
				comps--
				progress = true
			}
		}
		if !progress {
			break
		}
		// Pointer-jump hooks to roots and relabel vertex components.
		for j := int64(0); j <= wd.CeilLog2(n); j++ {
			s.changed.Store(false)
			pool.For(n, s.fJump)
			s.hook, s.hook2 = s.hook2, s.hook
			if !s.changed.Load() {
				break
			}
		}
		pool.For(n, s.fRelabel)
		m.Add(3*int64(n), wd.CeilLog2(n)+2)
	}

	// The hook/hook2 swaps may have exchanged the backing arrays; restore
	// the headers before returning them to the arena.
	*hookP, *hook2P = s.hook, s.hook2
	putForestState(s)
	ar.PutAtomicUint64(candP)
	ar.PutInt32(hookP)
	ar.PutInt32(hook2P)
	ar.PutBool(seenP)
	return sel, comps
}

// atomicMin lowers a to min(a, key).
func atomicMin(a *atomic.Uint64, key uint64) {
	for {
		cur := a.Load()
		if key >= cur || a.CompareAndSwap(cur, key) {
			return
		}
	}
}

// Kruskal is the sequential reference MST used by tests: sort edge indices
// by (cost, index) and union-find.
func Kruskal(n int, edges []graph.Edge, cost []int64) (sel []int32, comps int) {
	idx := make([]int32, len(edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	par.SortStable(idx, func(a, b int32) bool {
		var ca, cb int64
		if cost != nil {
			ca, cb = cost[a], cost[b]
		}
		if ca != cb {
			return ca < cb
		}
		return a < b
	})
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps = n
	for _, i := range idx {
		e := edges[i]
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			sel = append(sel, i)
			comps--
		}
	}
	return sel, comps
}
