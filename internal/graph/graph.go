// Package graph provides the weighted undirected multigraph type used
// throughout the repository (paper §1.1.1): n vertices, m edges, positive
// integer edge weights. Parallel edges are allowed (they arise naturally
// from the contractions in §4.3); self-loops are allowed on input but never
// cross any cut, so most algorithms drop them.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/par"
)

// MaxTotalWeight bounds the sum of all edge weights. Keeping the total
// below 2^40 guarantees that every intermediate quantity in the minimum
// path structures (which add and subtract path sums and the ±infinity
// blocking sentinel) stays far away from int64 overflow.
const MaxTotalWeight = int64(1) << 40

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	U, V int32
	W    int64
}

// Graph is a weighted undirected multigraph. The zero value is an empty
// graph with no vertices; use New.
type Graph struct {
	n     int
	edges []Edge
	total int64
}

// New returns an empty graph on n vertices (numbered 0..n-1).
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n}
}

// FromEdges builds a graph on n vertices from the given edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(int(e.U), int(e.V), e.W); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// AddEdge appends the undirected edge {u, v} with weight w.
func (g *Graph) AddEdge(u, v int, w int64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if w <= 0 {
		return fmt.Errorf("graph: edge {%d,%d} has non-positive weight %d", u, v, w)
	}
	if g.total+w > MaxTotalWeight {
		return fmt.Errorf("graph: total weight would exceed %d", MaxTotalWeight)
	}
	g.edges = append(g.edges, Edge{int32(u), int32(v), w})
	g.total += w
	return nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 { return g.total }

// WeightedDegrees returns, for each vertex, the total weight of incident
// non-loop edges. The smallest entry is the classic upper bound on the
// minimum cut (the singleton cut of that vertex).
func (g *Graph) WeightedDegrees() []int64 {
	deg := make([]int64, g.n)
	for _, e := range g.edges {
		if e.U == e.V {
			continue
		}
		deg[e.U] += e.W
		deg[e.V] += e.W
	}
	return deg
}

// CutValue returns the total weight of edges crossing the cut described by
// inCut (vertices with inCut[v] true form one side). It is the reference
// cut evaluator used by tests and by witness verification. It runs on the
// shared default pool; solver code holding an executor uses CutValueOn.
func (g *Graph) CutValue(inCut []bool) int64 {
	return g.CutValueOn(nil, inCut)
}

// CutValueOn is CutValue on an explicit pool (nil = default).
func (g *Graph) CutValueOn(pool *par.Pool, inCut []bool) int64 {
	if len(inCut) != g.n {
		panic("graph: CutValue partition length mismatch")
	}
	var total atomic.Int64
	pool.ForChunk(len(g.edges), par.Grain, func(lo, hi int) {
		var s int64
		for _, e := range g.edges[lo:hi] {
			if inCut[e.U] != inCut[e.V] {
				s += e.W
			}
		}
		total.Add(s)
	})
	return total.Load()
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	return &Graph{n: g.n, edges: edges, total: g.total}
}

// Canonical returns a copy of the graph in canonical edge order: every
// edge stored with U <= V, the list sorted by (U, V, W). Graphs that
// differ only in edge input order or endpoint order share one canonical
// form, which makes the form's serialization suitable for
// content-addressing.
func (g *Graph) Canonical() *Graph {
	edges := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		edges[i] = e
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		if edges[a].V != edges[b].V {
			return edges[a].V < edges[b].V
		}
		return edges[a].W < edges[b].W
	})
	return &Graph{n: g.n, edges: edges, total: g.total}
}

// Adj is a CSR adjacency view of a Graph: for vertex v, the incident half
// edges are Nbr[Off[v]:Off[v+1]] with parallel arrays EdgeIdx (index into
// the graph's edge list) and W (edge weight). Self-loops are excluded.
type Adj struct {
	Off     []int32
	Nbr     []int32
	EdgeIdx []int32
	W       []int64
}

// Degree returns the number of incident non-loop half-edges of v.
func (a *Adj) Degree(v int) int { return int(a.Off[v+1] - a.Off[v]) }

// BuildAdj constructs the CSR adjacency of g in parallel on the default
// pool.
func (g *Graph) BuildAdj() *Adj {
	return g.BuildAdjOn(nil)
}

// BuildAdjOn is BuildAdj on an explicit pool (nil = default).
func (g *Graph) BuildAdjOn(pool *par.Pool) *Adj {
	n, m := g.n, len(g.edges)
	counts := make([]int64, n+1)
	for _, e := range g.edges {
		if e.U == e.V {
			continue
		}
		counts[e.U+1]++
		counts[e.V+1]++
	}
	pool.InclusiveSum(counts, counts)
	total := counts[n]
	a := &Adj{
		Off:     make([]int32, n+1),
		Nbr:     make([]int32, total),
		EdgeIdx: make([]int32, total),
		W:       make([]int64, total),
	}
	for v := 0; v <= n; v++ {
		a.Off[v] = int32(counts[v])
	}
	cursor := make([]int32, n)
	copy(cursor, a.Off[:n])
	for i := 0; i < m; i++ {
		e := g.edges[i]
		if e.U == e.V {
			continue
		}
		cu := cursor[e.U]
		a.Nbr[cu], a.EdgeIdx[cu], a.W[cu] = e.V, int32(i), e.W
		cursor[e.U]++
		cv := cursor[e.V]
		a.Nbr[cv], a.EdgeIdx[cv], a.W[cv] = e.U, int32(i), e.W
		cursor[e.V]++
	}
	return a
}
