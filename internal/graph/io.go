package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Write emits g in a DIMACS-like text format:
//
//	c <comment>
//	p cut <n> <m>
//	e <u> <v> <w>
//
// with 0-based vertex ids.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cut %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		switch text[0] {
		case 'p':
			var kind string
			var n, m int
			if _, err := fmt.Sscanf(text, "p %s %d %d", &kind, &n, &m); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad problem line: %v", line, err)
			}
			if n < 0 || m < 0 || n > 1<<30 {
				return nil, fmt.Errorf("graph: line %d: invalid sizes n=%d m=%d", line, n, m)
			}
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", line)
			}
			g = New(n)
		case 'e', 'a':
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", line)
			}
			var u, v int
			var w int64
			if _, err := fmt.Sscanf(text[1:], "%d %d %d", &u, &v, &w); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge: %v", line, err)
			}
			if err := g.AddEdge(u, v, w); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, text[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	return g, nil
}
