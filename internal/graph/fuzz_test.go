package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the graph parser: arbitrary input must never panic,
// and anything that parses must round-trip through Write.
func FuzzRead(f *testing.F) {
	f.Add("p cut 3 2\ne 0 1 5\ne 1 2 7\n")
	f.Add("c comment\np cut 1 0\n")
	f.Add("p cut 2 1\ne 0 1 99999999\n")
	f.Add("e 0 1 1\n")
	f.Add("p cut -1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("valid graph failed to serialize: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() || g2.TotalWeight() != g.TotalWeight() {
			t.Fatal("round trip changed the graph")
		}
	})
}
