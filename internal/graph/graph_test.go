package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := g.AddEdge(0, 1, -4); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(1, 1, 2); err != nil {
		t.Errorf("self-loop rejected: %v", err)
	}
	if g.M() != 2 || g.TotalWeight() != 7 {
		t.Errorf("m=%d total=%d", g.M(), g.TotalWeight())
	}
}

func TestTotalWeightGuard(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 1, MaxTotalWeight); err != nil {
		t.Fatalf("weight at cap rejected: %v", err)
	}
	if err := g.AddEdge(0, 1, 1); err == nil {
		t.Fatal("weight above cap accepted")
	}
}

func TestWeightedDegreesIgnoreLoops(t *testing.T) {
	g := New(3)
	must(t, g.AddEdge(0, 1, 4))
	must(t, g.AddEdge(1, 2, 6))
	must(t, g.AddEdge(2, 2, 100))
	deg := g.WeightedDegrees()
	want := []int64{4, 10, 6}
	for v, w := range want {
		if deg[v] != w {
			t.Errorf("deg[%d]=%d want %d", v, deg[v], w)
		}
	}
}

func TestCutValue(t *testing.T) {
	// Figure 1 of the paper: minimum cut of value 2.
	g := figure1Graph(t)
	// Shaded side from the figure: vertices {0,1,2} vs {3,4,5}.
	inCut := []bool{true, true, true, false, false, false}
	if got := g.CutValue(inCut); got != 2 {
		t.Errorf("figure 1 cut value = %d, want 2", got)
	}
}

// figure1Graph builds the example of paper Figure 1: 6 vertices, cut value
// 2 between the two shaded triangles.
func figure1Graph(t *testing.T) *Graph {
	t.Helper()
	g := New(6)
	must(t, g.AddEdge(0, 1, 3))
	must(t, g.AddEdge(0, 2, 3))
	must(t, g.AddEdge(1, 2, 2))
	must(t, g.AddEdge(3, 4, 1))
	must(t, g.AddEdge(3, 5, 2))
	must(t, g.AddEdge(4, 5, 1))
	must(t, g.AddEdge(2, 3, 1))
	must(t, g.AddEdge(1, 4, 1))
	return g
}

func TestBuildAdj(t *testing.T) {
	g := New(4)
	must(t, g.AddEdge(0, 1, 5))
	must(t, g.AddEdge(1, 2, 7))
	must(t, g.AddEdge(2, 2, 9)) // loop: excluded from adjacency
	must(t, g.AddEdge(0, 1, 3)) // parallel edge: kept
	adj := g.BuildAdj()
	if adj.Degree(0) != 2 || adj.Degree(1) != 3 || adj.Degree(2) != 1 || adj.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d %d %d", adj.Degree(0), adj.Degree(1), adj.Degree(2), adj.Degree(3))
	}
	var w0 int64
	for i := adj.Off[0]; i < adj.Off[1]; i++ {
		if adj.Nbr[i] != 1 {
			t.Errorf("vertex 0 neighbor %d, want 1", adj.Nbr[i])
		}
		w0 += adj.W[i]
	}
	if w0 != 8 {
		t.Errorf("vertex 0 incident weight %d, want 8", w0)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	g := figure1Graph(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.TotalWeight() != g.TotalWeight() {
		t.Fatalf("round trip mismatch: n=%d m=%d w=%d", g2.N(), g2.M(), g2.TotalWeight())
	}
	for i, e := range g.Edges() {
		if g2.Edge(i) != e {
			t.Fatalf("edge %d mismatch: %v vs %v", i, g2.Edge(i), e)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"e 0 1 5\n",             // edge before problem line
		"p cut 2 1\ne 0 5 1\n",  // out of range
		"p cut 2 1\nx 0 1 1\n",  // unknown record
		"p cut 2 1\ne 0 1 -2\n", // negative weight
		"p cut zz 1\ne 0 1 1\n", // malformed problem line
		"",                      // empty
		"c only a comment\n",    // no problem line
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestClone(t *testing.T) {
	g := figure1Graph(t)
	c := g.Clone()
	must(t, c.AddEdge(0, 5, 9))
	if g.M() == c.M() {
		t.Fatal("clone shares edge storage")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
