package gen

import (
	"testing"

	"repro/internal/graph"
)

// connected reports whether g is connected (simple BFS; test helper only).
func connected(g *graph.Graph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	adj := g.BuildAdj()
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i := adj.Off[v]; i < adj.Off[v+1]; i++ {
			u := adj.Nbr[i]
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count == n
}

func TestRandomConnected(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 0}, {2, 1}, {5, 4}, {50, 200}, {257, 1000}} {
		g := RandomConnected(tc.n, tc.m, 100, 42)
		if g.N() != tc.n || g.M() != tc.m {
			t.Fatalf("n=%d m=%d: got %d %d", tc.n, tc.m, g.N(), g.M())
		}
		if !connected(g) {
			t.Fatalf("n=%d m=%d: disconnected", tc.n, tc.m)
		}
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(40, 120, 50, 7)
	b := RandomConnected(40, 120, 50, 7)
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := RandomConnected(40, 120, 50, 8)
	same := true
	for i := range a.Edges() {
		if a.Edge(i) != c.Edge(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPlantedCutGroundTruth(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := PlantedCut(12, 9, 4, seed)
		if !connected(p.G) {
			t.Fatal("planted graph disconnected")
		}
		if got := p.G.CutValue(p.InCut); got != p.CutValue {
			t.Fatalf("seed %d: planted partition value %d != claimed %d", seed, got, p.CutValue)
		}
		// No singleton cut may beat the planted one.
		for _, d := range p.G.WeightedDegrees() {
			if d < p.CutValue {
				t.Fatalf("seed %d: singleton cut %d beats planted %d", seed, d, p.CutValue)
			}
		}
	}
}

func TestDumbbell(t *testing.T) {
	p := Dumbbell(6, 3, 11)
	if got := p.G.CutValue(p.InCut); got != 3 {
		t.Fatalf("dumbbell bridge cut = %d, want 3", got)
	}
	if !connected(p.G) {
		t.Fatal("dumbbell disconnected")
	}
}

func TestCycleGroundTruth(t *testing.T) {
	p := Cycle([]int64{5, 1, 7, 2, 9})
	if p.CutValue != 3 {
		t.Fatalf("cycle min cut claimed %d, want 3", p.CutValue)
	}
	if got := p.G.CutValue(p.InCut); got != 3 {
		t.Fatalf("cycle witness value %d, want 3", got)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(4, 5, false, 10, 3)
	if g.N() != 20 {
		t.Fatalf("grid n=%d", g.N())
	}
	if g.M() != 4*4+3*5 { // horizontal + vertical
		t.Fatalf("grid m=%d want %d", g.M(), 4*4+3*5)
	}
	if !connected(g) {
		t.Fatal("grid disconnected")
	}
	torus := Grid(4, 5, true, 10, 3)
	if torus.M() != 2*20 {
		t.Fatalf("torus m=%d want 40", torus.M())
	}
}

func TestRandomRegularConnected(t *testing.T) {
	g := RandomRegular(64, 4, 10, 5)
	if !connected(g) {
		t.Fatal("random regular disconnected")
	}
}

func TestDisconnected(t *testing.T) {
	g := Disconnected(10, 7, 2)
	if connected(g) {
		t.Fatal("Disconnected generator made a connected graph")
	}
	if g.N() != 17 {
		t.Fatalf("n=%d", g.N())
	}
}

func TestCliqueShape(t *testing.T) {
	g := Clique(7, 5, 1)
	if g.M() != 21 {
		t.Fatalf("clique m=%d", g.M())
	}
}
