package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// FromSpec builds a workload from a compact textual description, shared by
// the CLI tools. Formats (parameters are key=value, comma separated):
//
//	random:n=1000,m=4000,w=100
//	planted:na=40,nb=40,k=5
//	dumbbell:n=20,bridge=3
//	grid:rows=30,cols=40,w=10[,torus=1]
//	regular:n=500,d=6,w=10
//	cycle:n=100,w=50
//	clique:n=60,w=10
//	disconnected:na=50,nb=60
//
// The returned Planted is non-nil when the generator knows the exact
// minimum cut.
func FromSpec(spec string, seed int64) (*graph.Graph, *Planted, error) {
	kind, args, _ := strings.Cut(spec, ":")
	params := map[string]int64{}
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, nil, fmt.Errorf("gen: bad parameter %q in spec %q", kv, spec)
			}
			x, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("gen: bad value in %q: %v", kv, err)
			}
			params[strings.TrimSpace(k)] = x
		}
	}
	get := func(key string, def int64) int64 {
		if v, ok := params[key]; ok {
			return v
		}
		return def
	}
	switch kind {
	case "random":
		n := get("n", 100)
		return RandomConnected(int(n), int(get("m", 4*n)), get("w", 100), seed), nil, nil
	case "planted":
		p := PlantedCut(int(get("na", 40)), int(get("nb", 40)), int(get("k", 5)), seed)
		return p.G, p, nil
	case "dumbbell":
		p := Dumbbell(int(get("n", 20)), get("bridge", 3), seed)
		return p.G, p, nil
	case "grid":
		g := Grid(int(get("rows", 30)), int(get("cols", 30)), get("torus", 0) != 0, get("w", 10), seed)
		return g, nil, nil
	case "regular":
		return RandomRegular(int(get("n", 500)), int(get("d", 6)), get("w", 10), seed), nil, nil
	case "cycle":
		n := int(get("n", 100))
		maxW := get("w", 50)
		weights := make([]int64, n)
		rng := newRNG(seed)
		for i := range weights {
			weights[i] = 1 + rng.Int63n(maxW)
		}
		p := Cycle(weights)
		return p.G, p, nil
	case "clique":
		return Clique(int(get("n", 60)), get("w", 10), seed), nil, nil
	case "disconnected":
		return Disconnected(int(get("na", 50)), int(get("nb", 60)), seed), nil, nil
	default:
		return nil, nil, fmt.Errorf("gen: unknown workload kind %q", kind)
	}
}
