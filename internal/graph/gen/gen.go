// Package gen generates the benchmark and test workloads for the minimum
// cut experiments: random connected graphs, graphs with a planted (known)
// minimum cut, and the structured families (cycles, grids, dumbbells,
// cliques, random regular) that stress different parts of the algorithm.
// All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// RandomConnected returns a connected graph with n vertices and exactly m
// edges (m >= n-1 required) whose weights are uniform in [1, maxW]. The
// first n-1 edges form a uniformly random attachment tree; the rest are
// uniform random pairs (parallel edges possible, loops excluded).
func RandomConnected(n, m int, maxW int64, seed int64) *graph.Graph {
	if n < 1 {
		panic("gen: need n >= 1")
	}
	if m < n-1 {
		panic(fmt.Sprintf("gen: need m >= n-1 (n=%d, m=%d)", n, m))
	}
	if maxW < 1 {
		maxW = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[i]
		v := perm[rng.Intn(i)]
		mustAdd(g, u, v, 1+rng.Int63n(maxW))
	}
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		mustAdd(g, u, v, 1+rng.Int63n(maxW))
	}
	return g
}

// Planted describes a graph with a known, unique minimum cut.
type Planted struct {
	G *graph.Graph
	// CutValue is the exact minimum cut value.
	CutValue int64
	// InCut marks side A of the planted minimum cut.
	InCut []bool
}

// PlantedCut builds a graph of two internally well-connected communities
// (sizes nA and nB) joined by k crossing edges. Every internal edge weighs
// more than the total crossing weight, so the planted bipartition is the
// unique minimum cut; its value is returned exactly.
func PlantedCut(nA, nB, k int, seed int64) *Planted {
	if nA < 1 || nB < 1 || k < 1 {
		panic("gen: PlantedCut needs nA, nB, k >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	n := nA + nB
	g := graph.New(n)
	// Crossing edges: weights in [1, 8].
	var cutValue int64
	for i := 0; i < k; i++ {
		u := rng.Intn(nA)
		v := nA + rng.Intn(nB)
		w := 1 + rng.Int63n(8)
		cutValue += w
		mustAdd(g, u, v, w)
	}
	heavy := cutValue + 1 + rng.Int63n(4)
	side := func(base, size int) {
		perm := rng.Perm(size)
		for i := 1; i < size; i++ {
			mustAdd(g, base+perm[i], base+perm[rng.Intn(i)], heavy)
		}
		extra := size + size/2
		for i := 0; i < extra; i++ {
			u := rng.Intn(size)
			v := rng.Intn(size)
			if u != v {
				mustAdd(g, base+u, base+v, heavy)
			}
		}
	}
	side(0, nA)
	side(nA, nB)
	inCut := make([]bool, n)
	for v := 0; v < nA; v++ {
		inCut[v] = true
	}
	// Degenerate guard: if a side has one vertex of weighted degree below
	// the crossing total, the singleton cut would win; heavy internal edges
	// prevent that except when a side has a single vertex.
	if nA == 1 || nB == 1 {
		cutValue = recomputeSingleton(g, inCut, cutValue)
	}
	return &Planted{G: g, CutValue: cutValue, InCut: inCut}
}

func recomputeSingleton(g *graph.Graph, inCut []bool, planted int64) int64 {
	best := planted
	deg := g.WeightedDegrees()
	for _, d := range deg {
		if d < best {
			best = d
		}
	}
	return best
}

// Dumbbell builds two cliques of size nClique with heavy edges, connected
// by a single bridge edge of weight bridgeW. The minimum cut is the bridge.
func Dumbbell(nClique int, bridgeW int64, seed int64) *Planted {
	if nClique < 2 {
		panic("gen: Dumbbell needs nClique >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	n := 2 * nClique
	g := graph.New(n)
	heavy := bridgeW + 1 + rng.Int63n(16)
	for _, base := range []int{0, nClique} {
		for i := 0; i < nClique; i++ {
			for j := i + 1; j < nClique; j++ {
				mustAdd(g, base+i, base+j, heavy)
			}
		}
	}
	mustAdd(g, rng.Intn(nClique), nClique+rng.Intn(nClique), bridgeW)
	inCut := make([]bool, n)
	for v := 0; v < nClique; v++ {
		inCut[v] = true
	}
	return &Planted{G: g, CutValue: bridgeW, InCut: inCut}
}

// Cycle builds a cycle with the given edge weights; the minimum cut is the
// sum of the two smallest weights.
func Cycle(weights []int64) *Planted {
	n := len(weights)
	if n < 3 {
		panic("gen: Cycle needs >= 3 edges")
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		mustAdd(g, i, (i+1)%n, weights[i])
	}
	// Two smallest weights and the arc between them.
	i1, i2 := -1, -1
	for i, w := range weights {
		if i1 < 0 || w < weights[i1] {
			i2 = i1
			i1 = i
		} else if i2 < 0 || w < weights[i2] {
			i2 = i
		}
	}
	lo, hi := i1, i2
	if lo > hi {
		lo, hi = hi, lo
	}
	inCut := make([]bool, n)
	for v := lo + 1; v <= hi; v++ {
		inCut[v] = true
	}
	return &Planted{G: g, CutValue: weights[i1] + weights[i2], InCut: inCut}
}

// Grid builds a rows x cols grid graph with weights uniform in [1, maxW].
// If torus is true, wrap-around edges are added.
func Grid(rows, cols int, torus bool, maxW int64, seed int64) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("gen: Grid needs positive dimensions")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, id(r, c), id(r, c+1), 1+rng.Int63n(maxW))
			} else if torus && cols > 2 {
				mustAdd(g, id(r, c), id(r, 0), 1+rng.Int63n(maxW))
			}
			if r+1 < rows {
				mustAdd(g, id(r, c), id(r+1, c), 1+rng.Int63n(maxW))
			} else if torus && rows > 2 {
				mustAdd(g, id(r, c), id(0, c), 1+rng.Int63n(maxW))
			}
		}
	}
	return g
}

// RandomRegular builds an approximately d-regular multigraph on n vertices
// via the configuration model (self-loops discarded), connected by patching
// with a Hamiltonian-ish cycle when needed.
func RandomRegular(n, d int, maxW int64, seed int64) *graph.Graph {
	if n < 3 || d < 2 {
		panic("gen: RandomRegular needs n >= 3, d >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue
		}
		mustAdd(g, u, v, 1+rng.Int63n(maxW))
	}
	// Ensure connectivity with a random cycle of light edges.
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		mustAdd(g, perm[i], perm[(i+1)%n], 1+rng.Int63n(maxW))
	}
	return g
}

// Clique builds the complete graph on n vertices with weights uniform in
// [1, maxW].
func Clique(n int, maxW int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(g, i, j, 1+rng.Int63n(maxW))
		}
	}
	return g
}

// Disconnected builds a graph with two components (for the cut-value-0
// paths): two random connected halves with no crossing edges.
func Disconnected(nA, nB int, seed int64) *graph.Graph {
	a := RandomConnected(nA, 2*nA, 8, seed)
	b := RandomConnected(nB, 2*nB, 8, seed+1)
	g := graph.New(nA + nB)
	for _, e := range a.Edges() {
		mustAdd(g, int(e.U), int(e.V), e.W)
	}
	for _, e := range b.Edges() {
		mustAdd(g, nA+int(e.U), nA+int(e.V), e.W)
	}
	return g
}

func mustAdd(g *graph.Graph, u, v int, w int64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// newRNG centralizes seeded RNG construction for the spec parser.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SpanningTreeParent extracts a random spanning tree of the connected
// graph g as a parent array (root marked with -1), via randomized DFS.
// It panics if g is disconnected.
func SpanningTreeParent(g *graph.Graph, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	adj := g.BuildAdj()
	parent := make([]int32, n)
	seen := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	root := int32(rng.Intn(n))
	seen[root] = true
	visited := 1
	stack := []int32{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		deg := int(adj.Off[v+1] - adj.Off[v])
		for _, di := range rng.Perm(deg) {
			u := adj.Nbr[adj.Off[v]+int32(di)]
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				visited++
				stack = append(stack, u)
			}
		}
	}
	if visited != n {
		panic("gen: SpanningTreeParent on a disconnected graph")
	}
	return parent
}
